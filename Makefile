# Convenience entry points; everything is plain go tooling underneath.

.PHONY: build test lint race chaos all

build:
	go build ./...

test:
	go test ./...

# The repo's own static-contract suite (DESIGN.md §8). Building first
# warms the export-data cache rfhlint loads dependencies from.
lint: build
	go run ./cmd/rfhlint ./...

race:
	go test -race ./...

chaos:
	go run ./cmd/rfhchaos -seeds 50

all: build test lint
