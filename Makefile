# Convenience entry points; everything is plain go tooling underneath.

.PHONY: build test lint race chaos chaos-check chaos-durable all

build:
	go build ./...

test:
	go test ./...

# The repo's own static-contract suite (DESIGN.md §8). Building first
# warms the export-data cache rfhlint loads dependencies from.
lint: build
	go run ./cmd/rfhlint ./...

race:
	go test -race ./...

chaos:
	go run ./cmd/rfhchaos -seeds 50

# The same sweep with the history checkers named explicitly: every
# seed's recorded op history must linearize per key and uphold the
# session guarantees (this is also the default for `make chaos`).
chaos-check:
	go run ./cmd/rfhchaos -seeds 50 -check linearizable

# Disk-backed chaos: every crash keeps the victim's WALs and every
# restart replays them, driving recovery, rejoin re-injection and the
# chunked-transfer resume cursors.
chaos-durable:
	go run ./cmd/rfhchaos -seeds 50 -durable

all: build test lint
