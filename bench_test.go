package rfh_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation section:
//
//	go test -bench=. -benchmem
//
// One benchmark per artefact. Each iteration reproduces the figure from
// scratch (all four policies simulated over the full paper horizon) and
// reports the figure's headline quantities as custom benchmark metrics,
// so the benchmark output doubles as the experiment record:
//
//	BenchmarkFig3aUtilizationRandom ... rfh_util=0.76 random_util=0.43 ...
//
// Absolute values are this simulator's, not the authors' testbed's; the
// *shape* relations (who wins, by what factor) are asserted separately
// by the shape-check tests in internal/experiments.

import (
	"testing"

	rfh "repro"
)

// benchOpts are the paper's experiment dimensions.
func benchOpts() rfh.ExperimentOptions {
	return rfh.ExperimentOptions{} // zero value = paper defaults
}

// figureBench reproduces one figure per iteration and reports the tail
// mean of every curve as a metric.
func figureBench(b *testing.B, id string) {
	b.Helper()
	var fig *rfh.Figure
	for i := 0; i < b.N; i++ {
		exp, err := rfh.NewExperiments(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		fig, err = exp.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			continue
		}
		tail := s.Points[len(s.Points)*3/4:]
		sum := 0.0
		for _, v := range tail {
			sum += v
		}
		b.ReportMetric(sum/float64(len(tail)), s.Name+"_late")
	}
}

// BenchmarkTableI echoes the experiment configuration (Table I); its
// "metric" is the parameter count so a changed table shows up in diffs.
func BenchmarkTableI(b *testing.B) {
	var rows [][2]string
	for i := 0; i < b.N; i++ {
		exp, err := rfh.NewExperiments(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		rows = exp.TableI()
	}
	b.ReportMetric(float64(len(rows)), "parameters")
}

// Fig. 3: replica utilization rate.
func BenchmarkFig3aUtilizationRandom(b *testing.B) { figureBench(b, "3a") }
func BenchmarkFig3bUtilizationFlash(b *testing.B)  { figureBench(b, "3b") }

// Fig. 4: replica number.
func BenchmarkFig4aReplicaTotalRandom(b *testing.B) { figureBench(b, "4a") }
func BenchmarkFig4bReplicaAvgRandom(b *testing.B)   { figureBench(b, "4b") }
func BenchmarkFig4cReplicaTotalFlash(b *testing.B)  { figureBench(b, "4c") }
func BenchmarkFig4dReplicaAvgFlash(b *testing.B)    { figureBench(b, "4d") }

// Fig. 5: replication cost.
func BenchmarkFig5aReplCostTotalRandom(b *testing.B) { figureBench(b, "5a") }
func BenchmarkFig5bReplCostAvgRandom(b *testing.B)   { figureBench(b, "5b") }
func BenchmarkFig5cReplCostTotalFlash(b *testing.B)  { figureBench(b, "5c") }
func BenchmarkFig5dReplCostAvgFlash(b *testing.B)    { figureBench(b, "5d") }

// Fig. 6: migration times.
func BenchmarkFig6aMigrTimesTotalRandom(b *testing.B) { figureBench(b, "6a") }
func BenchmarkFig6bMigrTimesAvgRandom(b *testing.B)   { figureBench(b, "6b") }
func BenchmarkFig6cMigrTimesTotalFlash(b *testing.B)  { figureBench(b, "6c") }
func BenchmarkFig6dMigrTimesAvgFlash(b *testing.B)    { figureBench(b, "6d") }

// Fig. 7: migration cost.
func BenchmarkFig7aMigrCostTotalRandom(b *testing.B) { figureBench(b, "7a") }
func BenchmarkFig7bMigrCostAvgRandom(b *testing.B)   { figureBench(b, "7b") }
func BenchmarkFig7cMigrCostTotalFlash(b *testing.B)  { figureBench(b, "7c") }
func BenchmarkFig7dMigrCostAvgFlash(b *testing.B)    { figureBench(b, "7d") }

// Fig. 8: load imbalance.
func BenchmarkFig8aLoadImbalanceRandom(b *testing.B) { figureBench(b, "8a") }
func BenchmarkFig8bLoadImbalanceFlash(b *testing.B)  { figureBench(b, "8b") }

// Fig. 9: lookup path length.
func BenchmarkFig9aPathLengthRandom(b *testing.B) { figureBench(b, "9a") }
func BenchmarkFig9bPathLengthFlash(b *testing.B)  { figureBench(b, "9b") }

// Fig. 10: node failure and recovery (RFH only; reports the replica
// fleet before the failure, right after, and at the end of the run).
func BenchmarkFig10FailureRecovery(b *testing.B) {
	var fig *rfh.Figure
	for i := 0; i < b.N; i++ {
		exp, err := rfh.NewExperiments(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		fig, err = exp.Figure("10")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		if s.Name != rfh.SeriesTotalReplicas {
			continue
		}
		failEpoch := 290
		b.ReportMetric(s.Points[failEpoch-1], "replicas_pre_failure")
		b.ReportMetric(s.Points[failEpoch], "replicas_at_failure")
		b.ReportMetric(s.Points[len(s.Points)-1], "replicas_recovered")
	}
}

// Ablations: design-choice sweeps called out in DESIGN.md. Each reports
// the spread (max-min) the parameter induces on steady replica count —
// the sensitivity the paper never quantifies.
func ablationBench(b *testing.B, param string) {
	b.Helper()
	var points []rfh.AblationPoint
	for i := 0; i < b.N; i++ {
		exp, err := rfh.NewExperiments(rfh.ExperimentOptions{EpochsRandom: 120})
		if err != nil {
			b.Fatal(err)
		}
		points, _, err = exp.Ablation(param)
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, hi := points[0].Replicas, points[0].Replicas
	uLo, uHi := points[0].Utilization, points[0].Utilization
	for _, p := range points[1:] {
		if p.Replicas < lo {
			lo = p.Replicas
		}
		if p.Replicas > hi {
			hi = p.Replicas
		}
		if p.Utilization < uLo {
			uLo = p.Utilization
		}
		if p.Utilization > uHi {
			uHi = p.Utilization
		}
	}
	b.ReportMetric(hi-lo, "replica_spread")
	b.ReportMetric(uHi-uLo, "util_spread")
}

func BenchmarkAblationAlpha(b *testing.B)   { ablationBench(b, "alpha") }
func BenchmarkAblationBeta(b *testing.B)    { ablationBench(b, "beta") }
func BenchmarkAblationGamma(b *testing.B)   { ablationBench(b, "gamma") }
func BenchmarkAblationDelta(b *testing.B)   { ablationBench(b, "delta") }
func BenchmarkAblationMu(b *testing.B)      { ablationBench(b, "mu") }
func BenchmarkAblationHubK(b *testing.B)    { ablationBench(b, "hubK") }
func BenchmarkAblationServing(b *testing.B) { ablationBench(b, "serving") }

// BenchmarkEpoch measures the raw simulation engine throughput: one
// full epoch (64 partitions, 100 servers, routing + serving + policy)
// per iteration.
func BenchmarkEpoch(b *testing.B) {
	cfg := rfh.DefaultConfig()
	cfg.Epochs = b.N + 1
	res, err := rfh.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	_ = res
}

// Scalability: epoch throughput as the world and the partition count
// grow beyond the paper's dimensions (synthetic random-geometric
// worlds, RFH policy, drifting-hotspot workload).
func scaleBench(b *testing.B, dcs, partitions int) {
	b.Helper()
	cfg := rfh.DefaultConfig()
	cfg.Workload = "drift"
	cfg.WorldDCs = dcs
	cfg.Partitions = partitions
	cfg.Epochs = b.N + 1
	if _, err := rfh.Run(cfg); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkScale10DC64P(b *testing.B)   { scaleBench(b, 10, 64) }
func BenchmarkScale25DC128P(b *testing.B)  { scaleBench(b, 25, 128) }
func BenchmarkScale50DC256P(b *testing.B)  { scaleBench(b, 50, 256) }
func BenchmarkScale100DC512P(b *testing.B) { scaleBench(b, 100, 512) }
