// Command rfhbench measures the module's two hot paths and writes the
// numbers as JSON.
//
// The sim suite (default) times steady-state Engine.Step throughput at
// the paper's seed scale (10 datacenters, 100 servers, 64 partitions)
// and at ten times that — the source of the committed BENCH_sim.json
// snapshot. The transport suite measures the live cluster's message
// plane: codec-only encode/decode rows, echo round trips over both
// transports (in-process loopback and real TCP over localhost) at two
// payload sizes and 1/8/64 concurrent in-flight requests per peer, and
// a fleet-level put/get throughput row per transport — the source of
// BENCH_transport.json. The ae suite prices the anti-entropy digest
// machinery on a 10k-key partition: full tree build, the per-write
// incremental leaf update, and the 64-leaf root fold — the source of
// BENCH_ae.json. The repair suite prices delta replication end to
// end: bytes on the wire for a full re-migration against a
// watermark-planned delta session at three divergence levels (real
// transfer sessions over a tapped loopback fleet), and a flat
// digest+diff anti-entropy repair against the hierarchical
// sub-digest/keylist/fetch walk — the source of BENCH_repair.json.
// The stress suite is a pprof-friendly hammer: a 3-node TCP fleet
// under concurrent put/get load with epochs ticking underneath, meant
// to be run with -cpuprofile.
//
//	rfhbench -o BENCH_sim.json
//	rfhbench -suite transport -o BENCH_transport.json
//	rfhbench -suite ae -o BENCH_ae.json
//	rfhbench -suite repair -o BENCH_repair.json
//	rfhbench -suite stress -cpuprofile cpu.pprof
//	rfhbench -epochs 500 -warmup 50
//	rfhbench -date 2026-08-01 -o BENCH_sim.json   # pinned stamp for reproducible diffs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/node"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// scaleResult is one benchmark row of BENCH_sim.json.
type scaleResult struct {
	Name           string  `json:"name"`
	DCs            int     `json:"dcs"`
	Servers        int     `json:"servers"`
	Partitions     int     `json:"partitions"`
	Epochs         int     `json:"epochs"`
	EpochsPerSec   float64 `json:"epochs_per_sec"`
	NsPerEpoch     int64   `json:"ns_per_epoch"`
	AllocsPerEpoch float64 `json:"allocs_per_epoch"`
	BytesPerEpoch  float64 `json:"bytes_per_epoch"`
}

type report struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scales     []scaleResult `json:"scales"`
}

func buildEngine(dcs, partitions int) (*sim.Engine, error) {
	var w *topology.World
	var err error
	if dcs == 10 {
		w = topology.PaperWorld()
	} else {
		w, err = topology.RandomGeometricWorld(dcs, 3, 0x3013)
		if err != nil {
			return nil, err
		}
	}
	rt, err := network.NewRouter(w)
	if err != nil {
		return nil, err
	}
	spec := cluster.DefaultSpec()
	spec.Partitions = partitions
	cl, err := cluster.New(w, spec)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewUniform(workload.Config{
		Partitions: partitions, DCs: w.NumDCs(), Lambda: 300, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	cfg.Epochs = 1 << 30 // stepped manually
	return sim.New(cl, rt, gen, core.NewRFH(), cfg)
}

// measure steps the engine warmup epochs to pass the initial
// replication burst, then times epochs more, counting allocations via
// runtime.MemStats deltas.
func measure(name string, dcs, partitions, warmup, epochs int) (scaleResult, error) {
	eng, err := buildEngine(dcs, partitions)
	if err != nil {
		return scaleResult{}, err
	}
	defer eng.Close()
	for i := 0; i < warmup; i++ {
		if err := eng.Step(); err != nil {
			return scaleResult{}, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < epochs; i++ {
		if err := eng.Step(); err != nil {
			return scaleResult{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return scaleResult{
		Name:           name,
		DCs:            dcs,
		Servers:        eng.Cluster().NumServers(),
		Partitions:     partitions,
		Epochs:         epochs,
		EpochsPerSec:   float64(epochs) / elapsed.Seconds(),
		NsPerEpoch:     elapsed.Nanoseconds() / int64(epochs),
		AllocsPerEpoch: float64(after.Mallocs-before.Mallocs) / float64(epochs),
		BytesPerEpoch:  float64(after.TotalAlloc-before.TotalAlloc) / float64(epochs),
	}, nil
}

// transportResult is one measurement row of BENCH_transport.json.
// InFlight is the number of concurrent requests kept outstanding
// against the peer (1 = the old serialized regime); AllocsPerOp is the
// whole-process malloc delta per operation, so it includes both sides
// of the exchange.
type transportResult struct {
	Name         string  `json:"name"`
	Transport    string  `json:"transport"`
	PayloadBytes int     `json:"payload_bytes"`
	InFlight     int     `json:"in_flight"`
	RoundTrips   int     `json:"round_trips"`
	NsPerOp      int64   `json:"ns_per_op"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

type transportReport struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []transportResult `json:"results"`
	// SerializedBaseline is the historical record of the
	// pre-multiplexing transport (one exchange at a time per
	// connection, a write+read syscall pair per frame), measured on the
	// same class of machine before the mux rewrite. It cannot be
	// re-measured — the code is gone — so it ships as constants and
	// lands in every refreshed snapshot as the "before" column.
	SerializedBaseline []transportResult `json:"serialized_baseline"`
}

// serializedBaseline holds the last measurement of the old
// serialized transport (go1.24.0, GOMAXPROCS=1, 30k round trips per
// row). Flat ops/sec across in-flight counts is the serialization
// showing: extra senders only queued behind the per-peer connection
// lock.
var serializedBaseline = []transportResult{
	{Name: "loopback-64B-inflight1", Transport: "loopback", PayloadBytes: 64, InFlight: 1, RoundTrips: 30000, NsPerOp: 497, OpsPerSec: 2011924, AllocsPerOp: 11.0},
	{Name: "loopback-64B-inflight8", Transport: "loopback", PayloadBytes: 64, InFlight: 8, RoundTrips: 30000, NsPerOp: 516, OpsPerSec: 1936260, AllocsPerOp: 11.0},
	{Name: "loopback-64B-inflight64", Transport: "loopback", PayloadBytes: 64, InFlight: 64, RoundTrips: 30000, NsPerOp: 481, OpsPerSec: 2076521, AllocsPerOp: 11.0},
	{Name: "loopback-4KiB-inflight1", Transport: "loopback", PayloadBytes: 4096, InFlight: 1, RoundTrips: 30000, NsPerOp: 2034, OpsPerSec: 491599, AllocsPerOp: 11.0},
	{Name: "loopback-4KiB-inflight8", Transport: "loopback", PayloadBytes: 4096, InFlight: 8, RoundTrips: 30000, NsPerOp: 2167, OpsPerSec: 461353, AllocsPerOp: 11.0},
	{Name: "loopback-4KiB-inflight64", Transport: "loopback", PayloadBytes: 4096, InFlight: 64, RoundTrips: 30000, NsPerOp: 2597, OpsPerSec: 384972, AllocsPerOp: 11.0},
	{Name: "tcp-64B-inflight1", Transport: "tcp", PayloadBytes: 64, InFlight: 1, RoundTrips: 30000, NsPerOp: 12682, OpsPerSec: 78847, AllocsPerOp: 9.0},
	{Name: "tcp-64B-inflight8", Transport: "tcp", PayloadBytes: 64, InFlight: 8, RoundTrips: 30000, NsPerOp: 13108, OpsPerSec: 76287, AllocsPerOp: 9.0},
	{Name: "tcp-64B-inflight64", Transport: "tcp", PayloadBytes: 64, InFlight: 64, RoundTrips: 30000, NsPerOp: 13890, OpsPerSec: 71990, AllocsPerOp: 9.0},
	{Name: "tcp-4KiB-inflight1", Transport: "tcp", PayloadBytes: 4096, InFlight: 1, RoundTrips: 30000, NsPerOp: 15544, OpsPerSec: 64332, AllocsPerOp: 9.0},
	{Name: "tcp-4KiB-inflight8", Transport: "tcp", PayloadBytes: 4096, InFlight: 8, RoundTrips: 30000, NsPerOp: 15449, OpsPerSec: 64728, AllocsPerOp: 9.0},
	{Name: "tcp-4KiB-inflight64", Transport: "tcp", PayloadBytes: 4096, InFlight: 64, RoundTrips: 30000, NsPerOp: 14679, OpsPerSec: 68124, AllocsPerOp: 9.0},
}

// echoHandler replies with the request payload — the cheapest handler,
// so the measurement is dominated by codec + delivery cost.
func echoHandler(from string, req *transport.Message) (*transport.Message, error) {
	return &transport.Message{Kind: req.Kind, Key: req.Key, Value: req.Value}, nil
}

// measureCodec times pure encode+decode cycles through reused buffers —
// the allocation floor of the message plane. Steady state must be
// alloc-free: AppendMessage into a reused scratch slice and
// DecodeMessageInto a reused Message allocate nothing once the scratch
// has grown to size.
func measureCodec(label string, payload, ops int) (transportResult, error) {
	req := &transport.Message{Kind: 1, Key: []byte("bench-key"), Value: make([]byte, payload)}
	scratch := transport.AppendMessage(nil, req)
	var m transport.Message
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		scratch = transport.AppendMessage(scratch[:0], req)
		if err := transport.DecodeMessageInto(&m, scratch); err != nil {
			return transportResult{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return transportResult{
		Name:         "codec-" + label,
		Transport:    "codec",
		PayloadBytes: payload,
		InFlight:     1,
		RoundTrips:   ops,
		NsPerOp:      elapsed.Nanoseconds() / int64(ops),
		OpsPerSec:    float64(ops) / elapsed.Seconds(),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(ops),
	}, nil
}

// measureRoundTrips times ops request/response exchanges through send
// with `inflight` concurrent senders sharing the one peer connection.
func measureRoundTrips(name, kind string, payload, inflight, warmup, ops int,
	send func(*transport.Message) (*transport.Message, error)) (transportResult, error) {
	warm := &transport.Message{Kind: 1, Key: []byte("bench-key"), Value: make([]byte, payload)}
	for i := 0; i < warmup; i++ {
		if _, err := send(warm); err != nil {
			return transportResult{}, err
		}
	}
	perWorker := ops / inflight
	if perWorker < 1 {
		perWorker = 1
	}
	total := perWorker * inflight
	errCh := make(chan error, inflight)
	var wg sync.WaitGroup
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for w := 0; w < inflight; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &transport.Message{Kind: 1, Key: []byte("bench-key"), Value: make([]byte, payload)}
			for i := 0; i < perWorker; i++ {
				if _, err := send(req); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	select {
	case err := <-errCh:
		return transportResult{}, err
	default:
	}
	return transportResult{
		Name:         name,
		Transport:    kind,
		PayloadBytes: payload,
		InFlight:     inflight,
		RoundTrips:   total,
		NsPerOp:      elapsed.Nanoseconds() / int64(total),
		OpsPerSec:    float64(total) / elapsed.Seconds(),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(total),
	}, nil
}

// benchFleet is a 3-node cluster for the fleet-level rows and the
// stress suite, over either transport flavour.
type benchFleet struct {
	nodes []*node.Node
}

func buildBenchFleet(flavour string) (*benchFleet, error) {
	const n = 3
	peers := make([]node.Peer, n)
	trs := make([]transport.Transport, n)
	switch flavour {
	case "loopback":
		lb := transport.NewLoopback()
		for i := range peers {
			peers[i] = node.Peer{ID: i, Addr: fmt.Sprintf("node%d", i)}
			trs[i] = lb.Endpoint(peers[i].Addr)
		}
	case "tcp":
		opts := transport.TCPOptions{
			DialTimeout: 2 * time.Second, IOTimeout: 5 * time.Second,
			Retries: 1, RetryBackoff: 5 * time.Millisecond,
		}
		for i := range peers {
			tr, err := transport.ListenTCP("127.0.0.1:0", nil, opts)
			if err != nil {
				return nil, err
			}
			peers[i] = node.Peer{ID: i, Addr: tr.Addr()}
			trs[i] = tr
		}
	default:
		return nil, fmt.Errorf("unknown fleet flavour %q", flavour)
	}
	f := &benchFleet{}
	for i := 0; i < n; i++ {
		cfg := node.DefaultConfig(i, append([]node.Peer(nil), peers...))
		cfg.Partitions = 16
		cfg.Seed = 7
		nd, err := node.New(cfg, trs[i])
		if err != nil {
			f.Close()
			return nil, err
		}
		f.nodes = append(f.nodes, nd)
	}
	// A few lockstep epochs settle the initial replica placement so the
	// measured traffic runs against a converged cluster.
	for e := 0; e < 3; e++ {
		if err := f.tick(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

func (f *benchFleet) tick() error {
	for i, nd := range f.nodes {
		if err := nd.FlushEpoch(); err != nil {
			return fmt.Errorf("flush node %d: %w", i, err)
		}
	}
	for i, nd := range f.nodes {
		if err := nd.RunEpoch(); err != nil {
			return fmt.Errorf("run node %d: %w", i, err)
		}
	}
	return nil
}

func (f *benchFleet) Close() {
	for _, nd := range f.nodes {
		nd.Close()
	}
}

// measureFleet times concurrent put/get rounds against a converged
// 3-node fleet: `workers` goroutines each write then read their own
// keys through their entry node, so the row captures the end-to-end
// data plane — routing, primary forwarding, replica sync fan-out and
// the store — not just raw transport echo cost.
func measureFleet(flavour string, workers, rounds int) (transportResult, error) {
	f, err := buildBenchFleet(flavour)
	if err != nil {
		return transportResult{}, err
	}
	defer f.Close()
	val := make([]byte, 64)
	// Warm every worker's key set once so the measured window has no
	// first-write placement cost.
	for g := 0; g < workers; g++ {
		entry := f.nodes[g%len(f.nodes)]
		for k := 0; k < 10; k++ {
			if err := entry.Put(fmt.Sprintf("bench-g%d-k%d", g, k), val); err != nil {
				return transportResult{}, err
			}
		}
	}
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			entry := f.nodes[g%len(f.nodes)]
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("bench-g%d-k%d", g, r%10)
				if err := entry.Put(key, val); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				if _, _, err := entry.Get(key); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	select {
	case err := <-errCh:
		return transportResult{}, err
	default:
	}
	total := workers * rounds * 2 // one put + one get per round
	return transportResult{
		Name:         "fleet-putget-" + flavour,
		Transport:    flavour,
		PayloadBytes: len(val),
		InFlight:     workers,
		RoundTrips:   total,
		NsPerOp:      elapsed.Nanoseconds() / int64(total),
		OpsPerSec:    float64(total) / elapsed.Seconds(),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(total),
	}, nil
}

// runTransportSuite measures the message plane bottom-up: the codec in
// isolation, echo round trips over both transports at 64 B and 4 KiB
// payloads with 1, 8 and 64 requests in flight, and the fleet-level
// put/get rows. ops derives from -epochs so the existing knob scales
// both suites.
func runTransportSuite(warmup, epochs int) ([]transportResult, error) {
	ops := epochs * 100
	payloads := []struct {
		label string
		bytes int
	}{{"64B", 64}, {"4KiB", 4096}}
	inflights := []int{1, 8, 64}

	var results []transportResult

	for _, p := range payloads {
		res, err := measureCodec(p.label, p.bytes, ops*10)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}

	lb := transport.NewLoopback()
	cli := lb.Endpoint("cli")
	srv := lb.Endpoint("srv")
	srv.SetHandler(echoHandler)
	for _, p := range payloads {
		for _, inflight := range inflights {
			name := fmt.Sprintf("loopback-%s-inflight%d", p.label, inflight)
			res, err := measureRoundTrips(name, "loopback", p.bytes, inflight, warmup, ops,
				func(m *transport.Message) (*transport.Message, error) { return cli.Send("srv", m) })
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
	}
	cli.Close()
	srv.Close()

	server, err := transport.ListenTCP("127.0.0.1:0", echoHandler, transport.DefaultTCPOptions())
	if err != nil {
		return nil, err
	}
	defer server.Close()
	client := transport.NewTCPClient(transport.DefaultTCPOptions())
	defer client.Close()
	addr := server.Addr()
	for _, p := range payloads {
		for _, inflight := range inflights {
			name := fmt.Sprintf("tcp-%s-inflight%d", p.label, inflight)
			res, err := measureRoundTrips(name, "tcp", p.bytes, inflight, warmup, ops,
				func(m *transport.Message) (*transport.Message, error) { return client.Send(addr, m) })
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
	}

	for _, flavour := range []string{"loopback", "tcp"} {
		res, err := measureFleet(flavour, 8, ops/8)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// aeResult is one row of BENCH_ae.json: the cost of anti-entropy
// digest computation over a 10k-key partition tree.
type aeResult struct {
	Name        string  `json:"name"`
	Keys        int     `json:"keys"`
	Ops         int     `json:"ops"`
	NsPerOp     int64   `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type aeReport struct {
	Date       string     `json:"date"`
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Results    []aeResult `json:"results"`
}

// runAESuite prices the three anti-entropy digest operations on a
// 10k-key partition: a cold tree build (what a holder pays to answer
// its first digest), the incremental update (the Apply pair every
// write adds to the hot path: remove the old record's hash, add the
// new one), and the root fold (what each AE round pays per partition
// to compare digests). XOR leaves make the update O(1) regardless of
// partition size — these rows are the evidence.
func runAESuite(epochs int) []aeResult {
	const keys = 10000
	type entry struct {
		key string
		ver uint64
		val []byte
	}
	entries := make([]entry, keys)
	for i := range entries {
		entries[i] = entry{
			key: fmt.Sprintf("ae-bench-k%06d", i),
			ver: uint64(i + 1),
			// The chaos workload's value size class: a short formatted
			// string, not a blob — AE hashing is metadata-bound.
			val: []byte(fmt.Sprintf("s7.e%d.p0.k%d.0123456789abcdef", i, i)),
		}
	}
	var sink uint64
	timeRow := func(name string, ops int, fn func()) aeResult {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < ops; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		return aeResult{
			Name:        name,
			Keys:        keys,
			Ops:         ops,
			NsPerOp:     elapsed.Nanoseconds() / int64(ops),
			OpsPerSec:   float64(ops) / elapsed.Seconds(),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
		}
	}

	builds := epochs / 10
	if builds < 1 {
		builds = 1
	}
	buildRow := timeRow("tree-build-10k", builds, func() {
		t := node.NewAETree()
		for i := range entries {
			t.Apply(entries[i].key, entries[i].ver, entries[i].val)
		}
		sink ^= t.Root()
	})

	tree := node.NewAETree()
	for i := range entries {
		tree.Apply(entries[i].key, entries[i].ver, entries[i].val)
	}
	newVal := []byte("s7.e9999.p0.k0.fedcba9876543210")
	updates := epochs * 1000
	i := 0
	fresh := false // alternates: apply the update, then undo it, so the tree never grows
	updateRow := timeRow("incremental-update-10k", updates, func() {
		e := &entries[i%keys]
		if fresh {
			tree.Apply(e.key, e.ver+1<<20, newVal) // remove the updated record
			tree.Apply(e.key, e.ver, e.val)        // restore the original
			i++
		} else {
			tree.Apply(e.key, e.ver, e.val)        // remove the old record
			tree.Apply(e.key, e.ver+1<<20, newVal) // add the new version
		}
		fresh = !fresh
	})

	rootRow := timeRow("root-fold-10k", updates, func() {
		sink ^= tree.Root()
	})
	runtime.KeepAlive(sink)
	return []aeResult{buildRow, updateRow, rootRow}
}

type repairReport struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []node.RepairCost `json:"results"`
}

// runRepairSuite measures replication bytes against divergence — the
// delta-replication claim in one table. Three re-migration rows (10%,
// 1% and 0.1% divergence on a 10k-key partition, real sessions on a
// tapped loopback wire) plus two anti-entropy rows (single-key and
// 1%-stale repair, flat vs hierarchical from the real encoders). The
// bandwidth ratios are key-count arithmetic, not timing, so the rows
// are stable enough to commit.
func runRepairSuite() ([]node.RepairCost, error) {
	const keys = 10000
	var results []node.RepairCost
	for _, divergent := range []int{1000, 100, 10} {
		res, err := node.MeasureTransferRepair(keys, divergent)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	results = append(results, node.MeasureAERepair(keys, 1))
	results = append(results, node.MeasureAERepair(keys, 100))
	return results, nil
}

// runStress hammers a 3-node TCP fleet with concurrent put/get traffic
// while lockstep epochs tick underneath — the same shape as the node
// package's concurrent stress test, scaled up and left unasserted so
// cpu/heap profiles capture a realistic steady state. Transient errors
// during epoch actions are counted, not fatal.
func runStress(epochs int) error {
	f, err := buildBenchFleet("tcp")
	if err != nil {
		return err
	}
	defer f.Close()

	stop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.tick(); err != nil {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const workers = 16
	rounds := epochs * 25
	val := make([]byte, 64)
	var transient int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			entry := f.nodes[g%len(f.nodes)]
			errs := int64(0)
			for r := 0; r < rounds; r++ {
				key := fmt.Sprintf("stress-g%d-k%d", g, r%10)
				if err := entry.Put(key, val); err != nil {
					errs++
				}
				if _, _, err := entry.Get(key); err != nil {
					errs++
				}
			}
			mu.Lock()
			transient += errs
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	tickWG.Wait()
	total := int64(workers) * int64(rounds) * 2
	fmt.Fprintf(os.Stderr, "stress: %d ops in %v  %9.0f ops/sec  %d transient errors\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds(), transient)
	return nil
}

func writeReport(out string, rep any) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfhbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "rfhbench:", err)
		os.Exit(1)
	}
}

func main() {
	var (
		out        = flag.String("o", "", "write JSON here instead of stdout")
		suite      = flag.String("suite", "sim", "benchmark suite: sim, transport, ae, repair or stress")
		warmup     = flag.Int("warmup", 30, "warmup epochs before timing starts")
		epochs     = flag.Int("epochs", 300, "timed epochs per scale (transport suite: ×100 round trips)")
		date       = flag.String("date", "", "date stamp (YYYY-MM-DD) embedded in the snapshot; default today (UTC)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile here")
		memprofile = flag.String("memprofile", "", "write a heap profile here at exit")
	)
	flag.Parse()
	if *epochs < 1 || *warmup < 0 {
		fmt.Fprintln(os.Stderr, "rfhbench: -epochs must be >= 1 and -warmup >= 0")
		os.Exit(2)
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	} else if _, err := time.Parse("2006-01-02", *date); err != nil {
		fmt.Fprintln(os.Stderr, "rfhbench: -date must be YYYY-MM-DD")
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfhbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rfhbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfhbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rfhbench:", err)
			}
		}()
	}

	switch *suite {
	case "transport":
		results, err := runTransportSuite(*warmup, *epochs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfhbench:", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "%-24s %8d ns/op  %9.0f ops/sec  %6.1f allocs/op\n",
				r.Name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
		}
		writeReport(*out, transportReport{
			Date:               *date,
			GoVersion:          runtime.Version(),
			GOMAXPROCS:         runtime.GOMAXPROCS(0),
			Results:            results,
			SerializedBaseline: serializedBaseline,
		})
	case "ae":
		results := runAESuite(*epochs)
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "%-24s %8d ns/op  %9.0f ops/sec  %6.1f allocs/op\n",
				r.Name, r.NsPerOp, r.OpsPerSec, r.AllocsPerOp)
		}
		writeReport(*out, aeReport{
			Date:       *date,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Results:    results,
		})
	case "repair":
		results, err := runRepairSuite()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfhbench:", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "%-28s %9d baseline B  %8d delta B  %6.1fx fewer\n",
				r.Name, r.BaselineBytes, r.DeltaBytes, r.Ratio)
		}
		writeReport(*out, repairReport{
			Date:       *date,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Results:    results,
		})
	case "stress":
		if err := runStress(*epochs); err != nil {
			fmt.Fprintln(os.Stderr, "rfhbench:", err)
			os.Exit(1)
		}
	case "sim":
		rep := report{
			Date:       *date,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
		scales := []struct {
			name            string
			dcs, partitions int
		}{
			{"seed", 10, 64},
			{"10x", 100, 640},
		}
		for _, s := range scales {
			res, err := measure(s.name, s.dcs, s.partitions, *warmup, *epochs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfhbench:", err)
				os.Exit(1)
			}
			rep.Scales = append(rep.Scales, res)
			fmt.Fprintf(os.Stderr, "%-5s %7.1f epochs/sec  %9d ns/epoch  %8.0f allocs/epoch\n",
				s.name, res.EpochsPerSec, res.NsPerEpoch, res.AllocsPerEpoch)
		}
		writeReport(*out, rep)
	default:
		fmt.Fprintln(os.Stderr, "rfhbench: -suite must be sim, transport, ae, repair or stress")
		os.Exit(2)
	}
}
