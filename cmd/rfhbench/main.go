// Command rfhbench measures the module's two hot paths and writes the
// numbers as JSON.
//
// The sim suite (default) times steady-state Engine.Step throughput at
// the paper's seed scale (10 datacenters, 100 servers, 64 partitions)
// and at ten times that — the source of the committed BENCH_sim.json
// snapshot. The transport suite times message round trips through the
// live cluster's two transports (in-process loopback and real TCP over
// localhost) at two payload sizes — the source of BENCH_transport.json.
//
//	rfhbench -o BENCH_sim.json
//	rfhbench -suite transport -o BENCH_transport.json
//	rfhbench -epochs 500 -warmup 50
//	rfhbench -date 2026-08-01 -o BENCH_sim.json   # pinned stamp for reproducible diffs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/transport"
	"repro/internal/workload"
)

// scaleResult is one benchmark row of BENCH_sim.json.
type scaleResult struct {
	Name           string  `json:"name"`
	DCs            int     `json:"dcs"`
	Servers        int     `json:"servers"`
	Partitions     int     `json:"partitions"`
	Epochs         int     `json:"epochs"`
	EpochsPerSec   float64 `json:"epochs_per_sec"`
	NsPerEpoch     int64   `json:"ns_per_epoch"`
	AllocsPerEpoch float64 `json:"allocs_per_epoch"`
	BytesPerEpoch  float64 `json:"bytes_per_epoch"`
}

type report struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scales     []scaleResult `json:"scales"`
}

func buildEngine(dcs, partitions int) (*sim.Engine, error) {
	var w *topology.World
	var err error
	if dcs == 10 {
		w = topology.PaperWorld()
	} else {
		w, err = topology.RandomGeometricWorld(dcs, 3, 0x3013)
		if err != nil {
			return nil, err
		}
	}
	rt, err := network.NewRouter(w)
	if err != nil {
		return nil, err
	}
	spec := cluster.DefaultSpec()
	spec.Partitions = partitions
	cl, err := cluster.New(w, spec)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewUniform(workload.Config{
		Partitions: partitions, DCs: w.NumDCs(), Lambda: 300, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	cfg.Epochs = 1 << 30 // stepped manually
	return sim.New(cl, rt, gen, core.NewRFH(), cfg)
}

// measure steps the engine warmup epochs to pass the initial
// replication burst, then times epochs more, counting allocations via
// runtime.MemStats deltas.
func measure(name string, dcs, partitions, warmup, epochs int) (scaleResult, error) {
	eng, err := buildEngine(dcs, partitions)
	if err != nil {
		return scaleResult{}, err
	}
	defer eng.Close()
	for i := 0; i < warmup; i++ {
		if err := eng.Step(); err != nil {
			return scaleResult{}, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < epochs; i++ {
		if err := eng.Step(); err != nil {
			return scaleResult{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return scaleResult{
		Name:           name,
		DCs:            dcs,
		Servers:        eng.Cluster().NumServers(),
		Partitions:     partitions,
		Epochs:         epochs,
		EpochsPerSec:   float64(epochs) / elapsed.Seconds(),
		NsPerEpoch:     elapsed.Nanoseconds() / int64(epochs),
		AllocsPerEpoch: float64(after.Mallocs-before.Mallocs) / float64(epochs),
		BytesPerEpoch:  float64(after.TotalAlloc-before.TotalAlloc) / float64(epochs),
	}, nil
}

// transportResult is one round-trip measurement of BENCH_transport.json.
type transportResult struct {
	Name         string  `json:"name"`
	Transport    string  `json:"transport"`
	PayloadBytes int     `json:"payload_bytes"`
	RoundTrips   int     `json:"round_trips"`
	NsPerOp      int64   `json:"ns_per_op"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

type transportReport struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []transportResult `json:"results"`
}

// echoHandler replies with the request payload — the cheapest handler,
// so the measurement is dominated by codec + delivery cost.
func echoHandler(from string, req *transport.Message) (*transport.Message, error) {
	return &transport.Message{Kind: req.Kind, Key: req.Key, Value: req.Value}, nil
}

// measureRoundTrips times ops request/response exchanges through send.
func measureRoundTrips(name, kind string, payload, warmup, ops int,
	send func(*transport.Message) (*transport.Message, error)) (transportResult, error) {
	req := &transport.Message{Kind: 1, Key: []byte("bench-key"), Value: make([]byte, payload)}
	for i := 0; i < warmup; i++ {
		if _, err := send(req); err != nil {
			return transportResult{}, err
		}
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := send(req); err != nil {
			return transportResult{}, err
		}
	}
	elapsed := time.Since(start)
	return transportResult{
		Name:         name,
		Transport:    kind,
		PayloadBytes: payload,
		RoundTrips:   ops,
		NsPerOp:      elapsed.Nanoseconds() / int64(ops),
		OpsPerSec:    float64(ops) / elapsed.Seconds(),
	}, nil
}

// runTransportSuite measures both transports at a small (64 B) and a
// bulk (4 KiB) payload. ops derives from -epochs so the existing knob
// scales both suites.
func runTransportSuite(warmup, epochs int) ([]transportResult, error) {
	ops := epochs * 100
	payloads := []struct {
		label string
		bytes int
	}{{"64B", 64}, {"4KiB", 4096}}

	var results []transportResult

	lb := transport.NewLoopback()
	cli := lb.Endpoint("cli")
	srv := lb.Endpoint("srv")
	srv.SetHandler(echoHandler)
	for _, p := range payloads {
		res, err := measureRoundTrips("loopback-"+p.label, "loopback", p.bytes, warmup, ops,
			func(m *transport.Message) (*transport.Message, error) { return cli.Send("srv", m) })
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	cli.Close()
	srv.Close()

	server, err := transport.ListenTCP("127.0.0.1:0", echoHandler, transport.DefaultTCPOptions())
	if err != nil {
		return nil, err
	}
	defer server.Close()
	client := transport.NewTCPClient(transport.DefaultTCPOptions())
	defer client.Close()
	addr := server.Addr()
	for _, p := range payloads {
		res, err := measureRoundTrips("tcp-"+p.label, "tcp", p.bytes, warmup, ops,
			func(m *transport.Message) (*transport.Message, error) { return client.Send(addr, m) })
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

func writeReport(out string, rep any) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfhbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "rfhbench:", err)
		os.Exit(1)
	}
}

func main() {
	var (
		out    = flag.String("o", "", "write JSON here instead of stdout")
		suite  = flag.String("suite", "sim", "benchmark suite: sim or transport")
		warmup = flag.Int("warmup", 30, "warmup epochs before timing starts")
		epochs = flag.Int("epochs", 300, "timed epochs per scale (transport suite: ×100 round trips)")
		date   = flag.String("date", "", "date stamp (YYYY-MM-DD) embedded in the snapshot; default today (UTC)")
	)
	flag.Parse()
	if *epochs < 1 || *warmup < 0 {
		fmt.Fprintln(os.Stderr, "rfhbench: -epochs must be >= 1 and -warmup >= 0")
		os.Exit(2)
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	} else if _, err := time.Parse("2006-01-02", *date); err != nil {
		fmt.Fprintln(os.Stderr, "rfhbench: -date must be YYYY-MM-DD")
		os.Exit(2)
	}

	switch *suite {
	case "transport":
		results, err := runTransportSuite(*warmup, *epochs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfhbench:", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Fprintf(os.Stderr, "%-14s %8d ns/op  %9.0f ops/sec\n", r.Name, r.NsPerOp, r.OpsPerSec)
		}
		writeReport(*out, transportReport{
			Date:       *date,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Results:    results,
		})
	case "sim":
		rep := report{
			Date:       *date,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
		scales := []struct {
			name            string
			dcs, partitions int
		}{
			{"seed", 10, 64},
			{"10x", 100, 640},
		}
		for _, s := range scales {
			res, err := measure(s.name, s.dcs, s.partitions, *warmup, *epochs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfhbench:", err)
				os.Exit(1)
			}
			rep.Scales = append(rep.Scales, res)
			fmt.Fprintf(os.Stderr, "%-5s %7.1f epochs/sec  %9d ns/epoch  %8.0f allocs/epoch\n",
				s.name, res.EpochsPerSec, res.NsPerEpoch, res.AllocsPerEpoch)
		}
		writeReport(*out, rep)
	default:
		fmt.Fprintln(os.Stderr, "rfhbench: -suite must be sim or transport")
		os.Exit(2)
	}
}
