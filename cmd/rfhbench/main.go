// Command rfhbench measures steady-state Engine.Step throughput at the
// paper's seed scale (10 datacenters, 100 servers, 64 partitions) and
// at ten times that, and writes the numbers as JSON — the source of the
// committed BENCH_sim.json snapshot.
//
//	rfhbench -o BENCH_sim.json
//	rfhbench -epochs 500 -warmup 50
//	rfhbench -date 2026-08-01 -o BENCH_sim.json   # pinned stamp for reproducible diffs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// scaleResult is one benchmark row of BENCH_sim.json.
type scaleResult struct {
	Name           string  `json:"name"`
	DCs            int     `json:"dcs"`
	Servers        int     `json:"servers"`
	Partitions     int     `json:"partitions"`
	Epochs         int     `json:"epochs"`
	EpochsPerSec   float64 `json:"epochs_per_sec"`
	NsPerEpoch     int64   `json:"ns_per_epoch"`
	AllocsPerEpoch float64 `json:"allocs_per_epoch"`
	BytesPerEpoch  float64 `json:"bytes_per_epoch"`
}

type report struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scales     []scaleResult `json:"scales"`
}

func buildEngine(dcs, partitions int) (*sim.Engine, error) {
	var w *topology.World
	var err error
	if dcs == 10 {
		w = topology.PaperWorld()
	} else {
		w, err = topology.RandomGeometricWorld(dcs, 3, 0x3013)
		if err != nil {
			return nil, err
		}
	}
	rt, err := network.NewRouter(w)
	if err != nil {
		return nil, err
	}
	spec := cluster.DefaultSpec()
	spec.Partitions = partitions
	cl, err := cluster.New(w, spec)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewUniform(workload.Config{
		Partitions: partitions, DCs: w.NumDCs(), Lambda: 300, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	cfg.Epochs = 1 << 30 // stepped manually
	return sim.New(cl, rt, gen, core.NewRFH(), cfg)
}

// measure steps the engine warmup epochs to pass the initial
// replication burst, then times epochs more, counting allocations via
// runtime.MemStats deltas.
func measure(name string, dcs, partitions, warmup, epochs int) (scaleResult, error) {
	eng, err := buildEngine(dcs, partitions)
	if err != nil {
		return scaleResult{}, err
	}
	defer eng.Close()
	for i := 0; i < warmup; i++ {
		if err := eng.Step(); err != nil {
			return scaleResult{}, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < epochs; i++ {
		if err := eng.Step(); err != nil {
			return scaleResult{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return scaleResult{
		Name:           name,
		DCs:            dcs,
		Servers:        eng.Cluster().NumServers(),
		Partitions:     partitions,
		Epochs:         epochs,
		EpochsPerSec:   float64(epochs) / elapsed.Seconds(),
		NsPerEpoch:     elapsed.Nanoseconds() / int64(epochs),
		AllocsPerEpoch: float64(after.Mallocs-before.Mallocs) / float64(epochs),
		BytesPerEpoch:  float64(after.TotalAlloc-before.TotalAlloc) / float64(epochs),
	}, nil
}

func main() {
	var (
		out    = flag.String("o", "", "write JSON here instead of stdout")
		warmup = flag.Int("warmup", 30, "warmup epochs before timing starts")
		epochs = flag.Int("epochs", 300, "timed epochs per scale")
		date   = flag.String("date", "", "date stamp (YYYY-MM-DD) embedded in the snapshot; default today (UTC)")
	)
	flag.Parse()
	if *epochs < 1 || *warmup < 0 {
		fmt.Fprintln(os.Stderr, "rfhbench: -epochs must be >= 1 and -warmup >= 0")
		os.Exit(2)
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	} else if _, err := time.Parse("2006-01-02", *date); err != nil {
		fmt.Fprintln(os.Stderr, "rfhbench: -date must be YYYY-MM-DD")
		os.Exit(2)
	}

	rep := report{
		Date:       *date,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	scales := []struct {
		name            string
		dcs, partitions int
	}{
		{"seed", 10, 64},
		{"10x", 100, 640},
	}
	for _, s := range scales {
		res, err := measure(s.name, s.dcs, s.partitions, *warmup, *epochs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfhbench:", err)
			os.Exit(1)
		}
		rep.Scales = append(rep.Scales, res)
		fmt.Fprintf(os.Stderr, "%-5s %7.1f epochs/sec  %9d ns/epoch  %8.0f allocs/epoch\n",
			s.name, res.EpochsPerSec, res.NsPerEpoch, res.AllocsPerEpoch)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfhbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "rfhbench:", err)
		os.Exit(1)
	}
}
