// Command rfhchaos runs seeded chaos scenarios against the live
// cluster runtime: a fault plan derived from each seed injects message
// drops, duplicates, delays, link cuts and node crash/restart cycles
// into a loopback fleet while invariant checkers watch for lost acked
// writes, stale reads, replica-ceiling breaches and failed
// re-convergence. Each run also records the complete operation history
// (every put/get invocation and response, with version stamps and
// binding/relaxed marks) and judges it at quiescence with the
// histcheck checkers: per-key WGL linearizability plus the session
// guarantees (read-your-writes, monotonic reads, monotonic writes).
// Every scenario is fully deterministic: the same seed always produces
// the same faults, the same trajectory and the same verdict, so a
// failing seed printed by a matrix run reproduces exactly.
//
// Examples:
//
//	rfhchaos -seeds 50                 # seeds 1..50, stop on first failure
//	rfhchaos -seed 0x2a -v             # replay one seed with event traces
//	rfhchaos -seeds 200 -keep-going    # full matrix, report all failures
//	rfhchaos -seed 7 -v -dump          # print the full trajectory dump
//	rfhchaos -seeds 20 -durable        # disk-backed fleets: crashes keep
//	                                   # their WALs, restarts replay them
//	rfhchaos -seed 7 -check sessions   # cheap linear scan only
//	rfhchaos -seed 7 -dump-history     # print the recorded op history
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chaos"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 20, "run scenario seeds 1..N")
		seed     = flag.Uint64("seed", 0, "run exactly this seed instead of a matrix (for replaying failures)")
		verbose  = flag.Bool("v", false, "include per-event fault traces in the trajectory")
		dump     = flag.Bool("dump", false, "print every scenario's trajectory, not just failing ones")
		keep     = flag.Bool("keep-going", false, "run the whole matrix even after a failure")
		nodes    = flag.Int("nodes", 0, "override fleet size")
		faultEp  = flag.Int("fault-epochs", 0, "override fault-window length")
		coolEp   = flag.Int("cool-epochs", 0, "override recovery-window length")
		dropRate = flag.Float64("drop", -1, "override message drop probability")
		durable  = flag.Bool("durable", false, "run each scenario on the durable engine in a fresh temp directory (crashes keep disk state, restarts replay WALs)")
		noFrame  = flag.Bool("no-oneframe", false, "with -durable: disable the one-frame snapshot threshold so every replica ship is a probed, delta-planned chunked session")
		check    = flag.String("check", "linearizable", "history checkers at quiescence: linearizable (WGL search + session scan), sessions (linear scan only) or off")
		dumpHist = flag.Bool("dump-history", false, "print every scenario's recorded op history (failing scenarios always print theirs)")
	)
	flag.Parse()

	var list []uint64
	if *seed != 0 {
		list = []uint64{*seed}
	} else {
		for s := 1; s <= *seeds; s++ {
			list = append(list, uint64(s))
		}
	}

	failed := 0
	for _, s := range list {
		opts := chaos.DefaultOptions(s)
		opts.Verbose = *verbose
		opts.Check = *check
		if *nodes > 0 {
			opts.Nodes = *nodes
		}
		if *faultEp > 0 {
			opts.FaultEpochs = *faultEp
		}
		if *coolEp > 0 {
			opts.CoolEpochs = *coolEp
		}
		if *dropRate >= 0 {
			opts.DropRate = *dropRate
		}
		if *durable {
			dir, err := os.MkdirTemp("", fmt.Sprintf("rfhchaos-seed%d-", s))
			if err != nil {
				fmt.Fprintf(os.Stderr, "rfhchaos: seed 0x%x: %v\n", s, err)
				os.Exit(2)
			}
			opts.DataDir = dir
			opts.DisableOneFrame = *noFrame
		}

		res, err := chaos.Run(opts)
		if opts.DataDir != "" {
			os.RemoveAll(opts.DataDir)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfhchaos: seed 0x%x: %v\n", s, err)
			os.Exit(2)
		}
		if res.Passed() {
			fmt.Printf("seed=0x%-4x PASS epochs=%d acked=%d reads=%d rerr=%d %s\n",
				s, res.Epochs, res.Acked, res.ReadOK, res.ReadErrs, res.Faults.String())
			if *dump {
				fmt.Print(res.Trajectory)
			}
			if *dumpHist {
				printHistory(res)
			}
			continue
		}
		failed++
		fmt.Printf("seed=0x%-4x FAIL %d violation(s)\n", s, len(res.Violations))
		for i := range res.Violations {
			fmt.Printf("  %s\n", res.Violations[i].String())
		}
		fmt.Print(res.Trajectory)
		if *dumpHist {
			printHistory(res)
		}
		fmt.Printf("replay: rfhchaos -seed 0x%x -v -dump -dump-history\n", s)
		if !*keep {
			os.Exit(1)
		}
	}
	if failed > 0 {
		fmt.Printf("%d/%d scenarios failed\n", failed, len(list))
		os.Exit(1)
	}
	fmt.Printf("all %d scenarios passed\n", len(list))
}

// printHistory dumps the recorded op history, one line per op in
// histcheck's canonical format — the record the history checkers
// judged, and the input to feed back into them when diagnosing.
func printHistory(res *chaos.Result) {
	fmt.Printf("history ops=%d\n", len(res.History))
	for i := range res.History {
		fmt.Printf("  %s\n", res.History[i].String())
	}
}
