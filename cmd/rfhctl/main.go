// Command rfhctl is the operator client for a live rfhnode cluster.
//
//	rfhctl put -addr 127.0.0.1:7000 mykey myvalue
//	rfhctl get -addr 127.0.0.1:7000 mykey
//	rfhctl ping -addr 127.0.0.1:7000
//	rfhctl dump -addr 127.0.0.1:7000
//	rfhctl tick -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 -n 5
//	rfhctl replay -peers ... -trace trace.csv -partitions 64
//
// tick drives the whole roster through lockstep epochs (flush every
// node, then run every node) — the deterministic way to advance
// clusters started with -epoch 0. replay injects the demand of a CSV
// trace produced by the library's EmitTrace: for every epoch it issues
// each partition's queries against the requester datacenter's node,
// ticks the cluster, and finally reports the client-observed latency
// distribution.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rfhctl:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: rfhctl <put|get|ping|dump|tick|replay> [flags]")
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "put":
		return cmdPut(rest)
	case "get":
		return cmdGet(rest)
	case "ping":
		return cmdPing(rest)
	case "dump":
		return cmdDump(rest)
	case "tick":
		return cmdTick(rest)
	case "replay":
		return cmdReplay(rest)
	default:
		return usage()
	}
}

// client dials are one-shot; keep the retry budget small so operator
// errors (wrong address) fail fast.
func newClient() *transport.TCP {
	return transport.NewTCPClient(transport.DefaultTCPOptions())
}

func cmdPut(args []string) error {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	addr := fs.String("addr", "", "address of any cluster node")
	fs.Parse(args)
	if *addr == "" || fs.NArg() != 2 {
		return fmt.Errorf("usage: rfhctl put -addr host:port <key> <value>")
	}
	cl := newClient()
	defer cl.Close()
	resp, err := cl.Send(*addr, &transport.Message{
		Kind:  node.KindPut,
		Key:   []byte(fs.Arg(0)),
		Value: []byte(fs.Arg(1)),
	})
	if err != nil {
		return err
	}
	if err := resp.Err(); err != nil {
		return err
	}
	rcpt, err := node.DecodePutReceipt(resp)
	if err != nil {
		return fmt.Errorf("bad put receipt: %v", err)
	}
	fmt.Printf("OK version=%d acked=%v\n", rcpt.Version, rcpt.Acked)
	return nil
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ExitOnError)
	addr := fs.String("addr", "", "address of any cluster node")
	fs.Parse(args)
	if *addr == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: rfhctl get -addr host:port <key>")
	}
	cl := newClient()
	defer cl.Close()
	resp, err := cl.Send(*addr, &transport.Message{
		Kind: node.KindGet,
		Key:  []byte(fs.Arg(0)),
	})
	if err != nil {
		return err
	}
	if err := resp.Err(); err != nil {
		return err
	}
	if resp.Status == transport.StatusNotFound {
		return fmt.Errorf("key %q not found", fs.Arg(0))
	}
	os.Stdout.Write(resp.Value)
	fmt.Println()
	return nil
}

func cmdPing(args []string) error {
	fs := flag.NewFlagSet("ping", flag.ExitOnError)
	addr := fs.String("addr", "", "node address")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("usage: rfhctl ping -addr host:port")
	}
	cl := newClient()
	defer cl.Close()
	start := node.WallClock.Now()
	resp, err := cl.Send(*addr, &transport.Message{Kind: node.KindPing})
	if err != nil {
		return err
	}
	if err := resp.Err(); err != nil {
		return err
	}
	fmt.Printf("pong from %s in %v\n", *addr, node.WallClock.Now().Sub(start))
	return nil
}

func cmdDump(args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	addr := fs.String("addr", "", "node address")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("usage: rfhctl dump -addr host:port")
	}
	cl := newClient()
	defer cl.Close()
	resp, err := cl.Send(*addr, &transport.Message{Kind: node.KindDump})
	if err != nil {
		return err
	}
	if err := resp.Err(); err != nil {
		return err
	}
	var pretty map[string]any
	if err := json.Unmarshal(resp.Value, &pretty); err != nil {
		return fmt.Errorf("bad dump payload: %v", err)
	}
	out, err := json.MarshalIndent(pretty, "", "  ")
	if err != nil {
		return err
	}
	os.Stdout.Write(out)
	fmt.Println()

	// A typed second pass over the same payload summarises the durable
	// state the JSON above carries per partition: total bytes resident,
	// WAL records awaiting compaction, and transfer-session counters.
	var d node.DumpInfo
	if err := json.Unmarshal(resp.Value, &d); err == nil && d.Durable {
		bytes, walRecords, compactions, resident := 0, 0, 0, 0
		for _, p := range d.Partitions {
			bytes += p.Bytes
			walRecords += p.WALRecords
			compactions += p.Compactions
			if p.Resident {
				resident++
			}
		}
		fmt.Printf("durable: %d/%d partitions resident, %d bytes, %d WAL records, %d compactions\n",
			resident, len(d.Partitions), bytes, walRecords, compactions)
		t := d.Transfers
		fmt.Printf("transfers: %d started, %d completed, %d resumed, %d expired, %d chunks, %d one-frame\n",
			t.Started, t.Completed, t.Resumed, t.Expired, t.ChunksSent, t.OneFrame)
		fmt.Printf("delta: %d delta sessions, %d full, %d bytes sent, %d bytes saved\n",
			t.DeltaSessions, t.FullSessions, t.BytesSent, t.BytesSaved)
	}
	if ae := d.AntiEntropy; ae.Rounds > 0 || ae.Healed > 0 {
		fmt.Printf("anti-entropy: %d rounds, %d synced, %d repairs shipped, %d entries healed, %d payload bytes\n",
			ae.Rounds, ae.Synced, ae.Repairs, ae.Healed, ae.PayloadBytes)
	}
	return nil
}

// parseAddrs splits a -peers list. Order matters: position i is roster
// index i (datacenter i of a replayed trace), so pass addresses in
// node-id order.
func parseAddrs(s string) ([]string, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -peers (host:port,... in node-id order)")
	}
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, fmt.Errorf("empty -peers")
	}
	return addrs, nil
}

// tickOnce drives one lockstep epoch: every node flushes (broadcasts
// its stats), then every node runs its decision step. Matching the
// fleet harness, both phases visit the roster in order.
func tickOnce(cl *transport.TCP, addrs []string) error {
	for _, a := range addrs {
		resp, err := cl.Send(a, &transport.Message{Kind: node.KindEpochFlush})
		if err != nil {
			return fmt.Errorf("flush %s: %w", a, err)
		}
		if err := resp.Err(); err != nil {
			return fmt.Errorf("flush %s: %w", a, err)
		}
	}
	for _, a := range addrs {
		resp, err := cl.Send(a, &transport.Message{Kind: node.KindEpochRun})
		if err != nil {
			return fmt.Errorf("run %s: %w", a, err)
		}
		if err := resp.Err(); err != nil {
			return fmt.Errorf("run %s: %w", a, err)
		}
	}
	return nil
}

func cmdTick(args []string) error {
	fs := flag.NewFlagSet("tick", flag.ExitOnError)
	peers := fs.String("peers", "", "all node addresses, comma separated, in node-id order")
	n := fs.Int("n", 1, "number of epochs to advance")
	fs.Parse(args)
	addrs, err := parseAddrs(*peers)
	if err != nil {
		return err
	}
	cl := newClient()
	defer cl.Close()
	for i := 0; i < *n; i++ {
		if err := tickOnce(cl, addrs); err != nil {
			return err
		}
	}
	fmt.Printf("advanced %d epoch(s) on %d nodes\n", *n, len(addrs))
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	peers := fs.String("peers", "", "all node addresses, comma separated, in node-id order")
	trace := fs.String("trace", "", "CSV demand trace (rows: epoch,partition,q_dc0,...)")
	partitions := fs.Int("partitions", 64, "partition count of the trace and the cluster")
	epochs := fs.Int("epochs", 0, "epochs to replay (0 = full trace length)")
	seedKeys := fs.Bool("seed-keys", true, "put one key per partition before replaying so gets hit data")
	fs.Parse(args)
	addrs, err := parseAddrs(*peers)
	if err != nil {
		return err
	}
	if *trace == "" {
		return fmt.Errorf("missing -trace")
	}
	f, err := os.Open(*trace)
	if err != nil {
		return err
	}
	tr, err := workload.NewTrace(*trace, f, *partitions, len(addrs))
	f.Close()
	if err != nil {
		return err
	}
	n := *epochs
	if n <= 0 {
		n = tr.Len()
	}

	cl := newClient()
	defer cl.Close()

	keys := make([]string, *partitions)
	for p := range keys {
		keys[p] = node.PartitionKey(p, *partitions)
	}
	if *seedKeys {
		for p, k := range keys {
			resp, err := cl.Send(addrs[0], &transport.Message{
				Kind:  node.KindPut,
				Key:   []byte(k),
				Value: []byte(fmt.Sprintf("seed-%d", p)),
			})
			if err != nil {
				return fmt.Errorf("seed partition %d: %w", p, err)
			}
			if err := resp.Err(); err != nil {
				return fmt.Errorf("seed partition %d: %w", p, err)
			}
		}
	}

	lat := metrics.NewLatencySampler()
	queries, found, errors := 0, 0, 0
	for e := 0; e < n; e++ {
		m := tr.Epoch(e)
		for p := 0; p < *partitions; p++ {
			for d, q := range m.Q[p] {
				for i := 0; i < q; i++ {
					queries++
					start := node.WallClock.Now()
					resp, err := cl.Send(addrs[d], &transport.Message{
						Kind: node.KindGet,
						Key:  []byte(keys[p]),
					})
					if err != nil || resp.Err() != nil {
						errors++
						continue
					}
					lat.Observe(float64(node.WallClock.Now().Sub(start).Microseconds()) / 1e3)
					if resp.Status == transport.StatusOK {
						found++
					}
				}
			}
		}
		if err := tickOnce(cl, addrs); err != nil {
			return err
		}
		fmt.Printf("epoch %d/%d: %d queries so far\n", e+1, n, queries)
	}

	fmt.Printf("replayed %d epochs: %d queries, %d found, %d errors\n", n, queries, found, errors)
	if lat.Count() > 0 {
		fmt.Printf("client latency ms: mean %.3f  p50 %.3f  p99 %.3f  p99.9 %.3f  max %.3f\n",
			lat.Mean(), lat.Quantile(0.5), lat.Quantile(0.99), lat.Quantile(0.999), lat.Quantile(1))
	}
	return nil
}
