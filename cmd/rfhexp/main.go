// Command rfhexp reproduces the paper's evaluation: every figure from
// Fig. 3 through Fig. 10 plus the Table I parameter echo, with the
// paper's qualitative claims checked against the simulated data.
//
// Examples:
//
//	rfhexp -all                 # summarise every figure
//	rfhexp -fig 3b              # one figure's curves (summary form)
//	rfhexp -fig 4a -csv         # one figure as CSV on stdout
//	rfhexp -fig 3b -plot        # ASCII chart in the terminal
//	rfhexp -check               # evaluate every paper claim, exit 1 on failure
//	rfhexp -table               # Table I
//	rfhexp -ablate beta         # sweep a decision threshold
//	rfhexp -report > report.md  # full Markdown reproduction report
//	rfhexp -quick -all          # shortened runs for a fast look
package main

import (
	"flag"
	"fmt"
	"os"

	rfh "repro"
)

func main() {
	var (
		fig    = flag.String("fig", "", "figure id to reproduce (e.g. 3a, 4c, 10)")
		all    = flag.Bool("all", false, "summarise every figure")
		check  = flag.Bool("check", false, "evaluate the paper's qualitative claims; exit 1 if any fails")
		table  = flag.Bool("table", false, "print the Table I configuration")
		csvOut = flag.Bool("csv", false, "emit -fig output as CSV instead of a summary")
		plotIt = flag.Bool("plot", false, "render -fig output as an ASCII chart")
		ablate = flag.String("ablate", "", "sweep one RFH parameter (alpha, beta, gamma, delta, mu, hubK, serving)")
		report = flag.Bool("report", false, "write the full reproduction report as Markdown to stdout")
		quick  = flag.Bool("quick", false, "shorten runs for a fast qualitative look")
		seed   = flag.Uint64("seed", 0, "random seed override (0 = paper default)")
		seeds  = flag.Int("seeds", 0, "with -fig: rerun over N seeds and report mean/stddev per policy")
	)
	flag.Parse()

	opts := rfh.ExperimentOptions{Seed: *seed}
	if *quick {
		opts.EpochsRandom, opts.EpochsFlash, opts.EpochsFailure = 120, 200, 200
		opts.FailEpoch = 120
	}
	exp, err := rfh.NewExperiments(opts)
	if err != nil {
		fail(err)
	}

	did := false
	if *table {
		did = true
		for _, row := range exp.TableI() {
			fmt.Printf("  %-30s %s\n", row[0], row[1])
		}
	}
	if *fig != "" && *seeds > 1 {
		did = true
		_, summary, err := exp.MultiSeed(*fig, *seeds)
		if err != nil {
			fail(err)
		}
		fmt.Print(summary)
	} else if *fig != "" {
		did = true
		switch {
		case *csvOut:
			if err := exp.WriteFigureCSV(os.Stdout, *fig); err != nil {
				fail(err)
			}
		case *plotIt:
			chart, err := exp.PlotFigure(*fig, 76, 18)
			if err != nil {
				fail(err)
			}
			fmt.Print(chart)
		default:
			if err := summariseFigure(exp, *fig); err != nil {
				fail(err)
			}
		}
	}
	if *all {
		did = true
		for _, id := range rfh.FigureIDs() {
			if err := summariseFigure(exp, id); err != nil {
				fail(err)
			}
			fmt.Println()
		}
	}
	if *ablate != "" {
		did = true
		_, summary, err := exp.Ablation(*ablate)
		if err != nil {
			fail(err)
		}
		fmt.Print(summary)
	}
	if *report {
		did = true
		if err := exp.WriteReport(os.Stdout); err != nil {
			fail(err)
		}
	}
	if *check {
		did = true
		claims, err := exp.CheckAll()
		if err != nil {
			fail(err)
		}
		failed := 0
		for _, c := range claims {
			status := "PASS"
			if !c.Pass {
				status = "FAIL"
				failed++
			}
			fmt.Printf("[%s] fig %-3s %-62s %s\n", status, c.Figure, c.Description, c.Detail)
		}
		fmt.Printf("%d/%d claims hold\n", len(claims)-failed, len(claims))
		if failed > 0 {
			os.Exit(1)
		}
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}

func summariseFigure(exp *rfh.Experiments, id string) error {
	f, err := exp.Figure(id)
	if err != nil {
		return err
	}
	fmt.Println(f.Title)
	fmt.Printf("  %-16s %12s %12s %12s\n", "series", "first", "late-mean", "last")
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			continue
		}
		late := s.Points[len(s.Points)*3/4:]
		sum := 0.0
		for _, v := range late {
			sum += v
		}
		fmt.Printf("  %-16s %12.4g %12.4g %12.4g\n",
			s.Name, s.Points[0], sum/float64(len(late)), s.Points[len(s.Points)-1])
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rfhexp:", err)
	os.Exit(1)
}
