// Command rfhlint is the module's own static-analysis suite: a
// multichecker over the analyzers that enforce the simulator's
// determinism and safety contract (DESIGN.md, "Determinism contract").
//
//	go run ./cmd/rfhlint ./...
//
// Checks:
//
//	detrange      order-sensitive map iteration in deterministic packages
//	noglobalrand  math/rand global source in deterministic packages
//	nowallclock   wall-clock reads in deterministic packages
//	divguard      unguarded float division by capacity/count denominators
//	closecheck    module closer types constructed but never closed
//	lockcheck     network sends / annotated callees reached under n.mu,
//	              double locks, lock/unlock pairing on every return path
//	kindswitch    non-exhaustive switches and registries over the
//	              Kind*/Status* wire constant families
//	errsink       discarded error results of data-plane functions
//
// lockcheck, kindswitch and errsink are dataflow-aware: they build
// per-function summaries (may-send, requires-unlocked, must-check) and
// propagate them across package boundaries as facts, so a violation in
// an importer of an annotated function is caught without whole-program
// analysis.
//
// Findings print in go-vet format (or as JSON with -json) and make the
// command exit 1; CI runs it as a required step, so the tree stays
// rfhlint-clean. False positives are silenced in place with a reasoned
// directive:
//
//	//lint:ignore rfhlint/<check> <reason>
//
// placed on the offending line or the line above it. A directive whose
// finding disappears is itself reported as stale, so suppressions
// cannot outlive their reason. Test files are exempt from the
// determinism checks and from errsink (tests discard errors while
// arranging fixtures) but not from closecheck.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/closecheck"
	"repro/internal/analysis/detrange"
	"repro/internal/analysis/divguard"
	"repro/internal/analysis/errsink"
	"repro/internal/analysis/kindswitch"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/noglobalrand"
	"repro/internal/analysis/nowallclock"
)

var analyzers = []*analysis.Analyzer{
	closecheck.Analyzer,
	detrange.Analyzer,
	divguard.Analyzer,
	errsink.Analyzer,
	kindswitch.Analyzer,
	lockcheck.Analyzer,
	noglobalrand.Analyzer,
	nowallclock.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of go-vet text")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rfhlint [-list] [-json] packages...")
		fmt.Fprintln(os.Stderr, "enforces the determinism and safety contract; see DESIGN.md")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		out := make([]analysis.JSONDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, analysis.ToJSON(pkgs[0].Fset, d))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(analysis.Format(pkgs[0].Fset, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rfhlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfhlint:", err)
	os.Exit(2)
}
