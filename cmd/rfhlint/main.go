// Command rfhlint is the module's own static-analysis suite: a
// multichecker over the analyzers that enforce the simulator's
// determinism and safety contract (DESIGN.md, "Determinism contract").
//
//	go run ./cmd/rfhlint ./...
//
// Checks:
//
//	detrange      order-sensitive map iteration in deterministic packages
//	noglobalrand  math/rand global source in deterministic packages
//	nowallclock   wall-clock reads in deterministic packages
//	divguard      unguarded float division by capacity/count denominators
//	closecheck    module closer types constructed but never closed
//
// Findings print in go-vet format and make the command exit 1; CI runs
// it as a required step, so the tree stays rfhlint-clean. False
// positives are silenced in place with a reasoned directive:
//
//	//lint:ignore rfhlint/<check> <reason>
//
// placed on the offending line or the line above it. Test files are
// exempt from the determinism checks (they do not feed simulation
// state) but not from closecheck.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/closecheck"
	"repro/internal/analysis/detrange"
	"repro/internal/analysis/divguard"
	"repro/internal/analysis/noglobalrand"
	"repro/internal/analysis/nowallclock"
)

var analyzers = []*analysis.Analyzer{
	closecheck.Analyzer,
	detrange.Analyzer,
	divguard.Analyzer,
	noglobalrand.Analyzer,
	nowallclock.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: rfhlint [-list] packages...")
		fmt.Fprintln(os.Stderr, "enforces the determinism and safety contract; see DESIGN.md")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(analysis.Format(pkgs[0].Fset, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rfhlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfhlint:", err)
	os.Exit(2)
}
