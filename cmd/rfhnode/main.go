// Command rfhnode serves one node of a live RFH cluster over TCP: a
// partitioned KV store whose replica placement is driven by the same
// policy layer as the simulator. By default the store is in-memory;
// -data-dir puts it on the durable engine (per-partition WALs plus
// compacted snapshots), which a restarted node replays on the way up
// before rejoining the cluster.
//
//	rfhnode -id 0 -peers 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002
//	rfhnode -id 1 -peers ... -epoch 2s        # self-ticking epochs
//	rfhnode -id 2 -peers ... -epoch 0         # manual: tick via `rfhctl tick`
//	rfhnode -id 0 -peers ... -data-dir /var/lib/rfh/node0   # durable store
//
// Every peer must be started with the same -peers roster, -partitions,
// -policy, -capacity, -suspect-after and -seed, so that all nodes hold
// the identical deterministic view of the cluster. -write-quorum and
// -read-quorum bind on whichever node coordinates a request (the
// partition primary), so run the same values fleet-wide for uniform
// durability semantics. With -epoch 0 the node never ticks on its own;
// drive the cluster in lockstep with `rfhctl tick`, which is also how
// seeded runs stay reproducible.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/node"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rfhnode:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		id           = flag.Int("id", -1, "this node's id (must appear in -peers)")
		peersFlag    = flag.String("peers", "", "full cluster roster as id=host:port,... (≥3 peers)")
		listen       = flag.String("listen", "", "listen address (default: this id's address from -peers)")
		partitions   = flag.Int("partitions", 64, "number of partitions (same on every peer)")
		capacity     = flag.Int("capacity", 100, "per-replica queries served per epoch, eq. (12) overload bound")
		policyName   = flag.String("policy", "rfh", "placement policy: rfh, random, owner, request or ead")
		suspectAfter = flag.Int("suspect-after", 3, "consecutive missed stats broadcasts before a peer is declared failed")
		seed         = flag.Uint64("seed", 1, "determinism seed (same on every peer)")
		epoch        = flag.Duration("epoch", 0, "epoch tick period; 0 means manual ticking via rfhctl tick")
		writeQuorum  = flag.Int("write-quorum", 1, "holders that must durably accept before a put is acked (W; capped at the eq. 14 placement floor)")
		readQuorum   = flag.Int("read-quorum", 1, "holders consulted per read, newest version wins and stale copies are repaired (R)")
		dataDir      = flag.String("data-dir", "", "durable storage directory (WALs + snapshots, recovered on restart); empty keeps the in-memory store")
		fsync        = flag.Bool("fsync", true, "fsync WAL appends and snapshots before acking (durable mode only; off trades power-cut safety for speed)")
		aeInterval   = flag.Int("ae-interval", 0, "epochs between anti-entropy digest rounds (primaries reconcile co-holders via Merkle digests; 0 disables)")
	)
	flag.Parse()

	peers, err := parsePeers(*peersFlag)
	if err != nil {
		return err
	}
	cfg := node.DefaultConfig(*id, peers)
	cfg.Partitions = *partitions
	cfg.ReplicaCapacity = *capacity
	cfg.PolicyName = *policyName
	cfg.SuspectAfter = *suspectAfter
	cfg.Seed = *seed
	cfg.WriteQuorum = *writeQuorum
	cfg.ReadQuorum = *readQuorum
	cfg.DataDir = *dataDir
	cfg.Fsync = *fsync
	cfg.AEInterval = *aeInterval
	if err := cfg.Validate(); err != nil {
		return err
	}

	addr := *listen
	if addr == "" {
		for _, p := range cfg.Peers {
			if p.ID == *id {
				addr = p.Addr
			}
		}
	}

	tr, err := transport.ListenTCP(addr, nil, transport.DefaultTCPOptions())
	if err != nil {
		return err
	}
	n, err := node.New(cfg, tr)
	if err != nil {
		tr.Close()
		return err
	}
	defer n.Close()
	durability := "memory"
	if cfg.DataDir != "" {
		durability = fmt.Sprintf("durable %s fsync=%v", cfg.DataDir, cfg.Fsync)
	}
	fmt.Printf("rfhnode: node %d listening on %s (%d peers, %d partitions, policy %s, min replicas %d, W=%d R=%d, %s)\n",
		*id, tr.Addr(), len(cfg.Peers), cfg.Partitions, cfg.PolicyName, n.MinReplicas(),
		cfg.WriteQuorum, cfg.ReadQuorum, durability)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	if *epoch <= 0 {
		<-sigc
		fmt.Println("rfhnode: shutting down")
		return nil
	}

	// Self-ticking mode: alternate the two epoch phases on half-period
	// boundaries. FlushEpoch broadcasts this node's stats; half a period
	// later RunEpoch folds everyone's broadcasts into the decision step.
	// Nodes need not be phase-aligned — a stats blob arriving after the
	// local RunEpoch is buffered for the next epoch.
	tick := time.NewTicker(*epoch / 2)
	defer tick.Stop()
	flushNext := true
	for {
		select {
		case <-sigc:
			fmt.Println("rfhnode: shutting down")
			return nil
		case <-tick.C:
			var err error
			if flushNext {
				err = n.FlushEpoch()
			} else {
				err = n.RunEpoch()
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfhnode: epoch tick:", err)
			}
			flushNext = !flushNext
		}
	}
}

// parsePeers parses "0=127.0.0.1:7000,1=127.0.0.1:7001,..." into a
// roster sorted by id.
func parsePeers(s string) ([]node.Peer, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -peers (id=host:port,...)")
	}
	var peers []node.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer %q: want id=host:port", part)
		}
		n, err := strconv.Atoi(id)
		if err != nil {
			return nil, fmt.Errorf("peer %q: bad id: %v", part, err)
		}
		peers = append(peers, node.Peer{ID: n, Addr: addr})
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	return peers, nil
}
