// Command rfhsim runs one replication-policy simulation over the paper's
// 10-datacenter, 100-server world and prints the per-epoch metric series
// as CSV (or a compact summary with -summary).
//
// Examples:
//
//	rfhsim -policy rfh -workload flash -epochs 400 > rfh_flash.csv
//	rfhsim -trace demand.csv -policy rfh -summary
//	rfhsim -policy random -epochs 250 -summary
//	rfhsim -policy rfh -fail-epoch 290 -fail-servers 30 -epochs 500 -summary
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"

	rfh "repro"
	"repro/internal/stats"
)

func main() {
	var (
		policy      = flag.String("policy", "rfh", "replication policy: rfh, random, owner or request")
		workload    = flag.String("workload", "uniform", "query setting: uniform, flash, zipf, diurnal or drift")
		epochs      = flag.Int("epochs", 250, "epochs to simulate")
		lambda      = flag.Float64("lambda", 300, "Poisson mean queries per partition per epoch")
		seed        = flag.Uint64("seed", 1, "random seed")
		serving     = flag.String("serving", "path", "serving model: path or nearest")
		zipf        = flag.Float64("zipf", 1.0, "partition-popularity exponent for -workload zipf")
		summary     = flag.Bool("summary", false, "print a summary instead of per-epoch CSV")
		placement   = flag.Bool("placement", false, "print the final replica placement per datacenter")
		failEpoch   = flag.Int("fail-epoch", 0, "epoch at which to fail servers (0 = none)")
		failServers = flag.Int("fail-servers", 0, "number of random servers to fail at -fail-epoch")
		traceFile   = flag.String("trace", "", "CSV demand trace to replay instead of a synthetic workload")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfhsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rfhsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := rfh.DefaultConfig()
	cfg.Policy = *policy
	cfg.Workload = *workload
	cfg.Epochs = *epochs
	cfg.Lambda = *lambda
	cfg.Seed = *seed
	cfg.Serving = *serving
	cfg.ZipfExponent = *zipf

	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfhsim:", err)
			os.Exit(1)
		}
		gen, err := rfh.LoadTraceWorkload(*traceFile, f, 64, 10)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfhsim:", err)
			os.Exit(1)
		}
		cfg.CustomWorkload = gen
	}

	var events []rfh.FailureEvent
	if *failEpoch > 0 && *failServers > 0 {
		rng := stats.NewRNG(*seed ^ 0xFA11)
		perm := rng.Perm(rfh.NumServers())
		ev := rfh.FailureEvent{Epoch: *failEpoch}
		for _, s := range perm[:*failServers] {
			ev.Fail = append(ev.Fail, s)
		}
		events = append(events, ev)
	}

	res, err := rfh.RunWithFailures(cfg, events)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfhsim:", err)
		os.Exit(1)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfhsim:", err)
			os.Exit(1)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rfhsim:", err)
			os.Exit(1)
		}
		f.Close()
	}

	if *placement {
		printPlacement(res)
		if !*summary {
			return
		}
	}
	if *summary {
		printSummary(res)
		return
	}
	if err := printCSV(res); err != nil {
		fmt.Fprintln(os.Stderr, "rfhsim:", err)
		os.Exit(1)
	}
}

func printPlacement(res *rfh.Result) {
	fmt.Printf("final placement (policy=%s, epoch %d)\n", res.Policy, res.Epochs)
	fmt.Printf("  %-4s %8s %10s %10s\n", "DC", "alive", "replicas", "primaries")
	for _, d := range res.Placement {
		fmt.Printf("  %-4s %8d %10d %10d\n", d.Name, d.AliveServers, d.Replicas, d.Primaries)
	}
}

func printSummary(res *rfh.Result) {
	fmt.Printf("policy=%s epochs=%d\n", res.Policy, res.Epochs)
	rows := []struct{ label, series string }{
		{"replica utilization (final)", rfh.SeriesUtilization},
		{"total replicas (final)", rfh.SeriesTotalReplicas},
		{"avg replicas/partition (final)", rfh.SeriesAvgReplicas},
		{"replication cost (cumulative)", rfh.SeriesReplCost},
		{"migrations (cumulative)", rfh.SeriesMigrTimes},
		{"migration cost (cumulative)", rfh.SeriesMigrCost},
		{"load imbalance (final)", rfh.SeriesLoadImbalance},
		{"lookup path length (final)", rfh.SeriesPathLength},
		{"unserved fraction (final)", rfh.SeriesUnservedFrac},
		{"alive servers (final)", rfh.SeriesAliveServers},
		{"lost partitions (final)", rfh.SeriesLostPartitions},
	}
	for _, r := range rows {
		fmt.Printf("  %-32s %10.4f\n", r.label, res.Final(r.series))
	}
}

func printCSV(res *rfh.Result) error {
	w := csv.NewWriter(os.Stdout)
	names := res.Names()
	header := append([]string{"epoch"}, names...)
	if err := w.Write(header); err != nil {
		return err
	}
	series := make(map[string][]float64, len(names))
	for _, n := range names {
		series[n] = res.Series(n)
	}
	row := make([]string, len(header))
	for e := 0; e < res.Epochs; e++ {
		row[0] = strconv.Itoa(e)
		for i, n := range names {
			row[i+1] = strconv.FormatFloat(series[n][e], 'g', 8, 64)
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
