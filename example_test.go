package rfh_test

import (
	"fmt"

	rfh "repro"
)

// ExampleRun demonstrates the basic simulation loop: the RFH policy
// over the paper's world with a deterministic seed.
func ExampleRun() {
	cfg := rfh.DefaultConfig()
	cfg.Epochs = 50
	cfg.Partitions = 8
	cfg.Seed = 7

	res, err := rfh.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("policy:", res.Policy)
	fmt.Println("epochs:", res.Epochs)
	fmt.Println("replicas at least one per partition:",
		res.Final(rfh.SeriesTotalReplicas) >= 8)
	// Output:
	// policy: rfh
	// epochs: 50
	// replicas at least one per partition: true
}

// ExampleRunWithFailures schedules a mass failure and shows that the
// availability lower limit keeps every partition alive.
func ExampleRunWithFailures() {
	cfg := rfh.DefaultConfig()
	cfg.Epochs = 60
	cfg.Partitions = 8
	res, err := rfh.RunWithFailures(cfg, []rfh.FailureEvent{
		{Epoch: 30, Fail: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("alive servers at the end:", res.Final(rfh.SeriesAliveServers))
	fmt.Println("partitions lost:", res.Final(rfh.SeriesLostPartitions))
	// Output:
	// alive servers at the end: 90
	// partitions lost: 0
}

// ExampleConfig_customPolicy plugs a do-nothing policy into the
// simulator through the public extension point.
func ExampleConfig_customPolicy() {
	cfg := rfh.DefaultConfig()
	cfg.Epochs = 10
	cfg.Partitions = 4
	cfg.CustomPolicy = frozen{}

	res, err := rfh.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// A policy that never acts leaves only the seeded primaries.
	fmt.Println(res.Policy, res.Final(rfh.SeriesTotalReplicas))
	// Output:
	// frozen 4
}

type frozen struct{}

func (frozen) Name() string                           { return "frozen" }
func (frozen) Decide(*rfh.PolicyContext) rfh.Decision { return rfh.Decision{} }
