// Consistency maintenance: the RFH paper's named future work. This
// example enables the write/anti-entropy extension and contrasts a
// well-provisioned synchronisation budget against a starved one: the
// same placement policy, the same write load, but very different
// replica staleness — and, when a primary dies before its replicas
// caught up, genuinely lost writes.
package main

import (
	"fmt"
	"log"

	rfh "repro"
)

func run(syncBW int64, failPrimaries bool) *rfh.Result {
	cfg := rfh.DefaultConfig()
	cfg.Policy = "rfh"
	cfg.Epochs = 120
	cfg.WriteLambda = 40      // 40 writes/partition/epoch
	cfg.WriteDeltaSize = 4096 // 4 KB per version
	cfg.SyncBandwidth = syncBW
	cfg.Seed = 11

	var events []rfh.FailureEvent
	if failPrimaries {
		ev := rfh.FailureEvent{Epoch: 60}
		for s := 0; s < 40; s++ {
			ev.Fail = append(ev.Fail, s)
		}
		events = append(events, ev)
	}
	res, err := rfh.RunWithFailures(cfg, events)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("write load: Poisson(40)/partition/epoch, 4 KB per version")
	fmt.Printf("\n%-28s %14s %12s %12s %14s\n",
		"scenario", "mean staleness", "stale frac", "lost writes", "sync traffic")

	for _, sc := range []struct {
		name string
		bw   int64
		fail bool
	}{
		{"ample sync (32 MB/epoch)", 32 << 20, false},
		{"hub-bound sync (4 MB/epoch)", 4 << 20, false},
		{"starved sync (64 KB/epoch)", 64 << 10, false},
		{"starved + mass failure", 64 << 10, true},
	} {
		res := run(sc.bw, sc.fail)
		fmt.Printf("%-28s %14.2f %12.3f %12.0f %11.1f MB\n",
			sc.name,
			res.Final(rfh.SeriesStalenessMean),
			res.Final(rfh.SeriesStaleFrac),
			res.Final(rfh.SeriesLostWrites),
			res.Final(rfh.SeriesSyncBytes)/(1<<20))
	}

	fmt.Println("\nreading: with ample bandwidth replicas track their primaries and a")
	fmt.Println("failure promotes an up-to-date copy. At 4 MB/epoch the fleet as a")
	fmt.Println("whole has enough bandwidth, but RFH concentrates replicas on traffic")
	fmt.Println("hubs — those servers sync replicas of dozens of partitions and become")
	fmt.Println("anti-entropy hotspots, so staleness persists. Starved sync leaves")
	fmt.Println("replicas far behind, and a mass failure then silently drops the")
	fmt.Println("writes dead primaries had not pushed — the consistency cost the paper")
	fmt.Println("defers to future work, made measurable.")
}
