// Custom policy: the simulator's Policy interface is public, so
// downstream users can plug their own replication strategies into the
// same world, workloads and metrics. This example implements a naive
// "eager mirror" policy — keep a copy in every datacenter, always — and
// compares its cost against RFH on the same workload.
package main

import (
	"fmt"
	"log"

	rfh "repro"
)

// eagerMirror replicates every partition into every datacenter as fast
// as one copy per epoch allows, and never removes anything. It is the
// "always maintain maximum number of replicas" strawman the paper's
// introduction argues against.
type eagerMirror struct{}

func (eagerMirror) Name() string { return "eager-mirror" }

func (eagerMirror) Decide(ctx *rfh.PolicyContext) rfh.Decision {
	var d rfh.Decision
	numDCs := ctx.Router.World().NumDCs()
	for p := 0; p < ctx.Cluster.NumPartitions(); p++ {
		primary := ctx.Cluster.Primary(p)
		if primary < 0 {
			continue
		}
		covered := make(map[rfh.DCID]bool)
		for _, s := range ctx.Cluster.ReplicaServers(p) {
			covered[ctx.Cluster.DCOf(s)] = true
		}
		for dc := rfh.DCID(0); int(dc) < numDCs; dc++ {
			if covered[dc] {
				continue
			}
			// First hostable server of the first uncovered datacenter;
			// one new copy per partition per epoch.
			for _, s := range ctx.Cluster.ServersInDC(dc) {
				if ctx.Cluster.CanHost(p, s) {
					d.Replications = append(d.Replications, rfh.Replication{Partition: p, Source: primary, Target: s})
					break
				}
			}
			break
		}
	}
	return d
}

func main() {
	const epochs = 150

	run := func(name string, custom rfh.Policy) *rfh.Result {
		cfg := rfh.DefaultConfig()
		cfg.Epochs = epochs
		cfg.CustomPolicy = custom
		if custom == nil {
			cfg.Policy = name
		}
		res, err := rfh.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	mirror := run("", eagerMirror{})
	best := run("rfh", nil)

	fmt.Printf("%-14s %10s %12s %12s %10s\n", "policy", "replicas", "utilization", "repl-cost", "path")
	for _, r := range []*rfh.Result{mirror, best} {
		fmt.Printf("%-14s %10.0f %12.3f %12.3f %10.2f\n",
			r.Policy,
			r.Final(rfh.SeriesTotalReplicas),
			r.Final(rfh.SeriesUtilization),
			r.Final(rfh.SeriesReplCost),
			r.Final(rfh.SeriesPathLength))
	}
	fmt.Println("\nthe eager mirror buys short lookups with ~2x the replicas,")
	fmt.Println("a fraction of the utilization, and several times the replication cost —")
	fmt.Println("exactly the resource waste the RFH paper's introduction describes.")
}
