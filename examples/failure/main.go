// Failure & recovery: the §III-G / Fig. 10 experiment. Thirty of the
// hundred servers die at once mid-run; RFH's availability lower limit
// (eq. 14) drives re-replication until the fleet recovers. This example
// also demonstrates staged recovery: half of the dead servers come back
// later and are re-absorbed.
package main

import (
	"fmt"
	"log"

	rfh "repro"
)

func main() {
	const (
		epochs    = 500
		failAt    = 290
		recoverAt = 420
		victims   = 30
	)

	cfg := rfh.DefaultConfig()
	cfg.Policy = "rfh"
	cfg.Epochs = epochs
	cfg.Seed = 7

	// Deterministic victim set: every third server.
	var fail, revive []int
	for i := 0; len(fail) < victims; i += 3 {
		fail = append(fail, i%rfh.NumServers())
	}
	revive = fail[:victims/2]

	res, err := rfh.RunWithFailures(cfg, []rfh.FailureEvent{
		{Epoch: failAt, Fail: fail},
		{Epoch: recoverAt, Recover: revive},
	})
	if err != nil {
		log.Fatal(err)
	}

	reps := res.Series(rfh.SeriesTotalReplicas)
	alive := res.Series(rfh.SeriesAliveServers)
	lost := res.Series(rfh.SeriesLostPartitions)

	fmt.Printf("%d servers fail at epoch %d; %d recover at epoch %d\n\n", victims, failAt, len(revive), recoverAt)
	fmt.Println("epoch  alive  replicas  lost-partitions")
	for _, e := range []int{0, 100, 200, failAt - 1, failAt, failAt + 20, failAt + 60, recoverAt, epochs - 1} {
		fmt.Printf("%5d  %5.0f  %8.0f  %15.0f\n", e, alive[e], reps[e], lost[e])
	}

	pre := reps[failAt-1]
	post := reps[epochs-1]
	fmt.Printf("\nreplica fleet: %.0f before the failure, %.0f at the end (%.0f%% recovered)\n",
		pre, post, 100*post/pre)
	if lost[epochs-1] == 0 {
		fmt.Println("no partition lost its last copy: the eq. (14) lower limit held.")
	} else {
		fmt.Printf("%.0f partitions lost every copy and were re-seeded from archival storage.\n", lost[epochs-1])
	}
}
