// Flash crowd: the paper's headline scenario (§II-F, Fig. 3b). Query
// interest jumps between continents every quarter of the run; this
// example races all four replication policies through it and shows how
// utilization collapses for the request-oriented baseline while RFH
// dips once and recovers.
package main

import (
	"fmt"
	"log"

	rfh "repro"
)

func main() {
	const epochs = 400
	policies := []string{"rfh", "request", "owner", "random"}

	fmt.Printf("four-stage flash crowd, %d epochs (stage shifts at %d/%d/%d)\n\n",
		epochs, epochs/4, epochs/2, 3*epochs/4)
	fmt.Printf("%-8s %10s %10s %10s %10s %10s %8s\n",
		"policy", "util-s1", "util-dip", "util-end", "replicas", "migrations", "migCost")

	for _, pol := range policies {
		cfg := rfh.DefaultConfig()
		cfg.Policy = pol
		cfg.Workload = "flash"
		cfg.Epochs = epochs
		res, err := rfh.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		util := res.Series(rfh.SeriesUtilization)
		s1 := mean(util[epochs/8 : epochs/4])      // late stage 1
		dip := minOf(util[epochs/4 : epochs/4+40]) // right after the first shift
		end := mean(util[epochs*7/8:])             // late stage 4
		fmt.Printf("%-8s %10.3f %10.3f %10.3f %10.0f %10.0f %8.2f\n",
			pol, s1, dip, end,
			res.Final(rfh.SeriesTotalReplicas),
			res.Final(rfh.SeriesMigrTimes),
			res.Final(rfh.SeriesMigrCost))
	}

	fmt.Println("\nreading: request-oriented builds replicas at the hot region and")
	fmt.Println("strands them when the crowd moves (deep dip, heavy migration);")
	fmt.Println("RFH replicates at traffic hubs that keep serving after the shift.")
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
