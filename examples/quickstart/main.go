// Quickstart: simulate the RFH replication algorithm over the paper's
// 10-datacenter world for 100 epochs of uniform Poisson load, and print
// how the replica fleet and its utilization evolve.
package main

import (
	"fmt"
	"log"

	rfh "repro"
)

func main() {
	cfg := rfh.DefaultConfig()
	cfg.Policy = "rfh"
	cfg.Workload = "uniform"
	cfg.Epochs = 100
	cfg.Seed = 42

	res, err := rfh.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	util := res.Series(rfh.SeriesUtilization)
	reps := res.Series(rfh.SeriesTotalReplicas)
	path := res.Series(rfh.SeriesPathLength)

	fmt.Println("epoch  replicas  utilization  lookup-hops")
	for e := 0; e < cfg.Epochs; e += 10 {
		fmt.Printf("%5d  %8.0f  %11.3f  %11.2f\n", e, reps[e], util[e], path[e])
	}
	fmt.Printf("\nsteady state: %.0f replicas across %d servers, %.1f%% average replica utilization\n",
		res.Final(rfh.SeriesTotalReplicas), rfh.NumServers(), 100*res.Final(rfh.SeriesUtilization))
	fmt.Printf("cumulative replication cost (eq. 1 units): %.3f\n", res.Final(rfh.SeriesReplCost))
}
