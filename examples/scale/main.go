// Scale: the simulator beyond the paper's world. A synthetic
// random-geometric planet of 50 datacenters (500 servers) serves a
// drifting hotspot with the RFH policy, demonstrating that the
// traffic-hub mechanism needs no hand-built topology — hubs emerge from
// the path structure of whatever graph it runs on.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	rfh "repro"
)

func main() {
	cfg := rfh.DefaultConfig()
	cfg.WorldDCs = 50
	cfg.Partitions = 128
	cfg.Workload = "drift"
	cfg.DriftHold = 25
	cfg.Epochs = 200
	cfg.Seed = 3

	start := time.Now()
	res, err := rfh.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("50 datacenters, 500 servers, 128 partitions, 200 epochs: %v (%.1f ms/epoch)\n",
		elapsed.Round(time.Millisecond), float64(elapsed.Milliseconds())/200)
	fmt.Printf("steady utilization %.2f, %.0f replicas, unserved %.3f\n",
		res.Final(rfh.SeriesUtilization),
		res.Final(rfh.SeriesTotalReplicas),
		res.Final(rfh.SeriesUnservedFrac))

	// The five datacenters hosting the most replicas — the emergent hubs.
	placement := append([]rfh.PlacementDC(nil), res.Placement...)
	sort.Slice(placement, func(i, j int) bool { return placement[i].Replicas > placement[j].Replicas })
	fmt.Println("\nbusiest datacenters (emergent traffic hubs):")
	for _, d := range placement[:5] {
		fmt.Printf("  %-6s %4d replicas, %d primaries\n", d.Name, d.Replicas, d.Primaries)
	}
}
