package rfh

import (
	"io"

	"repro/internal/experiments"
	"repro/internal/plot"
	"repro/internal/report"
	"repro/internal/trace"
)

// Figure is one reproduced paper figure: per-epoch curves, one per
// policy (Fig. 10 instead carries replica/alive-server curves for the
// RFH failure run).
type Figure struct {
	ID     string
	Title  string
	YLabel string
	Series []FigureSeries
}

// FigureSeries is one labelled curve of a Figure.
type FigureSeries struct {
	Name   string
	Points []float64
}

// Claim is one qualitative assertion the paper makes about a figure,
// evaluated against this reproduction's data.
type Claim struct {
	Figure      string
	Description string
	Pass        bool
	Detail      string
}

// ExperimentOptions sizes a reproduction campaign. The zero value
// selects the paper's dimensions (250/400/500-epoch runs, λ=300,
// failure of 30 servers at epoch 290).
type ExperimentOptions struct {
	Seed          uint64
	EpochsRandom  int
	EpochsFlash   int
	EpochsFailure int
	FailEpoch     int
	FailServers   int
	Lambda        float64
	Workers       int
}

func (o ExperimentOptions) toInternal() experiments.Options {
	opts := experiments.DefaultOptions()
	if o.Seed != 0 {
		opts.Seed = o.Seed
	}
	if o.EpochsRandom > 0 {
		opts.EpochsRandom = o.EpochsRandom
	}
	if o.EpochsFlash > 0 {
		opts.EpochsFlash = o.EpochsFlash
	}
	if o.EpochsFailure > 0 {
		opts.EpochsFailure = o.EpochsFailure
	}
	if o.FailEpoch > 0 {
		opts.FailEpoch = o.FailEpoch
	}
	if o.FailServers > 0 {
		opts.FailServers = o.FailServers
	}
	if o.Lambda > 0 {
		opts.Lambda = o.Lambda
	}
	if o.Workers > 0 {
		opts.Workers = o.Workers
	}
	return opts
}

// Experiments drives full reproduction campaigns: one simulation per
// policy per workload setting, cached across figure requests. Create
// with NewExperiments, then pull figures or claim checks.
type Experiments struct {
	suite *experiments.Suite
}

// NewExperiments prepares a (lazy) reproduction campaign.
func NewExperiments(opts ExperimentOptions) (*Experiments, error) {
	s, err := experiments.NewSuite(opts.toInternal())
	if err != nil {
		return nil, err
	}
	return &Experiments{suite: s}, nil
}

// FigureIDs lists every reproducible figure of the paper: 3a..9b plus
// 10.
func FigureIDs() []string { return experiments.FigureIDs() }

// Figure reproduces one paper figure by id (e.g. "3a", "4c", "10").
func (e *Experiments) Figure(id string) (*Figure, error) {
	fig, err := e.suite.Figure(id)
	if err != nil {
		return nil, err
	}
	out := &Figure{ID: fig.ID, Title: fig.Title, YLabel: fig.YLabel}
	for _, s := range fig.Series {
		out.Series = append(out.Series, FigureSeries{Name: s.Name, Points: s.Points})
	}
	return out, nil
}

// Check evaluates the paper's qualitative claims for one figure.
func (e *Experiments) Check(id string) ([]Claim, error) {
	rep, err := e.suite.CheckFigure(id)
	if err != nil {
		return nil, err
	}
	return convertClaims(rep), nil
}

// CheckAll evaluates the claims of every figure.
func (e *Experiments) CheckAll() ([]Claim, error) {
	reps, err := e.suite.CheckAll()
	if err != nil {
		return nil, err
	}
	var out []Claim
	for _, rep := range reps {
		out = append(out, convertClaims(rep)...)
	}
	return out, nil
}

func convertClaims(rep *experiments.ShapeReport) []Claim {
	out := make([]Claim, 0, len(rep.Claims))
	for _, c := range rep.Claims {
		out = append(out, Claim{Figure: rep.Figure, Description: c.Description, Pass: c.Pass, Detail: c.Detail})
	}
	return out
}

// TableI returns the experiment parameters in force, mirroring the
// paper's Table I.
func (e *Experiments) TableI() [][2]string { return e.suite.TableI() }

// WriteFigureCSV writes a reproduced figure as CSV (epoch column plus
// one column per curve).
func (e *Experiments) WriteFigureCSV(w io.Writer, id string) error {
	fig, err := e.suite.Figure(id)
	if err != nil {
		return err
	}
	return trace.WriteFigureCSV(w, fig)
}

// PlotFigure renders a reproduced figure as an ASCII line chart.
func (e *Experiments) PlotFigure(id string, width, height int) (string, error) {
	fig, err := e.Figure(id)
	if err != nil {
		return "", err
	}
	series := make([]plot.Series, 0, len(fig.Series))
	for _, s := range fig.Series {
		series = append(series, plot.Series{Name: s.Name, Points: s.Points})
	}
	return plot.Render(series, plot.Options{
		Width: width, Height: height, Title: fig.Title, YLabel: fig.YLabel,
	}), nil
}

// WriteReport renders the full reproduction report (Table I, every
// figure's steady-state numbers, all machine-checked claims) as
// Markdown, running any campaign that has not run yet.
func (e *Experiments) WriteReport(w io.Writer) error {
	return report.Write(w, e.suite)
}

// MultiSeedStat is one policy's steady-state statistic across seeds.
type MultiSeedStat = experiments.SeedStat

// MultiSeed reruns the campaign behind one figure across n seeds
// (1..n) and returns per-policy steady-state statistics plus a text
// summary — the robustness check a single-seed plot cannot give.
func (e *Experiments) MultiSeed(figureID string, n int) ([]MultiSeedStat, string, error) {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = e.suite.Options().Seed + uint64(i)
	}
	res, err := experiments.MultiSeed(e.suite.Options(), figureID, seeds)
	if err != nil {
		return nil, "", err
	}
	return res.Stats, res.Summary(), nil
}

// AblationPoint mirrors one row of a parameter sweep.
type AblationPoint = experiments.AblationPoint

// AblationNames lists the parameters that can be swept.
func AblationNames() []string { return experiments.AblationNames() }

// Ablation sweeps one RFH decision parameter (alpha, beta, gamma,
// delta, mu, hubK or serving) under the random-query setting and
// returns one outcome row per grid point.
func (e *Experiments) Ablation(param string) ([]AblationPoint, string, error) {
	ab, err := e.suite.RunAblation(param)
	if err != nil {
		return nil, "", err
	}
	return ab.Points, ab.Summary(), nil
}
