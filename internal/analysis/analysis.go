// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary, sized for this module.
//
// The repository's determinism and safety contract (see DESIGN.md,
// "Determinism contract") is enforced by a suite of analyzers compiled
// into cmd/rfhlint. The x/tools analysis framework is the natural home
// for such checkers, but this module deliberately has no external
// dependencies, so the framework surface the analyzers program against
// — Analyzer, Pass, Diagnostic, Reportf — is reproduced here on top of
// the standard library only (go/ast, go/types, go/importer). Type
// information for dependencies comes from compiler export data located
// via `go list -export` (see load.go), so the suite needs nothing but
// the Go toolchain that builds the module anyway.
//
// The API is kept shape-compatible with x/tools on purpose: if the
// module ever grows a vendored x/tools, each analyzer body ports by
// changing only its imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. Name is the identifier used in
// diagnostics and in //lint:ignore rfhlint/<name> suppressions; Doc is
// the human-readable contract the check enforces.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path is the package's import path as listed. Test-augmented
	// variants keep their decoration (e.g. "p [p.test]"); use PkgPath
	// for the undecorated path.
	Path string

	// IsModulePkg reports whether a types.Package (the analyzed one or
	// any import reached through export data) belongs to the module
	// under analysis rather than the standard library. Analyzers use it
	// to restrict structural checks (e.g. closecheck's Close-method
	// scan) to first-party types.
	IsModulePkg func(*types.Package) bool

	// Facts is the run-wide cross-package summary store. The driver
	// analyzes packages in dependency order, so facts a dependency's
	// pass exported are visible when its importers are analyzed.
	Facts *Facts

	pkg        *Package
	directives []Directive
	diags      *[]Diagnostic
}

// CallGraph returns the package's static call graph, built on first
// use and shared by every analyzer visiting the package.
func (p *Pass) CallGraph() *CallGraph {
	if p.pkg.callgraph == nil {
		p.pkg.callgraph = buildCallGraph(p.Files, p.TypesInfo)
	}
	return p.pkg.callgraph
}

// Diagnostic is one finding, attributed to the analyzer that produced
// it via Category.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Report records a finding. Suppression (//lint:ignore) is applied by
// the driver after the analyzer runs, so analyzers report everything
// they see.
func (p *Pass) Report(d Diagnostic) {
	if d.Category == "" {
		d.Category = p.Analyzer.Name
	}
	*p.diags = append(*p.diags, d)
}

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PkgPath returns the undecorated import path of the analyzed package:
// the " [p.test]" suffix of test-augmented variants is stripped, so
// allowlist matching treats a package and its test build as one.
func (p *Pass) PkgPath() string {
	path := p.Path
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}
