// Package analysistest runs an analyzer over GOPATH-style fixture
// packages under testdata/src and checks its diagnostics against
// `// want "regexp"` comments, the x/tools analysistest convention
// rebuilt on this module's dependency-free analysis framework.
//
// A want comment expects one diagnostic on its own line whose message
// matches the quoted regular expression; several quoted patterns on
// one comment expect several diagnostics. Lines without a want comment
// expect no diagnostics, which is how the negative fixtures (sorted
// map loops, guarded divisions, deferred Closes) pin the analyzers'
// false-positive behaviour.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/analysis"
)

// Patterns may be double-quoted ("...") or backquoted (`...`); the
// latter avoids double-escaping regular expressions.
var quotedRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")
var wantRE = regexp.MustCompile(`(?m)want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)

// Run loads the fixture packages from testdata/src, applies the
// analyzer, and reports every mismatch between produced diagnostics
// and want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := analysis.LoadTestdata("testdata/src", paths)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages for %v", paths)
	}
	fset := pkgs[0].Fset

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						pattern, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pattern)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
						}
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s: no diagnostic matching %q", fmt.Sprintf("%s:%d", k.file, k.line), re)
		}
	}
}
