package analysis

import (
	"go/ast"
	"go/types"
)

// CallGraph is the package-level static call graph of one analyzed
// package: one node per function or method declared in the package,
// with an edge per call site whose callee type-checks to a concrete
// *types.Func (package functions, methods, and imported functions —
// including interface methods, resolved to the interface's method
// object). Calls through function-typed values have no callee object
// and appear with a nil Callee, so analyzers can still count them
// (e.g. as "unknown, assume the worst").
//
// The graph is intra-package on the caller side — its nodes are this
// package's declarations — but edges freely point at imported callees;
// combined with the Facts store that is enough for the cross-package
// summary propagation the analyzers need.
type CallGraph struct {
	// Funcs holds one node per declared function, in source order.
	Funcs []*FuncNode

	byObj map[*types.Func]*FuncNode
}

// FuncNode is one declared function or method and its outgoing calls.
type FuncNode struct {
	Decl *ast.FuncDecl
	Obj  *types.Func
	// Calls lists every call expression lexically inside Decl, in
	// source order — including calls inside function literals, which
	// from a may-happen perspective belong to the enclosing function
	// (the literal may run later, but lockcheck-style analyses treat
	// "constructs a closure that sends" as "may send", which errs on
	// the loud side).
	Calls []Call
}

// Call is one call site.
type Call struct {
	Site *ast.CallExpr
	// Callee is the statically resolved callee object, nil for calls
	// through plain function values and for builtins.
	Callee *types.Func
	// InFuncLit reports that the site sits inside a function literal
	// within the declaring function, i.e. it runs when the closure
	// runs, not necessarily when the declaring function does.
	InFuncLit bool
}

// Node returns the graph node declaring fn, or nil if fn is not
// declared in this package.
func (g *CallGraph) Node(fn *types.Func) *FuncNode {
	return g.byObj[fn]
}

// buildCallGraph walks every function declaration in the package files.
func buildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{byObj: make(map[*types.Func]*FuncNode)}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			node := &FuncNode{Decl: fd, Obj: obj}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					// Walk the literal's body separately so its calls
					// carry InFuncLit, then prune the outer walk.
					ast.Inspect(n.Body, func(m ast.Node) bool {
						if call, ok := m.(*ast.CallExpr); ok {
							node.Calls = append(node.Calls, Call{
								Site: call, Callee: calleeOf(info, call), InFuncLit: true,
							})
						}
						return true
					})
					return false
				case *ast.CallExpr:
					node.Calls = append(node.Calls, Call{
						Site: n, Callee: calleeOf(info, n),
					})
				}
				return true
			})
			g.Funcs = append(g.Funcs, node)
			if obj != nil {
				g.byObj[obj] = node
			}
		}
	}
	return g
}

// calleeOf resolves a call expression to its callee's *types.Func, nil
// when the callee is not a statically known function (function values,
// builtins, type conversions).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
