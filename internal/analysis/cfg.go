package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CFG-lite: an intra-procedural control-flow graph over statements,
// precise enough for the path-sensitive contracts rfhlint enforces
// (lock pairing on every return path, no send while a lock may be
// held) and nothing more. Blocks hold leaf statements and branch
// conditions in execution order; edges follow if/else, loops, switch
// and select dispatch, break/continue (including labeled forms), and
// early returns. Deferred calls are recorded as ordinary DeferStmt
// nodes where they are scheduled — an analyzer that cares (lockcheck's
// deferred-unlock replay) collects them along each path and applies
// them at Exit. Calls that provably never return (panic, os.Exit,
// runtime.Goexit, log.Fatal*) terminate their path without an Exit
// edge, so "forgot to unlock before panicking" is not a finding.
//
// goto is not modeled; the module bans it stylistically and the
// builder reports any occurrence via the Unsupported field so an
// analyzer can choose to skip the function rather than reason from a
// wrong graph. fallthrough is handled (edge to the next case body).

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks[0] is Entry; Blocks[1] is Exit. Every return statement and
	// every fall-off-the-end path has an edge to Exit.
	Blocks []*CFBlock
	// Unsupported is non-nil if the body contains a construct the
	// builder does not model (goto); analyzers should skip the function.
	Unsupported ast.Node
}

// Entry returns the function's entry block.
func (g *CFG) Entry() *CFBlock { return g.Blocks[0] }

// Exit returns the function's unique exit block. Its Nodes are empty.
func (g *CFG) Exit() *CFBlock { return g.Blocks[1] }

// CFBlock is one straight-line run of statements.
type CFBlock struct {
	Index int
	// Nodes holds leaf statements and branch/loop conditions in
	// execution order. Composite statements (if/for/switch/...) never
	// appear themselves; their pieces are distributed across blocks.
	Nodes []ast.Node
	Succs []*CFBlock
}

// BuildCFG constructs the CFG of one function body. noReturn, if
// non-nil, reports additional calls that never return (beyond the
// built-in panic/os.Exit set).
func BuildCFG(body *ast.BlockStmt, info *types.Info, noReturn func(*ast.CallExpr) bool) *CFG {
	b := &cfgBuilder{info: info, noReturn: noReturn}
	entry := b.newBlock()
	exit := b.newBlock()
	// Blocks[0]=entry, Blocks[1]=exit regardless of creation order of
	// the rest.
	b.exit = exit
	last := b.stmts(entry, body.List)
	if last != nil {
		b.edge(last, exit)
	}
	return &CFG{Blocks: b.blocks, Unsupported: b.unsupported}
}

type cfgBuilder struct {
	info        *types.Info
	noReturn    func(*ast.CallExpr) bool
	blocks      []*CFBlock
	exit        *CFBlock
	unsupported ast.Node

	// break/continue targets, innermost last.
	breaks    []loopTarget
	continues []loopTarget
}

// loopTarget pairs a jump target with the label that names it ("" for
// the innermost unlabeled form).
type loopTarget struct {
	label string
	block *CFBlock
}

func (b *cfgBuilder) newBlock() *CFBlock {
	blk := &CFBlock{Index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFBlock) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// stmts threads the statement list through cur and returns the block
// control falls out of, or nil if every path left (return/branch/
// no-return call).
func (b *cfgBuilder) stmts(cur *CFBlock, list []ast.Stmt) *CFBlock {
	for _, s := range list {
		if cur == nil {
			// Dead code after a terminating statement: still build its
			// graph (an analyzer may want to see it) but keep it
			// disconnected.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s, "")
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *CFBlock, s ast.Stmt, label string) *CFBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List)

	case *ast.LabeledStmt:
		return b.stmt(cur, s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenBlk := b.newBlock()
		b.edge(cur, thenBlk)
		thenEnd := b.stmts(thenBlk, s.Body.List)
		var elseEnd *CFBlock
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(cur, elseBlk)
			elseEnd = b.stmt(elseBlk, s.Else, "")
		}
		if thenEnd == nil && elseEnd == nil && s.Else != nil {
			return nil
		}
		after := b.newBlock()
		if s.Else == nil {
			b.edge(cur, after) // condition false
		}
		if thenEnd != nil {
			b.edge(thenEnd, after)
		}
		if elseEnd != nil {
			b.edge(elseEnd, after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		bodyBlk := b.newBlock()
		b.edge(head, bodyBlk)
		if s.Cond != nil {
			b.edge(head, after)
		}
		// continue jumps to the post statement (or head); model post as
		// its own block so "continue" and fall-off both run it.
		contTarget := head
		if s.Post != nil {
			post := b.newBlock()
			b.edge(post, head)
			contTarget = post
		}
		bodyEnd := b.loopBody(bodyBlk, s.Body.List, label, after, contTarget)
		if bodyEnd != nil {
			b.edge(bodyEnd, contTarget)
		}
		if contTarget != head && s.Post != nil {
			contTarget.Nodes = append(contTarget.Nodes, s.Post)
		}
		return after

	case *ast.RangeStmt:
		cur.Nodes = append(cur.Nodes, s.X)
		head := b.newBlock()
		b.edge(cur, head)
		after := b.newBlock()
		b.edge(head, after) // zero iterations
		bodyBlk := b.newBlock()
		b.edge(head, bodyBlk)
		bodyEnd := b.loopBody(bodyBlk, s.Body.List, label, after, head)
		if bodyEnd != nil {
			b.edge(bodyEnd, head)
		}
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(cur, s.Body.List, label, !hasDefaultClause(s.Body.List))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init, "")
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(cur, s.Body.List, label, !hasDefaultClause(s.Body.List))

	case *ast.SelectStmt:
		// Every comm clause is a successor; select with no default
		// blocks rather than falls through, so "after" is reachable
		// only via clause bodies.
		after := b.newBlock()
		b.breaks = append(b.breaks, loopTarget{label, after}, loopTarget{"", after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(cur, blk)
			if cc.Comm != nil {
				blk = b.stmt(blk, cc.Comm, "")
			}
			if end := b.stmts(blk, cc.Body); end != nil {
				b.edge(end, after)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-2]
		if len(s.Body.List) == 0 {
			return nil // select{} blocks forever
		}
		if !blockHasPred(b.blocks, after) {
			return nil
		}
		return after

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.exit)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, labelName(s.Label)); t != nil {
				b.edge(cur, t)
			}
			return nil
		case token.CONTINUE:
			if t := findTarget(b.continues, labelName(s.Label)); t != nil {
				b.edge(cur, t)
			}
			return nil
		case token.FALLTHROUGH:
			// Handled by switchBody wiring; treat as fall-off here.
			cur.Nodes = append(cur.Nodes, s)
			return cur
		default: // goto
			if b.unsupported == nil {
				b.unsupported = s
			}
			return cur
		}

	case *ast.ExprStmt:
		cur.Nodes = append(cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.terminates(call) {
			return nil
		}
		return cur

	default:
		// Leaf statements: assignments, declarations, defers, go, send,
		// inc/dec, empty.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// loopBody runs a loop body with break/continue targets pushed.
func (b *cfgBuilder) loopBody(blk *CFBlock, list []ast.Stmt, label string, brk, cont *CFBlock) *CFBlock {
	b.breaks = append(b.breaks, loopTarget{label, brk}, loopTarget{"", brk})
	b.continues = append(b.continues, loopTarget{label, cont}, loopTarget{"", cont})
	end := b.stmts(blk, list)
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.continues = b.continues[:len(b.continues)-2]
	return end
}

// switchBody wires case clauses: each clause body is a successor of the
// dispatch block; fallthrough chains to the next clause body.
func (b *cfgBuilder) switchBody(cur *CFBlock, clauses []ast.Stmt, label string, mayskip bool) *CFBlock {
	after := b.newBlock()
	b.breaks = append(b.breaks, loopTarget{label, after}, loopTarget{"", after})
	type clauseInfo struct {
		entry *CFBlock
		end   *CFBlock // nil if the body never falls off
		ft    bool     // body ends in fallthrough
	}
	infos := make([]clauseInfo, len(clauses))
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		blk := b.newBlock()
		b.edge(cur, blk)
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		end := b.stmts(blk, cc.Body)
		ft := false
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				ft = true
			}
		}
		infos[i] = clauseInfo{entry: blk, end: end, ft: ft}
	}
	for i, in := range infos {
		if in.end == nil {
			continue
		}
		if in.ft && i+1 < len(infos) {
			b.edge(in.end, infos[i+1].entry)
		} else {
			b.edge(in.end, after)
		}
	}
	if mayskip {
		b.edge(cur, after) // no clause matched
	}
	b.breaks = b.breaks[:len(b.breaks)-2]
	if !blockHasPred(b.blocks, after) {
		return nil
	}
	return after
}

func blockHasPred(blocks []*CFBlock, target *CFBlock) bool {
	for _, blk := range blocks {
		for _, s := range blk.Succs {
			if s == target {
				return true
			}
		}
	}
	return false
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func labelName(l *ast.Ident) string {
	if l == nil {
		return ""
	}
	return l.Name
}

// findTarget resolves a break/continue to its innermost matching
// target.
func findTarget(stack []loopTarget, label string) *CFBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

// FlowProblem parameterizes a forward dataflow pass over a CFG. States
// flow along edges: each block's input is the Merge of its
// predecessors' outputs, its output the result of Transfer over its
// nodes. The solver iterates to a fixed point, so Merge/Transfer must
// be monotone over a finite lattice (lockcheck's lock sets are; any
// set-union or set-intersection domain is).
type FlowProblem[S any] struct {
	// Entry is the state on function entry.
	Entry S
	// Merge combines two incoming states. It must not mutate its
	// arguments.
	Merge func(a, b S) S
	// Transfer applies one CFG node to a state, returning the state
	// after it. It must not mutate in — copy first. blk identifies the
	// containing block for analyzers that key reporting off position.
	Transfer func(in S, n ast.Node, blk *CFBlock) S
	// Equal reports state equality, used to detect the fixed point.
	Equal func(a, b S) bool
}

// Solve runs the forward problem to a fixed point and returns the
// input state of every block (indexed like g.Blocks). Blocks never
// reached from Entry keep the zero state and ok=false in the second
// return slice.
func Solve[S any](g *CFG, p FlowProblem[S]) (in []S, reached []bool) {
	n := len(g.Blocks)
	in = make([]S, n)
	reached = make([]bool, n)
	in[0] = p.Entry
	reached[0] = true
	work := []int{0}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		blk := g.Blocks[i]
		out := in[i]
		for _, node := range blk.Nodes {
			out = p.Transfer(out, node, blk)
		}
		for _, succ := range blk.Succs {
			j := succ.Index
			var next S
			if !reached[j] {
				next = out
			} else {
				next = p.Merge(in[j], out)
				if p.Equal(in[j], next) {
					continue
				}
			}
			in[j] = next
			reached[j] = true
			work = append(work, j)
		}
	}
	return in, reached
}

// terminates reports whether a call provably never returns.
func (b *cfgBuilder) terminates(call *ast.CallExpr) bool {
	if b.noReturn != nil && b.noReturn(call) {
		return true
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic" && b.info.Uses[fun] == nil // builtin panic
	case *ast.SelectorExpr:
		fn, _ := b.info.Uses[fun.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() + "." + fn.Name() {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
