// Package closecheck flags values of first-party closer types — any
// type this module defines with a Close method, sim.Engine being the
// motivating one, node.Node and the transport listeners the live-
// runtime additions — that are constructed and then abandoned. The
// closer types are registered per-package before checking begins:
// buildRegistry collects every named struct or interface with an
// io.Closer-shaped Close method from the analyzed package and the
// module packages it imports, and call sites are tested against that
// registry.
//
// PR 1 gave sim.Engine a persistent worker pool: the pool's goroutines
// live until Engine.Close, so an engine that is built, stepped and
// dropped leaks its workers for the life of the process. The same
// contract applies to anything else in the module that grows a
// Close() / Close() error method. A constructed value is considered
// handled when the binding function either reaches its Close (called
// directly, deferred, or passed as a method value, e.g. to t.Cleanup),
// returns the value, stores it somewhere (struct field, map, channel),
// or passes it to another function — the last three transfer
// ownership, making the recipient responsible. A value bound to a
// local that none of those paths touch, or discarded outright
// (assigned to _ or never assigned), is reported.
//
// One idiom is exempt: a constructor that receives the testing handle
// (eng := buildEngine(t, …)) is assumed to register t.Cleanup(Close)
// itself, so its call sites are not tracked. The helper's own body is
// still checked like any other function.
package closecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/rfhlintutil"
)

// Analyzer is the closecheck check.
var Analyzer = &analysis.Analyzer{
	Name: "closecheck",
	Doc:  "flags module closer types (e.g. sim.Engine, node.Node, transport listeners) constructed but never closed or handed off",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	reg := buildRegistry(pass)
	for _, file := range pass.Files {
		checkFile(pass, reg, file)
	}
	return nil
}

// closerRegistry is the per-package set of module closer types: every
// named type — struct or interface — declared in the analyzed package
// or in any module package reachable through its imports whose Close
// method matches the io.Closer shape (Close() or Close() error).
// Registering the types once per pass makes the call-site test a map
// lookup and makes the covered set enumerable: sim.Engine, node.Node
// and the transport listeners all land here by declaration, not by
// per-site structural probing.
type closerRegistry map[*types.TypeName]bool

// buildRegistry scans the analyzed package and the module packages it
// (transitively) imports. Standard-library and external packages are
// excluded: their lifetimes are their own contract (and nothing would
// stop the check from flagging every bytes.Buffer otherwise).
func buildRegistry(pass *analysis.Pass) closerRegistry {
	reg := make(closerRegistry)
	seen := make(map[*types.Package]bool)
	var visit func(pkg *types.Package)
	visit = func(pkg *types.Package) {
		if pkg == nil || seen[pkg] {
			return
		}
		seen[pkg] = true
		if pass.IsModulePkg == nil || !pass.IsModulePkg(pkg) {
			return
		}
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if hasCloserMethod(tn.Type(), pkg) {
				reg[tn] = true
			}
		}
		for _, imp := range pkg.Imports() {
			visit(imp)
		}
	}
	visit(pass.Pkg)
	return reg
}

// closer resolves t (through one pointer) to a registered closer's
// TypeName, if any.
func (reg closerRegistry) closer(t types.Type) (*types.TypeName, bool) {
	named := namedOf(t)
	if named == nil {
		return nil, false
	}
	tn := named.Obj()
	return tn, reg[tn]
}

// hasCloserMethod reports whether t has a Close() or Close() error
// method (directly, promoted from an embedded field, or as an
// interface member).
func hasCloserMethod(t types.Type, pkg *types.Package) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, pkg, "Close")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 0 || sig.Results().Len() > 1 {
		return false
	}
	if sig.Results().Len() == 1 {
		nm, ok := sig.Results().At(0).Type().(*types.Named)
		if !ok || nm.Obj().Pkg() != nil || nm.Obj().Name() != "error" {
			return false
		}
	}
	return true
}

// binding is one closer-typed local awaiting a releasing use.
type binding struct {
	id    *ast.Ident
	obj   types.Object
	typ   types.Type
	frame *ast.BlockStmt // body of the function that bound it
}

// checker accumulates bindings for one file.
type checker struct {
	pass     *analysis.Pass
	reg      closerRegistry
	bindings []*binding
	seen     map[types.Object]bool
}

func checkFile(pass *analysis.Pass, reg closerRegistry, file *ast.File) {
	c := &checker{pass: pass, reg: reg, seen: make(map[types.Object]bool)}
	rfhlintutil.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if frame := enclosingFuncBody(stack); frame != nil {
				c.checkAssign(n, frame)
			}
		case *ast.ExprStmt:
			// A constructor call whose closer result is not even bound.
			call, ok := n.X.(*ast.CallExpr)
			if !ok || c.managedByTestHelper(call) {
				return true
			}
			if typ, ok := c.resultCloser(call); ok {
				pass.Reportf(call.Pos(),
					"result of this call (%s) is discarded without being closed; bind it and call Close (or defer it)",
					typeName(typ))
			}
		}
		return true
	})

	for _, b := range c.bindings {
		if !released(pass, b.frame, b.id, b.obj) {
			pass.Reportf(b.id.Pos(),
				"%s is bound to %q but never closed on any path; call %s.Close (or defer it), return it, or hand it off",
				typeName(b.typ), b.id.Name, b.id.Name)
		}
	}
}

// checkAssign inspects one assignment for fresh closer bindings.
// Ownership starts at construction, so only call and composite-literal
// right-hand sides create obligations; rebinding from a parameter,
// field or element is someone else's value.
func (c *checker) checkAssign(n *ast.AssignStmt, frame *ast.BlockStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// eng, err := New(...): each left-hand side takes one result.
		call, ok := rfhlintutil.Unparen(n.Rhs[0]).(*ast.CallExpr)
		if !ok || c.managedByTestHelper(call) {
			return
		}
		tuple, ok := c.pass.TypesInfo.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(n.Lhs) {
			return
		}
		for i, lhs := range n.Lhs {
			if typ := tuple.At(i).Type(); c.isCloser(typ) {
				c.bind(lhs, typ, frame)
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		rhs := rfhlintutil.Unparen(n.Rhs[i])
		if !isConstruction(rhs) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && c.managedByTestHelper(call) {
			continue
		}
		if typ := c.pass.TypesInfo.TypeOf(rhs); typ != nil && c.isCloser(typ) {
			c.bind(lhs, typ, frame)
		}
	}
}

// managedByTestHelper recognises the test-factory idiom: a constructor
// that receives the testing handle (buildEngine(t, …)) is expected to
// register t.Cleanup(v.Close) itself, so its call sites carry no
// obligation. The helper's own construction is still checked inside
// the helper's body.
func (c *checker) managedByTestHelper(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		typ := c.pass.TypesInfo.TypeOf(arg)
		if typ == nil {
			continue
		}
		if p, ok := typ.(*types.Pointer); ok {
			typ = p.Elem()
		}
		named, ok := typ.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "testing" {
			switch obj.Name() {
			case "T", "B", "F", "TB":
				return true
			}
		}
	}
	return false
}

func isConstruction(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr, *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	}
	return false
}

// bind records a closer obligation on the identifier, or reports
// immediately when the value lands in the blank identifier.
func (c *checker) bind(lhs ast.Expr, typ types.Type, frame *ast.BlockStmt) {
	id, ok := rfhlintutil.Unparen(lhs).(*ast.Ident)
	if !ok {
		return // stored through a selector/index: ownership transferred
	}
	if id.Name == "_" {
		c.pass.Reportf(id.Pos(),
			"%s is discarded without being closed; bind it and call Close (or defer it)",
			typeName(typ))
		return
	}
	obj := rfhlintutil.ObjectOf(c.pass.TypesInfo, id)
	if obj == nil || c.seen[obj] {
		return
	}
	c.seen[obj] = true
	c.bindings = append(c.bindings, &binding{id: id, obj: obj, typ: typ, frame: frame})
}

// resultCloser reports whether any result of the call is a registered
// module closer type.
func (c *checker) resultCloser(call *ast.CallExpr) (types.Type, bool) {
	tv, ok := c.pass.TypesInfo.Types[call]
	if !ok {
		return nil, false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if c.isCloser(t.At(i).Type()) {
				return t.At(i).Type(), true
			}
		}
	default:
		if c.isCloser(t) {
			return t, true
		}
	}
	return nil, false
}

// isCloser reports whether t is (a pointer to) a registered module
// closer type.
func (c *checker) isCloser(t types.Type) bool {
	_, ok := c.reg.closer(t)
	return ok
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// released reports whether the function body contains a use of obj
// that closes it or transfers its ownership. Receiver positions of
// non-Close selectors (eng.Step(), eng.Cluster()) and pure
// comparisons (eng != nil) keep the obligation alive; everything else
// — a .Close selector, a return, an argument position, the right-hand
// side of another assignment, a composite literal or channel send —
// discharges it.
func released(pass *analysis.Pass, frame *ast.BlockStmt, bind *ast.Ident, obj types.Object) bool {
	done := false
	rfhlintutil.WithStack(frame, func(n ast.Node, stack []ast.Node) bool {
		if done {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == bind || rfhlintutil.ObjectOf(pass.TypesInfo, id) != obj {
			return true
		}
		if releasingUse(id, stack) {
			done = true
			return false
		}
		return true
	})
	return done
}

func releasingUse(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		return parent.Sel.Name == "Close"
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == ast.Expr(id) {
				return false // overwritten, not handed off
			}
		}
		// On the right-hand side the value is stored elsewhere — unless
		// every destination is the blank identifier (`_ = eng` keeps a
		// value alive for the compiler, not for Close).
		for _, lhs := range parent.Lhs {
			if lid, ok := lhs.(*ast.Ident); !ok || lid.Name != "_" {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		for _, arg := range parent.Args {
			if arg == ast.Expr(id) {
				return true // passed to another function
			}
		}
		return false
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr,
		*ast.SendStmt:
		return true
	case *ast.UnaryExpr:
		return parent.Op == token.AND
	}
	return false
}

// enclosingFuncBody returns the body of the innermost function on the
// stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}
