package closecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/closecheck"
)

func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, closecheck.Analyzer, "closefix", "engine", "daemonfix", "daemon", "muxpeer")
}
