// Package closefix exercises closecheck against the fixture engine
// package: leaked, discarded, closed and handed-off constructions.
package closefix

import "engine"

// leaked builds an engine, steps it, and drops it.
func leaked() {
	eng, err := engine.New(true) // want `\*engine\.Engine is bound to "eng" but never closed on any path`
	if err != nil {
		return
	}
	_ = eng.Step()
}

// discarded never even binds the engine.
func discarded() {
	engine.New(true) // want `result of this call \(\*engine\.Engine\) is discarded without being closed`
}

// blanked throws the engine away explicitly.
func blanked() {
	_, _ = engine.New(true) // want `\*engine\.Engine is discarded without being closed`
}

// leakedErrorCloser covers Close() error closers too.
func leakedErrorCloser() {
	rec := engine.NewRecorder() // want `\*engine\.Recorder is bound to "rec" but never closed on any path`
	_ = rec
}

// deferredClose is the canonical safe shape.
func deferredClose() error {
	eng, err := engine.New(true)
	if err != nil {
		return err
	}
	defer eng.Close()
	return eng.Step()
}

// directClose closes without defer: safe.
func directClose() {
	eng, _ := engine.New(true)
	_ = eng.Step()
	eng.Close()
}

// returned transfers ownership to the caller: safe.
func returned() (*engine.Engine, error) {
	eng, err := engine.New(true)
	if err != nil {
		return nil, err
	}
	return eng, nil
}

// handedOff passes the engine to another function, which owns it now.
func handedOff() {
	eng, _ := engine.New(true)
	drive(eng)
}

func drive(e *engine.Engine) {
	defer e.Close()
	_ = e.Step()
}

// cleanupRegistered hands Close to a cleanup hook (the t.Cleanup
// idiom): safe.
func cleanupRegistered(register func(func())) {
	eng, _ := engine.New(true)
	register(eng.Close)
	_ = eng.Step()
}

// stored escapes into a struct: the holder owns it now.
type holder struct{ eng *engine.Engine }

func stored(h *holder) {
	eng, _ := engine.New(true)
	h.eng = eng
}

// closedInClosure closes via a deferred closure: safe.
func closedInClosure() {
	eng, _ := engine.New(true)
	defer func() { eng.Close() }()
	_ = eng.Step()
}

// paramNotTracked: callers own values they pass in.
func paramNotTracked(eng *engine.Engine) {
	_ = eng.Step()
}

// rebindingNotTracked: copying an existing value creates no new
// obligation for the copy's source...
func rebindingNotTracked(h *holder) {
	eng := h.eng
	_ = eng.Step()
}

// closeWithArgsNotTracked: Reader.Close takes a parameter, so Reader
// is not a closer.
func closeWithArgsNotTracked() {
	r := engine.NewReader()
	_ = r
}

// suppressed keeps a process-lifetime engine alive on purpose: the
// directive on the binding line silences the leak report.
func suppressed() {
	//lint:ignore rfhlint/closecheck fixture engine lives for the whole process
	eng, _ := engine.New(true)
	_ = eng.Step()
}
