package closefix

import (
	"testing"

	"engine"
)

// buildEngine is the test-factory idiom: it receives the testing
// handle and registers the Close itself, so call sites carry no
// obligation.
func buildEngine(t *testing.T) *engine.Engine {
	eng, err := engine.New(true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// TestFactoryCallSitesExempt binds from a t-taking helper: no report.
func TestFactoryCallSitesExempt(t *testing.T) {
	eng := buildEngine(t)
	_ = eng.Step()
}

// TestDirectConstructionStillChecked: closecheck applies to test files,
// so a direct New without Close is still a leak.
func TestDirectConstructionStillChecked(t *testing.T) {
	eng, err := engine.New(true) // want `\*engine\.Engine is bound to "eng" but never closed on any path`
	if err != nil {
		t.Fatal(err)
	}
	_ = eng.Step()
}
