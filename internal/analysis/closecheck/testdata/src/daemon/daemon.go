// Package daemon is the closecheck stand-in for the live-runtime
// packages: a Node daemon shaped like repro/internal/node.Node and a
// listener interface shaped like repro/internal/transport.Transport.
// Both must land in the per-package closer registry — the struct by
// its Close() error method, the interface by its Close member, and
// the wrapper by promotion from an embedded closer.
package daemon

import "errors"

// Listener is the transport.Transport shape: an interface whose
// implementations own a socket until Close.
type Listener interface {
	Send(peer string) error
	Close() error
}

// tcp is an unexported Listener implementation.
type tcp struct{}

func (t *tcp) Send(peer string) error { return nil }

// Close releases the socket.
func (t *tcp) Close() error { return nil }

// Listen opens a listener; callers see only the interface.
func Listen(addr string) (Listener, error) {
	if addr == "" {
		return nil, errors.New("daemon: empty address")
	}
	return &tcp{}, nil
}

// Node is the node.Node shape: a daemon owning a transport.
type Node struct{ tr Listener }

// New constructs a node that owns its transport.
func New(tr Listener) (*Node, error) {
	if tr == nil {
		return nil, errors.New("daemon: nil transport")
	}
	return &Node{tr: tr}, nil
}

// Serve runs the node.
func (n *Node) Serve() error { return nil }

// Close shuts the node and its transport down.
func (n *Node) Close() error { return nil }

// Wrapped embeds a closer; the promoted Close makes it one too.
type Wrapped struct {
	*Node
	Label string
}
