// Package daemonfix exercises closecheck against the daemon fixtures:
// interface-typed listeners, the node daemon, and promotion through
// embedding.
package daemonfix

import "daemon"

// leakedListener drops an interface-typed closer: the registry must
// cover interfaces with a Close member, not just concrete structs.
func leakedListener() {
	l, err := daemon.Listen(":7000") // want `daemon\.Listener is bound to "l" but never closed on any path`
	if err != nil {
		return
	}
	_ = l.Send("peer")
}

// leakedNode drops the daemon itself.
func leakedNode() {
	l, err := daemon.Listen(":7000")
	if err != nil {
		return
	}
	defer l.Close()
	n, err := daemon.New(l) // want `\*daemon\.Node is bound to "n" but never closed on any path`
	if err != nil {
		return
	}
	_ = n.Serve()
}

// discardedListener never binds the listener at all.
func discardedListener() {
	daemon.Listen(":7000") // want `result of this call \(daemon\.Listener\) is discarded without being closed`
}

// leakedWrapper constructs a type whose Close is promoted from an
// embedded closer.
func leakedWrapper(n *daemon.Node) {
	w := &daemon.Wrapped{Node: n, Label: "x"} // want `\*daemon\.Wrapped is bound to "w" but never closed on any path`
	_ = w.Serve()
}

// closedNode is the safe shape: transport handed to the node, node
// deferred closed.
func closedNode() error {
	l, err := daemon.Listen(":7000")
	if err != nil {
		return err
	}
	n, err := daemon.New(l)
	if err != nil {
		l.Close()
		return err
	}
	defer n.Close()
	return n.Serve()
}

// returnedListener transfers ownership to the caller: safe.
func returnedListener() (daemon.Listener, error) {
	return daemon.Listen(":7000")
}

// storedNode hands the node to a struct: safe.
type runner struct{ n *daemon.Node }

func storedNode(l daemon.Listener) runner {
	n, _ := daemon.New(l)
	return runner{n: n}
}
