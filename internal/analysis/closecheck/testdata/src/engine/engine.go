// Package engine is the closecheck stand-in for repro/internal/sim: a
// local (and therefore "module") type with a Close method and a
// constructor shaped like sim.New.
package engine

import "errors"

// Engine owns background resources released by Close.
type Engine struct{ closed bool }

// New constructs an engine, or fails.
func New(ok bool) (*Engine, error) {
	if !ok {
		return nil, errors.New("engine: bad config")
	}
	return &Engine{}, nil
}

// Step advances the engine.
func (e *Engine) Step() error { return nil }

// Close releases the engine's workers.
func (e *Engine) Close() { e.closed = true }

// Recorder has a Close() error method: also a closer.
type Recorder struct{}

// NewRecorder constructs a recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Close flushes and reports any error.
func (r *Recorder) Close() error { return nil }

// Reader has a Close with a parameter: not a closer shape we track.
type Reader struct{}

// Close with arguments does not match the io.Closer contract.
func (r *Reader) Close(force bool) {}

// NewReader constructs a reader.
func NewReader() *Reader { return &Reader{} }
