// Package muxpeer is the closecheck stand-in for the multiplexed
// transport's per-peer machinery: types whose constructors spawn
// reader/writer goroutines that only Close reaps. A dropped peer is a
// goroutine leak, not just a socket leak, so the registry must cover
// the goroutine owners — the peer itself and the connection writer —
// and the analyzer must recognise the transport's hand-off idioms
// (peers parked in a registry map, writers handed to the spawned
// loop).
package muxpeer

import "errors"

// Writer owns the single write goroutine of one connection.
type Writer struct{ ch chan []byte }

// NewWriter spawns the write loop; the caller owns the reaping.
func NewWriter() *Writer {
	w := &Writer{ch: make(chan []byte, 1)}
	go w.loop()
	return w
}

func (w *Writer) loop() {
	for range w.ch {
	}
}

// Close stops the write loop.
func (w *Writer) Close() error { close(w.ch); return nil }

// Peer multiplexes requests over one connection: a reader goroutine
// and a Writer, both reaped by Close.
type Peer struct {
	wr   *Writer
	done chan struct{}
}

// Dial connects and spawns the per-connection goroutines.
func Dial(addr string) (*Peer, error) {
	if addr == "" {
		return nil, errors.New("muxpeer: empty address")
	}
	p := &Peer{wr: NewWriter(), done: make(chan struct{})}
	go p.readLoop()
	return p, nil
}

func (p *Peer) readLoop() { <-p.done }

// Send issues one request over the shared connection.
func (p *Peer) Send(req []byte) error { return nil }

// Close reaps the reader and the writer.
func (p *Peer) Close() error {
	close(p.done)
	return p.wr.Close()
}

// leakedPeer drops a goroutine owner: both loops outlive the caller.
func leakedPeer() {
	p, err := Dial("10.0.0.1:7000") // want `\*muxpeer\.Peer is bound to "p" but never closed on any path`
	if err != nil {
		return
	}
	_ = p.Send(nil)
}

// leakedWriter drops the write-loop owner on the error path: the
// early return abandons the goroutine even though the happy path
// stores it.
func leakedWriter(ok bool) *Peer {
	w := NewWriter() // want `\*muxpeer\.Writer is bound to "w" but never closed on any path`
	if !ok {
		return nil
	}
	_ = w
	return nil
}

// discardedPeer never binds the peer at all.
func discardedPeer() {
	Dial("10.0.0.1:7000") // want `result of this call \(\*muxpeer\.Peer\) is discarded without being closed`
}

// registry is the transport shape: peers parked in a map until the
// transport-wide Close sweeps them.
type registry struct{ peers map[string]*Peer }

// parkedPeer stores the peer in the registry — ownership transferred,
// safe.
func (r *registry) parkedPeer(addr string) error {
	p, err := Dial(addr)
	if err != nil {
		return err
	}
	r.peers[addr] = p
	return nil
}

// reapedPeer is the synchronous shape: dial, exchange, defer Close.
func reapedPeer(addr string) error {
	p, err := Dial(addr)
	if err != nil {
		return err
	}
	defer p.Close()
	return p.Send(nil)
}

// handedWriter passes the writer to a spawned loop wrapper — the
// recipient owns it, safe.
func handedWriter(run func(*Writer)) {
	w := NewWriter()
	run(w)
}
