// Package detrange flags `for … range` over a map inside the
// deterministic packages unless the loop body is provably
// order-insensitive.
//
// Go randomises map iteration order per run, so any map-range whose
// body's effect depends on visit order makes simulation state differ
// between runs of the same seed — the exact bug class behind PR 1's
// churn-recovery divergence, where servers were revived in map order
// and the hash ring absorbed the difference. Two body shapes are
// recognised as safe:
//
//   - collect-then-sort: the body only appends keys/values to slices
//     that are sorted later in the same function;
//   - commutative reduction: the body only updates integer
//     accumulators with +=, -=, |=, &=, ^=, ++ or --, deletes map
//     entries, writes map elements keyed by the loop key, or assigns
//     constants — operations whose combined effect is order-free.
//
// Anything else must either iterate sorted keys or carry a
// //lint:ignore rfhlint/detrange directive explaining why order cannot
// leak.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/rfhlintutil"
)

// Analyzer is the detrange check.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flags order-sensitive map iteration in deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !rfhlintutil.InDeterministicPackage(pass) {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if rfhlintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		rfhlintutil.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs, stack) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s has an order-dependent body; collect and sort the keys first, or restructure into a commutative reduction (determinism contract, DESIGN.md)",
				rfhlintutil.ExprString(pass.Fset, rs.X))
			return true
		})
	}
	return nil
}

// orderInsensitive reports whether the loop body provably has the same
// effect under every iteration order.
func orderInsensitive(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	c := &classifier{pass: pass, rs: rs}
	for _, stmt := range rs.Body.List {
		if !c.stmtOK(stmt) {
			return false
		}
	}
	if len(c.collected) == 0 {
		return true // pure commutative reduction
	}
	// Collect pattern: every slice the body appends to must be sorted
	// after the loop, inside the same function.
	fn := enclosingFuncBody(stack)
	if fn == nil {
		return false
	}
	for _, target := range c.collected {
		if !sortedAfter(pass, fn, rs, target) {
			return false
		}
	}
	return true
}

// classifier walks one loop body and decides, statement by statement,
// whether its effects commute across iteration orders. Slices the body
// appends to are recorded in collected for the sorted-later check.
type classifier struct {
	pass      *analysis.Pass
	rs        *ast.RangeStmt
	collected []types.Object
}

func (c *classifier) stmtOK(stmt ast.Stmt) bool {
	info := c.pass.TypesInfo
	switch s := stmt.(type) {
	case *ast.EmptyStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.BlockStmt:
		return c.allOK(s.List)
	case *ast.IfStmt:
		if s.Init != nil && !c.stmtOK(s.Init) {
			return false
		}
		if !c.allOK(s.Body.List) {
			return false
		}
		return s.Else == nil || c.stmtOK(s.Else)
	case *ast.IncDecStmt:
		return rfhlintutil.IsInteger(info.TypeOf(s.X))
	case *ast.ExprStmt:
		// delete(m, k) is order-free: each key is removed exactly once
		// whatever order the loop visits them in.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := rfhlintutil.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := rfhlintutil.ObjectOf(info, id).(*types.Builtin)
		return ok && b.Name() == "delete"
	case *ast.AssignStmt:
		return c.assignOK(s)
	}
	return false
}

func (c *classifier) allOK(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !c.stmtOK(s) {
			return false
		}
	}
	return true
}

func (c *classifier) assignOK(s *ast.AssignStmt) bool {
	info := c.pass.TypesInfo
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	lhs, rhs := rfhlintutil.Unparen(s.Lhs[0]), s.Rhs[0]
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
		token.AND_ASSIGN, token.XOR_ASSIGN:
		// Integer accumulation commutes; float accumulation does not
		// (rounding makes it order-dependent), so only integer kinds
		// qualify.
		return rfhlintutil.IsInteger(info.TypeOf(lhs))
	case token.ASSIGN:
		// s = append(s, x): the collect half of collect-then-sort.
		if id, ok := lhs.(*ast.Ident); ok {
			if target, ok := appendTo(info, id, rhs); ok {
				c.collect(target)
				return true
			}
		}
		// m[k] = v keyed by the loop variable touches each key exactly
		// once, so the final map is the same in any order.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap && c.isLoopKey(ix.Index) {
				return true
			}
		}
		// x = <constant> is idempotent: every iteration writes the same
		// value.
		if tv, ok := info.Types[rhs]; ok && tv.Value != nil {
			return true
		}
	}
	return false
}

// appendTo matches rhs == append(id, ...) and returns id's object.
func appendTo(info *types.Info, id *ast.Ident, rhs ast.Expr) (types.Object, bool) {
	call, ok := rfhlintutil.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil, false
	}
	fn, ok := rfhlintutil.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if b, ok := rfhlintutil.ObjectOf(info, fn).(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	base, ok := rfhlintutil.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := rfhlintutil.ObjectOf(info, base)
	if obj == nil || obj != rfhlintutil.ObjectOf(info, id) {
		return nil, false
	}
	return obj, true
}

func (c *classifier) collect(obj types.Object) {
	for _, o := range c.collected {
		if o == obj {
			return
		}
	}
	c.collected = append(c.collected, obj)
}

// isLoopKey reports whether e is the range statement's key variable.
func (c *classifier) isLoopKey(e ast.Expr) bool {
	id, ok := rfhlintutil.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	key, ok := rfhlintutil.Unparen(c.rs.Key).(*ast.Ident)
	if !ok {
		return false
	}
	obj := rfhlintutil.ObjectOf(c.pass.TypesInfo, id)
	return obj != nil && obj == rfhlintutil.ObjectOf(c.pass.TypesInfo, key)
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// sortFuncs are the standard sorters whose application to a collected
// slice discharges the ordering obligation.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Ints": true, "Strings": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether target is passed to a recognised sort
// function somewhere after the range statement in fn's body.
func sortedAfter(pass *analysis.Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, target types.Object) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := rfhlintutil.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name := rfhlintutil.PkgFunc(info, sel.Sel)
		if !sortFuncs[pkg][name] {
			return true
		}
		for _, arg := range call.Args {
			if rfhlintutil.UsesObject(info, arg, target) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}
