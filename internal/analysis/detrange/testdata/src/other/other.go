// Package other is not on the deterministic-package allowlist, so its
// map ranges are never reported.
package other

func report(m map[string]int) []string {
	var lines []string
	for k := range m {
		lines = append(lines, k)
	}
	return lines
}
