// Package sim is a detrange fixture standing in for the real
// repro/internal/sim: its import path is on the deterministic-package
// allowlist, so every map range here is checked.
package sim

import (
	"sort"
)

// orderDependent leaks iteration order into the returned slice.
func orderDependent(m map[int]int) []int {
	var out []int
	for k, v := range m { // want `range over map m has an order-dependent body`
		out = append(out, k*v)
	}
	return out
}

// mixedSideEffect calls a function from the loop body, so order leaks
// through the callee.
func mixedSideEffect(m map[string]float64) {
	total := 0.0
	for _, v := range m { // want `range over map m has an order-dependent body`
		total += v // float accumulation rounds differently per order
	}
	_ = total
}

// collectThenSort appends keys and sorts them afterwards: safe.
func collectThenSort(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// guardedCollect appends under a condition and sorts with sort.Ints:
// still safe.
func guardedCollect(m map[int]int, cut int) []int {
	var big []int
	for k, v := range m {
		if v > cut {
			big = append(big, k)
		}
	}
	sort.Ints(big)
	return big
}

// collectNoSort appends but never sorts: the slice order is the map
// order.
func collectNoSort(m map[int]int) []int {
	var out []int
	for k := range m { // want `range over map m has an order-dependent body`
		out = append(out, k)
	}
	return out
}

// intReduction only updates integer accumulators: order-free.
func intReduction(m map[int]int) (n, sum int) {
	for _, v := range m {
		if v > 0 {
			sum += v
			n++
		}
	}
	return n, sum
}

// pruneInPlace deletes entries by predicate: order-free.
func pruneInPlace(m map[int]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// rekey writes a second map keyed by the loop key: each key is touched
// exactly once, so the result is order-free.
func rekey(src map[int]int, dst map[int]bool) {
	for k, v := range src {
		dst[k] = v > 0
	}
}

// flag sets a constant: idempotent, order-free.
func flag(m map[int]bool) bool {
	found := false
	for _, v := range m {
		if v {
			found = true
		}
	}
	return found
}

// suppressed documents why order cannot leak and is therefore exempt.
func suppressed(m map[int]func()) {
	//lint:ignore rfhlint/detrange the callbacks are independent and commutative by construction
	for _, fn := range m {
		fn()
	}
}
