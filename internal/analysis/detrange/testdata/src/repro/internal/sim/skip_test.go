package sim

// Test files are outside the determinism contract: this order-dependent
// loop must not be reported.
func helperForTests(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
