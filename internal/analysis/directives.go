package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation directives tie source declarations to the static
// contracts rfhlint enforces, replacing prose comments ("callers must
// not hold n.mu") with machine-checked markers:
//
//	//lint:requires-unlocked n.mu     — lockcheck: no caller may hold
//	                                    the named lock across a call
//	//lint:exhaustive                 — kindswitch: the switch or
//	                                    composite literal below must
//	                                    cover every constant of the
//	                                    family it dispatches on
//	//lint:must-check-error           — errsink: callers may not
//	                                    discard this function's error
//	                                    result
//
// Like lint:ignore, a directive written on line D governs the
// declaration or statement that starts on line D (trailing-comment
// placement) or D+1 (own-line placement, the common form inside a doc
// comment).

// Directive is one parsed //lint:<name> marker (lint:ignore excluded —
// suppression stays in suppress.go).
type Directive struct {
	Pos  token.Pos
	Name string // e.g. "requires-unlocked"
	Args string // remainder of the line, space-trimmed
	Line int
}

// directivesIn scans the package files for lint: markers other than
// lint:ignore.
func directivesIn(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lint:")
				if !ok || strings.HasPrefix(rest, "ignore ") || rest == "ignore" {
					continue
				}
				name, args, _ := strings.Cut(rest, " ")
				if name == "" {
					continue
				}
				out = append(out, Directive{
					Pos:  c.Pos(),
					Name: name,
					Args: strings.TrimSpace(args),
					Line: fset.Position(c.Pos()).Line,
				})
			}
		}
	}
	return out
}

// Directive returns the named directive governing the node: one
// written on the node's first line or the line above it. The second
// result is false if none applies.
func (p *Pass) Directive(n ast.Node, name string) (Directive, bool) {
	line := p.Fset.Position(n.Pos()).Line
	for _, d := range p.directives {
		if d.Name == name && (d.Line == line || d.Line == line-1) &&
			sameFile(p.Fset, d.Pos, n.Pos()) {
			return d, true
		}
	}
	return Directive{}, false
}

// Directives returns every non-ignore lint: directive in the package.
func (p *Pass) Directives() []Directive { return p.directives }

func sameFile(fset *token.FileSet, a, b token.Pos) bool {
	return fset.File(a) == fset.File(b)
}
