// Package divguard flags floating-point division by a capacity- or
// count-named quantity that no dominating check proves positive.
//
// The shape it targets is PR 1's recordEpoch bug: utilisation was
// computed as served/ReplicaCapacity, a cluster with a zero-capacity
// server made the quotient NaN, and the NaN silently poisoned every
// downstream mean of the metric series. Denominators whose name ends
// in "capacity" or "count" (struct fields, parameters, locals) must be
// dominated by a positivity check:
//
//	if cap > 0 { u = load / cap }          // guarded: enclosing if
//	if cap <= 0 { return }                 // guarded: early exit
//	u := load / cap                        // flagged
//
// len(...) and constant denominators are exempt (len is never negative
// and a division that can only be reached with len > 0 is the usual
// collect-then-average idiom's job to guard; constants are checked at
// compile time). The check sees through float64(x) conversions, so
// both x/cap and x/float64(cap) resolve to cap.
package divguard

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/rfhlintutil"
)

// Analyzer is the divguard check.
var Analyzer = &analysis.Analyzer{
	Name: "divguard",
	Doc:  "flags unguarded float division by capacity/count-named denominators",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		if rfhlintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		rfhlintutil.WithStack(file, func(n ast.Node, stack []ast.Node) bool {
			div, ok := n.(*ast.BinaryExpr)
			if !ok || div.Op != token.QUO {
				return true
			}
			if !rfhlintutil.IsFloat(info.TypeOf(div)) {
				return true
			}
			denoms := denominators(pass, div.Y)
			name := denomName(denoms[len(denoms)-1])
			if !capacityLike(name) {
				return true
			}
			if exempt(pass, denoms) {
				return true
			}
			g := &guardScan{pass: pass, names: exprStrings(pass, denoms)}
			if g.guarded(div, stack) {
				return true
			}
			pass.Reportf(div.Y.Pos(),
				"division by %s with no dominating positivity check; a zero %s makes this NaN and poisons every metric derived from it (guard with `if %s > 0`)",
				rfhlintutil.ExprString(pass.Fset, div.Y), name,
				rfhlintutil.ExprString(pass.Fset, rfhlintutil.Unparen(div.Y)))
			return true
		})
	}
	return nil
}

// denominators returns the denominator expression and, when it is a
// conversion like float64(x), the converted operand too — guards are
// written against either spelling.
func denominators(pass *analysis.Pass, y ast.Expr) []ast.Expr {
	out := []ast.Expr{rfhlintutil.Unparen(y)}
	for {
		call, ok := out[len(out)-1].(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			break
		}
		if tv, ok := pass.TypesInfo.Types[call.Fun]; !ok || !tv.IsType() {
			break
		}
		out = append(out, rfhlintutil.Unparen(call.Args[0]))
	}
	return out
}

// denomName names the innermost denominator: the identifier or the
// selected field. Unnamed shapes (calls, index expressions) return "".
func denomName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

func capacityLike(name string) bool {
	l := strings.ToLower(name)
	return strings.HasSuffix(l, "capacity") || strings.HasSuffix(l, "count")
}

// exempt reports denominators that cannot produce a surprise zero at
// this site: len(...) results and compile-time constants.
func exempt(pass *analysis.Pass, denoms []ast.Expr) bool {
	for _, d := range denoms {
		if rfhlintutil.IsLenCall(pass.TypesInfo, d) {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[d]; ok && tv.Value != nil {
			return true
		}
	}
	return false
}

func exprStrings(pass *analysis.Pass, exprs []ast.Expr) map[string]bool {
	out := make(map[string]bool, len(exprs))
	for _, e := range exprs {
		if s := rfhlintutil.ExprString(pass.Fset, e); s != "" {
			out[s] = true
		}
	}
	return out
}

// guardScan checks whether any dominating construct proves the
// denominator positive. names holds the source spellings of the
// denominator (and its conversion operand); matching is textual, the
// same notion of identity a reviewer applies.
type guardScan struct {
	pass  *analysis.Pass
	names map[string]bool
}

// guarded walks outward from the division along its ancestor stack.
// Three dominating shapes discharge the obligation:
//
//   - the division sits in the body of `if d > 0`;
//   - the division sits in the else of `if d <= 0`;
//   - an earlier statement of an enclosing block is `if d <= 0 {
//     return/continue/break/panic }` or repairs d (`if d <= 0 { d = 1 }`).
func (g *guardScan) guarded(div ast.Expr, stack []ast.Node) bool {
	var child ast.Node = div
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.IfStmt:
			if child == parent.Body && g.condImpliesPositive(parent.Cond) {
				return true
			}
			if child == parent.Else && g.condImpliesNonPositive(parent.Cond) {
				return true
			}
		case *ast.BlockStmt:
			for _, stmt := range parent.List {
				if stmt == child {
					break
				}
				if g.earlyGuard(stmt) {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			// Guards outside the function that contains the division
			// dominate a different frame; stop here.
			return false
		}
		child = stack[i]
	}
	return false
}

// earlyGuard recognises a preceding `if d <= 0 { ... }` whose body
// either leaves the enclosing path (return/continue/break/panic/
// os.Exit) or assigns the denominator a new value.
func (g *guardScan) earlyGuard(stmt ast.Stmt) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || !g.condImpliesNonPositive(ifs.Cond) {
		return false
	}
	if rfhlintutil.TerminatesFlow(g.pass.TypesInfo, ifs.Body.List) {
		return true
	}
	for _, s := range ifs.Body.List {
		if as, ok := s.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if g.names[rfhlintutil.ExprString(g.pass.Fset, rfhlintutil.Unparen(lhs))] {
					return true
				}
			}
		}
	}
	return false
}

// condImpliesPositive reports whether cond being true proves the
// denominator positive. Only conjunctions are descended: in `a || b`
// neither side is individually implied.
func (g *guardScan) condImpliesPositive(cond ast.Expr) bool {
	switch e := rfhlintutil.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LAND {
			return g.condImpliesPositive(e.X) || g.condImpliesPositive(e.Y)
		}
		return g.comparison(e, true)
	}
	return false
}

// condImpliesNonPositive reports whether cond being true proves the
// denominator zero or negative — the early-exit/else shape. Here
// disjunctions are descended (`if a == 0 || b == 0 { return }` guards
// both), conjunctions are not: `d == 0 && x` firing is not implied by
// d being zero, so code after it may still see d == 0.
func (g *guardScan) condImpliesNonPositive(cond ast.Expr) bool {
	switch e := rfhlintutil.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return g.condImpliesNonPositive(e.X) || g.condImpliesNonPositive(e.Y)
		}
		return g.comparison(e, false)
	}
	return false
}

// comparison evaluates one comparison against the denominator. With
// positive=true it asks "does this prove d > 0", otherwise "does this
// prove d <= 0". Comparisons against non-constant bounds are treated
// as guards only in the positive direction when the bound is a
// provably non-negative constant.
func (g *guardScan) comparison(e *ast.BinaryExpr, positive bool) bool {
	x := rfhlintutil.ExprString(g.pass.Fset, rfhlintutil.Unparen(e.X))
	y := rfhlintutil.ExprString(g.pass.Fset, rfhlintutil.Unparen(e.Y))
	op := e.Op
	var bound ast.Expr
	switch {
	case g.names[x]:
		bound = e.Y
	case g.names[y]:
		bound, op = e.X, flip(op)
	default:
		return false
	}
	sign, ok := constSign(g.pass, bound)
	if !ok {
		return false
	}
	if positive {
		// d > c with c >= 0;  d >= c with c > 0;  d != 0.
		switch op {
		case token.GTR:
			return sign >= 0
		case token.GEQ:
			return sign > 0
		case token.NEQ:
			return sign == 0
		}
		return false
	}
	// d == 0;  d <= c with c <= 0;  d < c with c <= 0.
	switch op {
	case token.EQL:
		return sign == 0
	case token.LEQ, token.LSS:
		return sign <= 0
	}
	return false
}

// flip mirrors a comparison so the denominator reads on the left.
func flip(op token.Token) token.Token {
	switch op {
	case token.GTR:
		return token.LSS
	case token.LSS:
		return token.GTR
	case token.GEQ:
		return token.LEQ
	case token.LEQ:
		return token.GEQ
	}
	return op
}

// constSign returns the sign of a constant bound expression.
func constSign(pass *analysis.Pass, e ast.Expr) (int, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value), true
	}
	return 0, false
}
