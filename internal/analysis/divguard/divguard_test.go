package divguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/divguard"
)

func TestDivGuard(t *testing.T) {
	analysistest.Run(t, divguard.Analyzer, "divfix")
}
