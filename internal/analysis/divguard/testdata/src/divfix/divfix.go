// Package divfix exercises divguard: float divisions by capacity- and
// count-named denominators with and without dominating guards.
package divfix

// Server mirrors the shape of the recordEpoch NaN bug: ReplicaCapacity
// can be zero for a degenerate cluster.
type Server struct {
	ReplicaCapacity float64
	QueryCount      int
	Load            float64
}

// unguardedField is the original bug shape.
func unguardedField(s Server) float64 {
	return s.Load / s.ReplicaCapacity // want `division by s.ReplicaCapacity with no dominating positivity check`
}

// unguardedConverted divides by a converted count: seen through.
func unguardedConverted(s Server) float64 {
	return s.Load / float64(s.QueryCount) // want `division by float64\(s.QueryCount\) with no dominating positivity check`
}

// unguardedParam flags capacity-named parameters too.
func unguardedParam(load, diskCapacity float64) float64 {
	return load / diskCapacity // want `division by diskCapacity with no dominating positivity check`
}

// guardedBody divides inside the positive branch: safe.
func guardedBody(s Server) float64 {
	if s.ReplicaCapacity > 0 {
		return s.Load / s.ReplicaCapacity
	}
	return 0
}

// guardedConjunction still dominates through &&.
func guardedConjunction(s Server, ok bool) float64 {
	if ok && s.ReplicaCapacity > 0 {
		return s.Load / s.ReplicaCapacity
	}
	return 0
}

// disjunctionDoesNotGuard: either side alone may be false.
func disjunctionDoesNotGuard(s Server, ok bool) float64 {
	if ok || s.ReplicaCapacity > 0 {
		return s.Load / s.ReplicaCapacity // want `division by s.ReplicaCapacity with no dominating positivity check`
	}
	return 0
}

// earlyReturn guards with an early exit: safe.
func earlyReturn(load float64, serverCount int) float64 {
	if serverCount <= 0 {
		return 0
	}
	return load / float64(serverCount)
}

// earlyReturnDisjunct guards several denominators in one early exit.
func earlyReturnDisjunct(a, b float64, rackCount, diskCount int) float64 {
	if rackCount == 0 || diskCount == 0 {
		return 0
	}
	return a/float64(rackCount) + b/float64(diskCount)
}

// repaired resets a zero denominator instead of exiting: safe.
func repaired(load float64, slotCount float64) float64 {
	if slotCount <= 0 {
		slotCount = 1
	}
	return load / slotCount
}

// elseOfZeroCheck divides on the branch where the check failed: safe.
func elseOfZeroCheck(s Server) float64 {
	if s.ReplicaCapacity == 0 {
		return 0
	} else {
		return s.Load / s.ReplicaCapacity
	}
}

// lenDenominator is exempt: the collect-then-average idiom.
func lenDenominator(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// constDenominator is exempt: checked at compile time.
func constDenominator(load float64) float64 {
	const burstCount = 4
	return load / burstCount
}

// otherNames are not capacity-like and stay unflagged.
func otherNames(a, b float64) float64 {
	return a / b
}

// wrongDirectionGuard checks the numerator, not the denominator.
func wrongDirectionGuard(s Server) float64 {
	if s.Load > 0 {
		return s.Load / s.ReplicaCapacity // want `division by s.ReplicaCapacity with no dominating positivity check`
	}
	return 0
}

// suppressed documents an out-of-band invariant.
func suppressed(load, portCount float64) float64 {
	//lint:ignore rfhlint/divguard portCount is validated positive at config parse time
	return load / portCount
}
