package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Run applies every analyzer to every package, filters findings through
// the packages' lint:ignore directives, and returns the survivors in
// stable file/line/column/analyzer order.
//
// Packages are visited in dependency order (imports before importers)
// so that facts exported while analyzing a dependency are visible to
// the passes over its importers; a single Facts store is shared across
// the whole run. After all passes, every lint:ignore directive that
// names an analyzer in the run set but matched no diagnostic is
// reported as stale (category "staleignore") — dead suppressions hide
// real regressions and must be deleted when the code they excused is
// fixed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ordered := topoOrder(pkgs)
	facts := NewFacts()
	runSet := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		runSet[a.Name] = true
	}

	var diags []Diagnostic
	for _, pkg := range ordered {
		sup := suppressionsFor(pkg.Fset, pkg.Files)
		dirs := directivesIn(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			var found []Diagnostic
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.TypesInfo,
				Path:        pkg.Path,
				IsModulePkg: pkg.isModulePkg,
				Facts:       facts,
				pkg:         pkg,
				directives:  dirs,
				diags:       &found,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range found {
				if !sup.suppressed(pkg.Fset, d) {
					diags = append(diags, d)
				}
			}
		}
		diags = append(diags, sup.stale(runSet)...)
	}
	// Both loaders share one FileSet across the packages of a run, so a
	// single global sort gives a stable report.
	if len(pkgs) > 0 {
		sortDiagnostics(pkgs[0].Fset, diags)
	}
	return diags, nil
}

// topoOrder sorts packages so every package follows the packages it
// imports. `go list -deps` emits this order, but Load sorts by path for
// report stability, so the driver re-derives it from the type-checked
// import graph. Ties (and the plain-vs-test-augmented split, where both
// variants resolve to the same undecorated path) break by listing
// order, keeping the visit deterministic.
func topoOrder(pkgs []*Package) []*Package {
	// Index packages by undecorated path. A test-augmented variant
	// supersedes the plain build in Load, so paths are unique here.
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[undecorated(p.Path)] = p
	}
	var out []*Package
	state := make(map[*Package]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return // done, or a cycle through test imports: keep going
		}
		state[p] = 1
		// Imports() of a from-source-checked package lists every
		// directly imported package object, including ones materialized
		// from export data; only ones we also analyze matter for order.
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok && dep != p {
				visit(dep)
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Category < diags[j].Category
	})
}

// Format renders a diagnostic the way go vet does, prefixed with the
// analyzer that produced it.
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: [rfhlint/%s] %s", fset.Position(d.Pos), d.Category, d.Message)
}

// JSONDiagnostic is the machine-readable form of one finding, emitted
// by rfhlint -json one object per line.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// ToJSON converts a diagnostic for -json output.
func ToJSON(fset *token.FileSet, d Diagnostic) JSONDiagnostic {
	pos := fset.Position(d.Pos)
	return JSONDiagnostic{
		File:     pos.Filename,
		Line:     pos.Line,
		Column:   pos.Column,
		Analyzer: "rfhlint/" + d.Category,
		Message:  d.Message,
	}
}
