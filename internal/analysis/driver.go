package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Run applies every analyzer to every package, filters findings through
// the packages' lint:ignore directives, and returns the survivors in
// stable file/line/column/analyzer order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := suppressionsFor(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			var found []Diagnostic
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Files,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.TypesInfo,
				Path:        pkg.Path,
				IsModulePkg: pkg.isModulePkg,
				diags:       &found,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range found {
				if !sup.suppressed(pkg.Fset, d) {
					diags = append(diags, d)
				}
			}
		}
	}
	// Both loaders share one FileSet across the packages of a run, so a
	// single global sort gives a stable report.
	if len(pkgs) > 0 {
		sortDiagnostics(pkgs[0].Fset, diags)
	}
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Category < diags[j].Category
	})
}

// Format renders a diagnostic the way go vet does, prefixed with the
// analyzer that produced it.
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: [rfhlint/%s] %s", fset.Position(d.Pos), d.Category, d.Message)
}
