// Package errsink flags discarded error results on the data plane.
//
// The replication algorithm's correctness leans on its error returns:
// applySync tells the caller whether a version actually advanced,
// syncWrite whether a quorum peer took the write, Encode/Decode whether
// a frame survived the wire. Dropping one of those on the floor is how
// an acked write silently diverges — the bug class PR 6 fixed at
// runtime, enforced here at lint time.
//
// A call is a *sink* when its error result is structurally discarded:
//
//   - the call is a bare expression statement,
//   - the error position is assigned to the blank identifier, or
//   - the call is the operand of a go or defer statement (both throw
//     every result away).
//
// A callee is *must-check* when it is declared in this module, returns
// an error as its final result, and either its name starts with a
// data-plane verb (apply, sync, transfer, send, flush, encode, decode,
// merge, stamp, err, replay, compact) or its declaration is annotated
// //lint:must-check-error. The annotation is exported as a fact, so
// importers of an annotated function are held to it too. Deliberate
// discards are silenced in place with a reasoned
// //lint:ignore rfhlint/errsink directive.
//
// Test files are exempt: tests discard errors while arranging fixtures,
// and the assertion layer (checkf, t.Fatal) is their error sink.
package errsink

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/analysis"
	"repro/internal/analysis/rfhlintutil"
)

// Analyzer is the errsink check.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "flags discarded error results of data-plane functions (apply*, sync*, send*, codec, and lint:must-check-error callees)",
	Run:  run,
}

// factMustCheck marks a function whose error result must always be
// consumed, independent of its name.
const factMustCheck = "errsink.mustCheck"

// verbs are the data-plane name prefixes that imply must-check.
// replay and compact joined with the durable engine: a dropped replay
// error is a store that silently booted empty, and a dropped compact
// error can leak a WAL forever.
var verbs = []string{
	"apply", "sync", "transfer", "send", "flush",
	"encode", "decode", "merge", "stamp", "err",
	"replay", "compact",
}

func run(pass *analysis.Pass) error {
	// First pass: export must-check-error annotations as facts and
	// collect them locally, so same-package call sites see them even
	// before export-data round-trips.
	local := make(map[*types.Func]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := pass.Directive(fd, "must-check-error"); !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if !returnsError(obj) {
				pass.Reportf(fd.Pos(), "lint:must-check-error on %s, which does not return an error", obj.Name())
				continue
			}
			local[obj] = true
			pass.ExportObjectFact(obj, factMustCheck, true)
		}
	}

	for _, file := range pass.Files {
		if rfhlintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkDiscard(pass, local, call, "")
				}
			case *ast.AssignStmt:
				checkAssign(pass, local, n)
			case *ast.GoStmt:
				checkDiscard(pass, local, n.Call, "the go statement")
			case *ast.DeferStmt:
				checkDiscard(pass, local, n.Call, "the defer statement")
			}
			return true
		})
	}
	return nil
}

// checkAssign flags blank identifiers aligned with the error result of
// a must-check call: `_ = m.Err()` and `v, _ := decodeValue(b)` both
// qualify.
func checkAssign(pass *analysis.Pass, local map[*types.Func]bool, as *ast.AssignStmt) {
	// Only the single-call multi-assign form (n LHS, 1 call RHS) and
	// the 1:1 form can discard an error position.
	if len(as.Rhs) != 1 {
		// Parallel assignment: each RHS maps to one LHS; an error can
		// only land in a blank slot from its own call.
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
				continue
			}
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				checkDiscard(pass, local, call, "")
			}
		}
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := mustCheckCallee(pass, local, call)
	if fn == nil {
		return
	}
	// The error is the final result; it lands in the final LHS slot.
	last := as.Lhs[len(as.Lhs)-1]
	if isBlank(last) {
		report(pass, last.Pos(), fn, "")
	}
}

// checkDiscard flags a call whose results are thrown away wholesale
// (expression statement, go, defer) when the callee is must-check.
func checkDiscard(pass *analysis.Pass, local map[*types.Func]bool, call *ast.CallExpr, via string) {
	if fn := mustCheckCallee(pass, local, call); fn != nil {
		report(pass, call.Pos(), fn, via)
	}
}

func report(pass *analysis.Pass, pos token.Pos, fn *types.Func, via string) {
	if via != "" {
		pass.Reportf(pos, "error result of %s is discarded by %s; data-plane errors are load-bearing, check it or restructure", fn.Name(), via)
		return
	}
	pass.Reportf(pos, "error result of %s is discarded; data-plane errors are load-bearing, check it or suppress with a reasoned lint:ignore", fn.Name())
}

// mustCheckCallee resolves call's static callee and reports whether its
// error result is must-check: a module function returning error whose
// name carries a data-plane verb or whose declaration carries the
// must-check-error annotation (locally or as an imported fact).
func mustCheckCallee(pass *analysis.Pass, local map[*types.Func]bool, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if !inModule(fn.Pkg().Path()) || !returnsError(fn) {
		return nil
	}
	if local[fn] {
		return fn
	}
	if v, ok := pass.ImportObjectFact(fn, factMustCheck); ok {
		if marked, _ := v.(bool); marked {
			return fn
		}
	}
	if hasVerb(fn.Name()) {
		return fn
	}
	return nil
}

// inModule reports whether pkgPath belongs to this module. The module
// path is "repro"; fixture trees reuse the same layout.
func inModule(pkgPath string) bool {
	return pkgPath == "repro" || strings.HasPrefix(pkgPath, "repro/")
}

// returnsError reports whether fn's final result is exactly error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// hasVerb reports whether name starts with a data-plane verb followed
// by a word boundary: applySync and Err qualify, "application" does
// not.
func hasVerb(name string) bool {
	lower := strings.ToLower(name)
	for _, v := range verbs {
		if !strings.HasPrefix(lower, v) {
			continue
		}
		if len(name) == len(v) {
			return true
		}
		r, _ := utf8.DecodeRuneInString(name[len(v):])
		if unicode.IsUpper(r) || unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
