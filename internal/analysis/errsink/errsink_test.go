package errsink_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errsink"
)

// TestErrsink loads the chaos fixture, pulling node and transport in
// transitively; the node pass exports the must-check-error fact for
// Rebalance before chaos is checked against it.
func TestErrsink(t *testing.T) {
	analysistest.Run(t, errsink.Analyzer, "repro/internal/chaos")
}
