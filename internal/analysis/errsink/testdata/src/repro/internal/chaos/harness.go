// Package chaos exercises errsink's cross-package fact: node.Rebalance
// carries //lint:must-check-error, and that obligation follows the
// function across the package boundary.
package chaos

import "repro/internal/node"

// Harness drives fixture nodes.
type Harness struct {
	nodes []*node.Node
}

func (h *Harness) rebalanceAll(parts []int) {
	for _, nd := range h.nodes {
		nd.Rebalance(parts) // want `error result of Rebalance is discarded`
	}
}

func (h *Harness) rebalanceChecked(parts []int) error {
	for _, nd := range h.nodes {
		if err := nd.Rebalance(parts); err != nil {
			return err
		}
	}
	return nil
}
