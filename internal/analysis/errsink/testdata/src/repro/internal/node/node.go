// Package node exercises errsink: every structural way of discarding a
// data-plane error (bare call statement, blank assignment, go, defer),
// the must-check-error annotation, and the negative shapes that must
// stay silent.
package node

import (
	"errors"
	"fmt"

	"repro/internal/transport"
)

// Node is the fixture data plane.
type Node struct {
	vals map[string][]byte
}

// applySync installs a replicated value; the error reports version
// regression, which the caller must surface.
func (n *Node) applySync(key string, v []byte) error {
	if n.vals == nil {
		return errors.New("closed")
	}
	n.vals[key] = v
	return nil
}

// syncWrite pushes one write to a peer.
func (n *Node) syncWrite(addr string, m *transport.Message) error {
	if addr == "" {
		return errors.New("no peer")
	}
	return nil
}

// Rebalance carries the annotation instead of a verb name; callers in
// any package must consume its error.
//
//lint:must-check-error
func (n *Node) Rebalance(parts []int) error {
	if len(parts) == 0 {
		return errors.New("empty plan")
	}
	return nil
}

// logf is a non-data-plane callee: discarding its error is fine.
func (n *Node) logf(format string, args ...any) error {
	_, err := fmt.Println(fmt.Sprintf(format, args...))
	return err
}

// --- Violations -------------------------------------------------------

func (n *Node) dropBareCall(key string, v []byte) {
	n.applySync(key, v) // want `error result of applySync is discarded`
}

func (n *Node) dropBlankAssign(m *transport.Message) {
	_ = m.Err() // want `error result of Err is discarded`
}

func (n *Node) dropDecodeResult(b []byte) *transport.Message {
	m, _ := transport.Decode(b) // want `error result of Decode is discarded`
	return m
}

func (n *Node) dropInGoroutine(addr string, m *transport.Message) {
	go n.syncWrite(addr, m) // want `error result of syncWrite is discarded by the go statement`
}

func (n *Node) dropInDefer(key string, v []byte) {
	defer n.applySync(key, v) // want `error result of applySync is discarded by the defer statement`
}

func (n *Node) dropAnnotated(parts []int) {
	n.Rebalance(parts) // want `error result of Rebalance is discarded`
}

func (n *Node) dropParallelAssign() {
	_, _ = errPeek(), 5 // want `error result of errPeek is discarded`
}

// parallelAssignChecked: in a parallel assignment the error lands in a
// named slot; the blank holds the constant. Silent.
func (n *Node) parallelAssignChecked() error {
	var x error
	x, _ = errPeek(), 5
	return x
}

// errPeek is an err-verb fixture callee for the parallel-assign cases.
func errPeek() error { return nil }

// replayWAL and compactLog are the durable-engine verb fixtures: a
// dropped replay error is a store that silently booted empty, a
// dropped compact error a WAL leaked forever.
func (n *Node) replayWAL(p int) error {
	if n.vals == nil {
		return errors.New("no engine")
	}
	return nil
}

func compactLog(p int) error {
	if p < 0 {
		return errors.New("no partition")
	}
	return nil
}

func (n *Node) dropReplay(p int) {
	n.replayWAL(p) // want `error result of replayWAL is discarded`
}

func (n *Node) dropCompact(p int) {
	defer compactLog(p) // want `error result of compactLog is discarded by the defer statement`
}

// --- Suppression ------------------------------------------------------

func (n *Node) dropSuppressed(m *transport.Message) {
	//lint:ignore rfhlint/errsink fixture: status already folded into Value
	_ = m.Err()
}

// --- Negatives --------------------------------------------------------

func (n *Node) checked(key string, v []byte) error {
	if err := n.applySync(key, v); err != nil {
		return err
	}
	b, err := transport.Encode(&transport.Message{Value: v})
	if err != nil {
		return err
	}
	_ = b
	return nil
}

// nonDataPlane: logf returns an error, but its name carries no verb and
// no annotation, so discarding is allowed.
func (n *Node) nonDataPlane() {
	n.logf("rebalanced")
}

// stdlibDiscard: fmt.Println is outside the module; errsink does not
// police the standard library.
func (n *Node) stdlibDiscard() {
	fmt.Println("ok")
}

// application is not a verb match: "apply" must end at a word boundary.
// Likewise compaction: "compact" must end at a boundary too.
func application() error { return nil }

func compaction() error { return nil }

func (n *Node) verbBoundary() {
	application()
	compaction()
}

// misannotated pins the annotation-consistency report.
//
//lint:must-check-error
func (n *Node) misannotated() int { return 0 } // want `lint:must-check-error on misannotated, which does not return an error`
