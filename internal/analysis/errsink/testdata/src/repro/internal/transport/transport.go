// Package transport is a fixture mirror: a codec whose Encode/Decode
// errors and a Message.Err accessor, matching the real wire layer's
// must-check surface.
package transport

import "errors"

// Message is one wire frame.
type Message struct {
	Kind   uint8
	Status uint8
	Value  []byte
}

// Err folds an error-status reply into an error value.
func (m *Message) Err() error {
	if m.Status != 0 {
		return errors.New("remote error")
	}
	return nil
}

// Encode frames m.
func Encode(m *Message) ([]byte, error) {
	if m == nil {
		return nil, errors.New("nil message")
	}
	return append([]byte{m.Kind, m.Status}, m.Value...), nil
}

// Decode unframes b.
func Decode(b []byte) (*Message, error) {
	if len(b) < 2 {
		return nil, errors.New("short frame")
	}
	return &Message{Kind: b[0], Status: b[1], Value: b[2:]}, nil
}
