package analysis

import (
	"fmt"
	"go/types"
	"strings"
)

// Facts is the cross-package summary store of one analysis run.
//
// An analyzer computes per-function (or per-object) summaries while its
// pass visits a package — "this function may perform a network send",
// "this function's error result must be checked" — and exports them
// here. Because the driver analyzes packages in dependency order
// (imports before importers, see Run), a pass over package p can import
// the facts its dependencies exported and so reason across package
// boundaries without ever seeing their source: the callee object comes
// from compiler export data, the behavioural summary from the fact
// store.
//
// Keys are stable object paths, not types.Object identities: every
// package is type-checked with its own importer (see load.go), so the
// same function materializes as distinct objects in different passes.
// ObjectKey canonicalizes through package path, receiver type and name,
// which all loaders agree on.
type Facts struct {
	m map[string]any
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts {
	return &Facts{m: make(map[string]any)}
}

// ObjectKey returns the stable cross-package identity of obj:
// "pkgpath.Name" for package-level objects, "pkgpath.Recv.Name" for
// methods (pointerness and type parameters erased — a method has one
// summary regardless of how its receiver is spelled). The empty string
// means obj has no stable identity (local variables, blank functions)
// and cannot carry facts.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil || obj.Name() == "" || obj.Name() == "_" {
		return ""
	}
	var b strings.Builder
	b.WriteString(obj.Pkg().Path())
	b.WriteByte('.')
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			b.WriteString(recvTypeName(recv.Type()))
			b.WriteByte('.')
		}
	}
	b.WriteString(obj.Name())
	return b.String()
}

// recvTypeName names a method receiver's base type: pointer and named
// wrappers stripped down to the type name, interface receivers (methods
// reached through an interface value) named by the interface.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return fmt.Sprintf("interface%d", t.NumMethods())
	default:
		return t.String()
	}
}

// Export records a named fact about obj. Later passes (and later
// analyzers in the same pass) observe it through Import. Exporting with
// an unidentifiable obj is a no-op.
func (f *Facts) Export(obj types.Object, name string, val any) {
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	f.m[key+"\x00"+name] = val
}

// Import retrieves the named fact about obj, if any pass exported one.
func (f *Facts) Import(obj types.Object, name string) (any, bool) {
	key := ObjectKey(obj)
	if key == "" {
		return nil, false
	}
	v, ok := f.m[key+"\x00"+name]
	return v, ok
}

// ExportObjectFact records a fact through the pass's shared store.
func (p *Pass) ExportObjectFact(obj types.Object, name string, val any) {
	if p.Facts != nil {
		p.Facts.Export(obj, name, val)
	}
}

// ImportObjectFact retrieves a fact from the pass's shared store.
func (p *Pass) ImportObjectFact(obj types.Object, name string) (any, bool) {
	if p.Facts == nil {
		return nil, false
	}
	return p.Facts.Import(obj, name)
}
