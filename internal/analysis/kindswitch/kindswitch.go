// Package kindswitch enforces wire-protocol exhaustiveness: every
// dispatch over a Kind*/Status* constant family handles every member.
// An unhandled message kind on the data plane is an acked write that
// silently went nowhere — exactly the class of bug the protocol
// contract (DESIGN.md, "Static contract") exists to make impossible to
// introduce.
//
// A "family" is the set of package-level constants that share a
// recognised prefix (Kind or Status), a declaring package, and a type:
// node.KindGet … node.KindDump form one family, transport.StatusOK …
// transport.StatusRetry another. A switch whose case expressions all
// resolve to members of one family is a family switch. The rules:
//
//   - An unannotated family switch must either list every member or
//     carry an explicit default clause. Silent fallthrough off the end
//     of a kind dispatch is never acceptable.
//
//   - A switch annotated //lint:exhaustive must list every member
//     explicitly even if it has a default: the annotation is how
//     node.Handle guarantees that ADDING a Kind constant without a
//     handler case fails the lint run, default clause or not.
//
//   - A var/const declaration annotated //lint:exhaustive whose value
//     is a composite literal keyed by family constants (the KindNames
//     registry) must contain every member as a key. This is the
//     "every Kind has a wire-table entry" half of the contract; the
//     codec itself is kind-generic, so the name registry is where a
//     new kind must be declared for tooling and the dispatch
//     regression test to see it.
//
// A misplaced //lint:exhaustive (no family switch or family-keyed
// literal below it) is itself reported, so the annotation cannot rot.
package kindswitch

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"unicode"

	"repro/internal/analysis"
)

// Analyzer is the kindswitch check.
var Analyzer = &analysis.Analyzer{
	Name: "kindswitch",
	Doc:  "flags non-exhaustive switches and registries over wire constant families (Kind*, Status*)",
	Run:  run,
}

// familyPrefixes are the constant-name prefixes treated as wire
// families. Deliberately narrow: the contract covers the wire protocol,
// not every enum-like constant group in the module.
var familyPrefixes = []string{"Kind", "Status"}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.GenDecl:
				if _, ok := pass.Directive(n, "exhaustive"); ok {
					checkRegistry(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// family identifies one constant family.
type family struct {
	pkg    *types.Package
	prefix string
	typ    types.Type
}

func (f family) String() string { return f.pkg.Name() + "." + f.prefix + "*" }

// members returns the family's constant names, sorted.
func (f family) members() []string {
	var out []string
	scope := f.pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if prefixOf(name) == f.prefix && types.Identical(c.Type(), f.typ) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// prefixOf extracts the family prefix of a constant name: the leading
// segment up to the second uppercase rune ("KindEpochFlush" -> "Kind"),
// if it is a recognised family prefix.
func prefixOf(name string) string {
	runes := []rune(name)
	if len(runes) == 0 || !unicode.IsUpper(runes[0]) {
		return ""
	}
	end := len(runes)
	for i := 1; i < len(runes); i++ {
		if unicode.IsUpper(runes[i]) {
			end = i
			break
		}
	}
	p := string(runes[:end])
	for _, fp := range familyPrefixes {
		if p == fp {
			return p
		}
	}
	return ""
}

// familyConst resolves an expression to a family constant, if it is
// one: a package-level constant with a recognised prefix.
func familyConst(info *types.Info, e ast.Expr) (*types.Const, string) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil, ""
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Parent() != c.Pkg().Scope() {
		return nil, ""
	}
	p := prefixOf(c.Name())
	if p == "" {
		return nil, ""
	}
	return c, p
}

// checkSwitch classifies one switch statement and enforces the family
// rules on it.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	_, annotated := pass.Directive(sw, "exhaustive")
	fam, covered, hasDefault, ok := switchFamily(pass, sw)
	if !ok {
		if annotated {
			pass.Reportf(sw.Pos(), "lint:exhaustive on a switch that does not dispatch over a single Kind*/Status* constant family")
		}
		return
	}
	missing := missingMembers(fam, covered)
	if len(missing) == 0 {
		return
	}
	if annotated {
		pass.Reportf(sw.Pos(), "switch over %s is annotated lint:exhaustive but lacks cases for %s",
			fam, strings.Join(missing, ", "))
		return
	}
	if !hasDefault {
		pass.Reportf(sw.Pos(), "switch over %s lacks cases for %s and has no default; handle them or add an explicit default",
			fam, strings.Join(missing, ", "))
	}
}

// switchFamily determines whether sw dispatches over one constant
// family: at least one case expression is a family constant, every
// case expression belongs to the same family, and at least two family
// members exist (a single constant is a sentinel, not a family).
func switchFamily(pass *analysis.Pass, sw *ast.SwitchStmt) (fam family, covered map[string]bool, hasDefault, ok bool) {
	if sw.Tag == nil {
		return family{}, nil, false, false
	}
	covered = make(map[string]bool)
	seen := false
	for _, c := range sw.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			cst, prefix := familyConst(pass.TypesInfo, e)
			if cst == nil {
				return family{}, nil, false, false
			}
			f := family{pkg: cst.Pkg(), prefix: prefix, typ: cst.Type()}
			if !seen {
				fam, seen = f, true
			} else if f.pkg != fam.pkg || f.prefix != fam.prefix || !types.Identical(f.typ, fam.typ) {
				return family{}, nil, false, false
			}
			covered[cst.Name()] = true
		}
	}
	if !seen || len(fam.members()) < 2 {
		return family{}, nil, false, false
	}
	return fam, covered, hasDefault, true
}

func missingMembers(fam family, covered map[string]bool) []string {
	var missing []string
	for _, name := range fam.members() {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	return missing
}

// checkRegistry enforces lint:exhaustive on a declaration whose value
// is a composite literal keyed by family constants.
func checkRegistry(pass *analysis.Pass, decl *ast.GenDecl) {
	checked := false
	for _, spec := range decl.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			lit, ok := ast.Unparen(v).(*ast.CompositeLit)
			if !ok {
				continue
			}
			if checkLiteral(pass, lit) {
				checked = true
			}
		}
	}
	if !checked {
		pass.Reportf(decl.Pos(), "lint:exhaustive on a declaration with no composite literal keyed by a Kind*/Status* constant family")
	}
}

// checkLiteral reports missing family members among the literal's keys.
// It returns false when the keys do not form a single family.
func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	var fam family
	covered := make(map[string]bool)
	seen := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return false
		}
		cst, prefix := familyConst(pass.TypesInfo, kv.Key)
		if cst == nil {
			return false
		}
		f := family{pkg: cst.Pkg(), prefix: prefix, typ: cst.Type()}
		if !seen {
			fam, seen = f, true
		} else if f.pkg != fam.pkg || f.prefix != fam.prefix || !types.Identical(f.typ, fam.typ) {
			return false
		}
		covered[cst.Name()] = true
	}
	if !seen {
		return false
	}
	if missing := missingMembers(fam, covered); len(missing) > 0 {
		pass.Reportf(lit.Pos(), "registry over %s is annotated lint:exhaustive but lacks entries for %s",
			fam, strings.Join(missing, ", "))
	}
	return true
}

