package kindswitch_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/kindswitch"
)

func TestKindswitch(t *testing.T) {
	analysistest.Run(t, kindswitch.Analyzer, "repro/internal/node")
}
