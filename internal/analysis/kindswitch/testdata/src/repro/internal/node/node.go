// Package node exercises kindswitch: exhaustiveness of switches and
// registries over the Kind*/Status* wire families. KindExtra plays the
// role of a freshly added message kind — the annotated dispatch switch
// below is missing its case, which is exactly the regression the
// analyzer exists to catch.
package node

import "repro/internal/transport"

// Message kinds.
const (
	KindGet  uint8 = 1
	KindPut  uint8 = 2
	KindPing uint8 = 3
	// KindExtra is the "new kind added without a handler" of this
	// fixture.
	KindExtra uint8 = 4
)

type message struct {
	kind   uint8
	status uint8
}

// handleComplete covers every kind: silent even though annotated.
func handleComplete(m *message) int {
	//lint:exhaustive
	switch m.kind {
	case KindGet:
		return 1
	case KindPut:
		return 2
	case KindPing:
		return 3
	case KindExtra:
		return 4
	default:
		return 0
	}
}

// handleMissing is the acceptance-criterion fixture: an annotated
// dispatch switch with a default clause still fails when a declared
// kind has no case.
func handleMissing(m *message) int {
	//lint:exhaustive
	switch m.kind { // want `annotated lint:exhaustive but lacks cases for KindExtra`
	case KindGet:
		return 1
	case KindPut:
		return 2
	case KindPing:
		return 3
	default:
		return 0
	}
}

// bareMissing: an unannotated family switch with neither full coverage
// nor a default.
func bareMissing(m *message) int {
	switch m.kind { // want `lacks cases for KindExtra, KindPing and has no default`
	case KindGet:
		return 1
	case KindPut:
		return 2
	}
	return 0
}

// defaultExcused: without the annotation, an explicit default satisfies
// the contract.
func defaultExcused(m *message) int {
	switch m.kind {
	case KindGet:
		return 1
	default:
		return 0
	}
}

// crossPackage dispatches over the imported Status family.
func crossPackage(m *message) bool {
	switch m.status { // want `lacks cases for StatusNotFound, StatusRetry and has no default`
	case transport.StatusOK:
		return true
	case transport.StatusError:
		return false
	}
	return false
}

// suppressed pins the suppression path.
func suppressed(m *message) int {
	//lint:ignore rfhlint/kindswitch fixture: deliberately partial
	switch m.kind {
	case KindGet:
		return 1
	}
	return 0
}

// KindNames is the complete registry: silent.
//
//lint:exhaustive
var KindNames = map[uint8]string{
	KindGet:   "get",
	KindPut:   "put",
	KindPing:  "ping",
	KindExtra: "extra",
}

// kindCosts is missing an entry.
//
//lint:exhaustive
var kindCosts = map[uint8]int{ // want `annotated lint:exhaustive but lacks entries for KindExtra, KindPing`
	KindGet: 1,
	KindPut: 3,
}

// notAFamily has the annotation but nothing it can govern.
//
//lint:exhaustive
var notAFamily = map[string]int{ // want `no composite literal keyed by a Kind\*/Status\* constant family`
	"a": 1,
}

// grouped declarations: the directive governs the whole decl.
//
//lint:exhaustive
var (
	statusNames = map[uint8]string{ // want `lacks entries for StatusError`
		transport.StatusOK:       "ok",
		transport.StatusNotFound: "not-found",
		transport.StatusRetry:    "retry",
	}
)

// misplacedOnString: the annotation on a non-family switch is itself
// reported so it cannot rot.
func misplacedOnString(s string) int {
	//lint:exhaustive
	switch s { // want `lint:exhaustive on a switch that does not dispatch over a single Kind\*/Status\* constant family`
	case "x":
		return 1
	}
	return 0
}

// stringSwitch is not a family dispatch: silent.
func stringSwitch(s string) int {
	switch s {
	case "get":
		return 1
	case "put":
		return 2
	}
	return 0
}
