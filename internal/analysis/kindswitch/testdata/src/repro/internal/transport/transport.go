// Package transport is a fixture mirror carrying the Status* family,
// so the node fixture can exercise cross-package family switches.
package transport

// Reply statuses.
const (
	StatusOK       uint8 = 0
	StatusError    uint8 = 1
	StatusNotFound uint8 = 2
	StatusRetry    uint8 = 3
)
