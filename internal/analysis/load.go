package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked compilation unit ready for analysis.
type Package struct {
	Path      string // import path as listed (test variants keep " [p.test]")
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	isModulePkg func(*types.Package) bool
	callgraph   *CallGraph // built lazily, shared by all passes over the package
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Module     *struct {
		Path string
		Main bool
	}
}

// Load lists patterns with the go tool and returns every matched module
// package type-checked from source, with test files folded in: for a
// package with tests the test-augmented variant "p [p.test]" replaces
// the plain build (its file set is a superset), and external test
// packages ("p_test") are included as their own units. Dependency types
// come from compiler export data produced by `go list -export`, so the
// loader works offline with nothing beyond the Go toolchain.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json", "-deps", "-export", "-test", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var listed []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		listed = append(listed, p)
	}

	// A test-augmented variant supersedes its plain build: analyzing
	// both would double-report every finding in the shared files.
	augmented := make(map[string]bool)
	for _, p := range listed {
		if p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" [") {
			augmented[p.ForTest] = true
		}
	}

	var module string
	for _, p := range listed {
		if p.Module != nil && p.Module.Main {
			module = p.Module.Path
			break
		}
	}
	inModule := func(pkg *types.Package) bool {
		if pkg == nil || module == "" {
			return false
		}
		return pkg.Path() == module || strings.HasPrefix(pkg.Path(), module+"/")
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, p := range listed {
		switch {
		case p.DepOnly || p.Standard:
			continue
		case strings.HasSuffix(p.ImportPath, ".test"):
			continue // generated test main, no human-written source
		case p.ForTest == "" && augmented[p.ImportPath]:
			continue // superseded by the test-augmented variant
		}
		pkg, err := typecheck(fset, p, exports)
		if err != nil {
			return nil, err
		}
		pkg.isModulePkg = inModule
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// typecheck parses p's files and checks them against export data for
// every import. Each package gets a fresh gc importer: test-augmented
// variants share their undecorated import path with the plain build,
// and a shared importer's cache would conflate the two.
func typecheck(fset *token.FileSet, p *listedPkg, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range append(append([]string{}, p.GoFiles...), p.CgoFiles...) {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := &mapImporter{
		gc:        importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		importMap: p.ImportMap,
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(undecorated(p.ImportPath), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Package{
		Path: p.ImportPath, Dir: p.Dir,
		Fset: fset, Files: files, Types: tpkg, TypesInfo: info,
	}, nil
}

// mapImporter applies a package's ImportMap (which routes imports of a
// package under test to its test-augmented variant) before delegating
// to the export-data importer.
type mapImporter struct {
	gc        types.ImporterFrom
	importMap map[string]string
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return m.gc.ImportFrom(path, "", 0)
}

// LoadTestdata type-checks GOPATH-style fixture packages rooted at
// srcdir (testdata/src in the analysistest convention). Imports resolve
// against sibling fixture directories first and the standard library
// (via export data) second, so fixtures may both import each other and
// lean on stdlib packages like time or math/rand.
//
// The result contains every local fixture loaded, including ones
// pulled in transitively as imports of the requested paths, in
// dependency order (imports before importers). Analyzing the full
// closure is what makes multi-package fact tests work: the driver's
// pass over a dependency fixture exports the facts its importers'
// passes consume, and want comments in the dependency are checked too.
func LoadTestdata(srcdir string, paths []string) ([]*Package, error) {
	ld := &testdataLoader{
		srcdir: srcdir,
		fset:   token.NewFileSet(),
		loaded: make(map[string]*Package),
	}
	localSet := make(map[string]bool)
	ld.isLocal = func(pkg *types.Package) bool { return pkg != nil && localSet[pkg.Path()] }

	for _, path := range paths {
		if _, err := ld.load(path); err != nil {
			return nil, err
		}
	}
	for path := range ld.loaded {
		localSet[path] = true
	}
	return ld.order, nil
}

type testdataLoader struct {
	srcdir  string
	fset    *token.FileSet
	loaded  map[string]*Package
	order   []*Package // completion order: a package follows its imports
	loading []string
	stdlib  types.ImporterFrom // lazily built export-data importer
	isLocal func(*types.Package) bool
}

func (ld *testdataLoader) load(path string) (*Package, error) {
	if p, ok := ld.loaded[path]; ok {
		return p, nil
	}
	for _, active := range ld.loading {
		if active == path {
			return nil, fmt.Errorf("testdata import cycle through %q", path)
		}
	}
	ld.loading = append(ld.loading, path)
	defer func() { ld.loading = ld.loading[:len(ld.loading)-1] }()

	dir := filepath.Join(ld.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("testdata package %q: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("testdata package %q: no Go files in %s", path, dir)
	}
	info := newInfo()
	conf := types.Config{Importer: importerFunc(ld.importPkg)}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck testdata %s: %v", path, err)
	}
	p := &Package{
		Path: path, Dir: dir,
		Fset: ld.fset, Files: files, Types: tpkg, TypesInfo: info,
		isModulePkg: func(pkg *types.Package) bool { return ld.isLocal(pkg) },
	}
	ld.loaded[path] = p
	ld.order = append(ld.order, p)
	return p, nil
}

// importPkg resolves one import from a fixture: a sibling fixture
// directory when one exists, the standard library otherwise.
func (ld *testdataLoader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if st, err := os.Stat(filepath.Join(ld.srcdir, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if ld.stdlib == nil {
		imp, err := stdlibImporter(ld.fset, ld.srcdir)
		if err != nil {
			return nil, err
		}
		ld.stdlib = imp
	}
	return ld.stdlib.ImportFrom(path, "", 0)
}

// stdlibImporter builds a gc importer over export data for the whole
// standard library, produced on demand by `go list -export std`.
func stdlibImporter(fset *token.FileSet, dir string) (types.ImporterFrom, error) {
	cmd := exec.Command("go", "list", "-json=ImportPath,Export", "-export", "std")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export std: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no stdlib export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom), nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// undecorated strips the " [p.test]" suffix go list gives to
// test-augmented package variants.
func undecorated(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
