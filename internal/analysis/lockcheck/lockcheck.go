// Package lockcheck enforces the node/transport locking contract
// (DESIGN.md, "Static contract"): the prose rules PR 5 introduced —
// "callers must not hold n.mu across a network send", "a partition
// lock may be taken under Node.mu, never the reverse", "every manual
// unlock covers every early return" — promoted from comments to
// machine-checked properties over all paths.
//
// The analyzer runs a forward dataflow pass over each function's
// CFG-lite (see analysis.BuildCFG), tracking which sync.Mutex /
// sync.RWMutex expressions may be held at each program point. On that
// state it checks:
//
//   - No call that may perform a network send is reachable while any
//     lock is held. "May send" starts at transport.Transport.Send (and
//     every Send method of the transport package) and propagates
//     through the call graph — within a package by fixed point, across
//     packages via exported facts — so a function three frames above
//     the Send call is flagged too. The loopback transport delivers
//     synchronously on the sending goroutine: a send under Node.mu is
//     not a style problem, it is a deadlock the moment the peer's
//     handler takes its own lock back toward the sender.
//
//   - //lint:requires-unlocked <lock> on a function declaration makes
//     the caller-side contract explicit: calling it while the named
//     lock (rebased through the call's receiver, so "n.mu" in the
//     callee matches "nd.mu" at a call on nd) may be held is an error.
//     The annotation is exported as a fact, so cross-package callers
//     are checked too.
//
//   - No double-lock: acquiring a lock expression that may already be
//     held (either mode — recursive RLock is prohibited by the sync
//     package) is reported, including one call deep through methods
//     that acquire a receiver-rooted lock (n.Crashed() under n.mu).
//
//   - Every acquired lock is released on every return path, either by
//     an explicit unlock before each return or by a deferred unlock;
//     unlocking a lock that is not held, or with the wrong mode
//     (Unlock after RLock), is reported.
//
// Lock identity is the printed source expression of the mutex operand
// ("n.mu", "ps.mu", "t.mu"), the same notion of expression identity
// the divguard analyzer uses for guards. That makes the analysis
// intra-procedurally sound for the module's style (locks are always
// addressed through a stable selector chain) without alias analysis.
// Function literals are analyzed as their own functions with an empty
// entry state: a goroutine body does not inherit the spawner's locks.
// Functions containing goto are skipped (the CFG builder does not
// model it); none exist in the module.
package lockcheck

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/rfhlintutil"
)

// Analyzer is the lockcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "flags sends while a mutex may be held, double-locks, unbalanced lock/unlock paths, and requires-unlocked violations",
	Run:  run,
}

// transportPkgSuffix identifies the package whose Send methods seed the
// may-send property. Matched by suffix so the analyzer covers both the
// real module path and the analysistest fixtures mirroring it.
const transportPkgSuffix = "internal/transport"

// Facts exported per function (see analysis.Facts):
//
//	lockcheck.maySend          bool     — may reach a transport send
//	lockcheck.requiresUnlocked []string — locks callers must not hold,
//	                                      receiver-relative (".mu") or
//	                                      absolute ("pkgMu")
//	lockcheck.acquires         []string — receiver-rooted locks the
//	                                      function (transitively via
//	                                      same-receiver calls) acquires
const (
	factMaySend          = "lockcheck.maySend"
	factRequiresUnlocked = "lockcheck.requiresUnlocked"
	factAcquires         = "lockcheck.acquires"
)

func run(pass *analysis.Pass) error {
	s := &summarizer{
		pass:     pass,
		graph:    pass.CallGraph(),
		maySend:  make(map[*types.Func]bool),
		reqUnl:   make(map[*types.Func][]string),
		acquires: make(map[*types.Func][]string),
	}
	s.summarize()
	s.export()

	for _, fn := range s.graph.Funcs {
		checkFunc(pass, s, fn.Decl.Body, recvName(fn.Decl), fn.Decl)
	}
	// Function literals get their own pass with an empty entry state.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkFunc(pass, s, lit.Body, "", lit)
				return false
			}
			return true
		})
	}
	return nil
}

// --- Summaries ------------------------------------------------------

type summarizer struct {
	pass     *analysis.Pass
	graph    *analysis.CallGraph
	maySend  map[*types.Func]bool
	reqUnl   map[*types.Func][]string
	acquires map[*types.Func][]string
}

// summarize computes the package's function summaries to a fixed point:
// may-send and receiver-rooted acquisitions both propagate through
// intra-package calls (imported callees contribute through facts, which
// are final by the driver's dependency ordering).
func (s *summarizer) summarize() {
	// Annotations and direct lock acquisitions first.
	for _, fn := range s.graph.Funcs {
		if fn.Obj == nil {
			continue
		}
		recv := recvName(fn.Decl)
		if d, ok := s.pass.Directive(fn.Decl, "requires-unlocked"); ok {
			s.reqUnl[fn.Obj] = parseLockList(d.Args, recv)
		}
		if recv != "" {
			s.acquires[fn.Obj] = directAcquires(s.pass, fn.Decl.Body, recv)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range s.graph.Funcs {
			if fn.Obj == nil {
				continue
			}
			recv := recvName(fn.Decl)
			for _, call := range fn.Calls {
				if call.Callee == nil {
					continue
				}
				if !s.maySend[fn.Obj] && s.calleeMaySend(call.Callee) {
					s.maySend[fn.Obj] = true
					changed = true
				}
				// Same-receiver method calls propagate receiver-rooted
				// acquisitions: n.Crashed() inside a Node method makes
				// the method acquire ".mu" too.
				if recv == "" {
					continue
				}
				sel, ok := ast.Unparen(call.Site.Fun).(*ast.SelectorExpr)
				if !ok || rfhlintutil.ExprString(s.pass.Fset, sel.X) != recv {
					continue
				}
				for _, rel := range s.calleeAcquires(call.Callee) {
					if !strings.HasPrefix(rel, ".") {
						continue
					}
					acq := s.acquires[fn.Obj]
					if addUnique(&acq, rel) {
						s.acquires[fn.Obj] = acq
						changed = true
					}
				}
			}
		}
	}
}

func (s *summarizer) export() {
	for _, fn := range s.graph.Funcs {
		if fn.Obj == nil {
			continue
		}
		if s.maySend[fn.Obj] {
			s.pass.ExportObjectFact(fn.Obj, factMaySend, true)
		}
		if r := s.reqUnl[fn.Obj]; len(r) > 0 {
			s.pass.ExportObjectFact(fn.Obj, factRequiresUnlocked, r)
		}
		if a := s.acquires[fn.Obj]; len(a) > 0 {
			s.pass.ExportObjectFact(fn.Obj, factAcquires, a)
		}
	}
}

// calleeMaySend consults, in order: the transport-package base case,
// the local fixpoint state, and the cross-package fact store.
func (s *summarizer) calleeMaySend(fn *types.Func) bool {
	if isTransportSend(fn) {
		return true
	}
	if s.maySend[fn] {
		return true
	}
	v, ok := s.pass.ImportObjectFact(fn, factMaySend)
	return ok && v == true
}

func (s *summarizer) calleeRequiresUnlocked(fn *types.Func) []string {
	if r, ok := s.reqUnl[fn]; ok {
		return r
	}
	if v, ok := s.pass.ImportObjectFact(fn, factRequiresUnlocked); ok {
		r, _ := v.([]string)
		return r
	}
	return nil
}

func (s *summarizer) calleeAcquires(fn *types.Func) []string {
	if a, ok := s.acquires[fn]; ok {
		return a
	}
	if v, ok := s.pass.ImportObjectFact(fn, factAcquires); ok {
		a, _ := v.([]string)
		return a
	}
	return nil
}

func isTransportSend(fn *types.Func) bool {
	if fn.Name() != "Send" || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == transportPkgSuffix || strings.HasSuffix(path, "/"+transportPkgSuffix)
}

// parseLockList parses a requires-unlocked argument list ("n.mu" or
// "n.mu, pkgMu") into canonical form: receiver-rooted locks become
// receiver-relative (".mu"), everything else stays as written.
func parseLockList(args, recv string) []string {
	var out []string
	for _, a := range strings.FieldsFunc(args, func(r rune) bool { return r == ',' || r == ' ' }) {
		if a == "" {
			continue
		}
		if recv != "" && strings.HasPrefix(a, recv+".") {
			a = a[len(recv):]
		}
		out = append(out, a)
	}
	return out
}

// directAcquires collects the receiver-relative lock expressions the
// body locks directly ("n.mu.Lock()" with receiver n yields ".mu").
func directAcquires(pass *analysis.Pass, body *ast.BlockStmt, recv string) []string {
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		op, ok := mutexOp(pass, call)
		if !ok || !op.lock {
			return true
		}
		if strings.HasPrefix(op.expr, recv+".") {
			addUnique(&out, op.expr[len(recv):])
		}
		return true
	})
	return out
}

func addUnique(dst *[]string, s string) bool {
	for _, v := range *dst {
		if v == s {
			return false
		}
	}
	*dst = append(*dst, s)
	return true
}

// recvName returns the receiver identifier of a method declaration, ""
// for functions and literals.
func recvName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	return decl.Recv.List[0].Names[0].Name
}

// --- Mutex operations -----------------------------------------------

// mutexOp describes one lock/unlock call: the printed operand
// expression, whether it acquires, and the mode (write or read).
type lockOp struct {
	expr  string
	lock  bool
	write bool
}

// mutexOp recognises calls to the sync.Mutex / sync.RWMutex lock
// methods and returns the operation. Embedded mutexes (a struct with
// sync.Mutex inlined) resolve to the embedding expression.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return lockOp{}, false
	}
	switch typeName(recv.Type()) {
	case "Mutex", "RWMutex":
	default:
		return lockOp{}, false
	}
	op := lockOp{expr: rfhlintutil.ExprString(pass.Fset, sel.X)}
	switch fn.Name() {
	case "Lock":
		op.lock, op.write = true, true
	case "Unlock":
		op.write = true
	case "RLock":
		op.lock = true
	case "RUnlock":
	default:
		return lockOp{}, false // TryLock etc.: conditional, not modeled
	}
	return op, true
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// --- Dataflow -------------------------------------------------------

// lockState is the abstract state at one program point. Both sets are
// may-sets (union merge): a lock in either may be held on some path
// reaching the point.
type lockState struct {
	// held maps lock expr -> mode ("W"/"R") for locks acquired with no
	// release scheduled yet. A lock here at a return is a leak.
	held map[string]string
	// defHeld is the same for locks whose release is deferred: still
	// held for send-under-lock purposes, but satisfied at return.
	defHeld map[string]string
}

func (s lockState) clone() lockState {
	c := lockState{held: make(map[string]string, len(s.held)), defHeld: make(map[string]string, len(s.defHeld))}
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.defHeld {
		c.defHeld[k] = v
	}
	return c
}

func (s lockState) heldMode(expr string) (string, bool) {
	if m, ok := s.held[expr]; ok {
		return m, true
	}
	m, ok := s.defHeld[expr]
	return m, ok
}

// anyHeld returns a deterministic representative held lock, "" if none.
func (s lockState) anyHeld() string {
	var exprs []string
	for e := range s.held {
		exprs = append(exprs, e)
	}
	for e := range s.defHeld {
		exprs = append(exprs, e)
	}
	if len(exprs) == 0 {
		return ""
	}
	sort.Strings(exprs)
	return exprs[0]
}

func mergeStates(a, b lockState) lockState {
	c := a.clone()
	for k, v := range b.held {
		c.held[k] = v
	}
	for k, v := range b.defHeld {
		c.defHeld[k] = v
	}
	return c
}

func equalStates(a, b lockState) bool {
	if len(a.held) != len(b.held) || len(a.defHeld) != len(b.defHeld) {
		return false
	}
	for k, v := range a.held {
		if b.held[k] != v {
			return false
		}
	}
	for k, v := range a.defHeld {
		if b.defHeld[k] != v {
			return false
		}
	}
	return true
}

// checkFunc solves the lock-state flow over one function body and then
// replays each reached block once against its fixed-point input state,
// reporting violations. where is the declaration node (for skipping).
func checkFunc(pass *analysis.Pass, s *summarizer, body *ast.BlockStmt, recv string, where ast.Node) {
	g := analysis.BuildCFG(body, pass.TypesInfo, nil)
	if g.Unsupported != nil {
		return
	}
	emptyState := lockState{held: map[string]string{}, defHeld: map[string]string{}}
	in, reached := analysis.Solve(g, analysis.FlowProblem[lockState]{
		Entry: emptyState,
		Merge: mergeStates,
		Equal: equalStates,
		Transfer: func(st lockState, n ast.Node, _ *analysis.CFBlock) lockState {
			return transfer(pass, st, n, nil)
		},
	})
	// Reporting sweep: one deterministic visit per reached block.
	rep := &reporter{pass: pass, s: s, recv: recv}
	for i, blk := range g.Blocks {
		if !reached[i] {
			continue
		}
		st := in[i]
		for _, n := range blk.Nodes {
			st = transfer(pass, st, n, rep)
		}
		if st.anyHeld() == "" {
			continue
		}
		for _, succ := range blk.Succs {
			if succ == g.Exit() && !endsInReturn(blk) {
				// Fall-off-the-end exit with a lock still unreleased.
				if leaked := leakedLocks(st); len(leaked) > 0 {
					rep.pass.Reportf(body.Rbrace, "function can return with %s still locked (no unlock or deferred unlock on this path)",
						strings.Join(leaked, ", "))
				}
			}
		}
	}
}

func endsInReturn(blk *analysis.CFBlock) bool {
	if len(blk.Nodes) == 0 {
		return false
	}
	_, ok := blk.Nodes[len(blk.Nodes)-1].(*ast.ReturnStmt)
	return ok
}

func leakedLocks(st lockState) []string {
	var out []string
	for e := range st.held {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// reporter carries the context the reporting replay needs; a nil
// reporter makes transfer silent (the fixpoint phase).
type reporter struct {
	pass *analysis.Pass
	s    *summarizer
	recv string
}

// transfer applies one CFG node to the state. When rep is non-nil it
// also reports violations; the state transition itself is identical in
// both phases so the replayed states match the fixpoint.
func transfer(pass *analysis.Pass, st lockState, n ast.Node, rep *reporter) lockState {
	st = st.clone()
	if ret, ok := n.(*ast.ReturnStmt); ok {
		if rep != nil {
			if leaked := leakedLocks(st); len(leaked) > 0 {
				rep.pass.Reportf(ret.Pos(), "return with %s still locked (no unlock or deferred unlock on this path)",
					strings.Join(leaked, ", "))
			}
		}
		// Walk the result expressions for calls (e.g. return n.send()).
		for _, res := range ret.Results {
			st = scanNode(pass, st, res, rep, false)
		}
		return st
	}
	if def, ok := n.(*ast.DeferStmt); ok {
		if op, ok := mutexOp(pass, def.Call); ok && !op.lock {
			mode := "W"
			if !op.write {
				mode = "R"
			}
			if m, held := st.held[op.expr]; held && m == mode {
				delete(st.held, op.expr)
				st.defHeld[op.expr] = mode
			} else if rep != nil {
				if !held {
					if _, already := st.defHeld[op.expr]; already {
						rep.pass.Reportf(def.Pos(), "deferred unlock of %s, which already has a deferred unlock on this path", op.expr)
					} else if m2, anyMode := st.heldMode(op.expr); anyMode {
						rep.pass.Reportf(def.Pos(), "deferred %s of %s, which is held in %s mode", unlockName(op.write), op.expr, modeWord(m2))
					} else {
						rep.pass.Reportf(def.Pos(), "deferred unlock of %s, which is not locked at this point", op.expr)
					}
				} else {
					rep.pass.Reportf(def.Pos(), "deferred %s of %s, which is held in %s mode", unlockName(op.write), op.expr, modeWord(m))
				}
			}
			return st
		}
		// A deferred non-mutex call: scan it like an immediate call
		// (argument expressions evaluate now; the call itself runs at
		// return, when the lock context can only be smaller).
		return scanNode(pass, st, def.Call, rep, true)
	}
	return scanNode(pass, st, n, rep, false)
}

// scanNode walks one leaf node (statement or expression) in source
// order, applying lock operations and checking call sites. Function
// literal bodies are skipped — they execute under their own state.
func scanNode(pass *analysis.Pass, st lockState, n ast.Node, rep *reporter, skipCallCheck bool) lockState {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := mutexOp(pass, call); ok {
			st = applyOp(st, op, call, rep)
			return true
		}
		if rep != nil && !skipCallCheck {
			rep.checkCall(st, call)
		}
		return true
	})
	return st
}

// applyOp transitions the state over one lock/unlock call.
func applyOp(st lockState, op lockOp, call *ast.CallExpr, rep *reporter) lockState {
	mode := "W"
	if !op.write {
		mode = "R"
	}
	if op.lock {
		if m, held := st.heldMode(op.expr); held && rep != nil {
			rep.pass.Reportf(call.Pos(), "%s of %s, which may already be held in %s mode on this path (double-lock deadlocks)",
				lockName(op.write), op.expr, modeWord(m))
		}
		st.held[op.expr] = mode
		return st
	}
	if m, held := st.held[op.expr]; held {
		if m != mode && rep != nil {
			rep.pass.Reportf(call.Pos(), "%s of %s, which is held in %s mode", unlockName(op.write), op.expr, modeWord(m))
		}
		delete(st.held, op.expr)
		return st
	}
	if m, held := st.defHeld[op.expr]; held {
		if m != mode && rep != nil {
			rep.pass.Reportf(call.Pos(), "%s of %s, which is held in %s mode", unlockName(op.write), op.expr, modeWord(m))
		}
		delete(st.defHeld, op.expr)
		return st
	}
	if rep != nil {
		rep.pass.Reportf(call.Pos(), "%s of %s, which is not locked at this point", unlockName(op.write), op.expr)
	}
	return st
}

// checkCall reports send-under-lock, requires-unlocked, and
// interprocedural double-lock violations at one call site.
func (rep *reporter) checkCall(st lockState, call *ast.CallExpr) {
	fn := calleeFunc(rep.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if held := st.anyHeld(); held != "" && rep.s.calleeMaySend(fn) {
		rep.pass.Reportf(call.Pos(), "call to %s may perform a network send while %s is held; release the lock first (the loopback transport delivers synchronously)",
			fn.Name(), held)
	}
	// Receiver expression of the call, for rebasing relative locks.
	var recvExpr string
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvExpr = rfhlintutil.ExprString(rep.pass.Fset, sel.X)
	}
	for _, lock := range rep.s.calleeRequiresUnlocked(fn) {
		abs := rebase(lock, recvExpr)
		if abs == "" {
			continue
		}
		if _, held := st.heldMode(abs); held {
			rep.pass.Reportf(call.Pos(), "call to %s, which requires %s unlocked (lint:requires-unlocked), while %s may be held",
				fn.Name(), abs, abs)
		}
	}
	for _, lock := range rep.s.calleeAcquires(fn) {
		abs := rebase(lock, recvExpr)
		if abs == "" {
			continue
		}
		if m, held := st.heldMode(abs); held {
			rep.pass.Reportf(call.Pos(), "call to %s, which acquires %s, while %s may already be held in %s mode (double-lock deadlocks)",
				fn.Name(), abs, abs, modeWord(m))
		}
	}
}

// rebase resolves a fact lock path against the call's receiver
// expression: relative paths (".mu") attach to the receiver, absolute
// ones pass through. A relative path with no receiver has no referent.
func rebase(lock, recvExpr string) string {
	if !strings.HasPrefix(lock, ".") {
		return lock
	}
	if recvExpr == "" {
		return ""
	}
	return recvExpr + lock
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

func lockName(write bool) string {
	if write {
		return "Lock"
	}
	return "RLock"
}

func unlockName(write bool) string {
	if write {
		return "Unlock"
	}
	return "RUnlock"
}

func modeWord(mode string) string {
	if mode == "W" {
		return "write"
	}
	return "read"
}
