package lockcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockcheck"
)

// TestLockcheck drives the fixture packages. Loading the chaos fixture
// pulls node and transport in transitively, and the driver analyzes
// them in dependency order — which is exactly what the cross-package
// want comments in chaos depend on: the node pass must have exported
// its may-send and requires-unlocked facts first.
func TestLockcheck(t *testing.T) {
	analysistest.Run(t, lockcheck.Analyzer, "repro/internal/chaos")
}
