// Package chaos exercises lockcheck's cross-package facts: the node
// fixture's may-send and requires-unlocked summaries are exported as
// facts when its package is analyzed, and this importer is checked
// against them.
package chaos

import (
	"sync"

	"repro/internal/node"
)

// Harness drives fixture nodes while holding bookkeeping locks.
type Harness struct {
	mu    sync.Mutex
	nodes []*node.Node
}

func (h *Harness) stepUnderLock(addr string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, nd := range h.nodes {
		nd.Step(addr) // want `call to Step may perform a network send while h\.mu is held`
	}
}

func (h *Harness) syncUnderLock(nd *node.Node, addr string) {
	nd.Mu.RLock()
	nd.SyncWrite(addr) // want `requires nd\.Mu unlocked` `network send while nd\.Mu is held`
	nd.Mu.RUnlock()
}

func (h *Harness) stepClean(addr string) {
	h.mu.Lock()
	nodes := append([]*node.Node(nil), h.nodes...)
	h.mu.Unlock()
	for _, nd := range nodes {
		nd.Step(addr)
	}
}
