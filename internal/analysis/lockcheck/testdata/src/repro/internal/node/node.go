// Package node exercises lockcheck: sends under a held mutex, double
// locks, unbalanced early returns, requires-unlocked annotations, and
// the negative patterns (balanced manual unlocks, deferred unlocks,
// shard locks under the node lock) that must stay silent.
package node

import (
	"sync"

	"repro/internal/transport"
)

// Node mirrors the real node's locking shape. Mu is exported so the
// chaos fixture can hold a node lock across a call — the real module
// only does that from the node package's own tests, but the
// cross-package rebasing ("n.Mu" in the callee's annotation matching
// "nd.Mu" at the importer's call site) needs a lock an importer can
// reach.
type Node struct {
	mu     sync.RWMutex
	Mu     sync.RWMutex
	closed bool
	tr     transport.Transport
	shards []shard
}

type shard struct {
	mu   sync.Mutex
	data map[string][]byte
}

// --- Send-under-lock ------------------------------------------------

func (n *Node) sendUnderLock(addr string) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	n.tr.Send(addr, &transport.Message{}) // want `network send while n\.mu is held`
}

// broadcast reaches Send one call deep; holding the lock across it is
// flagged through the intra-package may-send propagation.
func (n *Node) broadcast(addrs []string) {
	for _, a := range addrs {
		n.tr.Send(a, &transport.Message{})
	}
}

func (n *Node) flushUnderLock(addrs []string) {
	n.mu.Lock()
	n.broadcast(addrs) // want `call to broadcast may perform a network send while n\.mu is held`
	n.mu.Unlock()
}

// flushClean is the contract-conforming shape: snapshot under the
// lock, send after releasing it.
func (n *Node) flushClean(addrs []string) {
	n.mu.Lock()
	targets := append([]string(nil), addrs...)
	n.mu.Unlock()
	n.broadcast(targets)
}

// sendSuppressed pins the suppression path: the finding exists but the
// reasoned directive silences it.
func (n *Node) sendSuppressed(addr string) {
	n.mu.RLock()
	//lint:ignore rfhlint/lockcheck fixture: deliberate send under lock
	n.tr.Send(addr, &transport.Message{})
	n.mu.RUnlock()
}

// --- requires-unlocked ----------------------------------------------

// syncWrite pushes a write to the other holders.
//
//lint:requires-unlocked n.mu
func (n *Node) syncWrite(addr string) {
	n.tr.Send(addr, &transport.Message{})
}

func (n *Node) putHoldingLock(addr string) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	n.syncWrite(addr) // want `requires n\.mu unlocked` `network send while n\.mu is held`
}

func (n *Node) putClean(addr string) {
	n.mu.RLock()
	n.mu.RUnlock()
	n.syncWrite(addr)
}

// --- Double lock ----------------------------------------------------

func (n *Node) doubleLock() {
	n.mu.Lock()
	n.mu.Lock() // want `Lock of n\.mu, which may already be held`
	n.mu.Unlock()
	n.mu.Unlock() // want `Unlock of n\.mu, which is not locked at this point`
}

func (n *Node) recursiveRead() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.lockedLen() // want `call to lockedLen, which acquires n\.mu, while n\.mu may already be held`
}

// lockedLen acquires the receiver lock itself; callers already holding
// it deadlock.
func (n *Node) lockedLen() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.shards)
}

// --- Lock/unlock pairing --------------------------------------------

func (n *Node) leakOnEarlyReturn(fail bool) error {
	n.mu.Lock()
	if fail {
		return errFailed // want `return with n\.mu still locked`
	}
	n.mu.Unlock()
	return nil
}

func (n *Node) wrongMode() {
	n.mu.RLock()
	n.mu.Unlock() // want `Unlock of n\.mu, which is held in read mode`
}

// balancedEarlyReturns is the real node's routeGet shape: a manual
// RUnlock on every early-return path. It must stay silent.
func (n *Node) balancedEarlyReturns(p int, addr string) ([]byte, error) {
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return nil, errFailed
	}
	if p >= len(n.shards) {
		n.mu.RUnlock()
		return nil, errFailed
	}
	n.mu.RUnlock()
	resp, err := n.tr.Send(addr, &transport.Message{})
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// shardUnderNodeLock pins the allowed hierarchy: a shard lock taken and
// released while the node lock is held.
func (n *Node) shardUnderNodeLock(p int, key string) []byte {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := &n.shards[p]
	s.mu.Lock()
	v := s.data[key]
	s.mu.Unlock()
	return v
}

// workerPool pins the funclit rule: goroutine bodies run under their
// own lock state, so a local mutex inside one is not confused with the
// spawner's locks.
func (n *Node) workerPool(addrs []string) int {
	var mu sync.Mutex
	var done int
	var wg sync.WaitGroup
	for _, a := range addrs {
		wg.Add(1)
		go func(a string) {
			defer wg.Done()
			if _, err := n.tr.Send(a, &transport.Message{}); err == nil {
				mu.Lock()
				done++
				mu.Unlock()
			}
		}(a)
	}
	wg.Wait()
	return done
}

// --- Exported surface for the cross-package fixture -----------------

// Step runs one epoch step, reaching Send two frames down; importers
// see it as may-send through the exported fact.
func (n *Node) Step(addr string) {
	n.broadcast([]string{addr})
}

// SyncWrite is the exported annotated send: the requires-unlocked fact
// crosses the package boundary with it.
//
//lint:requires-unlocked n.Mu
func (n *Node) SyncWrite(addr string) {
	n.tr.Send(addr, &transport.Message{})
}

var errFailed = &nodeError{}

type nodeError struct{}

func (*nodeError) Error() string { return "failed" }
