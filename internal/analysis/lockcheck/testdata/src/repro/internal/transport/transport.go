// Package transport is a fixture mirror of the module's transport
// package: the import path is what makes its Send methods the
// lockcheck may-send base case.
package transport

// Message is a wire message.
type Message struct {
	Kind  uint8
	Value []byte
}

// Transport is the peer messaging interface.
type Transport interface {
	Send(peer string, req *Message) (*Message, error)
	Close() error
}

// Endpoint is a concrete transport.
type Endpoint struct{}

// Send delivers one message.
func (e *Endpoint) Send(peer string, req *Message) (*Message, error) {
	return &Message{Kind: req.Kind}, nil
}

// Close shuts the endpoint down.
func (e *Endpoint) Close() error { return nil }
