// Package noglobalrand forbids the process-global math/rand state in
// the deterministic packages.
//
// The package-level functions of math/rand and math/rand/v2 (Intn,
// Float64, Perm, Shuffle, …) draw from a shared source that is seeded
// per process and interleaved across goroutines, so two runs of the
// same simulation seed observe different streams — the determinism
// contract requires every draw to flow through the injected
// stats.RNG, which derives independent substreams from Config.Seed.
// Constructors that build an explicitly seeded generator (rand.New,
// rand.NewSource, rand.NewPCG, …) are allowed: they are how a
// deterministic source is made in the first place.
package noglobalrand

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/rfhlintutil"
)

// Analyzer is the noglobalrand check.
var Analyzer = &analysis.Analyzer{
	Name: "noglobalrand",
	Doc:  "forbids math/rand package-level functions in deterministic packages",
	Run:  run,
}

// constructors take an explicit seed or source and are therefore
// compatible with deterministic replay.
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	if !rfhlintutil.InDeterministicPackage(pass) {
		return nil
	}
	for _, file := range pass.Files {
		if rfhlintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, name := rfhlintutil.PkgFunc(pass.TypesInfo, id)
			if (pkg != "math/rand" && pkg != "math/rand/v2") || constructors[name] {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s.%s draws from the process-global random source; use the injected stats.RNG stream instead (determinism contract, DESIGN.md)",
				pkg, name)
			return true
		})
	}
	return nil
}
