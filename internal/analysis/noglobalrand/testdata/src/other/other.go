// Package other is off the allowlist: global rand is legal here.
package other

import "math/rand"

func roll() int { return rand.Intn(6) }
