// Package policy is a noglobalrand fixture on the deterministic-
// package allowlist.
package policy

import (
	"math/rand"
	randv2 "math/rand/v2"
)

func globalDraws() {
	_ = rand.Intn(10)       // want `math/rand.Intn draws from the process-global random source`
	_ = rand.Float64()      // want `math/rand.Float64 draws from the process-global random source`
	rand.Shuffle(3, swap)   // want `math/rand.Shuffle draws from the process-global random source`
	_ = randv2.IntN(10)     // want `math/rand/v2.IntN draws from the process-global random source`
	rand.Seed(42)           // want `math/rand.Seed draws from the process-global random source`
}

func swap(i, j int) {}

// seededSource builds an explicitly seeded generator: allowed.
func seededSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// seededV2 is the rand/v2 equivalent: allowed.
func seededV2(a, b uint64) *randv2.Rand {
	return randv2.New(randv2.NewPCG(a, b))
}

// typesOnly references rand types, not the global source: allowed.
type typesOnly struct {
	src rand.Source
	rng *rand.Rand
}

func suppressed() int {
	//lint:ignore rfhlint/noglobalrand fixture proving suppression works
	return rand.Int()
}
