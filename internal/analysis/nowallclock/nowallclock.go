// Package nowallclock forbids reading the wall clock in the
// deterministic packages.
//
// Simulation time is the epoch counter: every rate, lease and timeout
// inside Engine.Step must be expressed in epochs so a run is a pure
// function of its configuration and seed. time.Now (and the functions
// that read it for you — Since, Until — or that schedule against it —
// Sleep, After, Tick, NewTimer, NewTicker, AfterFunc) smuggles
// host-machine timing into simulation state, which is exactly how
// "works on my machine" divergence enters an otherwise seeded run.
// Constructing and comparing time.Time/time.Duration values remains
// legal; only the clock readers are barred.
package nowallclock

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/rfhlintutil"
)

// Analyzer is the nowallclock check.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc:  "forbids wall-clock reads (time.Now and friends) in deterministic packages",
	Run:  run,
}

// clockReaders are the time functions that observe or schedule against
// the host clock.
var clockReaders = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	if !rfhlintutil.InDeterministicPackage(pass) {
		return nil
	}
	for _, file := range pass.Files {
		if rfhlintutil.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, name := rfhlintutil.PkgFunc(pass.TypesInfo, id)
			if pkg != "time" || !clockReaders[name] {
				return true
			}
			pass.Reportf(id.Pos(),
				"time.%s reads the wall clock; deterministic packages must use the epoch counter (determinism contract, DESIGN.md)",
				name)
			return true
		})
	}
	return nil
}
