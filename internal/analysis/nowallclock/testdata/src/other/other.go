// Package other is off the allowlist: wall-clock reads are legal here
// (benchmark drivers and CLIs time themselves).
package other

import "time"

func stopwatch() time.Time { return time.Now() }
