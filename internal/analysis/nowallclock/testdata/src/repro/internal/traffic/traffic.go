// Package traffic is a nowallclock fixture on the deterministic-
// package allowlist.
package traffic

import "time"

func reads() {
	t0 := time.Now()        // want `time.Now reads the wall clock`
	_ = time.Since(t0)      // want `time.Since reads the wall clock`
	_ = time.Until(t0)      // want `time.Until reads the wall clock`
	time.Sleep(time.Second) // want `time.Sleep reads the wall clock`
	_ = time.Tick(1)        // want `time.Tick reads the wall clock`
}

// durations constructs and compares time values without reading the
// clock: allowed.
func durations(epoch int) time.Duration {
	d := time.Duration(epoch) * 10 * time.Second
	if d > time.Minute {
		return time.Minute
	}
	return d
}

// explicitInstant builds a fixed instant: allowed.
func explicitInstant() time.Time {
	return time.Unix(0, 0)
}

func suppressed() time.Time {
	//lint:ignore rfhlint/nowallclock fixture proving suppression works
	return time.Now()
}
