// Package rfhlintutil carries the pieces the rfhlint analyzers share:
// the deterministic-package allowlist that scopes the determinism
// contract, and the AST helpers (stack-tracking traversal, expression
// printing, guard matching) the individual checks are built from.
package rfhlintutil

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// DeterministicPackages is the allowlist of import paths bound by the
// determinism contract (DESIGN.md, "Determinism contract"): every
// package whose code executes inside Engine.Step and must therefore be
// bit-reproducible for a fixed seed. detrange, noglobalrand and
// nowallclock fire only here; packages that merely read simulation
// output (report, plot, figures) are exempt.
var DeterministicPackages = map[string]bool{
	"repro/internal/sim":         true,
	"repro/internal/core":        true,
	"repro/internal/policy":      true,
	"repro/internal/traffic":     true,
	"repro/internal/cluster":     true,
	"repro/internal/experiments": true,
	// The live runtime is bound too: a cluster of nodes sharing a seed
	// must make identical placement decisions, so node logic is
	// epoch-driven (wall-clock reads live behind node.Clock) and the
	// transports must deliver deterministically under the loopback
	// implementation. The handful of legitimately wall-clocked lines
	// (TCP deadlines, dial backoff) carry reasoned //lint:ignore tags.
	"repro/internal/node":      true,
	"repro/internal/transport": true,
	// The chaos harness promises bit-identical trajectories per seed —
	// its fault plans, message-fault draws and invariant bookkeeping
	// are all part of the reproducibility surface.
	"repro/internal/chaos": true,
	// The durable engine sits under the node data plane: WAL replay and
	// compaction decide what a recovered store contains, so a wall-clock
	// read or map iteration here would fork recovered state (and with it
	// the chaos trajectories) across runs of the same seed.
	"repro/internal/durable": true,
}

// InDeterministicPackage reports whether the pass's package is bound by
// the determinism contract. Test-augmented variants and external test
// packages ("p_test") follow their base package, so fixtures exercising
// the contract can live in _test.go files too.
func InDeterministicPackage(pass *analysis.Pass) bool {
	path := strings.TrimSuffix(pass.PkgPath(), "_test")
	return DeterministicPackages[path]
}

// IsTestFile reports whether the file a position belongs to is a
// _test.go file. The determinism-contract analyzers skip test files:
// tests routinely iterate maps to compare contents or time themselves,
// and none of that state feeds back into simulation results.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// WithStack walks every node of the subtree in depth-first order,
// calling fn with the node and the stack of its ancestors (outermost
// first, not including the node itself). If fn returns false the
// node's children are skipped. It is the x/tools inspector idiom
// rebuilt on ast.Inspect.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// ExprString renders an expression as compact source text — the
// analyzers' notion of expression identity for guard matching (two
// mentions of s.ReplicaCapacity print identically).
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// Unparen strips any number of enclosing parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// IsInteger reports whether t's underlying type is an integer kind.
func IsInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// IsFloat reports whether t's underlying type is a float kind.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ObjectOf resolves an identifier to its object through either Uses or
// Defs.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// PkgFunc returns the package path and name of the function a call or
// identifier use resolves to, or "" when the object is not a function
// from an imported package. It sees through both rand.Intn (selector on
// a package) and dot-imported uses.
func PkgFunc(info *types.Info, id *ast.Ident) (pkgPath, name string) {
	obj := ObjectOf(info, id)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// UsesObject reports whether any identifier inside n resolves to obj.
func UsesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && ObjectOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// IsLenCall reports whether e is a call of the len builtin.
func IsLenCall(info *types.Info, e ast.Expr) bool {
	call, ok := Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := ObjectOf(info, id).(*types.Builtin)
	return ok && b.Name() == "len"
}

// TerminatesFlow reports whether the statement list ends control flow
// for the surrounding code path: a return, branch (break/continue/
// goto), panic, or os.Exit as its last statement. Used to recognise
// early-exit guards such as "if cap <= 0 { return }".
func TerminatesFlow(info *types.Info, stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := Unparen(call.Fun).(type) {
		case *ast.Ident:
			b, ok := ObjectOf(info, fun).(*types.Builtin)
			return ok && b.Name() == "panic"
		case *ast.SelectorExpr:
			pkg, name := PkgFunc(info, fun.Sel)
			return pkg == "os" && name == "Exit"
		}
	}
	return false
}
