package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression syntax, staticcheck-style:
//
//	//lint:ignore rfhlint/detrange this loop only counts matches
//
// The directive names one analyzer (or a comma-separated list) and must
// carry a reason; a bare directive is ignored so suppressions stay
// self-documenting. It applies to findings on the directive's own line
// and on the line immediately below it, covering both trailing-comment
// and own-line placement.
//
// A suppression that matches no diagnostic is stale: the code it
// excused was fixed (or moved) and the directive now silently shields
// whatever lands on its lines next. The driver reports stale
// directives under the "staleignore" category — but only for analyzer
// names that actually ran, so a single-analyzer run (analysistest)
// doesn't flag directives aimed at the rest of the suite.

const suppressPrefix = "lint:ignore "

// suppression is one analyzer name of one lint:ignore directive, with
// the lines it governs and whether any diagnostic used it.
type suppression struct {
	pos     token.Pos
	name    string
	lines   [2]int
	matched bool
}

// suppressions indexes a package's lint:ignore directives.
type suppressions struct {
	byLine map[int]map[string]*suppression
	all    []*suppression
}

// suppressionsFor collects every lint:ignore directive in the package's
// files, keyed by the lines they govern.
func suppressionsFor(fset *token.FileSet, files []*ast.File) *suppressions {
	sup := &suppressions{byLine: make(map[int]map[string]*suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, suppressPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, suppressPrefix))
				names, reason, ok := strings.Cut(rest, " ")
				if !ok || strings.TrimSpace(reason) == "" {
					continue // no reason given: directive is inert
				}
				line := fset.Position(c.Pos()).Line
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimPrefix(strings.TrimSpace(name), "rfhlint/")
					if name == "" {
						continue
					}
					s := &suppression{pos: c.Pos(), name: name, lines: [2]int{line, line + 1}}
					sup.all = append(sup.all, s)
					for _, l := range s.lines {
						if sup.byLine[l] == nil {
							sup.byLine[l] = make(map[string]*suppression)
						}
						sup.byLine[l][name] = s
					}
				}
			}
		}
	}
	return sup
}

// suppressed reports whether d is governed by a lint:ignore directive,
// marking the directive as used.
func (s *suppressions) suppressed(fset *token.FileSet, d Diagnostic) bool {
	if len(s.byLine) == 0 {
		return false
	}
	line := fset.Position(d.Pos).Line
	if sp := s.byLine[line][d.Category]; sp != nil {
		sp.matched = true
		return true
	}
	return false
}

// stale returns a diagnostic for every directive naming an analyzer in
// ran that suppressed nothing this run.
func (s *suppressions) stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, sp := range s.all {
		if sp.matched || !ran[sp.name] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      sp.pos,
			Category: "staleignore",
			Message:  "stale lint:ignore: no rfhlint/" + sp.name + " finding on the governed lines; delete the directive",
		})
	}
	return out
}
