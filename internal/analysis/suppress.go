package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression syntax, staticcheck-style:
//
//	//lint:ignore rfhlint/detrange this loop only counts matches
//
// The directive names one analyzer (or a comma-separated list) and must
// carry a reason; a bare directive is ignored so suppressions stay
// self-documenting. It applies to findings on the directive's own line
// and on the line immediately below it, covering both trailing-comment
// and own-line placement.

const suppressPrefix = "lint:ignore "

// suppressions maps file line -> analyzer names suppressed on it.
type suppressions map[int]map[string]bool

// suppressionsFor collects every lint:ignore directive in the package's
// files, keyed by the lines they govern.
func suppressionsFor(fset *token.FileSet, files []*ast.File) suppressions {
	sup := make(suppressions)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, suppressPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, suppressPrefix))
				names, reason, ok := strings.Cut(rest, " ")
				if !ok || strings.TrimSpace(reason) == "" {
					continue // no reason given: directive is inert
				}
				line := fset.Position(c.Pos()).Line
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimPrefix(strings.TrimSpace(name), "rfhlint/")
					if name == "" {
						continue
					}
					for _, l := range []int{line, line + 1} {
						if sup[l] == nil {
							sup[l] = make(map[string]bool)
						}
						sup[l][name] = true
					}
				}
			}
		}
	}
	return sup
}

// suppressed reports whether d is governed by a lint:ignore directive.
func (s suppressions) suppressed(fset *token.FileSet, d Diagnostic) bool {
	if len(s) == 0 {
		return false
	}
	line := fset.Position(d.Pos).Line
	return s[line][d.Category]
}
