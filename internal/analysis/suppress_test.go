package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSup parses one source file and indexes its suppressions.
func parseSup(t *testing.T, src string) (*token.FileSet, *ast.File, *suppressions) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f, suppressionsFor(fset, []*ast.File{f})
}

// diagAt fabricates a diagnostic on the given 1-based line of the file.
func diagAt(fset *token.FileSet, f *ast.File, line int, category string) Diagnostic {
	tf := fset.File(f.Pos())
	return Diagnostic{Pos: tf.LineStart(line), Category: category, Message: "x"}
}

func lineOf(t *testing.T, src, needle string) int {
	t.Helper()
	idx := strings.Index(src, needle)
	if idx < 0 {
		t.Fatalf("needle %q not in src", needle)
	}
	return 1 + strings.Count(src[:idx], "\n")
}

func TestSuppressMultiAnalyzerList(t *testing.T) {
	src := `package p

//lint:ignore rfhlint/detrange,rfhlint/nowallclock both halves are deliberate
var x = 1
`
	fset, f, sup := parseSup(t, src)
	l := lineOf(t, src, "var x")
	for _, cat := range []string{"detrange", "nowallclock"} {
		if !sup.suppressed(fset, diagAt(fset, f, l, cat)) {
			t.Errorf("%s on the governed line not suppressed", cat)
		}
	}
	if sup.suppressed(fset, diagAt(fset, f, l, "divguard")) {
		t.Errorf("divguard suppressed despite not being named")
	}
}

func TestSuppressBarePrefixAccepted(t *testing.T) {
	// The rfhlint/ prefix is conventional, not required.
	src := `package p

//lint:ignore detrange counted, not ordered
var x = 1
`
	fset, f, sup := parseSup(t, src)
	if !sup.suppressed(fset, diagAt(fset, f, lineOf(t, src, "var x"), "detrange")) {
		t.Errorf("unprefixed analyzer name not honored")
	}
}

func TestSuppressRequiresReason(t *testing.T) {
	src := `package p

//lint:ignore rfhlint/detrange
var x = 1
`
	fset, f, sup := parseSup(t, src)
	if sup.suppressed(fset, diagAt(fset, f, lineOf(t, src, "var x"), "detrange")) {
		t.Errorf("reasonless directive suppressed a finding; it must be inert")
	}
	if len(sup.all) != 0 {
		t.Errorf("reasonless directive indexed: %d suppressions", len(sup.all))
	}
}

func TestSuppressLineGovernance(t *testing.T) {
	src := `package p

var a = 1 //lint:ignore rfhlint/detrange trailing placement
var b = 2
var c = 3
`
	fset, f, sup := parseSup(t, src)
	if !sup.suppressed(fset, diagAt(fset, f, lineOf(t, src, "var a"), "detrange")) {
		t.Errorf("same-line diagnostic not suppressed")
	}
	if !sup.suppressed(fset, diagAt(fset, f, lineOf(t, src, "var b"), "detrange")) {
		t.Errorf("next-line diagnostic not suppressed")
	}
	if sup.suppressed(fset, diagAt(fset, f, lineOf(t, src, "var c"), "detrange")) {
		t.Errorf("diagnostic two lines down suppressed; governance is the directive line and the next")
	}
}

func TestSuppressInsideGroupedDecl(t *testing.T) {
	// Comments inside grouped var/const blocks are regular file
	// comments; a directive there governs its neighbor spec like any
	// other placement.
	src := `package p

var (
	a = 1
	//lint:ignore rfhlint/divguard fixture: denominator proven nonzero
	b = 1 / a
	c = 2 / a
)
`
	fset, f, sup := parseSup(t, src)
	if !sup.suppressed(fset, diagAt(fset, f, lineOf(t, src, "b = 1"), "divguard")) {
		t.Errorf("directive inside grouped decl did not govern the next spec")
	}
	if sup.suppressed(fset, diagAt(fset, f, lineOf(t, src, "c = 2"), "divguard")) {
		t.Errorf("directive inside grouped decl leaked past its governed lines")
	}
}

func TestStaleReporting(t *testing.T) {
	src := `package p

//lint:ignore rfhlint/detrange used below
var a = 1

//lint:ignore rfhlint/nowallclock nothing matches this
var b = 2

//lint:ignore rfhlint/lockcheck analyzer not in this run
var c = 3
`
	fset, f, sup := parseSup(t, src)
	if !sup.suppressed(fset, diagAt(fset, f, lineOf(t, src, "var a"), "detrange")) {
		t.Fatalf("setup: detrange suppression did not match")
	}
	ran := map[string]bool{"detrange": true, "nowallclock": true}
	stale := sup.stale(ran)
	if len(stale) != 1 {
		t.Fatalf("stale = %d diagnostics, want exactly 1: %v", len(stale), stale)
	}
	d := stale[0]
	if d.Category != "staleignore" {
		t.Errorf("stale category = %q, want staleignore", d.Category)
	}
	if !strings.Contains(d.Message, "rfhlint/nowallclock") {
		t.Errorf("stale message %q does not name the unused analyzer", d.Message)
	}
	if got := fset.Position(d.Pos).Line; got != lineOf(t, src, "//lint:ignore rfhlint/nowallclock") {
		t.Errorf("stale diagnostic on line %d, want the directive's line", got)
	}
}

func TestStaleMultiNameDirective(t *testing.T) {
	// A comma list indexes one suppression per name; each goes stale
	// independently.
	src := `package p

//lint:ignore rfhlint/detrange,rfhlint/divguard only detrange still fires
var a = 1
`
	fset, f, sup := parseSup(t, src)
	if !sup.suppressed(fset, diagAt(fset, f, lineOf(t, src, "var a"), "detrange")) {
		t.Fatalf("setup: detrange suppression did not match")
	}
	stale := sup.stale(map[string]bool{"detrange": true, "divguard": true})
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "rfhlint/divguard") {
		t.Fatalf("stale = %v, want exactly the divguard half of the list", stale)
	}
}
