// Package availability implements the availability lower limit of
// §II-D, eq. (14): given a per-replica failure probability f and an
// expected availability target, compute the minimum number of replicas
// a partition must keep.
//
// With r independent copies, each unavailable with probability f, the
// partition is reachable as long as at least one copy survives:
//
//	A(r) = 1 − f^r
//
// The paper's worked example ("if the system requires a minimum
// availability of 0.8 and the failure probability is 0.1, then the
// minimum replica number is 2") requires one more copy than the bare
// at-least-one-alive bound (1 − 0.1¹ = 0.9 ≥ 0.8 already holds with a
// single copy). We reproduce the example by reading eq. (14) as a
// fault-tolerance requirement: the availability target must still hold
// after the loss of any single copy, i.e. 1 − f^(r−1) ≥ A_expect.
// This reading also recovers the industry default of 3-way replication
// at A_expect = 0.99, f = 0.1.
package availability

import (
	"fmt"
	"math"
)

// MaxReplicas bounds MinReplicas' search. No realistic (f, target) pair
// needs more copies than this; hitting the bound signals nonsensical
// inputs (f ≈ 1 or target ≈ 1).
const MaxReplicas = 64

// Availability returns A(copies) = 1 − f^copies, the probability that at
// least one of `copies` independent replicas (each failing with
// probability f) is alive. Zero copies yield availability 0.
func Availability(copies int, f float64) float64 {
	if copies <= 0 {
		return 0
	}
	if f <= 0 {
		return 1
	}
	if f >= 1 {
		return 0
	}
	return 1 - math.Pow(f, float64(copies))
}

// Meets reports whether `copies` replicas satisfy eq. (14)'s
// fault-tolerant availability bound: the target must hold even after
// one copy is lost.
func Meets(copies int, f, target float64) bool {
	return Availability(copies-1, f) >= target
}

// MinReplicas returns the smallest total copy count r ≥ 1 satisfying
// Meets(r, f, target). It returns an error for unsatisfiable inputs
// (target ≥ 1 with f > 0, target > 0 with f ≥ 1, or target outside
// [0, 1)).
func MinReplicas(f, target float64) (int, error) {
	if target < 0 || target >= 1 {
		if target >= 1 && f <= 0 {
			return 2, nil // perfect replicas: one survivor suffices
		}
		return 0, fmt.Errorf("availability: target %g outside [0,1)", target)
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("availability: failure probability %g outside [0,1]", f)
	}
	if target == 0 {
		return 1, nil
	}
	if f >= 1 {
		return 0, fmt.Errorf("availability: target %g unreachable with failure probability 1", target)
	}
	for r := 1; r <= MaxReplicas; r++ {
		if Meets(r, f, target) {
			return r, nil
		}
	}
	return 0, fmt.Errorf("availability: target %g with f=%g needs more than %d replicas", target, f, MaxReplicas)
}

// MeetsWithout reports whether removing one copy from the current count
// still satisfies the bound — the suicide precondition of §II-E ("it
// will calculate the availability without itself; if the minimum
// availability is still satisfied without it, it will commit suicide").
func MeetsWithout(copies int, f, target float64) bool {
	return Meets(copies-1, f, target)
}
