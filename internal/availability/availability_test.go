package availability

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestAvailabilityBasics(t *testing.T) {
	if got := Availability(0, 0.1); got != 0 {
		t.Fatalf("A(0) = %g", got)
	}
	if got := Availability(1, 0.1); got != 0.9 {
		t.Fatalf("A(1) = %g", got)
	}
	if got := Availability(2, 0.1); got != 0.99 {
		t.Fatalf("A(2) = %g", got)
	}
	if got := Availability(3, 0); got != 1 {
		t.Fatalf("A with f=0 = %g", got)
	}
	if got := Availability(3, 1); got != 0 {
		t.Fatalf("A with f=1 = %g", got)
	}
}

func TestAvailabilityMonotoneInCopies(t *testing.T) {
	check := func(f8 uint8, c8 uint8) bool {
		f := float64(f8%100)/100 + 0.001
		c := int(c8)%20 + 1
		return Availability(c+1, f) >= Availability(c, f)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperWorkedExample(t *testing.T) {
	// §II-D: "if the system requires a minimum availability of 0.8 and
	// the failure probability is 0.1, then the minimum replica number
	// is 2".
	r, err := MinReplicas(0.1, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 {
		t.Fatalf("MinReplicas(0.1, 0.8) = %d, want 2 (paper example)", r)
	}
}

func TestIndustryThreeWayReplication(t *testing.T) {
	// f = 0.1, target 0.99 should recover standard 3-way replication.
	r, err := MinReplicas(0.1, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if r != 3 {
		t.Fatalf("MinReplicas(0.1, 0.99) = %d, want 3", r)
	}
}

func TestMinReplicasEdgeCases(t *testing.T) {
	if r, err := MinReplicas(0.5, 0); err != nil || r != 1 {
		t.Fatalf("target 0: r=%d err=%v", r, err)
	}
	if r, err := MinReplicas(0, 0.999); err != nil || r != 2 {
		t.Fatalf("f=0 high target: r=%d err=%v", r, err)
	}
	if _, err := MinReplicas(1, 0.5); err == nil {
		t.Fatal("f=1 with positive target accepted")
	}
	if _, err := MinReplicas(0.5, -0.1); err == nil {
		t.Fatal("negative target accepted")
	}
	if _, err := MinReplicas(0.5, 1.0); err == nil {
		t.Fatal("target 1.0 with lossy replicas accepted")
	}
	if _, err := MinReplicas(-0.1, 0.5); err == nil {
		t.Fatal("negative f accepted")
	}
	if _, err := MinReplicas(2, 0.5); err == nil {
		t.Fatal("f > 1 accepted")
	}
}

func TestMinReplicasSatisfiesMeets(t *testing.T) {
	check := func(f8, t8 uint8) bool {
		f := float64(f8%90)/100 + 0.01   // 0.01..0.90
		target := float64(t8%99) / 100.0 // 0.00..0.98
		r, err := MinReplicas(f, target)
		if err != nil {
			return false
		}
		// r satisfies the bound; r-1 must not (minimality), except at the
		// floor r = 1.
		if !Meets(r, f, target) {
			return false
		}
		if r > 1 && Meets(r-1, f, target) {
			return false
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeetsWithoutIsSuicideCheck(t *testing.T) {
	// With f=0.1, target=0.8: 3 copies can lose one (2 copies still meet),
	// 2 copies cannot.
	if !MeetsWithout(3, 0.1, 0.8) {
		t.Fatal("3 copies should tolerate a suicide")
	}
	if MeetsWithout(2, 0.1, 0.8) {
		t.Fatal("2 copies must not allow suicide at the minimum")
	}
}

func TestMinReplicasUnreachableTarget(t *testing.T) {
	// f close to 1 with a high target requires absurd replica counts.
	if _, err := MinReplicas(0.999999, 0.999999); err == nil {
		t.Fatal("absurd requirement accepted")
	}
}

func TestAvailabilityNeverOutsideUnit(t *testing.T) {
	check := func(c int8, f8 uint8) bool {
		f := float64(f8) / 255
		a := Availability(int(c), f)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEmpiricalAvailabilityMatchesAnalytic simulates independent copy
// failures and compares the measured at-least-one-alive frequency with
// the closed-form Availability(r, f) — the Monte Carlo check that the
// eq. (14) math describes the process it claims to.
func TestEmpiricalAvailabilityMatchesAnalytic(t *testing.T) {
	rng := stats.NewRNG(424242)
	const trials = 200000
	for _, tc := range []struct {
		copies int
		f      float64
	}{
		{1, 0.1}, {2, 0.1}, {3, 0.1}, {2, 0.3}, {4, 0.5},
	} {
		alive := 0
		for i := 0; i < trials; i++ {
			ok := false
			for c := 0; c < tc.copies; c++ {
				if !rng.Bool(tc.f) {
					ok = true
				}
			}
			if ok {
				alive++
			}
		}
		got := float64(alive) / trials
		want := Availability(tc.copies, tc.f)
		if diff := got - want; diff > 0.004 || diff < -0.004 {
			t.Errorf("copies=%d f=%g: empirical %.4f vs analytic %.4f",
				tc.copies, tc.f, got, want)
		}
	}
}
