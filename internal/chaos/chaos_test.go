package chaos

import (
	"fmt"
	"strings"
	"testing"
)

// TestSeedMatrix runs the standard scenario over a seed matrix and
// requires every invariant to hold. CI runs this under -race; the
// chaos schedule is single-threaded, so -race checks the node runtime
// it drives, not the harness.
func TestSeedMatrix(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for s := 1; s <= seeds; s++ {
		seed := uint64(s)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := Run(DefaultOptions(seed))
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("%s", v)
			}
			if res.Acked == 0 {
				t.Error("scenario acked no writes at all — the workload is not exercising the cluster")
			}
		})
	}
}

// TestSameSeedBitIdenticalTrajectory is the determinism contract: two
// runs of the same seed must produce byte-identical trajectory dumps,
// fault counts included.
func TestSameSeedBitIdenticalTrajectory(t *testing.T) {
	opts := DefaultOptions(42)
	opts.Verbose = true
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trajectory != b.Trajectory {
		t.Fatalf("trajectories differ between identically-seeded runs:\n--- run 1\n%s\n--- run 2\n%s",
			a.Trajectory, b.Trajectory)
	}
	if a.Faults != b.Faults {
		t.Fatalf("fault counts differ: %s vs %s", a.Faults.String(), b.Faults.String())
	}
}

// TestDifferentSeedsDiverge guards against the harness accidentally
// ignoring its seed: distinct seeds must produce distinct fault
// patterns somewhere across a small matrix.
func TestDifferentSeedsDiverge(t *testing.T) {
	a, err := Run(DefaultOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	for s := uint64(2); s <= 4; s++ {
		b, err := Run(DefaultOptions(s))
		if err != nil {
			t.Fatal(err)
		}
		if a.Faults != b.Faults {
			return
		}
	}
	t.Fatal("seeds 1-4 all produced identical fault patterns; the plan is not consuming its seed")
}

// TestInjectedViolationIsCaught proves the checker actually fires: a
// fabricated acked-write that never happened must surface as a
// durability violation carrying the scenario seed.
func TestInjectedViolationIsCaught(t *testing.T) {
	opts := DefaultOptions(7)
	opts.GhostWrite = true
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == "durability" && v.Seed == 7 && strings.Contains(v.Detail, "ghost-never-written") {
			found = true
		}
	}
	if !found {
		t.Fatalf("ghost write not caught; violations: %v", res.Violations)
	}
	if !strings.Contains(res.Trajectory, "VIOLATION") {
		t.Error("violation missing from the trajectory dump")
	}
}

// TestFaultFreeRunIsQuiet pins the baseline: with every fault channel
// off the scenario must ack every write, read clean, and report no
// faults and no violations.
func TestFaultFreeRunIsQuiet(t *testing.T) {
	opts := DefaultOptions(3)
	opts.DropRate, opts.DupRate, opts.DelayRate = 0, 0, 0
	opts.CrashRate, opts.CutRate = 0, 0
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Total() != 0 {
		t.Errorf("fault-free run recorded faults: %s", res.Faults.String())
	}
	for _, v := range res.Violations {
		t.Errorf("fault-free violation: %s", v)
	}
	if res.PutErrs != 0 || res.ReadErrs != 0 {
		t.Errorf("fault-free run saw errors: puts=%d reads=%d", res.PutErrs, res.ReadErrs)
	}
}

// TestOptionsValidation rejects shapes the harness cannot drive.
func TestOptionsValidation(t *testing.T) {
	cases := []func(*Options){
		func(o *Options) { o.Nodes = 2 },
		func(o *Options) { o.Partitions = 0 },
		func(o *Options) { o.KeysPerPartition = 0 },
		func(o *Options) { o.WarmEpochs = 0 },
		func(o *Options) { o.CoolEpochs = 0 },
		func(o *Options) { o.DropRate = 0.9; o.DupRate = 0.9 },
		func(o *Options) { o.DelayRate = -0.1 },
		func(o *Options) { o.Check = "bogus" },
	}
	for i, mutate := range cases {
		opts := DefaultOptions(1)
		mutate(&opts)
		if _, err := Run(opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

// TestPlanNeverCrashesNodeZero scans a seed range for the liveness
// guarantee the invariant checkers rely on: node 0 anchors every run.
func TestPlanNeverCrashesNodeZero(t *testing.T) {
	for s := uint64(1); s <= 200; s++ {
		opts := DefaultOptions(s)
		p := buildPlan(&opts)
		down := make([]bool, opts.Nodes)
		for e := range p.events {
			for _, ev := range p.events[e] {
				switch ev.kind {
				case evCrash:
					if ev.a == 0 {
						t.Fatalf("seed %d: plan crashes node 0 at epoch %d", s, e)
					}
					if down[ev.a] {
						t.Fatalf("seed %d: node %d crashed twice without restart", s, ev.a)
					}
					down[ev.a] = true
				case evRestart:
					if !down[ev.a] {
						t.Fatalf("seed %d: restart of live node %d at epoch %d", s, ev.a, e)
					}
					down[ev.a] = false
				}
			}
		}
		for i, d := range down {
			if d {
				t.Fatalf("seed %d: node %d never restarted", s, i)
			}
		}
	}
}

// TestPlanHealsAllCutsBeforeCool verifies every link cut closes by the
// start of the cool-down window, so recovery is measured on a clean
// network.
func TestPlanHealsAllCutsBeforeCool(t *testing.T) {
	for s := uint64(1); s <= 200; s++ {
		opts := DefaultOptions(s)
		p := buildPlan(&opts)
		faultEnd := opts.WarmEpochs + opts.FaultEpochs
		open := 0
		for e := range p.events {
			for _, ev := range p.events[e] {
				switch ev.kind {
				case evCut:
					if e > faultEnd {
						t.Fatalf("seed %d: cut scheduled inside cool window (epoch %d)", s, e)
					}
					open++
				case evUncut:
					open--
				}
			}
			if e >= faultEnd && open != 0 {
				t.Fatalf("seed %d: %d cuts still open at epoch %d (cool starts at %d)", s, open, e, faultEnd)
			}
		}
	}
}
