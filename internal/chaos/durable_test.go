package chaos

import (
	"fmt"
	"testing"

	"repro/internal/node"
	"repro/internal/transport"
)

// TestSeedMatrixDurable is the disk-backed half of the seed matrix:
// the same scenarios run over the durable engine with real per-node
// data directories, so every crash keeps the victim's disk and every
// restart replays its WALs. Each seed runs twice in different
// directories — the trajectory must not depend on where the disk
// lives, only on the seed.
func TestSeedMatrixDurable(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for s := 1; s <= seeds; s++ {
		seed := uint64(s)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			opts := DefaultOptions(seed)
			opts.DataDir = t.TempDir()
			a, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range a.Violations {
				t.Errorf("%s", v)
			}
			if a.Acked == 0 {
				t.Error("durable scenario acked no writes at all")
			}
			if a.Transfers.Started == 0 || a.Transfers.Completed == 0 {
				t.Errorf("durable scenario ran no chunked transfers (stats %+v) — the one-frame threshold is not forcing sessions", a.Transfers)
			}
			opts.DataDir = t.TempDir()
			b, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if a.Trajectory != b.Trajectory {
				t.Fatalf("durable trajectories differ across directories:\n--- run 1\n%s\n--- run 2\n%s",
					a.Trajectory, b.Trajectory)
			}
		})
	}
}

// TestTransferResumesAcrossTargetRestart is the acceptance scenario
// for the resume cursor: a chunked transfer is severed after its first
// chunk, the TARGET is crashed and restarted (its cursor surviving
// only in its WAL), and the re-driven session must continue from the
// recovered cursor — chunk 0 is never sent twice, and the session is
// never re-begun from scratch.
func TestTransferResumesAcrossTargetRestart(t *testing.T) {
	const (
		fleetSize = 4
		target    = 1
		keyCount  = 5
	)
	cfg := node.DefaultConfig(0, nil)
	cfg.Partitions = 8
	cfg.ReplicaCapacity = 8
	cfg.SuspectAfter = 2
	cfg.Seed = 11
	cfg.DataDir = t.TempDir()
	cfg.Fsync = false
	cfg.SnapshotOneFrameBytes = 1 // every ship is a session
	cfg.TransferChunkEntries = 1  // one entry per chunk
	cfg.TransferLeaseEpochs = 50  // the outage must not expire the lease

	sever := false
	passed := 0
	var targetAddr string
	wrap := func(i int, tr transport.Transport) transport.Transport {
		return transport.NewFault(tr, func(from, to string, m *transport.Message) transport.FaultAction {
			if sever && to == targetAddr && m.Kind == node.KindXferChunk {
				if passed >= 1 {
					return transport.FaultDrop
				}
				passed++
			}
			return transport.FaultDeliver
		})
	}
	f, err := node.NewFleetWrapped(fleetSize, cfg, wrap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	targetAddr = f.Addr(target)
	warm(t, f, 4)

	// Fill one partition with enough keys for a multi-chunk session,
	// sourced from the partition's primary so it owns the full state.
	const p = 0
	var keys []string
	for i := 0; len(keys) < keyCount; i++ {
		key := fmt.Sprintf("resume-%d", i)
		if f.Node(0).PartitionOf(key) == p {
			keys = append(keys, key)
		}
	}
	//lint:ignore rfhlint/closecheck Node borrows the fleet's slot; f.Close owns shutdown
	src := f.Node(f.Node(0).Primaries()[p])
	for _, key := range keys {
		if err := src.Put(key, []byte("v."+key)); err != nil {
			t.Fatalf("put %q: %v", key, err)
		}
	}

	// Round 1: the session delivers exactly one chunk, then every
	// further chunk is dropped — the pump ends interrupted.
	sever = true
	if src.TransferPartition(p, target) {
		t.Fatal("severed transfer reported complete")
	}
	st := src.TransferStats()
	if st.Started == 0 || st.Completed != 0 {
		t.Fatalf("after severed round: stats %+v, want an open uncompleted session", st)
	}
	chunksBefore := st.ChunksSent

	// The target dies and returns; its resume cursor now exists only in
	// the WAL it replays on the way up.
	f.Crash(target)
	if err := f.Restart(target); err != nil {
		t.Fatal(err)
	}
	sever = false

	// Round 2: the pump probes the recovered cursor and streams the
	// remaining chunks from there.
	if !src.TransferPartition(p, target) {
		t.Fatal("resumed transfer did not complete")
	}
	st = src.TransferStats()
	if st.Resumed == 0 {
		t.Error("session completed without adopting the target's recovered cursor (Resumed=0) — a stubbed cursor would look exactly like this")
	}
	if st.Completed != 1 || st.Started != 1 {
		t.Errorf("stats %+v, want exactly one session started and completed (a re-begun session is a failed resume)", st)
	}
	total := int64(keyCount)
	if got := st.ChunksSent - 0; got != total {
		t.Errorf("chunks sent over both rounds = %d, want %d: chunk 0 must ride exactly once (sent %d before the crash)",
			got, total, chunksBefore)
	}
	for _, key := range keys {
		if v, ok := f.Node(target).LocalGet(key); !ok || string(v) != "v."+key {
			t.Errorf("target missing %q after resumed transfer (got %q ok=%v)", key, v, ok)
		}
	}

	// Round 3: the completed transfer marked the target resident with a
	// watermark, so a re-migration after fresh writes must plan a DELTA
	// session — only the new keys ship, not the whole partition again.
	var fresh []string
	for i := 100; len(fresh) < 2; i++ {
		key := fmt.Sprintf("resume-%d", i)
		if f.Node(0).PartitionOf(key) == p {
			fresh = append(fresh, key)
		}
	}
	for _, key := range fresh {
		if err := src.Put(key, []byte("v."+key)); err != nil {
			t.Fatalf("put %q: %v", key, err)
		}
	}
	chunksFull := st.ChunksSent
	if !src.TransferPartition(p, target) {
		t.Fatal("delta re-transfer did not complete")
	}
	st = src.TransferStats()
	if st.DeltaSessions != 1 {
		t.Errorf("DeltaSessions = %d after re-migrating a resident target, want 1 (stats %+v)", st.DeltaSessions, st)
	}
	if got := st.ChunksSent - chunksFull; got > int64(len(fresh)) {
		t.Errorf("delta re-transfer sent %d chunks, want at most %d (only the fresh keys may ship)", got, len(fresh))
	}
	if st.BytesSaved == 0 {
		t.Error("delta re-transfer reports BytesSaved=0 — the plan shipped the full snapshot")
	}
	for _, key := range fresh {
		if v, ok := f.Node(target).LocalGet(key); !ok || string(v) != "v."+key {
			t.Errorf("target missing fresh %q after delta transfer (got %q ok=%v)", key, v, ok)
		}
	}
}

// TestSeedMatrixDurableNoOneFrame is the delta-path variant of the
// durable matrix: with the one-frame threshold forced off, EVERY
// replica ship — including the empty-partition ships that normally
// collapse to a single snapshot frame — runs the probe/plan handshake,
// so each seed exercises watermark planning under the full fault
// schedule. The trajectory must stay deterministic across directories
// here too, now including the delta/full/bytes counters it carries.
func TestSeedMatrixDurableNoOneFrame(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	for s := 1; s <= seeds; s++ {
		seed := uint64(s)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			opts := DefaultOptions(seed)
			opts.DataDir = t.TempDir()
			opts.DisableOneFrame = true
			a, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range a.Violations {
				t.Errorf("%s", v)
			}
			if a.Transfers.DeltaSessions+a.Transfers.FullSessions == 0 {
				t.Errorf("no sessions were delta-planned at all (stats %+v) — the probe handshake is not running", a.Transfers)
			}
			if a.Transfers.BytesSent == 0 {
				t.Error("transfers shipped zero counted bytes")
			}
			opts.DataDir = t.TempDir()
			b, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if a.Trajectory != b.Trajectory {
				t.Fatalf("no-oneframe trajectories differ across directories:\n--- run 1\n%s\n--- run 2\n%s",
					a.Trajectory, b.Trajectory)
			}
		})
	}
}
