package chaos

import (
	"fmt"
	"strings"

	"repro/internal/histcheck"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Scenario phases.
const (
	phaseWarm = iota
	phaseFault
	phaseCool
)

var phaseNames = [...]string{"warm", "fault", "cool"}

// suspectAfter is the missed-epoch count after which the runtime drops
// a silent peer. The plan's crash durations are derived from it so the
// fleet always detects a crash before the victim returns.
const suspectAfter = 2

// Result is the outcome of one chaos scenario.
type Result struct {
	Seed       uint64
	Epochs     int
	Acked      int // acknowledged writes
	PutErrs    int // refused/unreachable writes (not acked, not lost)
	ReadOK     int
	ReadErrs   int
	Faults     metrics.FaultCounts
	Violations []Violation
	// Transfers aggregates every node's chunked-transfer counters over
	// the whole run (zero in memory mode, where the tiny partitions
	// never cross the one-frame threshold).
	Transfers node.TransferStats
	// History is the complete recorded operation history the checkers
	// judged: every workload put and get with interval timestamps,
	// version stamps and binding/relaxed marks, a reset wherever the
	// environment legally destroyed a key, and the quiescent
	// durability reads. Recorded even with Check "off".
	History    []histcheck.Op
	Trajectory string // deterministic per-epoch dump; bit-identical per seed
}

// Passed reports whether the run upheld every invariant.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

// delayedMsg is a message the fault layer pulled out of an epoch; the
// harness re-delivers it at the next epoch boundary through the
// sender's inner (un-faulted) endpoint.
type delayedMsg struct {
	from int
	to   string
	msg  *transport.Message
}

// harness wires one scenario together: the fleet under test, the
// fault schedule, the per-message fault decider state, the workload
// history and the trajectory dump.
type harness struct {
	opts    Options
	plan    *plan
	fleet   *node.Fleet
	members []*node.Node          // stable per-slot handles; fleet.Alive gates use
	inner   []transport.Transport // raw loopback endpoints, for delayed re-delivery

	msgRNG  *stats.RNG
	phase   int
	cut     [][]int // directed link cut counters [from][to]
	delayed []delayedMsg

	hist   *history
	faults metrics.FaultCounts
	viols  []Violation
	traj   strings.Builder

	// steadyStreak counts consecutive epochs in which every node was
	// alive and none was recovering. The per-epoch staleness check only
	// binds after a full steady epoch of claim exchange; mid-fault and
	// mid-recovery reads can legitimately route through stale views, and
	// the quiescence checks judge those windows instead.
	steadyStreak int

	acked, putErrs, readOK, readErrs int
}

// Run executes one seeded chaos scenario end to end and reports the
// invariant verdict. The same Options always produce the same Result,
// byte-identical trajectory included.
func Run(opts Options) (*Result, error) {
	if err := validate(&opts); err != nil {
		return nil, err
	}
	h := &harness{
		opts:   opts,
		plan:   buildPlan(&opts),
		inner:  make([]transport.Transport, opts.Nodes),
		msgRNG: stats.NewRNG(opts.Seed ^ 0xFA017),
		cut:    make([][]int, opts.Nodes),
		hist:   newHistory(&opts),
	}
	for i := range h.cut {
		h.cut[i] = make([]int, opts.Nodes)
	}
	cfg := node.DefaultConfig(0, nil)
	cfg.Partitions = opts.Partitions
	cfg.ReplicaCapacity = 8
	cfg.SuspectAfter = suspectAfter
	cfg.Seed = opts.Seed
	cfg.WriteQuorum = opts.WriteQuorum
	cfg.ReadQuorum = opts.ReadQuorum
	if opts.DataDir != "" {
		cfg.DataDir = opts.DataDir    // the fleet adds per-node subdirectories
		cfg.Fsync = false             // surviving Crash/Restart, not power cuts
		cfg.WALCompactEvery = 16      // compact constantly under the tiny workload
		cfg.SnapshotOneFrameBytes = 1 // every ship becomes a chunked session
		if opts.DisableOneFrame {
			cfg.SnapshotOneFrameBytes = -1 // no one-frame fallback at all
		}
		cfg.TransferChunkEntries = 1 // every session is multi-chunk
		// Anti-entropy runs only in durable mode: memory-mode
		// trajectories are pinned byte-for-byte to the pre-AE era, and
		// the digest sweep would add sends (and fault-RNG draws) to
		// every epoch. Durable trajectories are only ever compared
		// between same-build runs, so the new frames are free there.
		cfg.AEInterval = 4
	}
	fleet, err := node.NewFleetWrapped(opts.Nodes, cfg, func(i int, tr transport.Transport) transport.Transport {
		h.inner[i] = tr
		return transport.NewFault(tr, h.deciderFor(i))
	})
	if err != nil {
		return nil, err
	}
	h.fleet = fleet
	defer fleet.Close()
	h.members = make([]*node.Node, opts.Nodes)
	for i := range h.members {
		h.members[i] = fleet.Node(i) // the fleet owns and closes the nodes
	}

	fmt.Fprintf(&h.traj, "chaos seed=0x%x nodes=%d partitions=%d keys=%d w=%d r=%d warm=%d fault=%d cool=%d\n",
		opts.Seed, opts.Nodes, opts.Partitions, opts.KeysPerPartition,
		opts.WriteQuorum, opts.ReadQuorum,
		opts.WarmEpochs, opts.FaultEpochs, opts.CoolEpochs)
	// Memory-mode trajectories must stay byte-for-byte what they were
	// before the durable engine existed, so the durable marker is a
	// separate, conditional line.
	if opts.DataDir != "" {
		oneFrame := 1
		if opts.DisableOneFrame {
			oneFrame = 0
		}
		fmt.Fprintf(&h.traj, "durable fsync=0 compact_every=16 chunked=1 ae=4 oneframe=%d\n", oneFrame)
	}

	for e := 0; e < opts.Epochs(); e++ {
		if err := h.stepEpoch(e); err != nil {
			return nil, err
		}
	}
	h.finalChecks()
	var xfer node.TransferStats
	var aePayload int64
	for _, nd := range h.members {
		st := nd.TransferStats()
		xfer.Started += st.Started
		xfer.Completed += st.Completed
		xfer.Expired += st.Expired
		xfer.Resumed += st.Resumed
		xfer.ChunksSent += st.ChunksSent
		xfer.OneFrame += st.OneFrame
		xfer.DeltaSessions += st.DeltaSessions
		xfer.FullSessions += st.FullSessions
		xfer.BytesSent += st.BytesSent
		xfer.BytesSaved += st.BytesSaved
		aePayload += nd.AEStats().PayloadBytes
	}
	if opts.DataDir != "" {
		fmt.Fprintf(&h.traj, "transfers started=%d completed=%d expired=%d resumed=%d chunks=%d oneframe=%d delta=%d full=%d bytes=%d saved=%d ae_payload=%d\n",
			xfer.Started, xfer.Completed, xfer.Expired, xfer.Resumed, xfer.ChunksSent, xfer.OneFrame,
			xfer.DeltaSessions, xfer.FullSessions, xfer.BytesSent, xfer.BytesSaved, aePayload)
	}
	fmt.Fprintf(&h.traj, "faults %s\n", h.faults.String())
	fmt.Fprintf(&h.traj, "excused=%d\n", h.hist.excusedCount())
	for i := range h.viols {
		fmt.Fprintf(&h.traj, "VIOLATION %s\n", h.viols[i].String())
	}

	return &Result{
		Seed:       opts.Seed,
		Epochs:     opts.Epochs(),
		Acked:      h.acked,
		PutErrs:    h.putErrs,
		ReadOK:     h.readOK,
		ReadErrs:   h.readErrs,
		Faults:     h.faults,
		Violations: h.viols,
		Transfers:  xfer,
		History:    h.hist.ops,
		Trajectory: h.traj.String(),
	}, nil
}

// validate rejects option shapes the harness cannot drive.
func validate(o *Options) error {
	switch {
	case o.Nodes < 3:
		return fmt.Errorf("chaos: need at least 3 nodes, got %d", o.Nodes)
	case o.Partitions < 1 || o.KeysPerPartition < 1:
		return fmt.Errorf("chaos: need at least one partition and key")
	case o.WarmEpochs < 1 || o.CoolEpochs < 1:
		return fmt.Errorf("chaos: warm and cool windows must be at least 1 epoch")
	case o.DropRate < 0 || o.DupRate < 0 || o.DelayRate < 0 ||
		o.DropRate+o.DupRate+o.DelayRate > 1:
		return fmt.Errorf("chaos: message fault rates must be non-negative and sum to at most 1")
	case o.Check != "" && o.Check != "linearizable" && o.Check != "sessions" && o.Check != "off":
		return fmt.Errorf("chaos: unknown check mode %q (want linearizable, sessions or off)", o.Check)
	}
	return nil
}

// stepEpoch runs one full epoch: re-deliver delayed messages, apply
// the scheduled fault transitions, tick the fleet, drive the client
// workload, and check the per-epoch invariants.
func (h *harness) stepEpoch(e int) error {
	switch {
	case e < h.opts.WarmEpochs:
		h.phase = phaseWarm
	case e < h.opts.WarmEpochs+h.opts.FaultEpochs:
		h.phase = phaseFault
	default:
		h.phase = phaseCool
	}

	h.flushDelayed()
	if err := h.applyEvents(e); err != nil {
		return err
	}
	h.scanLostHolders(e)

	if err := h.fleet.Tick(); err != nil {
		return fmt.Errorf("chaos: epoch %d: %w", e, err)
	}
	if h.steady() {
		h.steadyStreak++
	} else {
		h.steadyStreak = 0
	}
	acks, perr, rok, rerr := h.workload(e)
	h.checkCeiling(e)

	ref := h.members[h.refIdx()]
	fmt.Fprintf(&h.traj, "e=%03d ph=%s acks=%d perr=%d rok=%d rerr=%d alive=%d prim=%v cnt=%v\n",
		e, phaseNames[h.phase], acks, perr, rok, rerr,
		h.fleet.NumAlive(), ref.Primaries(), h.replicaCounts(ref))
	return nil
}

// flushDelayed re-delivers every message the fault layer deferred,
// through the sender's inner endpoint so the delivery itself cannot be
// re-faulted. Targets that crashed in the meantime just lose the
// message (it was already counted as a delay fault).
func (h *harness) flushDelayed() {
	for i := range h.delayed {
		d := &h.delayed[i]
		if resp, err := h.inner[d.from].Send(d.to, d.msg); err == nil {
			//lint:ignore rfhlint/errsink delayed re-delivery is fire-and-forget: the sender already saw the original attempt fail, a reply error here has no consumer
			_ = resp.Err()
		}
	}
	h.delayed = h.delayed[:0]
}

// applyEvents executes the plan's fault transitions for the epoch.
func (h *harness) applyEvents(e int) error {
	for _, ev := range h.plan.events[e] {
		switch ev.kind {
		case evCrash:
			h.fleet.Crash(ev.a)
			h.faults.Crash()
			h.trace(e, "crash node=%d", ev.a)
			h.excuseCrashLosses(e, ev.a)
		case evRestart:
			if err := h.fleet.Restart(ev.a); err != nil {
				return fmt.Errorf("chaos: epoch %d: %w", e, err)
			}
			h.faults.Restart()
			h.trace(e, "restart node=%d", ev.a)
		case evCut:
			h.cut[ev.a][ev.b]++
			h.faults.Cut(1)
			h.trace(e, "cut %d->%d", ev.a, ev.b)
		case evUncut:
			h.cut[ev.a][ev.b]--
			h.trace(e, "heal %d->%d", ev.a, ev.b)
		}
	}
	return nil
}

// trace emits one verbose trajectory line.
func (h *harness) trace(e int, format string, args ...any) {
	if !h.opts.Verbose {
		return
	}
	fmt.Fprintf(&h.traj, "  e=%03d "+format+"\n", append([]any{e}, args...)...)
}

// excuse marks one record's current acked write as legally lost,
// recording the reason. The excuse clears on the key's next
// acknowledged put — a fresh quorum ack re-arms the strict checks.
// The op history gets a reset at the same instant: the environment
// destroyed every copy, so the register legitimately became absent and
// older observations stop binding the history checkers.
func (h *harness) excuse(e int, rec *keyRecord, format string, args ...any) {
	if rec.excused || rec.lastAcked == "" {
		return
	}
	rec.excused = true
	rec.excuseWhy = fmt.Sprintf(format, args...)
	h.hist.record(histcheck.Op{Kind: histcheck.OpReset, Key: rec.key, Epoch: e})
	h.trace(e, "excuse key=%s: %s", rec.key, rec.excuseWhy)
}

// excuseCrashLosses runs the instant a node crashes: any acked write
// whose last live copy just died with the victim is legally lost. The
// scan checks actual bytes on live nodes, not placement metadata —
// with W ≥ 2 it fires only when background data movement (a dropped
// snapshot to a new holder, a migration away from an ack-set member)
// had already degraded the write down to a single physical copy before
// the crash took that copy too.
func (h *harness) excuseCrashLosses(e, victim int) {
	for r := range h.hist.recs {
		rec := &h.hist.recs[r]
		if rec.lastAcked == "" || rec.excused {
			continue
		}
		if !h.storedSomewhere(rec) {
			h.excuse(e, rec, "crash of node %d left no live copy at epoch %d", victim, e)
		}
	}
}

// scanLostHolders excuses the records of partitions whose every view
// holder is down this instant: their data survives nowhere, so the
// epoch's reseed will restore them empty (archival restore) and the
// acked writes are legally lost. Together with excuseCrashLosses this
// is the only excusal left — message faults never excuse anything.
func (h *harness) scanLostHolders(e int) {
	rm := h.members[h.refIdx()].ReplicaMap()
	for p := range rm {
		anyAlive := false
		for _, s := range rm[p] {
			if h.fleet.Alive(s) {
				anyAlive = true
				break
			}
		}
		if anyAlive {
			continue
		}
		for k := 0; k < h.opts.KeysPerPartition; k++ {
			h.excuse(e, h.hist.rec(p, k), "all holders of partition %d down at epoch %d", p, e)
		}
	}
}

// steady reports whether the fleet is whole this instant: every node
// alive and none still rebuilding after a restart.
func (h *harness) steady() bool {
	for i := 0; i < h.fleet.Len(); i++ {
		if !h.fleet.Alive(i) || h.members[i].Recovering() {
			return false
		}
	}
	return true
}

// refIdx returns the lowest-index live node — the observer for all
// per-epoch checks and trajectory lines.
func (h *harness) refIdx() int {
	for i := 0; i < h.fleet.Len(); i++ {
		if h.fleet.Alive(i) {
			return i
		}
	}
	return 0 // unreachable: node 0 is never crashed
}

// replicaCounts snapshots the per-partition holder counts of a view.
func (h *harness) replicaCounts(nd *node.Node) []int {
	out := make([]int, h.opts.Partitions)
	for p := range out {
		out[p] = nd.ReplicaCount(p)
	}
	return out
}

// aliveEntry returns the index of the first live node at or after
// rotation index i, spreading workload entry points across the fleet
// deterministically.
func (h *harness) aliveEntry(i int) int {
	n := h.fleet.Len()
	for k := 0; k < n; k++ {
		if idx := (i + k) % n; h.fleet.Alive(idx) {
			return idx
		}
	}
	return 0
}

// workload drives one epoch of client traffic: one quorum put and one
// quorum get per key, entering the cluster at rotating nodes. A put is
// recorded only when the write quorum acked it — the receipt's version
// and ack set are the ground truth the durability checker holds the
// cluster to — and an ack clears any standing excusal for the key.
// Reads are checked for staleness on the spot (steady clean epochs,
// un-excused records only).
//
// Every op also joins the full history, invocation and response: puts
// with their stamped version and ack verdict (a failed put stays in as
// an optional op — its ack may have been lost after the primary
// committed), gets with the served value/version. A get taken outside
// the staleness gate is marked Relaxed: mid-fault and mid-recovery
// reads may legitimately route through stale views, so only the gated
// reads bind the linearizability and session checkers.
func (h *harness) workload(e int) (acks, perr, rok, rerr int) {
	for p := 0; p < h.opts.Partitions; p++ {
		for k := 0; k < h.opts.KeysPerPartition; k++ {
			rec := h.hist.rec(p, k)
			val := fmt.Sprintf("s%x.e%d.p%d.k%d", h.opts.Seed, e, p, k)
			writer := h.aliveEntry(e + p + k)
			rcpt, err := h.members[writer].PutQuorum(rec.key, []byte(val))
			h.hist.record(histcheck.Op{
				Client: writer, Kind: histcheck.OpPut, Key: rec.key,
				Value: val, Version: rcpt.Version, Acked: err == nil, Epoch: e,
			})
			if err == nil {
				rec.lastAcked = val
				rec.ackEpoch = e
				rec.ackVer = rcpt.Version
				rec.excused = false
				rec.excuseWhy = ""
				acks++
			} else {
				perr++
			}
			check := h.phase != phaseFault && h.steadyStreak >= 2 &&
				rec.lastAcked != "" && !rec.excused
			reader := h.aliveEntry(e + p + k + 1)
			op := histcheck.Op{
				Client: reader, Kind: histcheck.OpGet, Key: rec.key,
				Relaxed: !check, Epoch: e,
			}
			v, ver, ok, err := h.members[reader].GetVersioned(rec.key)
			switch {
			case err != nil:
				rerr++ // unreachable routes are chaos, not violations
				op.Errored = true
			case !ok:
				if check {
					h.violate("staleness", "epoch %d: key %s read not-found after ack %q", e, rec.key, rec.lastAcked)
				}
			default:
				rok++
				op.Value, op.Version, op.Found = string(v), ver, true
				if check && string(v) != rec.lastAcked {
					h.violate("staleness", "epoch %d: key %s read %q, last acked %q", e, rec.key, v, rec.lastAcked)
				}
			}
			h.hist.record(op)
		}
	}
	h.acked += acks
	h.putErrs += perr
	h.readOK += rok
	h.readErrs += rerr
	return acks, perr, rok, rerr
}

// deciderFor builds node i's per-message fault decision function. All
// draws come from the shared seeded stream; the single-threaded
// lockstep schedule makes the draw order — and therefore the whole
// fault pattern — a pure function of the seed.
func (h *harness) deciderFor(i int) transport.FaultFunc {
	return func(from, to string, m *transport.Message) transport.FaultAction {
		if j := h.peerIndex(to); j >= 0 && h.cut[i][j] > 0 {
			h.faults.Drop(m.Kind)
			return transport.FaultDrop
		}
		if h.phase != phaseFault {
			return transport.FaultDeliver
		}
		r := h.msgRNG.Float64()
		switch {
		case r < h.opts.DropRate:
			h.faults.Drop(m.Kind)
			return transport.FaultDrop
		case r < h.opts.DropRate+h.opts.DupRate:
			h.faults.Duplicate()
			return transport.FaultDuplicate
		case r < h.opts.DropRate+h.opts.DupRate+h.opts.DelayRate && delayable(m.Kind):
			if cl, err := transport.CloneMessage(m); err == nil {
				h.faults.Delay(m.Kind)
				h.delayed = append(h.delayed, delayedMsg{from: i, to: to, msg: cl})
				return transport.FaultDrop
			}
		}
		return transport.FaultDeliver
	}
}

// delayable reports whether a message kind may be deferred one epoch.
// Writes (KindPut) are excluded: a put the sender saw fail must not
// land later and overwrite a newer acknowledged value — that would
// turn a reported failure into silent data corruption, which is a
// client-contract bug, not a network fault. Queries gain nothing from
// re-execution an epoch late. The transfer-session kinds are all
// delayable: the target's cursor makes a late begin/chunk/done replay
// a no-op ack, which is exactly the idempotence the sessions claim.
// The anti-entropy kinds are delayable for the same reason: a digest
// answers against whatever the holder has now, and a late repair's
// entries merge version-gated, so stale payloads lose to newer copies
// instead of regressing them.
func delayable(kind uint8) bool {
	switch kind {
	case node.KindSync, node.KindStore, node.KindDrop, node.KindStats,
		node.KindXferBegin, node.KindXferChunk, node.KindXferCursor, node.KindXferDone,
		node.KindAEDigest, node.KindAERepair, node.KindAEFetch:
		return true
	default:
		return false
	}
}

// peerIndex resolves a transport address back to its roster index, or
// -1 for addresses outside the fleet.
func (h *harness) peerIndex(addr string) int {
	for i := 0; i < h.fleet.Len(); i++ {
		if h.fleet.Addr(i) == addr {
			return i
		}
	}
	return -1
}
