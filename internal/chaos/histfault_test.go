package chaos

import (
	"strings"
	"testing"

	"repro/internal/histcheck"
)

// violationKinds collects the distinct violation kinds of a result.
func violationKinds(res *Result) map[string]string {
	kinds := make(map[string]string)
	for _, v := range res.Violations {
		kinds[v.Kind] += v.Detail + "\n"
	}
	return kinds
}

// TestInjectedStaleReadIsCaught proves the history checkers have
// teeth: a fabricated binding read of a long-overwritten version must
// be flagged by BOTH the linearizability search (the value cannot be
// the latest preceding write anywhere in a legal order) and the
// session scan (the same client already observed a newer version).
func TestInjectedStaleReadIsCaught(t *testing.T) {
	opts := DefaultOptions(9)
	opts.InjectStaleRead = true
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	kinds := violationKinds(res)
	if _, ok := kinds["linearizability"]; !ok {
		t.Errorf("injected stale read not caught by the linearizability checker; violations: %v", res.Violations)
	}
	if details, ok := kinds["session"]; !ok || !strings.Contains(details, "monotonic-reads") {
		t.Errorf("injected stale read not caught as a monotonic-reads breach; violations: %v", res.Violations)
	}
	if !strings.Contains(res.Trajectory, "VIOLATION") {
		t.Error("history violations missing from the trajectory dump")
	}
}

// TestInjectedLostWriteIsCaught: a fabricated acked write whose
// same-client follow-up read still sees the old value must be flagged
// by the linearizability search (a mandatory op has no legal place)
// and by read-your-writes (the client's own ack is newer than what it
// read back).
func TestInjectedLostWriteIsCaught(t *testing.T) {
	opts := DefaultOptions(9)
	opts.InjectLostWrite = true
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	kinds := violationKinds(res)
	if _, ok := kinds["linearizability"]; !ok {
		t.Errorf("injected lost write not caught by the linearizability checker; violations: %v", res.Violations)
	}
	if details, ok := kinds["session"]; !ok || !strings.Contains(details, "read-your-writes") {
		t.Errorf("injected lost write not caught as a read-your-writes breach; violations: %v", res.Violations)
	}
}

// TestSessionsModeCatchesInjected: the cheap "sessions" mode skips the
// WGL search but must still catch both injected faults through the
// linear scan alone.
func TestSessionsModeCatchesInjected(t *testing.T) {
	opts := DefaultOptions(9)
	opts.Check = "sessions"
	opts.InjectStaleRead = true
	opts.InjectLostWrite = true
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	kinds := violationKinds(res)
	if _, ok := kinds["linearizability"]; ok {
		t.Error("sessions mode ran the linearizability checker anyway")
	}
	if details := kinds["session"]; !strings.Contains(details, "monotonic-reads") || !strings.Contains(details, "read-your-writes") {
		t.Errorf("sessions mode missed an injected fault; violations: %v", res.Violations)
	}
}

// TestCheckOffSkipsInjected: with the checkers off, the injected
// history faults go unjudged (the run passes), but the history itself
// is still recorded and returned.
func TestCheckOffSkipsInjected(t *testing.T) {
	opts := DefaultOptions(9)
	opts.Check = "off"
	opts.InjectStaleRead = true
	opts.InjectLostWrite = true
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Errorf("check=off still reported violations: %v", res.Violations)
	}
	if len(res.History) == 0 {
		t.Fatal("check=off stopped recording the op history")
	}
}

// TestHistoryShape pins the recorded history's structure on a clean
// run: every epoch contributes one put and one get per key, binding
// reads exist (the cool window reads under a steady fleet), and the
// quiescent durability reads land at the tail with the ref client.
func TestHistoryShape(t *testing.T) {
	opts := DefaultOptions(3)
	opts.DropRate, opts.DupRate, opts.DelayRate = 0, 0, 0
	opts.CrashRate, opts.CutRate = 0, 0
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	keys := opts.Partitions * opts.KeysPerPartition
	want := opts.Epochs()*keys*2 + keys // workload ops + quiescent reads
	if len(res.History) != want {
		t.Fatalf("fault-free history has %d ops, want %d", len(res.History), want)
	}
	puts, binding := 0, 0
	lastInvoke := int64(-1)
	for _, op := range res.History {
		if op.Invoke <= lastInvoke {
			t.Fatalf("history intervals not strictly increasing at %v", op)
		}
		lastInvoke = op.Invoke
		switch op.Kind {
		case histcheck.OpPut:
			puts++
			if !op.Acked {
				t.Errorf("fault-free run recorded an unacked put: %v", op)
			}
		case histcheck.OpGet:
			if !op.Relaxed {
				binding++
			}
		case histcheck.OpReset:
			t.Errorf("fault-free run recorded a reset: %v", op)
		}
	}
	if puts != opts.Epochs()*keys {
		t.Errorf("history has %d puts, want %d", puts, opts.Epochs()*keys)
	}
	if binding == 0 {
		t.Error("no binding reads recorded — the checkers judged nothing")
	}
	tail := res.History[len(res.History)-1]
	if tail.Kind != histcheck.OpGet || tail.Client != 0 || tail.Relaxed {
		t.Errorf("history tail is not the ref node's binding quiescent read: %v", tail)
	}
}
