package chaos

import (
	"fmt"

	"repro/internal/histcheck"
	"repro/internal/ring"
)

// Violation is one invariant breach, tagged with the seed that
// reproduces it.
type Violation struct {
	Seed   uint64
	Kind   string // durability | staleness | convergence | ceiling | divergence | linearizability | session
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("seed=0x%x %s: %s", v.Seed, v.Kind, v.Detail)
}

// violate records one invariant breach.
func (h *harness) violate(kind, format string, args ...any) {
	h.viols = append(h.viols, Violation{
		Seed:   h.opts.Seed,
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// keyRecord tracks one workload key's acknowledged-write history.
type keyRecord struct {
	key       string
	partition int
	lastAcked string // value of the newest acknowledged put
	ackEpoch  int
	ackVer    uint64 // version the primary stamped on the newest ack

	// excused marks the current acked write as legally lost: the
	// physical destruction of every live copy (crashes, never message
	// faults) is the only thing that sets it. The next acknowledged
	// put clears it — a fresh quorum ack re-arms the strict checks.
	excused   bool
	excuseWhy string
}

// history is the workload's ground truth: one record per key with the
// newest acknowledged value, its quorum-stamped version, and the
// per-record excusal state. There is no partition-level excusal any
// more — a quorum write either has surviving copies or its holders
// physically died, and only the latter excuses a loss.
//
// Alongside the per-key aggregate it keeps the complete operation
// history: every put and get the workload issued, stamped with a
// strictly increasing interval clock, for the linearizability and
// session checkers to judge at quiescence.
type history struct {
	recs    []keyRecord // indexed p*KeysPerPartition + k
	keysPer int

	ops  []histcheck.Op
	tick int64 // interval clock; the harness is single-threaded, so intervals are disjoint
}

// record appends one operation, stamping its invocation/response
// interval from the history's logical clock. The harness drives every
// op synchronously, so recorded intervals never overlap — except for
// failed puts, which the linearizability checker itself extends to
// +infinity (the ack was lost, not necessarily the write).
func (h *history) record(op histcheck.Op) {
	op.Invoke = h.tick
	op.Return = h.tick + 1
	h.tick += 2
	h.ops = append(h.ops, op)
}

func newHistory(o *Options) *history {
	h := &history{
		recs:    make([]keyRecord, o.Partitions*o.KeysPerPartition),
		keysPer: o.KeysPerPartition,
	}
	for p := 0; p < o.Partitions; p++ {
		keys := partitionKeys(p, o.Partitions, o.KeysPerPartition)
		for k := 0; k < o.KeysPerPartition; k++ {
			h.recs[p*o.KeysPerPartition+k] = keyRecord{key: keys[k], partition: p, ackEpoch: -1}
		}
	}
	return h
}

// rec returns key k of partition p.
func (h *history) rec(p, k int) *keyRecord { return &h.recs[p*h.keysPer+k] }

// excusedCount reports how many records currently carry an excusal.
func (h *history) excusedCount() int {
	n := 0
	for i := range h.recs {
		if h.recs[i].excused {
			n++
		}
	}
	return n
}

// partitionKeys returns the first n keys of the canonical deterministic
// key sequence that hash into partition p — the same scan rule as
// node.PartitionKey, extended to multiple keys.
func partitionKeys(p, partitions, n int) []string {
	keys := make([]string, 0, n)
	for i := 0; len(keys) < n; i++ {
		key := fmt.Sprintf("p%d-%d", p, i)
		if int(uint64(ring.HashString(key))%uint64(partitions)) == p {
			keys = append(keys, key)
		}
	}
	return keys
}

// checkCeiling asserts, on every live node's view, that no partition
// lists more holders than the fleet has members. Claims, reseeds and
// decision application can each add replicas; none of them may ever
// mint a holder that does not exist.
func (h *harness) checkCeiling(e int) {
	ceiling := h.fleet.Len()
	for i := 0; i < h.fleet.Len(); i++ {
		if !h.fleet.Alive(i) {
			continue
		}
		nd := h.members[i]
		for p := 0; p < h.opts.Partitions; p++ {
			if got := nd.ReplicaCount(p); got > ceiling {
				h.violate("ceiling", "epoch %d: node %d sees %d holders of partition %d, fleet has %d",
					e, i, got, p, ceiling)
			}
		}
	}
}

// finalChecks runs the quiescence invariants after the cool-down
// window: convergence (all views agree, every partition placed at or
// above the availability bound) and durability (every un-excused acked
// value is still physically present and served).
func (h *harness) finalChecks() {
	if h.opts.GhostWrite {
		// Deliberately corrupt the history: claim an ack that never
		// happened on a record that is NOT excused. The durability
		// checker must catch this — tests use it to prove violations
		// are reported, not silently excused.
		rec := h.hist.rec(0, 0)
		rec.lastAcked = fmt.Sprintf("s%x.ghost-never-written", h.opts.Seed)
		rec.excused = false
	}

	ref := h.members[h.refIdx()]
	refMap := ref.ReplicaMap()
	refPrim := ref.Primaries()
	minRep := ref.MinReplicas()

	// Convergence: every node lives, no node still recovering, all
	// views identical, every partition placed within the bounds.
	for i := 0; i < h.fleet.Len(); i++ {
		if !h.fleet.Alive(i) {
			h.violate("convergence", "node %d still down at quiescence", i)
			continue
		}
		nd := h.members[i]
		if nd.Recovering() {
			h.violate("convergence", "node %d still recovering after %d cool epochs", i, h.opts.CoolEpochs)
		}
		if nd == ref {
			continue
		}
		m, pr := nd.ReplicaMap(), nd.Primaries()
		for p := 0; p < h.opts.Partitions; p++ {
			if !intsEqual(refMap[p], m[p]) {
				h.violate("divergence", "partition %d holders differ: node %d sees %v, node %d sees %v",
					p, ref.Self(), refMap[p], i, m[p])
			}
			if refPrim[p] != pr[p] {
				h.violate("divergence", "partition %d primary differs: node %d says %d, node %d says %d",
					p, ref.Self(), refPrim[p], i, pr[p])
			}
		}
	}
	for p := 0; p < h.opts.Partitions; p++ {
		if refPrim[p] < 0 {
			h.violate("convergence", "partition %d has no primary at quiescence", p)
			continue
		}
		if got := len(refMap[p]); got < minRep {
			h.violate("convergence", "partition %d has %d replicas at quiescence, eq. 14 floor is %d",
				p, got, minRep)
		}
	}

	// Durability: for every acked write that no crash physically
	// destroyed, the value must still be present on a live node and
	// served by a routed read. Message faults (drops, delays, dup
	// deliveries, link cuts) never excuse a record: the write quorum
	// exists precisely so an ack survives them. The quiescent reads
	// join the op history as binding observations — the history
	// checkers must explain them too.
	refID := h.refIdx()
	for r := range h.hist.recs {
		rec := &h.hist.recs[r]
		if rec.lastAcked == "" || rec.excused {
			continue
		}
		if !h.storedSomewhere(rec) {
			h.violate("durability", "key %s: acked value %q (epoch %d) on no live node",
				rec.key, rec.lastAcked, rec.ackEpoch)
		}
		op := histcheck.Op{Client: refID, Kind: histcheck.OpGet, Key: rec.key, Epoch: h.opts.Epochs()}
		v, ver, ok, err := ref.GetVersioned(rec.key)
		switch {
		case err != nil:
			op.Errored = true
			h.violate("durability", "key %s: read failed at quiescence: %v", rec.key, err)
		case !ok:
			h.violate("durability", "key %s: acked value %q not found at quiescence", rec.key, rec.lastAcked)
		default:
			op.Value, op.Version, op.Found = string(v), ver, true
			if string(v) != rec.lastAcked {
				h.violate("staleness", "key %s: quiescent read %q, acked %q", rec.key, v, rec.lastAcked)
			}
		}
		h.hist.record(op)
	}

	h.injectHistoryFaults()
	h.runHistChecks()
}

// injectHistoryFaults fabricates checker-visible faults in the
// recorded history right before the verdict — self-tests for the
// history checkers, in the GhostWrite tradition.
func (h *harness) injectHistoryFaults() {
	if h.opts.InjectStaleRead {
		h.injectStaleRead()
	}
	if h.opts.InjectLostWrite {
		h.injectLostWrite()
	}
}

// injectStaleRead appends a binding read of the first acked version of
// some key that later acked newer writes, attributed to the client
// that last read the key — an observation the cluster never served.
// The linearizability search must reject it (the value was overwritten
// before the read) and monotonic-reads must reject it (that client
// already saw a newer version).
func (h *harness) injectStaleRead() {
	for i := range h.hist.ops {
		first := &h.hist.ops[i]
		if first.Kind != histcheck.OpPut || !first.Acked {
			continue
		}
		client, newer := -1, false
		for j := i + 1; j < len(h.hist.ops); j++ {
			op := &h.hist.ops[j]
			if op.Key != first.Key {
				continue
			}
			switch {
			case op.Kind == histcheck.OpReset:
				// The wipe legalized everything before it: observations
				// older than the reset are no longer contradictions.
				client, newer = -1, false
			case op.Kind == histcheck.OpPut && op.Acked && op.Version > first.Version:
				newer = true
			case op.Kind == histcheck.OpGet && !op.Relaxed && !op.Errored:
				client = op.Client
			}
		}
		if !newer || client < 0 {
			continue
		}
		h.hist.record(histcheck.Op{
			Client: client, Kind: histcheck.OpGet, Key: first.Key,
			Value: first.Value, Version: first.Version, Found: true,
			Epoch: h.opts.Epochs(),
		})
		return
	}
}

// injectLostWrite appends an acked put followed by a binding read, by
// the same client, that still observes the previous value — an
// acknowledged write that silently vanished. The linearizability
// search must reject it (a mandatory write has no place in any legal
// order) and read-your-writes must reject it (the client's own ack is
// newer than what it read back).
func (h *harness) injectLostWrite() {
	for r := range h.hist.recs {
		rec := &h.hist.recs[r]
		if rec.lastAcked == "" || rec.excused {
			continue
		}
		client := h.refIdx()
		h.hist.record(histcheck.Op{
			Client: client, Kind: histcheck.OpPut, Key: rec.key,
			Value:   fmt.Sprintf("s%x.lost-injected", h.opts.Seed),
			Version: rec.ackVer + 1<<20, Acked: true, Epoch: h.opts.Epochs(),
		})
		h.hist.record(histcheck.Op{
			Client: client, Kind: histcheck.OpGet, Key: rec.key,
			Value: rec.lastAcked, Version: rec.ackVer, Found: true,
			Epoch: h.opts.Epochs(),
		})
		return
	}
}

// runHistChecks judges the recorded operation history with the
// checkers the Check option selects, folding their findings into the
// run's violation list.
func (h *harness) runHistChecks() {
	lin, sess := false, false
	switch h.opts.Check {
	case "off":
	case "sessions":
		sess = true
	default: // "" and "linearizable"
		lin, sess = true, true
	}
	if lin {
		for _, v := range histcheck.CheckLinearizable(h.hist.ops) {
			h.violate("linearizability", "%s", v.Detail)
		}
	}
	if sess {
		for _, v := range histcheck.CheckSessions(h.hist.ops) {
			h.violate("session", "%s: %s", v.Check, v.Detail)
		}
	}
}

// storedSomewhere reports whether any live node physically holds the
// record's newest acked value (placement metadata notwithstanding).
func (h *harness) storedSomewhere(rec *keyRecord) bool {
	for i := 0; i < h.fleet.Len(); i++ {
		if !h.fleet.Alive(i) {
			continue
		}
		if v, ok := h.members[i].LocalGet(rec.key); ok && string(v) == rec.lastAcked {
			return true
		}
	}
	return false
}

// intsEqual compares two int slices.
func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
