// Package chaos is a seeded, fully deterministic fault-injection and
// invariant-checking harness for the live cluster runtime. A FaultPlan
// derived from one seed schedules message drops, duplicated and
// delayed deliveries, symmetric and asymmetric link cuts, and node
// crash/restart cycles against a node.Fleet over the loopback
// transport, while a generated client workload records every
// acknowledged write and its quorum receipt — and, beyond the
// aggregate ground truth, the COMPLETE operation history: every put
// and get invocation/response with interval timestamps, version
// stamps, ack state and the binding/relaxed mark, plus a reset op
// wherever the environment legally destroyed a key. Invariant checkers
// run every epoch and at quiescence: no acked write is ever lost while
// a live node still holds a copy (message faults alone never excuse a
// loss — only the physical destruction of every copy does), reads are
// at least as new as the last acked write per key, every partition
// re-converges to the availability bound within the clean cool-down
// window, replica counts never exceed the fleet size, and identical
// seeds produce bit-identical trajectory dumps. At quiescence the
// recorded history is handed to the histcheck package: the per-key WGL
// linearizability search and the session-guarantee scan
// (read-your-writes, monotonic reads, monotonic writes) judge the run
// as first-class invariants alongside durability and convergence.
//
// Everything in the package obeys the determinism contract (rfhlint
// clean): all randomness flows from stats.RNG streams seeded by the
// scenario seed, no wall clock is read, and no map is iterated.
package chaos

import "repro/internal/stats"

// Options configures one chaos scenario. The zero value is not
// runnable; start from DefaultOptions.
type Options struct {
	Nodes            int // fleet size (≥ 3; node 0 is never crashed)
	Partitions       int
	KeysPerPartition int

	WarmEpochs  int // clean epochs before faults: placement converges
	FaultEpochs int // epochs under fault injection
	CoolEpochs  int // clean epochs after faults: recovery window

	Seed uint64

	// Per-message fault probabilities during the fault window.
	DropRate  float64
	DupRate   float64
	DelayRate float64

	// Per-epoch schedule probabilities during the fault window.
	CrashRate float64 // chance to crash one node (if none is down)
	CutRate   float64 // chance to open one link cut

	// Quorum sizes the workload's writes and reads run under, wired
	// straight into node.Config. With W ≥ 2 an acked write has a live
	// copy beyond the primary, which is what lets the durability
	// checker treat message faults as non-excuses: only the physical
	// crash of every copy-holder may excuse a loss.
	WriteQuorum int
	ReadQuorum  int

	// DataDir, when non-empty, runs the fleet on the durable storage
	// engine: each node gets its own subdirectory under it, crash events
	// keep the victim's disk state, and restarts recover it — the
	// schedule then exercises WAL replay, rejoin re-injection and the
	// chunked-transfer resume cursors. The durable config forces every
	// partition ship through multi-chunk sessions (one entry per chunk,
	// one-frame threshold below any real payload) and compacts WALs
	// aggressively, so even the small scenario fleets cross every
	// durable code path. Empty keeps the in-memory store and the exact
	// pre-durability trajectories.
	DataDir string

	// DisableOneFrame forces the one-frame snapshot threshold negative
	// in durable mode, so EVERY replica ship — even an empty
	// partition's — goes through a probed, delta-planned chunked
	// session. The CI durable variant uses it to exercise the delta
	// transfer path on every seed. Ignored without DataDir: memory-mode
	// trajectories are byte-pinned and must not change shape.
	DisableOneFrame bool

	// Verbose adds per-event lines to the trajectory dump.
	Verbose bool

	// GhostWrite fabricates an acknowledged write that never happened
	// right before the final checks — a deliberately broken history the
	// durability checker MUST flag. Tests use it to prove violations
	// are caught and reported, not silently excused.
	GhostWrite bool

	// Check selects which history checkers judge the recorded op
	// history at quiescence: "linearizable" (the default, and what the
	// empty string means) runs the per-key WGL linearizability search
	// plus the session-guarantee scan, "sessions" runs only the linear
	// session scan, and "off" disables both. The history is recorded
	// and returned in the Result either way.
	Check string

	// InjectStaleRead and InjectLostWrite fabricate history faults
	// right before the checkers run: a binding read of a long-
	// overwritten version, and an acked write whose same-client
	// follow-up read still sees the old value. The history checkers
	// MUST flag both — tests use them the way GhostWrite proves the
	// durability checker has teeth.
	InjectStaleRead bool
	InjectLostWrite bool
}

// DefaultOptions returns the standard scenario shape for the given
// seed: a 5-node fleet, 12 partitions, and a fault window sized so
// every fault class has room to fire.
func DefaultOptions(seed uint64) Options {
	return Options{
		Nodes:            5,
		Partitions:       12,
		KeysPerPartition: 2,
		WarmEpochs:       6,
		FaultEpochs:      12,
		CoolEpochs:       10,
		Seed:             seed,
		DropRate:         0.05,
		DupRate:          0.03,
		DelayRate:        0.03,
		CrashRate:        0.25,
		CutRate:          0.30,
		WriteQuorum:      2,
		ReadQuorum:       2,
	}
}

// Epochs returns the scenario's total epoch count.
func (o *Options) Epochs() int { return o.WarmEpochs + o.FaultEpochs + o.CoolEpochs }

// Plan event kinds.
const (
	evCrash   = iota // crash node a
	evRestart        // restart node a
	evCut            // sever the directed link a→b
	evUncut          // restore the directed link a→b
)

// planEvent is one scheduled fault transition at an epoch boundary.
type planEvent struct {
	kind int
	a, b int
}

// plan is the precomputed fault schedule: every crash, restart, cut
// and heal pinned to an epoch boundary at construction time, so the
// run itself is pure table lookup. Per-message faults (drop/dup/delay)
// are drawn from a separate RNG stream at send time instead — their
// schedule depends on the message sequence, which the seed also fixes.
type plan struct {
	events [][]planEvent // indexed by absolute epoch
}

// buildPlan derives the fault schedule from the scenario seed. All
// crash/restart pairs and cut/heal pairs close before the cool-down
// window starts, so the recovery invariants measure a genuinely clean
// cluster. Node 0 is never crashed: a surviving reference node keeps
// placement claims flowing and anchors the restart epoch.
//
// Crash durations always exceed the suspicion window: the fleet must
// detect the loss and re-place the victim's partitions before it
// returns, or the rejoin protocol has nothing to rejoin to (peers
// would still list the wiped node as a holder and its empty view could
// never fill). Sub-suspicion blips are the live-cluster equivalent of
// a delayed stats message, which the per-message delay fault models.
func buildPlan(o *Options) *plan {
	rng := stats.NewRNG(o.Seed ^ 0x91A5)
	p := &plan{events: make([][]planEvent, o.Epochs()+1)}
	faultStart := o.WarmEpochs
	faultEnd := o.WarmEpochs + o.FaultEpochs // first cool epoch

	add := func(e int, ev planEvent) {
		if e > faultEnd {
			e = faultEnd
		}
		p.events[e] = append(p.events[e], ev)
	}

	downUntil := -1 // one crashed node at a time keeps the fleet live
	for e := faultStart; e < faultEnd; e++ {
		if e >= downUntil && rng.Bool(o.CrashRate) {
			victim := 1 + rng.Intn(o.Nodes-1) // never node 0
			dur := suspectAfter + 3 + rng.Intn(2)
			if e+dur <= faultEnd { // the restart must not be clamped shorter
				add(e, planEvent{kind: evCrash, a: victim})
				add(e+dur, planEvent{kind: evRestart, a: victim})
				downUntil = e + dur
			}
		}
		if rng.Bool(o.CutRate) {
			i := rng.Intn(o.Nodes)
			j := rng.Intn(o.Nodes - 1)
			if j >= i {
				j++
			}
			dur := 1 + rng.Intn(2)
			add(e, planEvent{kind: evCut, a: i, b: j})
			add(e+dur, planEvent{kind: evUncut, a: i, b: j})
			if rng.Bool(0.5) { // symmetric partition half the time
				add(e, planEvent{kind: evCut, a: j, b: i})
				add(e+dur, planEvent{kind: evUncut, a: j, b: i})
			}
		}
	}
	return p
}
