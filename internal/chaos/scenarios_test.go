package chaos

import (
	"strings"
	"testing"

	"repro/internal/node"
	"repro/internal/transport"
)

// Directed crash scenarios for the quorum data plane. Unlike the
// seeded matrix, these stage one precise failure each: they are the
// executable form of the durability contract — an acked W=2 write
// survives the crash of everything outside its ack set, including the
// primary — and of its converse: a write that cannot reach a quorum is
// refused, not acked. Before the quorum data plane existed, Put acked
// after the primary's local apply alone, so both crash scenarios lost
// the value and the severed-replication scenario acked a write whose
// only copy was the primary.

// scenarioConfig is the shared fleet shape: 5 nodes, W=R=2 (the
// eq. 14 floor at default rates), fast suspicion.
func scenarioConfig() node.Config {
	cfg := node.DefaultConfig(0, nil)
	cfg.Partitions = 8
	cfg.ReplicaCapacity = 8
	cfg.SuspectAfter = 2
	cfg.Seed = 99
	cfg.WriteQuorum = 2
	cfg.ReadQuorum = 2
	return cfg
}

func warm(t *testing.T, f *node.Fleet, epochs int) {
	t.Helper()
	for i := 0; i < epochs; i++ {
		if err := f.Tick(); err != nil {
			t.Fatalf("warm tick %d: %v", i, err)
		}
	}
}

// TestAckedWriteSurvivesQuorumComplementCrash is the acceptance
// scenario for strict durability: ack a W=2 write, then crash every
// node OUTSIDE the ack set between epochs. The surviving quorum must
// keep the value readable through suspicion, re-placement and the
// crashed nodes' empty-handed return.
func TestAckedWriteSurvivesQuorumComplementCrash(t *testing.T) {
	f, err := node.NewFleet(5, scenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	warm(t, f, 4)

	key := node.PartitionKey(0, 8)
	val := []byte("survives-complement-crash")
	rcpt, err := f.Node(0).PutQuorum(key, val)
	if err != nil {
		t.Fatalf("quorum put: %v", err)
	}
	if len(rcpt.Acked) < 2 {
		t.Fatalf("ack set %v smaller than write quorum", rcpt.Acked)
	}

	inAckSet := make(map[int]bool)
	for _, i := range rcpt.Acked {
		inAckSet[i] = true
	}
	crashed := []int{}
	for i := 0; i < f.Len(); i++ {
		if !inAckSet[i] {
			f.Crash(i)
			crashed = append(crashed, i)
		}
	}
	if len(crashed) == 0 {
		t.Fatal("ack set covered the whole fleet; scenario needs a complement to crash")
	}

	// Ride out suspicion and re-placement on the survivors alone.
	for i := 0; i < 6; i++ {
		if err := f.Tick(); err != nil {
			t.Fatalf("survivor tick %d: %v", i, err)
		}
	}
	for _, i := range rcpt.Acked {
		v, ok, err := f.Node(i).Get(key)
		if err != nil || !ok || string(v) != string(val) {
			t.Fatalf("survivor %d after complement crash: got (%q, %v, %v), want %q",
				i, v, ok, err, val)
		}
	}

	// The crashed nodes return empty; their rejoin must not shadow or
	// resurrect anything.
	for _, i := range crashed {
		if err := f.Restart(i); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
	}
	warm(t, f, 6)
	for i := 0; i < f.Len(); i++ {
		v, ok, err := f.Node(i).Get(key)
		if err != nil || !ok || string(v) != string(val) {
			t.Fatalf("node %d after full recovery: got (%q, %v, %v), want %q",
				i, v, ok, err, val)
		}
	}
}

// TestAckedWriteSurvivesPrimaryCrashMidWrite kills the decision-maker
// the instant after it acked a write — the classic lost-update window.
// The write's other quorum member must carry the value through
// failover, and the successor primary must serve it at a version no
// lower than the receipt's.
func TestAckedWriteSurvivesPrimaryCrashMidWrite(t *testing.T) {
	f, err := node.NewFleet(5, scenarioConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	warm(t, f, 4)

	key := node.PartitionKey(0, 8)
	primary := f.Node(0).Primaries()[0]
	val := []byte("survives-primary-crash")
	rcpt, err := f.Node(0).PutQuorum(key, val)
	if err != nil {
		t.Fatalf("quorum put: %v", err)
	}

	f.Crash(primary)
	for i := 0; i < 6; i++ {
		if err := f.Tick(); err != nil {
			t.Fatalf("failover tick %d: %v", i, err)
		}
	}

	entry := 0
	if primary == 0 {
		entry = 1
	}
	v, ok, err := f.Node(entry).Get(key)
	if err != nil || !ok || string(v) != string(val) {
		t.Fatalf("read after primary crash: got (%q, %v, %v), want %q", v, ok, err, val)
	}
	// Version monotonicity across failover: some live holder serves the
	// key at the receipt's version or newer.
	best := uint64(0)
	for i := 0; i < f.Len(); i++ {
		if !f.Alive(i) {
			continue
		}
		if _, ver, ok := f.Node(i).LocalVersion(key); ok && ver > best {
			best = ver
		}
	}
	if best < rcpt.Version {
		t.Fatalf("post-failover version %d below acked receipt version %d", best, rcpt.Version)
	}
}

// TestQuorumWriteRefusedWhenReplicationSevered severs every
// replication path (KindSync and the KindStore snapshot fallback) and
// requires a W=2 put to come back as an error naming the quorum
// shortfall. This is the converse bug the quorum data plane fixes:
// the pre-quorum Put acked after the primary's local apply even when
// zero replicas heard about the write.
func TestQuorumWriteRefusedWhenReplicationSevered(t *testing.T) {
	severed := false
	wrap := func(i int, tr transport.Transport) transport.Transport {
		return transport.NewFault(tr, func(from, to string, m *transport.Message) transport.FaultAction {
			if severed && (m.Kind == node.KindSync || m.Kind == node.KindStore) {
				return transport.FaultDrop
			}
			return transport.FaultDeliver
		})
	}
	f, err := node.NewFleetWrapped(5, scenarioConfig(), wrap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	warm(t, f, 4)

	key := node.PartitionKey(0, 8)
	primary := f.Node(0).Primaries()[0]

	severed = true
	_, err = f.Node(primary).PutQuorum(key, []byte("must-not-ack"))
	if err == nil {
		t.Fatal("W=2 put acked with all replication paths severed")
	}
	if !strings.Contains(err.Error(), "write quorum not met") {
		t.Fatalf("put failed for the wrong reason: %v", err)
	}

	severed = false
	if _, err := f.Node(primary).PutQuorum(key, []byte("acks-again")); err != nil {
		t.Fatalf("put still failing after replication restored: %v", err)
	}
}
