package cluster

import (
	"fmt"

	"repro/internal/queueing"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Spec configures the physical resources of a cluster, defaulting to
// Table I of the paper.
type Spec struct {
	RoomsPerDC     int
	RacksPerRoom   int
	ServersPerRack int

	StorageCapacity int64   // nominal bytes per server (Table I: 10 GB)
	StorageJitter   float64 // ± fractional heterogeneity on capacities
	StorageLimit    float64 // φ of condition (19), Table I: 0.70

	ReplicationBW int64 // bytes/epoch a server may send for replication
	MigrationBW   int64 // bytes/epoch a server may send for migration

	ReplicaCapacityMin int // C_ikl lower bound (queries/epoch/replica)
	ReplicaCapacityMax int // C_ikl upper bound
	ProcessLimit       int // c_i of eq. (18): concurrent slots per server
	MeanServiceTime    float64

	Partitions    int
	PartitionSize int64 // bytes (Table I: 512 KB)

	Seed uint64
}

// DefaultSpec returns the Table I environment: 1 room × 2 racks × 5
// servers per datacenter, 10 GB disks at a 70% limit, 300/100 MB/epoch
// replication/migration bandwidth, 64 partitions of 512 KB.
func DefaultSpec() Spec {
	return Spec{
		RoomsPerDC:         1,
		RacksPerRoom:       2,
		ServersPerRack:     5,
		StorageCapacity:    10 << 30, // 10 GB
		StorageJitter:      0.2,
		StorageLimit:       0.70,
		ReplicationBW:      300 << 20, // 300 MB/epoch
		MigrationBW:        100 << 20, // 100 MB/epoch
		ReplicaCapacityMin: 40,
		ReplicaCapacityMax: 100,
		ProcessLimit:       64,
		MeanServiceTime:    0.01,
		Partitions:         64,
		PartitionSize:      512 << 10, // 512 KB
		Seed:               1,
	}
}

// Validate checks the spec for structural sanity.
func (sp Spec) Validate() error {
	switch {
	case sp.RoomsPerDC < 1 || sp.RacksPerRoom < 1 || sp.ServersPerRack < 1:
		return fmt.Errorf("cluster: rooms/racks/servers must be >= 1")
	case sp.StorageCapacity <= 0:
		return fmt.Errorf("cluster: storage capacity must be positive")
	case sp.StorageJitter < 0 || sp.StorageJitter >= 1:
		return fmt.Errorf("cluster: storage jitter %g outside [0,1)", sp.StorageJitter)
	case sp.StorageLimit <= 0 || sp.StorageLimit > 1:
		return fmt.Errorf("cluster: storage limit %g outside (0,1]", sp.StorageLimit)
	case sp.ReplicationBW <= 0 || sp.MigrationBW <= 0:
		return fmt.Errorf("cluster: bandwidths must be positive")
	case sp.ReplicaCapacityMin <= 0 || sp.ReplicaCapacityMax < sp.ReplicaCapacityMin:
		return fmt.Errorf("cluster: replica capacity range [%d,%d] invalid", sp.ReplicaCapacityMin, sp.ReplicaCapacityMax)
	case sp.ProcessLimit <= 0:
		return fmt.Errorf("cluster: process limit must be positive")
	case sp.MeanServiceTime <= 0:
		return fmt.Errorf("cluster: mean service time must be positive")
	case sp.Partitions <= 0:
		return fmt.Errorf("cluster: need at least one partition")
	case sp.PartitionSize <= 0:
		return fmt.Errorf("cluster: partition size must be positive")
	}
	return nil
}

// Cluster is the collection of physical servers plus the current
// replica placement of every partition. A server hosts at most one copy
// of a given partition (all four policies place on distinct servers).
//
// Cluster is not safe for concurrent mutation. The simulation engine
// serialises placement changes; read-only accessors may be used from
// multiple goroutines between mutations.
type Cluster struct {
	world   *topology.World
	spec    Spec
	servers []*Server
	byDC    [][]ServerID

	replicas []map[ServerID]bool // partition -> servers hosting a copy
	primary  []ServerID          // partition -> primary holder (-1 = lost)

	lostPartitions int        // partitions that lost their last copy at a failure
	joinRNG        *stats.RNG // draws capacities for servers joining later
	joined         int        // servers added after construction
}

// New builds a cluster over the world per the spec. Server capacities
// are heterogeneous, drawn deterministically from the spec seed.
func New(world *topology.World, sp Spec) (*Cluster, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if err := world.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	rng := stats.NewRNG(sp.Seed ^ 0xC1057E2)
	c := &Cluster{
		world:    world,
		spec:     sp,
		byDC:     make([][]ServerID, world.NumDCs()),
		replicas: make([]map[ServerID]bool, sp.Partitions),
		primary:  make([]ServerID, sp.Partitions),
		joinRNG:  stats.NewRNG(sp.Seed ^ 0x101ED),
	}
	for p := range c.replicas {
		c.replicas[p] = make(map[ServerID]bool)
		c.primary[p] = -1
	}
	for dc := 0; dc < world.NumDCs(); dc++ {
		dcInfo := world.DC(topology.DCID(dc))
		for room := 0; room < sp.RoomsPerDC; room++ {
			for rack := 0; rack < sp.RacksPerRoom; rack++ {
				for srv := 0; srv < sp.ServersPerRack; srv++ {
					id := ServerID(len(c.servers))
					jitter := 1 + sp.StorageJitter*(2*rng.Float64()-1)
					capRange := sp.ReplicaCapacityMax - sp.ReplicaCapacityMin + 1
					s := &Server{
						ID: id,
						DC: topology.DCID(dc),
						Label: topology.Label{
							Continent:  dcInfo.Continent,
							Country:    dcInfo.Country,
							Datacenter: dcInfo.Name,
							Room:       fmt.Sprintf("C%02d", room+1),
							Rack:       fmt.Sprintf("R%02d", rack+1),
							Server:     fmt.Sprintf("S%d", srv+1),
						},
						StorageCapacity: int64(float64(sp.StorageCapacity) * jitter),
						ReplicationBW:   sp.ReplicationBW,
						MigrationBW:     sp.MigrationBW,
						ReplicaCapacity: sp.ReplicaCapacityMin + rng.Intn(capRange),
						ProcessLimit:    sp.ProcessLimit,
						alive:           true,
						observer:        queueing.NewObserver(sp.ProcessLimit, sp.MeanServiceTime),
					}
					s.replBWLeft = s.ReplicationBW
					s.migrBWLeft = s.MigrationBW
					if err := validateServer(s); err != nil {
						return nil, err
					}
					c.servers = append(c.servers, s)
					c.byDC[dc] = append(c.byDC[dc], id)
				}
			}
		}
	}
	return c, nil
}

// validateServer rejects physically impossible server draws. A
// zero-capacity replica server would divide the load-imbalance series
// by zero, so it must never enter a cluster.
func validateServer(s *Server) error {
	if s.ReplicaCapacity <= 0 {
		return fmt.Errorf("cluster: server %d has non-positive replica capacity %d", s.ID, s.ReplicaCapacity)
	}
	if s.StorageCapacity <= 0 {
		return fmt.Errorf("cluster: server %d has non-positive storage capacity %d", s.ID, s.StorageCapacity)
	}
	return nil
}

// Spec returns the cluster's construction parameters.
func (c *Cluster) Spec() Spec { return c.spec }

// World returns the topology the cluster is deployed over.
func (c *Cluster) World() *topology.World { return c.world }

// NumServers returns the number of physical servers (alive or not).
func (c *Cluster) NumServers() int { return len(c.servers) }

// NumPartitions returns the number of data partitions.
func (c *Cluster) NumPartitions() int { return c.spec.Partitions }

// Server returns the server with the given id.
func (c *Cluster) Server(id ServerID) *Server { return c.servers[id] }

// ServersInDC returns the ids of all servers (alive or not) in a
// datacenter, in ascending id order.
func (c *Cluster) ServersInDC(dc topology.DCID) []ServerID {
	out := make([]ServerID, len(c.byDC[dc]))
	copy(out, c.byDC[dc])
	return out
}

// AliveServers returns the ids of all alive servers in ascending order.
func (c *Cluster) AliveServers() []ServerID {
	var out []ServerID
	for _, s := range c.servers {
		if s.alive {
			out = append(out, s.ID)
		}
	}
	return out
}

// NumAlive returns the number of alive servers without allocating.
func (c *Cluster) NumAlive() int {
	n := 0
	for _, s := range c.servers {
		if s.alive {
			n++
		}
	}
	return n
}

// DCOf returns the datacenter hosting the server.
func (c *Cluster) DCOf(id ServerID) topology.DCID { return c.servers[id].DC }

// CanHost reports whether server s can accept one more copy of a
// partition: it must be alive, not already hold one, and stay under the
// φ storage limit of condition (19).
func (c *Cluster) CanHost(partition int, s ServerID) bool {
	srv := c.servers[s]
	if !srv.alive || c.replicas[partition][s] {
		return false
	}
	//lint:ignore rfhlint/divguard validateServer rejects non-positive StorageCapacity at construction and join
	after := float64(srv.storageUsed+c.spec.PartitionSize) / float64(srv.StorageCapacity)
	return after <= c.spec.StorageLimit
}

// AddReplica places one copy of the partition on server s.
func (c *Cluster) AddReplica(partition int, s ServerID) error {
	if partition < 0 || partition >= c.spec.Partitions {
		return fmt.Errorf("cluster: partition %d out of range", partition)
	}
	srv := c.servers[s]
	if !srv.alive {
		return fmt.Errorf("cluster: server %d is down", s)
	}
	if c.replicas[partition][s] {
		return fmt.Errorf("cluster: server %d already hosts partition %d", s, partition)
	}
	if !c.CanHost(partition, s) {
		return fmt.Errorf("cluster: server %d over the %g storage limit", s, c.spec.StorageLimit)
	}
	c.replicas[partition][s] = true
	srv.storageUsed += c.spec.PartitionSize
	if c.primary[partition] < 0 {
		c.primary[partition] = s
	}
	return nil
}

// RemoveReplica drops the copy of the partition on server s. The last
// remaining copy of a partition cannot be removed (a suicide that loses
// data is a policy bug, not a legal action).
func (c *Cluster) RemoveReplica(partition int, s ServerID) error {
	if !c.replicas[partition][s] {
		return fmt.Errorf("cluster: server %d does not host partition %d", s, partition)
	}
	if len(c.replicas[partition]) == 1 {
		return fmt.Errorf("cluster: refusing to remove the last copy of partition %d", partition)
	}
	delete(c.replicas[partition], s)
	c.servers[s].storageUsed -= c.spec.PartitionSize
	if c.primary[partition] == s {
		c.primary[partition] = c.lowestReplica(partition)
	}
	return nil
}

// lowestReplica returns the lowest-id server hosting the partition, or
// -1 when none does. Deterministic promotion keeps runs reproducible.
func (c *Cluster) lowestReplica(partition int) ServerID {
	best := ServerID(-1)
	//lint:ignore rfhlint/detrange min over a set is commutative; every order yields the same id
	for s := range c.replicas[partition] {
		if best < 0 || s < best {
			best = s
		}
	}
	return best
}

// HasReplica reports whether server s hosts a copy of the partition.
func (c *Cluster) HasReplica(partition int, s ServerID) bool {
	return c.replicas[partition][s]
}

// ReplicaServers returns the servers hosting the partition, ascending.
func (c *Cluster) ReplicaServers(partition int) []ServerID {
	return c.AppendReplicaServers(make([]ServerID, 0, len(c.replicas[partition])), partition)
}

// AppendReplicaServers appends the servers hosting the partition to dst
// in ascending order and returns the extended slice. It allocates only
// when dst lacks capacity, so callers on the epoch hot path can reuse
// one buffer across partitions.
func (c *Cluster) AppendReplicaServers(dst []ServerID, partition int) []ServerID {
	start := len(dst)
	//lint:ignore rfhlint/detrange collect-then-sort via the insertion sort below (alloc-free, so no sort.Slice for the analyzer to see)
	for s := range c.replicas[partition] {
		dst = append(dst, s)
	}
	// Replica sets are tiny (a handful of copies); insertion sort avoids
	// the closure allocation of sort.Slice.
	tail := dst[start:]
	for i := 1; i < len(tail); i++ {
		v := tail[i]
		j := i - 1
		for j >= 0 && tail[j] > v {
			tail[j+1] = tail[j]
			j--
		}
		tail[j+1] = v
	}
	return dst
}

// ReplicaCount returns the number of copies of the partition.
func (c *Cluster) ReplicaCount(partition int) int {
	return len(c.replicas[partition])
}

// TotalReplicas returns the number of copies across all partitions.
func (c *Cluster) TotalReplicas() int {
	total := 0
	for _, m := range c.replicas {
		total += len(m)
	}
	return total
}

// Primary returns the partition's primary holder, or -1 if the
// partition lost all copies.
func (c *Cluster) Primary(partition int) ServerID { return c.primary[partition] }

// SetPrimary designates server s (which must hold a copy) as primary.
func (c *Cluster) SetPrimary(partition int, s ServerID) error {
	if !c.replicas[partition][s] {
		return fmt.Errorf("cluster: server %d does not host partition %d", s, partition)
	}
	c.primary[partition] = s
	return nil
}

// LostPartitions returns how many partitions have lost their last copy
// to failures over the cluster's lifetime.
func (c *Cluster) LostPartitions() int { return c.lostPartitions }

// BeginEpoch resets per-epoch bandwidth budgets and arrival counters.
func (c *Cluster) BeginEpoch() {
	for _, s := range c.servers {
		s.replBWLeft = s.ReplicationBW
		s.migrBWLeft = s.MigrationBW
		s.epochArrivals = 0
		s.epochServed = 0
	}
}

// EndEpoch folds the epoch's arrival observations into each server's
// blocking-probability model (§II-E: "In each epoch, each physical node
// i leverages its computational ability and also records query
// information").
func (c *Cluster) EndEpoch() {
	for _, s := range c.servers {
		if !s.alive {
			continue
		}
		busy := float64(s.epochServed) * c.spec.MeanServiceTime
		s.observer.RecordEpoch(s.epochArrivals, busy, s.epochServed)
	}
}

// ConsumeReplicationBW tries to reserve n bytes of the sender's
// replication bandwidth for this epoch, reporting success.
func (c *Cluster) ConsumeReplicationBW(sender ServerID, n int64) bool {
	s := c.servers[sender]
	if !s.alive || s.replBWLeft < n {
		return false
	}
	s.replBWLeft -= n
	return true
}

// ConsumeMigrationBW tries to reserve n bytes of the sender's migration
// bandwidth for this epoch, reporting success.
func (c *Cluster) ConsumeMigrationBW(sender ServerID, n int64) bool {
	s := c.servers[sender]
	if !s.alive || s.migrBWLeft < n {
		return false
	}
	s.migrBWLeft -= n
	return true
}

// FailServer takes a server down: all its replicas vanish, and for
// partitions where it was primary, the lowest-id surviving replica is
// promoted. It returns the number of partition copies lost. Failing a
// dead server is a no-op.
func (c *Cluster) FailServer(id ServerID) int {
	srv := c.servers[id]
	if !srv.alive {
		return 0
	}
	srv.alive = false
	lost := 0
	for p := range c.replicas {
		if !c.replicas[p][id] {
			continue
		}
		delete(c.replicas[p], id)
		srv.storageUsed -= c.spec.PartitionSize
		lost++
		if c.primary[p] == id {
			c.primary[p] = c.lowestReplica(p)
			if c.primary[p] < 0 {
				c.lostPartitions++
			}
		}
	}
	srv.observer.Reset()
	return lost
}

// RecoverServer brings a failed server back up, empty of data. Its load
// history is cleared so stale observations do not bias placement.
func (c *Cluster) RecoverServer(id ServerID) {
	srv := c.servers[id]
	if srv.alive {
		return
	}
	srv.alive = true
	srv.storageUsed = 0
	srv.replBWLeft = srv.ReplicationBW
	srv.migrBWLeft = srv.MigrationBW
	srv.observer.Reset()
}

// JoinServer adds a brand-new physical server to the given datacenter
// at run time (§II-B: "node join or departure ... only affects its
// immediate neighbors"). The server starts alive and empty, with
// heterogeneous capacities drawn from the cluster's join stream.
func (c *Cluster) JoinServer(dc topology.DCID) (ServerID, error) {
	if int(dc) < 0 || int(dc) >= c.world.NumDCs() {
		return 0, fmt.Errorf("cluster: join into unknown DC %d", dc)
	}
	c.joined++
	dcInfo := c.world.DC(dc)
	id := ServerID(len(c.servers))
	jitter := 1 + c.spec.StorageJitter*(2*c.joinRNG.Float64()-1)
	capRange := c.spec.ReplicaCapacityMax - c.spec.ReplicaCapacityMin + 1
	s := &Server{
		ID: id,
		DC: dc,
		Label: topology.Label{
			Continent:  dcInfo.Continent,
			Country:    dcInfo.Country,
			Datacenter: dcInfo.Name,
			Room:       "C01",
			Rack:       fmt.Sprintf("RJ%02d", c.joined),
			Server:     "S1",
		},
		StorageCapacity: int64(float64(c.spec.StorageCapacity) * jitter),
		ReplicationBW:   c.spec.ReplicationBW,
		MigrationBW:     c.spec.MigrationBW,
		ReplicaCapacity: c.spec.ReplicaCapacityMin + c.joinRNG.Intn(capRange),
		ProcessLimit:    c.spec.ProcessLimit,
		alive:           true,
		observer:        queueing.NewObserver(c.spec.ProcessLimit, c.spec.MeanServiceTime),
	}
	s.replBWLeft = s.ReplicationBW
	s.migrBWLeft = s.MigrationBW
	if err := validateServer(s); err != nil {
		return 0, err
	}
	c.servers = append(c.servers, s)
	c.byDC[dc] = append(c.byDC[dc], id)
	return id, nil
}

// ReplicaDistance returns the eq. (1) distance between two servers.
func (c *Cluster) ReplicaDistance(a, b ServerID) float64 {
	sa, sb := c.servers[a], c.servers[b]
	return c.world.ServerDistance(sa.DC, sb.DC, sa.Label, sb.Label)
}
