package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(topology.PaperWorld(), DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultSpecMatchesTableI(t *testing.T) {
	sp := DefaultSpec()
	if sp.StorageCapacity != 10<<30 {
		t.Errorf("storage = %d, want 10GB", sp.StorageCapacity)
	}
	if sp.StorageLimit != 0.70 {
		t.Errorf("storage limit = %g, want 0.70", sp.StorageLimit)
	}
	if sp.ReplicationBW != 300<<20 || sp.MigrationBW != 100<<20 {
		t.Errorf("bandwidths = %d/%d", sp.ReplicationBW, sp.MigrationBW)
	}
	if sp.Partitions != 64 || sp.PartitionSize != 512<<10 {
		t.Errorf("partitions = %d×%d", sp.Partitions, sp.PartitionSize)
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidation(t *testing.T) {
	mutations := []func(*Spec){
		func(s *Spec) { s.RoomsPerDC = 0 },
		func(s *Spec) { s.StorageCapacity = 0 },
		func(s *Spec) { s.StorageJitter = 1 },
		func(s *Spec) { s.StorageLimit = 0 },
		func(s *Spec) { s.StorageLimit = 1.5 },
		func(s *Spec) { s.ReplicationBW = 0 },
		func(s *Spec) { s.MigrationBW = -1 },
		func(s *Spec) { s.ReplicaCapacityMin = 0 },
		func(s *Spec) { s.ReplicaCapacityMax = 10; s.ReplicaCapacityMin = 20 },
		func(s *Spec) { s.ProcessLimit = 0 },
		func(s *Spec) { s.MeanServiceTime = 0 },
		func(s *Spec) { s.Partitions = 0 },
		func(s *Spec) { s.PartitionSize = 0 },
	}
	for i, mut := range mutations {
		sp := DefaultSpec()
		mut(&sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestClusterShape(t *testing.T) {
	c := newTestCluster(t)
	// 10 DCs × 1 room × 2 racks × 5 servers = 100 servers (§III-A).
	if c.NumServers() != 100 {
		t.Fatalf("servers = %d, want 100", c.NumServers())
	}
	for dc := 0; dc < c.World().NumDCs(); dc++ {
		if got := len(c.ServersInDC(topology.DCID(dc))); got != 10 {
			t.Fatalf("DC %d has %d servers, want 10", dc, got)
		}
	}
	if got := len(c.AliveServers()); got != 100 {
		t.Fatalf("alive = %d", got)
	}
}

func TestServerLabelsWellFormed(t *testing.T) {
	c := newTestCluster(t)
	seen := make(map[string]bool)
	for i := 0; i < c.NumServers(); i++ {
		s := c.Server(ServerID(i))
		lbl := s.Label.String()
		if seen[lbl] {
			t.Fatalf("duplicate label %s", lbl)
		}
		seen[lbl] = true
		parsed, err := topology.ParseLabel(lbl)
		if err != nil {
			t.Fatalf("server %d label %q: %v", i, lbl, err)
		}
		if parsed.Datacenter != c.World().DC(s.DC).Name {
			t.Fatalf("server %d label DC %q != world DC %q", i, parsed.Datacenter, c.World().DC(s.DC).Name)
		}
	}
}

func TestHeterogeneousCapacities(t *testing.T) {
	c := newTestCluster(t)
	sp := c.Spec()
	distinct := make(map[int]bool)
	for i := 0; i < c.NumServers(); i++ {
		s := c.Server(ServerID(i))
		if s.ReplicaCapacity < sp.ReplicaCapacityMin || s.ReplicaCapacity > sp.ReplicaCapacityMax {
			t.Fatalf("server %d capacity %d outside [%d,%d]", i, s.ReplicaCapacity, sp.ReplicaCapacityMin, sp.ReplicaCapacityMax)
		}
		distinct[s.ReplicaCapacity] = true
		lo := float64(sp.StorageCapacity) * (1 - sp.StorageJitter)
		hi := float64(sp.StorageCapacity) * (1 + sp.StorageJitter)
		if fs := float64(s.StorageCapacity); fs < lo || fs > hi {
			t.Fatalf("server %d storage %d outside jitter band", i, s.StorageCapacity)
		}
	}
	if len(distinct) < 10 {
		t.Fatalf("capacities not heterogeneous: %d distinct values", len(distinct))
	}
}

func TestClusterDeterministic(t *testing.T) {
	a := newTestCluster(t)
	b := newTestCluster(t)
	for i := 0; i < a.NumServers(); i++ {
		sa, sb := a.Server(ServerID(i)), b.Server(ServerID(i))
		if sa.ReplicaCapacity != sb.ReplicaCapacity || sa.StorageCapacity != sb.StorageCapacity {
			t.Fatalf("server %d differs between same-seed clusters", i)
		}
	}
}

func TestAddRemoveReplica(t *testing.T) {
	c := newTestCluster(t)
	if err := c.AddReplica(0, 5); err != nil {
		t.Fatal(err)
	}
	if !c.HasReplica(0, 5) || c.ReplicaCount(0) != 1 {
		t.Fatal("replica not recorded")
	}
	if c.Primary(0) != 5 {
		t.Fatalf("first replica did not become primary: %d", c.Primary(0))
	}
	if err := c.AddReplica(0, 5); err == nil {
		t.Fatal("duplicate placement accepted")
	}
	if err := c.AddReplica(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveReplica(0, 5); err != nil {
		t.Fatal(err)
	}
	if c.Primary(0) != 7 {
		t.Fatalf("primary not promoted: %d", c.Primary(0))
	}
	if err := c.RemoveReplica(0, 7); err == nil {
		t.Fatal("last copy removal accepted")
	}
	if err := c.RemoveReplica(0, 5); err == nil {
		t.Fatal("removing absent replica accepted")
	}
}

func TestAddReplicaOutOfRange(t *testing.T) {
	c := newTestCluster(t)
	if err := c.AddReplica(-1, 0); err == nil {
		t.Fatal("negative partition accepted")
	}
	if err := c.AddReplica(c.NumPartitions(), 0); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}

func TestStorageAccounting(t *testing.T) {
	c := newTestCluster(t)
	s := c.Server(3)
	before := s.StorageUsed()
	_ = c.AddReplica(1, 3)
	if s.StorageUsed() != before+c.Spec().PartitionSize {
		t.Fatal("storage not charged on add")
	}
	_ = c.AddReplica(1, 4)
	_ = c.RemoveReplica(1, 3)
	if s.StorageUsed() != before {
		t.Fatal("storage not refunded on remove")
	}
}

func TestStorageLimitEnforced(t *testing.T) {
	sp := DefaultSpec()
	// Tiny disks: each server fits exactly 2 partitions under the 70% cap.
	sp.StorageCapacity = 3 * sp.PartitionSize
	sp.StorageJitter = 0
	w := topology.PaperWorld()
	c, err := New(w, sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.AddReplica(1, 0); err != nil {
		t.Fatal(err)
	}
	// Third copy would be 3/3 = 100% > 70%.
	if c.CanHost(2, 0) {
		t.Fatal("CanHost over the limit")
	}
	if err := c.AddReplica(2, 0); err == nil {
		t.Fatal("storage limit not enforced")
	}
}

func TestBandwidthBudgets(t *testing.T) {
	c := newTestCluster(t)
	c.BeginEpoch()
	sp := c.Spec()
	if !c.ConsumeReplicationBW(0, sp.ReplicationBW) {
		t.Fatal("full replication budget refused")
	}
	if c.ConsumeReplicationBW(0, 1) {
		t.Fatal("exhausted budget granted")
	}
	if !c.ConsumeMigrationBW(0, sp.MigrationBW) {
		t.Fatal("full migration budget refused")
	}
	if c.ConsumeMigrationBW(0, 1) {
		t.Fatal("exhausted migration budget granted")
	}
	c.BeginEpoch()
	if !c.ConsumeReplicationBW(0, 1) {
		t.Fatal("budget not reset by BeginEpoch")
	}
}

func TestFailServerDropsReplicasAndPromotes(t *testing.T) {
	c := newTestCluster(t)
	_ = c.AddReplica(0, 2)
	_ = c.AddReplica(0, 9)
	_ = c.AddReplica(1, 2)
	lost := c.FailServer(2)
	if lost != 2 {
		t.Fatalf("lost = %d, want 2", lost)
	}
	if c.Server(2).Alive() {
		t.Fatal("server still alive")
	}
	if c.HasReplica(0, 2) || c.HasReplica(1, 2) {
		t.Fatal("dead server still hosts replicas")
	}
	if c.Primary(0) != 9 {
		t.Fatalf("partition 0 primary = %d, want 9", c.Primary(0))
	}
	if c.Primary(1) != -1 {
		t.Fatalf("partition 1 primary = %d, want -1 (lost)", c.Primary(1))
	}
	if c.LostPartitions() != 1 {
		t.Fatalf("lost partitions = %d", c.LostPartitions())
	}
	if c.FailServer(2) != 0 {
		t.Fatal("double failure lost replicas")
	}
}

func TestFailedServerRejectsWork(t *testing.T) {
	c := newTestCluster(t)
	c.FailServer(4)
	if err := c.AddReplica(0, 4); err == nil {
		t.Fatal("placement on dead server accepted")
	}
	c.BeginEpoch()
	if c.ConsumeReplicationBW(4, 1) || c.ConsumeMigrationBW(4, 1) {
		t.Fatal("dead server granted bandwidth")
	}
	if c.CanHost(0, 4) {
		t.Fatal("CanHost true for dead server")
	}
}

func TestRecoverServer(t *testing.T) {
	c := newTestCluster(t)
	_ = c.AddReplica(0, 6)
	_ = c.AddReplica(0, 7)
	c.FailServer(6)
	c.RecoverServer(6)
	s := c.Server(6)
	if !s.Alive() || s.StorageUsed() != 0 {
		t.Fatalf("recovered server state: alive=%v used=%d", s.Alive(), s.StorageUsed())
	}
	if c.HasReplica(0, 6) {
		t.Fatal("recovered server kept pre-failure replica")
	}
	if err := c.AddReplica(2, 6); err != nil {
		t.Fatalf("recovered server refuses placement: %v", err)
	}
	c.RecoverServer(6) // recovering an alive server is a no-op
	if !c.HasReplica(2, 6) {
		t.Fatal("no-op recovery dropped data")
	}
}

func TestSetPrimary(t *testing.T) {
	c := newTestCluster(t)
	_ = c.AddReplica(0, 1)
	_ = c.AddReplica(0, 2)
	if err := c.SetPrimary(0, 2); err != nil {
		t.Fatal(err)
	}
	if c.Primary(0) != 2 {
		t.Fatal("primary not set")
	}
	if err := c.SetPrimary(0, 50); err == nil {
		t.Fatal("primary on non-replica accepted")
	}
}

func TestTotalReplicasInvariant(t *testing.T) {
	// Property: TotalReplicas always equals the sum of per-partition
	// counts and the sum of per-server storage charges.
	check := func(ops []uint16) bool {
		c, err := New(topology.PaperWorld(), DefaultSpec())
		if err != nil {
			return false
		}
		for _, op := range ops {
			p := int(op) % c.NumPartitions()
			s := ServerID(int(op/64) % c.NumServers())
			if op%2 == 0 {
				_ = c.AddReplica(p, s)
			} else if c.HasReplica(p, s) {
				_ = c.RemoveReplica(p, s)
			}
		}
		sum := 0
		for p := 0; p < c.NumPartitions(); p++ {
			sum += c.ReplicaCount(p)
		}
		var stored int64
		for i := 0; i < c.NumServers(); i++ {
			stored += c.Server(ServerID(i)).StorageUsed()
		}
		return sum == c.TotalReplicas() && stored == int64(sum)*c.Spec().PartitionSize
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochObserverFlow(t *testing.T) {
	c := newTestCluster(t)
	c.BeginEpoch()
	s := c.Server(0)
	s.RecordArrivals(100, 90)
	c.EndEpoch()
	if s.Blocking() <= 0 {
		t.Fatalf("heavy arrivals produced blocking %g", s.Blocking())
	}
	idle := c.Server(1)
	if idle.Blocking() != 0 {
		t.Fatalf("idle server blocking = %g", idle.Blocking())
	}
}

func TestReplicaDistanceOrdering(t *testing.T) {
	c := newTestCluster(t)
	// Servers 0 and 1 share a rack; 0 and 5 share a DC (different rack);
	// 0 and 10 are in different DCs.
	sameRack := c.ReplicaDistance(0, 1)
	sameDC := c.ReplicaDistance(0, 5)
	crossDC := c.ReplicaDistance(0, 10)
	if !(sameRack < sameDC && sameDC < crossDC) {
		t.Fatalf("distance ordering: rack=%g dc=%g cross=%g", sameRack, sameDC, crossDC)
	}
	if c.ReplicaDistance(0, 0) != 0 {
		t.Fatal("self distance non-zero")
	}
}

func TestJoinServer(t *testing.T) {
	c := newTestCluster(t)
	before := c.NumServers()
	id, err := c.JoinServer(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumServers() != before+1 || int(id) != before {
		t.Fatalf("join produced id %d, servers %d", id, c.NumServers())
	}
	s := c.Server(id)
	if !s.Alive() || s.DC != 3 || s.StorageUsed() != 0 {
		t.Fatalf("joined server state: %+v", s)
	}
	if _, err := topology.ParseLabel(s.Label.String()); err != nil {
		t.Fatalf("joined server label %q invalid: %v", s.Label, err)
	}
	found := false
	for _, sid := range c.ServersInDC(3) {
		if sid == id {
			found = true
		}
	}
	if !found {
		t.Fatal("joined server not indexed in its DC")
	}
	if err := c.AddReplica(0, id); err != nil {
		t.Fatalf("joined server refuses replicas: %v", err)
	}
	c.BeginEpoch()
	if !c.ConsumeReplicationBW(id, 1) {
		t.Fatal("joined server has no bandwidth budget")
	}
}

func TestJoinServerUnknownDC(t *testing.T) {
	c := newTestCluster(t)
	if _, err := c.JoinServer(99); err == nil {
		t.Fatal("join into unknown DC accepted")
	}
	if _, err := c.JoinServer(-1); err == nil {
		t.Fatal("join into negative DC accepted")
	}
}

func TestJoinServersGetUniqueLabels(t *testing.T) {
	c := newTestCluster(t)
	seen := map[string]bool{}
	for i := 0; i < c.NumServers(); i++ {
		seen[c.Server(ServerID(i)).Label.String()] = true
	}
	for i := 0; i < 5; i++ {
		id, err := c.JoinServer(topology.DCID(i % 3))
		if err != nil {
			t.Fatal(err)
		}
		lbl := c.Server(id).Label.String()
		if seen[lbl] {
			t.Fatalf("duplicate label %s", lbl)
		}
		seen[lbl] = true
	}
}
