package cluster

import (
	"fmt"

	"repro/internal/topology"
)

// FailureDomain selects the blast radius of a scoped failure, matching
// the §II-A availability hierarchy ("a server failure, a rack failure
// or even a whole datacenter's out of work").
type FailureDomain int

// Failure domains, smallest to largest.
const (
	DomainServer FailureDomain = iota
	DomainRack
	DomainRoom
	DomainDatacenter
)

// String implements fmt.Stringer.
func (d FailureDomain) String() string {
	switch d {
	case DomainServer:
		return "server"
	case DomainRack:
		return "rack"
	case DomainRoom:
		return "room"
	case DomainDatacenter:
		return "datacenter"
	default:
		return fmt.Sprintf("FailureDomain(%d)", int(d))
	}
}

// ServersInDomain returns every server sharing the anchor server's
// failure domain: itself, its rack, its room, or its whole datacenter.
func (c *Cluster) ServersInDomain(anchor ServerID, domain FailureDomain) ([]ServerID, error) {
	if int(anchor) < 0 || int(anchor) >= len(c.servers) {
		return nil, fmt.Errorf("cluster: anchor server %d out of range", anchor)
	}
	a := c.servers[anchor]
	if domain == DomainServer {
		return []ServerID{anchor}, nil
	}
	var out []ServerID
	for _, s := range c.byDC[a.DC] {
		lbl := c.servers[s].Label
		switch domain {
		case DomainRack:
			if lbl.Room == a.Label.Room && lbl.Rack == a.Label.Rack {
				out = append(out, s)
			}
		case DomainRoom:
			if lbl.Room == a.Label.Room {
				out = append(out, s)
			}
		case DomainDatacenter:
			out = append(out, s)
		default:
			return nil, fmt.Errorf("cluster: unknown failure domain %d", domain)
		}
	}
	return out, nil
}

// FailDomain takes down the anchor server's entire failure domain and
// returns the affected servers plus the partition copies lost.
func (c *Cluster) FailDomain(anchor ServerID, domain FailureDomain) ([]ServerID, int, error) {
	servers, err := c.ServersInDomain(anchor, domain)
	if err != nil {
		return nil, 0, err
	}
	lost := 0
	for _, s := range servers {
		lost += c.FailServer(s)
	}
	return servers, lost, nil
}

// SurvivesDomainFailure reports whether the partition would keep at
// least one copy if the anchor's failure domain went down — the
// geographic-diversity property the §II-A availability levels encode.
func (c *Cluster) SurvivesDomainFailure(partition int, anchor ServerID, domain FailureDomain) (bool, error) {
	servers, err := c.ServersInDomain(anchor, domain)
	if err != nil {
		return false, err
	}
	doomed := make(map[ServerID]bool, len(servers))
	for _, s := range servers {
		doomed[s] = true
	}
	for _, s := range c.ReplicaServers(partition) {
		if !doomed[s] && c.servers[s].alive {
			return true, nil
		}
	}
	return false, nil
}

// MinAvailabilityLevel returns the §II-A availability level of the
// partition's placement: the highest level L such that every pair of
// copies is separated at level ≥ L... more precisely, the level of the
// *best-separated pair*, which is what determines the failures the
// partition can survive. A single-copy partition is Level 1 (no
// protection).
func (c *Cluster) MinAvailabilityLevel(partition int) topology.Level {
	replicas := c.ReplicaServers(partition)
	if len(replicas) < 2 {
		return topology.LevelSameServer
	}
	best := topology.LevelSameServer
	for i := 0; i < len(replicas); i++ {
		for j := i + 1; j < len(replicas); j++ {
			lv := topology.AvailabilityLevel(c.servers[replicas[i]].Label, c.servers[replicas[j]].Label)
			if lv > best {
				best = lv
			}
		}
	}
	return best
}
