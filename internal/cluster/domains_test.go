package cluster

import (
	"testing"

	"repro/internal/topology"
)

func TestDomainString(t *testing.T) {
	for _, d := range []FailureDomain{DomainServer, DomainRack, DomainRoom, DomainDatacenter} {
		if d.String() == "" {
			t.Fatalf("domain %d has empty string", d)
		}
	}
	if FailureDomain(9).String() != "FailureDomain(9)" {
		t.Fatal("unknown domain format")
	}
}

func TestServersInDomainSizes(t *testing.T) {
	c := newTestCluster(t)
	// Paper layout: 1 room × 2 racks × 5 servers per DC.
	srv, err := c.ServersInDomain(0, DomainServer)
	if err != nil || len(srv) != 1 {
		t.Fatalf("server domain = %v, %v", srv, err)
	}
	rack, err := c.ServersInDomain(0, DomainRack)
	if err != nil || len(rack) != 5 {
		t.Fatalf("rack domain = %d servers, %v", len(rack), err)
	}
	room, err := c.ServersInDomain(0, DomainRoom)
	if err != nil || len(room) != 10 {
		t.Fatalf("room domain = %d servers, %v", len(room), err)
	}
	dc, err := c.ServersInDomain(0, DomainDatacenter)
	if err != nil || len(dc) != 10 {
		t.Fatalf("dc domain = %d servers, %v", len(dc), err)
	}
	// All rack members share the anchor's DC.
	for _, s := range rack {
		if c.DCOf(s) != c.DCOf(0) {
			t.Fatal("rack domain crossed DCs")
		}
	}
	if _, err := c.ServersInDomain(ServerID(c.NumServers()), DomainRack); err == nil {
		t.Fatal("out-of-range anchor accepted")
	}
	if _, err := c.ServersInDomain(0, FailureDomain(9)); err == nil {
		t.Fatal("unknown domain accepted")
	}
}

func TestFailDomainRack(t *testing.T) {
	c := newTestCluster(t)
	_ = c.AddReplica(0, 0) // in rack 1 of DC 0
	_ = c.AddReplica(0, 7) // rack 2 of DC 0
	failed, lost, err := c.FailDomain(0, DomainRack)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 5 || lost != 1 {
		t.Fatalf("failed %d servers, lost %d copies", len(failed), lost)
	}
	for _, s := range failed {
		if c.Server(s).Alive() {
			t.Fatalf("server %d survived its rack failure", s)
		}
	}
	if !c.HasReplica(0, 7) {
		t.Fatal("other rack's replica vanished")
	}
}

func TestSurvivesDomainFailure(t *testing.T) {
	c := newTestCluster(t)
	// Copies on servers 0 and 1: same rack.
	_ = c.AddReplica(0, 0)
	_ = c.AddReplica(0, 1)
	ok, err := c.SurvivesDomainFailure(0, 0, DomainServer)
	if err != nil || !ok {
		t.Fatalf("same-rack pair should survive a single-server failure: %v %v", ok, err)
	}
	ok, _ = c.SurvivesDomainFailure(0, 0, DomainRack)
	if ok {
		t.Fatal("same-rack pair cannot survive a rack failure")
	}
	// Add a cross-DC copy: survives even a datacenter loss.
	_ = c.AddReplica(0, 50)
	ok, _ = c.SurvivesDomainFailure(0, 0, DomainDatacenter)
	if !ok {
		t.Fatal("cross-DC copy should survive the anchor DC failure")
	}
}

func TestMinAvailabilityLevel(t *testing.T) {
	c := newTestCluster(t)
	_ = c.AddReplica(0, 0)
	if got := c.MinAvailabilityLevel(0); got != topology.LevelSameServer {
		t.Fatalf("single copy level = %v", got)
	}
	_ = c.AddReplica(0, 1) // same rack
	if got := c.MinAvailabilityLevel(0); got != topology.LevelSameRack {
		t.Fatalf("same-rack pair level = %v", got)
	}
	_ = c.AddReplica(0, 7) // other rack, same room/DC (paper layout: 1 room)
	if got := c.MinAvailabilityLevel(0); got != topology.LevelSameRoom {
		t.Fatalf("cross-rack level = %v", got)
	}
	_ = c.AddReplica(0, 50) // other DC
	if got := c.MinAvailabilityLevel(0); got != topology.LevelCrossDatacenter {
		t.Fatalf("cross-DC level = %v", got)
	}
}
