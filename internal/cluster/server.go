// Package cluster models the physical resources of the simulated cloud:
// servers organised into datacenters/rooms/racks with the storage,
// bandwidth and processing capacities of Table I, the placement of
// partition replicas onto those servers, per-epoch bandwidth budgets for
// replication and migration, and server failure/recovery (§III-G).
package cluster

import (
	"repro/internal/queueing"
	"repro/internal/topology"
)

// ServerID identifies a physical server within a Cluster. IDs are
// dense: 0..NumServers-1.
type ServerID int

// Server is one physical storage host. Fields are set at construction;
// mutable state (storage used, liveness, bandwidth budgets) is managed
// through Cluster methods.
type Server struct {
	ID    ServerID
	DC    topology.DCID
	Label topology.Label

	// StorageCapacity is the server's disk size in bytes (Table I:
	// 10 GB nominal, ±20% heterogeneity).
	StorageCapacity int64
	// ReplicationBW and MigrationBW are the bytes the server may send
	// per epoch for replication (300 MB) and migration (100 MB).
	ReplicationBW int64
	MigrationBW   int64
	// ReplicaCapacity is C_ikl of §II-C: the queries one replica hosted
	// on this server can serve per epoch. Heterogeneous across servers
	// ("for every server, their capacities are different from each
	// other").
	ReplicaCapacity int
	// ProcessLimit is c_i of eq. (18): the server's total concurrent
	// processing slots, used for the blocking-probability model.
	ProcessLimit int

	storageUsed   int64
	alive         bool
	replBWLeft    int64
	migrBWLeft    int64
	observer      *queueing.Observer
	epochArrivals int
	epochServed   int
}

// Alive reports whether the server is currently up.
func (s *Server) Alive() bool { return s.alive }

// StorageUsed returns the bytes currently stored on the server.
func (s *Server) StorageUsed() int64 { return s.storageUsed }

// StorageFrac returns the fraction of the server's disk in use — the
// S_i of condition (19).
func (s *Server) StorageFrac() float64 {
	if s.StorageCapacity == 0 {
		return 1
	}
	return float64(s.storageUsed) / float64(s.StorageCapacity)
}

// Blocking returns the server's current eq. (18) blocking probability
// based on its observed arrival rate and service time.
func (s *Server) Blocking() float64 { return s.observer.Blocking() }

// RecordArrivals notes queries that arrived at (were served or offered
// to) this server during the current epoch; folded into the blocking
// model at EndEpoch.
func (s *Server) RecordArrivals(arrived, served int) {
	if arrived < 0 || served < 0 {
		panic("cluster: negative arrival record")
	}
	s.epochArrivals += arrived
	s.epochServed += served
}
