// Package consistency implements the paper's named future work
// ("plan to focus on the research of consistency maintenance"): an
// asynchronous primary-push replication model layered over the
// placement the RFH (or any other) policy maintains.
//
// Every partition carries a monotonically increasing version at its
// primary; client writes bump it. Replicas lag behind and catch up via
// per-epoch anti-entropy transfers bounded by a per-server
// synchronisation bandwidth, most-stale-first. The model surfaces the
// costs the paper defers: replica staleness, sync traffic, and writes
// lost when a failure promotes a stale replica to primary.
package consistency

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
)

// Tracker maintains per-replica versions for every partition. It is
// not safe for concurrent use; the simulation engine drives it between
// epochs.
type Tracker struct {
	deltaSize int64 // bytes transferred per version caught up
	syncBW    int64 // per-server sync budget, bytes/epoch

	primaryVer []uint64
	primaryOf  []cluster.ServerID // primary observed at last reconcile
	replicaVer []map[cluster.ServerID]uint64

	cumSyncBytes int64
	cumLostWrite uint64
}

// New creates a tracker for the given partition count. deltaSize is
// the bytes one version transfer costs; syncBW the per-server
// anti-entropy budget per epoch.
func New(partitions int, deltaSize, syncBW int64) (*Tracker, error) {
	if partitions <= 0 {
		return nil, fmt.Errorf("consistency: partitions must be positive")
	}
	if deltaSize <= 0 || syncBW <= 0 {
		return nil, fmt.Errorf("consistency: deltaSize and syncBW must be positive")
	}
	t := &Tracker{
		deltaSize:  deltaSize,
		syncBW:     syncBW,
		primaryVer: make([]uint64, partitions),
		primaryOf:  make([]cluster.ServerID, partitions),
		replicaVer: make([]map[cluster.ServerID]uint64, partitions),
	}
	for p := range t.replicaVer {
		t.replicaVer[p] = make(map[cluster.ServerID]uint64)
		t.primaryOf[p] = -1
	}
	return t, nil
}

// ApplyWrites applies client writes at the partition's primary,
// bumping its version.
func (t *Tracker) ApplyWrites(p int, writes int) {
	if writes < 0 {
		panic("consistency: negative writes")
	}
	t.primaryVer[p] += uint64(writes)
}

// PrimaryVersion returns the authoritative version of the partition.
func (t *Tracker) PrimaryVersion(p int) uint64 { return t.primaryVer[p] }

// Staleness returns how many versions the copy on server s lags, or
// the full primary version if s holds no tracked copy.
func (t *Tracker) Staleness(p int, s cluster.ServerID) uint64 {
	v, ok := t.replicaVer[p][s]
	if !ok {
		return t.primaryVer[p]
	}
	return t.primaryVer[p] - v
}

// LostWrites returns the cumulative number of versions lost to stale
// primary promotions.
func (t *Tracker) LostWrites() uint64 { return t.cumLostWrite }

// SyncBytes returns the cumulative anti-entropy traffic in bytes.
func (t *Tracker) SyncBytes() int64 { return t.cumSyncBytes }

// Reconcile aligns the tracker with the cluster's current placement:
//
//   - copies that appeared since the last reconcile enter at the
//     primary's current version (a replication/migration physically
//     transfers the partition as-is);
//   - copies that vanished are dropped;
//   - if the primary changed, the new primary's replica version becomes
//     authoritative — any versions the old primary had not yet pushed
//     are lost and counted (the realistic price of asynchronous
//     replication under failure).
//
// Call once per epoch after the policy's decision has been applied.
func (t *Tracker) Reconcile(cl *cluster.Cluster) {
	for p := 0; p < len(t.replicaVer); p++ {
		primary := cl.Primary(p)
		if primary < 0 {
			// Partition currently lost; versions reset when re-seeded.
			t.replicaVer[p] = make(map[cluster.ServerID]uint64)
			t.primaryOf[p] = -1
			continue
		}
		if t.primaryOf[p] >= 0 && t.primaryOf[p] != primary {
			if _, stillHosted := t.replicaVer[p][t.primaryOf[p]]; !stillHosted || !cl.HasReplica(p, t.primaryOf[p]) {
				// Promotion after the old primary vanished: roll back to
				// the survivor's version.
				if v, ok := t.replicaVer[p][primary]; ok && v < t.primaryVer[p] {
					t.cumLostWrite += t.primaryVer[p] - v
					t.primaryVer[p] = v
				}
			}
		}
		t.primaryOf[p] = primary

		current := make(map[cluster.ServerID]bool)
		for _, s := range cl.ReplicaServers(p) {
			current[s] = true
			if _, ok := t.replicaVer[p][s]; !ok {
				// Fresh copy: transferred at the primary's current state.
				t.replicaVer[p][s] = t.primaryVer[p]
			}
		}
		for s := range t.replicaVer[p] {
			if !current[s] {
				delete(t.replicaVer[p], s)
			}
		}
		// The primary is always current by definition.
		t.replicaVer[p][primary] = t.primaryVer[p]
	}
}

// SyncStats summarises one anti-entropy epoch.
type SyncStats struct {
	// BytesTransferred is the sync traffic this epoch.
	BytesTransferred int64
	// MeanStaleness and MaxStaleness describe post-sync replica lag in
	// versions (over non-primary copies; 0 when none exist).
	MeanStaleness float64
	MaxStaleness  uint64
	// StaleReplicaFrac is the fraction of non-primary copies lagging at
	// least one version after sync.
	StaleReplicaFrac float64
}

// SyncEpoch runs one round of anti-entropy: every server spends up to
// its sync budget pulling the most-stale partitions it hosts first
// (deterministic tie-break by partition id). Returns post-sync
// statistics.
func (t *Tracker) SyncEpoch(cl *cluster.Cluster) SyncStats {
	// Gather per-server work lists.
	type lagging struct {
		p   int
		lag uint64
	}
	perServer := make(map[cluster.ServerID][]lagging)
	for p := 0; p < len(t.replicaVer); p++ {
		for s, v := range t.replicaVer[p] {
			if s == t.primaryOf[p] {
				// The primary applies writes locally; it never pulls.
				continue
			}
			if lag := t.primaryVer[p] - v; lag > 0 {
				perServer[s] = append(perServer[s], lagging{p, lag})
			}
		}
	}
	servers := make([]cluster.ServerID, 0, len(perServer))
	for s := range perServer {
		servers = append(servers, s)
	}
	sort.Slice(servers, func(i, j int) bool { return servers[i] < servers[j] })

	var stats SyncStats
	for _, s := range servers {
		if !cl.Server(s).Alive() {
			continue
		}
		work := perServer[s]
		sort.Slice(work, func(i, j int) bool {
			if work[i].lag != work[j].lag {
				return work[i].lag > work[j].lag
			}
			return work[i].p < work[j].p
		})
		budget := t.syncBW / t.deltaSize // versions this server may pull
		for _, w := range work {
			if budget == 0 {
				break
			}
			pull := w.lag
			if uint64(budget) < pull {
				pull = uint64(budget)
			}
			t.replicaVer[w.p][s] += pull
			budget -= int64(pull)
			bytes := int64(pull) * t.deltaSize
			stats.BytesTransferred += bytes
			t.cumSyncBytes += bytes
		}
	}

	// Post-sync staleness over non-primary copies.
	var sum float64
	var count, stale int
	for p := 0; p < len(t.replicaVer); p++ {
		for s, v := range t.replicaVer[p] {
			if s == t.primaryOf[p] {
				continue
			}
			lag := t.primaryVer[p] - v
			sum += float64(lag)
			count++
			if lag > 0 {
				stale++
			}
			if lag > stats.MaxStaleness {
				stats.MaxStaleness = lag
			}
		}
	}
	if count > 0 {
		stats.MeanStaleness = sum / float64(count)
		stats.StaleReplicaFrac = float64(stale) / float64(count)
	}
	return stats
}
