package consistency

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/topology"
)

func newCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	spec := cluster.DefaultSpec()
	spec.Partitions = 4
	cl, err := cluster.New(topology.PaperWorld(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func newTracker(t *testing.T) *Tracker {
	t.Helper()
	tr, err := New(4, 1<<10, 8<<10) // 1 KB per version, 8 versions/epoch budget
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 1); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := New(4, 0, 1); err == nil {
		t.Fatal("zero delta size accepted")
	}
	if _, err := New(4, 1, 0); err == nil {
		t.Fatal("zero sync bandwidth accepted")
	}
}

func TestWritesBumpPrimaryVersion(t *testing.T) {
	tr := newTracker(t)
	tr.ApplyWrites(0, 5)
	tr.ApplyWrites(0, 3)
	if got := tr.PrimaryVersion(0); got != 8 {
		t.Fatalf("version = %d", got)
	}
	if tr.PrimaryVersion(1) != 0 {
		t.Fatal("writes leaked across partitions")
	}
}

func TestApplyWritesPanicsOnNegative(t *testing.T) {
	tr := newTracker(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative writes accepted")
		}
	}()
	tr.ApplyWrites(0, -1)
}

func TestReconcileFreshCopiesEnterCurrent(t *testing.T) {
	cl := newCluster(t)
	tr := newTracker(t)
	_ = cl.AddReplica(0, 1)
	tr.ApplyWrites(0, 10)
	tr.Reconcile(cl)
	if got := tr.Staleness(0, 1); got != 0 {
		t.Fatalf("fresh primary staleness = %d", got)
	}
	// A replica added later also enters at the current version.
	_ = cl.AddReplica(0, 50)
	tr.Reconcile(cl)
	if got := tr.Staleness(0, 50); got != 0 {
		t.Fatalf("fresh replica staleness = %d", got)
	}
	// Subsequent writes open a lag for the replica but not the primary.
	tr.ApplyWrites(0, 4)
	tr.Reconcile(cl)
	if got := tr.Staleness(0, 50); got != 4 {
		t.Fatalf("replica staleness = %d, want 4", got)
	}
	if got := tr.Staleness(0, 1); got != 0 {
		t.Fatalf("primary staleness = %d", got)
	}
}

func TestStalenessOfUntrackedServer(t *testing.T) {
	tr := newTracker(t)
	tr.ApplyWrites(0, 7)
	if got := tr.Staleness(0, 99); got != 7 {
		t.Fatalf("untracked staleness = %d, want full version", got)
	}
}

func TestSyncCatchesUpWithinBudget(t *testing.T) {
	cl := newCluster(t)
	tr := newTracker(t) // 8 versions per server per epoch
	_ = cl.AddReplica(0, 1)
	_ = cl.AddReplica(0, 50)
	tr.Reconcile(cl)
	tr.ApplyWrites(0, 20)
	tr.Reconcile(cl)
	stats := tr.SyncEpoch(cl)
	if got := tr.Staleness(0, 50); got != 12 {
		t.Fatalf("post-sync staleness = %d, want 20-8", got)
	}
	if stats.BytesTransferred != 8<<10 {
		t.Fatalf("bytes = %d", stats.BytesTransferred)
	}
	if stats.MaxStaleness != 12 || stats.StaleReplicaFrac != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// Two more epochs drain the lag.
	tr.SyncEpoch(cl)
	stats = tr.SyncEpoch(cl)
	if got := tr.Staleness(0, 50); got != 0 {
		t.Fatalf("staleness after 3 syncs = %d", got)
	}
	if stats.MeanStaleness != 0 || stats.StaleReplicaFrac != 0 {
		t.Fatalf("final stats = %+v", stats)
	}
}

func TestSyncBudgetSharedMostStaleFirst(t *testing.T) {
	cl := newCluster(t)
	tr := newTracker(t)
	// Server 50 hosts replicas of two partitions with different lags.
	_ = cl.AddReplica(0, 1)
	_ = cl.AddReplica(1, 2)
	_ = cl.AddReplica(0, 50)
	_ = cl.AddReplica(1, 50)
	tr.Reconcile(cl)
	tr.ApplyWrites(0, 6) // partition 0 lags 6
	tr.ApplyWrites(1, 4) // partition 1 lags 4
	tr.Reconcile(cl)
	tr.SyncEpoch(cl) // budget 8: pulls 6 for p0, then 2 of p1's 4
	if got := tr.Staleness(0, 50); got != 0 {
		t.Fatalf("most-stale partition not drained first: %d", got)
	}
	if got := tr.Staleness(1, 50); got != 2 {
		t.Fatalf("second partition staleness = %d, want 2", got)
	}
}

func TestPromotionLosesUnsyncedWrites(t *testing.T) {
	cl := newCluster(t)
	tr := newTracker(t)
	_ = cl.AddReplica(0, 1)  // primary
	_ = cl.AddReplica(0, 50) // replica
	tr.Reconcile(cl)
	tr.ApplyWrites(0, 30) // replica never catches up before the crash
	tr.Reconcile(cl)
	cl.FailServer(1) // promotion: server 50 takes over at version 0
	tr.Reconcile(cl)
	if got := tr.PrimaryVersion(0); got != 0 {
		t.Fatalf("promoted version = %d, want rollback to 0", got)
	}
	if got := tr.LostWrites(); got != 30 {
		t.Fatalf("lost writes = %d, want 30", got)
	}
}

func TestPromotionAfterSyncLosesNothing(t *testing.T) {
	cl := newCluster(t)
	tr := newTracker(t)
	_ = cl.AddReplica(0, 1)
	_ = cl.AddReplica(0, 50)
	tr.Reconcile(cl)
	tr.ApplyWrites(0, 5)
	tr.Reconcile(cl)
	tr.SyncEpoch(cl) // 5 ≤ budget 8: replica fully caught up
	cl.FailServer(1)
	tr.Reconcile(cl)
	if got := tr.LostWrites(); got != 0 {
		t.Fatalf("lost writes = %d after full sync", got)
	}
	if got := tr.PrimaryVersion(0); got != 5 {
		t.Fatalf("version after clean promotion = %d", got)
	}
}

func TestReconcileDropsVanishedCopies(t *testing.T) {
	cl := newCluster(t)
	tr := newTracker(t)
	_ = cl.AddReplica(0, 1)
	_ = cl.AddReplica(0, 50)
	tr.Reconcile(cl)
	_ = cl.RemoveReplica(0, 50)
	tr.ApplyWrites(0, 3)
	tr.Reconcile(cl)
	stats := tr.SyncEpoch(cl)
	if stats.BytesTransferred != 0 {
		t.Fatalf("synced a removed replica: %+v", stats)
	}
}

func TestDeadServerDoesNotSync(t *testing.T) {
	cl := newCluster(t)
	tr := newTracker(t)
	_ = cl.AddReplica(0, 1)
	_ = cl.AddReplica(0, 50)
	tr.Reconcile(cl)
	tr.ApplyWrites(0, 10)
	// No reconcile after the failure: the tracker still carries server
	// 50, but SyncEpoch must skip it because it is down.
	cl.FailServer(50)
	stats := tr.SyncEpoch(cl)
	if stats.BytesTransferred != 0 {
		t.Fatalf("dead server pulled %d bytes", stats.BytesTransferred)
	}
}

func TestVersionsNeverExceedPrimary(t *testing.T) {
	check := func(writes [6]uint8) bool {
		cl, err := cluster.New(topology.PaperWorld(), func() cluster.Spec {
			s := cluster.DefaultSpec()
			s.Partitions = 2
			return s
		}())
		if err != nil {
			return false
		}
		tr, err := New(2, 1<<10, 4<<10)
		if err != nil {
			return false
		}
		_ = cl.AddReplica(0, 1)
		_ = cl.AddReplica(0, 30)
		_ = cl.AddReplica(1, 2)
		_ = cl.AddReplica(1, 60)
		tr.Reconcile(cl)
		for _, w := range writes {
			tr.ApplyWrites(0, int(w)%16)
			tr.ApplyWrites(1, int(w)%7)
			tr.Reconcile(cl)
			tr.SyncEpoch(cl)
			for p := 0; p < 2; p++ {
				for _, s := range cl.ReplicaServers(p) {
					if tr.Staleness(p, s) > tr.PrimaryVersion(p) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
