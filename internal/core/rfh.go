// Package core implements the paper's primary contribution: the RFH
// (Resilient, Fault-tolerant, High-efficient) replication policy — the
// traffic-oriented decision tree of Fig. 2 that drives per-virtual-node
// replicate / migrate / suicide decisions. The comparison baselines
// live in internal/policy; the shared policy.Policy contract and policy.Context come
// from there too.
package core

import (
	"repro/internal/availability"
	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/topology"
)

// RFH is the paper's contribution: the traffic-oriented decision tree
// of Fig. 2. Each epoch, for every partition:
//
//  1. If the eq. (14) availability lower limit is not met, replicate to
//     the most-forwarding datacenter "even if all the nodes are not
//     overloaded".
//  2. Otherwise, if the holder is overloaded (eq. 12), take the top
//     traffic hubs (eq. 13, paper fixes 3). If the best hub without a
//     replica can be fed by migrating a replica stranded outside the
//     hub set — and the eq. (16) benefit threshold holds — migrate;
//     otherwise replicate a fresh copy onto the hub.
//  3. A non-primary replica whose datacenter traffic fell below the
//     eq. (15) δ threshold commits suicide, provided availability still
//     holds without it.
//
// Within the chosen datacenter, the physical server with the lowest
// eq. (18) blocking probability that satisfies the φ storage condition
// (19) is selected.
type RFH struct{}

var _ policy.Policy = (*RFH)(nil)

// NewRFH returns the RFH policy.
func NewRFH() *RFH { return &RFH{} }

// Name implements policy.Policy.
func (*RFH) Name() string { return "rfh" }

// Decide implements policy.Policy.
func (r *RFH) Decide(ctx *policy.Context) policy.Decision {
	var d policy.Decision
	for p := 0; p < ctx.Cluster.NumPartitions(); p++ {
		primary := ctx.Cluster.Primary(p)
		if primary < 0 {
			continue
		}
		hosted := policy.ReplicaDCs(ctx, p)

		// Branch 1 of Fig. 2: availability below the lower limit forces
		// replication onto the most-forwarding datacenter.
		if ctx.Cluster.ReplicaCount(p) < ctx.MinReplicas {
			if rep, ok := r.replicateToMostForwarding(ctx, p, primary, hosted); ok {
				d.Replications = append(d.Replications, rep)
			}
			continue
		}

		structural := false
		// Branch 2: holder overloaded → replicate or migrate to a hub.
		if policy.HolderIsOverloaded(ctx, p, primary) || policy.CapacityShort(ctx, p) {
			if rep, mig, ok := r.hubAction(ctx, p, primary, hosted); ok {
				if mig != nil {
					d.Migrations = append(d.Migrations, *mig)
				} else {
					d.Replications = append(d.Replications, *rep)
				}
				structural = true
			} else if policy.CapacityShort(ctx, p) {
				// Fig. 2: "If the minimum availability is reached, but
				// there's still too much traffic, it will force the
				// scheme to start relieving load" — when no hub action
				// is available and queries are genuinely going unserved
				// (aggregate capacity short of demand), fall back to the
				// most-forwarding datacenter regardless of the γ
				// threshold.
				if rep, ok := r.replicateToMostForwarding(ctx, p, primary, hosted); ok {
					d.Replications = append(d.Replications, rep)
					structural = true
				}
			}
		}

		// Branch 3: cold replicas suicide (at most one per partition per
		// epoch, never alongside a structural action on the same
		// partition — the decision tree picks one branch per epoch).
		if !structural {
			if sui, ok := r.suicideFor(ctx, p, primary); ok {
				d.Suicides = append(d.Suicides, sui)
			}
		}
	}
	return d
}

// replicateToMostForwarding places a copy on the datacenter with the
// highest smoothed traffic that has a hostable server, regardless of
// hub thresholds. Datacenters that already host a copy stay in the
// ranking — when the holder's own region generates the overflow, a
// second server in the same datacenter (chosen by lowest blocking
// probability, eq. 18) is exactly what relieves it.
func (r *RFH) replicateToMostForwarding(ctx *policy.Context, p int, primary cluster.ServerID, hosted map[topology.DCID]bool) (policy.Replication, bool) {
	_ = hosted
	n := ctx.Router.World().NumDCs()
	type cand struct {
		dc topology.DCID
		tr float64
	}
	cands := make([]cand, 0, n)
	for dc := 0; dc < n; dc++ {
		cands = append(cands, cand{topology.DCID(dc), ctx.Tracker.Traffic(p, topology.DCID(dc))})
	}
	// Selection sort over at most NumDCs entries: descending traffic,
	// ascending id on ties.
	for i := 0; i < len(cands); i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].tr > cands[best].tr || (cands[j].tr == cands[best].tr && cands[j].dc < cands[best].dc) {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
		if s, ok := policy.PickLowestBlocking(ctx, p, cands[i].dc); ok {
			return policy.Replication{Partition: p, Source: primary, Target: s}, true
		}
	}
	return policy.Replication{}, false
}

// hubAction implements the overloaded-holder branch: pick the best
// top-K hub lacking a replica; prefer migrating a stranded replica when
// eq. (16) says the benefit is large enough, else replicate.
func (r *RFH) hubAction(ctx *policy.Context, p int, primary cluster.ServerID, hosted map[topology.DCID]bool) (*policy.Replication, *policy.Migration, bool) {
	holderDC := ctx.Cluster.DCOf(primary)
	exclude := map[topology.DCID]bool{holderDC: true}
	hubs := ctx.Tracker.TopHubs(p, ctx.HubCandidates, exclude)
	if len(hubs) == 0 {
		return nil, nil, false
	}
	hubSet := make(map[topology.DCID]bool, len(hubs))
	for _, h := range hubs {
		hubSet[h.DC] = true
	}
	var chosen topology.DCID = -1
	for _, h := range hubs {
		if !hosted[h.DC] {
			chosen = h.DC
			break
		}
	}
	if chosen < 0 {
		// All top hubs already replicated: nothing to do this epoch.
		return nil, nil, false
	}
	target, ok := policy.PickLowestBlocking(ctx, p, chosen)
	if !ok {
		return nil, nil, false
	}
	// policy.Migration check (eq. 16): a non-primary replica outside the hub
	// set whose traffic lags the hub by at least μ·t̄r moves instead of
	// paying for a fresh copy.
	for _, s := range ctx.Cluster.ReplicaServers(p) {
		if s == primary {
			continue
		}
		dc := ctx.Cluster.DCOf(s)
		if hubSet[dc] || dc == holderDC {
			continue
		}
		if ctx.Tracker.MigrationBeneficial(p, dc, chosen) {
			return nil, &policy.Migration{Partition: p, From: s, To: target}, true
		}
	}
	return &policy.Replication{Partition: p, Source: primary, Target: target}, nil, true
}

// suicideFor returns the first cold, safely removable replica of the
// partition, if any.
func (r *RFH) suicideFor(ctx *policy.Context, p int, primary cluster.ServerID) (policy.Suicide, bool) {
	count := ctx.Cluster.ReplicaCount(p)
	if count <= ctx.MinReplicas {
		return policy.Suicide{}, false
	}
	// Guard against suicide/replicate oscillation: removing a copy must
	// not push the survivors straight back over the β threshold.
	if ctx.Tracker.PressureAfterRemoval(p, count) >= ctx.Tracker.OverloadThreshold(p) {
		return policy.Suicide{}, false
	}
	for _, s := range ctx.Cluster.ReplicaServers(p) {
		if s == primary {
			continue
		}
		if !ctx.Tracker.IsCold(p, ctx.Cluster.DCOf(s)) {
			continue
		}
		// §II-E: "It will calculate the availability without itself. If
		// the minimum availability is still satisfied without it, it
		// will commit suicide."
		if availability.MeetsWithout(count, ctx.FailureRate, ctx.MinAvailability) {
			return policy.Suicide{Partition: p, Server: s}, true
		}
	}
	return policy.Suicide{}, false
}
