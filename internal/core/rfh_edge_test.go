package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/ring"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// newSpecFixture is newFixture with a spec mutation hook, for edge
// cases that need non-default storage geometry.
func newSpecFixture(t *testing.T, mutate func(*cluster.Spec)) *fixture {
	t.Helper()
	w := topology.PaperWorld()
	rt, err := network.NewRouter(w)
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.DefaultSpec()
	spec.Partitions = 4
	if mutate != nil {
		mutate(&spec)
	}
	cl, err := cluster.New(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.NewTracker(spec.Partitions, w.NumDCs(), traffic.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	rg := ring.New()
	for i := 0; i < cl.NumServers(); i++ {
		if err := rg.AddServer(i, 8); err != nil {
			t.Fatal(err)
		}
	}
	return &fixture{t: t, cluster: cl, tracker: tr, router: rt, ring: rg, world: w}
}

// TestRFHDecideEdgeCases pins Decide's behaviour at the boundaries of
// the Fig. 2 decision tree: epochs with no traffic at all, hub
// datacenters with no storage headroom (condition 19), suicide refusal
// at the eq. (14) availability floor, and the eq. (16) migration
// benefit exactly at the μ·t̄r threshold.
func TestRFHDecideEdgeCases(t *testing.T) {
	// The PaperWorld has 10 datacenters, so first-epoch (unsmoothed)
	// thresholds are exact: q̄ = total/10, hub bar γ·q̄, mean traffic
	// t̄r = Σtraffic/10.
	cases := []struct {
		name  string
		build func(t *testing.T) (*fixture, *policy.Context)
		check func(t *testing.T, f *fixture, dec policy.Decision)
	}{
		{
			// An epoch in which no query arrived anywhere: every
			// threshold denominator (q̄, t̄r) is zero. Decide must stay
			// idle — no division blow-ups, no structural action, and no
			// suicide either: with q̄ = 0 the oscillation guard sees
			// pressure 0 ≥ threshold 0 and holds even excess replicas.
			name: "zero-traffic epoch is fully idle",
			build: func(t *testing.T) (*fixture, *policy.Context) {
				f := newFixture(t)
				f.place(0, "A", 0)
				f.place(0, "B", 0)
				f.place(0, "G", 0) // one above MinReplicas 2
				f.observe(0, "A", nil, nil, 0, 0)
				return f, f.ctx(0)
			},
			check: func(t *testing.T, f *fixture, dec policy.Decision) {
				if !dec.Empty() {
					t.Fatalf("zero-traffic epoch produced actions: %+v", dec)
				}
			},
		},
		{
			// The holder is overloaded and D is the only hub, but every
			// D server already sits at the φ storage limit: condition
			// (19) must veto the placement and, with nothing unserved,
			// the epoch ends with no action at all rather than a copy
			// squeezed onto a full server.
			name: "all hubs storage-full refuses placement",
			build: func(t *testing.T) (*fixture, *policy.Context) {
				f := newSpecFixture(t, func(sp *cluster.Spec) {
					// One partition per server: a second copy would hit
					// (512K+512K)/1M = 1.0 > φ = 0.7.
					sp.Partitions = 16
					sp.StorageCapacity = 2 * sp.PartitionSize
					sp.StorageJitter = 0
				})
				f.place(0, "A", 0)
				f.place(0, "B", 0)
				for i, s := range f.cluster.ServersInDC(f.dc("D")) {
					if err := f.cluster.AddReplica(1+i, s); err != nil {
						t.Fatal(err)
					}
				}
				f.observe(0, "A",
					map[string]int{"A": 300, "D": 200},
					map[string]int{"A": 250, "B": 50}, 0, 300)
				return f, f.ctx(0)
			},
			check: func(t *testing.T, f *fixture, dec policy.Decision) {
				for _, r := range dec.Replications {
					if r.Partition == 0 {
						t.Fatalf("replicated onto a full hub: %+v", r)
					}
				}
				for _, m := range dec.Migrations {
					if m.Partition == 0 {
						t.Fatalf("migrated onto a full hub: %+v", m)
					}
				}
			},
		},
		{
			// A partition holding exactly its availability floor — here
			// MinReplicas 1, a single (primary) copy — must never lose
			// that copy to the suicide branch no matter how cold it is.
			name: "single replica refuses suicide at eq. 14 floor",
			build: func(t *testing.T) (*fixture, *policy.Context) {
				f := newFixture(t)
				f.place(0, "G", 0)
				f.observe(0, "G",
					map[string]int{"A": 30, "B": 25, "G": 1},
					map[string]int{"G": 56}, 0, 56)
				ctx := f.ctx(0)
				ctx.MinReplicas = 1
				return f, ctx
			},
			check: func(t *testing.T, f *fixture, dec policy.Decision) {
				if len(dec.Suicides) != 0 {
					t.Fatalf("suicided the only copy: %+v", dec.Suicides)
				}
			},
		},
		{
			// Replica count above MinReplicas but the recomputed eq. (14)
			// availability without the victim falls short (0.99 < 0.999):
			// the §II-E self-check must refuse even a stone-cold replica.
			name: "cold replica refuses suicide when eq. 14 fails without it",
			build: func(t *testing.T) (*fixture, *policy.Context) {
				f := newFixture(t)
				f.place(0, "A", 0)
				f.place(0, "B", 0)
				f.place(0, "G", 0) // cold victim
				f.observe(0, "A",
					map[string]int{"A": 30, "B": 20, "G": 1},
					map[string]int{"A": 30, "B": 20, "G": 1}, 0, 300)
				ctx := f.ctx(0)
				ctx.MinAvailability = 0.999 // two copies at f=0.1 give 0.99
				return f, ctx
			},
			check: func(t *testing.T, f *fixture, dec policy.Decision) {
				if len(dec.Suicides) != 0 {
					t.Fatalf("suicide violated eq. 14: %+v", dec.Suicides)
				}
			},
		},
		{
			// Eq. (16) at exact equality: traffic A=1250, D=200, G=50
			// puts the benefit at 200−50 = 150 = μ·t̄r = (1250+200+50)/10
			// (every quantity exactly representable in float64). The
			// condition is ≥, so the stranded G replica must migrate to
			// hub D rather than pay for a fresh copy. Total 400 keeps the
			// hub bar γ·q̄ = 60 above G's 50, so G itself is no hub.
			name: "migration fires exactly at the benefit boundary",
			build: func(t *testing.T) (*fixture, *policy.Context) {
				f := newFixture(t)
				f.place(0, "A", 0)
				f.place(0, "G", 0)
				f.observe(0, "A",
					map[string]int{"A": 1250, "D": 200, "G": 50},
					map[string]int{"A": 280, "G": 20}, 0, 400)
				return f, f.ctx(0)
			},
			check: func(t *testing.T, f *fixture, dec policy.Decision) {
				if len(dec.Migrations) != 1 || len(dec.Replications) != 0 {
					t.Fatalf("want exactly one migration at the boundary, got %+v", dec)
				}
				if got := f.world.DC(f.cluster.DCOf(dec.Migrations[0].To)).Name; got != "D" {
					t.Fatalf("migrated to %s, want hub D", got)
				}
			},
		},
		{
			// One query below the boundary (G=51 shrinks the benefit to
			// 149 while raising t̄r past 150): the migration must be
			// refused and RFH replicates onto the hub instead.
			name: "migration refused just below the benefit boundary",
			build: func(t *testing.T) (*fixture, *policy.Context) {
				f := newFixture(t)
				f.place(0, "A", 0)
				f.place(0, "G", 0)
				f.observe(0, "A",
					map[string]int{"A": 1250, "D": 200, "G": 51},
					map[string]int{"A": 280, "G": 20}, 0, 400)
				return f, f.ctx(0)
			},
			check: func(t *testing.T, f *fixture, dec policy.Decision) {
				if len(dec.Migrations) != 0 {
					t.Fatalf("migrated below the benefit boundary: %+v", dec.Migrations)
				}
				if len(dec.Replications) != 1 {
					t.Fatalf("want a replication instead, got %+v", dec)
				}
				if got := f.world.DC(f.cluster.DCOf(dec.Replications[0].Target)).Name; got != "D" {
					t.Fatalf("replicated to %s, want hub D", got)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, ctx := tc.build(t)
			tc.check(t, f, NewRFH().Decide(ctx))
		})
	}
}

// TestRFHZeroTrafficNeverStarted covers the pre-first-observation
// state: a tracker that has never seen an epoch must behave like the
// zero-traffic epoch (no actions, no panics).
func TestRFHZeroTrafficNeverStarted(t *testing.T) {
	f := newFixture(t)
	f.place(0, "A", 0)
	f.place(0, "B", 0)
	f.place(0, "G", 0)
	dec := NewRFH().Decide(f.ctx(0))
	if !dec.Empty() {
		t.Fatalf("decide before any observation produced actions: %+v", dec)
	}
}
