package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// fixture mirrors the policy package's test fixture (kept local: the
// helpers there are test-only and unexported).
type fixture struct {
	t       *testing.T
	cluster *cluster.Cluster
	tracker *traffic.Tracker
	router  *network.Router
	ring    *ring.Ring
	world   *topology.World
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := topology.PaperWorld()
	rt, err := network.NewRouter(w)
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.DefaultSpec()
	spec.Partitions = 4
	cl, err := cluster.New(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.NewTracker(spec.Partitions, w.NumDCs(), traffic.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	rg := ring.New()
	for i := 0; i < cl.NumServers(); i++ {
		if err := rg.AddServer(i, 8); err != nil {
			t.Fatal(err)
		}
	}
	return &fixture{t: t, cluster: cl, tracker: tr, router: rt, ring: rg, world: w}
}

func (f *fixture) ctx(epoch int) *policy.Context {
	return &policy.Context{
		Epoch:           epoch,
		Cluster:         f.cluster,
		Tracker:         f.tracker,
		Router:          f.router,
		Ring:            f.ring,
		Demand:          workload.NewMatrix(f.cluster.NumPartitions(), f.world.NumDCs()),
		FailureRate:     0.1,
		MinAvailability: 0.8,
		MinReplicas:     2,
		HubCandidates:   3,
		RNG:             stats.NewRNG(uint64(epoch) + 7),
	}
}

func (f *fixture) dc(name string) topology.DCID {
	f.t.Helper()
	d, ok := f.world.DCByName(name)
	if !ok {
		f.t.Fatalf("no DC %s", name)
	}
	return d.ID
}

func (f *fixture) place(p int, dcName string, i int) cluster.ServerID {
	f.t.Helper()
	s := f.cluster.ServersInDC(f.dc(dcName))[i]
	if err := f.cluster.AddReplica(p, s); err != nil {
		f.t.Fatal(err)
	}
	return s
}

// observe injects one epoch of observations for partition p.
func (f *fixture) observe(p int, holderDC string, trafficByName, servedByName map[string]int, unserved, total int) {
	f.t.Helper()
	n := f.world.NumDCs()
	res := &traffic.ServeResult{
		TrafficByDC:  make([]int, n),
		ServedByDC:   make([]int, n),
		Unserved:     unserved,
		TotalQueries: total,
	}
	for name, v := range trafficByName {
		res.TrafficByDC[f.dc(name)] = v
	}
	for name, v := range servedByName {
		res.ServedByDC[f.dc(name)] = v
	}
	f.tracker.BeginEpoch()
	f.tracker.Observe(p, f.dc(holderDC), res)
	f.tracker.EndEpoch()
}

func TestRFHName(t *testing.T) {
	if NewRFH().Name() != "rfh" {
		t.Fatalf("name = %s", NewRFH().Name())
	}
}

func TestRFHAvailabilityBranchReplicatesToMostForwarding(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	f.place(0, "A", 0) // one copy < MinReplicas 2
	// No overload at all, but heavy forwarding traffic at D: the
	// availability branch must replicate there "even if all the nodes
	// are not overloaded".
	f.observe(0, "A", map[string]int{"A": 10, "D": 40}, map[string]int{"A": 10}, 0, 10)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Replications) != 1 {
		t.Fatalf("replications = %v", dec.Replications)
	}
	if got := f.world.DC(f.cluster.DCOf(dec.Replications[0].Target)).Name; got != "D" {
		t.Fatalf("availability replica placed in %s, want most-forwarding D", got)
	}
}

func TestRFHReplicatesToTopHubWhenOverloaded(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	f.place(0, "A", 0)
	f.place(0, "B", 0) // availability satisfied
	// Holder pipeline saturated: total load 300 over 2 copies = 150 ≥ 60.
	// D and F are loud hubs (traffic ≥ γ·q̄ = 45). B carries enough
	// traffic itself (150) that the eq. (16) migration benefit against
	// hub D (200−150=50 < μ·t̄r=67) fails, forcing a fresh replication.
	f.observe(0, "A",
		map[string]int{"A": 300, "B": 150, "D": 200, "F": 120},
		map[string]int{"A": 250, "B": 50}, 0, 300)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Replications) != 1 || len(dec.Migrations) != 0 {
		t.Fatalf("decision = %+v", dec)
	}
	if got := f.world.DC(f.cluster.DCOf(dec.Replications[0].Target)).Name; got != "D" {
		t.Fatalf("hub replica placed in %s, want top hub D", got)
	}
}

func TestRFHSkipsHostedHubs(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	f.place(0, "A", 0)
	f.place(0, "D", 0) // top hub already hosted
	f.observe(0, "A",
		map[string]int{"A": 300, "D": 200, "F": 120},
		map[string]int{"A": 230, "D": 70}, 0, 300)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Replications) != 1 {
		t.Fatalf("decision = %+v", dec)
	}
	if got := f.world.DC(f.cluster.DCOf(dec.Replications[0].Target)).Name; got != "F" {
		t.Fatalf("replica placed in %s, want next hub F", got)
	}
}

func TestRFHMigratesStrandedReplicaToHub(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	f.place(0, "A", 0)
	stranded := f.place(0, "G", 0) // far replica off every hub
	// Holder overloaded; D is a loud hub; G's traffic is negligible so
	// eq. (16)'s benefit threshold holds (200 - 2 ≥ mean).
	f.observe(0, "A",
		map[string]int{"A": 300, "D": 200, "G": 2},
		map[string]int{"A": 280, "G": 20}, 0, 300)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Migrations) != 1 {
		t.Fatalf("decision = %+v, want one migration", dec)
	}
	m := dec.Migrations[0]
	if m.From != stranded {
		t.Fatalf("migrated %d, want stranded %d", m.From, stranded)
	}
	if got := f.world.DC(f.cluster.DCOf(m.To)).Name; got != "D" {
		t.Fatalf("migrated to %s, want hub D", got)
	}
	if len(dec.Replications) != 0 {
		t.Fatal("migration and replication for the same partition")
	}
}

func TestRFHMigrationRequiresBenefitThreshold(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	f.place(0, "A", 0)
	f.place(0, "G", 0)
	// G itself carries substantial traffic: eq. (16) benefit too small,
	// so RFH must replicate instead of migrating.
	f.observe(0, "A",
		map[string]int{"A": 300, "D": 200, "G": 190},
		map[string]int{"A": 250, "G": 50}, 0, 300)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Migrations) != 0 {
		t.Fatalf("migrated despite insufficient benefit: %+v", dec.Migrations)
	}
	if len(dec.Replications) != 1 {
		t.Fatalf("expected a replication instead, got %+v", dec)
	}
}

func TestRFHSuicideOfColdReplica(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	f.place(0, "A", 0)
	f.place(0, "B", 0)
	cold := f.place(0, "G", 0)
	// Light, well-served load; G serves almost nothing (1 ≤ δ·q̄ = 6).
	// Three copies > MinReplicas 2, the partition is far from the β
	// threshold, and removal keeps per-copy pressure low.
	f.observe(0, "A",
		map[string]int{"A": 30, "B": 20, "G": 1},
		map[string]int{"A": 30, "B": 20, "G": 1}, 0, 300)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Suicides) != 1 {
		t.Fatalf("decision = %+v, want one suicide", dec)
	}
	if dec.Suicides[0].Server != cold {
		t.Fatalf("suicided %d, want cold replica %d", dec.Suicides[0].Server, cold)
	}
}

func TestRFHNoSuicideAtAvailabilityFloor(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	f.place(0, "A", 0)
	f.place(0, "G", 0) // exactly MinReplicas copies
	f.observe(0, "A",
		map[string]int{"A": 30, "G": 0},
		map[string]int{"A": 30}, 0, 50)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Suicides) != 0 {
		t.Fatalf("suicided at the availability floor: %+v", dec.Suicides)
	}
}

func TestRFHSuicideGuardAgainstOscillation(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	f.place(0, "A", 0)
	f.place(0, "B", 0)
	f.place(0, "G", 0)
	// G is cold, but total load 170 over 2 remaining copies would be 85
	// ≥ β·q̄ = 68: removing it would re-trigger replication, so hold.
	f.observe(0, "A",
		map[string]int{"A": 100, "B": 69, "G": 1},
		map[string]int{"A": 100, "B": 69, "G": 1}, 0, 340)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Suicides) != 0 {
		t.Fatalf("suicide would oscillate: %+v", dec.Suicides)
	}
}

func TestRFHNeverSuicidesPrimary(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	primary := f.place(0, "G", 0) // primary in a cold spot
	f.place(0, "A", 0)
	f.place(0, "B", 0)
	f.observe(0, "G",
		map[string]int{"A": 30, "B": 20, "G": 0},
		map[string]int{"A": 30, "B": 20}, 0, 50)
	dec := pol.Decide(f.ctx(0))
	for _, s := range dec.Suicides {
		if s.Server == primary {
			t.Fatal("RFH suicided the primary")
		}
	}
}

func TestRFHFallbackOnCapacityShortage(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	f.place(0, "A", 0)
	f.place(0, "A", 1) // availability met, all copies in A
	// Overloaded with persistent unserved but NO datacenter above the γ
	// hub threshold (traffic diffuse): the Fig. 2 "force relieving
	// load" fallback must still replicate at the loudest DC.
	f.observe(0, "A",
		map[string]int{"A": 300, "B": 20, "C": 18},
		map[string]int{"A": 140}, 160, 300)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Replications) != 1 {
		t.Fatalf("fallback did not fire: %+v", dec)
	}
	// Loudest DC is A itself (traffic 300) — a third server there.
	if got := f.world.DC(f.cluster.DCOf(dec.Replications[0].Target)).Name; got != "A" {
		t.Fatalf("fallback placed in %s, want A", got)
	}
}

func TestRFHIdleWhenHealthy(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	f.place(0, "A", 0)
	f.place(0, "D", 0)
	// Light load, everything served, nothing cold enough to die given
	// both copies carry weight.
	f.observe(0, "A",
		map[string]int{"A": 30, "D": 25},
		map[string]int{"A": 30, "D": 25}, 0, 100)
	dec := pol.Decide(f.ctx(0))
	if !dec.Empty() {
		t.Fatalf("healthy partition got actions: %+v", dec)
	}
}

func TestRFHSkipsLostPartition(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	// Partition 1 never seeded (primary -1); heavy phantom traffic.
	f.observe(1, "A", map[string]int{"A": 300}, nil, 300, 300)
	dec := pol.Decide(f.ctx(0))
	for _, r := range dec.Replications {
		if r.Partition == 1 {
			t.Fatal("acted on a lost partition")
		}
	}
}

func TestRFHChoosesLowestBlockingServerInHubDC(t *testing.T) {
	f := newFixture(t)
	pol := NewRFH()
	f.place(0, "A", 0)
	f.place(0, "B", 0)
	// Make the first two servers of D look saturated so the policy must
	// pick a quieter one.
	dServers := f.cluster.ServersInDC(f.dc("D"))
	f.cluster.BeginEpoch()
	f.cluster.Server(dServers[0]).RecordArrivals(500, 500)
	f.cluster.Server(dServers[1]).RecordArrivals(500, 500)
	f.cluster.EndEpoch()
	f.observe(0, "A",
		map[string]int{"A": 300, "B": 150, "D": 200},
		map[string]int{"A": 250, "B": 50}, 0, 300)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Replications) != 1 {
		t.Fatalf("decision = %+v", dec)
	}
	target := dec.Replications[0].Target
	if target == dServers[0] || target == dServers[1] {
		t.Fatalf("picked saturated server %d", target)
	}
	if f.cluster.DCOf(target) != f.dc("D") {
		t.Fatal("not in hub DC at all")
	}
}
