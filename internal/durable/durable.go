// Package durable is the node's disk persistence engine: one
// write-ahead log per partition, periodically folded into a snapshot
// file and truncated (compaction). The engine records every data-plane
// mutation the node acks — value installs, version-watermark raises,
// drops, reseeds, residency grants and inbound transfer cursors — and
// recovery replays snapshot + WAL back into exactly the state the last
// acked append described: the same entry{val,ver} records, the same
// maxVer watermark, the same residency flag, the same in-flight
// transfer sessions. PutQuorum's "ack #1 = durable local apply"
// contract is honest precisely because the ack paths append here
// before they mutate the in-memory store.
//
// Physical syncing hides behind the Syncer interface, the same
// pattern as node.Clock: live deployments run OSSync (fsync after
// every append and around compaction renames), while deterministic
// harnesses run NoSync and rely on the OS page cache — crash
// *simulation* closes file handles without killing the process, so
// unsynced pages survive exactly like a process crash on real
// hardware.
//
// The package obeys the determinism contract (rfhlint allowlist): no
// wall clock, no unseeded randomness, and every map iteration happens
// behind a sort.
package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Syncer is the physical-durability knob: it is invoked with every
// file whose contents must survive a machine crash before the engine
// reports an append or compaction as durable. It mirrors node.Clock —
// the one OS effect the deterministic harnesses must be able to stub.
type Syncer interface {
	Sync(f *os.File) error
}

// OSSync fsyncs for real — the live-deployment Syncer.
type OSSync struct{}

// Sync flushes f's dirty pages to stable storage.
func (OSSync) Sync(f *os.File) error { return f.Sync() }

// NoSync skips fsync: writes still land in the OS page cache, so data
// survives process crashes (which is all the chaos harness simulates)
// but not machine crashes. Simulation mode.
type NoSync struct{}

// Sync does nothing.
func (NoSync) Sync(f *os.File) error { return nil }

// Options configures an Engine.
type Options struct {
	// Dir is the node's data directory; the engine owns it exclusively.
	Dir string
	// Partitions is the partition count; must match the node config.
	Partitions int
	// Sync is the physical-durability policy (nil means NoSync).
	Sync Syncer
	// CompactEvery folds the WAL into a snapshot once a partition has
	// accumulated that many records (0 normalises to 1024).
	CompactEvery int
}

// Entry is one recovered key/value record.
type Entry struct {
	Key string
	Ver uint64
	Val []byte
}

// Session is one inbound transfer session's persisted resume state:
// the next chunk index the target expects, out of Total, and whether
// completing the session should mark the partition resident.
type Session struct {
	ID           uint64
	Next         uint32
	Total        uint32
	MarkResident bool
}

// PartitionState is everything recovery restored for one partition.
type PartitionState struct {
	Entries  []Entry // ascending key order
	MaxVer   uint64
	Resident bool
	Sessions []Session // inbound transfer cursors, arrival order
	Done     []uint64  // recently completed inbound session ids
}

// PartitionStats is the per-partition introspection surfaced in dumps.
type PartitionStats struct {
	WALRecords  int // records appended since the last compaction
	Compactions int // compactions since open
}

// maxSessions bounds the persisted inbound-session list per partition;
// the oldest session is evicted when a newer one needs the slot. It
// must match the store's runtime bound so recovery restores the same
// set the shard was tracking.
const maxSessions = 4

// maxDone bounds the completed-session-id memory that keeps replayed
// transfer-begins idempotent.
const maxDone = 8

type mirrorEntry struct {
	ver uint64
	val []byte
}

// engPart is one partition's engine state: the open WAL handle plus an
// in-memory mirror of the durable state. The mirror is what recovery
// produced (and appends keep it current), so compaction can write a
// snapshot without asking the store — the engine is self-contained and
// testable standalone. Values are shared with the store by reference
// and treated as immutable by both sides.
type engPart struct {
	mu          sync.Mutex
	wal         *os.File
	walRecords  int
	compactions int

	// holds defers compaction while an outbound transfer session still
	// needs the frozen state; pending remembers that the threshold
	// tripped while held.
	holds   int
	pending bool

	data     map[string]mirrorEntry
	maxVer   uint64
	resident bool
	sessions []Session
	done     []uint64
}

// Engine is the durable storage engine. All methods are safe for
// concurrent use; different partitions never contend.
type Engine struct {
	opts  Options
	parts []engPart
	gen   uint64 // boot generation: bumped and persisted once per Open

	emu    sync.Mutex
	err    error // sticky: first IO failure; all later appends refuse
	closed bool
}

// Open creates or recovers an engine over dir: for every partition it
// loads the snapshot (if any), replays the WAL on top — truncating a
// torn final record — and keeps the WAL open for appends. Leftover
// *.tmp files from an interrupted compaction are removed; a snapshot
// is only ever installed by an atomic rename, so a crash between the
// rename and the WAL truncation simply replays the whole WAL over the
// new snapshot, which converges to the same state (every WAL op is a
// blind last-writer-wins set, so re-applying a suffix that the
// snapshot already folded in is a no-op).
func Open(opts Options) (*Engine, error) {
	if opts.Partitions <= 0 {
		return nil, fmt.Errorf("durable: partitions must be positive, got %d", opts.Partitions)
	}
	if opts.Sync == nil {
		opts.Sync = NoSync{}
	}
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 1024
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	e := &Engine{opts: opts, parts: make([]engPart, opts.Partitions)}
	if err := e.bumpGeneration(); err != nil {
		return nil, err
	}
	for p := range e.parts {
		if err := e.openPartition(p); err != nil {
			e.closeAll()
			return nil, err
		}
	}
	return e, nil
}

// bumpGeneration increments and persists the data dir's boot
// generation — a counter that distinguishes every Open of the same
// directory. Nodes fold it into outbound transfer-session ids so a
// restarted process never re-issues an id an earlier boot already
// used: targets durably remember completed session ids, and a reused
// id would be answered "already complete" without any data moving.
// The write is temp-file + atomic rename; a crash before the rename
// re-derives the same value next boot, which is safe because the
// interrupted Open never handed the generation to a running node.
func (e *Engine) bumpGeneration() error {
	path := filepath.Join(e.opts.Dir, "gen")
	buf, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return fmt.Errorf("durable: generation read: %w", err)
	case len(buf) != 8:
		return fmt.Errorf("durable: generation file %s malformed (%d bytes)", path, len(buf))
	default:
		e.gen = binary.LittleEndian.Uint64(buf)
	}
	e.gen++
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, e.gen)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("durable: generation write: %w", err)
	}
	if _, err := f.Write(out); err != nil {
		_ = f.Close()
		return fmt.Errorf("durable: generation write: %w", err)
	}
	if err := e.opts.Sync.Sync(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("durable: generation sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: generation close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("durable: generation rename: %w", err)
	}
	if err := e.syncDir(); err != nil {
		return fmt.Errorf("durable: generation dir sync: %w", err)
	}
	return nil
}

// Generation returns the data dir's boot generation: how many times
// this directory has been Opened, this boot included. It is fixed for
// the engine's lifetime.
func (e *Engine) Generation() uint64 { return e.gen }

func (e *Engine) walPath(p int) string {
	return filepath.Join(e.opts.Dir, fmt.Sprintf("p%04d.wal", p))
}

func (e *Engine) snapPath(p int) string {
	return filepath.Join(e.opts.Dir, fmt.Sprintf("p%04d.snap", p))
}

// openPartition recovers one partition: snapshot, then WAL replay.
func (e *Engine) openPartition(p int) error {
	ps := &e.parts[p]
	ps.data = make(map[string]mirrorEntry)
	// A brand-new partition is resident: the cluster starts empty, so
	// empty content IS authoritative — the same birth semantics as the
	// in-memory store.
	ps.resident = true

	// An interrupted compaction can leave a half-written temp snapshot;
	// it was never installed, so it is garbage.
	if err := os.Remove(e.snapPath(p) + ".tmp"); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("durable: partition %d: %w", p, err)
	}
	if err := loadSnapshot(e.snapPath(p), ps); err != nil {
		return err
	}
	f, err := os.OpenFile(e.walPath(p), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("durable: partition %d: %w", p, err)
	}
	n, err := replayWAL(f, ps)
	if err != nil {
		_ = f.Close()
		return err
	}
	ps.walRecords = n
	ps.wal = f
	return nil
}

// Recovered returns partition p's state as recovery (plus any appends
// since) left it. Entries come back in ascending key order so callers
// can rebuild deterministically.
func (e *Engine) Recovered(p int) PartitionState {
	ps := &e.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st := PartitionState{
		MaxVer:   ps.maxVer,
		Resident: ps.resident,
		Sessions: append([]Session(nil), ps.sessions...),
		Done:     append([]uint64(nil), ps.done...),
	}
	keys := make([]string, 0, len(ps.data))
	for k := range ps.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m := ps.data[k]
		st.Entries = append(st.Entries, Entry{Key: k, Ver: m.ver, Val: m.val})
	}
	return st
}

// EntriesAbove returns partition p's records with versions strictly
// above ver, in ascending key order — the snapshot-above-watermark
// iteration delta transfers freeze from when the target's digest proves
// its below-watermark content identical. Today the iteration runs over
// the recovery mirror; it is the seam where a paged (larger-than-RAM)
// store would stream from the snapshot+WAL pair instead.
func (e *Engine) EntriesAbove(p int, ver uint64) []Entry {
	if p < 0 || p >= len(e.parts) {
		return nil
	}
	ps := &e.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	keys := make([]string, 0, len(ps.data))
	for k, m := range ps.data {
		if m.ver > ver {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		m := ps.data[k]
		out = append(out, Entry{Key: k, Ver: m.ver, Val: m.val})
	}
	return out
}

// Stats returns partition p's WAL and compaction counters.
func (e *Engine) Stats(p int) PartitionStats {
	ps := &e.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return PartitionStats{WALRecords: ps.walRecords, Compactions: ps.compactions}
}

// Err returns the engine's sticky failure, if any: the first IO error
// any append or compaction hit. Once set, every ack-bearing append
// refuses — the node keeps running but stops claiming durability.
func (e *Engine) Err() error {
	e.emu.Lock()
	defer e.emu.Unlock()
	return e.err
}

func (e *Engine) fail(err error) error {
	e.emu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.emu.Unlock()
	return err
}

func (e *Engine) failed() error {
	e.emu.Lock()
	defer e.emu.Unlock()
	if e.closed {
		return fmt.Errorf("durable: engine closed")
	}
	return e.err
}

// AppendPut records one value install: data[key] = {ver, val} and
// maxVer = max(maxVer, ver). The engine keeps val by reference and
// never mutates it; callers must not either.
func (e *Engine) AppendPut(p int, key string, ver uint64, val []byte) error {
	rec := appendRecPut(nil, key, ver, val)
	return e.append(p, rec, func(ps *engPart) {
		ps.data[key] = mirrorEntry{ver: ver, val: val}
		if ver > ps.maxVer {
			ps.maxVer = ver
		}
	})
}

// AppendMaxVer records a version-watermark raise without a value
// install (the applySync path acking an equal-or-newer replay).
func (e *Engine) AppendMaxVer(p int, ver uint64) error {
	rec := appendRecMaxVer(nil, ver)
	return e.append(p, rec, func(ps *engPart) {
		if ver > ps.maxVer {
			ps.maxVer = ver
		}
	})
}

// AppendDrop records a partition drop: data cleared, residency
// revoked, maxVer kept (re-adoption must never re-issue versions).
// Inbound transfer sessions and the done-list clear too — the chunks a
// live session merged before the drop are gone, so a recovered cursor
// resuming past them would complete an authoritative partial copy; the
// store invalidates its runtime session list the same way.
func (e *Engine) AppendDrop(p int) error {
	rec := appendRecOp(nil, opDrop)
	return e.append(p, rec, func(ps *engPart) {
		ps.data = make(map[string]mirrorEntry)
		ps.resident = false
		ps.sessions, ps.done = nil, nil
	})
}

// AppendReset records an authoritative-empty reseed: data cleared,
// resident, maxVer kept, sessions invalidated (as in AppendDrop).
func (e *Engine) AppendReset(p int) error {
	rec := appendRecOp(nil, opReset)
	return e.append(p, rec, func(ps *engPart) {
		ps.data = make(map[string]mirrorEntry)
		ps.resident = true
		ps.sessions, ps.done = nil, nil
	})
}

// AppendResident records a residency grant (snapshot merge completed,
// or an inbound transfer finished with MarkResident).
func (e *Engine) AppendResident(p int) error {
	rec := appendRecOp(nil, opResident)
	return e.append(p, rec, func(ps *engPart) {
		ps.resident = true
	})
}

// AppendCursor records an inbound transfer session's resume cursor —
// the record that lets a restarted target continue a chunked transfer
// where it stopped instead of starting over.
func (e *Engine) AppendCursor(p int, s Session) error {
	rec := appendRecCursor(nil, s)
	return e.append(p, rec, func(ps *engPart) {
		mirrorCursor(ps, s)
	})
}

// AppendSessionDone records an inbound session's completion; the id is
// remembered so a replayed transfer-begin after completion stays
// idempotent across restarts.
func (e *Engine) AppendSessionDone(p int, sid uint64) error {
	rec := appendRecDone(nil, sid)
	return e.append(p, rec, func(ps *engPart) {
		mirrorDone(ps, sid)
	})
}

func mirrorCursor(ps *engPart, s Session) {
	for i := range ps.sessions {
		if ps.sessions[i].ID == s.ID {
			ps.sessions[i] = s
			return
		}
	}
	ps.sessions = append(ps.sessions, s)
	if len(ps.sessions) > maxSessions {
		ps.sessions = ps.sessions[len(ps.sessions)-maxSessions:]
	}
}

func mirrorDone(ps *engPart, sid uint64) {
	for i := range ps.sessions {
		if ps.sessions[i].ID == sid {
			ps.sessions = append(ps.sessions[:i], ps.sessions[i+1:]...)
			break
		}
	}
	ps.done = append(ps.done, sid)
	if len(ps.done) > maxDone {
		ps.done = ps.done[len(ps.done)-maxDone:]
	}
}

// append writes one framed record, syncs it, applies the mirror
// update, and compacts if the record count tripped the threshold (and
// no hold defers it). Any IO failure is sticky: the mutation is NOT
// applied to the mirror and the caller must not ack.
func (e *Engine) append(p int, rec []byte, apply func(*engPart)) error {
	if err := e.failed(); err != nil {
		return err
	}
	ps := &e.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, err := ps.wal.Write(rec); err != nil {
		return e.fail(fmt.Errorf("durable: partition %d: wal append: %w", p, err))
	}
	if err := e.opts.Sync.Sync(ps.wal); err != nil {
		return e.fail(fmt.Errorf("durable: partition %d: wal sync: %w", p, err))
	}
	ps.walRecords++
	apply(ps)
	if ps.walRecords >= e.opts.CompactEvery {
		if ps.holds > 0 {
			ps.pending = true
		} else if err := e.compactLocked(p, ps); err != nil {
			return e.fail(err)
		}
	}
	return nil
}

// Hold defers partition p's compaction: an outbound transfer session
// froze the partition's state and the WAL+snapshot pair backing it
// must not be rewritten underneath. Holds nest.
func (e *Engine) Hold(p int) {
	ps := &e.parts[p]
	ps.mu.Lock()
	ps.holds++
	ps.mu.Unlock()
}

// Release undoes one Hold; when the last hold clears and a compaction
// was deferred meanwhile, it runs now.
func (e *Engine) Release(p int) {
	ps := &e.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.holds > 0 {
		ps.holds--
	}
	// ps.wal is nil once Close ran: a straggling release (e.g. a
	// transfer pump racing a shutdown) must not run the deferred
	// compaction against closed files.
	if ps.holds == 0 && ps.pending && ps.wal != nil {
		ps.pending = false
		if err := e.compactLocked(p, ps); err != nil {
			_ = e.fail(err)
		}
	}
}

// Compact folds partition p's WAL into its snapshot immediately,
// regardless of the record threshold (holds still defer). Tests and
// shutdown paths use it; steady-state compaction happens automatically
// via CompactEvery.
func (e *Engine) Compact(p int) error {
	if err := e.failed(); err != nil {
		return err
	}
	ps := &e.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.holds > 0 {
		ps.pending = true
		return nil
	}
	if err := e.compactLocked(p, ps); err != nil {
		return e.fail(err)
	}
	return nil
}

// compactLocked writes the mirror to a temp snapshot, atomically
// renames it into place, and truncates the WAL. Crash windows: before
// the rename the temp file is garbage (removed at next open); between
// rename and truncation recovery replays the full WAL over the new
// snapshot, which is idempotent (see Open).
func (e *Engine) compactLocked(p int, ps *engPart) error {
	path := e.snapPath(p)
	if err := writeSnapshot(path, ps, e.opts.Sync); err != nil {
		return fmt.Errorf("durable: partition %d: %w", p, err)
	}
	if err := e.syncDir(); err != nil {
		return fmt.Errorf("durable: partition %d: %w", p, err)
	}
	if err := ps.wal.Truncate(0); err != nil {
		return fmt.Errorf("durable: partition %d: wal truncate: %w", p, err)
	}
	if _, err := ps.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("durable: partition %d: wal seek: %w", p, err)
	}
	if err := e.opts.Sync.Sync(ps.wal); err != nil {
		return fmt.Errorf("durable: partition %d: wal sync: %w", p, err)
	}
	ps.walRecords = 0
	ps.compactions++
	return nil
}

// syncDir makes a snapshot rename durable (directory metadata).
func (e *Engine) syncDir() error {
	if _, ok := e.opts.Sync.(NoSync); ok {
		return nil
	}
	d, err := os.Open(e.opts.Dir)
	if err != nil {
		return err
	}
	serr := e.opts.Sync.Sync(d)
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Close releases every file handle. It does NOT compact: recovery
// must work from whatever snapshot+WAL pair is on disk at any instant,
// and a shutdown that exercised that path is a shutdown that proved
// it. Close after Close (or after a crash-simulation close) is a
// no-op.
func (e *Engine) Close() error {
	e.emu.Lock()
	if e.closed {
		e.emu.Unlock()
		return nil
	}
	e.closed = true
	e.emu.Unlock()
	return e.closeAll()
}

func (e *Engine) closeAll() error {
	var first error
	for p := range e.parts {
		ps := &e.parts[p]
		ps.mu.Lock()
		if ps.wal != nil {
			if err := ps.wal.Close(); err != nil && first == nil {
				first = err
			}
			ps.wal = nil
		}
		ps.mu.Unlock()
	}
	return first
}
