package durable

import (
	"os"
	"path/filepath"
	"testing"
)

func openTest(t *testing.T, dir string, compactEvery int) *Engine {
	t.Helper()
	e, err := Open(Options{Dir: dir, Partitions: 4, CompactEvery: compactEvery})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return e
}

func mustAppend(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("append: %v", err)
	}
}

// expectState compares partition p's recovered state field by field.
func expectState(t *testing.T, e *Engine, p int, want PartitionState) {
	t.Helper()
	got := e.Recovered(p)
	if got.MaxVer != want.MaxVer {
		t.Errorf("partition %d: maxVer %d, want %d", p, got.MaxVer, want.MaxVer)
	}
	if got.Resident != want.Resident {
		t.Errorf("partition %d: resident %v, want %v", p, got.Resident, want.Resident)
	}
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("partition %d: %d entries, want %d (%v)", p, len(got.Entries), len(want.Entries), got.Entries)
	}
	for i := range want.Entries {
		g, w := got.Entries[i], want.Entries[i]
		if g.Key != w.Key || g.Ver != w.Ver || string(g.Val) != string(w.Val) {
			t.Errorf("partition %d entry %d: got {%q %d %q}, want {%q %d %q}",
				p, i, g.Key, g.Ver, g.Val, w.Key, w.Ver, w.Val)
		}
	}
	if len(got.Sessions) != len(want.Sessions) {
		t.Fatalf("partition %d: %d sessions, want %d", p, len(got.Sessions), len(want.Sessions))
	}
	for i := range want.Sessions {
		if got.Sessions[i] != want.Sessions[i] {
			t.Errorf("partition %d session %d: got %+v, want %+v", p, i, got.Sessions[i], want.Sessions[i])
		}
	}
	if len(got.Done) != len(want.Done) {
		t.Fatalf("partition %d: %d done ids, want %d", p, len(got.Done), len(want.Done))
	}
	for i := range want.Done {
		if got.Done[i] != want.Done[i] {
			t.Errorf("partition %d done %d: got %d, want %d", p, i, got.Done[i], want.Done[i])
		}
	}
}

// TestRecoverRoundTrip closes and reopens an engine after a mixed op
// sequence and requires recovery to restore entries, maxVer, residency,
// sessions and completed-session memory exactly.
func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, dir, 1024)
	mustAppend(t, e.AppendPut(0, "a", 5, []byte("va")))
	mustAppend(t, e.AppendPut(0, "b", 6, []byte("vb")))
	mustAppend(t, e.AppendPut(0, "a", 9, []byte("va2"))) // overwrite
	mustAppend(t, e.AppendMaxVer(0, 40))                 // watermark-only raise
	mustAppend(t, e.AppendDrop(1))                       // partition 1 dropped
	mustAppend(t, e.AppendPut(2, "k", 3, []byte("v")))
	mustAppend(t, e.AppendReset(2)) // ...then reseeded empty
	mustAppend(t, e.AppendCursor(3, Session{ID: 77, Next: 2, Total: 5, MarkResident: true}))
	mustAppend(t, e.AppendSessionDone(3, 42))
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	e2 := openTest(t, dir, 1024)
	defer func() {
		if err := e2.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	expectState(t, e2, 0, PartitionState{
		Entries: []Entry{{Key: "a", Ver: 9, Val: []byte("va2")}, {Key: "b", Ver: 6, Val: []byte("vb")}},
		MaxVer:  40, Resident: true,
	})
	expectState(t, e2, 1, PartitionState{MaxVer: 0, Resident: false})
	expectState(t, e2, 2, PartitionState{MaxVer: 3, Resident: true})
	expectState(t, e2, 3, PartitionState{
		Resident: true,
		Sessions: []Session{{ID: 77, Next: 2, Total: 5, MarkResident: true}},
		Done:     []uint64{42},
	})
}

// TestDropClearsSessionState pins the session-invalidation half of
// drop/reset: the entries an inbound session merged before the drop
// are gone with the data, so its cursor — and the done-list that
// answers replayed begins "already complete" — must not survive
// either, in the live mirror or across recovery replay. A recovered
// cursor resuming past the drop would complete an authoritative
// partial copy of the source snapshot.
func TestDropClearsSessionState(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, dir, 1024)
	mustAppend(t, e.AppendCursor(0, Session{ID: 7, Next: 2, Total: 5, MarkResident: true}))
	mustAppend(t, e.AppendSessionDone(0, 9))
	mustAppend(t, e.AppendDrop(0))
	expectState(t, e, 0, PartitionState{Resident: false})
	mustAppend(t, e.AppendCursor(1, Session{ID: 8, Next: 1, Total: 2}))
	mustAppend(t, e.AppendReset(1))
	expectState(t, e, 1, PartitionState{Resident: true})
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// WAL replay must reproduce the invalidation, not just the live
	// mirror: the drop landed after the cursor records, so a restart
	// must recover no sessions.
	e2 := openTest(t, dir, 1024)
	expectState(t, e2, 0, PartitionState{Resident: false})
	expectState(t, e2, 1, PartitionState{Resident: true})
	if err := e2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestGenerationBumpsPerOpen pins the boot-generation counter: every
// Open of the same directory observes a strictly higher generation,
// the uniqueness source for outbound transfer-session ids across
// process restarts.
func TestGenerationBumpsPerOpen(t *testing.T) {
	dir := t.TempDir()
	for want := uint64(1); want <= 3; want++ {
		e := openTest(t, dir, 1024)
		if g := e.Generation(); g != want {
			t.Fatalf("open #%d: generation = %d, want %d", want, g, want)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

// TestTornFinalWALRecordReplaysCleanly cuts the WAL mid-record — the
// state a crash leaves behind when it interrupts an append — and
// requires recovery to replay every intact record, truncate the torn
// tail, and keep accepting appends afterwards.
func TestTornFinalWALRecordReplaysCleanly(t *testing.T) {
	for _, cut := range []int{1, 4, 9} { // inside header, inside crc, inside payload
		dir := t.TempDir()
		e := openTest(t, dir, 1024)
		mustAppend(t, e.AppendPut(0, "keep", 1, []byte("v1")))
		mustAppend(t, e.AppendPut(0, "keep", 2, []byte("v2")))
		if err := e.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		// Manufacture the torn append: a record prefix without its suffix.
		torn := appendRecPut(nil, "torn", 3, []byte("never-acked"))
		path := filepath.Join(dir, "p0000.wal")
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(torn[:cut]); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		e2 := openTest(t, dir, 1024)
		expectState(t, e2, 0, PartitionState{
			Entries: []Entry{{Key: "keep", Ver: 2, Val: []byte("v2")}},
			MaxVer:  2, Resident: true,
		})
		// The file was truncated back to the intact prefix, and appending
		// resumes from there.
		mustAppend(t, e2.AppendPut(0, "after", 4, []byte("v4")))
		if err := e2.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		e3 := openTest(t, dir, 1024)
		expectState(t, e3, 0, PartitionState{
			Entries: []Entry{{Key: "after", Ver: 4, Val: []byte("v4")}, {Key: "keep", Ver: 2, Val: []byte("v2")}},
			MaxVer:  4, Resident: true,
		})
		if err := e3.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
}

// TestCompactionTriggersAndPreservesState drives appends past the
// CompactEvery threshold and checks the WAL folds into the snapshot
// without changing the recoverable state.
func TestCompactionTriggersAndPreservesState(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, dir, 4)
	for i := 0; i < 10; i++ {
		mustAppend(t, e.AppendPut(0, "k"+string(rune('a'+i)), uint64(i+1), []byte{byte(i)}))
	}
	st := e.Stats(0)
	if st.Compactions != 2 {
		t.Fatalf("compactions = %d, want 2 (10 appends at CompactEvery=4)", st.Compactions)
	}
	if st.WALRecords != 2 {
		t.Fatalf("wal records = %d, want 2 after last compaction", st.WALRecords)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	e2 := openTest(t, dir, 4)
	got := e2.Recovered(0)
	if len(got.Entries) != 10 || got.MaxVer != 10 {
		t.Fatalf("recovered %d entries maxVer %d, want 10/10", len(got.Entries), got.MaxVer)
	}
	if err := e2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCrashDuringCompactionReplays manufactures both compaction crash
// windows: a leftover temp snapshot (crash before rename) and an
// installed snapshot with the full un-truncated WAL still behind it
// (crash between rename and truncation). Recovery must converge to the
// exact pre-crash state in both — including across a drop/re-put
// sequence, where blind WAL replay over the already-folded snapshot
// transiently resurrects and re-clears records.
func TestCrashDuringCompactionReplays(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, dir, 1024)
	mustAppend(t, e.AppendPut(0, "x", 1, []byte("old")))
	mustAppend(t, e.AppendDrop(0))
	mustAppend(t, e.AppendPut(0, "y", 7, []byte("new")))
	mustAppend(t, e.AppendResident(0))
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	want := PartitionState{
		Entries: []Entry{{Key: "y", Ver: 7, Val: []byte("new")}},
		MaxVer:  7, Resident: true,
	}

	walPath := filepath.Join(dir, "p0000.wal")
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Window 1: crash before the rename — a garbage temp file is lying
	// around. Recovery ignores and removes it.
	tmp := filepath.Join(dir, "p0000.snap.tmp")
	if err := os.WriteFile(tmp, []byte("half-written-snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := openTest(t, dir, 1024)
	expectState(t, e2, 0, want)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover temp snapshot not removed (stat err %v)", err)
	}

	// Window 2: snapshot installed, WAL not yet truncated. Compact for
	// real, then restore the full pre-compaction WAL behind the new
	// snapshot.
	if err := e2.Compact(0); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := e2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := os.WriteFile(walPath, walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := openTest(t, dir, 1024)
	expectState(t, e3, 0, want)
	if err := e3.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestHoldDefersCompaction pins the lease contract's engine half: while
// a hold is out (an outbound transfer froze the partition state), the
// record threshold must not trigger a compaction; the deferred
// compaction runs when the last hold releases.
func TestHoldDefersCompaction(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, dir, 3)
	defer func() {
		if err := e.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	e.Hold(0)
	e.Hold(0) // holds nest
	for i := 0; i < 6; i++ {
		mustAppend(t, e.AppendPut(0, "k", uint64(i+1), []byte("v")))
	}
	if st := e.Stats(0); st.Compactions != 0 || st.WALRecords != 6 {
		t.Fatalf("held partition compacted anyway: %+v", st)
	}
	e.Release(0)
	if st := e.Stats(0); st.Compactions != 0 {
		t.Fatalf("compaction ran with a hold still out: %+v", st)
	}
	e.Release(0)
	if st := e.Stats(0); st.Compactions != 1 || st.WALRecords != 0 {
		t.Fatalf("deferred compaction did not run on last release: %+v", st)
	}
}

// TestAppendAfterCloseRefuses pins the ack-path contract: a closed (or
// failed) engine refuses appends instead of acking writes it cannot
// persist.
func TestAppendAfterCloseRefuses(t *testing.T) {
	dir := t.TempDir()
	e := openTest(t, dir, 1024)
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := e.AppendPut(0, "k", 1, []byte("v")); err == nil {
		t.Fatal("append on a closed engine did not error")
	}
}

// TestEntriesAboveFiltersAndSorts pins the delta-transfer fast path:
// EntriesAbove returns exactly the records with versions strictly
// above the watermark, sorted by key, and an out-of-range or dropped
// partition yields nothing.
func TestEntriesAboveFiltersAndSorts(t *testing.T) {
	e := openTest(t, t.TempDir(), 1024)
	defer func() {
		if err := e.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	mustAppend(t, e.AppendPut(0, "c", 3, []byte("vc")))
	mustAppend(t, e.AppendPut(0, "a", 10, []byte("va")))
	mustAppend(t, e.AppendPut(0, "b", 7, []byte("vb")))
	mustAppend(t, e.AppendPut(0, "d", 7, []byte("vd"))) // exactly at the watermark: excluded

	// "b" and "d" sit exactly at the watermark: strictly-above excludes them.
	got := e.EntriesAbove(0, 7)
	want := []Entry{{Key: "a", Ver: 10, Val: []byte("va")}}
	if len(got) != len(want) {
		t.Fatalf("EntriesAbove(0, 7) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].Key != want[i].Key || got[i].Ver != want[i].Ver || string(got[i].Val) != string(want[i].Val) {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if all := e.EntriesAbove(0, 0); len(all) != 4 ||
		all[0].Key != "a" || all[1].Key != "b" || all[2].Key != "c" || all[3].Key != "d" {
		t.Errorf("EntriesAbove(0, 0) = %v, want all four entries sorted by key", all)
	}
	if got := e.EntriesAbove(0, 10); len(got) != 0 {
		t.Errorf("EntriesAbove(0, 10) = %v, want none (nothing strictly above the max)", got)
	}
	mustAppend(t, e.AppendDrop(0))
	if got := e.EntriesAbove(0, 0); len(got) != 0 {
		t.Errorf("EntriesAbove after drop = %v, want none", got)
	}
	if got := e.EntriesAbove(-1, 0); got != nil {
		t.Errorf("EntriesAbove(-1, 0) = %v, want nil", got)
	}
}
