package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// Snapshot file format (one file per partition, installed only by an
// atomic rename of a fully-written temp file):
//
//	magic "RFHS" + format byte 1
//	uvarint maxVer
//	byte resident
//	uvarint entry count, then per entry: key, ver, val (length-prefixed)
//	uvarint session count, then per session: sid, next, total, mark
//	uvarint done count, then per id: sid
//	crc32(everything above) u32 LE
//
// Entries are written in ascending key order so the file bytes are a
// deterministic function of the state.

var snapMagic = []byte{'R', 'F', 'H', 'S', 1}

// writeSnapshot serialises ps to path via a temp file + rename.
func writeSnapshot(path string, ps *engPart, sync Syncer) error {
	buf := append([]byte(nil), snapMagic...)
	buf = binary.AppendUvarint(buf, ps.maxVer)
	if ps.resident {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	keys := make([]string, 0, len(ps.data))
	for k := range ps.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		m := ps.data[k]
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, m.ver)
		buf = binary.AppendUvarint(buf, uint64(len(m.val)))
		buf = append(buf, m.val...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ps.sessions)))
	for _, s := range ps.sessions {
		buf = binary.AppendUvarint(buf, s.ID)
		buf = binary.AppendUvarint(buf, uint64(s.Next))
		buf = binary.AppendUvarint(buf, uint64(s.Total))
		if s.MarkResident {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(ps.done)))
	for _, sid := range ps.done {
		buf = binary.AppendUvarint(buf, sid)
	}
	sum := make([]byte, 4)
	binary.LittleEndian.PutUint32(sum, crc32.ChecksumIEEE(buf))
	buf = append(buf, sum...)

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return err
	}
	if err := sync.Sync(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadSnapshot restores ps from path; a missing file means "no
// snapshot yet" and leaves ps at its birth state. A present-but-corrupt
// snapshot is real corruption (installs are atomic), so it fails
// loudly rather than silently serving partial state.
func loadSnapshot(path string, ps *engPart) error {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("durable: snapshot read: %w", err)
	}
	if len(buf) < len(snapMagic)+4 {
		return fmt.Errorf("durable: snapshot %s truncated (%d bytes)", path, len(buf))
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return fmt.Errorf("durable: snapshot %s checksum mismatch", path)
	}
	for i, b := range snapMagic {
		if body[i] != b {
			return fmt.Errorf("durable: snapshot %s has bad magic", path)
		}
	}
	r := recReader{buf: body[len(snapMagic):]}
	ps.maxVer = r.uvarint()
	ps.resident = r.byte() == 1
	n := int(r.uvarint())
	for i := 0; i < n && r.err == nil; i++ {
		key := string(r.bytes())
		ver := r.uvarint()
		val := r.bytes()
		if r.err != nil {
			break
		}
		v := make([]byte, len(val))
		copy(v, val)
		ps.data[key] = mirrorEntry{ver: ver, val: v}
	}
	sn := int(r.uvarint())
	for i := 0; i < sn && r.err == nil; i++ {
		s := Session{ID: r.uvarint()}
		s.Next = uint32(r.uvarint())
		s.Total = uint32(r.uvarint())
		s.MarkResident = r.byte() == 1
		if r.err == nil {
			ps.sessions = append(ps.sessions, s)
		}
	}
	dn := int(r.uvarint())
	for i := 0; i < dn && r.err == nil; i++ {
		ps.done = append(ps.done, r.uvarint())
	}
	if r.err != nil {
		return fmt.Errorf("durable: snapshot %s malformed: %w", path, r.err)
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("durable: snapshot %s has %d trailing bytes", path, len(r.buf))
	}
	return nil
}
