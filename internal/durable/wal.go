package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL record framing: every record is
//
//	[len u32 LE][crc32(payload) u32 LE][payload]
//
// with payload = op byte + op-specific fields (uvarint-encoded, keys
// and values length-prefixed). One WAL file per partition, so records
// carry no partition field. A record whose header, body or checksum is
// incomplete marks the torn tail of an interrupted append: replay
// truncates the file back to the last intact record and resumes
// appending from there — the torn suffix was never acked, so cutting
// it is correct, not lossy.

// WAL op codes. All ops are blind last-writer-wins sets over the
// partition state, which is what makes replaying a WAL suffix that a
// snapshot already folded in idempotent.
const (
	opPut      byte = 1 // key, ver, val: install + raise maxVer
	opMaxVer   byte = 2 // ver: raise maxVer only
	opDrop     byte = 3 // clear data+sessions, resident=false, keep maxVer
	opReset    byte = 4 // clear data+sessions, resident=true, keep maxVer
	opResident byte = 5 // resident=true
	opCursor   byte = 6 // sid, next, total, mark: inbound session cursor
	opDone     byte = 7 // sid: inbound session completed
)

// walHeaderLen is the per-record frame header: length + checksum.
const walHeaderLen = 8

// maxRecord bounds a single record so a corrupt length prefix cannot
// trigger a giant allocation; generous against the largest value the
// transport would ever have carried in.
const maxRecord = 64 << 20

func frameRecord(payload []byte) []byte {
	rec := make([]byte, walHeaderLen, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

func appendRecPut(dst []byte, key string, ver uint64, val []byte) []byte {
	p := []byte{opPut}
	p = binary.AppendUvarint(p, uint64(len(key)))
	p = append(p, key...)
	p = binary.AppendUvarint(p, ver)
	p = binary.AppendUvarint(p, uint64(len(val)))
	p = append(p, val...)
	return append(dst, frameRecord(p)...)
}

func appendRecMaxVer(dst []byte, ver uint64) []byte {
	p := []byte{opMaxVer}
	p = binary.AppendUvarint(p, ver)
	return append(dst, frameRecord(p)...)
}

func appendRecOp(dst []byte, op byte) []byte {
	return append(dst, frameRecord([]byte{op})...)
}

func appendRecCursor(dst []byte, s Session) []byte {
	p := []byte{opCursor}
	p = binary.AppendUvarint(p, s.ID)
	p = binary.AppendUvarint(p, uint64(s.Next))
	p = binary.AppendUvarint(p, uint64(s.Total))
	mark := byte(0)
	if s.MarkResident {
		mark = 1
	}
	p = append(p, mark)
	return append(dst, frameRecord(p)...)
}

func appendRecDone(dst []byte, sid uint64) []byte {
	p := []byte{opDone}
	p = binary.AppendUvarint(p, sid)
	return append(dst, frameRecord(p)...)
}

// replayWAL reads f from the start, applies every intact record to ps,
// truncates any torn tail, and leaves f positioned for appending. It
// returns the number of records replayed.
func replayWAL(f *os.File, ps *engPart) (int, error) {
	buf, err := io.ReadAll(f)
	if err != nil {
		return 0, fmt.Errorf("durable: wal read: %w", err)
	}
	records, good := 0, 0
	off := 0
	for {
		rest := buf[off:]
		if len(rest) == 0 {
			good = off
			break
		}
		if len(rest) < walHeaderLen {
			break // torn header
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		if n > maxRecord || len(rest) < walHeaderLen+n {
			break // torn or corrupt body
		}
		payload := rest[walHeaderLen : walHeaderLen+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			break // torn checksum (partial overwrite)
		}
		if err := applyRecord(ps, payload); err != nil {
			return 0, err
		}
		records++
		off += walHeaderLen + n
		good = off
	}
	if good != len(buf) {
		if err := f.Truncate(int64(good)); err != nil {
			return 0, fmt.Errorf("durable: wal truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		return 0, fmt.Errorf("durable: wal seek: %w", err)
	}
	return records, nil
}

// applyRecord replays one decoded payload into the mirror.
func applyRecord(ps *engPart, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("durable: empty wal record")
	}
	r := recReader{buf: payload[1:]}
	switch payload[0] {
	case opPut:
		key := r.bytes()
		ver := r.uvarint()
		val := r.bytes()
		if r.err != nil {
			break
		}
		v := make([]byte, len(val))
		copy(v, val)
		ps.data[string(key)] = mirrorEntry{ver: ver, val: v}
		if ver > ps.maxVer {
			ps.maxVer = ver
		}
	case opMaxVer:
		ver := r.uvarint()
		if r.err == nil && ver > ps.maxVer {
			ps.maxVer = ver
		}
	case opDrop:
		ps.data = make(map[string]mirrorEntry)
		ps.resident = false
		ps.sessions, ps.done = nil, nil
	case opReset:
		ps.data = make(map[string]mirrorEntry)
		ps.resident = true
		ps.sessions, ps.done = nil, nil
	case opResident:
		ps.resident = true
	case opCursor:
		s := Session{ID: r.uvarint()}
		s.Next = uint32(r.uvarint())
		s.Total = uint32(r.uvarint())
		s.MarkResident = r.byte() == 1
		if r.err == nil {
			mirrorCursor(ps, s)
		}
	case opDone:
		sid := r.uvarint()
		if r.err == nil {
			mirrorDone(ps, sid)
		}
	default:
		return fmt.Errorf("durable: unknown wal op %d", payload[0])
	}
	if r.err != nil {
		return fmt.Errorf("durable: malformed wal record op %d: %w", payload[0], r.err)
	}
	return nil
}

// recReader decodes a record payload with a sticky error — a crc-clean
// record with malformed fields is corruption, not a torn tail, and
// recovery fails loudly on it.
type recReader struct {
	buf []byte
	err error
}

func (r *recReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("truncated uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *recReader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.err = fmt.Errorf("length %d exceeds remaining %d bytes", n, len(r.buf))
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *recReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) == 0 {
		r.err = fmt.Errorf("missing byte field")
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}
