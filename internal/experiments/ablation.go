package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// AblationPoint is one row of a parameter sweep: the parameter value
// and the steady-state outcomes it produced for the RFH policy under
// the random-query setting.
type AblationPoint struct {
	Value        float64
	Utilization  float64 // tail mean of Fig. 3 metric
	Replicas     float64 // tail mean of total replicas
	ReplCost     float64 // final cumulative replication cost
	Migrations   float64 // final cumulative migrations
	PathLength   float64 // tail mean lookup hops
	UnservedFrac float64 // tail mean overflow fraction
}

// Ablation is one parameter sweep.
type Ablation struct {
	Parameter string
	Points    []AblationPoint
}

// AblationNames lists the supported sweeps: the four decision
// thresholds, the hub candidate-set size K (the paper fixes 3), and the
// serving model (0 = path, 1 = nearest).
func AblationNames() []string {
	return []string{"alpha", "beta", "gamma", "delta", "mu", "hubK", "serving"}
}

// defaultSweeps gives each parameter a sensible grid around its Table I
// value.
func defaultSweeps() map[string][]float64 {
	return map[string][]float64{
		"alpha":   {0.05, 0.1, 0.2, 0.4, 0.8},
		"beta":    {1.2, 1.5, 2, 3, 4},
		"gamma":   {1.1, 1.5, 2, 3},
		"delta":   {0.05, 0.1, 0.2, 0.4},
		"mu":      {0.25, 0.5, 1, 2},
		"hubK":    {1, 2, 3, 5, 8},
		"serving": {0, 1},
	}
}

// RunAblation sweeps one parameter for the RFH policy under the random
// query setting with the suite's dimensions, one full simulation per
// grid point.
func (s *Suite) RunAblation(param string) (*Ablation, error) {
	grid, ok := defaultSweeps()[param]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown ablation parameter %q (want one of %v)", param, AblationNames())
	}
	out := &Ablation{Parameter: param}
	for _, v := range grid {
		pt, err := s.ablationPoint(param, v)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

// ablationPoint runs one RFH simulation with the parameter overridden.
func (s *Suite) ablationPoint(param string, v float64) (AblationPoint, error) {
	cfg := sim.DefaultConfig()
	cfg.Epochs = s.opts.EpochsRandom
	cfg.Seed = s.opts.Seed
	cfg.Workers = s.opts.Workers
	cfg.Serving = s.opts.Serving
	th := traffic.DefaultThresholds()
	switch param {
	case "alpha":
		th.Alpha = v
	case "beta":
		th.Beta = v
	case "gamma":
		th.Gamma = v
	case "delta":
		th.Delta = v
	case "mu":
		th.Mu = v
	case "hubK":
		cfg.HubCandidates = int(v)
	case "serving":
		cfg.Serving = sim.ServingModel(int(v))
	}
	cfg.Thresholds = th
	cl, rt, gen, pol, err := s.components("rfh", false, cfg.Epochs)
	if err != nil {
		return AblationPoint{}, err
	}
	eng, err := sim.New(cl, rt, gen, pol, cfg)
	if err != nil {
		return AblationPoint{}, err
	}
	rec, err := eng.Run()
	eng.Close()
	if err != nil {
		return AblationPoint{}, err
	}
	get := func(name string) []float64 { return rec.Series(name).Points }
	return AblationPoint{
		Value:        v,
		Utilization:  tail(get(metrics.SeriesUtilization)),
		Replicas:     tail(get(metrics.SeriesTotalReplicas)),
		ReplCost:     rec.Series(metrics.SeriesReplCost).Last(),
		Migrations:   rec.Series(metrics.SeriesMigrTimes).Last(),
		PathLength:   tail(get(metrics.SeriesPathLength)),
		UnservedFrac: tail(get(metrics.SeriesUnservedFrac)),
	}, nil
}

// Summary renders the ablation as aligned text rows.
func (a *Ablation) Summary() string {
	out := fmt.Sprintf("ablation %-8s %10s %10s %10s %10s %10s %10s\n",
		a.Parameter, "util", "replicas", "replCost", "migr", "path", "unserved")
	for _, p := range a.Points {
		out += fmt.Sprintf("  %-14.3g %10.3f %10.1f %10.3f %10.0f %10.2f %10.4f\n",
			p.Value, p.Utilization, p.Replicas, p.ReplCost, p.Migrations, p.PathLength, p.UnservedFrac)
	}
	return out
}

// Monotone reports whether the named outcome moves monotonically (in
// either direction) across the sweep, within tolerance tol — a quick
// sanity probe used by tests.
func (a *Ablation) Monotone(outcome func(AblationPoint) float64, tol float64) bool {
	if len(a.Points) < 2 {
		return true
	}
	vals := make([]float64, len(a.Points))
	for i, p := range a.Points {
		vals[i] = outcome(p)
	}
	up, down := true, true
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1]-tol {
			up = false
		}
		if vals[i] > vals[i-1]+tol {
			down = false
		}
	}
	return up || down
}

// Spread returns max-min of an outcome over the sweep.
func (a *Ablation) Spread(outcome func(AblationPoint) float64) float64 {
	if len(a.Points) == 0 {
		return 0
	}
	vals := make([]float64, len(a.Points))
	for i, p := range a.Points {
		vals[i] = outcome(p)
	}
	return stats.Max(vals) - stats.Min(vals)
}
