package experiments

import "testing"

func ablationSuite(t *testing.T) *Suite {
	t.Helper()
	opts := quickOpts()
	opts.EpochsRandom = 60 // ablation sweeps run many simulations
	s, err := NewSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAblationUnknownParameter(t *testing.T) {
	s := ablationSuite(t)
	if _, err := s.RunAblation("zeta"); err == nil {
		t.Fatal("unknown parameter accepted")
	}
}

func TestAblationNamesAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	s := ablationSuite(t)
	for _, name := range AblationNames() {
		ab, err := s.RunAblation(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ab.Points) < 2 {
			t.Fatalf("%s: only %d grid points", name, len(ab.Points))
		}
		for _, p := range ab.Points {
			if p.Utilization < 0 || p.Utilization > 1 {
				t.Fatalf("%s value %g: utilization %g outside [0,1]", name, p.Value, p.Utilization)
			}
			if p.Replicas < 16 { // at least one copy per partition (16 in quick suite? full 64 here)
				t.Fatalf("%s value %g: replicas %g below partition count", name, p.Value, p.Replicas)
			}
		}
		if ab.Summary() == "" {
			t.Fatalf("%s: empty summary", name)
		}
	}
}

func TestAblationBetaControlsReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := ablationSuite(t)
	ab, err := s.RunAblation("beta")
	if err != nil {
		t.Fatal(err)
	}
	// A laxer overload threshold (higher β) must not increase the
	// steady replica count: β is the principal replication brake.
	first := ab.Points[0]
	last := ab.Points[len(ab.Points)-1]
	if last.Replicas > first.Replicas {
		t.Fatalf("replicas grew with beta: β=%g→%.0f, β=%g→%.0f",
			first.Value, first.Replicas, last.Value, last.Replicas)
	}
	if ab.Spread(func(p AblationPoint) float64 { return p.Replicas }) == 0 {
		t.Fatal("beta sweep had no effect at all")
	}
}

func TestAblationServingModels(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := ablationSuite(t)
	ab, err := s.RunAblation("serving")
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Points) != 2 {
		t.Fatalf("serving ablation points = %d", len(ab.Points))
	}
	// The two serving models must actually differ in outcome.
	if ab.Points[0].PathLength == ab.Points[1].PathLength &&
		ab.Points[0].Utilization == ab.Points[1].Utilization {
		t.Fatal("serving models produced identical outcomes")
	}
}

func TestAblationMonotoneHelper(t *testing.T) {
	ab := &Ablation{Parameter: "x", Points: []AblationPoint{
		{Value: 1, Replicas: 10}, {Value: 2, Replicas: 8}, {Value: 3, Replicas: 7},
	}}
	if !ab.Monotone(func(p AblationPoint) float64 { return p.Replicas }, 0) {
		t.Fatal("decreasing sequence not monotone")
	}
	ab.Points[1].Replicas = 20
	if ab.Monotone(func(p AblationPoint) float64 { return p.Replicas }, 0) {
		t.Fatal("zigzag reported monotone")
	}
	if !ab.Monotone(func(p AblationPoint) float64 { return p.Replicas }, 100) {
		t.Fatal("tolerance not applied")
	}
	if got := ab.Spread(func(p AblationPoint) float64 { return p.Replicas }); got != 13 {
		t.Fatalf("spread = %g", got)
	}
	empty := &Ablation{}
	if empty.Spread(func(p AblationPoint) float64 { return p.Replicas }) != 0 {
		t.Fatal("empty spread not 0")
	}
	if !empty.Monotone(func(p AblationPoint) float64 { return 0 }, 0) {
		t.Fatal("empty not monotone")
	}
}
