package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Claim is one qualitative assertion about a figure's shape — the kind
// of statement the paper's prose makes ("the RFH algorithm has the
// highest rate", "the cost of random algorithm is zero").
type Claim struct {
	Description string
	Pass        bool
	Detail      string
}

// ShapeReport collects the claims checked for one figure.
type ShapeReport struct {
	Figure string
	Claims []Claim
}

// Failed returns the number of failed claims.
func (r *ShapeReport) Failed() int {
	n := 0
	for _, c := range r.Claims {
		if !c.Pass {
			n++
		}
	}
	return n
}

// tail returns the mean of the last quarter of a series.
func tail(points []float64) float64 {
	if len(points) == 0 {
		return 0
	}
	return stats.Mean(points[len(points)*3/4:])
}

// head returns the mean of the first few points of a series.
func head(points []float64) float64 {
	n := 5
	if len(points) < n {
		n = len(points)
	}
	return stats.Mean(points[:n])
}

// byName indexes a figure's curves.
func byName(fig *Figure) map[string][]float64 {
	out := make(map[string][]float64, len(fig.Series))
	for _, s := range fig.Series {
		out[s.Name] = s.Points
	}
	return out
}

func claim(desc string, pass bool, format string, args ...interface{}) Claim {
	return Claim{Description: desc, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}

// CheckFigure evaluates the qualitative claims the paper makes about
// the given figure against this reproduction's data.
func (s *Suite) CheckFigure(id string) (*ShapeReport, error) {
	fig, err := s.Figure(id)
	if err != nil {
		return nil, err
	}
	rep := &ShapeReport{Figure: id}
	c := byName(fig)
	switch id {
	case "3a":
		rep.Claims = append(rep.Claims,
			claim("RFH has the highest utilization", tail(c["rfh"]) > tail(c["owner"]) && tail(c["rfh"]) > tail(c["request"]) && tail(c["rfh"]) > tail(c["random"]),
				"rfh=%.3f owner=%.3f request=%.3f random=%.3f", tail(c["rfh"]), tail(c["owner"]), tail(c["request"]), tail(c["random"])),
			claim("random has the lowest utilization", tail(c["random"]) < tail(c["rfh"]) && tail(c["random"]) < tail(c["owner"]) && tail(c["random"]) < tail(c["request"]),
				"random=%.3f", tail(c["random"])))
	case "3b":
		shift := s.opts.EpochsFlash / 4
		s1 := func(pts []float64) float64 { return stats.Mean(pts[shift/2 : shift]) }
		postMin := func(pts []float64) float64 {
			w := pts[shift:min(shift+40, len(pts))]
			return stats.Min(w)
		}
		rep.Claims = append(rep.Claims,
			claim("request-oriented collapses after the epoch-"+fmt.Sprint(shift)+" shift",
				postMin(c["request"]) < 0.8*s1(c["request"]),
				"stage1=%.3f post-shift min=%.3f", s1(c["request"]), postMin(c["request"])),
			claim("RFH ends with the highest utilization",
				tail(c["rfh"]) > tail(c["owner"]) && tail(c["rfh"]) > tail(c["request"]) && tail(c["rfh"]) > tail(c["random"]),
				"rfh=%.3f owner=%.3f request=%.3f random=%.3f", tail(c["rfh"]), tail(c["owner"]), tail(c["request"]), tail(c["random"])),
			claim("RFH recovers after each shift (late ≥ 80% of stage 1)",
				tail(c["rfh"]) >= 0.8*s1(c["rfh"]),
				"stage1=%.3f late=%.3f", s1(c["rfh"]), tail(c["rfh"])))
	case "4a", "4b":
		rep.Claims = append(rep.Claims,
			claim("random keeps the most replicas", tail(c["random"]) > tail(c["rfh"]) && tail(c["random"]) > tail(c["owner"]) && tail(c["random"]) > tail(c["request"]),
				"random=%.1f rfh=%.1f owner=%.1f request=%.1f", tail(c["random"]), tail(c["rfh"]), tail(c["owner"]), tail(c["request"])),
			claim("RFH keeps fewer replicas than owner-oriented", tail(c["rfh"]) < tail(c["owner"]),
				"rfh=%.1f owner=%.1f", tail(c["rfh"]), tail(c["owner"])))
	case "4c", "4d":
		rep.Claims = append(rep.Claims,
			claim("RFH keeps the fewest replicas under flash crowd",
				tail(c["rfh"]) < tail(c["owner"]) && tail(c["rfh"]) < tail(c["request"]) && tail(c["rfh"]) < tail(c["random"]),
				"rfh=%.1f owner=%.1f request=%.1f random=%.1f", tail(c["rfh"]), tail(c["owner"]), tail(c["request"]), tail(c["random"])))
	case "5a", "5c":
		rep.Claims = append(rep.Claims,
			claim("RFH has the lowest total replication cost",
				tail(c["rfh"]) < tail(c["owner"]) && tail(c["rfh"]) < tail(c["request"]) && tail(c["rfh"]) < tail(c["random"]),
				"rfh=%.2f owner=%.2f request=%.2f random=%.2f", tail(c["rfh"]), tail(c["owner"]), tail(c["request"]), tail(c["random"])),
			claim("random has the highest total replication cost",
				tail(c["random"]) > tail(c["rfh"]) && tail(c["random"]) > tail(c["owner"]) && tail(c["random"]) > tail(c["request"]),
				"random=%.2f", tail(c["random"])))
	case "5b", "5d":
		rep.Claims = append(rep.Claims,
			claim("owner-oriented has a low average replication cost (replicates nearby)",
				tail(c["owner"]) < tail(c["random"]),
				"owner=%.4f random=%.4f", tail(c["owner"]), tail(c["random"])))
	case "6a", "6c", "7a", "7c":
		kind := "migration times"
		if id[0] == '7' {
			kind = "migration cost"
		}
		rep.Claims = append(rep.Claims,
			claim("request-oriented has the most "+kind,
				tail(c["request"]) > tail(c["rfh"]) && tail(c["request"]) >= tail(c["owner"]) && tail(c["request"]) >= tail(c["random"]),
				"request=%.2f rfh=%.2f owner=%.2f random=%.2f", tail(c["request"]), tail(c["rfh"]), tail(c["owner"]), tail(c["random"])),
			claim("random never migrates (no migration function)", tail(c["random"]) == 0, "random=%.2f", tail(c["random"])),
			claim("owner-oriented does not migrate in a static topology", tail(c["owner"]) == 0, "owner=%.2f", tail(c["owner"])))
	case "6b", "6d", "7b", "7d":
		rep.Claims = append(rep.Claims,
			claim("random never migrates", tail(c["random"]) == 0, "random=%.3f", tail(c["random"])))
	case "8a", "8b":
		rep.Claims = append(rep.Claims,
			claim("RFH has the best (lowest) load imbalance",
				tail(c["rfh"]) <= tail(c["owner"]) && tail(c["rfh"]) <= tail(c["request"]) && tail(c["rfh"]) <= tail(c["random"]),
				"rfh=%.2f owner=%.2f request=%.2f random=%.2f", tail(c["rfh"]), tail(c["owner"]), tail(c["request"]), tail(c["random"])))
	case "9a", "9b":
		for _, name := range PolicyNames {
			rep.Claims = append(rep.Claims,
				claim(name+" path length drops sharply from the initial value",
					tail(c[name]) < head(c[name]),
					"initial=%.2f late=%.2f", head(c[name]), tail(c[name])))
		}
	case "e1":
		rep.Claims = append(rep.Claims,
			claim("RFH keeps the highest SLA satisfaction under flash crowd",
				tail(c["rfh"]) >= tail(c["owner"])-1e-3 && tail(c["rfh"]) >= tail(c["request"])-1e-3 && tail(c["rfh"]) >= tail(c["random"])-1e-3,
				"rfh=%.3f owner=%.3f request=%.3f random=%.3f", tail(c["rfh"]), tail(c["owner"]), tail(c["request"]), tail(c["random"])),
			claim("every policy eventually meets the SLA for most queries",
				tail(c["rfh"]) > 0.8 && tail(c["owner"]) > 0.8 && tail(c["request"]) > 0.8 && tail(c["random"]) > 0.8,
				"min=%.3f", min4(tail(c["rfh"]), tail(c["owner"]), tail(c["request"]), tail(c["random"]))))
	case "e2":
		rep.Claims = append(rep.Claims,
			claim("RFH keeps served fraction above 95% under continuous churn",
				tail(c["rfh"]) >= 0.95,
				"rfh=%.3f", tail(c["rfh"])),
			claim("all policies keep serving through churn (no collapse)",
				tail(c["owner"]) > 0.8 && tail(c["request"]) > 0.8 && tail(c["random"]) > 0.8,
				"owner=%.3f request=%.3f random=%.3f", tail(c["owner"]), tail(c["request"]), tail(c["random"])))
	case "10":
		reps := c[metrics.SeriesTotalReplicas]
		fe := s.failureMeta.failEpoch
		pre := stats.Mean(reps[fe-20 : fe])
		at := reps[fe]
		post := tail(reps)
		rep.Claims = append(rep.Claims,
			claim("replica count grows to a plateau before the failure", pre > reps[0], "start=%.0f plateau=%.0f", reps[0], pre),
			claim("mass failure causes a sharp replica drop", at < 0.95*pre, "pre=%.0f at-failure=%.0f", pre, at),
			claim("RFH rebuilds replicas back to the pre-failure level", post >= 0.9*pre, "pre=%.0f recovered=%.0f", pre, post))
	default:
		return nil, fmt.Errorf("experiments: no shape checks for figure %q", id)
	}
	return rep, nil
}

// CheckAll evaluates every figure's shape claims.
func (s *Suite) CheckAll() ([]*ShapeReport, error) {
	var out []*ShapeReport
	for _, id := range FigureIDs() {
		rep, err := s.CheckFigure(id)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

func min4(a, b, c, d float64) float64 {
	m := a
	for _, v := range []float64{b, c, d} {
		if v < m {
			m = v
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
