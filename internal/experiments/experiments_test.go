package experiments

import (
	"testing"

	"repro/internal/metrics"
)

// quickOpts shrinks the campaigns so the full suite runs in CI time
// while keeping every stage boundary meaningful.
func quickOpts() Options {
	opts := DefaultOptions()
	opts.EpochsRandom = 120
	opts.EpochsFlash = 200
	opts.EpochsFailure = 200
	opts.FailEpoch = 120
	return opts
}

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOptionsValidation(t *testing.T) {
	muts := []func(*Options){
		func(o *Options) { o.EpochsRandom = 5 },
		func(o *Options) { o.FailEpoch = 0 },
		func(o *Options) { o.FailEpoch = o.EpochsFailure },
		func(o *Options) { o.FailServers = 0 },
		func(o *Options) { o.Lambda = 0 },
	}
	for i, mut := range muts {
		o := DefaultOptions()
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSuite(Options{}); err == nil {
		t.Fatal("zero options accepted")
	}
}

func TestFigureIDsAllResolvable(t *testing.T) {
	s := quickSuite(t)
	for _, id := range FigureIDs() {
		fig, err := s.Figure(id)
		if err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("figure %s has no series", id)
		}
		if fig.Title == "" || fig.YLabel == "" {
			t.Fatalf("figure %s missing labels", id)
		}
		for _, ser := range fig.Series {
			if len(ser.Points) == 0 {
				t.Fatalf("figure %s series %s empty", id, ser.Name)
			}
		}
	}
}

func TestUnknownFigureRejected(t *testing.T) {
	s := quickSuite(t)
	if _, err := s.Figure("99z"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if _, err := s.CheckFigure("99z"); err == nil {
		t.Fatal("unknown figure check accepted")
	}
}

func TestCampaignsAreCached(t *testing.T) {
	s := quickSuite(t)
	a, err := s.RandomRuns()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RandomRuns()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("random campaign re-ran instead of using the cache")
	}
}

func TestCampaignCoversAllPolicies(t *testing.T) {
	s := quickSuite(t)
	runs, err := s.RandomRuns()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("campaign has %d runs", len(runs))
	}
	seen := map[string]bool{}
	for _, r := range runs {
		seen[r.Policy] = true
		if r.Recorder.Epochs() != quickOpts().EpochsRandom {
			t.Fatalf("%s recorded %d epochs", r.Policy, r.Recorder.Epochs())
		}
	}
	for _, name := range PolicyNames {
		if !seen[name] {
			t.Fatalf("policy %s missing from campaign", name)
		}
	}
}

// TestAllShapeClaims is the repository's headline integration test: the
// paper's qualitative claims must hold for every figure.
func TestAllShapeClaims(t *testing.T) {
	s := quickSuite(t)
	reports, err := s.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	total, failed := 0, 0
	for _, rep := range reports {
		for _, c := range rep.Claims {
			total++
			if !c.Pass {
				failed++
				t.Errorf("fig %-3s: %s (%s)", rep.Figure, c.Description, c.Detail)
			}
		}
	}
	if total < 40 {
		t.Fatalf("only %d claims checked; coverage regressed", total)
	}
	t.Logf("%d/%d shape claims hold", total-failed, total)
}

func TestFailureRunMeta(t *testing.T) {
	s := quickSuite(t)
	run, err := s.FailureRun()
	if err != nil {
		t.Fatal(err)
	}
	if run.Policy != "rfh" {
		t.Fatalf("failure run uses %s", run.Policy)
	}
	alive := run.Recorder.Series(metrics.SeriesAliveServers).Points
	fe := quickOpts().FailEpoch
	if alive[fe-1] != 100 || alive[fe] != 100-float64(quickOpts().FailServers) {
		t.Fatalf("alive at failure: %g -> %g", alive[fe-1], alive[fe])
	}
}

func TestTableIRows(t *testing.T) {
	s := quickSuite(t)
	rows := s.TableI()
	if len(rows) != 15 {
		t.Fatalf("Table I has %d rows, want 15", len(rows))
	}
	want := map[string]string{
		"Max server storage capacity": "10 GB",
		"Server storage rate limit":   "70%",
		"Replication bandwidth":       "300 MB/epoch",
		"Migration bandwidth":         "100 MB/epoch",
		"Partitions":                  "64",
		"Partition size":              "512 KB",
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r[0]] = r[1]
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Table I row %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestFiguresReturnCopies(t *testing.T) {
	s := quickSuite(t)
	a, err := s.Figure("3a")
	if err != nil {
		t.Fatal(err)
	}
	a.Series[0].Points[0] = -999
	b, err := s.Figure("3a")
	if err != nil {
		t.Fatal(err)
	}
	if b.Series[0].Points[0] == -999 {
		t.Fatal("figure points alias the cached recorder")
	}
}

func TestNewPolicyUnknown(t *testing.T) {
	if _, err := newPolicy("nonexistent"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestAllShapeClaimsFullScale repeats the headline verification at the
// paper's exact dimensions (250/400/500-epoch runs). Slower than the
// quick variant; skipped under -short.
func TestAllShapeClaimsFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale campaign is slow")
	}
	s, err := NewSuite(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reports, err := s.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		for _, c := range rep.Claims {
			if !c.Pass {
				t.Errorf("fig %-3s: %s (%s)", rep.Figure, c.Description, c.Detail)
			}
		}
	}
}
