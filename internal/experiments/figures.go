package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/traffic"
)

// Labeled is one curve of a figure.
type Labeled struct {
	Name   string
	Points []float64
}

// Figure is the data behind one paper figure: an x-axis of epochs and
// one curve per policy (or a single curve for Fig. 10).
type Figure struct {
	ID     string
	Title  string
	YLabel string
	Series []Labeled
}

// figureSpec maps a figure id to the campaign and metric series it is
// extracted from.
type figureSpec struct {
	title  string
	ylabel string
	flash  bool
	series string
}

var figureSpecs = map[string]figureSpec{
	"3a": {"Replica utilization rate under random query", "utilization", false, metrics.SeriesUtilization},
	"3b": {"Replica utilization rate under flash crowd", "utilization", true, metrics.SeriesUtilization},
	"4a": {"Total replica number under random query", "replicas", false, metrics.SeriesTotalReplicas},
	"4b": {"Average replica number per partition under random query", "replicas/partition", false, metrics.SeriesAvgReplicas},
	"4c": {"Total replica number under flash crowd", "replicas", true, metrics.SeriesTotalReplicas},
	"4d": {"Average replica number per partition under flash crowd", "replicas/partition", true, metrics.SeriesAvgReplicas},
	"5a": {"Total replication cost under random query", "cost (eq. 1, cumulative)", false, metrics.SeriesReplCost},
	"5b": {"Average replication cost per replica under random query", "cost/replication", false, metrics.SeriesReplCostAvg},
	"5c": {"Total replication cost under flash crowd", "cost (eq. 1, cumulative)", true, metrics.SeriesReplCost},
	"5d": {"Average replication cost per replica under flash crowd", "cost/replication", true, metrics.SeriesReplCostAvg},
	"6a": {"Total migration times under random query", "migrations (cumulative)", false, metrics.SeriesMigrTimes},
	"6b": {"Average migration times per replica under random query", "migrations/replica", false, metrics.SeriesMigrTimesAvg},
	"6c": {"Total migration times under flash crowd", "migrations (cumulative)", true, metrics.SeriesMigrTimes},
	"6d": {"Average migration times per replica under flash crowd", "migrations/replica", true, metrics.SeriesMigrTimesAvg},
	"7a": {"Total migration cost under random query", "cost (eq. 1, cumulative)", false, metrics.SeriesMigrCost},
	"7b": {"Average migration cost per replica under random query", "cost/migration", false, metrics.SeriesMigrCostAvg},
	"7c": {"Total migration cost under flash crowd", "cost (eq. 1, cumulative)", true, metrics.SeriesMigrCost},
	"7d": {"Average migration cost per replica under flash crowd", "cost/migration", true, metrics.SeriesMigrCostAvg},
	"8a": {"Load imbalance under random query", "L_b (eq. 25)", false, metrics.SeriesLoadImbalance},
	"8b": {"Load imbalance under flash crowd", "L_b (eq. 25)", true, metrics.SeriesLoadImbalance},
	"9a": {"Lookup path length under random query", "hops", false, metrics.SeriesPathLength},
	"9b": {"Lookup path length under flash crowd", "hops", true, metrics.SeriesPathLength},
}

// FigureIDs returns every reproducible figure id in presentation
// order: the paper's Figs. 3–10 plus two extension figures — E1 (SLA
// satisfaction under flash crowd, after the paper's §I motivation) and
// E2 (empirical availability under continuous churn).
func FigureIDs() []string {
	return []string{
		"3a", "3b", "4a", "4b", "4c", "4d", "5a", "5b", "5c", "5d",
		"6a", "6b", "6c", "6d", "7a", "7b", "7c", "7d",
		"8a", "8b", "9a", "9b", "10", "e1", "e2",
	}
}

// Figure extracts the named figure, running the underlying campaign if
// necessary. Valid ids are FigureIDs().
func (s *Suite) Figure(id string) (*Figure, error) {
	switch id {
	case "10":
		return s.figure10()
	case "e1":
		runs, err := s.FlashRuns()
		if err != nil {
			return nil, err
		}
		return extensionFigure("e1",
			"Ext. E1: SLA satisfaction under flash crowd (300 ms, §I)",
			"fraction within SLA", runs, metrics.SeriesSLAFrac)
	case "e2":
		runs, err := s.ChurnRuns()
		if err != nil {
			return nil, err
		}
		return extensionFigure("e2",
			"Ext. E2: served fraction under continuous churn (p=0.01, MTTR=15)",
			"served fraction", runs, metrics.SeriesUnservedFrac)
	}
	spec, ok := figureSpecs[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q", id)
	}
	var runs []PolicyRun
	var err error
	if spec.flash {
		runs, err = s.FlashRuns()
	} else {
		runs, err = s.RandomRuns()
	}
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: id, Title: "Fig. " + id + ": " + spec.title, YLabel: spec.ylabel}
	for _, run := range runs {
		ser := run.Recorder.Series(spec.series)
		if ser == nil {
			return nil, fmt.Errorf("experiments: run %s missing series %s", run.Policy, spec.series)
		}
		pts := make([]float64, len(ser.Points))
		copy(pts, ser.Points)
		fig.Series = append(fig.Series, Labeled{Name: run.Policy, Points: pts})
	}
	return fig, nil
}

// extensionFigure assembles one extension figure from a campaign. For
// e2 the unserved fraction is inverted into a served (availability)
// fraction.
func extensionFigure(id, title, ylabel string, runs []PolicyRun, series string) (*Figure, error) {
	fig := &Figure{ID: id, Title: title, YLabel: ylabel}
	for _, run := range runs {
		ser := run.Recorder.Series(series)
		if ser == nil {
			return nil, fmt.Errorf("experiments: run %s missing series %s", run.Policy, series)
		}
		pts := make([]float64, len(ser.Points))
		copy(pts, ser.Points)
		if id == "e2" {
			for i, v := range pts {
				pts[i] = 1 - v
			}
		}
		fig.Series = append(fig.Series, Labeled{Name: run.Policy, Points: pts})
	}
	return fig, nil
}

// figure10 builds the node failure and recovery figure: RFH's total
// replica count across the mass failure at FailEpoch, plus the alive-
// server count for context.
func (s *Suite) figure10() (*Figure, error) {
	run, err := s.FailureRun()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "10",
		Title:  fmt.Sprintf("Fig. 10: Node failure and recovery (%d servers fail at epoch %d)", s.failureMeta.failed, s.failureMeta.failEpoch),
		YLabel: "replicas / servers",
	}
	for _, name := range []string{metrics.SeriesTotalReplicas, metrics.SeriesAliveServers, metrics.SeriesLostPartitions} {
		ser := run.Recorder.Series(name)
		pts := make([]float64, len(ser.Points))
		copy(pts, ser.Points)
		fig.Series = append(fig.Series, Labeled{Name: name, Points: pts})
	}
	return fig, nil
}

// TableI returns the Table I environment and parameter setting actually
// in force, as (name, value) rows.
func (s *Suite) TableI() [][2]string {
	spec := cluster.DefaultSpec()
	th := traffic.DefaultThresholds()
	return [][2]string{
		{"Max server storage capacity", fmt.Sprintf("%d GB", spec.StorageCapacity>>30)},
		{"Server storage rate limit", fmt.Sprintf("%.0f%%", spec.StorageLimit*100)},
		{"Replication bandwidth", fmt.Sprintf("%d MB/epoch", spec.ReplicationBW>>20)},
		{"Migration bandwidth", fmt.Sprintf("%d MB/epoch", spec.MigrationBW>>20)},
		{"Epoch", "10 seconds"},
		{"Queries per epoch", fmt.Sprintf("Poisson(lambda=%.0f)", s.opts.Lambda)},
		{"Partitions", fmt.Sprintf("%d", spec.Partitions)},
		{"Partition size", fmt.Sprintf("%d KB", spec.PartitionSize>>10)},
		{"Failure rate", "0.1"},
		{"Minimum availability", "0.8"},
		{"alpha", fmt.Sprintf("%g", th.Alpha)},
		{"beta", fmt.Sprintf("%g", th.Beta)},
		{"gamma", fmt.Sprintf("%g", th.Gamma)},
		{"delta", fmt.Sprintf("%g", th.Delta)},
		{"mu", fmt.Sprintf("%g", th.Mu)},
	}
}
