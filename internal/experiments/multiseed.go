package experiments

import (
	"fmt"

	"repro/internal/stats"
)

// SeedStat is one policy's steady-state statistic across seeds.
type SeedStat struct {
	Policy string
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// MultiSeedResult aggregates one figure's steady-state value over
// several independent seeds — the statistical robustness check the
// paper (single-run plots) never provides.
type MultiSeedResult struct {
	FigureID string
	Seeds    []uint64
	Stats    []SeedStat
}

// MultiSeed reruns the campaign behind one figure across the given
// seeds and aggregates each curve's steady-state (tail-mean) value.
// The base options are reused with only the seed changing.
func MultiSeed(base Options, figureID string, seeds []uint64) (*MultiSeedResult, error) {
	if len(seeds) < 2 {
		return nil, fmt.Errorf("experiments: multi-seed needs at least 2 seeds, got %d", len(seeds))
	}
	perPolicy := make(map[string][]float64)
	var order []string
	for _, seed := range seeds {
		opts := base
		opts.Seed = seed
		s, err := NewSuite(opts)
		if err != nil {
			return nil, err
		}
		fig, err := s.Figure(figureID)
		if err != nil {
			return nil, err
		}
		for _, ser := range fig.Series {
			if _, seen := perPolicy[ser.Name]; !seen {
				order = append(order, ser.Name)
			}
			perPolicy[ser.Name] = append(perPolicy[ser.Name], tail(ser.Points))
		}
	}
	out := &MultiSeedResult{FigureID: figureID, Seeds: append([]uint64(nil), seeds...)}
	for _, name := range order {
		vals := perPolicy[name]
		out.Stats = append(out.Stats, SeedStat{
			Policy: name,
			Mean:   stats.Mean(vals),
			StdDev: stats.StdDev(vals),
			Min:    stats.Min(vals),
			Max:    stats.Max(vals),
		})
	}
	return out, nil
}

// Summary renders the aggregation as aligned text.
func (m *MultiSeedResult) Summary() string {
	out := fmt.Sprintf("figure %s over %d seeds (steady-state tail means)\n", m.FigureID, len(m.Seeds))
	out += fmt.Sprintf("  %-10s %12s %12s %12s %12s\n", "series", "mean", "stddev", "min", "max")
	for _, st := range m.Stats {
		out += fmt.Sprintf("  %-10s %12.4g %12.3g %12.4g %12.4g\n", st.Policy, st.Mean, st.StdDev, st.Min, st.Max)
	}
	return out
}

// OrderingHolds reports whether the policy ordering by mean steady
// value is *separated*: for every adjacent pair in the mean-sorted
// order, the gap exceeds k times the pooled standard deviation. A
// robust paper claim should survive k = 1.
func (m *MultiSeedResult) OrderingHolds(k float64) bool {
	for i := 0; i < len(m.Stats); i++ {
		for j := i + 1; j < len(m.Stats); j++ {
			a, b := m.Stats[i], m.Stats[j]
			gap := a.Mean - b.Mean
			if gap < 0 {
				gap = -gap
			}
			pooled := (a.StdDev + b.StdDev) / 2
			if gap < k*pooled {
				return false
			}
		}
	}
	return true
}
