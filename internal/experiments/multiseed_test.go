package experiments

import (
	"strings"
	"testing"
)

func TestMultiSeedValidation(t *testing.T) {
	if _, err := MultiSeed(quickOpts(), "3a", []uint64{1}); err == nil {
		t.Fatal("single seed accepted")
	}
	if _, err := MultiSeed(quickOpts(), "zz", []uint64{1, 2}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestMultiSeedUtilizationOrderingRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep is slow")
	}
	opts := quickOpts()
	opts.EpochsRandom = 80
	res, err := MultiSeed(opts, "3a", []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 4 {
		t.Fatalf("stats for %d policies", len(res.Stats))
	}
	byName := map[string]SeedStat{}
	for _, st := range res.Stats {
		byName[st.Policy] = st
		if st.StdDev < 0 || st.Min > st.Max || st.Mean < st.Min || st.Mean > st.Max {
			t.Fatalf("inconsistent stat %+v", st)
		}
	}
	// The headline ordering must hold in the mean across seeds.
	if !(byName["rfh"].Mean > byName["owner"].Mean && byName["random"].Mean < byName["owner"].Mean) {
		t.Fatalf("utilization ordering unstable across seeds: %+v", byName)
	}
	// RFH's lead over random must be separated by well over one pooled
	// standard deviation.
	gap := byName["rfh"].Mean - byName["random"].Mean
	pooled := (byName["rfh"].StdDev + byName["random"].StdDev) / 2
	if gap < pooled {
		t.Fatalf("rfh-vs-random separation weak: gap=%.3f pooled sd=%.3f", gap, pooled)
	}
	if !strings.Contains(res.Summary(), "rfh") {
		t.Fatal("summary missing policy rows")
	}
}

func TestOrderingHoldsHelper(t *testing.T) {
	m := &MultiSeedResult{Stats: []SeedStat{
		{Policy: "a", Mean: 10, StdDev: 1},
		{Policy: "b", Mean: 5, StdDev: 1},
	}}
	if !m.OrderingHolds(1) {
		t.Fatal("well-separated ordering rejected")
	}
	if m.OrderingHolds(10) {
		t.Fatal("impossible separation accepted")
	}
}
