// Package experiments reproduces the paper's evaluation (§III): every
// figure from Fig. 3 through Fig. 10 plus the Table I configuration
// echo. A Suite lazily runs the three underlying simulations — the
// random-query setting, the four-stage flash-crowd setting (both with
// all four policies), and the Fig. 10 failure/recovery run (RFH only) —
// and extracts per-figure series from the recorded metrics. Results are
// cached, so requesting all figures costs three simulation campaigns.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Options configures a reproduction campaign. Defaults mirror §III-A.
type Options struct {
	Seed          uint64
	EpochsRandom  int     // random-query run length (paper plots ~250)
	EpochsFlash   int     // flash-crowd run length (paper plots ~400)
	EpochsFailure int     // Fig. 10 run length (paper plots ~500)
	FailEpoch     int     // Fig. 10 mass-failure epoch (paper: 290)
	FailServers   int     // Fig. 10 servers removed (paper: 30)
	Lambda        float64 // queries per partition per epoch (Table I: 300)
	Workers       int     // simulation worker bound; 0 = GOMAXPROCS
	Serving       sim.ServingModel
}

// DefaultOptions returns the paper's experiment dimensions.
func DefaultOptions() Options {
	return Options{
		Seed:          1,
		EpochsRandom:  250,
		EpochsFlash:   400,
		EpochsFailure: 500,
		FailEpoch:     290,
		FailServers:   30,
		Lambda:        300,
		Serving:       sim.ServePath,
	}
}

// Validate checks the options.
func (o Options) Validate() error {
	switch {
	case o.EpochsRandom < 10 || o.EpochsFlash < 10 || o.EpochsFailure < 10:
		return fmt.Errorf("experiments: runs need at least 10 epochs")
	case o.FailEpoch <= 0 || o.FailEpoch >= o.EpochsFailure:
		return fmt.Errorf("experiments: fail epoch %d outside run (0, %d)", o.FailEpoch, o.EpochsFailure)
	case o.FailServers <= 0:
		return fmt.Errorf("experiments: must fail at least one server")
	case o.Lambda <= 0:
		return fmt.Errorf("experiments: lambda must be positive")
	}
	return nil
}

// PolicyRun pairs a policy name with the metric series its simulation
// produced.
type PolicyRun struct {
	Policy   string
	Recorder *metrics.Recorder
}

// PolicyNames lists the four §III algorithms in the paper's legend
// order.
var PolicyNames = []string{"request", "owner", "random", "rfh"}

// newPolicy constructs a fresh policy instance by name (policies are
// stateful, so every run needs its own).
func newPolicy(name string) (policy.Policy, error) {
	switch name {
	case "rfh":
		return core.NewRFH(), nil
	case "random":
		return policy.NewRandom(), nil
	case "owner":
		return policy.NewOwnerOriented(), nil
	case "request":
		return policy.NewRequestOriented(0.2), nil
	default:
		return nil, fmt.Errorf("experiments: unknown policy %q", name)
	}
}

// Suite runs and caches the simulation campaigns behind the figures.
// It is not safe for concurrent use.
type Suite struct {
	opts Options

	randomRuns  []PolicyRun
	flashRuns   []PolicyRun
	churnRuns   []PolicyRun
	failureRun  *PolicyRun
	failureMeta failureMeta
}

type failureMeta struct {
	failEpoch int
	failed    int
}

// NewSuite creates a suite; it runs nothing until a figure is
// requested.
func NewSuite(opts Options) (*Suite, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Suite{opts: opts}, nil
}

// Options returns the suite's configuration.
func (s *Suite) Options() Options { return s.opts }

// components wires the shared pieces of one simulation: paper world,
// Table I cluster, and the requested workload and policy.
func (s *Suite) components(polName string, flash bool, epochs int) (*cluster.Cluster, *network.Router, workload.Generator, policy.Policy, error) {
	w := topology.PaperWorld()
	rt, err := network.NewRouter(w)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	spec := cluster.DefaultSpec()
	spec.Seed = s.opts.Seed
	cl, err := cluster.New(w, spec)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	wcfg := workload.Config{
		Partitions: cl.NumPartitions(),
		DCs:        w.NumDCs(),
		Lambda:     s.opts.Lambda,
		Seed:       s.opts.Seed ^ 0xA11CE,
	}
	var gen workload.Generator
	if flash {
		gen, err = workload.NewPaperFlashCrowd(wcfg, w, epochs)
	} else {
		gen, err = workload.NewUniform(wcfg)
	}
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pol, err := newPolicy(polName)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return cl, rt, gen, pol, nil
}

// buildEngine wires one simulation with the suite's default config.
func (s *Suite) buildEngine(polName string, flash bool, epochs int) (*sim.Engine, error) {
	cl, rt, gen, pol, err := s.components(polName, flash, epochs)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	cfg.Epochs = epochs
	cfg.Seed = s.opts.Seed
	cfg.Workers = s.opts.Workers
	cfg.Serving = s.opts.Serving
	return sim.New(cl, rt, gen, pol, cfg)
}

// runCampaign simulates every policy over one workload setting.
func (s *Suite) runCampaign(flash bool, epochs int) ([]PolicyRun, error) {
	runs := make([]PolicyRun, 0, len(PolicyNames))
	for _, name := range PolicyNames {
		eng, err := s.buildEngine(name, flash, epochs)
		if err != nil {
			return nil, err
		}
		rec, err := eng.Run()
		eng.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%v: %w", name, flash, err)
		}
		runs = append(runs, PolicyRun{Policy: name, Recorder: rec})
	}
	return runs, nil
}

// RandomRuns returns (running on first use) the §III random-query
// campaign for all four policies.
func (s *Suite) RandomRuns() ([]PolicyRun, error) {
	if s.randomRuns == nil {
		runs, err := s.runCampaign(false, s.opts.EpochsRandom)
		if err != nil {
			return nil, err
		}
		s.randomRuns = runs
	}
	return s.randomRuns, nil
}

// FlashRuns returns (running on first use) the flash-crowd campaign.
func (s *Suite) FlashRuns() ([]PolicyRun, error) {
	if s.flashRuns == nil {
		runs, err := s.runCampaign(true, s.opts.EpochsFlash)
		if err != nil {
			return nil, err
		}
		s.flashRuns = runs
	}
	return s.flashRuns, nil
}

// ChurnRuns returns (running on first use) the churn extension
// campaign: every policy under uniform load with each server failing
// independently per epoch (p = 0.01, MTTR 15) — the empirical
// availability experiment behind extension figure E2.
func (s *Suite) ChurnRuns() ([]PolicyRun, error) {
	if s.churnRuns == nil {
		runs := make([]PolicyRun, 0, len(PolicyNames))
		for _, name := range PolicyNames {
			cl, rt, gen, pol, err := s.components(name, false, s.opts.EpochsRandom)
			if err != nil {
				return nil, err
			}
			cfg := sim.DefaultConfig()
			cfg.Epochs = s.opts.EpochsRandom
			cfg.Seed = s.opts.Seed
			cfg.Workers = s.opts.Workers
			cfg.Serving = s.opts.Serving
			cfg.ChurnFailProb = 0.01
			cfg.ChurnMTTR = 15
			eng, err := sim.New(cl, rt, gen, pol, cfg)
			if err != nil {
				return nil, err
			}
			rec, err := eng.Run()
			eng.Close()
			if err != nil {
				return nil, err
			}
			runs = append(runs, PolicyRun{Policy: name, Recorder: rec})
		}
		s.churnRuns = runs
	}
	return s.churnRuns, nil
}

// FailureRun returns (running on first use) the Fig. 10 experiment:
// RFH under random query with FailServers random servers removed at
// FailEpoch.
func (s *Suite) FailureRun() (*PolicyRun, error) {
	if s.failureRun == nil {
		eng, err := s.buildEngine("rfh", false, s.opts.EpochsFailure)
		if err != nil {
			return nil, err
		}
		rng := stats.NewRNG(s.opts.Seed ^ 0xFA11)
		perm := rng.Perm(eng.Cluster().NumServers())
		fail := make([]cluster.ServerID, 0, s.opts.FailServers)
		for _, idx := range perm[:s.opts.FailServers] {
			fail = append(fail, cluster.ServerID(idx))
		}
		sort.Slice(fail, func(i, j int) bool { return fail[i] < fail[j] })
		eng.ScheduleFailure(sim.FailureEvent{Epoch: s.opts.FailEpoch, Fail: fail})
		rec, err := eng.Run()
		eng.Close()
		if err != nil {
			return nil, err
		}
		s.failureRun = &PolicyRun{Policy: "rfh", Recorder: rec}
		s.failureMeta = failureMeta{failEpoch: s.opts.FailEpoch, failed: len(fail)}
	}
	return s.failureRun, nil
}
