// Package histcheck verifies recorded operation histories against the
// consistency model the quorum data plane claims: single-register
// linearizability per key, and the session guarantees (read-your-writes,
// monotonic reads, monotonic writes) per client.
//
// The input is a complete client-side history: every put and get
// invocation with its response, stamped with history-order timestamps
// (Invoke/Return). Two ops are concurrent when their [Invoke, Return]
// intervals overlap; the checkers never assume the recorder serialized
// anything beyond what the timestamps say.
//
// The linearizability checker is the Wing & Gong / Lowe (WGL) search
// used by Porcupine: walk the history's entry list, tentatively
// linearize any completed-looking op whose postcondition matches the
// register, backtrack on dead ends, and memoize visited
// (linearized-set, register-state) configurations so the search is
// pruned from factorial to the number of distinct configurations. Two
// model details matter here:
//
//   - A put that FAILED (no quorum ack, or the route errored) may still
//     have been applied — the reply can be lost after the primary
//     commits. Such ops are optional: the checker may linearize them at
//     any point after their invocation, or discard them entirely.
//   - A reset op (OpReset) marks a point where the environment
//     legitimately destroyed the register (the chaos harness records one
//     when every physical copy of a key is lost). It linearizes like a
//     mandatory write of "absent".
//
// Gets marked Relaxed or Errored are recorded for replay/debugging but
// exempt from both checkers: the harness only binds reads taken when
// the cluster is routing steadily, mirroring its staleness gate.
package histcheck

import "fmt"

// OpKind says what a history operation did.
type OpKind uint8

const (
	// OpPut wrote Value (version-stamped by the primary).
	OpPut OpKind = iota + 1
	// OpGet read the register; Found=false means not-found.
	OpGet
	// OpReset marks an environmental wipe of the key: every physical
	// copy was destroyed, so the register legitimately became absent.
	OpReset
)

// String names the kind for dumps.
func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpReset:
		return "reset"
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Op is one recorded client operation on one key.
type Op struct {
	Client  int    // session id, e.g. the roster index of the entry node
	Kind    OpKind // put, get, or reset
	Key     string // register identity
	Value   string // put: value written; get: value returned when Found
	Version uint64 // put: version the receipt stamped; get: version observed
	Found   bool   // get: true when a value came back
	Acked   bool   // put: the write reached quorum and was acknowledged
	Relaxed bool   // get: recorded for the dump but exempt from checking
	Errored bool   // the call returned an error instead of a result
	Epoch   int    // epoch the op ran in; -1 for synthetic/injected ops
	Invoke  int64  // history-order timestamp of the invocation
	Return  int64  // history-order timestamp of the response
}

// String renders the op for -dump-history replay output.
func (op Op) String() string {
	s := fmt.Sprintf("c%d e%03d [%d,%d] %s key=%s", op.Client, op.Epoch, op.Invoke, op.Return, op.Kind, op.Key)
	switch op.Kind {
	case OpPut:
		s += fmt.Sprintf(" val=%s ver=%d", op.Value, op.Version)
		if op.Acked {
			s += " acked"
		} else {
			s += " failed"
		}
	case OpGet:
		switch {
		case op.Errored:
			s += " errored"
		case !op.Found:
			s += " notfound"
		default:
			s += fmt.Sprintf(" val=%s ver=%d", op.Value, op.Version)
		}
		if op.Relaxed {
			s += " relaxed"
		}
	}
	return s
}

// Violation is one consistency breach a checker proved from the
// history. Check is the guarantee that broke: "linearizability",
// "read-your-writes", "monotonic-reads" or "monotonic-writes".
type Violation struct {
	Check  string
	Key    string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Check, v.Detail)
}
