package histcheck

import (
	"fmt"
	"strings"
	"testing"
)

// Builders keep the hand-crafted histories terse. Timestamps are the
// real payload of every case: intervals that overlap are concurrent.

func putOp(c int, key, val string, ver uint64, acked bool, inv, ret int64) Op {
	return Op{Client: c, Kind: OpPut, Key: key, Value: val, Version: ver, Acked: acked, Invoke: inv, Return: ret}
}

func getOp(c int, key, val string, ver uint64, inv, ret int64) Op {
	return Op{Client: c, Kind: OpGet, Key: key, Value: val, Version: ver, Found: true, Invoke: inv, Return: ret}
}

func getMiss(c int, key string, inv, ret int64) Op {
	return Op{Client: c, Kind: OpGet, Key: key, Invoke: inv, Return: ret}
}

func resetOp(key string, inv, ret int64) Op {
	return Op{Kind: OpReset, Key: key, Invoke: inv, Return: ret}
}

// pathologicalWidth builds groups of `width` mutually concurrent acked
// puts of distinct values, each group followed by a read of one of
// them. Linearizable — but a search without configuration memoization
// explores ~width! orderings per group and width!^groups overall, which
// for 8^6 groups is beyond any test budget. The memoized search visits
// at most groups·2^width configurations and finishes instantly; this
// case is the regression guard on that pruning.
func pathologicalWidth(groups, width int) []Op {
	var ops []Op
	t := int64(0)
	ver := uint64(1)
	for g := 0; g < groups; g++ {
		base := t
		for i := 0; i < width; i++ {
			val := fmt.Sprintf("g%d-w%d", g, i)
			// All puts of a group overlap: invokes first, returns after.
			ops = append(ops, putOp(i, "wide", val, ver, true, base+int64(i), base+int64(width+i)))
			ver++
		}
		t = base + int64(2*width)
		ops = append(ops, getOp(0, "wide", fmt.Sprintf("g%d-w%d", g, width-1), ver-1, t, t+1))
		t += 2
	}
	return ops
}

func TestCheckLinearizable(t *testing.T) {
	cases := []struct {
		name string
		ops  []Op
		want []string // substrings of expected violation details, in order; empty = clean
	}{
		{
			name: "sequential history linearizes",
			ops: []Op{
				putOp(0, "k", "v1", 1, true, 0, 1),
				getOp(1, "k", "v1", 1, 2, 3),
				putOp(0, "k", "v2", 2, true, 4, 5),
				getOp(1, "k", "v2", 2, 6, 7),
			},
		},
		{
			name: "concurrent puts allow either winner",
			ops: []Op{
				putOp(0, "k", "a", 1, true, 0, 10),
				putOp(1, "k", "b", 2, true, 1, 9),
				getOp(2, "k", "a", 1, 11, 12), // a after b is a legal order
			},
		},
		{
			name: "read overlapping a put may see old or new",
			ops: []Op{
				putOp(0, "k", "old", 1, true, 0, 1),
				putOp(0, "k", "new", 2, true, 4, 8),
				getOp(1, "k", "old", 1, 5, 6), // put still in flight
				getOp(2, "k", "new", 2, 9, 10),
			},
		},
		{
			name: "stale read after a newer acked write",
			ops: []Op{
				putOp(0, "k", "v1", 1, true, 0, 1),
				putOp(0, "k", "v2", 2, true, 2, 3),
				getOp(1, "k", "v1", 1, 4, 5),
			},
			want: []string{"key k"},
		},
		{
			name: "lost intermediate acked write",
			ops: []Op{
				putOp(0, "k", "v1", 1, true, 0, 1),
				putOp(0, "k", "v2", 2, true, 2, 3),
				getOp(1, "k", "v1", 1, 4, 5),
				getOp(1, "k", "v1", 1, 6, 7), // v2 never becomes visible
			},
			want: []string{"key k"},
		},
		{
			name: "failed put is optional: may never take effect",
			ops: []Op{
				putOp(0, "k", "v1", 1, true, 0, 1),
				putOp(0, "k", "v2", 2, false, 2, 3), // no ack — discardable
				getOp(1, "k", "v1", 1, 4, 5),
				getOp(1, "k", "v1", 1, 6, 7),
			},
		},
		{
			name: "failed put is optional: may also take effect late",
			ops: []Op{
				putOp(0, "k", "v1", 1, true, 0, 1),
				putOp(0, "k", "v2", 2, false, 2, 3), // applied despite the lost reply
				getOp(1, "k", "v1", 1, 4, 5),
				getOp(1, "k", "v2", 2, 6, 7), // surfaces much later
			},
		},
		{
			name: "value from thin air",
			ops: []Op{
				putOp(0, "k", "v1", 1, true, 0, 1),
				getOp(1, "k", "ghost", 9, 2, 3),
			},
			want: []string{"key k"},
		},
		{
			name: "not-found after an acked write",
			ops: []Op{
				putOp(0, "k", "v1", 1, true, 0, 1),
				getMiss(1, "k", 2, 3),
			},
			want: []string{"key k"},
		},
		{
			name: "not-found is legal after a reset",
			ops: []Op{
				putOp(0, "k", "v1", 1, true, 0, 1),
				resetOp("k", 2, 3),
				getMiss(1, "k", 4, 5),
			},
		},
		{
			name: "relaxed stale read is exempt",
			ops: []Op{
				putOp(0, "k", "v1", 1, true, 0, 1),
				putOp(0, "k", "v2", 2, true, 2, 3),
				{Client: 1, Kind: OpGet, Key: "k", Value: "v1", Version: 1, Found: true, Relaxed: true, Invoke: 4, Return: 5},
			},
		},
		{
			name: "errored read is exempt",
			ops: []Op{
				putOp(0, "k", "v1", 1, true, 0, 1),
				{Client: 1, Kind: OpGet, Key: "k", Errored: true, Invoke: 2, Return: 3},
			},
		},
		{
			name: "keys are independent registers",
			ops: []Op{
				putOp(0, "a", "v1", 1, true, 0, 1),
				putOp(0, "b", "w1", 1, true, 2, 3),
				getOp(1, "a", "v1", 1, 4, 5),
				getOp(1, "b", "w9", 9, 6, 7), // only b is broken
			},
			want: []string{"key b"},
		},
		{
			name: "pathological width linearizes under pruning",
			ops:  pathologicalWidth(6, 8),
		},
		{
			name: "pathological width with failed puts exercises discard pruning",
			ops: func() []Op {
				ops := []Op{putOp(0, "wide", "seed", 1, true, 0, 1)}
				for i := 0; i < 10; i++ {
					ops = append(ops, putOp(i, "wide", fmt.Sprintf("f%d", i), uint64(2+i), false, 2+int64(i), 20+int64(i)))
				}
				return append(ops, getOp(0, "wide", "seed", 1, 40, 41))
			}(),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CheckLinearizable(tc.ops)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d violations, want %d:\n%v", len(got), len(tc.want), got)
			}
			for i, w := range tc.want {
				if got[i].Check != "linearizability" {
					t.Errorf("violation %d check = %q, want linearizability", i, got[i].Check)
				}
				if !strings.Contains(got[i].Detail, w) {
					t.Errorf("violation %d detail %q does not mention %q", i, got[i].Detail, w)
				}
			}
		})
	}
}

func TestCheckSessions(t *testing.T) {
	cases := []struct {
		name string
		ops  []Op
		want []string // expected Check names, in order
	}{
		{
			name: "clean session",
			ops: []Op{
				putOp(0, "k", "v1", 5, true, 0, 1),
				getOp(0, "k", "v1", 5, 2, 3),
				putOp(0, "k", "v2", 7, true, 4, 5),
				getOp(0, "k", "v2", 7, 6, 7),
			},
		},
		{
			name: "read your writes: older version after own ack",
			ops: []Op{
				putOp(0, "k", "v2", 7, true, 0, 1),
				getOp(0, "k", "v1", 5, 2, 3),
			},
			want: []string{"read-your-writes"},
		},
		{
			name: "read your writes: not-found after own ack",
			ops: []Op{
				putOp(0, "k", "v2", 7, true, 0, 1),
				getMiss(0, "k", 2, 3),
			},
			want: []string{"read-your-writes"},
		},
		{
			name: "other clients' sessions are independent",
			ops: []Op{
				putOp(0, "k", "v2", 7, true, 0, 1),
				getOp(1, "k", "v1", 5, 2, 3), // stale, but not client 1's write
			},
		},
		{
			name: "monotonic reads go backwards",
			ops: []Op{
				getOp(2, "k", "v2", 7, 0, 1),
				getOp(2, "k", "v1", 5, 2, 3),
			},
			want: []string{"monotonic-reads"},
		},
		{
			name: "monotonic reads: not-found after a hit",
			ops: []Op{
				getOp(2, "k", "v2", 7, 0, 1),
				getMiss(2, "k", 2, 3),
			},
			want: []string{"monotonic-reads"},
		},
		{
			name: "monotonic writes: versions must climb",
			ops: []Op{
				putOp(0, "k", "v2", 7, true, 0, 1),
				putOp(0, "k", "v3", 6, true, 2, 3),
			},
			want: []string{"monotonic-writes"},
		},
		{
			name: "failed put carries no session promise",
			ops: []Op{
				putOp(0, "k", "v2", 7, false, 0, 1),
				getMiss(0, "k", 2, 3),
			},
		},
		{
			name: "reset clears every session watermark",
			ops: []Op{
				putOp(0, "k", "v2", 7, true, 0, 1),
				getOp(2, "k", "v2", 7, 2, 3),
				resetOp("k", 4, 5),
				getMiss(0, "k", 6, 7), // no RYW debt survives the wipe
				getMiss(2, "k", 8, 9), // nor monotonic-read debt
			},
		},
		{
			name: "relaxed and errored reads are exempt",
			ops: []Op{
				putOp(0, "k", "v2", 7, true, 0, 1),
				{Client: 0, Kind: OpGet, Key: "k", Value: "v1", Version: 5, Found: true, Relaxed: true, Invoke: 2, Return: 3},
				{Client: 0, Kind: OpGet, Key: "k", Errored: true, Invoke: 4, Return: 5},
			},
		},
		{
			name: "one broken read can breach two guarantees",
			ops: []Op{
				putOp(0, "k", "v2", 7, true, 0, 1),
				getOp(0, "k", "v2", 7, 2, 3),
				getOp(0, "k", "v1", 5, 4, 5),
			},
			want: []string{"read-your-writes", "monotonic-reads"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CheckSessions(tc.ops)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d violations, want %d:\n%v", len(got), len(tc.want), got)
			}
			for i, w := range tc.want {
				if got[i].Check != w {
					t.Errorf("violation %d = %q, want %q (%s)", i, got[i].Check, w, got[i].Detail)
				}
			}
		})
	}
}

// TestOpString pins the dump format the -dump-history flag emits.
func TestOpString(t *testing.T) {
	op := putOp(3, "p0-0", "s7.e12", 42, true, 10, 11)
	op.Epoch = 12
	want := "c3 e012 [10,11] put key=p0-0 val=s7.e12 ver=42 acked"
	if got := op.String(); got != want {
		t.Errorf("put string = %q, want %q", got, want)
	}
	g := getMiss(1, "p0-0", 12, 13)
	g.Relaxed = true
	if got := g.String(); got != "c1 e000 [12,13] get key=p0-0 notfound relaxed" {
		t.Errorf("get string = %q", got)
	}
}
