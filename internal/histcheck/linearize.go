package histcheck

import (
	"math"
	"sort"
)

// CheckLinearizable verifies, key by key, that the history's binding
// ops admit a linearization: a total order consistent with real time
// (an op that returned before another was invoked comes first) in which
// every get reads the latest preceding write. Failed puts are optional
// — they may linearize anywhere after their invocation or never.
// Relaxed and errored gets are exempt. Violations come back in
// ascending key order, one per broken key.
func CheckLinearizable(ops []Op) []Violation {
	byKey := make(map[string][]Op)
	var keys []string
	for _, op := range ops {
		if op.Kind == OpGet && (op.Relaxed || op.Errored) {
			continue
		}
		if _, ok := byKey[op.Key]; !ok {
			keys = append(keys, op.Key)
		}
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	sort.Strings(keys)
	var out []Violation
	for _, k := range keys {
		if v := checkKey(k, byKey[k]); v != nil {
			out = append(out, *v)
		}
	}
	return out
}

// regState is the model: one register that is either absent or holds a
// value. Comparable so it can sit in cache records directly.
type regState struct {
	present bool
	value   string
}

// step applies op to the register. ok reports whether the op's recorded
// outcome is possible from state; next is the state afterwards.
func step(state regState, op *Op) (ok bool, next regState) {
	switch op.Kind {
	case OpPut:
		return true, regState{present: true, value: op.Value}
	case OpReset:
		return true, regState{}
	default: // OpGet
		if op.Found {
			return state.present && state.value == op.Value, state
		}
		return !state.present, state
	}
}

// entryNode is one call or return event in the doubly-linked history
// list the WGL search walks. Every op contributes a call entry and a
// return entry; match links the pair.
type entryNode struct {
	prev, next *entryNode
	match      *entryNode
	op         *Op
	id         int  // op index within this key's history
	call       bool // call entry or return entry
	optional   bool // failed put: may linearize late or never
}

// buildEntries lays the per-key ops out as a timestamp-ordered entry
// list headed by a sentinel. Failed puts get a return at +infinity
// (they may take effect arbitrarily late). At equal timestamps returns
// sort before calls, so touching intervals read as sequential — the
// stricter interpretation. Ties beyond that break by op index, keeping
// the list deterministic.
func buildEntries(ops []Op) *entryNode {
	type ev struct {
		at  int64
		ret bool
		id  int
	}
	evs := make([]ev, 0, 2*len(ops))
	for i := range ops {
		op := &ops[i]
		ret := op.Return
		if op.Kind == OpPut && !op.Acked {
			ret = math.MaxInt64
		}
		evs = append(evs, ev{at: op.Invoke, ret: false, id: i})
		evs = append(evs, ev{at: ret, ret: true, id: i})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].at != evs[b].at {
			return evs[a].at < evs[b].at
		}
		if evs[a].ret != evs[b].ret {
			return evs[a].ret
		}
		return evs[a].id < evs[b].id
	})
	head := &entryNode{}
	calls := make([]*entryNode, len(ops))
	tail := head
	for _, e := range evs {
		op := &ops[e.id]
		n := &entryNode{
			op:       op,
			id:       e.id,
			call:     !e.ret,
			optional: op.Kind == OpPut && !op.Acked,
			prev:     tail,
		}
		tail.next = n
		tail = n
		if e.ret {
			n.match = calls[e.id]
			calls[e.id].match = n
		} else {
			calls[e.id] = n
		}
	}
	return head
}

func removeNode(n *entryNode) {
	n.prev.next = n.next
	if n.next != nil {
		n.next.prev = n.prev
	}
}

func insertNode(n *entryNode) {
	n.prev.next = n
	if n.next != nil {
		n.next.prev = n
	}
}

// lift removes e and its partner from the list; unlift restores them in
// exact reverse order (required when the pair is adjacent).
func lift(e *entryNode) {
	removeNode(e)
	removeNode(e.match)
}

func unlift(e *entryNode) {
	insertNode(e.match)
	insertNode(e)
}

// bitset tracks which op indexes the current search branch has
// consumed (linearized or discarded).
type bitset []uint64

func newBitset(n int) bitset   { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)     { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)   { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) clone() bitset { c := make(bitset, len(b)); copy(c, b); return c }
func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// cacheRecord memoizes one visited configuration. Revisiting the same
// (consumed-set, register-state) pair can only rediscover the same dead
// end, so the search prunes it — this is what caps the cost of wide
// concurrent windows at the number of distinct configurations instead
// of the factorial of the window width.
type cacheRecord struct {
	mask  bitset
	state regState
}

func cacheHash(mask bitset, st regState) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, w := range mask {
		for s := 0; s < 64; s += 8 {
			h ^= (w >> uint(s)) & 0xff
			h *= prime
		}
	}
	if st.present {
		h ^= 1
		h *= prime
	}
	for i := 0; i < len(st.value); i++ {
		h ^= uint64(st.value[i])
		h *= prime
	}
	return h
}

// cacheAdd records the configuration, reporting false when it was
// already visited.
func cacheAdd(cache map[uint64][]cacheRecord, mask bitset, st regState) bool {
	h := cacheHash(mask, st)
	for _, r := range cache[h] {
		if r.state == st && mask.equal(r.mask) {
			return false
		}
	}
	cache[h] = append(cache[h], cacheRecord{mask: mask, state: st})
	return true
}

// frame is one branch taken by the search, kept for backtracking: a
// linearization taken at a call entry, or a discard taken at an
// optional op's return entry.
type frame struct {
	entry   *entryNode
	state   regState // register state before the branch
	discard bool
}

// checkKey runs the WGL search over one key's ops. nil means a valid
// linearization exists; otherwise the violation names the first op the
// exhausted search could not place.
func checkKey(key string, ops []Op) *Violation {
	if len(ops) == 0 {
		return nil
	}
	head := buildEntries(ops)
	linearized := newBitset(len(ops))
	cache := make(map[uint64][]cacheRecord)
	var calls []frame
	state := regState{}
	entry := head.next
	for head.next != nil {
		if entry.call {
			// Try to linearize this op here; on a cache hit or a
			// postcondition mismatch, defer it and scan on.
			if ok, ns := step(state, entry.op); ok {
				tentative := linearized.clone()
				tentative.set(entry.id)
				if cacheAdd(cache, tentative, ns) {
					calls = append(calls, frame{entry: entry, state: state})
					state = ns
					linearized.set(entry.id)
					lift(entry)
					entry = head.next
					continue
				}
			}
			entry = entry.next
			continue
		}
		// A return entry: its op was not linearized before it completed.
		// An optional op may be discarded outright (the failed put never
		// took effect); a mandatory op forces backtracking.
		if entry.optional {
			tentative := linearized.clone()
			tentative.set(entry.id)
			if cacheAdd(cache, tentative, state) {
				calls = append(calls, frame{entry: entry, state: state, discard: true})
				linearized.set(entry.id)
				lift(entry)
				entry = head.next
				continue
			}
		}
		stuck := entry.op
		for {
			if len(calls) == 0 {
				return &Violation{
					Check:  "linearizability",
					Key:    key,
					Detail: "key " + key + ": no linearization places {" + stuck.String() + "} against the recorded history",
				}
			}
			top := calls[len(calls)-1]
			calls = calls[:len(calls)-1]
			state = top.state
			linearized.clear(top.entry.id)
			unlift(top.entry)
			if top.discard {
				continue // a discard has no alternative branch; keep unwinding
			}
			entry = top.entry.next
			break
		}
	}
	return nil
}
