package histcheck

import "fmt"

// sessState is one (client, key) session's high-water marks.
type sessState struct {
	writeVer  uint64
	writeVal  string
	readVer   uint64
	readVal   string
	haveWrite bool
	haveRead  bool
}

// CheckSessions runs the session-guarantee checkers in one linear scan
// of the history, in recorded order:
//
//   - monotonic-writes: a client's acked writes to a key must carry
//     strictly increasing versions (the system serialized them in
//     session order).
//   - read-your-writes: a client's binding read of a key must observe a
//     version at least as new as that client's last acked write to it.
//   - monotonic-reads: a client's binding reads of a key must never see
//     versions go backwards (not-found reads count as version 0).
//
// Relaxed and errored gets are exempt, as are unacked puts (a failed
// write carries no visibility promise). An OpReset wipes every
// session's marks for that key: once the environment destroyed all
// copies, older observations are no longer owed to anyone.
//
// The scan is O(history) with O(clients·keys) state — cheap enough to
// run on every chaos seed even when the WGL search is switched off.
func CheckSessions(ops []Op) []Violation {
	byKey := make(map[string]map[int]*sessState)
	var out []Violation
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpReset:
			delete(byKey, op.Key)
		case OpPut:
			if !op.Acked || op.Version == 0 {
				continue
			}
			s := lookup(byKey, op.Key, op.Client)
			if s.haveWrite && op.Version <= s.writeVer {
				out = append(out, Violation{
					Check: "monotonic-writes",
					Key:   op.Key,
					Detail: fmt.Sprintf("client %d key %s: write %q stamped version %d after its write %q stamped %d",
						op.Client, op.Key, op.Value, op.Version, s.writeVal, s.writeVer),
				})
			}
			s.haveWrite = true
			s.writeVer = op.Version
			s.writeVal = op.Value
		case OpGet:
			if op.Relaxed || op.Errored {
				continue
			}
			if op.Found && op.Version == 0 {
				continue // unversioned read: nothing to compare against
			}
			ver := op.Version
			if !op.Found {
				ver = 0
			}
			s := lookup(byKey, op.Key, op.Client)
			if s.haveWrite && ver < s.writeVer {
				out = append(out, Violation{
					Check: "read-your-writes",
					Key:   op.Key,
					Detail: fmt.Sprintf("client %d key %s: read %s after own acked write %q version %d",
						op.Client, op.Key, describeRead(op, ver), s.writeVal, s.writeVer),
				})
			}
			if s.haveRead && ver < s.readVer {
				out = append(out, Violation{
					Check: "monotonic-reads",
					Key:   op.Key,
					Detail: fmt.Sprintf("client %d key %s: read %s after reading %q version %d",
						op.Client, op.Key, describeRead(op, ver), s.readVal, s.readVer),
				})
			}
			s.haveRead = true
			s.readVer = ver
			s.readVal = op.Value
		}
	}
	return out
}

func describeRead(op *Op, ver uint64) string {
	if !op.Found {
		return "not-found"
	}
	return fmt.Sprintf("%q version %d", op.Value, ver)
}

// lookup fetches (creating on demand) one session's state. Maps are
// only indexed and deleted whole, never iterated — the scan order is
// the history order.
func lookup(byKey map[string]map[int]*sessState, key string, client int) *sessState {
	m := byKey[key]
	if m == nil {
		m = make(map[int]*sessState)
		byKey[key] = m
	}
	s := m[client]
	if s == nil {
		s = &sessState{}
		m[client] = s
	}
	return s
}
