package metrics

import (
	"fmt"
	"strings"
)

// FaultCounts tallies the faults a chaos schedule injected into a run:
// how many messages were dropped, duplicated or delayed (broken down
// by wire kind), how many partition edges were cut, and how many
// crash/restart events fired. The zero value is ready to use.
//
// Kind breakdowns use fixed-size arrays rather than maps so iteration
// is deterministic — the chaos harness embeds the formatted counts in
// its trajectory dumps, which must be byte-identical across
// identically-seeded runs.
type FaultCounts struct {
	Drops      int // messages dropped in flight
	Duplicates int // messages delivered twice
	Delays     int // messages deferred to a later epoch
	Cuts       int // partition edges severed (one per directed pair per event)
	Crashes    int // node crash events
	Restarts   int // node restart events

	DropsByKind  [256]int // Drops broken down by transport.Message.Kind
	DelaysByKind [256]int // Delays broken down by kind
}

// Drop records one dropped message of the given wire kind.
func (f *FaultCounts) Drop(kind uint8) {
	f.Drops++
	f.DropsByKind[kind]++
}

// Duplicate records one duplicated message.
func (f *FaultCounts) Duplicate() { f.Duplicates++ }

// Delay records one message of the given wire kind deferred to a
// later epoch.
func (f *FaultCounts) Delay(kind uint8) {
	f.Delays++
	f.DelaysByKind[kind]++
}

// Cut records n severed partition edges.
func (f *FaultCounts) Cut(n int) { f.Cuts += n }

// Crash records one node crash event.
func (f *FaultCounts) Crash() { f.Crashes++ }

// Restart records one node restart event.
func (f *FaultCounts) Restart() { f.Restarts++ }

// Total returns the number of individual fault events recorded.
func (f *FaultCounts) Total() int {
	return f.Drops + f.Duplicates + f.Delays + f.Cuts + f.Crashes + f.Restarts
}

// Merge folds other's tallies into f.
func (f *FaultCounts) Merge(other *FaultCounts) {
	f.Drops += other.Drops
	f.Duplicates += other.Duplicates
	f.Delays += other.Delays
	f.Cuts += other.Cuts
	f.Crashes += other.Crashes
	f.Restarts += other.Restarts
	for k := range f.DropsByKind {
		f.DropsByKind[k] += other.DropsByKind[k]
		f.DelaysByKind[k] += other.DelaysByKind[k]
	}
}

// String renders the tallies in a fixed order with kind breakdowns in
// ascending kind order, e.g.
// "drops=3[kind4:2 kind6:1] dups=1 delays=0 cuts=2 crashes=1 restarts=1".
func (f *FaultCounts) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "drops=%d%s dups=%d delays=%d%s cuts=%d crashes=%d restarts=%d",
		f.Drops, kindBreakdown(&f.DropsByKind),
		f.Duplicates,
		f.Delays, kindBreakdown(&f.DelaysByKind),
		f.Cuts, f.Crashes, f.Restarts)
	return b.String()
}

// kindBreakdown formats a non-empty per-kind tally as
// "[kind1:n kind2:m]", or "" when every entry is zero.
func kindBreakdown(byKind *[256]int) string {
	var b strings.Builder
	for k, n := range byKind {
		if n == 0 {
			continue
		}
		if b.Len() == 0 {
			b.WriteByte('[')
		} else {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "kind%d:%d", k, n)
	}
	if b.Len() == 0 {
		return ""
	}
	b.WriteByte(']')
	return b.String()
}
