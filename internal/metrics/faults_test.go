package metrics

import "testing"

func TestFaultCountsTalliesAndTotal(t *testing.T) {
	var f FaultCounts
	f.Drop(4)
	f.Drop(4)
	f.Drop(6)
	f.Duplicate()
	f.Delay(3)
	f.Cut(2)
	f.Crash()
	f.Restart()
	if f.Drops != 3 || f.DropsByKind[4] != 2 || f.DropsByKind[6] != 1 {
		t.Errorf("drops: %d byKind4=%d byKind6=%d", f.Drops, f.DropsByKind[4], f.DropsByKind[6])
	}
	if f.Duplicates != 1 || f.Delays != 1 || f.DelaysByKind[3] != 1 {
		t.Errorf("dups=%d delays=%d byKind3=%d", f.Duplicates, f.Delays, f.DelaysByKind[3])
	}
	if f.Cuts != 2 || f.Crashes != 1 || f.Restarts != 1 {
		t.Errorf("cuts=%d crashes=%d restarts=%d", f.Cuts, f.Crashes, f.Restarts)
	}
	if got := f.Total(); got != 9 {
		t.Errorf("Total() = %d, want 9", got)
	}
}

func TestFaultCountsMerge(t *testing.T) {
	var a, b FaultCounts
	a.Drop(4)
	a.Crash()
	b.Drop(4)
	b.Drop(5)
	b.Restart()
	a.Merge(&b)
	if a.Drops != 3 || a.DropsByKind[4] != 2 || a.DropsByKind[5] != 1 {
		t.Errorf("merged drops: %d byKind=%d/%d", a.Drops, a.DropsByKind[4], a.DropsByKind[5])
	}
	if a.Crashes != 1 || a.Restarts != 1 {
		t.Errorf("merged crashes=%d restarts=%d", a.Crashes, a.Restarts)
	}
}

func TestFaultCountsStringDeterministic(t *testing.T) {
	var f FaultCounts
	f.Drop(6)
	f.Drop(4)
	f.Duplicate()
	f.Cut(3)
	want := "drops=2[kind4:1 kind6:1] dups=1 delays=0 cuts=3 crashes=0 restarts=0"
	if got := f.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got := (&FaultCounts{}).String(); got != "drops=0 dups=0 delays=0 cuts=0 crashes=0 restarts=0" {
		t.Errorf("zero String() = %q", got)
	}
}
