package metrics

import (
	"fmt"
	"math"
)

// LatencyModel maps lookup hop counts to response latency, after the
// paper's motivating SLA ("a response within 300ms for 99.9% of its
// requests", §I). A lookup that travels h inter-datacenter hops costs
// h·HopLatencyMs plus the serving replica's ServiceMs; queries that
// found no capacity miss the SLA outright.
type LatencyModel struct {
	HopLatencyMs   float64 // one inter-datacenter hop (default 50 ms)
	ServiceMs      float64 // service time at the replica (default 10 ms)
	SLAThresholdMs float64 // the SLA bound (default 300 ms)
}

// DefaultLatencyModel returns the §I-inspired model: 50 ms per
// inter-datacenter hop, 10 ms service time, 300 ms SLA.
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{HopLatencyMs: 50, ServiceMs: 10, SLAThresholdMs: 300}
}

// Validate checks the model.
func (m LatencyModel) Validate() error {
	if m.HopLatencyMs < 0 || m.ServiceMs < 0 || m.SLAThresholdMs <= 0 {
		return fmt.Errorf("metrics: invalid latency model %+v", m)
	}
	return nil
}

// LatencyMs returns the modelled response latency of a lookup served
// after h hops.
func (m LatencyModel) LatencyMs(hops int) float64 {
	return float64(hops)*m.HopLatencyMs + m.ServiceMs
}

// SLA summarises one epoch's latency distribution.
type SLA struct {
	// WithinSLA is the fraction of all queries answered under the
	// threshold (unserved queries always violate).
	WithinSLA float64
	// MeanMs is the mean latency over served queries (0 when none).
	MeanMs float64
	// P99Ms and P999Ms are latency percentiles over all queries;
	// +Inf when the percentile falls into the unserved mass.
	P99Ms  float64
	P999Ms float64
}

// Stats computes SLA statistics from a served-hop histogram
// (hopHist[h] = queries served after h hops) plus the unserved count.
func (m LatencyModel) Stats(hopHist []int, unserved int) SLA {
	served := 0
	weighted := 0.0
	within := 0
	for h, n := range hopHist {
		if n == 0 {
			continue
		}
		served += n
		lat := m.LatencyMs(h)
		weighted += lat * float64(n)
		if lat <= m.SLAThresholdMs {
			within += n
		}
	}
	total := served + unserved
	var out SLA
	if total == 0 {
		out.WithinSLA = 1
		return out
	}
	out.WithinSLA = float64(within) / float64(total)
	if served > 0 {
		out.MeanMs = weighted / float64(served)
	}
	out.P99Ms = m.percentile(hopHist, served, unserved, 0.99)
	out.P999Ms = m.percentile(hopHist, served, unserved, 0.999)
	return out
}

// percentile walks the hop histogram in latency order; if the rank
// falls into the unserved tail, the percentile is +Inf.
func (m LatencyModel) percentile(hopHist []int, served, unserved int, q float64) float64 {
	total := served + unserved
	rank := int(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	seen := 0
	for h, n := range hopHist {
		seen += n
		if seen >= rank {
			return m.LatencyMs(h)
		}
	}
	return math.Inf(1)
}
