package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLatencyModelDefaults(t *testing.T) {
	m := DefaultLatencyModel()
	if m.SLAThresholdMs != 300 {
		t.Fatalf("SLA threshold = %g", m.SLAThresholdMs)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.LatencyMs(0); got != 10 {
		t.Fatalf("0-hop latency = %g", got)
	}
	if got := m.LatencyMs(4); got != 210 {
		t.Fatalf("4-hop latency = %g", got)
	}
}

func TestLatencyModelValidation(t *testing.T) {
	for _, m := range []LatencyModel{
		{HopLatencyMs: -1, ServiceMs: 1, SLAThresholdMs: 300},
		{HopLatencyMs: 1, ServiceMs: -1, SLAThresholdMs: 300},
		{HopLatencyMs: 1, ServiceMs: 1, SLAThresholdMs: 0},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v validated", m)
		}
	}
}

func TestSLAStatsAllLocal(t *testing.T) {
	m := DefaultLatencyModel()
	// 100 queries at 0 hops: 10 ms each, all within SLA.
	s := m.Stats([]int{100}, 0)
	if s.WithinSLA != 1 || s.MeanMs != 10 {
		t.Fatalf("stats = %+v", s)
	}
	if s.P99Ms != 10 || s.P999Ms != 10 {
		t.Fatalf("percentiles = %+v", s)
	}
}

func TestSLAStatsViolations(t *testing.T) {
	m := DefaultLatencyModel()
	// 50 queries at 2 hops (110 ms ok), 50 at 7 hops (360 ms violation).
	hist := make([]int, 10)
	hist[2], hist[7] = 50, 50
	s := m.Stats(hist, 0)
	if s.WithinSLA != 0.5 {
		t.Fatalf("within = %g", s.WithinSLA)
	}
	if s.MeanMs != (110*50+360*50)/100.0 {
		t.Fatalf("mean = %g", s.MeanMs)
	}
	if s.P99Ms != 360 {
		t.Fatalf("p99 = %g", s.P99Ms)
	}
}

func TestSLAStatsUnservedAreViolations(t *testing.T) {
	m := DefaultLatencyModel()
	// 990 served locally, 10 unserved: SLA fraction 0.99; the P99 rank
	// (990 of 1000) still lands in the served mass but P999 (rank 1000)
	// falls into the unserved tail.
	s := m.Stats([]int{990}, 10)
	if s.WithinSLA != 0.99 {
		t.Fatalf("within = %g", s.WithinSLA)
	}
	if !math.IsInf(s.P999Ms, 1) {
		t.Fatalf("p999 = %g, want +Inf", s.P999Ms)
	}
	if s.P99Ms != m.LatencyMs(0) {
		t.Fatalf("p99 = %g, want served latency", s.P99Ms)
	}
}

func TestSLAStatsEmpty(t *testing.T) {
	m := DefaultLatencyModel()
	s := m.Stats(nil, 0)
	if s.WithinSLA != 1 || s.MeanMs != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestSLAPercentileMonotone(t *testing.T) {
	m := DefaultLatencyModel()
	check := func(h0, h1, h2, h3 uint8, u uint8) bool {
		hist := []int{int(h0), int(h1), int(h2), int(h3)}
		s := m.Stats(hist, int(u))
		// P999 dominates P99; both dominate the mean's floor.
		if !math.IsInf(s.P999Ms, 1) && s.P999Ms < s.P99Ms {
			return false
		}
		return s.WithinSLA >= 0 && s.WithinSLA <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
