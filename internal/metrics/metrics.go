// Package metrics computes and records the evaluation quantities of
// §III: replica utilization rate (eqs. 20–23), replication and
// migration cost (eq. 1), load imbalance (eqs. 24–26), lookup path
// length, and replica counts. A Recorder accumulates named per-epoch
// time series that the experiment harness turns into the paper's
// figures.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Standard series names recorded by the simulation engine. One series
// point is appended per epoch.
const (
	SeriesUtilization    = "utilization"      // Fig. 3: average replica utilization rate
	SeriesTotalReplicas  = "replicas_total"   // Fig. 4(a,c)
	SeriesAvgReplicas    = "replicas_avg"     // Fig. 4(b,d): per partition
	SeriesReplCost       = "repl_cost_total"  // Fig. 5(a,c): cumulative eq. (1) cost
	SeriesReplCostAvg    = "repl_cost_avg"    // Fig. 5(b,d): per replication event
	SeriesMigrTimes      = "migr_times_total" // Fig. 6(a,c): cumulative migrations
	SeriesMigrTimesAvg   = "migr_times_avg"   // Fig. 6(b,d): per replica
	SeriesMigrCost       = "migr_cost_total"  // Fig. 7(a,c): cumulative eq. (1) cost
	SeriesMigrCostAvg    = "migr_cost_avg"    // Fig. 7(b,d): per migration event
	SeriesLoadImbalance  = "load_imbalance"   // Fig. 8: eq. (25) L_b
	SeriesPathLength     = "path_length"      // Fig. 9: mean lookup hops
	SeriesUnservedFrac   = "unserved_frac"    // extra: overflow fraction
	SeriesAliveServers   = "alive_servers"    // Fig. 10 context
	SeriesLostPartitions = "lost_partitions"  // extra: durability check

	// Consistency-extension series, recorded only when the engine runs
	// with writes enabled (Config.WriteLambda > 0).
	SeriesStalenessMean = "staleness_mean" // post-sync mean replica lag (versions)
	SeriesStalenessMax  = "staleness_max"  // post-sync max replica lag
	SeriesStaleFrac     = "stale_frac"     // fraction of replicas lagging >= 1
	SeriesSyncBytes     = "sync_bytes"     // cumulative anti-entropy traffic
	SeriesLostWrites    = "lost_writes"    // cumulative writes lost to stale promotion

	// Per-epoch decision activity (not cumulative): how many actions of
	// each kind the policy executed this epoch.
	SeriesReplActions    = "repl_actions"
	SeriesMigrActions    = "migr_actions"
	SeriesSuicideActions = "suicide_actions"

	// Latency/SLA series, after the paper's §I motivation ("a response
	// within 300ms for 99.9% of its requests").
	SeriesSLAFrac     = "sla_frac"        // fraction of queries within the SLA bound
	SeriesLatencyMean = "latency_mean_ms" // mean latency over served queries
	SeriesLatencyP999 = "latency_p999_ms" // 99.9th percentile latency (+Inf if unserved)
)

// ReplicaUtilization implements eqs. (20)–(21) under one copy per
// server: each replica's utilization is its served queries over its
// capacity, clamped to [0, 1], and the result is the average over all
// replicas. served and capacity must be parallel slices, one entry per
// replica; capacities must be positive.
func ReplicaUtilization(served, capacity []int) (float64, error) {
	if len(served) != len(capacity) {
		return 0, fmt.Errorf("metrics: %d served entries vs %d capacities", len(served), len(capacity))
	}
	if len(served) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range served {
		if capacity[i] <= 0 {
			return 0, fmt.Errorf("metrics: replica %d has capacity %d", i, capacity[i])
		}
		u := float64(served[i]) / float64(capacity[i])
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		sum += u
	}
	return sum / float64(len(served)), nil
}

// LoadImbalance implements eq. (25): the population standard deviation
// of per-node workloads.
func LoadImbalance(loads []float64) float64 {
	return stats.StdDev(loads)
}

// RelativeLoadImbalance is eq. (25) normalised by the mean workload
// (the coefficient of variation). Eq. (26) divides the deviations by
// the node count; dividing by the mean instead makes runs with
// different aggregate load comparable — a policy that serves twice the
// traffic should not look twice as imbalanced. Zero load is perfectly
// balanced.
func RelativeLoadImbalance(loads []float64) float64 {
	m := stats.Mean(loads)
	if m == 0 {
		return 0
	}
	return stats.StdDev(loads) / m
}

// ReplicationCost implements eq. (1): c = d·f·s / b, with distance d,
// failure rate f, partition size s (bytes) and bandwidth b
// (bytes/epoch). Size and bandwidth enter as a ratio, so any consistent
// unit works.
func ReplicationCost(distance, failureRate float64, size, bandwidth int64) (float64, error) {
	if bandwidth <= 0 {
		return 0, fmt.Errorf("metrics: bandwidth must be positive, got %d", bandwidth)
	}
	if size < 0 || distance < 0 || failureRate < 0 {
		return 0, fmt.Errorf("metrics: negative cost input (d=%g f=%g s=%d)", distance, failureRate, size)
	}
	return distance * failureRate * float64(size) / float64(bandwidth), nil
}

// Series is one named per-epoch time series.
type Series struct {
	Name   string
	Points []float64
}

// Last returns the most recent point, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1]
}

// Mean returns the mean over all points.
func (s *Series) Mean() float64 { return stats.Mean(s.Points) }

// Window returns the sub-series [from, to) clipped to valid bounds.
func (s *Series) Window(from, to int) []float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s.Points) {
		to = len(s.Points)
	}
	if from >= to {
		return nil
	}
	return s.Points[from:to]
}

// Recorder accumulates named series. The zero value is not usable;
// construct with NewRecorder. Recorder is not safe for concurrent use.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Append adds one point to the named series, creating it on first use.
func (r *Recorder) Append(name string, v float64) {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	s.Points = append(s.Points, v)
}

// Series returns the named series, or nil if never appended to.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns all series names in first-appended order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Epochs returns the length of the longest series.
func (r *Recorder) Epochs() int {
	max := 0
	for _, s := range r.series {
		if len(s.Points) > max {
			max = len(s.Points)
		}
	}
	return max
}

// Validate checks that all series have equal length — each epoch must
// append to every series exactly once.
func (r *Recorder) Validate() error {
	want := -1
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		got := len(r.series[n].Points)
		if want == -1 {
			want = got
			continue
		}
		if got != want {
			return fmt.Errorf("metrics: series %q has %d points, others have %d", n, got, want)
		}
	}
	return nil
}
