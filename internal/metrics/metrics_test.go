package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReplicaUtilizationBasic(t *testing.T) {
	u, err := ReplicaUtilization([]int{50, 100, 0}, []int{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	want := (0.5 + 1.0 + 0.0) / 3
	if math.Abs(u-want) > 1e-12 {
		t.Fatalf("utilization = %g, want %g", u, want)
	}
}

func TestReplicaUtilizationClamps(t *testing.T) {
	// Over-capacity serving clamps to 1 (eq. 20's min(1, ...)).
	u, err := ReplicaUtilization([]int{500}, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	if u != 1 {
		t.Fatalf("overdriven utilization = %g, want 1", u)
	}
	u, err = ReplicaUtilization([]int{-5}, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	if u != 0 {
		t.Fatalf("negative served utilization = %g, want 0", u)
	}
}

func TestReplicaUtilizationErrors(t *testing.T) {
	if _, err := ReplicaUtilization([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ReplicaUtilization([]int{1}, []int{0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestReplicaUtilizationEmpty(t *testing.T) {
	u, err := ReplicaUtilization(nil, nil)
	if err != nil || u != 0 {
		t.Fatalf("empty utilization = %g, %v", u, err)
	}
}

func TestReplicaUtilizationInUnit(t *testing.T) {
	check := func(served [8]uint8, caps [8]uint8) bool {
		s := make([]int, 8)
		c := make([]int, 8)
		for i := range s {
			s[i] = int(served[i])
			c[i] = int(caps[i]) + 1
		}
		u, err := ReplicaUtilization(s, c)
		return err == nil && u >= 0 && u <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadImbalanceEq25(t *testing.T) {
	if got := LoadImbalance([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("balanced imbalance = %g", got)
	}
	// {0, 10}: mean 5, variance 25, stddev 5.
	if got := LoadImbalance([]float64{0, 10}); got != 5 {
		t.Fatalf("imbalance = %g, want 5", got)
	}
}

func TestReplicationCostEq1(t *testing.T) {
	// c = d·f·s/b.
	c, err := ReplicationCost(10, 0.1, 512<<10, 300<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * 0.1 * float64(512<<10) / float64(300<<20)
	if math.Abs(c-want) > 1e-15 {
		t.Fatalf("cost = %g, want %g", c, want)
	}
}

func TestReplicationCostErrors(t *testing.T) {
	if _, err := ReplicationCost(1, 0.1, 100, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := ReplicationCost(-1, 0.1, 100, 10); err == nil {
		t.Fatal("negative distance accepted")
	}
	if _, err := ReplicationCost(1, -0.1, 100, 10); err == nil {
		t.Fatal("negative failure rate accepted")
	}
	if _, err := ReplicationCost(1, 0.1, -100, 10); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestReplicationCostScalesWithDistance(t *testing.T) {
	near, _ := ReplicationCost(1, 0.1, 1000, 100)
	far, _ := ReplicationCost(10, 0.1, 1000, 100)
	if far <= near {
		t.Fatal("cost does not grow with distance")
	}
}

func TestRecorderAppendAndSeries(t *testing.T) {
	r := NewRecorder()
	r.Append("a", 1)
	r.Append("a", 2)
	r.Append("b", 3)
	if s := r.Series("a"); s == nil || len(s.Points) != 2 || s.Last() != 2 {
		t.Fatalf("series a = %+v", r.Series("a"))
	}
	if s := r.Series("missing"); s != nil {
		t.Fatal("missing series not nil")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if r.Epochs() != 2 {
		t.Fatalf("epochs = %d", r.Epochs())
	}
}

func TestRecorderValidate(t *testing.T) {
	r := NewRecorder()
	r.Append("a", 1)
	r.Append("b", 1)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	r.Append("a", 2)
	if err := r.Validate(); err == nil {
		t.Fatal("ragged recorder validated")
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := &Series{Name: "x", Points: []float64{1, 2, 3, 4}}
	if s.Mean() != 2.5 {
		t.Fatalf("mean = %g", s.Mean())
	}
	if got := s.Window(1, 3); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("window = %v", got)
	}
	if got := s.Window(-5, 100); len(got) != 4 {
		t.Fatalf("clipped window = %v", got)
	}
	if got := s.Window(3, 1); got != nil {
		t.Fatalf("inverted window = %v", got)
	}
	empty := &Series{Name: "e"}
	if empty.Last() != 0 {
		t.Fatal("empty last != 0")
	}
}
