package metrics

import (
	"math"
	"sort"
)

// LatencySampler collects individual latency observations and answers
// quantile queries over them. The simulator derives latency from a hop
// histogram (LatencyModel.Stats); the live cluster path measures each
// client request with a real clock instead, and rfhctl reports the
// distribution through this sampler.
//
// LatencySampler is not safe for concurrent use.
type LatencySampler struct {
	samples []float64
	sorted  bool
}

// NewLatencySampler returns an empty sampler.
func NewLatencySampler() *LatencySampler {
	return &LatencySampler{sorted: true}
}

// Observe records one latency sample in milliseconds.
func (s *LatencySampler) Observe(ms float64) {
	s.samples = append(s.samples, ms)
	s.sorted = false
}

// Count returns the number of samples recorded.
func (s *LatencySampler) Count() int { return len(s.samples) }

// Mean returns the mean sample, or 0 with no samples.
func (s *LatencySampler) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.samples {
		sum += v
	}
	return sum / float64(len(s.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by the nearest-rank
// method: the smallest sample such that at least q of the mass is at
// or below it. With no samples it returns 0; q outside [0,1] is
// clamped. A single sample answers every quantile; duplicate values
// are counted with their multiplicity, exactly as recorded.
func (s *LatencySampler) Quantile(q float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	if q <= 0 {
		return s.samples[0]
	}
	if q >= 1 {
		return s.samples[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return s.samples[rank-1]
}
