package metrics

import (
	"math"
	"testing"
)

func TestLatencySamplerEmpty(t *testing.T) {
	s := NewLatencySampler()
	if s.Count() != 0 {
		t.Fatalf("empty sampler count %d", s.Count())
	}
	if got := s.Mean(); got != 0 {
		t.Errorf("empty mean = %g, want 0", got)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}
}

func TestLatencySamplerSingleSample(t *testing.T) {
	s := NewLatencySampler()
	s.Observe(42)
	if s.Count() != 1 || s.Mean() != 42 {
		t.Fatalf("count=%d mean=%g", s.Count(), s.Mean())
	}
	// Every quantile of a one-sample distribution is that sample.
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 0.999, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("Quantile(%g) = %g, want 42", q, got)
		}
	}
}

func TestLatencySamplerDuplicates(t *testing.T) {
	s := NewLatencySampler()
	for i := 0; i < 10; i++ {
		s.Observe(5)
	}
	s.Observe(100)
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("median of duplicates = %g, want 5", got)
	}
	if got := s.Quantile(0.9); got != 5 {
		t.Errorf("p90 = %g, want 5 (10 of 11 samples are 5)", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("p100 = %g, want 100", got)
	}
	if got := s.Mean(); math.Abs(got-(50+100)/11.0) > 1e-12 {
		t.Errorf("mean = %g", got)
	}
}

func TestLatencySamplerQuantileRanks(t *testing.T) {
	s := NewLatencySampler()
	// Out-of-order insertion; quantiles must still sort.
	for _, v := range []float64{30, 10, 50, 20, 40} {
		s.Observe(v)
	}
	cases := []struct{ q, want float64 }{
		{-1, 10}, {0, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30},
		{0.8, 40}, {0.81, 50}, {1, 50}, {2, 50},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	// Observing after a quantile query must re-sort.
	s.Observe(1)
	if got := s.Quantile(0); got != 1 {
		t.Errorf("min after late insert = %g, want 1", got)
	}
}

func TestLatencyModelStatsEdges(t *testing.T) {
	m := DefaultLatencyModel()
	// No traffic at all: vacuously within SLA.
	sla := m.Stats(nil, 0)
	if sla.WithinSLA != 1 || sla.MeanMs != 0 {
		t.Errorf("empty stats: %+v", sla)
	}
	// Single served query at zero hops.
	sla = m.Stats([]int{1}, 0)
	if sla.WithinSLA != 1 || sla.MeanMs != m.ServiceMs || sla.P99Ms != m.ServiceMs || sla.P999Ms != m.ServiceMs {
		t.Errorf("single-sample stats: %+v", sla)
	}
	// Only unserved queries: percentiles fall into the +Inf tail.
	sla = m.Stats(nil, 5)
	if sla.WithinSLA != 0 || !math.IsInf(sla.P999Ms, 1) {
		t.Errorf("all-unserved stats: %+v", sla)
	}
	// Duplicate-latency mass: all queries at the same hop count.
	sla = m.Stats([]int{0, 7}, 0)
	want := m.LatencyMs(1)
	if sla.MeanMs != want || sla.P99Ms != want || sla.P999Ms != want {
		t.Errorf("duplicate-mass stats: %+v, want all %g", sla, want)
	}
}
