package network

import (
	"testing"

	"repro/internal/topology"
)

func BenchmarkNewRouterPaperWorld(b *testing.B) {
	w := topology.PaperWorld()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewRouter(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewRouter100DC(b *testing.B) {
	w, err := topology.RandomGeometricWorld(100, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewRouter(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPath(b *testing.B) {
	r, err := NewRouter(topology.PaperWorld())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Path(topology.DCID(i%10), topology.DCID((i*7)%10))
	}
}
