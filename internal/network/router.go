// Package network implements the overlay routing layer of §II-B: queries
// travel from a requester datacenter toward the partition holder along a
// fixed shortest path over the datacenter link graph. The sequence of
// intermediate datacenters on those paths is what the RFH algorithm
// observes as forwarding traffic; datacenters that sit on many paths
// ("conjunction nodes of many necessary routing paths") become traffic
// hubs.
//
// Paths are precomputed for all pairs with Dijkstra's algorithm and a
// deterministic tie-break (lexicographically smallest hop sequence among
// equal-cost paths), so simulation runs are reproducible.
package network

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/topology"
)

// Path is a routed path between two datacenters, endpoints inclusive.
type Path struct {
	Hops []topology.DCID // Hops[0] = source, Hops[len-1] = destination
	Cost float64         // sum of link weights along the path
}

// Len returns the hop count of the path: the number of links traversed.
// A path from a DC to itself has length 0.
func (p Path) Len() int {
	if len(p.Hops) == 0 {
		return 0
	}
	return len(p.Hops) - 1
}

// Intermediates returns the datacenters strictly between source and
// destination — the forwarding nodes that accumulate traffic.
func (p Path) Intermediates() []topology.DCID {
	if len(p.Hops) <= 2 {
		return nil
	}
	out := make([]topology.DCID, len(p.Hops)-2)
	copy(out, p.Hops[1:len(p.Hops)-1])
	return out
}

// Router precomputes all-pairs shortest paths over a World's link graph.
// It is immutable after construction and safe for concurrent use.
type Router struct {
	world *topology.World
	dist  [][]float64       // dist[s][d] = shortest cost
	next  [][]topology.DCID // next[s][d] = first hop from s toward d
	paths [][]Path          // paths[s][d] = materialised path, shared
}

// NewRouter builds a router for the world. It returns an error if the
// world fails validation (disconnected graphs cannot route).
func NewRouter(w *topology.World) (*Router, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	n := w.NumDCs()
	r := &Router{
		world: w,
		dist:  make([][]float64, n),
		next:  make([][]topology.DCID, n),
		paths: make([][]Path, n),
	}
	for s := 0; s < n; s++ {
		r.dist[s], r.next[s] = dijkstra(w, topology.DCID(s))
	}
	// Materialise every path once: Path sits on the per-query hot path
	// of the traffic propagator, so lookups must not allocate.
	for s := 0; s < n; s++ {
		r.paths[s] = make([]Path, n)
		for d := 0; d < n; d++ {
			r.paths[s][d] = r.buildPath(topology.DCID(s), topology.DCID(d))
		}
	}
	return r, nil
}

// World returns the topology this router routes over.
func (r *Router) World() *topology.World { return r.world }

// Cost returns the total link cost of the routed path from src to dst.
func (r *Router) Cost(src, dst topology.DCID) float64 {
	return r.dist[src][dst]
}

// NextHop returns the first hop on the path from src toward dst. For
// src == dst it returns src.
func (r *Router) NextHop(src, dst topology.DCID) topology.DCID {
	if src == dst {
		return src
	}
	return r.next[src][dst]
}

// Path returns the full routed path from src to dst. The path is
// precomputed and shared across callers: it may be kept, but its Hops
// must not be mutated.
func (r *Router) Path(src, dst topology.DCID) Path {
	return r.paths[src][dst]
}

// buildPath walks the first-hop table to materialise one path.
func (r *Router) buildPath(src, dst topology.DCID) Path {
	if src == dst {
		return Path{Hops: []topology.DCID{src}, Cost: 0}
	}
	hops := []topology.DCID{src}
	cur := src
	for cur != dst {
		nxt := r.next[cur][dst]
		hops = append(hops, nxt)
		cur = nxt
		if len(hops) > r.world.NumDCs() {
			// Cannot happen on a validated world; guard against silent
			// corruption rather than looping forever.
			panic(fmt.Sprintf("network: routing loop from %d to %d", src, dst))
		}
	}
	return Path{Hops: hops, Cost: r.dist[src][dst]}
}

// OnPath reports whether datacenter k lies on the routed path from src
// to dst (endpoints included). This is the paper's p_ijk indicator
// (eq. 7): 1 when node k is on the path from requester j to holder i.
func (r *Router) OnPath(src, dst, k topology.DCID) bool {
	cur := src
	for {
		if cur == k {
			return true
		}
		if cur == dst {
			return false
		}
		cur = r.next[cur][dst]
	}
}

// dijkstra runs a deterministic Dijkstra from src, returning the
// distance vector and, for every destination, the first hop from src.
// Ties between equal-cost paths are broken toward the path whose hop
// sequence is lexicographically smallest, which both makes runs
// reproducible and keeps paths stable as unrelated links change.
func dijkstra(w *topology.World, src topology.DCID) ([]float64, []topology.DCID) {
	n := w.NumDCs()
	dist := make([]float64, n)
	prev := make([]topology.DCID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &nodeHeap{{id: src, cost: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		u := it.id
		if done[u] {
			continue
		}
		done[u] = true
		for _, v := range w.Neighbors(u) {
			wt, _ := w.Link(u, v)
			alt := dist[u] + wt
			const eps = 1e-12
			switch {
			case alt < dist[v]-eps:
				dist[v] = alt
				prev[v] = u
				heap.Push(pq, heapItem{id: v, cost: alt})
			case math.Abs(alt-dist[v]) <= eps && prev[v] >= 0 && u < prev[v]:
				// Equal cost: prefer the predecessor with the smaller id.
				prev[v] = u
			}
		}
	}
	// Convert predecessor tree into first-hop table.
	next := make([]topology.DCID, n)
	for d := 0; d < n; d++ {
		if topology.DCID(d) == src || prev[d] < 0 {
			next[d] = src
			continue
		}
		cur := topology.DCID(d)
		for prev[cur] != src {
			cur = prev[cur]
		}
		next[d] = cur
	}
	return dist, next
}

type heapItem struct {
	id   topology.DCID
	cost float64
}

type nodeHeap []heapItem

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].id < h[j].id
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
