package network

import (
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func paperRouter(t *testing.T) *Router {
	t.Helper()
	r, err := NewRouter(topology.PaperWorld())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func dcID(t *testing.T, r *Router, name string) topology.DCID {
	t.Helper()
	dc, ok := r.World().DCByName(name)
	if !ok {
		t.Fatalf("no DC named %s", name)
	}
	return dc.ID
}

func pathNames(r *Router, p Path) []string {
	out := make([]string, len(p.Hops))
	for i, h := range p.Hops {
		out[i] = r.World().DC(h).Name
	}
	return out
}

func TestNewRouterRejectsDisconnected(t *testing.T) {
	w := topology.NewWorld([]topology.Datacenter{{}, {}, {}})
	_ = w.AddLink(0, 1, 1)
	if _, err := NewRouter(w); err == nil {
		t.Fatal("router built over disconnected world")
	}
}

func TestSelfPath(t *testing.T) {
	r := paperRouter(t)
	p := r.Path(0, 0)
	if p.Len() != 0 || p.Cost != 0 || len(p.Hops) != 1 {
		t.Fatalf("self path = %+v", p)
	}
	if len(p.Intermediates()) != 0 {
		t.Fatal("self path has intermediates")
	}
}

// TestPaperHubPaths pins the routes that create the paper's Fig. 1
// narrative: Asia → A flows through hub datacenters D and F.
func TestPaperHubPaths(t *testing.T) {
	r := paperRouter(t)
	cases := []struct {
		src, dst string
		want     []string
	}{
		{"I", "A", []string{"I", "D", "A"}},
		{"H", "A", []string{"H", "F", "D", "A"}},
		{"J", "A", []string{"J", "F", "D", "A"}},
	}
	for _, c := range cases {
		p := r.Path(dcID(t, r, c.src), dcID(t, r, c.dst))
		got := pathNames(r, p)
		if len(got) != len(c.want) {
			t.Fatalf("%s->%s path = %v, want %v", c.src, c.dst, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s->%s path = %v, want %v", c.src, c.dst, got, c.want)
			}
		}
	}
}

func TestPathEndpoints(t *testing.T) {
	r := paperRouter(t)
	n := r.World().NumDCs()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			p := r.Path(topology.DCID(s), topology.DCID(d))
			if p.Hops[0] != topology.DCID(s) || p.Hops[len(p.Hops)-1] != topology.DCID(d) {
				t.Fatalf("path %d->%d endpoints wrong: %v", s, d, p.Hops)
			}
		}
	}
}

func TestPathCostMatchesLinkSum(t *testing.T) {
	r := paperRouter(t)
	n := r.World().NumDCs()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			p := r.Path(topology.DCID(s), topology.DCID(d))
			sum := 0.0
			for i := 0; i+1 < len(p.Hops); i++ {
				wt, ok := r.World().Link(p.Hops[i], p.Hops[i+1])
				if !ok {
					t.Fatalf("path %d->%d uses nonexistent link %d-%d", s, d, p.Hops[i], p.Hops[i+1])
				}
				sum += wt
			}
			if diff := sum - p.Cost; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("path %d->%d cost %g != link sum %g", s, d, p.Cost, sum)
			}
			if r.Cost(topology.DCID(s), topology.DCID(d)) != p.Cost {
				t.Fatalf("Cost and Path disagree for %d->%d", s, d)
			}
		}
	}
}

func TestPathCostSymmetric(t *testing.T) {
	r := paperRouter(t)
	n := r.World().NumDCs()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			cs := r.Cost(topology.DCID(s), topology.DCID(d))
			cd := r.Cost(topology.DCID(d), topology.DCID(s))
			if diff := cs - cd; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("cost asymmetric %d<->%d: %g vs %g", s, d, cs, cd)
			}
		}
	}
}

func TestPathIsShortest(t *testing.T) {
	// Brute-force check on the small ring: shortest path between i and j
	// is min(|i-j|, n-|i-j|) hops of weight 1.
	w := topology.RingWorld(8)
	r, err := NewRouter(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			if 8-d < d {
				d = 8 - d
			}
			if got := r.Cost(topology.DCID(i), topology.DCID(j)); got != float64(d) {
				t.Fatalf("ring cost %d->%d = %g, want %d", i, j, got, d)
			}
		}
	}
}

func TestGridDeterministicTieBreak(t *testing.T) {
	// On a grid many equal-cost paths exist; two routers over the same
	// world must pick identical paths.
	w := topology.GridWorld(4, 4)
	r1, err := NewRouter(w)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRouter(w)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			p1 := r1.Path(topology.DCID(s), topology.DCID(d))
			p2 := r2.Path(topology.DCID(s), topology.DCID(d))
			if len(p1.Hops) != len(p2.Hops) {
				t.Fatalf("nondeterministic path %d->%d", s, d)
			}
			for i := range p1.Hops {
				if p1.Hops[i] != p2.Hops[i] {
					t.Fatalf("nondeterministic path %d->%d: %v vs %v", s, d, p1.Hops, p2.Hops)
				}
			}
		}
	}
}

func TestOnPathMatchesPathMembership(t *testing.T) {
	r := paperRouter(t)
	n := r.World().NumDCs()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			p := r.Path(topology.DCID(s), topology.DCID(d))
			member := make(map[topology.DCID]bool)
			for _, h := range p.Hops {
				member[h] = true
			}
			for k := 0; k < n; k++ {
				if got := r.OnPath(topology.DCID(s), topology.DCID(d), topology.DCID(k)); got != member[topology.DCID(k)] {
					t.Fatalf("OnPath(%d,%d,%d) = %v, path %v", s, d, k, got, p.Hops)
				}
			}
		}
	}
}

func TestIntermediatesExcludeEndpoints(t *testing.T) {
	r := paperRouter(t)
	h := dcID(t, r, "H")
	a := dcID(t, r, "A")
	p := r.Path(h, a)
	for _, m := range p.Intermediates() {
		if m == h || m == a {
			t.Fatalf("intermediate %d is an endpoint", m)
		}
	}
	if got := len(p.Intermediates()); got != p.Len()-1 {
		t.Fatalf("intermediates = %d, want %d", got, p.Len()-1)
	}
}

func TestNextHopConsistentWithPath(t *testing.T) {
	r := paperRouter(t)
	n := r.World().NumDCs()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			p := r.Path(topology.DCID(s), topology.DCID(d))
			if s == d {
				if r.NextHop(topology.DCID(s), topology.DCID(d)) != topology.DCID(s) {
					t.Fatalf("NextHop self %d", s)
				}
				continue
			}
			if r.NextHop(topology.DCID(s), topology.DCID(d)) != p.Hops[1] {
				t.Fatalf("NextHop(%d,%d) != second hop of path", s, d)
			}
		}
	}
}

func TestPathSuffixOptimality(t *testing.T) {
	// Property: every suffix of a shortest path is itself a shortest
	// path (Bellman's optimality principle).
	r := paperRouter(t)
	check := func(sRaw, dRaw uint8) bool {
		n := r.World().NumDCs()
		s := topology.DCID(int(sRaw) % n)
		d := topology.DCID(int(dRaw) % n)
		p := r.Path(s, d)
		cost := p.Cost
		for i := 0; i+1 < len(p.Hops); i++ {
			wt, _ := r.World().Link(p.Hops[i], p.Hops[i+1])
			cost -= wt
			if diff := r.Cost(p.Hops[i+1], d) - cost; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHubCentrality(t *testing.T) {
	// D and F must be the most frequent intermediates over all-pairs
	// paths from Asian DCs to American DCs — the premise of the paper's
	// traffic-hub story.
	r := paperRouter(t)
	asia := []string{"H", "I", "J"}
	america := []string{"A", "B", "C"}
	counts := map[string]int{}
	for _, s := range asia {
		for _, d := range america {
			p := r.Path(dcID(t, r, s), dcID(t, r, d))
			for _, m := range p.Intermediates() {
				counts[r.World().DC(m).Name]++
			}
		}
	}
	for name, c := range counts {
		if name != "D" && name != "F" && c >= counts["D"] {
			t.Fatalf("DC %s (%d) rivals hub D (%d): %v", name, c, counts["D"], counts)
		}
	}
	if counts["D"] == 0 || counts["F"] == 0 {
		t.Fatalf("hubs not on Asia→America paths: %v", counts)
	}
}
