package node

import (
	"encoding/binary"

	"repro/internal/transport"
)

// Anti-entropy: periodic Merkle-digest exchange between a partition's
// holders, repairing divergence without waiting for a quorum read to
// touch the stale key (Leslie, "Reliable Data Storage in DHTs").
//
// Every AEInterval-th epoch each resident partition primary builds a
// fixed-shape hash tree over its partition (64 leaf buckets, one
// 8-byte hash each) and sends the leaf vector to every co-holder
// (KindAEDigest). The holder compares against its own tree and answers
// with the divergent bucket indexes plus its own entries for those
// buckets; the primary folds the holder's newer keys into itself and
// ships its own copy of the divergent buckets back (KindAERepair).
// Both directions merge version-gated through the store, so a repair
// can never roll a key back — the exchange is idempotent and safe to
// replay, duplicate or delay arbitrarily, which is what the chaos
// fault plane does to it.

// aeLeaves is the tree's fixed leaf-bucket count. 64 buckets × 8 bytes
// keeps the whole digest within one small frame; with typical
// partition populations a single divergent key dirties one bucket, so
// a repair ships ~1/64th of the partition.
const aeLeaves = 64

// fnv-1a 64 parameters, written out because the tree hashes millions
// of entries in the bench path and the stdlib hash.Hash64 interface
// would allocate per entry.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// aeBucket maps a key to its leaf bucket. Deliberately NOT
// ring.HashString: partition membership is already a function of the
// ring hash, and deriving buckets from the same value would correlate
// bucket occupancy with partition assignment instead of spreading a
// partition's keys uniformly across its own tree.
func aeBucket(key string) int {
	return int(fnvString(fnvOffset, key) % aeLeaves)
}

// aeEntryHash digests one (key, version, value) record. The version
// sits between key and value with a fixed width, so no two distinct
// records can collide by concatenation ambiguity.
func aeEntryHash(key string, ver uint64, val []byte) uint64 {
	h := fnvString(fnvOffset, key)
	var vb [8]byte
	binary.BigEndian.PutUint64(vb[:], ver)
	h = fnvBytes(h, vb[:])
	return fnvBytes(h, val)
}

// AETree is one partition's anti-entropy digest: aeLeaves buckets,
// each holding the XOR of its entries' record hashes. XOR makes the
// leaf order-independent and incrementally maintainable — applying the
// same record twice removes it, so an update is Apply(old) followed by
// Apply(new), O(1) per write. Exported (with NewAETree/Apply/Root) so
// rfhbench can hold the digest cost on a committed leash.
type AETree struct {
	leaves [aeLeaves]uint64
}

// NewAETree returns an empty tree (the digest of an empty partition).
func NewAETree() *AETree { return &AETree{} }

// Apply XORs one record into its bucket: call once to add a record,
// again with identical arguments to remove it.
func (t *AETree) Apply(key string, ver uint64, val []byte) {
	t.leaves[aeBucket(key)] ^= aeEntryHash(key, ver, val)
}

// Leaves returns the leaf hash vector (a copy; the wire payload).
func (t *AETree) Leaves() []uint64 {
	out := make([]uint64, aeLeaves)
	copy(out, t.leaves[:])
	return out
}

// Root folds the leaves pairwise up to the 8-byte root. The fold is
// order-sensitive (unlike the leaves), so two trees agreeing on the
// root agree on the whole vector with hash-level confidence.
func (t *AETree) Root() uint64 {
	var lvl [aeLeaves]uint64
	copy(lvl[:], t.leaves[:])
	for n := aeLeaves; n > 1; n /= 2 {
		for i := 0; i < n/2; i++ {
			var b [16]byte
			binary.BigEndian.PutUint64(b[:8], lvl[2*i])
			binary.BigEndian.PutUint64(b[8:], lvl[2*i+1])
			lvl[i] = fnvBytes(fnvOffset, b[:])
		}
	}
	return lvl[0]
}

// buildAETree digests an entry block (the canonical snapshotEntries
// form). Order-independent by construction, so the sorted input is a
// convenience, not a requirement.
func buildAETree(entries []kvEntry) *AETree {
	t := &AETree{}
	for _, e := range entries {
		t.Apply(e.key, e.ver, e.val)
	}
	return t
}

// AEStats counts anti-entropy activity for DumpInfo and tests.
type AEStats struct {
	// Rounds is how many digest rounds this node initiated as primary
	// (one per partition per AEInterval boundary).
	Rounds int64 `json:"rounds"`
	// Synced counts digest exchanges that found the holder identical.
	Synced int64 `json:"synced"`
	// Repairs counts KindAERepair payloads shipped to divergent holders.
	Repairs int64 `json:"repairs"`
	// Healed counts entries merged INTO this node by anti-entropy —
	// holder-side repairs plus primary-side backflow from holders.
	Healed int64 `json:"healed"`
}

// AEStats returns the node's anti-entropy counters.
func (n *Node) AEStats() AEStats {
	return AEStats{
		Rounds:  n.aeRoundsN.Load(),
		Synced:  n.aeSyncedN.Load(),
		Repairs: n.aeRepairsN.Load(),
		Healed:  n.aeHealedN.Load(),
	}
}

// aeRound is one planned digest exchange: a partition this node
// primaries and the co-holders to reconcile with.
type aeRound struct {
	p       int
	epoch   uint64
	holders []int
}

// aePlanLocked decides, under n.mu, which partitions run an
// anti-entropy round this epoch: every AEInterval-th epoch, every
// partition this node primaries with resident local data and at least
// one co-holder. A recovering node plans nothing — its view is not yet
// trustworthy. Holders come out in ascending roster order, so the send
// sequence is deterministic (the chaos fault plane's RNG draw order
// depends on it).
func (n *Node) aePlanLocked() []aeRound {
	iv := n.cfg.AEInterval
	if iv <= 0 || n.recovering || n.epoch%uint64(iv) != 0 {
		return nil
	}
	var rounds []aeRound
	for p := 0; p < n.cfg.Partitions; p++ {
		if n.view.primary(p) != n.self || !n.store.isResident(p) {
			continue
		}
		var holders []int
		for _, s := range n.view.cluster.ReplicaServers(p) {
			if int(s) != n.self {
				holders = append(holders, int(s))
			}
		}
		if len(holders) > 0 {
			rounds = append(rounds, aeRound{p: p, epoch: n.epoch, holders: holders})
		}
	}
	return rounds
}

// runAntiEntropy executes the planned digest exchanges. Every failure
// mode is soft: a dropped frame, a refusing holder or an oversized
// payload just leaves the divergence for the next round (or for
// read-repair or replica shipping to catch first).
//
//lint:requires-unlocked n.mu
func (n *Node) runAntiEntropy(rounds []aeRound) {
	for _, rd := range rounds {
		entries, _ := n.store.snapshotEntries(rd.p)
		tree := buildAETree(entries)
		digest := appendAEDigest(nil, tree.Leaves(), tree.Root())
		n.aeRoundsN.Add(1)
		for _, h := range rd.holders {
			resp, err := n.tr.Send(n.peerAddr(h), &transport.Message{
				Kind:      KindAEDigest,
				Partition: uint32(rd.p),
				Epoch:     rd.epoch,
				Origin:    uint32(n.self),
				Value:     digest,
			})
			if err != nil || resp.Status != transport.StatusOK {
				continue
			}
			buckets, theirs, err := decodeAEDiff(resp.Value, aeLeaves)
			if err != nil {
				continue
			}
			if len(buckets) == 0 {
				n.aeSyncedN.Add(1)
				continue
			}
			// Backflow first: keys where the holder is newer heal this
			// primary (version-gated — stale records lose and vanish).
			if merged, applied, err := n.store.mergeResident(rd.p, theirs); err == nil && applied && merged > 0 {
				n.aeHealedN.Add(int64(merged))
			}
			// Then ship our copy of the divergent buckets back. The
			// pre-merge snapshot is fine: every key the backflow just
			// changed came FROM this holder, which already has it.
			var divergent [aeLeaves]bool
			for _, b := range buckets {
				divergent[b] = true
			}
			var repair []kvEntry
			for _, e := range entries {
				if divergent[aeBucket(e.key)] {
					repair = append(repair, e)
				}
			}
			if len(repair) == 0 {
				continue
			}
			n.aeRepairsN.Add(1)
			if _, err := n.tr.Send(n.peerAddr(h), &transport.Message{
				Kind:      KindAERepair,
				Partition: uint32(rd.p),
				Epoch:     rd.epoch,
				Origin:    uint32(n.self),
				Value:     appendEntries(nil, repair),
			}); err != nil {
				continue // the holder stays divergent until the next round
			}
		}
	}
}

// handleAEDigest answers a primary's digest with this holder's diff: a
// non-resident or non-holder receiver refuses (its tree would compare
// garbage), an identical tree answers an empty diff, and a divergent
// one lists the mismatched buckets with its own entries for them.
func (n *Node) handleAEDigest(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	leaves, root, err := decodeAEDigest(req.Value)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	holder := n.view.hasReplica(p, n.self) && !n.recovering
	n.mu.RUnlock()
	if !holder || !n.store.isResident(p) {
		return &transport.Message{Kind: KindAEDigest, Partition: req.Partition, Status: transport.StatusRetry}, nil
	}
	entries, _ := n.store.snapshotEntries(p)
	mine := buildAETree(entries)
	if len(leaves) == aeLeaves && mine.Root() == root {
		return &transport.Message{Kind: KindAEDigest, Partition: req.Partition, Value: appendAEDiff(nil, nil, nil)}, nil
	}
	var divergent [aeLeaves]bool
	var buckets []int
	for i := 0; i < aeLeaves; i++ {
		if i >= len(leaves) || leaves[i] != mine.leaves[i] {
			divergent[i] = true
			buckets = append(buckets, i)
		}
	}
	var diff []kvEntry
	for _, e := range entries {
		if divergent[aeBucket(e.key)] {
			diff = append(diff, e)
		}
	}
	return &transport.Message{Kind: KindAEDigest, Partition: req.Partition, Value: appendAEDiff(nil, buckets, diff)}, nil
}

// handleAERepair folds the primary's repair payload in, version-gated
// and only into an already-resident copy — residency is a transfer
// protocol decision, never an anti-entropy side effect.
func (n *Node) handleAERepair(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	entries, err := decodeSnapshot(req.Value)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	holder := n.view.hasReplica(p, n.self) && !n.recovering
	var merged int
	applied := false
	if holder {
		merged, applied, err = n.store.mergeResident(p, entries)
	}
	n.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if !applied {
		return &transport.Message{Kind: KindAERepair, Partition: req.Partition, Status: transport.StatusRetry}, nil
	}
	if merged > 0 {
		n.aeHealedN.Add(int64(merged))
	}
	return &transport.Message{Kind: KindAERepair, Partition: req.Partition}, nil
}
