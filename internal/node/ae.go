package node

import (
	"encoding/binary"
	"sort"

	"repro/internal/transport"
)

// Anti-entropy: periodic Merkle-digest exchange between a partition's
// holders, repairing divergence without waiting for a quorum read to
// touch the stale key (Leslie, "Reliable Data Storage in DHTs").
//
// The digest is a two-level tree: aeSubCount (64×64) sub-buckets, each
// an XOR of its entries' record hashes, folded into aeTop top-level
// buckets. Every AEInterval-th epoch each resident partition primary
// piggybacks its top digest (64 leaves + root) on the KindStats
// broadcast it already sends — anti-entropy costs zero dedicated frames
// while the cluster is in sync. A co-holder whose tree disagrees pulls:
// it sends the divergent top buckets with its own sub-leaf vectors
// (KindAEDigest), gets back the primary's (key, version) lists for the
// divergent sub-buckets, then fetches exactly the keys it is missing or
// has stale (KindAEFetch) and pushes back any keys the primary lacks
// (KindAERepair). Values only ever move for keys proven divergent, so a
// one-key divergence on a large partition repairs with one key.
// Both directions merge version-gated through the store, so a repair
// can never roll a key back — the exchange is idempotent and safe to
// replay, duplicate or delay arbitrarily, which is what the chaos
// fault plane does to it.

// Tree shape: aeTop top-level buckets of aeFanout sub-buckets each.
// The top digest (64 × 8 bytes) rides the stats broadcast; sub-leaf
// vectors only move for divergent top buckets, and keylists only for
// divergent sub-buckets, so payloads shrink geometrically with each
// round. With a uniform key hash a single divergent key dirties one
// sub-bucket holding ~1/4096th of the partition's keys.
const (
	aeTop      = 64
	aeFanout   = 64
	aeSubCount = aeTop * aeFanout
)

// fnv-1a 64 parameters, written out because the tree hashes millions
// of entries in the bench path and the stdlib hash.Hash64 interface
// would allocate per entry.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// aeSub maps a key to its sub-bucket. Deliberately NOT ring.HashString:
// partition membership is already a function of the ring hash, and
// deriving buckets from the same value would correlate bucket occupancy
// with partition assignment instead of spreading a partition's keys
// uniformly across its own tree.
func aeSub(key string) int {
	return int(fnvString(fnvOffset, key) % aeSubCount)
}

// aeBucket maps a key to its top-level bucket (its sub-bucket's group).
func aeBucket(key string) int {
	return aeSub(key) / aeFanout
}

// aeEntryHash digests one (key, version, value) record. The version
// sits between key and value with a fixed width, so no two distinct
// records can collide by concatenation ambiguity.
func aeEntryHash(key string, ver uint64, val []byte) uint64 {
	h := fnvString(fnvOffset, key)
	var vb [8]byte
	binary.BigEndian.PutUint64(vb[:], ver)
	h = fnvBytes(h, vb[:])
	return fnvBytes(h, val)
}

// AETree is one partition's anti-entropy digest: aeSubCount sub-bucket
// leaves, each holding the XOR of its entries' record hashes, plus the
// aeTop top-level buckets maintained as the XOR of their sub-leaves.
// XOR makes every level order-independent and incrementally
// maintainable — applying the same record twice removes it, so an
// update is Apply(old) followed by Apply(new), O(1) per write. Exported
// (with NewAETree/Apply/Root) so rfhbench can hold the digest cost on a
// committed leash.
type AETree struct {
	sub [aeSubCount]uint64
	top [aeTop]uint64
}

// NewAETree returns an empty tree (the digest of an empty partition).
func NewAETree() *AETree { return &AETree{} }

// Apply XORs one record into its sub-bucket and the covering top
// bucket: call once to add a record, again with identical arguments to
// remove it.
func (t *AETree) Apply(key string, ver uint64, val []byte) {
	h := aeEntryHash(key, ver, val)
	s := aeSub(key)
	t.sub[s] ^= h
	t.top[s/aeFanout] ^= h
}

// Leaves returns the top-level hash vector (a copy; the piggybacked
// wire payload).
func (t *AETree) Leaves() []uint64 {
	out := make([]uint64, aeTop)
	copy(out, t.top[:])
	return out
}

// SubLeaves returns the sub-leaf vector of one top-level bucket (a
// copy; the KindAEDigest request payload).
func (t *AETree) SubLeaves(top int) []uint64 {
	out := make([]uint64, aeFanout)
	copy(out, t.sub[top*aeFanout:(top+1)*aeFanout])
	return out
}

// Root folds the top leaves pairwise up to the 8-byte root. The fold is
// order-sensitive (unlike the leaves), so two trees agreeing on the
// root agree on the whole top vector with hash-level confidence.
func (t *AETree) Root() uint64 {
	var lvl [aeTop]uint64
	copy(lvl[:], t.top[:])
	for n := aeTop; n > 1; n /= 2 {
		for i := 0; i < n/2; i++ {
			var b [16]byte
			binary.BigEndian.PutUint64(b[:8], lvl[2*i])
			binary.BigEndian.PutUint64(b[8:], lvl[2*i+1])
			lvl[i] = fnvBytes(fnvOffset, b[:])
		}
	}
	return lvl[0]
}

// buildAETree digests an entry block (the canonical snapshotEntries
// form). Order-independent by construction, so the sorted input is a
// convenience, not a requirement.
func buildAETree(entries []kvEntry) *AETree {
	t := &AETree{}
	for _, e := range entries {
		t.Apply(e.key, e.ver, e.val)
	}
	return t
}

// AEStats counts anti-entropy activity for DumpInfo and tests.
type AEStats struct {
	// Rounds is how many top digests this node published as primary
	// (one per partition per AEInterval boundary, piggybacked on the
	// stats broadcast).
	Rounds int64 `json:"rounds"`
	// Synced counts digest comparisons that found this holder identical
	// to the primary.
	Synced int64 `json:"synced"`
	// Repairs counts value-bearing repair payloads this node shipped:
	// fetch replies served as primary plus backflow pushes as holder.
	Repairs int64 `json:"repairs"`
	// Healed counts entries merged INTO this node by anti-entropy —
	// holder-side fetches plus primary-side backflow from holders.
	Healed int64 `json:"healed"`
	// PayloadBytes sums the AE payload bytes this node put on the wire:
	// sub-digest requests, keylist replies, fetch requests and replies,
	// and backflow pushes, each counted at its sender.
	PayloadBytes int64 `json:"payload_bytes"`
}

// AEStats returns the node's anti-entropy counters.
func (n *Node) AEStats() AEStats {
	return AEStats{
		Rounds:       n.aeRoundsN.Load(),
		Synced:       n.aeSyncedN.Load(),
		Repairs:      n.aeRepairsN.Load(),
		Healed:       n.aeHealedN.Load(),
		PayloadBytes: n.aePayloadN.Load(),
	}
}

// aeDigestsLocked builds, under n.mu, the top digests this node
// piggybacks on its stats broadcast: every AEInterval-th epoch, one per
// partition this node primaries with resident local data and at least
// one co-holder. A recovering node publishes nothing — its view is not
// yet trustworthy.
func (n *Node) aeDigestsLocked() []aePartitionDigest {
	iv := n.cfg.AEInterval
	if iv <= 0 || n.recovering || n.epoch%uint64(iv) != 0 {
		return nil
	}
	var digests []aePartitionDigest
	for p := 0; p < n.cfg.Partitions; p++ {
		if n.view.primary(p) != n.self {
			continue
		}
		coheld := false
		for _, s := range n.view.cluster.ReplicaServers(p) {
			if int(s) != n.self {
				coheld = true
				break
			}
		}
		if !coheld {
			continue
		}
		// The store maintains the digest incrementally, so publishing
		// costs O(1) per partition — no rehash on the epoch path.
		leaves, root, resident := n.store.aeDigest(p)
		if !resident {
			continue
		}
		digests = append(digests, aePartitionDigest{partition: p, root: root, leaves: leaves})
		n.aeRoundsN.Add(1)
	}
	return digests
}

// aePull is one holder-side reconciliation planned from a piggybacked
// digest: the partition, the primary that published it, and the
// published top digest to compare against.
type aePull struct {
	p       int
	primary int
	epoch   uint64
	root    uint64
	leaves  []uint64
}

// aePullPlansLocked scans, under n.mu, the epoch's folded stats blobs
// for piggybacked digests this node should reconcile against: the
// sender must be the partition's primary in this node's own view, and
// this node must be a resident co-holder. A recovering node plans
// nothing. Blobs are scanned in roster order and digests arrive in
// ascending partition order, so the pull sequence is deterministic (the
// chaos fault plane's RNG draw order depends on it).
func (n *Node) aePullPlansLocked() []aePull {
	if n.cfg.AEInterval <= 0 || n.recovering {
		return nil
	}
	var pulls []aePull
	for i, blob := range n.pending {
		if blob == nil || i == n.self {
			continue
		}
		for _, d := range blob.digests {
			p := d.partition
			if n.view.primary(p) != i || !n.view.hasReplica(p, n.self) || !n.store.isResident(p) {
				continue
			}
			pulls = append(pulls, aePull{p: p, primary: i, epoch: n.epoch, root: d.root, leaves: d.leaves})
		}
	}
	return pulls
}

// runAEPulls executes the planned reconciliations. Every failure mode
// is soft: a dropped frame, a refusing primary or a malformed payload
// just leaves the divergence for the next round (or for read-repair or
// replica shipping to catch first).
//
//lint:requires-unlocked n.mu
func (n *Node) runAEPulls(pulls []aePull) {
	for _, pl := range pulls {
		mine, root, resident := n.store.aeDigest(pl.p)
		if !resident {
			continue // residency was lost between planning and here
		}
		if len(pl.leaves) == aeTop && root == pl.root {
			n.aeSyncedN.Add(1)
			continue
		}
		// Divergent top buckets. A malformed leaf count marks every
		// bucket divergent — the sub round then re-establishes truth.
		var tops []int
		for b := 0; b < aeTop; b++ {
			if b >= len(pl.leaves) || pl.leaves[b] != mine[b] {
				tops = append(tops, b)
			}
		}
		if len(tops) == 0 {
			// Leaves agree but the root does not (or the vector was
			// oversized): treat the whole tree as divergent.
			for b := 0; b < aeTop; b++ {
				tops = append(tops, b)
			}
		}
		subs := n.store.aeSubLeaves(pl.p, tops)
		req := appendAESub(nil, tops, subs)
		n.aePayloadN.Add(int64(len(req)))
		resp, err := n.tr.Send(n.peerAddr(pl.primary), &transport.Message{
			Kind:      KindAEDigest,
			Partition: uint32(pl.p),
			Epoch:     pl.epoch,
			Origin:    uint32(n.self),
			Value:     req,
		})
		if err != nil || resp.Status != transport.StatusOK {
			continue
		}
		subIdx, lists, err := decodeAEKeylists(resp.Value)
		if err != nil {
			continue
		}
		// Index the local copy of the listed sub-buckets. entries is in
		// ascending key order, so per-bucket key order is deterministic.
		entries, _ := n.store.snapshotEntries(pl.p)
		listed := make(map[int]bool, len(subIdx))
		for _, s := range subIdx {
			listed[s] = true
		}
		localVer := make(map[string]uint64)
		localBySub := make(map[int][]kvEntry)
		for _, e := range entries {
			if s := aeSub(e.key); listed[s] {
				localVer[e.key] = e.ver
				localBySub[s] = append(localBySub[s], e)
			}
		}
		// Fetch what the primary proved newer or unknown here; push back
		// what this holder has that the primary lacks or has stale.
		primVer := make(map[string]uint64)
		var fetch []string
		for _, list := range lists {
			for _, kv := range list {
				primVer[kv.key] = kv.ver
				if lv, ok := localVer[kv.key]; !ok || lv < kv.ver {
					fetch = append(fetch, kv.key)
				}
			}
		}
		var push []kvEntry
		for _, s := range subIdx {
			for _, e := range localBySub[s] {
				if pv, ok := primVer[e.key]; !ok || pv < e.ver {
					push = append(push, e)
				}
			}
		}
		if len(fetch) > 0 {
			freq := appendAEKeys(nil, fetch)
			n.aePayloadN.Add(int64(len(freq)))
			resp, err := n.tr.Send(n.peerAddr(pl.primary), &transport.Message{
				Kind:      KindAEFetch,
				Partition: uint32(pl.p),
				Epoch:     pl.epoch,
				Origin:    uint32(n.self),
				Value:     freq,
			})
			if err == nil && resp.Status == transport.StatusOK {
				if got, derr := decodeSnapshot(resp.Value); derr == nil {
					if merged, applied, merr := n.store.mergeResident(pl.p, got); merr == nil && applied && merged > 0 {
						n.aeHealedN.Add(int64(merged))
					}
				}
			}
		}
		if len(push) > 0 {
			buf := appendEntries(nil, push)
			n.aePayloadN.Add(int64(len(buf)))
			n.aeRepairsN.Add(1)
			if _, err := n.tr.Send(n.peerAddr(pl.primary), &transport.Message{
				Kind:      KindAERepair,
				Partition: uint32(pl.p),
				Epoch:     pl.epoch,
				Origin:    uint32(n.self),
				Value:     buf,
			}); err != nil {
				continue // the primary stays divergent until the next round
			}
		}
	}
}

// handleAEDigest answers a holder's sub-digest request with this
// primary's keylists: a non-resident or non-holder receiver refuses
// (its tree would compare garbage); otherwise the reply lists, for
// every divergent sub-bucket of the requested top buckets, this node's
// (key, version) pairs — including empty lists for sub-buckets where
// the holder has data this node lacks entirely.
func (n *Node) handleAEDigest(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	tops, theirSubs, err := decodeAESub(req.Value)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	holder := n.view.hasReplica(p, n.self) && !n.recovering
	n.mu.RUnlock()
	if !holder || !n.store.isResident(p) {
		return &transport.Message{Kind: KindAEDigest, Partition: req.Partition, Status: transport.StatusRetry}, nil
	}
	mineSubs := n.store.aeSubLeaves(p, tops)
	divergent := make(map[int]bool)
	for i, b := range tops {
		for j := 0; j < aeFanout; j++ {
			if s := b*aeFanout + j; mineSubs[i][j] != theirSubs[i][j] {
				divergent[s] = true
			}
		}
	}
	subIdx := make([]int, 0, len(divergent))
	for s := range divergent {
		subIdx = append(subIdx, s)
	}
	sort.Ints(subIdx)
	bySub := make(map[int][]aeKeyVer)
	if len(divergent) > 0 {
		entries, _ := n.store.snapshotEntries(p)
		for _, e := range entries {
			if s := aeSub(e.key); divergent[s] {
				bySub[s] = append(bySub[s], aeKeyVer{key: e.key, ver: e.ver})
			}
		}
	}
	lists := make([][]aeKeyVer, len(subIdx))
	for i, s := range subIdx {
		lists[i] = bySub[s]
	}
	reply := appendAEKeylists(nil, subIdx, lists)
	n.aePayloadN.Add(int64(len(reply)))
	return &transport.Message{Kind: KindAEDigest, Partition: req.Partition, Value: reply}, nil
}

// handleAEFetch serves the values for the keys a holder proved stale or
// missing. Keys the primary no longer has are simply absent from the
// reply (the next digest round settles them); a non-resident receiver
// refuses.
func (n *Node) handleAEFetch(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	keys, err := decodeAEKeys(req.Value)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	holder := n.view.hasReplica(p, n.self) && !n.recovering
	n.mu.RUnlock()
	if !holder || !n.store.isResident(p) {
		return &transport.Message{Kind: KindAEFetch, Partition: req.Partition, Status: transport.StatusRetry}, nil
	}
	found := n.store.getEntries(p, keys)
	reply := appendEntries(nil, found)
	if len(found) > 0 {
		n.aeRepairsN.Add(1)
	}
	n.aePayloadN.Add(int64(len(reply)))
	return &transport.Message{Kind: KindAEFetch, Partition: req.Partition, Value: reply}, nil
}

// handleAERepair folds a holder's backflow payload in, version-gated
// and only into an already-resident copy — residency is a transfer
// protocol decision, never an anti-entropy side effect.
func (n *Node) handleAERepair(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	entries, err := decodeSnapshot(req.Value)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	holder := n.view.hasReplica(p, n.self) && !n.recovering
	var merged int
	applied := false
	if holder {
		merged, applied, err = n.store.mergeResident(p, entries)
	}
	n.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if !applied {
		return &transport.Message{Kind: KindAERepair, Partition: req.Partition, Status: transport.StatusRetry}, nil
	}
	if merged > 0 {
		n.aeHealedN.Add(int64(merged))
	}
	return &transport.Message{Kind: KindAERepair, Partition: req.Partition}, nil
}
