package node

import (
	"fmt"
	"testing"

	"repro/internal/transport"
)

// TestAETreeIncrementalMatchesBuild pins the XOR-leaf invariant the
// incremental update path relies on: applying records one by one, in
// any order, lands on the same digest as a bulk build, and re-applying
// a record removes it.
func TestAETreeIncrementalMatchesBuild(t *testing.T) {
	entries := make([]kvEntry, 0, 100)
	for i := 0; i < 100; i++ {
		entries = append(entries, kvEntry{
			key: fmt.Sprintf("ae-key-%d", i),
			ver: uint64(i + 1),
			val: []byte(fmt.Sprintf("val-%d", i)),
		})
	}
	bulk := buildAETree(entries)

	inc := NewAETree()
	for i := len(entries) - 1; i >= 0; i-- { // reverse order: leaves are order-free
		inc.Apply(entries[i].key, entries[i].ver, entries[i].val)
	}
	if bulk.Root() != inc.Root() {
		t.Fatalf("bulk root %x != incremental root %x", bulk.Root(), inc.Root())
	}

	// An update is remove-old + add-new; undoing it restores the root.
	root := inc.Root()
	inc.Apply(entries[7].key, entries[7].ver, entries[7].val) // remove
	inc.Apply(entries[7].key, 999, []byte("new"))             // add new version
	if inc.Root() == root {
		t.Fatal("updating an entry did not change the root")
	}
	inc.Apply(entries[7].key, 999, []byte("new"))
	inc.Apply(entries[7].key, entries[7].ver, entries[7].val)
	if inc.Root() != root {
		t.Fatal("undoing the update did not restore the root")
	}

	empty := NewAETree()
	if empty.Root() == root {
		t.Fatal("empty tree shares a populated tree's root")
	}
}

// TestAETreeLocalizesDivergence: two trees differing in one record
// disagree on exactly that record's bucket, so a repair ships ~1/64th
// of the partition rather than all of it.
func TestAETreeLocalizesDivergence(t *testing.T) {
	a := NewAETree()
	b := NewAETree()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k-%d", i)
		a.Apply(key, uint64(i+1), []byte("v"))
		b.Apply(key, uint64(i+1), []byte("v"))
	}
	// b lags one write: k-3 is at version 4 on a, 204 on b.
	b.Apply("k-3", 4, []byte("v"))
	b.Apply("k-3", 204, []byte("v2"))
	if a.Root() == b.Root() {
		t.Fatal("divergent trees share a root")
	}
	la, lb := a.Leaves(), b.Leaves()
	var diff []int
	for i := range la {
		if la[i] != lb[i] {
			diff = append(diff, i)
		}
	}
	if len(diff) != 1 || diff[0] != aeBucket("k-3") {
		t.Fatalf("divergent buckets = %v, want exactly [%d]", diff, aeBucket("k-3"))
	}
}

// TestAntiEntropyHealsSeveredHolder is the regression test for the
// background repair path: a co-holder misses a write while severed
// (the write correctly fails its quorum), the partition reconnects,
// and WITHOUT any read touching the key the holder converges to the
// primary's copy within AEInterval epochs. The fault wrapper counts
// every read frame (KindGet and KindVer) on the wire to prove the heal
// was anti-entropy, not read-repair.
func TestAntiEntropyHealsSeveredHolder(t *testing.T) {
	cfg := quorumConfig(2, 2)
	cfg.AEInterval = 2
	severed := false
	reads := 0
	wrap := func(i int, tr transport.Transport) transport.Transport {
		return transport.NewFault(tr, func(from, to string, m *transport.Message) transport.FaultAction {
			if m.Kind == KindGet || m.Kind == KindVer {
				reads++
			}
			if severed && (m.Kind == KindSync || m.Kind == KindStore) {
				return transport.FaultDrop
			}
			return transport.FaultDeliver
		})
	}
	f, err := NewFleetWrapped(4, cfg, wrap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 4; i++ {
		if err := f.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}

	key := PartitionKey(0, 12)
	primary := f.Node(0).Primaries()[0]
	holders := f.Node(0).ReplicaMap()[0]
	stale := -1
	for _, hIdx := range holders {
		if hIdx != primary {
			stale = hIdx
			break
		}
	}
	if stale < 0 {
		t.Fatalf("partition 0 has no secondary holder: %v", holders)
	}

	if _, err := f.Node(primary).PutQuorum(key, []byte("v1")); err != nil {
		t.Fatalf("seed put: %v", err)
	}

	severed = true
	rcpt, err := f.Node(primary).PutQuorum(key, []byte("v2"))
	if err == nil {
		t.Fatal("put met its quorum with replication severed")
	}
	severed = false

	// The holder reconnected divergent. No reads are issued from here
	// on — the next AEInterval boundary must reconcile it.
	healed := -1
	for i := 1; i <= cfg.AEInterval; i++ {
		if err := f.Tick(); err != nil {
			t.Fatalf("heal tick %d: %v", i, err)
		}
		if sv, sver, ok := f.Node(stale).LocalVersion(key); ok && string(sv) == "v2" && sver == rcpt.Version {
			healed = i
			break
		}
	}
	if healed < 0 {
		sv, sver, ok := f.Node(stale).LocalVersion(key)
		t.Fatalf("holder still divergent after %d epochs: (%q, %d, %v), want (v2, %d)",
			cfg.AEInterval, sv, sver, ok, rcpt.Version)
	}
	if reads != 0 {
		t.Fatalf("heal used %d read frames on the wire — that is read-repair, not anti-entropy", reads)
	}
	st := f.Node(primary).AEStats()
	if st.Rounds == 0 {
		t.Error("primary initiated no anti-entropy rounds")
	}
	if st.Repairs == 0 {
		t.Error("primary shipped no repair payloads — the heal came from somewhere else")
	}
	if d := f.Node(primary).Dump(); d.AntiEntropy != st {
		t.Errorf("dump anti-entropy stats %+v diverge from accessor %+v", d.AntiEntropy, st)
	}
	if hs := f.Node(stale).AEStats(); hs.Healed == 0 {
		t.Error("healed holder counts no merged entries")
	}
}

// TestAEDigestRefusedByNonResident: a digest aimed at a node that is
// not a resident holder must come back StatusRetry — comparing against
// a partial tree would "repair" divergence into existence.
func TestAEDigestRefusedByNonResident(t *testing.T) {
	h := newHarness(t, "loopback", 3, testConfig())
	h.tick()
	h.tick()

	const key = "ae-nonresident-key"
	p := h.nodes[0].PartitionOf(key)
	h.nodes[0].mu.RLock()
	prim := h.nodes[0].view.primary(p)
	h.nodes[0].mu.RUnlock()

	// Make a non-primary node non-resident for p: a drop empties its
	// store copy (the view may still list it as holder, which is
	// exactly the half-state the handler must refuse on).
	victim := (prim + 1) % len(h.nodes)
	if resp, err := h.nodes[victim].Handle("test", &transport.Message{Kind: KindDrop, Partition: uint32(p)}); err != nil {
		t.Fatalf("drop: %v", err)
	} else if resp.Status != transport.StatusOK {
		t.Fatalf("drop refused with status %d", resp.Status)
	}
	tree := NewAETree()
	resp, err := h.nodes[victim].Handle("test", &transport.Message{
		Kind:      KindAEDigest,
		Partition: uint32(p),
		Value:     appendAESub(nil, []int{0}, [][]uint64{tree.SubLeaves(0)}),
	})
	if err != nil {
		t.Fatalf("digest at non-resident: %v", err)
	}
	if resp.Status != transport.StatusRetry {
		t.Fatalf("non-resident holder answered status %d, want StatusRetry", resp.Status)
	}
	// The value-fetch leg must bounce off the same residency guard.
	resp, err = h.nodes[victim].Handle("test", &transport.Message{
		Kind:      KindAEFetch,
		Partition: uint32(p),
		Value:     appendAEKeys(nil, []string{"ae-k"}),
	})
	if err != nil {
		t.Fatalf("fetch at non-resident: %v", err)
	}
	if resp.Status != transport.StatusRetry {
		t.Fatalf("non-resident holder served a fetch (status %d), want StatusRetry", resp.Status)
	}
	// A repair payload must bounce off the same guard.
	resp, err = h.nodes[victim].Handle("test", &transport.Message{
		Kind:      KindAERepair,
		Partition: uint32(p),
		Value:     appendEntries(nil, []kvEntry{{key: "ae-k", ver: 1, val: []byte("v")}}),
	})
	if err != nil {
		t.Fatalf("repair at non-resident: %v", err)
	}
	if resp.Status != transport.StatusRetry {
		t.Fatalf("non-resident holder applied a repair (status %d), want StatusRetry", resp.Status)
	}
}
