package node

import (
	"fmt"

	"repro/internal/transport"
)

// RepairCost is one bytes-on-wire comparison row for rfhbench's repair
// suite: what the pre-delta protocol would have shipped against what
// the watermark/hierarchical protocol actually ships for the same
// divergence, both measured from the real encoders (and, for
// transfers, from real sessions on the wire).
type RepairCost struct {
	Name string `json:"name"`
	// Keys is the partition's record count, Divergent how many of them
	// the target/holder is missing or holds stale.
	Keys      int `json:"keys"`
	Divergent int `json:"divergent"`
	// BaselineBytes is the pre-delta cost (full snapshot transfer, or
	// flat 64-leaf digest + bucket diff), DeltaBytes the new protocol's.
	BaselineBytes int64 `json:"baseline_bytes"`
	DeltaBytes    int64 `json:"delta_bytes"`
	// Ratio is BaselineBytes / DeltaBytes — "how many times fewer bytes
	// move" for this divergence.
	Ratio float64 `json:"ratio"`
}

// repairEntries builds a deterministic keys-record partition image in
// the chaos workload's size class: short formatted keys, 64-byte
// values. Versions ascend from 1 so a re-migration watermark splits
// the set cleanly.
func repairEntries(keys int) []kvEntry {
	entries := make([]kvEntry, keys)
	for i := range entries {
		val := make([]byte, 64)
		copy(val, fmt.Sprintf("repair-bench.e%d.k%06d.", i, i))
		entries[i] = kvEntry{
			key: fmt.Sprintf("repair-k%06d", i),
			ver: uint64(i + 1),
			val: val,
		}
	}
	return entries
}

// MeasureTransferRepair runs two real chunked transfer sessions over
// loopback — a cold full migration, then a re-migration after
// `divergent` fresh writes — and reports the encoded request bytes
// each put on the wire. The fleet's transport is wrapped with a
// counting tap, so the numbers include every probe, begin, chunk and
// complete frame exactly as sent (replies are not counted on either
// side; chunk payloads dominate both).
func MeasureTransferRepair(keys, divergent int) (RepairCost, error) {
	cfg := DefaultConfig(0, nil)
	cfg.Partitions = 8
	cfg.ReplicaCapacity = 8
	cfg.Seed = 7
	cfg.WriteQuorum = 1
	cfg.ReadQuorum = 1
	cfg.SnapshotOneFrameBytes = -1 // every ship is a probed, planned session
	cfg.TransferLeaseEpochs = 1 << 20

	var wireBytes int64
	wrap := func(i int, tr transport.Transport) transport.Transport {
		return transport.NewFault(tr, func(from, to string, m *transport.Message) transport.FaultAction {
			switch m.Kind {
			case KindXferBegin, KindXferChunk, KindXferCursor, KindXferDone:
				wireBytes += int64(len(transport.AppendMessage(nil, m)))
			default: // only transfer-session frames count toward the comparison
			}
			return transport.FaultDeliver
		})
	}
	f, err := NewFleetWrapped(3, cfg, wrap)
	if err != nil {
		return RepairCost{}, err
	}
	defer f.Close()

	const p, target = 0, 1
	//lint:ignore rfhlint/closecheck Node borrows the fleet's slot; f.Close owns shutdown
	src := f.Node(0)
	entries := repairEntries(keys)
	if err := src.store.mergeSnapshot(p, entries); err != nil {
		return RepairCost{}, err
	}
	f.Node(target).store.drop(p)

	// Cold migration: the target is non-resident, the plan is full.
	wireBytes = 0
	if !src.TransferPartition(p, target) {
		return RepairCost{}, fmt.Errorf("full transfer of %d keys did not complete", keys)
	}
	full := wireBytes

	// Diverge by `divergent` fresh writes above the shipped watermark,
	// then re-migrate: the probe finds a resident target whose digest
	// matches below the watermark, so only the fresh entries ship.
	fresh := make([]kvEntry, divergent)
	for i := range fresh {
		val := make([]byte, 64)
		copy(val, fmt.Sprintf("repair-bench-fresh.%d.", i))
		fresh[i] = kvEntry{
			key: fmt.Sprintf("repair-fresh-k%06d", i),
			ver: uint64(keys + i + 1),
			val: val,
		}
	}
	if err := src.store.mergeSnapshot(p, fresh); err != nil {
		return RepairCost{}, err
	}
	wireBytes = 0
	if !src.TransferPartition(p, target) {
		return RepairCost{}, fmt.Errorf("delta re-transfer did not complete")
	}
	delta := wireBytes
	st := src.TransferStats()
	if st.DeltaSessions != 1 {
		return RepairCost{}, fmt.Errorf("re-migration did not plan a delta session (stats %+v)", st)
	}

	return RepairCost{
		Name:          fmt.Sprintf("transfer-remigrate-%dk-%d", keys/1000, divergent),
		Keys:          keys,
		Divergent:     divergent,
		BaselineBytes: full,
		DeltaBytes:    delta,
		Ratio:         float64(full) / float64(delta),
	}, nil
}

// MeasureAERepair prices one anti-entropy repair of `divergent` stale
// records on a keys-record partition, flat against hierarchical, from
// the real frame encoders:
//
//   - Flat (the pre-hierarchy protocol, encoders retained as the
//     baseline): the holder ships its 64-leaf digest, the primary
//     replies with a diff carrying EVERY record in the divergent
//     buckets — ~1/64th of the partition per stale key, values and
//     all.
//   - Hierarchical: the primary's piggybacked top digest (the same 64
//     leaves — detection costs both sides alike), the holder's
//     sub-leaf vectors for the divergent tops, the primary's per-key
//     (key, version) lists for the divergent sub-buckets, and a fetch
//     that moves only the stale records' values.
//
// Both sums start at divergence detection and end with every byte a
// repair needs on the wire, so the ratio is the protocols' whole cost
// gap, not a flattering slice of it.
func MeasureAERepair(keys, divergent int) RepairCost {
	entries := repairEntries(keys)
	primary := buildAETree(entries)

	// The holder's copy of the first `divergent` records is stale.
	holder := buildAETree(entries)
	stale := make([]kvEntry, divergent)
	for i := range stale {
		old := entries[i]
		holder.Apply(old.key, old.ver, old.val) // XOR-remove the current record
		stale[i] = kvEntry{key: old.key, ver: old.ver, val: []byte("stale-value")}
		holder.Apply(stale[i].key, stale[i].ver, stale[i].val)
	}

	hLeaves, pLeaves := holder.Leaves(), primary.Leaves()
	var tops []int
	for i := range pLeaves {
		if hLeaves[i] != pLeaves[i] {
			tops = append(tops, i)
		}
	}

	// Flat: digest request + full-bucket diff reply.
	var flatDiff []kvEntry
	for _, e := range entries {
		for _, b := range tops {
			if aeBucket(e.key) == b {
				flatDiff = append(flatDiff, e)
				break
			}
		}
	}
	flat := int64(len(appendAEDigest(nil, hLeaves, holder.Root()))) +
		int64(len(appendAEDiff(nil, tops, flatDiff)))

	// Hierarchical: piggybacked top digest, sub-leaf vectors for the
	// divergent tops, keylists for the divergent sub-buckets, and a
	// fetch of exactly the stale keys.
	subs := make([][]uint64, len(tops))
	var subIdx []int
	var lists [][]aeKeyVer
	var fetch []string
	for i, b := range tops {
		subs[i] = holder.SubLeaves(b)
		pSubs := primary.SubLeaves(b)
		for j := range pSubs {
			if subs[i][j] == pSubs[j] {
				continue
			}
			sub := b*aeFanout + j
			subIdx = append(subIdx, sub)
			var list []aeKeyVer
			for _, e := range entries {
				if aeSub(e.key) == sub {
					list = append(list, aeKeyVer{key: e.key, ver: e.ver})
				}
			}
			lists = append(lists, list)
		}
	}
	for _, s := range stale {
		fetch = append(fetch, s.key)
	}
	fetched := entries[:divergent]
	hier := int64(len(appendAEDigest(nil, pLeaves, primary.Root()))) +
		int64(len(appendAESub(nil, tops, subs))) +
		int64(len(appendAEKeylists(nil, subIdx, lists))) +
		int64(len(appendAEKeys(nil, fetch))) +
		int64(len(appendEntries(nil, fetched)))

	return RepairCost{
		Name:          fmt.Sprintf("ae-repair-%dk-%d", keys/1000, divergent),
		Keys:          keys,
		Divergent:     divergent,
		BaselineBytes: flat,
		DeltaBytes:    hier,
		Ratio:         float64(flat) / float64(hier),
	}
}
