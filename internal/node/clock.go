package node

import "time"

// Clock abstracts wall-clock reads so the live command-line layer can
// measure client-observed latency while everything inside the node —
// epochs, suspicion, decisions — stays purely logical and
// deterministic. The node package itself never reads a clock; Clock
// exists so callers (rfhctl latency sampling, rfhnode tickers) have a
// single, mockable source instead of scattering time.Now calls.
type Clock interface {
	Now() time.Time
}

// WallClock is the real clock. It is the only wall-clock read in the
// deterministic packages; tests substitute a fake Clock.
var WallClock Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time {
	//lint:ignore rfhlint/nowallclock the single sanctioned wall-clock read; node logic is epoch-driven and never calls this
	return time.Now()
}

// FakeClock is a manually-advanced Clock for tests.
type FakeClock struct {
	T time.Time
}

// Now returns the fake instant.
func (f *FakeClock) Now() time.Time { return f.T }

// Advance moves the fake clock forward.
func (f *FakeClock) Advance(d time.Duration) { f.T = f.T.Add(d) }
