package node

import (
	"fmt"
	"sort"

	"repro/internal/availability"
	"repro/internal/traffic"
)

// Peer is one member of the static cluster roster: a node id and the
// transport address it answers on. Every node runs with the same
// roster, and a peer's datacenter index is its position in the roster
// sorted by id — which is what lets every node derive an identical
// world view from configuration alone.
type Peer struct {
	ID   int
	Addr string
}

// Config describes one live node. All nodes of a cluster must share
// every field except ID (and the address book entries naturally
// differ per deployment): the world topology, ring, and policy
// thresholds are derived deterministically from the shared fields, so
// identical configs give every node the same view of the cluster.
type Config struct {
	// ID is this node's id; it must appear in Peers.
	ID int
	// Peers is the full static roster, self included. At least three
	// nodes (the minimum synthetic world).
	Peers []Peer

	// Partitions is the number of data partitions (default 64).
	Partitions int
	// TokensPerServer is the virtual nodes each peer projects onto the
	// consistent-hashing ring (default 8).
	TokensPerServer int
	// ReplicaCapacity is the queries one replica serves per epoch
	// before counting overflow (default 100). The live node never
	// refuses a request — capacity is the accounting signal behind
	// eq. (12), not an admission limit.
	ReplicaCapacity int
	// PartitionSize is the nominal bytes charged against replication
	// and migration bandwidth per transfer (default 512 KB).
	PartitionSize int64
	// ReplicationBW and MigrationBW are the per-epoch send budgets in
	// bytes (defaults 300 MB and 100 MB, Table I).
	ReplicationBW int64
	MigrationBW   int64

	// Thresholds are the α/β/γ/δ/μ decision constants (Table I).
	Thresholds traffic.Thresholds
	// FailureRate and MinAvailability parameterise the eq. (14)
	// availability lower limit (defaults 0.1 and 0.8).
	FailureRate     float64
	MinAvailability float64
	// HubCandidates is the traffic-hub candidate set size (default 3).
	HubCandidates int
	// PolicyName selects the replication algorithm: "rfh" (default),
	// "random", "owner" or "request".
	PolicyName string

	// WriteQuorum is W: how many holders (primary included) must
	// durably accept a Put before it is acked. 0 normalises to 1 —
	// primary-only acks, the pre-quorum behaviour. Values above 1 make
	// acked writes survive the crash of any W-1 holders, at the price of
	// refusing writes while fewer than W holders are reachable. Bounded
	// above by the eq. (14) MinReplicas floor, the replica count the
	// policy is obliged to maintain.
	WriteQuorum int
	// ReadQuorum is R: how many holders a Get consults before answering
	// with the highest version observed. 0 normalises to 1 (serve
	// locally, no fan-out). With W+R > MinReplicas a read quorum always
	// intersects the latest write quorum. Same upper bound as
	// WriteQuorum.
	ReadQuorum int

	// DataDir, when non-empty, backs the node's store with the durable
	// engine (internal/durable): every applied write lands in a
	// per-partition WAL before it is acked, and a restart in the same
	// directory recovers the data instead of rejoining blank. Empty
	// keeps the pure in-memory store.
	DataDir string
	// Fsync selects the durable engine's sync discipline: true (the
	// DefaultConfig setting) fsyncs the WAL on every append; false skips
	// the physical sync — the mode deterministic simulations use, where
	// "durability" means surviving a process-level Crash/Restart, not a
	// power cut. Ignored without DataDir.
	Fsync bool
	// WALCompactEvery is how many WAL records a partition accumulates
	// before its log folds into a snapshot (default 1024).
	WALCompactEvery int

	// SnapshotOneFrameBytes is the size threshold that splits replica
	// shipping: a partition whose payload stays under it travels as one
	// KindStore frame, anything larger goes through a chunked transfer
	// session (default 64 KiB). Negative disables one-frame shipping
	// entirely — every ship becomes a session, so even empty partitions
	// take the probed, delta-planned path (sizeBytes is never negative).
	SnapshotOneFrameBytes int
	// TransferChunkEntries bounds the entries one transfer chunk carries
	// (default 256); chunks also cap at a fixed byte size.
	TransferChunkEntries int
	// TransferLeaseEpochs is how many epochs an outbound transfer
	// session may go without progress before the source abandons it and
	// releases its compaction hold (default 4).
	TransferLeaseEpochs int

	// AEInterval is the anti-entropy cadence in epochs: on every
	// AEInterval-th RunEpoch, each resident partition primary exchanges
	// Merkle digests with the partition's other holders and repairs
	// divergent key ranges through version-gated merges, so holder drift
	// heals without waiting for a quorum read to touch the key. 0 (the
	// default) disables background anti-entropy — read-repair and
	// replica shipping stay the only healing paths, which is also what
	// the byte-identical memory-mode chaos trajectories require.
	AEInterval int

	// SuspectAfter is how many epochs a peer may stay silent before it
	// is presumed failed and removed from the view (default 3).
	SuspectAfter int
	// Fanout bounds how many peers the node contacts concurrently when
	// a single logical step sends to several (the per-epoch stats
	// broadcast, replica-sync on a primary write, the decision's data
	// movements). Values <= 1 send strictly sequentially in roster
	// order — the mode the deterministic loopback harnesses require,
	// because the chaos fault wrapper draws from a shared RNG per send
	// and its draw order is part of the seed's byte-identical
	// trajectory. Fleet forces 1; live deployments default to 8.
	Fanout int
	// Seed drives every stochastic choice: the synthetic world, the
	// ring positions, and the per-epoch policy RNG streams. All nodes
	// must share it.
	Seed uint64
}

// DefaultConfig returns a config for node id over the given roster,
// with Table I-shaped defaults.
func DefaultConfig(id int, peers []Peer) Config {
	return Config{
		ID:              id,
		Peers:           peers,
		Partitions:      64,
		TokensPerServer: 8,
		ReplicaCapacity: 100,
		PartitionSize:   512 << 10,
		ReplicationBW:   300 << 20,
		MigrationBW:     100 << 20,
		Thresholds:      traffic.DefaultThresholds(),
		FailureRate:     0.1,
		MinAvailability: 0.8,
		HubCandidates:   3,
		PolicyName:      "rfh",
		Fsync:           true,
		SuspectAfter:    3,
		Fanout:          8,
		Seed:            1,
	}
}

// Validate checks the config and returns the roster sorted by id.
func (c *Config) Validate() error {
	if len(c.Peers) < 3 {
		return fmt.Errorf("node: need at least 3 peers, got %d (the synthetic world needs 3 datacenters)", len(c.Peers))
	}
	sort.Slice(c.Peers, func(i, j int) bool { return c.Peers[i].ID < c.Peers[j].ID })
	self := -1
	for i, p := range c.Peers {
		if i > 0 && p.ID == c.Peers[i-1].ID {
			return fmt.Errorf("node: duplicate peer id %d", p.ID)
		}
		if p.Addr == "" {
			return fmt.Errorf("node: peer %d has no address", p.ID)
		}
		if p.ID == c.ID {
			self = i
		}
	}
	if self < 0 {
		return fmt.Errorf("node: own id %d not in the peer roster", c.ID)
	}
	switch {
	case c.Partitions <= 0:
		return fmt.Errorf("node: partitions must be positive")
	case c.TokensPerServer <= 0:
		return fmt.Errorf("node: tokens per server must be positive")
	case c.ReplicaCapacity <= 0:
		return fmt.Errorf("node: replica capacity must be positive")
	case c.PartitionSize <= 0:
		return fmt.Errorf("node: partition size must be positive")
	case c.ReplicationBW <= 0 || c.MigrationBW <= 0:
		return fmt.Errorf("node: bandwidth budgets must be positive")
	case c.HubCandidates <= 0:
		return fmt.Errorf("node: hub candidates must be positive")
	case c.SuspectAfter <= 0:
		return fmt.Errorf("node: suspect-after must be positive")
	case c.Fanout < 0:
		return fmt.Errorf("node: fanout must not be negative")
	case c.WriteQuorum < 0 || c.ReadQuorum < 0:
		return fmt.Errorf("node: quorums must not be negative")
	case c.WALCompactEvery < 0 ||
		c.TransferChunkEntries < 0 || c.TransferLeaseEpochs < 0:
		return fmt.Errorf("node: durability/transfer settings must not be negative")
	case c.AEInterval < 0:
		return fmt.Errorf("node: anti-entropy interval must not be negative (0 disables)")
	}
	// 0 means "unset" for the durability and transfer knobs too.
	if c.WALCompactEvery == 0 {
		c.WALCompactEvery = 1024
	}
	if c.SnapshotOneFrameBytes == 0 {
		c.SnapshotOneFrameBytes = 64 << 10
	}
	if c.TransferChunkEntries == 0 {
		c.TransferChunkEntries = 256
	}
	if c.TransferLeaseEpochs == 0 {
		c.TransferLeaseEpochs = 4
	}
	// Quorums cap at MinReplicas: the policy guarantees at most that
	// many holders per partition in steady state, so a larger quorum
	// could never be met.
	if c.WriteQuorum > 1 || c.ReadQuorum > 1 {
		min, err := availability.MinReplicas(c.FailureRate, c.MinAvailability)
		if err != nil {
			return fmt.Errorf("node: quorum bound: %w", err)
		}
		if c.WriteQuorum > min {
			return fmt.Errorf("node: write quorum %d exceeds MinReplicas %d (eq. 14 with f=%g, target=%g)",
				c.WriteQuorum, min, c.FailureRate, c.MinAvailability)
		}
		if c.ReadQuorum > min {
			return fmt.Errorf("node: read quorum %d exceeds MinReplicas %d (eq. 14 with f=%g, target=%g)",
				c.ReadQuorum, min, c.FailureRate, c.MinAvailability)
		}
	}
	// 0 means "unset": normalise to the degenerate single-copy quorum,
	// matching the pre-quorum primary-only behaviour (the same
	// mutate-in-Validate convention as the Peers sort above).
	if c.WriteQuorum == 0 {
		c.WriteQuorum = 1
	}
	if c.ReadQuorum == 0 {
		c.ReadQuorum = 1
	}
	return c.Thresholds.Validate()
}

// selfIndex returns the roster index (= datacenter index) of the
// node's own id. Call after Validate.
func (c *Config) selfIndex() int {
	for i, p := range c.Peers {
		if p.ID == c.ID {
			return i
		}
	}
	return -1
}
