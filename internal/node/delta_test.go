package node

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"
)

// --- Wire round-trips for the delta-replication frames ----------------

func TestXferInfoRoundTrip(t *testing.T) {
	leaves := make([]uint64, aeTop)
	for i := range leaves {
		leaves[i] = uint64(i) ^ 0xA5A5
	}
	enc := appendXferInfo(nil, true, leaves, 42)
	resident, got, root, err := decodeXferInfo(enc)
	if err != nil || !resident || root != 42 || len(got) != aeTop {
		t.Fatalf("resident info round-trip: resident=%v root=%d leaves=%d err=%v", resident, root, len(got), err)
	}
	for i := range leaves {
		if got[i] != leaves[i] {
			t.Fatalf("leaf %d round-tripped to %x, want %x", i, got[i], leaves[i])
		}
	}
	resident, got, _, err = decodeXferInfo(appendXferInfo(nil, false, nil, 0))
	if err != nil || resident || got != nil {
		t.Fatalf("non-resident info round-trip: resident=%v leaves=%v err=%v", resident, got, err)
	}
	// An empty blob decodes as "no info" — old-style replies degrade to
	// a full transfer instead of erroring.
	if resident, _, _, err := decodeXferInfo(nil); err != nil || resident {
		t.Fatalf("empty info: resident=%v err=%v", resident, err)
	}
}

func TestDecodeXferInfoRejectsCorrupt(t *testing.T) {
	good := appendXferInfo(nil, true, make([]uint64, aeTop), 1)
	cases := map[string][]byte{
		"unknown flags":  {7},
		"truncated leaf": good[:len(good)-9],
		"missing root":   good[:len(good)-8],
		"trailing":       append(append([]byte{}, good...), 0),
	}
	for name, buf := range cases {
		if _, _, _, err := decodeXferInfo(buf); err == nil {
			t.Errorf("%s: corrupt transfer info accepted", name)
		}
	}
}

func TestAESubRoundTrip(t *testing.T) {
	tops := []int{0, 5, aeTop - 1}
	subs := make([][]uint64, len(tops))
	for i := range subs {
		subs[i] = make([]uint64, aeFanout)
		for j := range subs[i] {
			subs[i][j] = uint64(i*aeFanout+j) * 0x9E3779B97F4A7C15
		}
	}
	gt, gs, err := decodeAESub(appendAESub(nil, tops, subs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gt, tops) || !reflect.DeepEqual(gs, subs) {
		t.Fatalf("round trip mismatch: tops %v subs[0][0]=%x", gt, gs[0][0])
	}
	if gt, gs, err := decodeAESub(appendAESub(nil, nil, nil)); err != nil || len(gt) != 0 || len(gs) != 0 {
		t.Fatalf("empty sub request: %v %v %v", gt, gs, err)
	}
}

func TestDecodeAESubRejectsCorrupt(t *testing.T) {
	good := appendAESub(nil, []int{1}, [][]uint64{make([]uint64, aeFanout)})
	cases := map[string][]byte{
		"truncated leaves": good[:len(good)-1],
		"trailing":         append(append([]byte{}, good...), 0),
		"bucket too large": binary.AppendUvarint(binary.AppendUvarint(nil, 1), aeTop),
		"count bomb":       binary.AppendUvarint(nil, 1<<20),
	}
	for name, buf := range cases {
		if _, _, err := decodeAESub(buf); err == nil {
			t.Errorf("%s: corrupt AE sub-digest accepted", name)
		}
	}
}

func TestAEKeylistsRoundTrip(t *testing.T) {
	subIdx := []int{3, 700, aeSubCount - 1}
	lists := [][]aeKeyVer{
		{{key: "a", ver: 1}, {key: "bb", ver: 1 << 40}},
		{}, // empty list still rides: "primary has nothing here"
		{{key: "", ver: 0}},
	}
	gi, gl, err := decodeAEKeylists(appendAEKeylists(nil, subIdx, lists))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gi, subIdx) {
		t.Fatalf("sub indexes round-tripped to %v", gi)
	}
	if len(gl) != len(lists) || len(gl[0]) != 2 || len(gl[1]) != 0 || len(gl[2]) != 1 {
		t.Fatalf("lists round-tripped to %v", gl)
	}
	if gl[0][1] != (aeKeyVer{key: "bb", ver: 1 << 40}) {
		t.Fatalf("pair round-tripped to %+v", gl[0][1])
	}
}

func TestDecodeAEKeylistsRejectsCorrupt(t *testing.T) {
	good := appendAEKeylists(nil, []int{2}, [][]aeKeyVer{{{key: "k", ver: 9}}})
	cases := map[string][]byte{
		"truncated ver":  good[:len(good)-1],
		"trailing":       append(append([]byte{}, good...), 0),
		"sub too large":  binary.AppendUvarint(binary.AppendUvarint(nil, 1), aeSubCount),
		"key bomb":       {1, 2, 1, 0xFF},
		"count bomb":     binary.AppendUvarint(nil, 1<<40),
		"missing counts": {5},
	}
	for name, buf := range cases {
		if _, _, err := decodeAEKeylists(buf); err == nil {
			t.Errorf("%s: corrupt AE keylists accepted", name)
		}
	}
}

func TestAEKeysRoundTrip(t *testing.T) {
	keys := []string{"", "k", "a-much-longer-key"}
	got, err := decodeAEKeys(appendAEKeys(nil, keys))
	if err != nil || !reflect.DeepEqual(got, keys) {
		t.Fatalf("round trip: %v err=%v", got, err)
	}
	if got, err := decodeAEKeys(appendAEKeys(nil, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty key list: %v err=%v", got, err)
	}
}

func TestDecodeAEKeysRejectsCorrupt(t *testing.T) {
	good := appendAEKeys(nil, []string{"key"})
	cases := map[string][]byte{
		"truncated key": good[:len(good)-1],
		"trailing":      append(append([]byte{}, good...), 0),
		"length bomb":   {1, 0xFF},
	}
	for name, buf := range cases {
		if _, err := decodeAEKeys(buf); err == nil {
			t.Errorf("%s: corrupt AE key list accepted", name)
		}
	}
}

func TestStatsBlobDigestsRoundTrip(t *testing.T) {
	leaves := make([]uint64, aeTop)
	for i := range leaves {
		leaves[i] = uint64(i + 1)
	}
	in := &statsBlob{
		counters: []partitionCounters{{partition: 1, origin: 2}},
		claims:   []placementClaim{{partition: 1, primary: 0, replicas: []int{0, 2}}},
		digests: []aePartitionDigest{
			{partition: 1, root: 77, leaves: leaves},
			{partition: 5, root: 0, leaves: make([]uint64, aeTop)},
		},
	}
	out, err := decodeStats(appendStats(nil, in), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
	// Corrupt digest sections must be rejected, not truncated.
	good := appendStats(nil, in)
	for name, buf := range map[string][]byte{
		"truncated digest": good[:len(good)-3],
		"trailing":         append(append([]byte{}, good...), 9),
	} {
		if _, err := decodeStats(buf, 8, 3); err == nil {
			t.Errorf("%s: corrupt stats digests accepted", name)
		}
	}
}

// --- Two-level tree localization --------------------------------------

// TestAETreeSubLocalization pins the hierarchical walk the pull
// protocol depends on: a single divergent record dirties exactly one
// top-level bucket, and within it exactly one sub-bucket — the one the
// key hashes to — so reconciliation narrows 4096 sub-buckets down to
// one in two digest comparisons.
func TestAETreeSubLocalization(t *testing.T) {
	a, b := NewAETree(), NewAETree()
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k-%d", i)
		a.Apply(k, uint64(i+1), []byte("v"))
		b.Apply(k, uint64(i+1), []byte("v"))
	}
	if a.Root() != b.Root() {
		t.Fatal("identical record sets disagree at the root")
	}
	const k = "k-3"
	b.Apply(k, 4, []byte("v"))        // XOR-remove the shared record
	b.Apply(k, 99, []byte("newer"))   // replace with a divergent one
	if a.Root() == b.Root() {
		t.Fatal("divergent record sets agree at the root")
	}
	la, lb := a.Leaves(), b.Leaves()
	var tops []int
	for i := range la {
		if la[i] != lb[i] {
			tops = append(tops, i)
		}
	}
	if len(tops) != 1 || tops[0] != aeBucket(k) {
		t.Fatalf("divergent tops = %v, want exactly [%d]", tops, aeBucket(k))
	}
	sa, sb := a.SubLeaves(tops[0]), b.SubLeaves(tops[0])
	var diff []int
	for j := range sa {
		if sa[j] != sb[j] {
			diff = append(diff, j)
		}
	}
	if len(diff) != 1 || tops[0]*aeFanout+diff[0] != aeSub(k) {
		t.Fatalf("divergent subs in bucket %d = %v, want the sub %d hashes to (%d)",
			tops[0], diff, aeSub(k), aeSub(k)%aeFanout)
	}
}

// --- Delta transfer planning ------------------------------------------

// TestDeltaTransferToResidentTarget pins the tentpole: re-migrating a
// partition to a target that already holds it ships only the entries
// above the target's watermark, never the whole snapshot again — and a
// delta session does not (re)mark residency.
func TestDeltaTransferToResidentTarget(t *testing.T) {
	h := newHarness(t, "loopback", 3, transferTestConfig())
	src, dst := h.nodes[0], h.nodes[1]
	const p = 2
	entries := seedPartition(t, src, p, 8)
	dst.store.drop(p)

	if !src.TransferPartition(p, 1) {
		t.Fatal("initial full transfer did not complete")
	}
	st := src.TransferStats()
	if st.FullSessions != 1 || st.DeltaSessions != 0 {
		t.Fatalf("after full transfer: stats %+v, want one full and no delta sessions", st)
	}
	base := st.ChunksSent

	// Diverge by two fresh keys above the shipped watermark.
	fresh := []kvEntry{
		{key: "delta-a", ver: 100, val: []byte("da")},
		{key: "delta-b", ver: 101, val: []byte("db")},
	}
	if err := src.store.mergeSnapshot(p, fresh); err != nil {
		t.Fatal(err)
	}
	if !src.TransferPartition(p, 1) {
		t.Fatal("delta transfer did not complete")
	}
	st = src.TransferStats()
	if st.DeltaSessions != 1 {
		t.Fatalf("stats %+v, want exactly one delta session", st)
	}
	if got := st.ChunksSent - base; got != int64(len(fresh)) {
		t.Errorf("delta shipped %d chunks, want %d (only the fresh keys)", got, len(fresh))
	}
	if st.BytesSaved == 0 {
		t.Error("delta session saved no bytes")
	}
	if !dst.store.isResident(p) {
		t.Error("target lost residency across a delta session")
	}
	for _, e := range append(entries, fresh...) {
		if v, ver, ok := dst.store.get(p, e.key); !ok || string(v) != string(e.val) || ver != e.ver {
			t.Errorf("key %q after delta: val=%q ver=%d ok=%v, want %q/%d", e.key, v, ver, ok, e.val, e.ver)
		}
	}
}

// TestStaleWatermarkFallsBackToFull pins the soundness rule: a
// resident target whose watermark is inflated past its actual content
// (here: an empty shard claiming version 50) must still receive
// everything — the digest comparison dirties the missing entries'
// buckets, so nothing below the watermark is skipped.
func TestStaleWatermarkFallsBackToFull(t *testing.T) {
	h := newHarness(t, "loopback", 3, transferTestConfig())
	src, dst := h.nodes[0], h.nodes[1]
	const p = 3
	entries := seedPartition(t, src, p, 6)

	// The target is resident-empty (the store default) with a watermark
	// asserting coverage it does not have.
	dst.store.parts[p].maxVer = 50

	if !src.TransferPartition(p, 1) {
		t.Fatal("transfer against stale watermark did not complete")
	}
	st := src.TransferStats()
	if st.FullSessions != 1 || st.DeltaSessions != 0 {
		t.Fatalf("stats %+v, want a full session (every bucket diverges)", st)
	}
	if st.ChunksSent != int64(len(entries)) {
		t.Errorf("shipped %d chunks, want %d — the inflated watermark must not skip entries", st.ChunksSent, len(entries))
	}
	for _, e := range entries {
		if _, _, ok := dst.store.get(p, e.key); !ok {
			t.Errorf("key %q missing after stale-watermark transfer", e.key)
		}
	}
}

// TestDeltaBucketFilteredRepairsHole pins the middle plan outcome: a
// resident target missing one below-watermark key gets exactly that
// key's bucket re-shipped, not the whole partition.
func TestDeltaBucketFilteredRepairsHole(t *testing.T) {
	h := newHarness(t, "loopback", 3, transferTestConfig())
	src, dst := h.nodes[0], h.nodes[1]
	const p = 4

	// Three keys in three distinct top-level buckets.
	var keys []string
	used := map[int]bool{}
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("hole-%d", i)
		if b := aeBucket(k); !used[b] {
			used[b] = true
			keys = append(keys, k)
		}
	}
	entries := []kvEntry{
		{key: keys[0], ver: 1, val: []byte("v0")},
		{key: keys[1], ver: 2, val: []byte("v1")},
		{key: keys[2], ver: 3, val: []byte("v2")},
	}
	if err := src.store.mergeSnapshot(p, entries); err != nil {
		t.Fatal(err)
	}
	// The target holds two of the three and a watermark covering all.
	if err := dst.store.mergeSnapshot(p, entries[:2]); err != nil {
		t.Fatal(err)
	}
	dst.store.parts[p].maxVer = 3

	if !src.TransferPartition(p, 1) {
		t.Fatal("bucket-filtered transfer did not complete")
	}
	st := src.TransferStats()
	if st.DeltaSessions != 1 {
		t.Fatalf("stats %+v, want one delta session", st)
	}
	if st.ChunksSent != 1 {
		t.Errorf("shipped %d chunks, want 1 (only the hole's bucket)", st.ChunksSent)
	}
	if st.BytesSaved == 0 {
		t.Error("bucket-filtered plan saved no bytes")
	}
	for _, e := range entries {
		if _, _, ok := dst.store.get(p, e.key); !ok {
			t.Errorf("key %q missing after bucket-filtered transfer", e.key)
		}
	}
}
