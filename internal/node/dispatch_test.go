package node

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/transport"
)

// TestDispatchCoversWireKinds is the runtime half of the kindswitch
// contract: the lint proves the Handle switch and the KindNames
// registry stay in lockstep with the Kind* constants; this test proves
// the handlers behind the switch actually serve. Every node-to-node
// kind in KindNames (< 64 — control RPCs are covered by the fleet
// tests) is sent as one representative, well-formed message to a node
// holding the target partition, and must come back with a reply whose
// status is not StatusError. Adding a kind to the registry without
// extending this test's message builder fails loudly below.
func TestDispatchCoversWireKinds(t *testing.T) {
	h := newHarness(t, "loopback", 3, testConfig())
	h.tick()
	h.tick()

	const key = "dispatch-key"
	const dispatchSession = uint64(0xD15)
	p := h.nodes[0].PartitionOf(key)

	// Address the partition's primary: the one node guaranteed both
	// resident and authoritative for every kind.
	h.nodes[0].mu.RLock()
	prim := h.nodes[0].view.primary(p)
	h.nodes[0].mu.RUnlock()
	nd := h.nodes[prim]
	from := fmt.Sprintf("node%d", (prim+1)%len(h.nodes))

	// Seed the key so reads and version probes find a value.
	if resp, err := nd.Handle(from, &transport.Message{Kind: KindPut, Key: []byte(key), Value: []byte("v1")}); err != nil {
		t.Fatalf("seed put: %v", err)
	} else if resp.Status != transport.StatusOK {
		t.Fatalf("seed put: status %d", resp.Status)
	}

	var kinds []int
	for k := range KindNames {
		if k < 64 {
			kinds = append(kinds, int(k))
		}
	}
	sort.Ints(kinds)

	for _, ki := range kinds {
		kind := uint8(ki)
		var msg *transport.Message
		switch kind {
		case KindGet:
			msg = &transport.Message{Kind: kind, Key: []byte(key)}
		case KindPut:
			msg = &transport.Message{Kind: kind, Key: []byte(key), Value: []byte("v2")}
		case KindSync:
			msg = &transport.Message{Kind: kind, Partition: uint32(p), Key: []byte(key), Value: []byte("v3"), Version: 1 << 40}
		case KindStore:
			snap := appendSnapshot(nil, map[string]entry{"other-key": {val: []byte("sv"), ver: 1}})
			msg = &transport.Message{Kind: kind, Partition: uint32(p), Value: snap}
		case KindDrop:
			// The primary refuses the drop (StatusRetry) rather than
			// destroying its authoritative copy; either way the kind is
			// served, which is what this test pins.
			msg = &transport.Message{Kind: kind, Partition: uint32(p)}
		case KindStats:
			blob := appendStats(nil, &statsBlob{})
			msg = &transport.Message{Kind: kind, Origin: uint32((prim + 1) % len(h.nodes)), Epoch: nd.Epoch(), Value: blob}
		case KindPing:
			msg = &transport.Message{Kind: kind}
		case KindVer:
			msg = &transport.Message{Kind: kind, Partition: uint32(p), Key: []byte(key)}
		// The four transfer kinds arrive in protocol order (the kinds
		// iterate sorted: begin 9, chunk 10, cursor 11, done 12), so one
		// shared scripted session exercises a full 1-chunk transfer.
		case KindXferBegin:
			msg = &transport.Message{Kind: kind, Partition: uint32(p), Session: dispatchSession,
				Value: appendXferBegin(nil, 1, false)}
		case KindXferChunk:
			chunk := appendEntries(nil, []kvEntry{{key: "xfer-key", val: []byte("xv"), ver: 1}})
			msg = &transport.Message{Kind: kind, Partition: uint32(p), Session: dispatchSession,
				Cursor: 0, Value: chunk}
		case KindXferCursor:
			msg = &transport.Message{Kind: kind, Partition: uint32(p), Session: dispatchSession}
		case KindXferDone:
			msg = &transport.Message{Kind: kind, Partition: uint32(p), Session: dispatchSession}
		case KindAEDigest:
			// An empty tree's sub-digest request for top bucket 0: the
			// resident primary answers with the (key, version) lists of
			// whatever sub-buckets its seeded key dirties there.
			empty := NewAETree()
			msg = &transport.Message{Kind: kind, Partition: uint32(p), Epoch: nd.Epoch(),
				Value: appendAESub(nil, []int{0}, [][]uint64{empty.SubLeaves(0)})}
		case KindAERepair:
			rep := appendEntries(nil, []kvEntry{{key: "ae-key", val: []byte("av"), ver: 1}})
			msg = &transport.Message{Kind: kind, Partition: uint32(p), Epoch: nd.Epoch(), Value: rep}
		case KindAEFetch:
			msg = &transport.Message{Kind: kind, Partition: uint32(p), Epoch: nd.Epoch(),
				Value: appendAEKeys(nil, []string{key})}
		default:
			t.Fatalf("KindNames declares node-to-node kind %d (%s) but this test has no representative message for it; extend the switch above", kind, KindNames[kind])
		}
		resp, err := nd.Handle(from, msg)
		if err != nil {
			t.Errorf("kind %d (%s): Handle error: %v", kind, KindNames[kind], err)
			continue
		}
		if resp == nil {
			t.Errorf("kind %d (%s): nil reply", kind, KindNames[kind])
			continue
		}
		if resp.Status == transport.StatusError {
			t.Errorf("kind %d (%s): reply status StatusError", kind, KindNames[kind])
		}
	}
}
