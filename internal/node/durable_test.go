package node

import (
	"fmt"
	"testing"
)

// durableFleetConfig is testConfig over a durable data directory.
// Fsync stays off: these tests simulate process deaths, not power
// cuts, and the engine's WAL survives a Crash/Restart either way.
func durableFleetConfig(dir string) Config {
	cfg := testConfig()
	cfg.DataDir = dir
	cfg.Fsync = false
	return cfg
}

// TestDurableColdBootRecovery writes through a durable fleet, tears
// the whole cluster down, and boots a fresh fleet over the same data
// directories: every acked write must come back, served from the
// recovered stores with no network repair in between.
func TestDurableColdBootRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := durableFleetConfig(dir)

	f, err := NewFleet(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Tick(); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	for i := 0; i < 10; i++ {
		key := PartitionKey(i, cfg.Partitions)
		val := fmt.Sprintf("durable-%d", i)
		if err := f.Node(0).Put(key, []byte(val)); err != nil {
			t.Fatalf("put %q: %v", key, err)
		}
		want[key] = val
	}
	if err := f.Tick(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	f2, err := NewFleet(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	d := f2.Node(0).Dump()
	if !d.Durable {
		t.Fatal("rebooted node does not report a durable engine")
	}
	for key, val := range want {
		v, ok, err := f2.Node(0).Get(key)
		if err != nil || !ok || string(v) != val {
			t.Errorf("get %q after cold boot: %q ok=%v err=%v, want %q", key, v, ok, err, val)
		}
	}
}

// TestAckedWriteSurvivesHolderCrashRestart is the directed durability
// scenario: every holder of a written key crashes at once and stays
// down long enough for the survivors to reseed the partition as empty
// — the point where a memory store has lost the value for good (the
// contrast run pins that) — then restarts over its surviving data
// directory. The rejoin path must re-inject the recovered copy into
// the cluster and the value must be readable again.
func TestAckedWriteSurvivesHolderCrashRestart(t *testing.T) {
	cfg := durableFleetConfig(t.TempDir())
	if v, ok := runHolderCrashRestart(t, cfg); !ok || string(v) != "survives" {
		t.Fatalf("durable run: value after holder crash+restart = %q ok=%v, want %q", v, ok, "survives")
	}
	// Same schedule, memory store: the value cannot come back, which is
	// what makes the durable result above a recovery signal and not a
	// replication accident.
	if v, ok := runHolderCrashRestart(t, testConfig()); ok {
		t.Fatalf("memory run: value %q survived total holder loss — the schedule does not isolate durability", v)
	}
}

func runHolderCrashRestart(t *testing.T, cfg Config) ([]byte, bool) {
	t.Helper()
	const n = 4
	f, err := NewFleet(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		if err := f.Tick(); err != nil {
			t.Fatal(err)
		}
	}

	const p = 5
	key := PartitionKey(p, cfg.Partitions)
	holders := f.Node(0).ReplicaMap()[p]
	if len(holders) == 0 || len(holders) >= n {
		t.Fatalf("holder set %v leaves no live survivor to anchor the cluster", holders)
	}
	entry := -1
	for i := 0; i < n; i++ {
		held := false
		for _, h := range holders {
			if h == i {
				held = true
			}
		}
		if !held {
			entry = i
			break
		}
	}
	if err := f.Node(entry).Put(key, []byte("survives")); err != nil {
		t.Fatalf("put: %v", err)
	}

	for _, h := range holders {
		f.Crash(h)
	}
	// Hold the outage long enough for the survivors to suspect the
	// holders and reseed the orphaned partition — without this window
	// the restarted holders wait forever on a primary claim nobody
	// left alive can make.
	for i := 0; i < cfg.SuspectAfter+4; i++ {
		if err := f.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range holders {
		if err := f.Restart(h); err != nil {
			t.Fatalf("restart %d: %v", h, err)
		}
	}
	// Ride out view re-learning and the rejoin re-injection.
	for i := 0; i < 12; i++ {
		if err := f.Tick(); err != nil {
			t.Fatal(err)
		}
	}

	v, ok, err := f.Node(entry).Get(key)
	if err != nil {
		t.Fatalf("get after holder crash+restart: %v", err)
	}
	return v, ok
}
