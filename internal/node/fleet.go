package node

import (
	"fmt"
	"path/filepath"

	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Fleet is a multi-node loopback harness: it builds N nodes over one
// in-process transport network and drives them in lockstep epochs.
// It exists for tests, the rfhbench transport suite and the chaos
// harness — a real deployment runs one cmd/rfhnode per machine
// instead.
type Fleet struct {
	lb     *transport.Loopback
	nodes  []*Node
	addrs  []string
	dead   []bool // not participating in ticks (killed or crashed)
	killed []bool // permanently closed, cannot restart
}

// WrapTransport optionally decorates each node's transport at fleet
// construction — the chaos harness uses it to interpose a
// fault-injecting transport.FaultEndpoint between every node and the
// loopback network. The returned transport is the one the node owns
// and closes.
type WrapTransport func(i int, tr transport.Transport) transport.Transport

// NewFleet builds n nodes sharing the given base config (ID and Peers
// are overwritten; all other fields are taken as-is).
func NewFleet(n int, base Config) (*Fleet, error) {
	return NewFleetWrapped(n, base, nil)
}

// NewFleetWrapped is NewFleet with a transport decorator applied to
// every node's endpoint (nil wrap means none).
func NewFleetWrapped(n int, base Config, wrap WrapTransport) (*Fleet, error) {
	peers := make([]Peer, n)
	for i := range peers {
		peers[i] = Peer{ID: i, Addr: fmt.Sprintf("node%d", i)}
	}
	f := &Fleet{lb: transport.NewLoopback(), dead: make([]bool, n), killed: make([]bool, n)}
	for i := 0; i < n; i++ {
		cfg := base
		cfg.ID = i
		cfg.Peers = append([]Peer(nil), peers...)
		// Sequential fan-out, always: the fleet is the deterministic
		// harness (seeded tests, chaos trajectories), and the chaos
		// fault wrapper's RNG draw order is only reproducible when every
		// multi-peer step sends in strict roster order.
		cfg.Fanout = 1
		// A durable fleet gives each member its own subdirectory: the
		// base DataDir is the cluster's root, not one node's.
		if base.DataDir != "" {
			cfg.DataDir = filepath.Join(base.DataDir, fmt.Sprintf("node%d", i))
		}
		var tr transport.Transport = f.lb.Endpoint(peers[i].Addr)
		if wrap != nil {
			tr = wrap(i, tr)
		}
		nd, err := New(cfg, tr)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.nodes = append(f.nodes, nd)
		f.addrs = append(f.addrs, peers[i].Addr)
	}
	return f, nil
}

// Node returns fleet member i (nil while killed or crashed).
func (f *Fleet) Node(i int) *Node {
	if f.dead[i] {
		return nil
	}
	return f.nodes[i]
}

// Len returns the fleet size, dead members included.
func (f *Fleet) Len() int { return len(f.nodes) }

// Addr returns the loopback address of fleet member i.
func (f *Fleet) Addr(i int) string { return f.addrs[i] }

// Alive reports whether member i is participating (not killed, not
// crashed).
func (f *Fleet) Alive(i int) bool { return !f.dead[i] }

// NumAlive returns the number of participating members.
func (f *Fleet) NumAlive() int {
	n := 0
	for i := range f.dead {
		if !f.dead[i] {
			n++
		}
	}
	return n
}

// Kill takes node i down for good: its transport drops off the
// loopback network and the node closes. Peers see it as silent and
// suspect it after SuspectAfter epochs.
func (f *Fleet) Kill(i int) {
	if f.killed[i] {
		return
	}
	f.dead[i] = true
	f.killed[i] = true
	_ = f.nodes[i].Close() // also marks the endpoint down
}

// Crash simulates a process death of node i: its store and epoch
// state are lost and its endpoint goes unreachable, but the process
// slot survives — Restart revives it. Peers see exactly what Kill
// shows them: silence, then suspicion.
func (f *Fleet) Crash(i int) {
	if f.dead[i] {
		return
	}
	f.dead[i] = true
	f.nodes[i].Crash()
	f.lb.SetDown(f.addrs[i], true)
}

// Restart revives a crashed node i as a fresh empty process rejoining
// at the surviving cluster's current epoch. It fails if i was killed
// (not crashed) or if no live node exists to resume the epoch from.
func (f *Fleet) Restart(i int) error {
	if f.killed[i] {
		return fmt.Errorf("fleet: node %d was killed, not crashed", i)
	}
	if !f.dead[i] {
		return fmt.Errorf("fleet: node %d is not down", i)
	}
	epoch, ok := f.epochOfLowestLive()
	if !ok {
		return fmt.Errorf("fleet: no live node to resume the epoch from")
	}
	if err := f.nodes[i].Restart(epoch); err != nil {
		return err
	}
	f.lb.SetDown(f.addrs[i], false)
	f.dead[i] = false
	return nil
}

// epochOfLowestLive returns the lockstep epoch of the lowest-index
// live member.
func (f *Fleet) epochOfLowestLive() (uint64, bool) {
	for i, nd := range f.nodes {
		if !f.dead[i] {
			return nd.Epoch(), true
		}
	}
	return 0, false
}

// Tick runs one lockstep epoch: every live node flushes its stats,
// then every live node runs its decision step, both in roster order.
// This is the deterministic schedule the seeded tests rely on.
func (f *Fleet) Tick() error {
	for i, nd := range f.nodes {
		if f.dead[i] {
			continue
		}
		if err := nd.FlushEpoch(); err != nil {
			return fmt.Errorf("fleet: flush node %d: %w", i, err)
		}
	}
	for i, nd := range f.nodes {
		if f.dead[i] {
			continue
		}
		if err := nd.RunEpoch(); err != nil {
			return fmt.Errorf("fleet: run node %d: %w", i, err)
		}
	}
	return nil
}

// ReplayStats summarises one Replay call.
type ReplayStats struct {
	Queries int // queries issued
	Found   int // queries answered with a value
	Errors  int // queries that failed (unreachable hops, lost partitions)
}

// Replay issues one epoch's worth of a workload matrix against the
// fleet: Q[p][d] queries for partition p enter the cluster at node d,
// using the canonical PartitionKey for the partition. Dead entry nodes
// are skipped. Query errors are tallied, not fatal — mid-failure
// epochs are exactly when some routes dangle.
func (f *Fleet) Replay(m *workload.Matrix) ReplayStats {
	var st ReplayStats
	for p := 0; p < m.Partitions(); p++ {
		key := PartitionKey(p, f.nodes[0].cfg.Partitions)
		for d := 0; d < m.DCs() && d < len(f.nodes); d++ {
			if f.dead[d] {
				continue
			}
			for q := 0; q < m.Q[p][d]; q++ {
				st.Queries++
				_, ok, err := f.nodes[d].Get(key)
				switch {
				case err != nil:
					st.Errors++
				case ok:
					st.Found++
				}
			}
		}
	}
	return st
}

// Close shuts every node down.
func (f *Fleet) Close() {
	for i, nd := range f.nodes {
		if !f.dead[i] {
			_ = nd.Close()
		}
		f.dead[i] = true
	}
}

// PartitionKey returns a canonical key that hashes into partition p of
// `partitions`. It scans a deterministic key sequence, so the same
// (p, partitions) always yields the same key — tests and trace replay
// use it to target partitions by number.
func PartitionKey(p, partitions int) string {
	for i := 0; ; i++ {
		key := fmt.Sprintf("p%d-%d", p, i)
		if int(uint64(ring.HashString(key))%uint64(partitions)) == p {
			return key
		}
	}
}
