package node

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/transport"
	"repro/internal/workload"
)

// Fleet is a multi-node loopback harness: it builds N nodes over one
// in-process transport network and drives them in lockstep epochs.
// It exists for tests and for the rfhbench transport suite — a real
// deployment runs one cmd/rfhnode per machine instead.
type Fleet struct {
	lb    *transport.Loopback
	nodes []*Node
	dead  []bool
}

// NewFleet builds n nodes sharing the given base config (ID and Peers
// are overwritten; all other fields are taken as-is).
func NewFleet(n int, base Config) (*Fleet, error) {
	peers := make([]Peer, n)
	for i := range peers {
		peers[i] = Peer{ID: i, Addr: fmt.Sprintf("node%d", i)}
	}
	f := &Fleet{lb: transport.NewLoopback(), dead: make([]bool, n)}
	for i := 0; i < n; i++ {
		cfg := base
		cfg.ID = i
		cfg.Peers = append([]Peer(nil), peers...)
		nd, err := New(cfg, f.lb.Endpoint(peers[i].Addr))
		if err != nil {
			f.Close()
			return nil, err
		}
		f.nodes = append(f.nodes, nd)
	}
	return f, nil
}

// Node returns fleet member i (nil once killed).
func (f *Fleet) Node(i int) *Node {
	if f.dead[i] {
		return nil
	}
	return f.nodes[i]
}

// Len returns the fleet size, dead members included.
func (f *Fleet) Len() int { return len(f.nodes) }

// Kill takes node i down for good: its transport drops off the
// loopback network and the node closes. Peers see it as silent and
// suspect it after SuspectAfter epochs.
func (f *Fleet) Kill(i int) {
	if f.dead[i] {
		return
	}
	f.dead[i] = true
	_ = f.nodes[i].Close() // also marks the endpoint down
}

// Tick runs one lockstep epoch: every live node flushes its stats,
// then every live node runs its decision step, both in roster order.
// This is the deterministic schedule the seeded tests rely on.
func (f *Fleet) Tick() error {
	for i, nd := range f.nodes {
		if f.dead[i] {
			continue
		}
		if err := nd.FlushEpoch(); err != nil {
			return fmt.Errorf("fleet: flush node %d: %w", i, err)
		}
	}
	for i, nd := range f.nodes {
		if f.dead[i] {
			continue
		}
		if err := nd.RunEpoch(); err != nil {
			return fmt.Errorf("fleet: run node %d: %w", i, err)
		}
	}
	return nil
}

// ReplayStats summarises one Replay call.
type ReplayStats struct {
	Queries int // queries issued
	Found   int // queries answered with a value
	Errors  int // queries that failed (unreachable hops, lost partitions)
}

// Replay issues one epoch's worth of a workload matrix against the
// fleet: Q[p][d] queries for partition p enter the cluster at node d,
// using the canonical PartitionKey for the partition. Dead entry nodes
// are skipped. Query errors are tallied, not fatal — mid-failure
// epochs are exactly when some routes dangle.
func (f *Fleet) Replay(m *workload.Matrix) ReplayStats {
	var st ReplayStats
	for p := 0; p < m.Partitions(); p++ {
		key := PartitionKey(p, f.nodes[0].cfg.Partitions)
		for d := 0; d < m.DCs() && d < len(f.nodes); d++ {
			if f.dead[d] {
				continue
			}
			for q := 0; q < m.Q[p][d]; q++ {
				st.Queries++
				_, ok, err := f.nodes[d].Get(key)
				switch {
				case err != nil:
					st.Errors++
				case ok:
					st.Found++
				}
			}
		}
	}
	return st
}

// Close shuts every node down.
func (f *Fleet) Close() {
	for i, nd := range f.nodes {
		if !f.dead[i] {
			_ = nd.Close()
		}
		f.dead[i] = true
	}
}

// PartitionKey returns a canonical key that hashes into partition p of
// `partitions`. It scans a deterministic key sequence, so the same
// (p, partitions) always yields the same key — tests and trace replay
// use it to target partitions by number.
func PartitionKey(p, partitions int) string {
	for i := 0; ; i++ {
		key := fmt.Sprintf("p%d-%d", p, i)
		if int(uint64(ring.HashString(key))%uint64(partitions)) == p {
			return key
		}
	}
}
