package node

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/transport"
	"repro/internal/workload"
)

func fleetZipf(t *testing.T, base Config, n int) workload.Generator {
	t.Helper()
	gen, err := workload.NewZipfPartitions(workload.Config{
		Partitions: base.Partitions, DCs: n, Lambda: 5, Seed: 11,
	}, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// statsMsg encodes a KindStats broadcast from roster index `from` at
// the given epoch carrying the given blob.
func statsMsg(from int, epoch uint64, blob *statsBlob) *transport.Message {
	return &transport.Message{
		Kind: KindStats, Origin: uint32(from), Epoch: epoch,
		Value: appendStats(nil, blob),
	}
}

// TestStaleEpochStatsIgnored asserts the stats handler's epoch window:
// broadcasts for the current epoch land in pending, one epoch ahead in
// nextPend, and anything older (or further ahead) is discarded — a
// node that slept through a partition must not have its stale counters
// or placement claims folded into a later epoch.
func TestStaleEpochStatsIgnored(t *testing.T) {
	h := newHarness(t, "loopback", 3, testConfig())
	gen := h.zipf(testConfig())
	for e := 0; e < 3; e++ {
		h.replay(gen.Epoch(e))
		h.tick()
	}
	nd := h.nodes[0]
	epoch := nd.Epoch()
	blob := &statsBlob{counters: []partitionCounters{{partition: 1, origin: 9}}}

	cases := []struct {
		name   string
		epoch  uint64
		landed func() *statsBlob
	}{
		{"stale", epoch - 1, func() *statsBlob { return nil }},
		{"ancient", 0, func() *statsBlob { return nil }},
		{"far future", epoch + 2, func() *statsBlob { return nil }},
		{"current", epoch, func() *statsBlob { return nd.pending[1] }},
		{"next", epoch + 1, func() *statsBlob { return nd.nextPend[1] }},
	}
	for _, tc := range cases {
		nd.mu.Lock()
		nd.pending[1], nd.nextPend[1] = nil, nil
		nd.mu.Unlock()
		if _, err := nd.Handle("node1", statsMsg(1, tc.epoch, blob)); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		nd.mu.Lock()
		got, pend, next := tc.landed(), nd.pending[1], nd.nextPend[1]
		nd.mu.Unlock()
		if got == nil && (pend != nil || next != nil) {
			t.Errorf("%s: epoch %d (node at %d) was accepted", tc.name, tc.epoch, epoch)
		}
		if got != nil && len(got.counters) != 1 {
			t.Errorf("%s: accepted blob mangled: %+v", tc.name, got)
		}
	}
}

// TestStaleClaimDoesNotMoveReplicas injects a stale-epoch stats
// broadcast whose placement claim would hand partition ownership to
// the sender, then ticks: the claim must not change the receiver's
// view (the epoch window already discarded it).
func TestStaleClaimDoesNotMoveReplicas(t *testing.T) {
	base := testConfig()
	h := newHarness(t, "loopback", 3, base)
	gen := h.zipf(base)
	for e := 0; e < 3; e++ {
		h.replay(gen.Epoch(e))
		h.tick()
	}
	nd := h.nodes[0]
	before := nd.ReplicaMap()

	// Pick a partition node 1 does not primary and forge a stale claim
	// asserting node 1 as its sole holder.
	victim := -1
	for p, prim := range nd.Primaries() {
		if prim != 1 {
			victim = p
			break
		}
	}
	if victim < 0 {
		t.Fatal("node 1 primaries everything; widen the config")
	}
	forged := &statsBlob{claims: []placementClaim{{partition: victim, primary: 1, replicas: []int{1}}}}
	if _, err := nd.Handle("node1", statsMsg(1, nd.Epoch()-1, forged)); err != nil {
		t.Fatal(err)
	}
	h.replay(gen.Epoch(3))
	h.tick()
	after := nd.ReplicaMap()
	if !reflect.DeepEqual(before[victim], after[victim]) {
		t.Errorf("stale claim moved partition %d: %v -> %v", victim, before[victim], after[victim])
	}
	h.assertViewsAgree()
}

// TestReplayedStoreIsIdempotent delivers the same KindStore snapshot
// transfer twice and asserts the second application changes nothing:
// same keys, same values, and no traffic counters charged — a
// duplicated transfer on a flaky network must not double-count
// anything.
func TestReplayedStoreIsIdempotent(t *testing.T) {
	h := newHarness(t, "loopback", 3, testConfig())
	nd := h.nodes[0]
	const p = 4
	snap := map[string]entry{"a": {val: []byte("1"), ver: 3}, "b": {val: []byte("2"), ver: 4}}
	msg := &transport.Message{Kind: KindStore, Partition: p, Value: appendSnapshot(nil, snap)}

	apply := func() (int, []byte) {
		t.Helper()
		resp, err := nd.Handle("node1", msg)
		if err != nil || resp.Status != transport.StatusOK {
			t.Fatalf("store transfer failed: resp=%+v err=%v", resp, err)
		}
		va, _, _ := nd.store.get(p, "a")
		return nd.store.keys(p), append([]byte(nil), va...)
	}
	k1, v1 := apply()
	k2, v2 := apply()
	if k1 != 2 || k2 != 2 || string(v1) != "1" || string(v2) != "1" {
		t.Errorf("replayed KindStore not idempotent: keys %d/%d values %q/%q", k1, k2, v1, v2)
	}
	nd.mu.Lock()
	flushed := nd.store.flushCounters()
	nd.mu.Unlock()
	if len(flushed) != 0 {
		t.Errorf("snapshot transfer charged traffic counters: %+v", flushed)
	}
}

// TestReplayedStoreDoesNotRollBack delivers a snapshot, applies a
// newer versioned sync on top, then replays the original snapshot: the
// delayed duplicate must not roll the key back to the older version.
func TestReplayedStoreDoesNotRollBack(t *testing.T) {
	h := newHarness(t, "loopback", 3, testConfig())
	nd := h.nodes[0]
	const p = 4
	snap := appendSnapshot(nil, map[string]entry{"a": {val: []byte("old"), ver: 3}})
	if _, err := nd.Handle("node1", &transport.Message{Kind: KindStore, Partition: p, Value: snap}); err != nil {
		t.Fatal(err)
	}
	if !nd.store.applySync(p, "a", []byte("new"), 9) {
		t.Fatal("sync refused on a resident partition")
	}
	if _, err := nd.Handle("node1", &transport.Message{Kind: KindStore, Partition: p, Value: snap}); err != nil {
		t.Fatal(err)
	}
	v, ver, _ := nd.store.get(p, "a")
	if string(v) != "new" || ver != 9 {
		t.Errorf("replayed snapshot rolled key back: got (%q, %d), want (\"new\", 9)", v, ver)
	}
}

// TestStaleSyncAfterDropDoesNotResurrect pins the drop/sync race: a
// KindSync delayed across the epoch in which the same partition was
// dropped here must not resurrect records in the now non-resident
// partition — its content is someone else's responsibility until a
// snapshot makes it authoritative again. The refusal must also be
// visible to the sender (StatusRetry), so a quorum write never counts
// a non-resident holder as durable.
func TestStaleSyncAfterDropDoesNotResurrect(t *testing.T) {
	base := testConfig()
	h := newHarness(t, "loopback", 3, base)
	gen := h.zipf(base)
	for e := 0; e < 3; e++ {
		h.replay(gen.Epoch(e))
		h.tick()
	}
	// Find a node that holds some partition without leading it — the
	// only shape a legitimate drop targets.
	var nd *Node
	p := -1
	for _, cand := range h.nodes {
		for q := 0; q < base.Partitions; q++ {
			cand.mu.RLock()
			holds := cand.view.hasReplica(q, cand.self)
			prim := cand.view.primary(q)
			cand.mu.RUnlock()
			if holds && prim != cand.self {
				nd, p = cand, q
				break
			}
		}
		if nd != nil {
			break
		}
	}
	if nd == nil {
		t.Fatal("no non-primary holder found; widen the config")
	}
	key := PartitionKey(p, base.Partitions)
	if !nd.store.applySync(p, key, []byte("live"), 5) {
		t.Fatal("seed sync refused")
	}
	if _, err := nd.Handle("peer", &transport.Message{Kind: KindDrop, Partition: uint32(p)}); err != nil {
		t.Fatal(err)
	}
	resp, err := nd.Handle("peer", &transport.Message{
		Kind: KindSync, Partition: uint32(p), Version: 6, Key: []byte(key), Value: []byte("ghost"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != transport.StatusRetry {
		t.Errorf("stale sync on dropped partition answered status %d, want StatusRetry", resp.Status)
	}
	if v, _, ok := nd.store.get(p, key); ok {
		t.Errorf("stale sync resurrected dropped partition %d: key %q = %q", p, key, v)
	}
}

// TestReplayedClaimIsIdempotent applies the same placement claim twice
// in one epoch window and asserts the holder set neither grows nor
// accumulates duplicates.
func TestReplayedClaimIsIdempotent(t *testing.T) {
	base := testConfig()
	h := newHarness(t, "loopback", 3, base)
	gen := h.zipf(base)
	for e := 0; e < 3; e++ {
		h.replay(gen.Epoch(e))
		h.tick()
	}
	nd := h.nodes[0]
	// Replay node 1's genuine current claims twice on top of the live
	// exchange: FlushEpoch already delivered them once, these add two
	// more applications of the same statement.
	h.nodes[1].mu.Lock()
	var claims []placementClaim
	for p := 0; p < base.Partitions; p++ {
		if h.nodes[1].view.primary(p) != 1 {
			continue
		}
		cl := placementClaim{partition: p, primary: 1}
		for _, s := range h.nodes[1].view.cluster.ReplicaServers(p) {
			cl.replicas = append(cl.replicas, int(s))
		}
		claims = append(claims, cl)
	}
	h.nodes[1].mu.Unlock()
	if len(claims) == 0 {
		t.Skip("node 1 primaries nothing at this seed")
	}
	before := nd.ReplicaMap()
	for i := 0; i < 2; i++ {
		nd.mu.Lock()
		for j := range claims {
			nd.applyClaimLocked(&claims[j])
		}
		nd.mu.Unlock()
	}
	after := nd.ReplicaMap()
	if !reflect.DeepEqual(before, after) {
		t.Errorf("double-applied claims changed the view: %v -> %v", before, after)
	}
	for p, replicas := range after {
		seen := make(map[int]bool)
		for _, s := range replicas {
			if seen[s] {
				t.Errorf("partition %d lists holder %d twice", p, s)
			}
			seen[s] = true
		}
	}
}

// TestCrashedNodeRefusesOperations pins the crash-window API contract:
// every operation fails with ErrCrashed (not ErrClosed) until Restart.
func TestCrashedNodeRefusesOperations(t *testing.T) {
	f, err := NewFleet(3, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Tick(); err != nil {
		t.Fatal(err)
	}
	f.Crash(1)
	nd := f.nodes[1]
	if !nd.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	if _, _, err := nd.Get("k"); !errors.Is(err, ErrCrashed) {
		t.Errorf("Get on crashed node: %v", err)
	}
	if err := nd.Put("k", []byte("v")); !errors.Is(err, ErrCrashed) {
		t.Errorf("Put on crashed node: %v", err)
	}
	if err := nd.FlushEpoch(); !errors.Is(err, ErrCrashed) {
		t.Errorf("FlushEpoch on crashed node: %v", err)
	}
	if err := nd.RunEpoch(); !errors.Is(err, ErrCrashed) {
		t.Errorf("RunEpoch on crashed node: %v", err)
	}
	if _, err := nd.Handle("node0", &transport.Message{Kind: KindPing}); !errors.Is(err, ErrCrashed) {
		t.Errorf("Handle on crashed node: %v", err)
	}
	if _, ok := nd.LocalGet("k"); ok {
		t.Error("LocalGet returned data from a crashed store")
	}
	// Restart of a live node must be refused.
	if err := f.nodes[0].Restart(0); err == nil {
		t.Error("Restart of a non-crashed node succeeded")
	}
}

// TestCrashAndRestartRejoins extends the kill-one-node scenario to a
// full crash/restart cycle: the victim loses its store and placement
// view, the survivors re-replicate around it, and the rejoining node
// must re-learn the placement from its peers' claims and re-acquire
// partitions — without ever pushing a partition's holder count above
// the live-node ceiling and without asserting its pre-crash view.
func TestCrashAndRestartRejoins(t *testing.T) {
	base := testConfig()
	f, err := NewFleet(3, base)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gen := fleetZipf(t, base, 3)

	tick := func(e int) {
		t.Helper()
		f.Replay(gen.Epoch(e))
		if err := f.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 5; e++ {
		tick(e)
	}
	const victim = 2
	key := PartitionKey(0, base.Partitions)
	if err := f.Node(0).Put(key, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	f.Crash(victim)
	if f.Node(victim) != nil || f.NumAlive() != 2 {
		t.Fatal("crashed node still listed alive")
	}
	// Survivors suspect the victim and restore the availability bound.
	for e := 5; e < 5+base.SuspectAfter+3; e++ {
		tick(e)
	}
	if err := f.Restart(victim); err != nil {
		t.Fatal(err)
	}
	//lint:ignore rfhlint/closecheck Node borrows the fleet's slot; f.Close owns shutdown
	nd := f.Node(victim)
	if nd == nil || !nd.Recovering() {
		t.Fatal("restarted node not in recovering state")
	}
	// The fresh process rejoined with an empty store and an empty view.
	if _, ok := nd.LocalGet(key); ok {
		t.Error("restarted node kept pre-crash data")
	}
	for p := 0; p < base.Partitions; p++ {
		if nd.ReplicaCount(p) != 0 {
			t.Fatalf("restarted node's view has placement before any claims (partition %d)", p)
		}
	}
	// Re-learning the placement takes one claim exchange; full
	// re-acquisition a few policy epochs more. The ceiling invariant
	// must hold at every step.
	ceiling := len(f.nodes)
	for e := 10; e < 20; e++ {
		tick(e)
		for p := 0; p < base.Partitions; p++ {
			if got := f.Node(0).ReplicaCount(p); got > ceiling {
				t.Fatalf("epoch %d: partition %d has %d holders, ceiling %d", e, p, got, ceiling)
			}
		}
	}
	if nd.Recovering() {
		t.Fatal("node still recovering after 10 post-restart epochs")
	}
	// The rejoined node re-acquired real placements and the fleet's
	// views agree again.
	holds := 0
	for p := 0; p < base.Partitions; p++ {
		if got := nd.ReplicaCount(p); got < nd.MinReplicas() {
			t.Errorf("partition %d has %d replicas after rejoin, want >= %d", p, got, nd.MinReplicas())
		}
		refMap := f.Node(0).ReplicaMap()
		for _, s := range refMap[p] {
			if s == victim {
				holds++
				break
			}
		}
	}
	if holds == 0 {
		t.Error("rejoined node never re-acquired a partition")
	}
	if !reflect.DeepEqual(f.Node(0).ReplicaMap(), nd.ReplicaMap()) {
		t.Errorf("views diverge after rejoin:\n node0: %v\n node%d: %v",
			f.Node(0).ReplicaMap(), victim, nd.ReplicaMap())
	}
	if !reflect.DeepEqual(f.Node(0).Primaries(), nd.Primaries()) {
		t.Errorf("primaries diverge after rejoin")
	}
	// The pre-crash acked write is still served by the survivors.
	if v, ok, err := f.Node(0).Get(key); err != nil || !ok || string(v) != "survives" {
		t.Errorf("acked write lost across crash/restart: v=%q ok=%v err=%v", v, ok, err)
	}
}
