// Package node implements the live cluster runtime: a daemon that
// serves an in-memory partitioned KV store over a transport.Transport
// and runs the paper's epoch-driven replication loop against real
// peers. The simulation substrates are reused unchanged — the ring
// (§II-B) places partitions, network.Router forwards queries along the
// same paths the simulator models, traffic.Tracker smooths the
// observed demand per eqs. (10)–(11), and the very same policy.Policy
// implementations decide replicate/migrate/suicide each epoch.
//
// Determinism: every node derives an identical cluster model (the
// "view") from the shared Config, exchanges per-epoch traffic stats
// with its peers, and runs the global policy locally. Because all
// nodes fold the same stats into the same tracker state and draw from
// the same per-epoch RNG stream, they compute identical decisions;
// each action is applied to every view, while the data movement itself
// is carried out by the involved nodes over the transport. Epochs are
// purely logical (two-phase FlushEpoch/RunEpoch ticks), so a seeded
// run over the loopback transport is bit-reproducible.
package node

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/policy"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/transport"
	"repro/internal/workload"
)

// ErrClosed is returned by operations on a closed node.
var ErrClosed = errors.New("node: closed")

// ErrCrashed is returned by operations on a crashed node (Crash was
// called and Restart has not yet revived it).
var ErrCrashed = errors.New("node: crashed")

// ErrNotFlushed is returned by RunEpoch when FlushEpoch has not been
// called for the epoch in flight.
var ErrNotFlushed = errors.New("node: epoch not flushed")

// DecisionCounts tallies the replication actions a node has applied to
// its view since start. All nodes of a healthy cluster apply the same
// decisions, so equal seeds must yield equal counts on every node —
// the determinism tests assert exactly that.
type DecisionCounts struct {
	Repl    int
	Migr    int
	Suicide int
}

// Node is one member of a live RFH cluster. Create with New, drive
// epochs with FlushEpoch/RunEpoch (or let cmd/rfhnode's ticker do it),
// and Close when done. All methods are safe for concurrent use.
//
// Locking splits the data plane from the control plane: n.mu is a
// RWMutex whose read side guards the view pointers the request paths
// consult (Get/Put/Sync/Store/Drop take RLock, then the touched
// partition's own shard lock inside store), while the write side is
// reserved for the epoch machinery and lifecycle transitions
// (FlushEpoch, RunEpoch, Crash, Restart, handleStats). Concurrent
// reads and writes for different partitions therefore never serialise
// against each other, and contend with an epoch tick only for the
// tick's own duration. Lock hierarchy: n.mu before any store shard
// lock; no lock is ever held across a transport Send.
type Node struct {
	cfg  Config
	self int // roster index == DCID == ServerID
	pol  policy.Policy
	tr   transport.Transport

	mu       sync.RWMutex
	view     *view
	store    *store
	tracker  *traffic.Tracker
	rng      *stats.RNG
	epoch    uint64
	missed   []int  // consecutive epochs without stats from peer i
	suspect  []bool // peer i currently presumed failed
	orphaned []int  // consecutive epochs without any claim for partition p
	pending  []*statsBlob
	nextPend []*statsBlob // stats that arrived one epoch ahead
	counts   DecisionCounts
	closed   bool

	// crashed marks a simulated process death: all operations fail
	// until Restart. recovering marks the post-restart window in which
	// the node has rejoined with an empty view and must not trust its
	// own placement: it serves no data, emits no claims, runs no policy
	// decisions and reseeds nothing until every partition has been
	// re-learned from the live primaries' claims.
	crashed    bool
	recovering bool

	// syncFails counts replica syncs this primary could not land (send
	// failed, or the holder refused and the snapshot fallback failed
	// too). Atomic because the fan-out runs outside n.mu. Every failure
	// is a holder missing an acked write until repair catches it —
	// surfaced in DumpInfo so operators see silent replication decay.
	syncFails atomic.Int64

	// eng is the durable storage engine backing the store when
	// cfg.DataDir is set (nil in memory mode). Crash closes it and
	// Restart reopens the same directory, recovering the data a real
	// process restart would find on disk.
	eng *durable.Engine

	// Outbound chunked transfer sessions (see transfer.go). xmu is a
	// leaf lock under n.mu; never held across a send. xgen is the
	// durable engine's boot generation, folded into session ids so a
	// restarted process never re-issues one (0 in memory mode); it is
	// written only under n.mu in write mode (New/Restart) and read with
	// n.mu held in either mode.
	xmu    sync.Mutex
	xfers  []*xferSession
	xgen   uint64
	xseq   uint64
	xstats TransferStats

	// Anti-entropy counters (see ae.go). Atomic for the same reason as
	// syncFails: the digest exchange fans out outside n.mu.
	aeRoundsN   atomic.Int64
	aeSyncedN   atomic.Int64
	aeRepairsN  atomic.Int64
	aeHealedN   atomic.Int64
	aePayloadN  atomic.Int64
}

// outOp is one data-movement message to perform after the view update,
// outside the node lock (the loopback transport delivers synchronously
// on the caller's goroutine, so sending under the lock could deadlock
// two nodes against each other).
type outOp struct {
	peer int
	msg  *transport.Message
}

// New builds a node over the given transport and installs its message
// handler. The node owns the transport and closes it.
func New(cfg Config, tr transport.Transport) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	v, err := newView(&cfg, true)
	if err != nil {
		return nil, err
	}
	pol, err := newPolicy(cfg.PolicyName)
	if err != nil {
		return nil, err
	}
	tk, err := traffic.NewTracker(cfg.Partitions, len(cfg.Peers), cfg.Thresholds)
	if err != nil {
		return nil, err
	}
	st := newStore(cfg.Partitions)
	var eng *durable.Engine
	if cfg.DataDir != "" {
		eng, err = durable.Open(durable.Options{
			Dir:          cfg.DataDir,
			Partitions:   cfg.Partitions,
			Sync:         syncerFor(&cfg),
			CompactEvery: cfg.WALCompactEvery,
		})
		if err != nil {
			return nil, err
		}
		// First boot trusts the recovered residency: a fresh directory is
		// the authoritative-empty birth state, a reused one is whatever
		// this node durably was when it last ran.
		st = newDurableStore(cfg.Partitions, eng, true)
	}
	n := &Node{
		cfg:      cfg,
		self:     cfg.selfIndex(),
		pol:      pol,
		tr:       tr,
		view:     v,
		store:    st,
		eng:      eng,
		tracker:  tk,
		rng:      stats.NewRNG(cfg.Seed ^ 0x90DE),
		missed:   make([]int, len(cfg.Peers)),
		suspect:  make([]bool, len(cfg.Peers)),
		orphaned: make([]int, cfg.Partitions),
		pending:  make([]*statsBlob, len(cfg.Peers)),
		nextPend: make([]*statsBlob, len(cfg.Peers)),
	}
	if eng != nil {
		n.xgen = eng.Generation()
	}
	tr.SetHandler(n.Handle)
	return n, nil
}

// syncerFor maps the config's fsync switch to the engine's Syncer.
func syncerFor(cfg *Config) durable.Syncer {
	if cfg.Fsync {
		return durable.OSSync{}
	}
	return durable.NoSync{}
}

// durableErrLocked surfaces the engine's sticky failure for error
// messages. Callers hold n.mu in either mode.
func (n *Node) durableErrLocked() error {
	if n.eng != nil {
		if err := n.eng.Err(); err != nil {
			return err
		}
	}
	return errors.New("durable engine refused the append")
}

// newPolicy maps a config name to a fresh policy instance (policies
// may be stateful, so each node needs its own).
func newPolicy(name string) (policy.Policy, error) {
	switch name {
	case "", "rfh":
		return core.NewRFH(), nil
	case "random":
		return policy.NewRandom(), nil
	case "owner":
		return policy.NewOwnerOriented(), nil
	case "request":
		return policy.NewRequestOriented(0.2), nil
	case "ead":
		return policy.NewEAD(0), nil
	default:
		return nil, fmt.Errorf("node: unknown policy %q (want rfh, random, owner, request or ead)", name)
	}
}

// Self returns the node's roster index (== datacenter == server id).
func (n *Node) Self() int { return n.self }

// ID returns the node's configured id.
func (n *Node) ID() int { return n.cfg.ID }

// Epoch returns the number of completed epochs.
func (n *Node) Epoch() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.epoch
}

// MinReplicas returns the eq. (14) availability lower limit in force.
func (n *Node) MinReplicas() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.view.minReplicas
}

// DecisionCounts returns the cumulative decision tally.
func (n *Node) DecisionCounts() DecisionCounts {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.counts
}

// SyncFails returns the cumulative count of replica syncs this node,
// as a primary, failed to land on a holder (send failed, or the holder
// refused and the snapshot fallback failed too).
func (n *Node) SyncFails() int64 { return n.syncFails.Load() }

// PartitionOf maps a key to its partition: the key's ring hash modulo
// the partition count.
func (n *Node) PartitionOf(key string) int {
	return int(uint64(ring.HashString(key)) % uint64(n.cfg.Partitions))
}

// Crash simulates a process death: the in-memory store and all epoch
// state are lost and every operation fails with ErrCrashed until
// Restart. A durable node's engine is closed mid-flight — whatever the
// WAL holds is what a Restart in the same data dir will recover. The
// transport is left open — making the endpoint unreachable (so peers
// see silence, not errors) is the harness's business, e.g. Fleet.Crash
// or transport partitioning.
func (n *Node) Crash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.crashed {
		return
	}
	n.crashed = true
	n.clearTransfersLocked()
	if n.eng != nil {
		_ = n.eng.Close() // simulated power-off: close errors are part of the crash
		n.eng = nil
	}
	n.store = newBlankStore(n.cfg.Partitions)
	for i := range n.pending {
		n.pending[i] = nil
		n.nextPend[i] = nil
	}
}

// Restart revives a crashed node as a fresh process rejoining at the
// given cluster epoch: empty store, empty placement view, fresh
// tracker and suspicion state. The node comes back in recovering mode
// — it broadcasts stats (so peers unsuspect it) but serves no data,
// emits no placement claims and runs no policy decisions until the
// live primaries' claims have re-populated its view for every
// partition; only then does it participate fully again. Rejoining with
// an empty view instead of the seed placement is what keeps a
// long-dead node from asserting a stale world on its peers.
func (n *Node) Restart(epoch uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	if !n.crashed {
		return fmt.Errorf("node %d: restart of a node that did not crash", n.cfg.ID)
	}
	v, err := newView(&n.cfg, false)
	if err != nil {
		return err
	}
	tk, err := traffic.NewTracker(n.cfg.Partitions, len(n.cfg.Peers), n.cfg.Thresholds)
	if err != nil {
		return err
	}
	st := newBlankStore(n.cfg.Partitions)
	if n.cfg.DataDir != "" {
		eng, err := durable.Open(durable.Options{
			Dir:          n.cfg.DataDir,
			Partitions:   n.cfg.Partitions,
			Sync:         syncerFor(&n.cfg),
			CompactEvery: n.cfg.WALCompactEvery,
		})
		if err != nil {
			return fmt.Errorf("node %d: restart recovery: %w", n.cfg.ID, err)
		}
		// The cluster moved on while this node was dead, so the recovered
		// content must not be served as authoritative (trustResident =
		// false, every partition rejoins non-resident exactly like a
		// blank store) — but it is NOT discarded: once the view is
		// re-learned, the rejoin path pushes it back to the current
		// primaries, which is what makes acked writes survive the crash
		// of their whole holder set.
		st = newDurableStore(n.cfg.Partitions, eng, false)
		n.eng = eng
		// Fresh boot generation: outbound session ids issued after this
		// restart can never collide with ids the pre-crash boot used,
		// which targets may durably remember as already complete.
		n.xgen = eng.Generation()
	}
	n.view = v
	n.store = st
	n.tracker = tk
	n.epoch = epoch
	n.counts = DecisionCounts{}
	for i := range n.cfg.Peers {
		n.missed[i] = 0
		n.suspect[i] = false
		n.pending[i] = nil
		n.nextPend[i] = nil
	}
	for p := range n.orphaned {
		n.orphaned[p] = 0
	}
	n.crashed = false
	n.recovering = true
	n.syncFails.Store(0)
	return nil
}

// Crashed reports whether the node is currently crashed.
func (n *Node) Crashed() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.crashed
}

// Recovering reports whether the node is in the post-restart window
// where its view is still being re-learned from peer claims.
func (n *Node) Recovering() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.recovering
}

// Close shuts the node down and closes its transport and durable
// engine.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	eng := n.eng
	n.eng = nil
	n.mu.Unlock()
	var engErr error
	if eng != nil {
		engErr = eng.Close()
	}
	if err := n.tr.Close(); err != nil {
		return err
	}
	return engErr
}

// peerAddr returns the transport address of roster index i.
func (n *Node) peerAddr(i int) string { return n.cfg.Peers[i].Addr }

// Handle is the transport handler: it dispatches one inbound message.
// It is exported so callers wiring their own transports (and the
// closecheck testdata) can reference it, but normally the constructor
// installs it.
func (n *Node) Handle(from string, req *transport.Message) (*transport.Message, error) {
	// A crashed process answers nothing. The transport layer normally
	// makes a crashed node unreachable too; this guard covers wrappers
	// and direct calls that bypass it.
	if n.Crashed() {
		return nil, ErrCrashed
	}
	// The exhaustive annotation makes adding a Kind* constant without a
	// dispatch case a lint failure, default clause notwithstanding.
	//lint:exhaustive
	switch req.Kind {
	case KindGet:
		return n.handleGet(req)
	case KindPut:
		return n.handlePut(req)
	case KindSync:
		return n.handleSync(req)
	case KindVer:
		return n.handleVer(req)
	case KindStore:
		return n.handleStore(req)
	case KindXferBegin:
		return n.handleXferBegin(req)
	case KindXferChunk:
		return n.handleXferChunk(req)
	case KindXferCursor:
		return n.handleXferCursor(req)
	case KindXferDone:
		return n.handleXferDone(req)
	case KindAEDigest:
		return n.handleAEDigest(req)
	case KindAERepair:
		return n.handleAERepair(req)
	case KindAEFetch:
		return n.handleAEFetch(req)
	case KindDrop:
		return n.handleDrop(req)
	case KindStats:
		return n.handleStats(req)
	case KindPing:
		return &transport.Message{Kind: KindPing}, nil
	case KindEpochFlush:
		if err := n.FlushEpoch(); err != nil {
			return nil, err
		}
		return &transport.Message{Kind: KindEpochFlush, Epoch: n.Epoch()}, nil
	case KindEpochRun:
		if err := n.RunEpoch(); err != nil {
			return nil, err
		}
		return &transport.Message{Kind: KindEpochRun, Epoch: n.Epoch()}, nil
	case KindDump:
		return n.handleDump()
	default:
		return nil, fmt.Errorf("node %d: unknown message kind %d", n.cfg.ID, req.Kind)
	}
}

// checkPartition validates a wire partition index.
func (n *Node) checkPartition(p uint32) (int, error) {
	if int(p) >= n.cfg.Partitions {
		return 0, fmt.Errorf("node %d: partition %d out of range", n.cfg.ID, p)
	}
	return int(p), nil
}

// --- Query path -----------------------------------------------------

// Get looks a key up, entering the query into the cluster at this
// node. The query is served by the first node along the routing path
// that holds a replica with capacity to spare (every other hop records
// transit traffic — exactly the per-DC arrival signal the policies
// feed on). With ReadQuorum > 1 the serving node coordinates a quorum
// read: it probes other holders for their stored versions, answers
// with the highest version any quorum member holds, and read-repairs
// the stale copies it observed.
func (n *Node) Get(key string) ([]byte, bool, error) {
	v, _, ok, err := n.routeGet(n.PartitionOf(key), key, n.self, 0)
	return v, ok, err
}

// GetVersioned is Get exposing the winning copy's version stamp (0 for
// not-found or unversioned data) — history recorders need the version
// to reason about session guarantees, not just the bytes.
func (n *Node) GetVersioned(key string) ([]byte, uint64, bool, error) {
	v, ver, ok, err := n.routeGet(n.PartitionOf(key), key, n.self, 0)
	return v, ver, ok, err
}

// routeGet handles one query arrival at this node (origin is the
// roster index where it entered, hops the forwards so far). The
// returned version is the winning copy's stamp (0 for not-found or
// unversioned data).
func (n *Node) routeGet(p int, key string, origin, hops int) ([]byte, uint64, bool, error) {
	if hops > len(n.cfg.Peers) {
		return nil, 0, false, fmt.Errorf("node %d: routing loop for partition %d (%d hops)", n.cfg.ID, p, hops)
	}
	n.mu.RLock()
	if n.closed || n.crashed {
		err := ErrClosed
		if n.crashed {
			err = ErrCrashed
		}
		n.mu.RUnlock()
		return nil, 0, false, err
	}
	primary := n.view.primary(p)
	// A replica under its per-epoch capacity serves; the primary
	// always serves but counts the excess as overflow — the live path
	// never refuses a query, it records the pressure signal behind
	// eq. (12) instead. A non-resident replica (drop order applied but
	// the peer views' claims have not caught up, or snapshot still in
	// flight) forwards to the primary instead of serving content it no
	// longer vouches for. The arrival accounting, capacity check and
	// lookup happen atomically under the partition's shard lock.
	v, ver, ok, served := n.store.arriveAndTryServe(p, key, hops == 0,
		n.cfg.ReplicaCapacity, primary == n.self, n.view.hasReplica(p, n.self))
	if served {
		r := n.cfg.ReadQuorum
		if r <= 1 {
			n.mu.RUnlock()
			return v, ver, ok, nil
		}
		targets := n.readTargetsLocked(p, primary)
		n.mu.RUnlock()
		return n.quorumRead(p, key, v, ver, ok, targets, r)
	}
	if primary < 0 {
		n.mu.RUnlock()
		return nil, 0, false, fmt.Errorf("node %d: partition %d has no primary", n.cfg.ID, p)
	}
	next := int(n.view.router.NextHop(topology.DCID(n.self), topology.DCID(primary)))
	addr := n.peerAddr(next)
	n.mu.RUnlock()

	resp, err := n.tr.Send(addr, &transport.Message{
		Kind: KindGet, Partition: uint32(p), Origin: uint32(origin), Hops: uint32(hops + 1),
		Key: []byte(key),
	})
	if err != nil {
		return nil, 0, false, err
	}
	if err := resp.Err(); err != nil {
		return nil, 0, false, err
	}
	if resp.Status == transport.StatusNotFound {
		return nil, 0, false, nil
	}
	return resp.Value, resp.Version, true, nil
}

// readTargetsLocked returns the quorum read's probe order for
// partition p: the primary first (the copy most likely to hold the
// newest version, so quorums assemble fast), then the remaining
// holders ascending. Self is excluded — the coordinator's own copy is
// vote #1.
func (n *Node) readTargetsLocked(p, primary int) []int {
	var targets []int
	if primary >= 0 && primary != n.self {
		targets = append(targets, primary)
	}
	for _, s := range n.view.cluster.ReplicaServers(p) {
		if int(s) == n.self || int(s) == primary {
			continue
		}
		targets = append(targets, int(s))
	}
	return targets
}

// readVote is one holder's answer in a quorum read: what it physically
// stores for the key. A resident holder without the key votes
// found=false at version 0 — "authoritatively absent".
type readVote struct {
	peer  int
	val   []byte
	ver   uint64
	found bool
}

// quorumRead assembles r version votes for one key (the coordinator's
// own copy plus KindVer probes down the target list until enough
// holders answered), returns the highest-versioned copy, and pushes
// that winner to every stale voter it saw — read-repair, the
// foreground half of anti-entropy: any divergence a quorum read can
// observe it also heals. Unreachable or non-resident holders simply
// don't vote; the read fails only when fewer than r votes assemble.
// Callers must not hold n.mu.
//
//lint:requires-unlocked n.mu
func (n *Node) quorumRead(p int, key string, v []byte, ver uint64, ok bool, targets []int, r int) ([]byte, uint64, bool, error) {
	votes := []readVote{{peer: n.self, val: v, ver: ver, found: ok}}
	for _, t := range targets {
		if len(votes) >= r {
			break
		}
		resp, err := n.tr.Send(n.peerAddr(t), &transport.Message{
			Kind: KindVer, Partition: uint32(p), Key: []byte(key),
		})
		if err != nil {
			continue
		}
		switch resp.Status {
		case transport.StatusOK:
			votes = append(votes, readVote{peer: t, val: resp.Value, ver: resp.Version, found: true})
		case transport.StatusNotFound:
			votes = append(votes, readVote{peer: t, found: false})
		default:
			// StatusError / StatusRetry: the holder answered but could
			// not serve the probe, so it does not vote. The quorum
			// check below decides whether the read still stands.
		}
	}
	if len(votes) < r {
		return nil, 0, false, fmt.Errorf("node %d: read quorum not met for partition %d: %d/%d holders answered",
			n.cfg.ID, p, len(votes), r)
	}
	win := -1
	for i := range votes {
		if votes[i].found && (win < 0 || votes[i].ver > votes[win].ver) {
			win = i
		}
	}
	if win < 0 {
		return nil, 0, false, nil // the whole quorum agrees: absent
	}
	w := votes[win]
	var ops []outOp
	for i := range votes {
		vt := &votes[i]
		if vt.found && vt.ver >= w.ver {
			continue
		}
		if vt.peer == n.self {
			n.store.applySync(p, key, w.val, w.ver)
			continue
		}
		ops = append(ops, outOp{peer: vt.peer, msg: &transport.Message{
			Kind: KindSync, Partition: uint32(p), Version: w.ver, Key: []byte(key), Value: w.val,
		}})
	}
	n.sendOps(ops)
	return w.val, w.ver, true, nil
}

func (n *Node) handleGet(req *transport.Message) (*transport.Message, error) {
	// The partition is a function of the key, so client requests (zero
	// hops, e.g. from rfhctl) need not know the partition count; for
	// forwarded requests the stamped partition must agree.
	p := n.PartitionOf(string(req.Key))
	if req.Hops > 0 && int(req.Partition) != p {
		return nil, fmt.Errorf("node %d: key maps to partition %d, message says %d", n.cfg.ID, p, req.Partition)
	}
	origin := int(req.Origin)
	if req.Hops == 0 {
		origin = n.self
	}
	v, ver, ok, err := n.routeGet(p, string(req.Key), origin, int(req.Hops))
	if err != nil {
		return nil, err
	}
	if !ok {
		return &transport.Message{Kind: KindGet, Status: transport.StatusNotFound, Partition: uint32(p)}, nil
	}
	return &transport.Message{Kind: KindGet, Partition: uint32(p), Version: ver, Value: v}, nil
}

// --- Write path -----------------------------------------------------

// PutReceipt is a write acknowledgement: the version the primary
// stamped on the value and the ascending roster indexes of every
// holder that durably accepted it before the ack. len(Acked) is always
// at least the configured WriteQuorum on success.
type PutReceipt struct {
	Version uint64
	Acked   []int
}

// Put stores a key/value pair. Non-primary nodes proxy the write to
// the partition's primary, which stamps a version, applies it locally,
// syncs the other replica holders, and acks only once WriteQuorum
// holders (itself included) durably accepted the write.
func (n *Node) Put(key string, value []byte) error {
	_, err := n.PutQuorum(key, value)
	return err
}

// PutQuorum is Put returning the full write receipt: the stamped
// version and the exact holder set that accepted the write before the
// ack.
func (n *Node) PutQuorum(key string, value []byte) (PutReceipt, error) {
	return n.routePut(n.PartitionOf(key), key, value, 0)
}

func (n *Node) routePut(p int, key string, value []byte, hops int) (PutReceipt, error) {
	n.mu.RLock()
	if n.closed || n.crashed {
		err := ErrClosed
		if n.crashed {
			err = ErrCrashed
		}
		n.mu.RUnlock()
		return PutReceipt{}, err
	}
	primary := n.view.primary(p)
	if primary == n.self {
		w := n.cfg.WriteQuorum
		// Stamp and apply locally first: the primary's copy is ack #1,
		// and the fan-out below carries the stamped version. Applying
		// before the quorum verdict means a refused write may still
		// become visible — standard quorum-store semantics (a failed
		// write is "not guaranteed durable", not "guaranteed absent"),
		// and the version keeps every copy ordered regardless. On a
		// durable node ack #1 means the WAL append landed: an engine
		// refusal fails the write outright instead of acking a record
		// the disk never saw.
		ver, applied := n.store.stampPut(p, key, value, n.epoch<<versionEpochShift)
		if !applied {
			n.mu.RUnlock()
			return PutReceipt{}, fmt.Errorf("node %d: durable apply failed for partition %d: %w",
				n.cfg.ID, p, n.durableErrLocked())
		}
		holders := n.view.cluster.ReplicaServers(p)
		targets := make([]int, 0, len(holders))
		for _, s := range holders {
			if int(s) != n.self {
				targets = append(targets, int(s))
			}
		}
		n.mu.RUnlock()
		acked, fails := n.syncWrite(p, key, value, ver, targets)
		if fails > 0 {
			n.syncFails.Add(int64(fails))
		}
		acked = append(acked, n.self)
		sort.Ints(acked)
		rcpt := PutReceipt{Version: ver, Acked: acked}
		if len(acked) < w {
			return rcpt, fmt.Errorf("node %d: write quorum not met for partition %d: %d/%d holders acked",
				n.cfg.ID, p, len(acked), w)
		}
		return rcpt, nil
	}
	n.mu.RUnlock()
	if primary < 0 {
		return PutReceipt{}, fmt.Errorf("node %d: partition %d has no primary", n.cfg.ID, p)
	}
	if hops > 0 {
		// A proxied put landing on a non-primary means the sender's view
		// disagrees with ours; refuse rather than bounce it around.
		return PutReceipt{}, fmt.Errorf("node %d: not primary for partition %d", n.cfg.ID, p)
	}
	resp, err := n.tr.Send(n.peerAddr(primary), &transport.Message{
		Kind: KindPut, Partition: uint32(p), Hops: 1, Key: []byte(key), Value: value,
	})
	if err != nil {
		return PutReceipt{}, err
	}
	if err := resp.Err(); err != nil {
		return PutReceipt{}, err
	}
	acked, err := decodeAckSet(resp.Value, len(n.cfg.Peers))
	if err != nil {
		return PutReceipt{}, err
	}
	return PutReceipt{Version: resp.Version, Acked: acked}, nil
}

// syncWrite pushes one stamped write to the partition's other holders
// and reports which of them durably acked it. A holder that answers
// StatusRetry has no resident copy to apply onto (mid-rejoin, or
// claim-added before its own view even lists it as a holder); it is
// healed with a ship whose frozen state provably contains this stamped
// write, and the ship's landing IS the durable ack — re-sending the
// sync would prove nothing, since handleSync keeps refusing until the
// holder's view catches up an epoch later. Sends run sequentially in
// holder order when cfg.Fanout <= 1 (the deterministic-harness mode,
// see sendOps) and over at most Fanout concurrent senders otherwise.
// Callers must not hold n.mu.
//
//lint:requires-unlocked n.mu
func (n *Node) syncWrite(p int, key string, value []byte, ver uint64, targets []int) (acked []int, fails int) {
	syncOne := func(t int) bool {
		resp, err := n.tr.Send(n.peerAddr(t), &transport.Message{
			Kind: KindSync, Partition: uint32(p), Version: ver, Key: []byte(key), Value: value,
		})
		if err != nil {
			return false
		}
		if resp.Status == transport.StatusRetry {
			return n.shipPartition(p, t, ver)
		}
		return resp.Status == transport.StatusOK
	}
	if n.cfg.Fanout <= 1 || len(targets) <= 1 {
		for _, t := range targets {
			if syncOne(t) {
				acked = append(acked, t)
			} else {
				fails++
			}
		}
		return acked, fails
	}
	var mu sync.Mutex
	sem := make(chan struct{}, n.cfg.Fanout)
	var wg sync.WaitGroup
	for _, t := range targets {
		sem <- struct{}{}
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			ok := syncOne(t)
			mu.Lock()
			if ok {
				acked = append(acked, t)
			} else {
				fails++
			}
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	return acked, fails
}

func (n *Node) handlePut(req *transport.Message) (*transport.Message, error) {
	p := n.PartitionOf(string(req.Key))
	if req.Hops > 0 && int(req.Partition) != p {
		return nil, fmt.Errorf("node %d: key maps to partition %d, message says %d", n.cfg.ID, p, req.Partition)
	}
	rcpt, err := n.routePut(p, string(req.Key), req.Value, int(req.Hops))
	if err != nil {
		return nil, err
	}
	return &transport.Message{
		Kind: KindPut, Partition: uint32(p), Version: rcpt.Version,
		Value: appendAckSet(nil, rcpt.Acked),
	}, nil
}

func (n *Node) handleSync(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	acked := false
	if n.view.hasReplica(p, n.self) {
		acked = n.store.applySync(p, string(req.Key), req.Value, req.Version)
	}
	n.mu.RUnlock()
	if !acked {
		// Not a holder by our own view, or not resident: this copy is
		// not authoritative, so the write did not durably land here.
		return &transport.Message{Kind: KindSync, Partition: req.Partition, Status: transport.StatusRetry}, nil
	}
	return &transport.Message{Kind: KindSync, Partition: req.Partition}, nil
}

// handleVer answers a quorum read's version probe from the physical
// store: no routing, no capacity accounting. A non-resident partition
// answers StatusRetry — its content is not authoritative and must not
// vote.
func (n *Node) handleVer(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	v, ver, ok, resident := n.store.localVersion(p, string(req.Key))
	n.mu.RUnlock()
	switch {
	case !resident:
		return &transport.Message{Kind: KindVer, Partition: req.Partition, Status: transport.StatusRetry}, nil
	case !ok:
		return &transport.Message{Kind: KindVer, Partition: req.Partition, Status: transport.StatusNotFound}, nil
	default:
		return &transport.Message{Kind: KindVer, Partition: req.Partition, Version: ver, Value: v}, nil
	}
}

// --- Replica transfer -----------------------------------------------

func (n *Node) handleStore(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	entries, err := decodeSnapshot(req.Value)
	if err != nil {
		return nil, err
	}
	// Version-aware merge, not replacement: a replayed or delayed
	// snapshot transfer must never roll a key back below a version a
	// later sync already installed here.
	n.mu.RLock()
	err = n.store.mergeSnapshot(p, entries)
	n.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return &transport.Message{Kind: KindStore, Partition: req.Partition}, nil
}

func (n *Node) handleDrop(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	// A legitimate drop never targets the partition's primary (the
	// decision protocol never moves or suicides the primary copy), so a
	// drop arriving at the node currently leading the partition is
	// stale — typically delayed in flight across the epoch in which
	// this node was promoted. Discarding the one copy every view now
	// treats as authoritative would be silent data loss; refuse it.
	refused := n.view.primary(p) == n.self
	if !refused {
		n.store.drop(p)
	}
	n.mu.RUnlock()
	if refused {
		return &transport.Message{Kind: KindDrop, Partition: req.Partition, Status: transport.StatusRetry}, nil
	}
	return &transport.Message{Kind: KindDrop, Partition: req.Partition}, nil
}

// --- Epoch machinery ------------------------------------------------

func (n *Node) handleStats(req *transport.Message) (*transport.Message, error) {
	idx := int(req.Origin)
	if idx < 0 || idx >= len(n.cfg.Peers) || idx == n.self {
		return nil, fmt.Errorf("node %d: stats from invalid peer index %d", n.cfg.ID, idx)
	}
	blob, err := decodeStats(req.Value, n.cfg.Partitions, len(n.cfg.Peers))
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	switch req.Epoch {
	case n.epoch:
		n.pending[idx] = blob
	case n.epoch + 1:
		// The sender has already ticked past us; hold its stats for our
		// next epoch so free-running tickers that drift by one phase do
		// not trigger spurious suspicion.
		n.nextPend[idx] = blob
	}
	n.mu.Unlock()
	return &transport.Message{Kind: KindStats, Epoch: req.Epoch}, nil
}

// FlushEpoch snapshots this node's per-partition counters and
// placement claims for the epoch in flight and broadcasts them to all
// peers (phase A of the two-phase tick). Counters reset at the
// snapshot, so every query is reported in exactly one epoch. Broadcast
// failures are not errors: an unreachable peer simply misses the
// stats, which is what the suspicion mechanism measures.
func (n *Node) FlushEpoch() error {
	n.mu.Lock()
	if n.closed || n.crashed {
		err := ErrClosed
		if n.crashed {
			err = ErrCrashed
		}
		n.mu.Unlock()
		return err
	}
	blob := &statsBlob{counters: n.store.flushCounters()}
	for p := 0; p < n.cfg.Partitions; p++ {
		// A recovering node's view is still being re-learned from peer
		// claims: until it is complete the node must not assert any
		// placement of its own.
		if n.recovering || n.view.primary(p) != n.self {
			continue
		}
		holders := n.view.cluster.ReplicaServers(p)
		cl := placementClaim{partition: p, primary: n.self}
		for _, s := range holders {
			cl.replicas = append(cl.replicas, int(s))
		}
		blob.claims = append(blob.claims, cl)
	}
	// Piggyback the anti-entropy digests on the stats broadcast: on
	// AEInterval boundaries each partition this node primaries (and
	// co-holds) contributes its O(1) live tree digest, and holders pull
	// repairs from it during RunEpoch. No dedicated digest frames.
	blob.digests = n.aeDigestsLocked()
	n.pending[n.self] = blob
	epoch := n.epoch
	enc := appendStats(nil, blob)
	n.mu.Unlock()

	ops := make([]outOp, 0, len(n.cfg.Peers)-1)
	for i := range n.cfg.Peers {
		if i == n.self {
			continue
		}
		ops = append(ops, outOp{peer: i, msg: &transport.Message{
			Kind: KindStats, Origin: uint32(n.self), Epoch: epoch, Value: enc,
		}})
	}
	n.sendOps(ops)
	return nil
}

// sendOps performs a logical step's peer sends — best-effort, reply
// errors discarded (an unreachable peer simply misses the message,
// which is what the suspicion and residency machinery measure). With
// cfg.Fanout <= 1 the sends run strictly sequentially in slice order:
// the deterministic harnesses depend on that, because the chaos fault
// wrapper consumes a shared RNG stream per send and its draw order is
// part of a seed's byte-identical trajectory. Larger fanouts spread
// the sends over up to Fanout concurrent senders — the wall-clock win
// for live clusters, where a slow peer otherwise stalls the whole
// broadcast. Callers must not hold n.mu in either mode: the loopback
// transport delivers synchronously on the sending goroutine.
//
//lint:requires-unlocked n.mu
func (n *Node) sendOps(ops []outOp) {
	send := func(op outOp) {
		if resp, err := n.tr.Send(n.peerAddr(op.peer), op.msg); err == nil {
			//lint:ignore rfhlint/errsink best-effort broadcast: a peer's reply error is equivalent to an unreachable peer, which the suspicion machinery measures
			_ = resp.Err()
		}
	}
	if n.cfg.Fanout <= 1 || len(ops) <= 1 {
		for _, op := range ops {
			send(op)
		}
		return
	}
	sem := make(chan struct{}, n.cfg.Fanout)
	var wg sync.WaitGroup
	for _, op := range ops {
		sem <- struct{}{}
		wg.Add(1)
		go func(op outOp) {
			defer wg.Done()
			defer func() { <-sem }()
			send(op)
		}(op)
	}
	wg.Wait()
}

// RunEpoch completes the epoch (phase B): it ages peer suspicion,
// reconciles placement claims, folds the collected stats into the
// traffic tracker, runs the policy on the resulting context, applies
// the decision to the view, and ships the data movements it is
// responsible for. FlushEpoch must have run first for this epoch.
func (n *Node) RunEpoch() error {
	n.mu.Lock()
	if n.closed || n.crashed {
		err := ErrClosed
		if n.crashed {
			err = ErrCrashed
		}
		n.mu.Unlock()
		return err
	}
	if n.pending[n.self] == nil {
		n.mu.Unlock()
		return fmt.Errorf("%w: epoch %d", ErrNotFlushed, n.epoch)
	}
	epoch := n.epoch

	n.ageSuspicionLocked()
	n.reconcileClaimsLocked()
	if n.recovering && n.view.fullyPlaced(n.cfg.Partitions) {
		// Every partition has been re-learned from the live primaries:
		// the reconciled view is now trustworthy and the node resumes
		// full participation. A durable node additionally re-injects the
		// data it recovered from disk (see rejoinReinjectLocked) — a
		// memory node recovered nothing, so this is a no-op for it.
		n.recovering = false
		n.rejoinReinjectLocked()
	}
	var ops []outOp
	if n.recovering {
		// Half-reconciled view: folding the stats keeps the tracker's
		// EWMA warm, but reseeding "lost" partitions or running the
		// policy on placements this node has not re-learned yet would
		// assert a stale world — skip both until the view is complete.
		_ = n.foldTrackerLocked()
	} else {
		n.adoptOrphansLocked()
		n.reseedLostLocked()
		demand := n.foldTrackerLocked()

		n.view.cluster.BeginEpoch()
		n.view.cluster.EndEpoch()
		ctx := &policy.Context{
			Epoch:           int(epoch),
			Cluster:         n.view.cluster,
			Tracker:         n.tracker,
			Router:          n.view.router,
			Ring:            n.view.ring,
			Demand:          demand,
			FailureRate:     n.cfg.FailureRate,
			MinAvailability: n.cfg.MinAvailability,
			MinReplicas:     n.view.minReplicas,
			HubCandidates:   n.cfg.HubCandidates,
			RNG:             n.rng.Stream(epoch),
		}
		dec := n.pol.Decide(ctx)
		ops = n.applyDecisionLocked(dec)
	}

	// Collect anti-entropy pull plans from the digests peers piggybacked
	// on this epoch's stats blobs — before the pending/nextPend swap
	// discards them.
	pulls := n.aePullPlansLocked()
	n.pending, n.nextPend = n.nextPend, n.pending
	for i := range n.nextPend {
		n.nextPend[i] = nil
	}
	n.epoch++
	n.mu.Unlock()

	// Data movement happens outside the lock: the loopback transport
	// delivers synchronously, and the receiving node takes its own lock.
	n.sendOps(ops)
	// Then drive the chunked transfer sessions a round (and age their
	// leases). A node with no sessions in flight sends nothing here.
	n.pumpTransfers()
	// Finally the anti-entropy pull rounds against the primaries whose
	// piggybacked digests disagree with this node's — empty except on
	// AEInterval boundaries.
	n.runAEPulls(pulls)
	return nil
}

// rejoinReinjectLocked runs once, at the moment a restarted node's
// view completes: every partition whose recovered (non-resident) copy
// still has data is pushed back toward the cluster. EVERY current
// holder gets it through a chunked session that does NOT mark it
// resident there (it already is) — primary-only injection would leave
// the co-holders permanently divergent, since they serve reads locally
// and nothing re-ships a partition they already hold. Version-gated
// merge means recovered records only land where they are still the
// newest: an acked write whose whole holder set died thus survives the
// restart, while anything re-written since the reseed wins on version.
// A partition this node itself re-leads is simply re-adopted as
// authoritative. Callers hold n.mu (write mode); the sessions pump
// after the lock drops.
func (n *Node) rejoinReinjectLocked() {
	for p := 0; p < n.cfg.Partitions; p++ {
		if n.store.isResident(p) || n.store.keys(p) == 0 {
			continue
		}
		if pr := n.view.primary(p); pr == n.self {
			if err := n.store.mergeSnapshot(p, nil); err != nil {
				continue // sticky engine failure; surfaced on the ack path
			}
			continue
		}
		for _, s := range n.view.cluster.ReplicaServers(p) {
			if int(s) != n.self {
				n.startTransferLocked(p, int(s), false)
			}
		}
	}
}

// ageSuspicionLocked updates per-peer failure suspicion from the stats
// that did (not) arrive this epoch. A peer silent for SuspectAfter
// consecutive epochs is presumed failed and leaves the view — feeding
// the eq. (14) availability bound exactly like a simulated failure —
// and rejoins when its stats reappear.
func (n *Node) ageSuspicionLocked() {
	for i := range n.cfg.Peers {
		if i == n.self {
			continue
		}
		if n.pending[i] != nil {
			n.missed[i] = 0
			if n.suspect[i] {
				n.suspect[i] = false
				n.view.recoverPeer(i)
			}
			continue
		}
		n.missed[i]++
		if n.missed[i] >= n.cfg.SuspectAfter && !n.suspect[i] {
			n.suspect[i] = true
			n.view.failPeer(i)
		}
	}
}

// reconcileClaimsLocked folds the primaries' placement claims into the
// view, in ascending claimant order for determinism. In a healthy
// lockstep cluster every claim is a no-op (all views already agree);
// after asymmetric suspicion or missed transfers the claims pull the
// views back together.
func (n *Node) reconcileClaimsLocked() {
	claimed := make([]bool, n.cfg.Partitions)
	for i := 0; i < len(n.cfg.Peers); i++ {
		blob := n.pending[i]
		if blob == nil {
			continue
		}
		for _, cl := range blob.claims {
			if cl.partition >= n.cfg.Partitions || cl.primary != i {
				continue // a claim is only authoritative from its primary
			}
			claimed[cl.partition] = true
			n.applyClaimLocked(&cl)
		}
	}
	for p := range claimed {
		if claimed[p] {
			n.orphaned[p] = 0
		} else {
			n.orphaned[p]++
		}
	}
}

// adoptOrphansLocked repairs claim-protocol deadlocks. Claims are only
// authoritative from a partition's primary, so after enough fault
// churn two holders can each believe the *other* is primary: neither
// claims the partition, the divergence never heals, and a recovering
// node waiting on that claim never completes its view. When no claim
// for a partition has arrived for SuspectAfter epochs, every node that
// believes it holds a copy asserts itself primary; the claims on the
// next flush re-anchor every view. Competing adoptions are safe:
// reconciliation applies claims in the same ascending claimant order
// everywhere, so all views converge on the same winner and the losers
// cede on the epoch after. (Adoption cannot be restricted to the
// lowest holder: with divergent views, the holder that looks lowest to
// everyone else may not list itself at all and would never step up.)
func (n *Node) adoptOrphansLocked() {
	for p := 0; p < n.cfg.Partitions; p++ {
		if n.orphaned[p] < n.cfg.SuspectAfter {
			continue
		}
		if c := n.view.cluster; c.HasReplica(p, cluster.ServerID(n.self)) {
			_ = c.SetPrimary(p, cluster.ServerID(n.self))
		}
	}
}

func (n *Node) applyClaimLocked(cl *placementClaim) {
	p := cl.partition
	c := n.view.cluster
	claimed := make(map[int]bool, len(cl.replicas))
	for _, s := range cl.replicas {
		claimed[s] = true
		if !c.HasReplica(p, cluster.ServerID(s)) && c.CanHost(p, cluster.ServerID(s)) {
			_ = c.AddReplica(p, cluster.ServerID(s))
		}
	}
	for _, s := range c.ReplicaServers(p) {
		if !claimed[int(s)] {
			_ = c.RemoveReplica(p, s) // refuses the last copy, which is what we want
		}
	}
	if c.HasReplica(p, cluster.ServerID(cl.primary)) {
		_ = c.SetPrimary(p, cluster.ServerID(cl.primary))
	}
}

// reseedLostLocked re-seeds partitions whose every holder vanished
// (archival restore, as in the simulator's mass-failure handling). The
// restored copy starts empty on the ring owner; empty is authoritative
// here — the data is gone cluster-wide — so the owner's store becomes
// resident again.
func (n *Node) reseedLostLocked() {
	for p := 0; p < n.cfg.Partitions; p++ {
		if n.view.primary(p) < 0 {
			_ = n.view.seedPartition(p)
			if n.view.hasReplica(p, n.self) {
				n.store.resetEmpty(p)
			}
		}
	}
}

// foldTrackerLocked assembles every partition's cluster-wide serve
// result from the collected stats and feeds the traffic tracker one
// epoch (eqs. 10–11). It returns the per-partition origin demand
// matrix for the policy context.
func (n *Node) foldTrackerLocked() *workload.Matrix {
	peers := len(n.cfg.Peers)
	demand := workload.NewMatrix(n.cfg.Partitions, peers)
	type agg struct {
		traffic  []int
		served   []int
		unserved int
		total    int
	}
	aggs := make([]agg, n.cfg.Partitions)
	for p := range aggs {
		aggs[p].traffic = make([]int, peers)
		aggs[p].served = make([]int, peers)
	}
	for i := 0; i < peers; i++ {
		blob := n.pending[i]
		if blob == nil {
			continue
		}
		for _, c := range blob.counters {
			a := &aggs[c.partition]
			a.traffic[i] += c.origin + c.transit
			a.served[i] += c.served
			a.unserved += c.overflow
			a.total += c.origin
			demand.Q[c.partition][i] += c.origin
		}
	}
	n.tracker.BeginEpoch()
	var res traffic.ServeResult
	for p := range aggs {
		primary := n.view.primary(p)
		if primary < 0 {
			continue
		}
		a := &aggs[p]
		res = traffic.ServeResult{
			TrafficByDC:  a.traffic,
			ServedByDC:   a.served,
			Unserved:     a.unserved,
			TotalQueries: a.total,
		}
		n.tracker.Observe(p, topology.DCID(primary), &res)
	}
	n.tracker.EndEpoch()
	return demand
}

// applyDecisionLocked executes the slice of the decision this node is
// responsible for: only the partition's primary applies structural
// actions — same bandwidth gating and failed-migration fallback as the
// simulator — and ships the snapshots and drop orders they imply.
// Non-primary nodes discard the decision and learn the outcome from
// the primary's next placement claim instead. The one-epoch metadata
// lag is deliberate: under message loss the per-node traffic trackers
// can drift apart, and if every node applied its own (now divergent)
// decision locally, a non-primary could re-add a replica every epoch
// that the primary's claim keeps removing — a permanent view
// oscillation. A single decision-maker per partition makes the claim
// authoritative by construction.
//
// Migrations never move the primary copy itself: the claim protocol
// has no atomic primaryship handoff (a node only claims partitions it
// already believes it leads), so moving it would leave an epoch where
// nobody claims the partition. A migration whose source is the primary
// keeps the source copy and degrades to a replication, exactly like
// the refused-removal fallback.
func (n *Node) applyDecisionLocked(dec policy.Decision) []outOp {
	c := n.view.cluster
	size := n.cfg.PartitionSize
	var ops []outOp

	// shipOp routes one replica ship by size: a partition under the
	// one-frame threshold travels as a single KindStore message, a
	// larger one opens a chunked transfer session that RunEpoch pumps
	// after the lock drops (ok=false: nothing to append to ops).
	shipOp := func(p, target int) (outOp, bool) {
		if n.store.sizeBytes(p) <= n.cfg.SnapshotOneFrameBytes {
			snap := n.store.encodeSnapshot(p)
			n.xmu.Lock()
			n.xstats.OneFrame++
			n.xstats.BytesSent += int64(len(snap))
			n.xmu.Unlock()
			return outOp{peer: target, msg: &transport.Message{
				Kind: KindStore, Partition: uint32(p), Value: snap,
			}}, true
		}
		n.startTransferLocked(p, target, true)
		return outOp{}, false
	}
	dropOp := func(p, target int) outOp {
		return outOp{peer: target, msg: &transport.Message{
			Kind: KindDrop, Partition: uint32(p),
		}}
	}

	for _, rep := range dec.Replications {
		p, src, tgt := rep.Partition, rep.Source, rep.Target
		if n.view.primary(p) != n.self {
			continue // the primary executes; peers learn from its claim
		}
		if !c.HasReplica(p, src) || !c.CanHost(p, tgt) {
			continue
		}
		if !c.ConsumeReplicationBW(src, size) {
			continue
		}
		if c.AddReplica(p, tgt) != nil {
			continue
		}
		n.counts.Repl++
		if int(tgt) != n.self {
			if op, ok := shipOp(p, int(tgt)); ok {
				ops = append(ops, op)
			}
		}
	}
	for _, mig := range dec.Migrations {
		p, from, to := mig.Partition, mig.From, mig.To
		if n.view.primary(p) != n.self {
			continue
		}
		if !c.HasReplica(p, from) || !c.CanHost(p, to) {
			continue
		}
		if !c.ConsumeMigrationBW(from, size) {
			continue
		}
		if c.AddReplica(p, to) != nil {
			continue
		}
		if c.Primary(p) == from || c.RemoveReplica(p, from) != nil {
			// The source copy stays: either it is the primary copy
			// (never moved, see above) or the removal was refused. The
			// new copy exists and bandwidth was spent, which is
			// physically a replication (same accounting as the
			// simulator's half-completed move).
			n.counts.Repl++
			if int(to) != n.self {
				if op, ok := shipOp(p, int(to)); ok {
					ops = append(ops, op)
				}
			}
			continue
		}
		n.counts.Migr++
		if int(to) != n.self {
			// Snapshot (or open the session) BEFORE the source drop
			// below: when this node is both source and shipper, dropping
			// first would ship an empty partition.
			if op, ok := shipOp(p, int(to)); ok {
				ops = append(ops, op)
			}
		}
		if int(from) == n.self {
			n.store.drop(p)
		}
		if int(from) != n.self {
			ops = append(ops, dropOp(p, int(from)))
		}
	}
	for _, sui := range dec.Suicides {
		p, s := sui.Partition, sui.Server
		if n.view.primary(p) != n.self {
			continue
		}
		if c.Primary(p) == s {
			continue // the primary never suicides
		}
		if c.RemoveReplica(p, s) != nil {
			continue
		}
		n.counts.Suicide++
		if int(s) == n.self {
			n.store.drop(p)
		} else {
			ops = append(ops, dropOp(p, int(s)))
		}
	}
	return ops
}

// --- Introspection --------------------------------------------------

// PartitionInfo is one partition's placement and data summary in a
// DumpInfo.
type PartitionInfo struct {
	Partition int   `json:"partition"`
	Primary   int   `json:"primary"`
	Replicas  []int `json:"replicas"`
	Keys      int   `json:"keys"`
	Bytes     int   `json:"bytes"`
	Resident  bool  `json:"resident"`
	// WAL depth and compaction count of the durable engine's partition
	// log; zero in memory mode.
	WALRecords  int `json:"wal_records,omitempty"`
	Compactions int `json:"compactions,omitempty"`
}

// DumpInfo is a node's introspection snapshot, served to rfhctl as
// JSON via KindDump.
type DumpInfo struct {
	ID          int             `json:"id"`
	Self        int             `json:"self"`
	Epoch       uint64          `json:"epoch"`
	MinReplicas int             `json:"min_replicas"`
	WriteQuorum int             `json:"write_quorum"`
	ReadQuorum  int             `json:"read_quorum"`
	SyncFails   int64           `json:"sync_fails,omitempty"`
	Durable     bool            `json:"durable"`
	Transfers   TransferStats   `json:"transfers"`
	AntiEntropy AEStats         `json:"anti_entropy"`
	Decisions   DecisionCounts  `json:"decisions"`
	Suspected   []int           `json:"suspected,omitempty"`
	Partitions  []PartitionInfo `json:"partitions"`
}

// Dump returns the node's current placement, data and decision state.
func (n *Node) Dump() DumpInfo {
	n.mu.RLock()
	defer n.mu.RUnlock()
	d := DumpInfo{
		ID:          n.cfg.ID,
		Self:        n.self,
		Epoch:       n.epoch,
		MinReplicas: n.view.minReplicas,
		WriteQuorum: n.cfg.WriteQuorum,
		ReadQuorum:  n.cfg.ReadQuorum,
		SyncFails:   n.syncFails.Load(),
		Durable:     n.eng != nil,
		Transfers:   n.TransferStats(),
		AntiEntropy: n.AEStats(),
		Decisions:   n.counts,
	}
	for i, s := range n.suspect {
		if s {
			d.Suspected = append(d.Suspected, i)
		}
	}
	for p := 0; p < n.cfg.Partitions; p++ {
		info := PartitionInfo{
			Partition: p,
			Primary:   n.view.primary(p),
			Keys:      n.store.keys(p),
			Bytes:     n.store.sizeBytes(p),
			Resident:  n.store.isResident(p),
		}
		if n.eng != nil {
			st := n.eng.Stats(p)
			info.WALRecords, info.Compactions = st.WALRecords, st.Compactions
		}
		for _, s := range n.view.cluster.ReplicaServers(p) {
			info.Replicas = append(info.Replicas, int(s))
		}
		d.Partitions = append(d.Partitions, info)
	}
	return d
}

func (n *Node) handleDump() (*transport.Message, error) {
	d := n.Dump()
	buf, err := json.Marshal(d)
	if err != nil {
		return nil, err
	}
	return &transport.Message{Kind: KindDump, Value: buf}, nil
}

// LocalGet reads a key from this node's local store only — no
// routing, no traffic accounting, no capacity charge. It ignores
// whether the view says this node holds the partition, so invariant
// checkers can ask "which live processes physically have this value"
// independently of placement metadata. A crashed node has no store.
func (n *Node) LocalGet(key string) ([]byte, bool) {
	v, _, ok := n.LocalVersion(key)
	return v, ok
}

// LocalVersion is LocalGet including the stored version stamp — what
// quorum-read tests and invariant checkers use to rank the physical
// copies of a key across nodes.
func (n *Node) LocalVersion(key string) ([]byte, uint64, bool) {
	p := n.PartitionOf(key)
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.closed || n.crashed {
		return nil, 0, false
	}
	return n.store.get(p, key)
}

// ReplicaMap returns every partition's sorted holder set — the
// determinism tests compare these across nodes and across runs.
func (n *Node) ReplicaMap() [][]int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([][]int, n.cfg.Partitions)
	for p := range out {
		for _, s := range n.view.cluster.ReplicaServers(p) {
			out[p] = append(out[p], int(s))
		}
	}
	return out
}

// Primaries returns every partition's primary roster index.
func (n *Node) Primaries() []int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]int, n.cfg.Partitions)
	for p := range out {
		out[p] = n.view.primary(p)
	}
	return out
}

// ReplicaCount returns the number of holders of partition p.
func (n *Node) ReplicaCount(p int) int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.view.cluster.ReplicaCount(p)
}
