package node

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/workload"
)

// flavours are the transports the node-level tests run over: the
// deterministic in-process loopback and real TCP sockets.
var flavours = []string{"loopback", "tcp"}

func testConfig() Config {
	cfg := DefaultConfig(0, nil)
	cfg.Partitions = 12
	cfg.ReplicaCapacity = 8
	cfg.SuspectAfter = 2
	cfg.Seed = 7
	return cfg
}

// harness drives a cluster of nodes over either transport in lockstep
// epochs, mirroring what Fleet does for loopback only.
type harness struct {
	t     *testing.T
	nodes []*Node
	dead  []bool
}

func newHarness(t *testing.T, flavour string, n int, base Config) *harness {
	t.Helper()
	h := &harness{t: t, dead: make([]bool, n)}
	peers := make([]Peer, n)
	trs := make([]transport.Transport, n)
	switch flavour {
	case "loopback":
		lb := transport.NewLoopback()
		for i := range peers {
			peers[i] = Peer{ID: i, Addr: fmt.Sprintf("node%d", i)}
			trs[i] = lb.Endpoint(peers[i].Addr)
		}
	case "tcp":
		opts := transport.TCPOptions{
			DialTimeout: 500 * time.Millisecond, IOTimeout: 2 * time.Second,
			Retries: 1, RetryBackoff: 5 * time.Millisecond,
		}
		for i := range peers {
			tr, err := transport.ListenTCP("127.0.0.1:0", nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			peers[i] = Peer{ID: i, Addr: tr.Addr()}
			trs[i] = tr
		}
	default:
		t.Fatalf("unknown flavour %q", flavour)
	}
	for i := 0; i < n; i++ {
		cfg := base
		cfg.ID = i
		cfg.Peers = append([]Peer(nil), peers...)
		nd, err := New(cfg, trs[i])
		if err != nil {
			t.Fatal(err)
		}
		h.nodes = append(h.nodes, nd)
	}
	t.Cleanup(func() {
		for i, nd := range h.nodes {
			if !h.dead[i] {
				nd.Close()
			}
		}
	})
	return h
}

func (h *harness) tick() {
	h.t.Helper()
	for i, nd := range h.nodes {
		if h.dead[i] {
			continue
		}
		if err := nd.FlushEpoch(); err != nil {
			h.t.Fatalf("flush node %d: %v", i, err)
		}
	}
	for i, nd := range h.nodes {
		if h.dead[i] {
			continue
		}
		if err := nd.RunEpoch(); err != nil {
			h.t.Fatalf("run node %d: %v", i, err)
		}
	}
}

func (h *harness) kill(i int) {
	h.t.Helper()
	h.dead[i] = true
	if err := h.nodes[i].Close(); err != nil {
		h.t.Fatal(err)
	}
}

// replay issues one workload matrix against the cluster: Q[p][d]
// queries for partition p enter at node d.
func (h *harness) replay(m *workload.Matrix) ReplayStats {
	var st ReplayStats
	partitions := h.nodes[0].cfg.Partitions
	for p := 0; p < m.Partitions(); p++ {
		key := PartitionKey(p, partitions)
		for d := 0; d < m.DCs() && d < len(h.nodes); d++ {
			if h.dead[d] {
				continue
			}
			for q := 0; q < m.Q[p][d]; q++ {
				st.Queries++
				_, ok, err := h.nodes[d].Get(key)
				switch {
				case err != nil:
					st.Errors++
				case ok:
					st.Found++
				}
			}
		}
	}
	return st
}

func (h *harness) zipf(base Config) workload.Generator {
	h.t.Helper()
	gen, err := workload.NewZipfPartitions(workload.Config{
		Partitions: base.Partitions, DCs: len(h.nodes), Lambda: 5, Seed: 11,
	}, 1.1)
	if err != nil {
		h.t.Fatal(err)
	}
	return gen
}

// assertViewsAgree checks that all live nodes hold identical replica
// maps and primaries.
func (h *harness) assertViewsAgree() {
	h.t.Helper()
	var refMap [][]int
	var refPrim []int
	refIdx := -1
	for i, nd := range h.nodes {
		if h.dead[i] {
			continue
		}
		if refIdx < 0 {
			refMap, refPrim, refIdx = nd.ReplicaMap(), nd.Primaries(), i
			continue
		}
		if got := nd.ReplicaMap(); !reflect.DeepEqual(refMap, got) {
			h.t.Fatalf("replica maps diverge: node %d %v vs node %d %v", refIdx, refMap, i, got)
		}
		if got := nd.Primaries(); !reflect.DeepEqual(refPrim, got) {
			h.t.Fatalf("primaries diverge: node %d %v vs node %d %v", refIdx, refPrim, i, got)
		}
	}
}

func TestClusterConvergesToMinReplicas(t *testing.T) {
	for _, flavour := range flavours {
		t.Run(flavour, func(t *testing.T) {
			base := testConfig()
			h := newHarness(t, flavour, 3, base)
			gen := h.zipf(base)
			for e := 0; e < 6; e++ {
				h.replay(gen.Epoch(e))
				h.tick()
			}
			minRep := h.nodes[0].MinReplicas()
			if minRep < 2 {
				t.Fatalf("expected MinReplicas >= 2 from eq. (14), got %d", minRep)
			}
			for p := 0; p < base.Partitions; p++ {
				if got := h.nodes[0].ReplicaCount(p); got < minRep {
					t.Errorf("partition %d has %d replicas, want >= %d", p, got, minRep)
				}
			}
			h.assertViewsAgree()
		})
	}
}

func TestKillNodeTriggersReReplication(t *testing.T) {
	for _, flavour := range flavours {
		t.Run(flavour, func(t *testing.T) {
			base := testConfig()
			h := newHarness(t, flavour, 3, base)
			gen := h.zipf(base)
			for e := 0; e < 5; e++ {
				h.replay(gen.Epoch(e))
				h.tick()
			}
			const victim = 2
			h.kill(victim)
			// Suspicion needs SuspectAfter silent epochs, then branch 1 of
			// the policy restores the availability bound within one more.
			for e := 5; e < 5+base.SuspectAfter+3; e++ {
				h.replay(gen.Epoch(e))
				h.tick()
			}
			minRep := h.nodes[0].MinReplicas()
			for p := 0; p < base.Partitions; p++ {
				if got := h.nodes[0].ReplicaCount(p); got < minRep {
					t.Errorf("partition %d has %d replicas after failure, want >= %d", p, got, minRep)
				}
			}
			for _, prim := range h.nodes[0].Primaries() {
				if prim == victim {
					t.Errorf("dead node %d still primary somewhere", victim)
				}
				if prim < 0 {
					t.Errorf("partition left without a primary")
				}
			}
			for p, replicas := range h.nodes[0].ReplicaMap() {
				for _, s := range replicas {
					if s == victim {
						t.Errorf("partition %d still placed on dead node %d", p, victim)
					}
				}
			}
			h.assertViewsAgree()
		})
	}
}

// runScenario executes the reference seeded scenario on a fresh
// loopback cluster and returns the observable end state of node 0.
func runScenario(t *testing.T, seed uint64) ([][]int, []int, DecisionCounts) {
	t.Helper()
	base := testConfig()
	base.Seed = seed
	h := newHarness(t, "loopback", 3, base)
	gen := h.zipf(base)
	for e := 0; e < 5; e++ {
		h.replay(gen.Epoch(e))
		h.tick()
	}
	h.kill(2)
	for e := 5; e < 10; e++ {
		h.replay(gen.Epoch(e))
		h.tick()
	}
	h.assertViewsAgree()
	// Decision counts are per-primary (only a partition's primary
	// executes its structural actions), so nodes legitimately differ;
	// determinism is asserted on the cluster-wide sum instead.
	var counts DecisionCounts
	for _, nd := range h.nodes {
		c := nd.DecisionCounts()
		counts.Repl += c.Repl
		counts.Migr += c.Migr
		counts.Suicide += c.Suicide
	}
	return h.nodes[0].ReplicaMap(), h.nodes[0].Primaries(), counts
}

func TestSeededRunsAreDeterministic(t *testing.T) {
	m1, p1, c1 := runScenario(t, 42)
	m2, p2, c2 := runScenario(t, 42)
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("replica maps differ between identically-seeded runs")
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("primaries differ between identically-seeded runs")
	}
	if c1 != c2 {
		t.Errorf("decision counts differ between identically-seeded runs: %+v vs %+v", c1, c2)
	}
	// A different seed must be able to produce a different placement —
	// otherwise the assertions above are vacuous.
	m3, _, _ := runScenario(t, 1777)
	if reflect.DeepEqual(m1, m3) {
		t.Logf("note: seeds 42 and 1777 converged to the same placement")
	}
}

func TestPutGetAcrossNodes(t *testing.T) {
	for _, flavour := range flavours {
		t.Run(flavour, func(t *testing.T) {
			h := newHarness(t, flavour, 3, testConfig())
			key := PartitionKey(3, 12)
			if err := h.nodes[0].Put(key, []byte("hello")); err != nil {
				t.Fatal(err)
			}
			for i, nd := range h.nodes {
				v, ok, err := nd.Get(key)
				if err != nil {
					t.Fatalf("get via node %d: %v", i, err)
				}
				if !ok || !bytes.Equal(v, []byte("hello")) {
					t.Fatalf("get via node %d: ok=%v value=%q", i, ok, v)
				}
			}
			if _, ok, err := h.nodes[1].Get("absent-key"); err != nil || ok {
				t.Fatalf("absent key: ok=%v err=%v", ok, err)
			}
		})
	}
}

func TestWriteSurvivesPrimaryFailure(t *testing.T) {
	base := testConfig()
	h := newHarness(t, "loopback", 3, base)
	gen := h.zipf(base)
	// Converge so every partition has >= MinReplicas copies and writes
	// are synced to all holders.
	for e := 0; e < 5; e++ {
		h.replay(gen.Epoch(e))
		h.tick()
	}
	key := PartitionKey(0, base.Partitions)
	if err := h.nodes[0].Put(key, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	victim := h.nodes[0].Primaries()[h.nodes[0].PartitionOf(key)]
	h.kill(victim)
	for e := 5; e < 5+base.SuspectAfter+2; e++ {
		h.tick()
	}
	survivor := (victim + 1) % 3
	v, ok, err := h.nodes[survivor].Get(key)
	if err != nil || !ok || !bytes.Equal(v, []byte("durable")) {
		t.Fatalf("write lost after primary failure: ok=%v err=%v value=%q", ok, err, v)
	}
}

func TestRunEpochRequiresFlush(t *testing.T) {
	h := newHarness(t, "loopback", 3, testConfig())
	if err := h.nodes[0].RunEpoch(); !errors.Is(err, ErrNotFlushed) {
		t.Fatalf("RunEpoch without FlushEpoch: %v", err)
	}
}

func TestClosedNodeRefusesOperations(t *testing.T) {
	h := newHarness(t, "loopback", 3, testConfig())
	h.kill(1)
	if _, _, err := h.nodes[1].Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("get on closed node: %v", err)
	}
	if err := h.nodes[1].FlushEpoch(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush on closed node: %v", err)
	}
	if err := h.nodes[1].Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestPartitionKeyMapsToPartition(t *testing.T) {
	h := newHarness(t, "loopback", 3, testConfig())
	for p := 0; p < 12; p++ {
		key := PartitionKey(p, 12)
		if got := h.nodes[0].PartitionOf(key); got != p {
			t.Fatalf("PartitionKey(%d) maps to partition %d", p, got)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	peers := []Peer{{0, "a"}, {1, "b"}, {2, "c"}}
	good := DefaultConfig(1, peers)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(*Config){
		"too few peers":   func(c *Config) { c.Peers = peers[:2] },
		"duplicate id":    func(c *Config) { c.Peers = []Peer{{0, "a"}, {0, "b"}, {2, "c"}} },
		"missing addr":    func(c *Config) { c.Peers = []Peer{{0, "a"}, {1, ""}, {2, "c"}} },
		"self not listed": func(c *Config) { c.ID = 9 },
		"bad partitions":  func(c *Config) { c.Partitions = 0 },
		"bad tokens":      func(c *Config) { c.TokensPerServer = 0 },
		"bad capacity":    func(c *Config) { c.ReplicaCapacity = 0 },
		"bad suspect":     func(c *Config) { c.SuspectAfter = 0 },
		"bad alpha":       func(c *Config) { c.Thresholds.Alpha = 2 },
		"negative W":      func(c *Config) { c.WriteQuorum = -1 },
		"negative R":      func(c *Config) { c.ReadQuorum = -1 },
		// Eq. (14) places MinReplicas copies; a quorum above that bound
		// could never be met even on a healthy cluster.
		"W above availability floor": func(c *Config) { c.WriteQuorum = 99 },
		"R above availability floor": func(c *Config) { c.ReadQuorum = 99 },
	}
	for name, mutate := range cases {
		cfg := DefaultConfig(1, append([]Peer(nil), peers...))
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", name)
		}
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	cfg := DefaultConfig(0, []Peer{{0, "a"}, {1, "b"}, {2, "c"}})
	cfg.PolicyName = "nope"
	n, err := New(cfg, transport.NewLoopback().Endpoint("a"))
	if err == nil {
		n.Close()
		t.Fatal("unknown policy accepted")
	}
}

func TestDumpReportsPlacement(t *testing.T) {
	base := testConfig()
	h := newHarness(t, "loopback", 3, base)
	h.tick()
	d := h.nodes[0].Dump()
	if d.Epoch != 1 || d.Self != 0 || len(d.Partitions) != base.Partitions {
		t.Fatalf("dump shape wrong: %+v", d)
	}
	for _, pi := range d.Partitions {
		if pi.Primary < 0 || len(pi.Replicas) == 0 {
			t.Fatalf("partition %d unplaced in dump: %+v", pi.Partition, pi)
		}
	}
}
