package node

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/histcheck"
	"repro/internal/transport"
)

// quorumConfig returns testConfig with the given write/read quorums.
func quorumConfig(w, r int) Config {
	cfg := testConfig()
	cfg.WriteQuorum = w
	cfg.ReadQuorum = r
	return cfg
}

// TestQuorumMatrix exercises every valid W/R combination under the
// default availability floor (MinReplicas = 2), including the
// degenerate W=1/R=1 single-copy mode and the overlapping
// W+R > ReplicaCount combinations that guarantee a quorum read
// intersects the last quorum write.
func TestQuorumMatrix(t *testing.T) {
	cases := []struct{ w, r int }{
		{1, 1}, // degenerate: primary-only ack, local read
		{1, 2},
		{2, 1},
		{2, 2}, // W+R=4 > 2 holders: read always sees the last write
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("w%d_r%d", tc.w, tc.r), func(t *testing.T) {
			f, err := NewFleet(4, quorumConfig(tc.w, tc.r))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			for i := 0; i < 4; i++ {
				if err := f.Tick(); err != nil {
					t.Fatalf("tick %d: %v", i, err)
				}
			}
			for p := 0; p < 3; p++ {
				key := PartitionKey(p, 12)
				val := fmt.Sprintf("w%d.r%d.p%d", tc.w, tc.r, p)
				rcpt, err := f.Node(p % 4).PutQuorum(key, []byte(val))
				if err != nil {
					t.Fatalf("put %s: %v", key, err)
				}
				if len(rcpt.Acked) < tc.w {
					t.Fatalf("put %s: ack set %v below W=%d", key, rcpt.Acked, tc.w)
				}
				if rcpt.Version == 0 {
					t.Fatalf("put %s: receipt carries no version", key)
				}
				for i := 0; i < 4; i++ {
					v, ok, err := f.Node(i).Get(key)
					if err != nil || !ok || string(v) != val {
						t.Fatalf("node %d get %s: got (%q, %v, %v), want %q", i, key, v, ok, err, val)
					}
				}
			}
		})
	}
}

// severing fault wrapper: while *severed is set, drops every
// replication message (sync and snapshot) so writes cannot reach
// secondary holders.
func severWrap(severed *bool) WrapTransport {
	return func(i int, tr transport.Transport) transport.Transport {
		return transport.NewFault(tr, func(from, to string, m *transport.Message) transport.FaultAction {
			if *severed && (m.Kind == KindSync || m.Kind == KindStore) {
				return transport.FaultDrop
			}
			return transport.FaultDeliver
		})
	}
}

// opRecorder accumulates a histcheck history with strictly increasing
// interval timestamps, so directed node tests can assert convergence
// as "the recorded ops linearize" instead of spot-checking values.
type opRecorder struct {
	ops []histcheck.Op
	now int64
}

func (r *opRecorder) add(op histcheck.Op) {
	op.Invoke = r.now
	op.Return = r.now + 1
	r.now += 2
	r.ops = append(r.ops, op)
}

func (r *opRecorder) put(client int, key, val string, ver uint64, acked bool) {
	r.add(histcheck.Op{Client: client, Kind: histcheck.OpPut, Key: key, Value: val, Version: ver, Acked: acked})
}

func (r *opRecorder) get(client int, key, val string, ver uint64, found bool) {
	r.add(histcheck.Op{Client: client, Kind: histcheck.OpGet, Key: key, Value: val, Version: ver, Found: found})
}

// TestReadRepairHealsStaleHolder leaves one holder a version behind
// (its sync was lost and the write correctly failed its quorum), then
// shows a quorum read both returns the newest version and pushes it to
// the stale holder. Convergence is asserted through histcheck: the
// recorded history — acked v1, quorum-failed v2 (optional), the quorum
// read, and the stale holder's physical copy read back as a final op —
// must linearize, which it only does if the repair actually landed v2
// on the lagging holder.
func TestReadRepairHealsStaleHolder(t *testing.T) {
	severed := false
	f, err := NewFleetWrapped(4, quorumConfig(2, 2), severWrap(&severed))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 4; i++ {
		if err := f.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}

	key := PartitionKey(0, 12)
	primary := f.Node(0).Primaries()[0]
	holders := f.Node(0).ReplicaMap()[0]
	stale := -1
	for _, hIdx := range holders {
		if hIdx != primary {
			stale = hIdx
			break
		}
	}
	if stale < 0 {
		t.Fatalf("partition 0 has no secondary holder: %v", holders)
	}

	rec := &opRecorder{}
	rcpt1, err := f.Node(primary).PutQuorum(key, []byte("v1"))
	if err != nil {
		t.Fatalf("seed put: %v", err)
	}
	rec.put(primary, key, "v1", rcpt1.Version, true)
	_, v1ver, ok := f.Node(stale).LocalVersion(key)
	if !ok {
		t.Fatal("secondary holder missing the seeded value")
	}

	// The next write reaches only the primary: quorum correctly refused.
	severed = true
	rcpt, err := f.Node(primary).PutQuorum(key, []byte("v2"))
	if err == nil {
		t.Fatal("put met its quorum with replication severed")
	}
	if rcpt.Version <= v1ver {
		t.Fatalf("failed put's stamp %d not above prior version %d", rcpt.Version, v1ver)
	}
	rec.put(primary, key, "v2", rcpt.Version, false)
	severed = false

	// A quorum read from the primary sees v2 (self) vs v1 (stale
	// holder), returns the winner, and repairs the loser.
	v, ver, ok, err := f.Node(primary).GetVersioned(key)
	if err != nil || !ok {
		t.Fatalf("quorum read: got (%q, %v, %v)", v, ok, err)
	}
	rec.get(primary, key, string(v), ver, ok)

	// The stale holder's PHYSICAL copy, read back into the history as
	// one more op: if read-repair did not land v2 there, the history
	// shows an acked-v2-read followed by a v1 observation — which no
	// linearization can explain.
	sv, sver, sok := f.Node(stale).LocalVersion(key)
	rec.get(stale, key, string(sv), sver, sok)

	if vs := histcheck.CheckLinearizable(rec.ops); len(vs) != 0 {
		t.Fatalf("history after read-repair does not linearize:\n%v\nops:\n%v", vs, rec.ops)
	}

	// Teeth check: rewriting the final observation to the pre-repair
	// copy must make the same checker object — otherwise the assertion
	// above is vacuous.
	broken := make([]histcheck.Op, len(rec.ops))
	copy(broken, rec.ops)
	last := &broken[len(broken)-1]
	last.Value, last.Version = "v1", v1ver
	if vs := histcheck.CheckLinearizable(broken); len(vs) == 0 {
		t.Fatal("checker accepted the unrepaired history — the histcheck assertion has no teeth")
	}
}

// TestSyncFailuresAreSurfaced verifies the silent-fanout fix: replica
// syncs that never land are counted and visible on the primary, both
// through the accessor and the debug dump.
func TestSyncFailuresAreSurfaced(t *testing.T) {
	severed := false
	f, err := NewFleetWrapped(4, quorumConfig(1, 1), severWrap(&severed))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 4; i++ {
		if err := f.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}

	key := PartitionKey(0, 12)
	primary := f.Node(0).Primaries()[0]
	if got := f.Node(primary).SyncFails(); got != 0 {
		t.Fatalf("clean cluster already reports %d sync failures", got)
	}

	// W=1 acks on the primary alone, so the lost fan-out would be
	// silent without the counter.
	severed = true
	if _, err := f.Node(primary).PutQuorum(key, []byte("v")); err != nil {
		t.Fatalf("W=1 put should ack locally: %v", err)
	}
	severed = false
	got := f.Node(primary).SyncFails()
	if got == 0 {
		t.Fatal("lost replica syncs not counted")
	}
	if d := f.Node(primary).Dump(); d.SyncFails != got {
		t.Fatalf("dump reports %d sync failures, accessor %d", d.SyncFails, got)
	}
}

// TestQuorumAboveFloorRejectedAtBoot covers the runtime end of the
// validation: a fleet whose quorum exceeds the eq. (14) placement
// floor must refuse to start rather than wedge every write.
func TestQuorumAboveFloorRejectedAtBoot(t *testing.T) {
	f, err := NewFleet(4, quorumConfig(3, 1))
	if err == nil {
		f.Close()
		t.Fatal("fleet started with W above the availability floor")
	}
	if !strings.Contains(err.Error(), "quorum") {
		t.Fatalf("rejected for the wrong reason: %v", err)
	}
}
