package node

import (
	"sync"

	"repro/internal/durable"
)

// entry is one stored record: the value bytes and the per-key version
// the primary stamped when the write was accepted. Versions order
// divergent copies of the same key across holders: quorum reads pick
// the highest, and apply paths never let a lower version clobber a
// higher one.
type entry struct {
	val []byte
	ver uint64
}

// versionEpochShift positions the current epoch in a fresh version's
// high bits: stampPut issues max(maxVer, epoch<<versionEpochShift)+1.
// The epoch term keeps versions monotone across primary failover — a
// successor is only promoted after at least one full suspicion epoch,
// so its first stamp (at a strictly later epoch) exceeds anything the
// dead primary issued, even stamps the successor never saw — while the
// max(maxVer, ·) term keeps them monotone within an epoch. The shift
// bounds writes at 2^20 per partition per epoch before the counter
// could spill into the next epoch's range; at the paper's traffic
// scales that is orders of magnitude of headroom.
const versionEpochShift = 20

// Inbound transfer-session caps, matching the durable engine's mirror
// caps exactly: the store's runtime session list and the engine's
// recovered one must evolve identically, or a restart would recover
// different sessions than the live node was tracking.
const (
	maxInboundSessions = 4
	maxDoneSessions    = 8
)

// store is the node's partitioned KV data plus the per-partition
// traffic counters for the epoch in flight. Partition maps exist for
// every partition regardless of whether the node currently holds a
// replica — holding is a property of the view, and an empty map for a
// non-held partition costs nothing.
//
// When eng is non-nil the store is durably backed: every mutation
// appends to the partition's write-ahead log BEFORE touching the
// in-memory map, and an append failure refuses the mutation — the
// quorum plane never acks a write the disk did not take. Values are
// shared by reference between the map and the engine's recovery
// mirror; both sides treat them as immutable (every apply installs a
// fresh copy).
//
// resident tracks whether the partition's local content is
// authoritative: view membership and store content move at different
// speeds (a drop order lands an epoch before the placement claim that
// removes the holder from peer views, and a claim can add a holder an
// epoch before its snapshot arrives), so "the view says I hold it"
// does not imply "my data is complete". The read path serves locally
// only from resident partitions and forwards everything else to the
// primary, and sync application is gated on residency so a delayed
// KindSync cannot resurrect records in a dropped partition. A fresh
// store at node birth is resident everywhere — the cluster starts
// empty, so empty content IS authoritative — while a post-restart
// store (see newBlankStore) is resident nowhere until snapshots
// rebuild it.
//
// maxVer is the highest version this shard has ever observed for any
// key; stampPut derives the next version from it. It survives drop so
// a holder that loses and later regains a partition never re-issues a
// version it already handed out.
//
// Concurrency: every partition carries its own mutex, so data-plane
// requests for different partitions never contend and requests for the
// same partition serialise only around the map touch. Lock hierarchy:
// a partition lock may be taken while holding Node.mu (either mode),
// never the reverse. The engine's per-partition lock is a leaf below
// the shard lock.
type store struct {
	parts []partitionShard
	eng   *durable.Engine // nil = pure in-memory
}

type partitionShard struct {
	mu       sync.Mutex
	data     map[string]entry
	bytes    int // sum of len(key)+len(val) over data
	resident bool
	maxVer   uint64
	counters partitionCounters
	// inbound is the partition's live inbound transfer sessions; done
	// remembers recently completed session ids so a replayed begin/done
	// is answered "already complete" instead of re-running the session.
	inbound []durable.Session
	done    []uint64
	// holds counts outbound transfer sessions currently freezing this
	// partition's snapshot (the lease the source holds so compaction
	// cannot GC state an in-flight transfer still needs).
	holds int
	// tree is the partition's live anti-entropy digest, maintained
	// incrementally by install/clear (O(1) per write). Reading it costs
	// nothing, which is what lets top digests piggyback on every stats
	// broadcast and transfer probes answer with a digest without
	// rehashing the partition.
	tree AETree
}

func newStore(partitions int) *store {
	s := &store{parts: make([]partitionShard, partitions)}
	for p := range s.parts {
		s.parts[p].data = make(map[string]entry)
		s.parts[p].resident = true
		s.parts[p].counters.partition = p
	}
	return s
}

// newBlankStore is newStore for a restarted node: all data was lost,
// so no partition is resident until a snapshot restores it.
func newBlankStore(partitions int) *store {
	s := newStore(partitions)
	for p := range s.parts {
		s.parts[p].resident = false
	}
	return s
}

// newDurableStore builds the store from a durable engine's recovered
// state. trustResident distinguishes first boot from rejoin: a node
// opening its data dir at birth serves its recovered residency as-is,
// while a node restarting into a cluster that moved on must not serve
// possibly-stale recovered content — every partition rejoins
// non-resident (like newBlankStore) but KEEPS the recovered data, so
// the rejoin path can push it back to the current holders instead of
// losing it.
func newDurableStore(partitions int, eng *durable.Engine, trustResident bool) *store {
	s := newStore(partitions)
	s.eng = eng
	for p := range s.parts {
		ps := &s.parts[p]
		rec := eng.Recovered(p)
		for _, e := range rec.Entries {
			ps.install(e.Key, entry{val: e.Val, ver: e.Ver})
		}
		ps.maxVer = rec.MaxVer
		ps.resident = rec.Resident && trustResident
		ps.inbound = append(ps.inbound, rec.Sessions...)
		ps.done = append(ps.done, rec.Done...)
	}
	return s
}

// install puts one entry into the shard map, keeping the byte
// accounting and the live digest tree exact. Callers hold the shard
// lock.
func (ps *partitionShard) install(key string, e entry) {
	if old, ok := ps.data[key]; ok {
		ps.bytes -= len(key) + len(old.val)
		ps.tree.Apply(key, old.ver, old.val) // XOR removes the old record
	}
	ps.bytes += len(key) + len(e.val)
	ps.tree.Apply(key, e.ver, e.val)
	ps.data[key] = e
}

// clear empties the shard map. Callers hold the shard lock.
func (ps *partitionShard) clear() {
	ps.data = make(map[string]entry)
	ps.bytes = 0
	ps.tree = AETree{}
}

func (s *store) get(p int, key string) ([]byte, uint64, bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	e, ok := ps.data[key]
	ps.mu.Unlock()
	// Values are never mutated in place (every apply installs a fresh
	// copy), so the returned slice stays stable after the lock drops.
	return e.val, e.ver, ok
}

// stampPut is the primary's write apply: it assigns the key the next
// version — strictly above both everything this shard has seen and
// epochBase (the current epoch shifted into the version's high bits),
// so versions stay monotone across primary failover as long as
// suspicion takes at least one epoch — installs the value, and returns
// the stamped version for the sync fan-out. ok=false means the durable
// engine refused the append: nothing was applied and the write must
// not be acked.
func (s *store) stampPut(p int, key string, value []byte, epochBase uint64) (uint64, bool) {
	v := make([]byte, len(value))
	copy(v, value)
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ver := ps.maxVer
	if epochBase > ver {
		ver = epochBase
	}
	ver++
	if s.eng != nil {
		if err := s.eng.AppendPut(p, key, ver, v); err != nil {
			return 0, false
		}
	}
	ps.maxVer = ver
	ps.install(key, entry{val: v, ver: ver})
	return ver, true
}

// applySync applies one replicated write at a holder. acked reports
// whether this holder now durably has version ver or newer — true both
// when the write applied and when an equal-or-newer version was
// already present (a replayed or reordered sync is a success, not a
// conflict). A non-resident partition refuses (acked=false): its
// content is not authoritative, and applying would let a delayed sync
// resurrect records the same epoch's drop discarded. A durable engine
// refusing the append also refuses the ack.
func (s *store) applySync(p int, key string, value []byte, ver uint64) (acked bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.resident {
		return false
	}
	if e, ok := ps.data[key]; ok && e.ver >= ver {
		return true
	}
	v := make([]byte, len(value))
	copy(v, value)
	if s.eng != nil {
		if err := s.eng.AppendPut(p, key, ver, v); err != nil {
			return false
		}
	}
	if ver > ps.maxVer {
		ps.maxVer = ver
	}
	ps.install(key, entry{val: v, ver: ver})
	return true
}

// mergeEntriesLocked folds an entry block into the shard, version-aware
// per key: a record replaces the local one only if strictly newer, so a
// replayed or delayed transfer can never roll a key back. Callers hold
// the shard lock. Returns how many entries actually won their version
// race and were installed. The first engine refusal aborts the merge —
// the entries already applied are durable and version-gated, so a
// partial merge is safe to leave behind.
func (s *store) mergeEntriesLocked(p int, ps *partitionShard, entries []kvEntry) (int, error) {
	merged := 0
	for _, in := range entries {
		if e, ok := ps.data[in.key]; ok && e.ver >= in.ver {
			continue
		}
		if s.eng != nil {
			if err := s.eng.AppendPut(p, in.key, in.ver, in.val); err != nil {
				return merged, err
			}
		}
		if in.ver > ps.maxVer {
			ps.maxVer = in.ver
		}
		ps.install(in.key, entry{val: in.val, ver: in.ver})
		merged++
	}
	return merged, nil
}

// mergeSnapshot folds a one-frame transferred snapshot into the
// partition. The partition becomes resident — after the merge its
// content covers at least everything the sender had.
func (s *store) mergeSnapshot(p int, entries []kvEntry) error {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if _, err := s.mergeEntriesLocked(p, ps, entries); err != nil {
		return err
	}
	if s.eng != nil && !ps.resident {
		if err := s.eng.AppendResident(p); err != nil {
			return err
		}
	}
	ps.resident = true
	return nil
}

// mergeResident folds an entry block into the partition only when its
// local content is already authoritative — the anti-entropy repair
// path. Unlike mergeSnapshot it never flips residency: "repairing" a
// non-resident copy would bless partial data as a full one. applied is
// false when the partition was not resident and nothing was touched.
func (s *store) mergeResident(p int, entries []kvEntry) (merged int, applied bool, err error) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.resident {
		return 0, false, nil
	}
	merged, err = s.mergeEntriesLocked(p, ps, entries)
	return merged, true, err
}

// beginInbound opens (or re-finds) an inbound transfer session and
// returns the next chunk the target wants: 0 for a fresh session, the
// recovered cursor for a known one, xferComplete for a replayed begin
// of a finished session. srcMaxVer folds the source's version
// watermark in up front so watermark-only state transfers even if
// every chunk loses the version race. prevVer and wasResident report
// the shard's state from BEFORE that adoption — the begin reply must
// carry the pre-session watermark, because the adopted one no longer
// describes what the target's content covers.
func (s *store) beginInbound(p int, sid uint64, total uint32, markResident bool, srcMaxVer uint64) (next, prevVer uint64, wasResident bool, err error) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	prevVer, wasResident = ps.maxVer, ps.resident
	for _, d := range ps.done {
		if d == sid {
			return xferComplete, prevVer, wasResident, nil
		}
	}
	if srcMaxVer > ps.maxVer {
		if s.eng != nil {
			if err := s.eng.AppendMaxVer(p, srcMaxVer); err != nil {
				return 0, prevVer, wasResident, err
			}
		}
		ps.maxVer = srcMaxVer
	}
	for i := range ps.inbound {
		if ps.inbound[i].ID == sid {
			return uint64(ps.inbound[i].Next), prevVer, wasResident, nil
		}
	}
	sess := durable.Session{ID: sid, Next: 0, Total: total, MarkResident: markResident}
	if s.eng != nil {
		if err := s.eng.AppendCursor(p, sess); err != nil {
			return 0, prevVer, wasResident, err
		}
	}
	ps.setInboundLocked(sess)
	return 0, prevVer, wasResident, nil
}

// applyChunk applies one transfer chunk. known=false means the session
// is not (or no longer) tracked and the source must re-begin. A chunk
// that is not the exact next one is acked without applying — the
// cursor only moves forward, so duplicated or reordered chunks are
// no-ops and repeated invocation converges monotonically.
func (s *store) applyChunk(p int, sid uint64, idx uint32, entries []kvEntry) (next uint64, known bool, err error) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, d := range ps.done {
		if d == sid {
			return xferComplete, true, nil
		}
	}
	for i := range ps.inbound {
		sess := &ps.inbound[i]
		if sess.ID != sid {
			continue
		}
		if idx != sess.Next {
			return uint64(sess.Next), true, nil
		}
		if _, err := s.mergeEntriesLocked(p, ps, entries); err != nil {
			return 0, true, err
		}
		adv := *sess
		adv.Next++
		if s.eng != nil {
			if err := s.eng.AppendCursor(p, adv); err != nil {
				return 0, true, err
			}
		}
		*sess = adv
		return uint64(sess.Next), true, nil
	}
	return 0, false, nil
}

// finishInbound closes an inbound session. complete=false (with the
// cursor) means chunks are still missing; known=false means the
// session is untracked and the source must re-begin. Completion
// applies the session's residency side effect and retires the id so a
// replayed done (or begin) is idempotent.
func (s *store) finishInbound(p int, sid uint64) (next uint64, known, complete bool, err error) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, d := range ps.done {
		if d == sid {
			return xferComplete, true, true, nil
		}
	}
	for i := range ps.inbound {
		sess := ps.inbound[i]
		if sess.ID != sid {
			continue
		}
		if sess.Next != sess.Total {
			return uint64(sess.Next), true, false, nil
		}
		if s.eng != nil {
			if sess.MarkResident && !ps.resident {
				if err := s.eng.AppendResident(p); err != nil {
					return 0, true, false, err
				}
			}
			if err := s.eng.AppendSessionDone(p, sid); err != nil {
				return 0, true, false, err
			}
		}
		if sess.MarkResident {
			ps.resident = true
		}
		ps.retireInboundLocked(sid)
		return xferComplete, true, true, nil
	}
	return 0, false, false, nil
}

// inboundCursor answers a resume probe: where does the target's cursor
// stand for this session?
func (s *store) inboundCursor(p int, sid uint64) (next uint64, known bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, d := range ps.done {
		if d == sid {
			return xferComplete, true
		}
	}
	for i := range ps.inbound {
		if ps.inbound[i].ID == sid {
			return uint64(ps.inbound[i].Next), true
		}
	}
	return 0, false
}

// setInboundLocked upserts a session record, evicting the oldest past
// the cap — the same policy as the durable engine's mirror, so the
// recovered list matches the live one.
func (ps *partitionShard) setInboundLocked(sess durable.Session) {
	for i := range ps.inbound {
		if ps.inbound[i].ID == sess.ID {
			ps.inbound[i] = sess
			return
		}
	}
	ps.inbound = append(ps.inbound, sess)
	if len(ps.inbound) > maxInboundSessions {
		ps.inbound = ps.inbound[len(ps.inbound)-maxInboundSessions:]
	}
}

// retireInboundLocked moves a session to the done list (same eviction
// policy as the engine mirror).
func (ps *partitionShard) retireInboundLocked(sid uint64) {
	for i := range ps.inbound {
		if ps.inbound[i].ID == sid {
			ps.inbound = append(ps.inbound[:i], ps.inbound[i+1:]...)
			break
		}
	}
	ps.done = append(ps.done, sid)
	if len(ps.done) > maxDoneSessions {
		ps.done = ps.done[len(ps.done)-maxDoneSessions:]
	}
}

// holdSnapshot freezes the partition against compaction while an
// outbound transfer session needs its state stable; releaseHold drops
// the lease (running any deferred compaction).
func (s *store) holdSnapshot(p int) {
	ps := &s.parts[p]
	ps.mu.Lock()
	ps.holds++
	ps.mu.Unlock()
	if s.eng != nil {
		s.eng.Hold(p)
	}
}

func (s *store) releaseHold(p int) {
	ps := &s.parts[p]
	ps.mu.Lock()
	ps.holds--
	ps.mu.Unlock()
	if s.eng != nil {
		s.eng.Release(p)
	}
}

// holdCount reports the partition's outstanding snapshot holds.
func (s *store) holdCount(p int) int {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.holds
}

// arriveAndTryServe is the read path's single visit to partition p:
// it records the arrival (entry vs transit) and, when this node may
// serve the key under the paper's capacity accounting, performs the
// lookup — all under one acquisition of the partition lock so the
// capacity check and the served/overflow bump are atomic. served
// reports whether the query was handled here; when false the caller
// must forward it (not a holder, not resident, or over capacity and
// not the primary).
func (s *store) arriveAndTryServe(p int, key string, entered bool, capacity int, isPrimary, hasReplica bool) (v []byte, ver uint64, ok, served bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	c := &ps.counters
	if entered {
		c.origin++
	} else {
		c.transit++
	}
	if !hasReplica || !(ps.resident || isPrimary) {
		return nil, 0, false, false
	}
	underCap := c.served < capacity
	if !underCap && !isPrimary {
		return nil, 0, false, false
	}
	c.served++
	if !underCap {
		c.overflow++
	}
	e, ok := ps.data[key]
	return e.val, e.ver, ok, true
}

// localVersion answers a KindVer probe: the physically stored value
// and version for one key, independent of capacity accounting.
// resident=false means this holder has no authoritative answer.
func (s *store) localVersion(p int, key string) (v []byte, ver uint64, ok, resident bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.resident {
		return nil, 0, false, false
	}
	e, ok := ps.data[key]
	return e.val, e.ver, ok, true
}

// resetEmpty restores the partition to an authoritative empty state —
// the lost-data reseed path, where every holder is gone and the
// primary re-adopts the partition as empty. maxVer is kept so any
// still-circulating version number stays below future stamps. Inbound
// transfer sessions (and the done-list) die with the data, exactly as
// in drop. The engine append failure mode is sticky engine-side: a
// reset the disk missed surfaces on the next acked write, not here.
func (s *store) resetEmpty(p int) {
	ps := &s.parts[p]
	ps.mu.Lock()
	if s.eng != nil {
		_ = s.eng.AppendReset(p) // sticky engine error; next ack-path append surfaces it
	}
	ps.clear()
	ps.resident = true
	ps.inbound, ps.done = nil, nil
	ps.mu.Unlock()
}

// drop discards the partition's data (migration victim, suicide). The
// partition stops being resident: until another snapshot arrives, any
// content is someone else's responsibility. maxVer survives so a
// future re-adoption of the partition never re-issues old versions.
//
// Inbound transfer sessions are invalidated along with the data: the
// chunks a live session merged before the drop are gone, so letting it
// resume at its cursor and complete would mark the partition resident
// with only a suffix of the source snapshot — silently missing acked
// keys. With the sessions (and the done-list) cleared, a post-drop
// chunk/done/begin answers StatusNotFound or restarts at chunk 0, and
// the source re-ships the whole snapshot onto the emptied partition.
// The engine's drop record clears its session mirror the same way, so
// a restart recovers the invalidation too.
func (s *store) drop(p int) {
	ps := &s.parts[p]
	ps.mu.Lock()
	if s.eng != nil {
		_ = s.eng.AppendDrop(p) // sticky engine error; next ack-path append surfaces it
	}
	ps.clear()
	ps.resident = false
	ps.inbound, ps.done = nil, nil
	ps.mu.Unlock()
}

func (s *store) keys(p int) int {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.data)
}

// sizeBytes reports the partition's payload size (keys + values), the
// quantity the one-frame-vs-chunked shipping threshold compares.
func (s *store) sizeBytes(p int) int {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.bytes
}

// isResident reports whether the partition's local content is
// authoritative.
func (s *store) isResident(p int) bool {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.resident
}

// snapshotEntries flattens the partition into the canonical ascending-
// key entry slice plus the shard's version watermark — the frozen
// source state an outbound transfer session chunks from. Values are
// shared by reference (immutable by convention).
func (s *store) snapshotEntries(p int) ([]kvEntry, uint64) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return sortedEntries(ps.data), ps.maxVer
}

// snapshotEntriesAbove freezes only the entries strictly above a
// version watermark — the delta-transfer fast path when the target's
// digest proves its below-watermark content identical. On a durable
// store the iteration runs against the engine's recovery mirror
// (EntriesAbove), the seam where a future paged store will stream
// from disk instead of RAM; the shard lock still brackets it so the
// returned maxVer describes the same instant as the entry set.
func (s *store) snapshotEntriesAbove(p int, ver uint64) ([]kvEntry, uint64) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if s.eng != nil {
		rec := s.eng.EntriesAbove(p, ver)
		entries := make([]kvEntry, 0, len(rec))
		for _, e := range rec {
			entries = append(entries, kvEntry{key: e.Key, ver: e.Ver, val: e.Val})
		}
		return entries, ps.maxVer
	}
	var entries []kvEntry
	for _, e := range sortedEntries(ps.data) {
		if e.ver > ver {
			entries = append(entries, e)
		}
	}
	return entries, ps.maxVer
}

// transferInfo answers a delta-planning probe in O(1): the partition's
// version watermark, residency, and — for resident partitions — its
// live top digest. Non-resident content is not authoritative, so no
// digest is offered and the source must fall back to a full snapshot.
func (s *store) transferInfo(p int) (maxVer uint64, resident bool, leaves []uint64, root uint64) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.resident {
		return ps.maxVer, false, nil, 0
	}
	return ps.maxVer, true, ps.tree.Leaves(), ps.tree.Root()
}

// aeDigest reads the partition's live top digest (resident partitions
// only — a partial tree would compare garbage).
func (s *store) aeDigest(p int) (leaves []uint64, root uint64, resident bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.resident {
		return nil, 0, false
	}
	return ps.tree.Leaves(), ps.tree.Root(), true
}

// aeSubLeaves reads the live sub-leaf vectors for a set of top-level
// buckets under one lock acquisition.
func (s *store) aeSubLeaves(p int, tops []int) [][]uint64 {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	subs := make([][]uint64, len(tops))
	for i, b := range tops {
		subs[i] = ps.tree.SubLeaves(b)
	}
	return subs
}

// getEntries looks up a batch of keys (the KindAEFetch serving path),
// preserving request order; absent keys are skipped.
func (s *store) getEntries(p int, keys []string) []kvEntry {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]kvEntry, 0, len(keys))
	for _, k := range keys {
		if e, ok := ps.data[k]; ok {
			out = append(out, kvEntry{key: k, ver: e.ver, val: e.val})
		}
	}
	return out
}

// encodeSnapshot serialises the partition's content for a one-frame
// KindStore transfer.
func (s *store) encodeSnapshot(p int) []byte {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return appendSnapshot(nil, ps.data)
}

// flushCounters snapshots every partition's non-zero counters and
// resets them, so each query is reported in exactly one epoch: queries
// arriving after the flush count toward the next one.
func (s *store) flushCounters() []partitionCounters {
	var out []partitionCounters
	for p := range s.parts {
		ps := &s.parts[p]
		ps.mu.Lock()
		c := ps.counters
		ps.counters = partitionCounters{partition: p}
		ps.mu.Unlock()
		if c.origin|c.transit|c.served|c.overflow != 0 {
			out = append(out, c)
		}
	}
	return out
}
