package node

// store is the node's in-memory partitioned KV data plus the
// per-partition traffic counters for the epoch in flight. Partition
// maps exist for every partition regardless of whether the node
// currently holds a replica — holding is a property of the view, and
// an empty map for a non-held partition costs nothing.
//
// store is not safe for concurrent use; Node.mu guards it.
type store struct {
	data     []map[string][]byte
	counters []partitionCounters
}

func newStore(partitions int) *store {
	s := &store{
		data:     make([]map[string][]byte, partitions),
		counters: make([]partitionCounters, partitions),
	}
	for p := range s.data {
		s.data[p] = make(map[string][]byte)
		s.counters[p].partition = p
	}
	return s
}

func (s *store) get(p int, key string) ([]byte, bool) {
	v, ok := s.data[p][key]
	return v, ok
}

func (s *store) put(p int, key string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	s.data[p][key] = v
}

// replace installs a transferred snapshot as the partition's data.
func (s *store) replace(p int, data map[string][]byte) {
	s.data[p] = data
}

// drop discards the partition's data (migration victim, suicide).
func (s *store) drop(p int) {
	s.data[p] = make(map[string][]byte)
}

func (s *store) keys(p int) int { return len(s.data[p]) }

// flushCounters snapshots every partition's non-zero counters and
// resets them, so each query is reported in exactly one epoch: queries
// arriving after the flush count toward the next one.
func (s *store) flushCounters() []partitionCounters {
	var out []partitionCounters
	for p := range s.counters {
		c := s.counters[p]
		if c.origin|c.transit|c.served|c.overflow != 0 {
			out = append(out, c)
		}
		s.counters[p] = partitionCounters{partition: p}
	}
	return out
}
