package node

import "sync"

// entry is one stored record: the value bytes and the per-key version
// the primary stamped when the write was accepted. Versions order
// divergent copies of the same key across holders: quorum reads pick
// the highest, and apply paths never let a lower version clobber a
// higher one.
type entry struct {
	val []byte
	ver uint64
}

// versionEpochShift positions the current epoch in a fresh version's
// high bits: stampPut issues max(maxVer, epoch<<versionEpochShift)+1.
// The epoch term keeps versions monotone across primary failover — a
// successor is only promoted after at least one full suspicion epoch,
// so its first stamp (at a strictly later epoch) exceeds anything the
// dead primary issued, even stamps the successor never saw — while the
// max(maxVer, ·) term keeps them monotone within an epoch. The shift
// bounds writes at 2^20 per partition per epoch before the counter
// could spill into the next epoch's range; at the paper's traffic
// scales that is orders of magnitude of headroom.
const versionEpochShift = 20

// store is the node's in-memory partitioned KV data plus the
// per-partition traffic counters for the epoch in flight. Partition
// maps exist for every partition regardless of whether the node
// currently holds a replica — holding is a property of the view, and
// an empty map for a non-held partition costs nothing.
//
// resident tracks whether the partition's local content is
// authoritative: view membership and store content move at different
// speeds (a drop order lands an epoch before the placement claim that
// removes the holder from peer views, and a claim can add a holder an
// epoch before its snapshot arrives), so "the view says I hold it"
// does not imply "my data is complete". The read path serves locally
// only from resident partitions and forwards everything else to the
// primary, and sync application is gated on residency so a delayed
// KindSync cannot resurrect records in a dropped partition. A fresh
// store at node birth is resident everywhere — the cluster starts
// empty, so empty content IS authoritative — while a post-restart
// store (see newBlankStore) is resident nowhere until snapshots
// rebuild it.
//
// maxVer is the highest version this shard has ever observed for any
// key; stampPut derives the next version from it. It survives drop so
// a holder that loses and later regains a partition never re-issues a
// version it already handed out.
//
// Concurrency: every partition carries its own mutex, so data-plane
// requests for different partitions never contend and requests for the
// same partition serialise only around the map touch. Lock hierarchy:
// a partition lock may be taken while holding Node.mu (either mode),
// never the reverse.
type store struct {
	parts []partitionShard
}

type partitionShard struct {
	mu       sync.Mutex
	data     map[string]entry
	resident bool
	maxVer   uint64
	counters partitionCounters
}

func newStore(partitions int) *store {
	s := &store{parts: make([]partitionShard, partitions)}
	for p := range s.parts {
		s.parts[p].data = make(map[string]entry)
		s.parts[p].resident = true
		s.parts[p].counters.partition = p
	}
	return s
}

// newBlankStore is newStore for a restarted node: all data was lost,
// so no partition is resident until a snapshot restores it.
func newBlankStore(partitions int) *store {
	s := newStore(partitions)
	for p := range s.parts {
		s.parts[p].resident = false
	}
	return s
}

func (s *store) get(p int, key string) ([]byte, uint64, bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	e, ok := ps.data[key]
	ps.mu.Unlock()
	// Values are never mutated in place (every apply installs a fresh
	// copy), so the returned slice stays stable after the lock drops.
	return e.val, e.ver, ok
}

// stampPut is the primary's write apply: it assigns the key the next
// version — strictly above both everything this shard has seen and
// epochBase (the current epoch shifted into the version's high bits),
// so versions stay monotone across primary failover as long as
// suspicion takes at least one epoch — installs the value, and returns
// the stamped version for the sync fan-out.
func (s *store) stampPut(p int, key string, value []byte, epochBase uint64) uint64 {
	v := make([]byte, len(value))
	copy(v, value)
	ps := &s.parts[p]
	ps.mu.Lock()
	ver := ps.maxVer
	if epochBase > ver {
		ver = epochBase
	}
	ver++
	ps.maxVer = ver
	ps.data[key] = entry{val: v, ver: ver}
	ps.mu.Unlock()
	return ver
}

// applySync applies one replicated write at a holder. acked reports
// whether this holder now durably has version ver or newer — true both
// when the write applied and when an equal-or-newer version was
// already present (a replayed or reordered sync is a success, not a
// conflict). A non-resident partition refuses (acked=false): its
// content is not authoritative, and applying would let a delayed sync
// resurrect records the same epoch's drop discarded.
func (s *store) applySync(p int, key string, value []byte, ver uint64) (acked bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.resident {
		return false
	}
	if ver > ps.maxVer {
		ps.maxVer = ver
	}
	if e, ok := ps.data[key]; ok && e.ver >= ver {
		return true
	}
	v := make([]byte, len(value))
	copy(v, value)
	ps.data[key] = entry{val: v, ver: ver}
	return true
}

// mergeSnapshot folds a transferred snapshot into the partition,
// version-aware per key: a snapshot record replaces the local one only
// if strictly newer, so a replayed or delayed KindStore can never roll
// a key back. The partition becomes resident — after the merge its
// content covers at least everything the sender had.
func (s *store) mergeSnapshot(p int, entries []kvEntry) {
	ps := &s.parts[p]
	ps.mu.Lock()
	for _, in := range entries {
		if in.ver > ps.maxVer {
			ps.maxVer = in.ver
		}
		if e, ok := ps.data[in.key]; ok && e.ver >= in.ver {
			continue
		}
		ps.data[in.key] = entry{val: in.val, ver: in.ver}
	}
	ps.resident = true
	ps.mu.Unlock()
}

// arriveAndTryServe is the read path's single visit to partition p:
// it records the arrival (entry vs transit) and, when this node may
// serve the key under the paper's capacity accounting, performs the
// lookup — all under one acquisition of the partition lock so the
// capacity check and the served/overflow bump are atomic. served
// reports whether the query was handled here; when false the caller
// must forward it (not a holder, not resident, or over capacity and
// not the primary).
func (s *store) arriveAndTryServe(p int, key string, entered bool, capacity int, isPrimary, hasReplica bool) (v []byte, ver uint64, ok, served bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	c := &ps.counters
	if entered {
		c.origin++
	} else {
		c.transit++
	}
	if !hasReplica || !(ps.resident || isPrimary) {
		return nil, 0, false, false
	}
	underCap := c.served < capacity
	if !underCap && !isPrimary {
		return nil, 0, false, false
	}
	c.served++
	if !underCap {
		c.overflow++
	}
	e, ok := ps.data[key]
	return e.val, e.ver, ok, true
}

// localVersion answers a KindVer probe: the physically stored value
// and version for one key, independent of capacity accounting.
// resident=false means this holder has no authoritative answer.
func (s *store) localVersion(p int, key string) (v []byte, ver uint64, ok, resident bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.resident {
		return nil, 0, false, false
	}
	e, ok := ps.data[key]
	return e.val, e.ver, ok, true
}

// resetEmpty restores the partition to an authoritative empty state —
// the lost-data reseed path, where every holder is gone and the
// primary re-adopts the partition as empty. maxVer is kept so any
// still-circulating version number stays below future stamps.
func (s *store) resetEmpty(p int) {
	ps := &s.parts[p]
	ps.mu.Lock()
	ps.data = make(map[string]entry)
	ps.resident = true
	ps.mu.Unlock()
}

// drop discards the partition's data (migration victim, suicide). The
// partition stops being resident: until another snapshot arrives, any
// content is someone else's responsibility. maxVer survives so a
// future re-adoption of the partition never re-issues old versions.
func (s *store) drop(p int) {
	ps := &s.parts[p]
	ps.mu.Lock()
	ps.data = make(map[string]entry)
	ps.resident = false
	ps.mu.Unlock()
}

func (s *store) keys(p int) int {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.data)
}

// encodeSnapshot serialises the partition's content for a KindStore
// transfer.
func (s *store) encodeSnapshot(p int) []byte {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return appendSnapshot(nil, ps.data)
}

// flushCounters snapshots every partition's non-zero counters and
// resets them, so each query is reported in exactly one epoch: queries
// arriving after the flush count toward the next one.
func (s *store) flushCounters() []partitionCounters {
	var out []partitionCounters
	for p := range s.parts {
		ps := &s.parts[p]
		ps.mu.Lock()
		c := ps.counters
		ps.counters = partitionCounters{partition: p}
		ps.mu.Unlock()
		if c.origin|c.transit|c.served|c.overflow != 0 {
			out = append(out, c)
		}
	}
	return out
}
