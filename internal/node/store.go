package node

// store is the node's in-memory partitioned KV data plus the
// per-partition traffic counters for the epoch in flight. Partition
// maps exist for every partition regardless of whether the node
// currently holds a replica — holding is a property of the view, and
// an empty map for a non-held partition costs nothing.
//
// resident tracks whether the partition's local content is
// authoritative: view membership and store content move at different
// speeds (a drop order lands an epoch before the placement claim that
// removes the holder from peer views, and a claim can add a holder an
// epoch before its snapshot arrives), so "the view says I hold it"
// does not imply "my data is complete". The read path serves locally
// only from resident partitions and forwards everything else to the
// primary. A fresh store at node birth is resident everywhere — the
// cluster starts empty, so empty content IS authoritative — while a
// post-restart store (see newBlankStore) is resident nowhere until
// snapshots rebuild it.
//
// store is not safe for concurrent use; Node.mu guards it.
type store struct {
	data     []map[string][]byte
	resident []bool
	counters []partitionCounters
}

func newStore(partitions int) *store {
	s := &store{
		data:     make([]map[string][]byte, partitions),
		resident: make([]bool, partitions),
		counters: make([]partitionCounters, partitions),
	}
	for p := range s.data {
		s.data[p] = make(map[string][]byte)
		s.resident[p] = true
		s.counters[p].partition = p
	}
	return s
}

// newBlankStore is newStore for a restarted node: all data was lost,
// so no partition is resident until a snapshot restores it.
func newBlankStore(partitions int) *store {
	s := newStore(partitions)
	for p := range s.resident {
		s.resident[p] = false
	}
	return s
}

func (s *store) get(p int, key string) ([]byte, bool) {
	v, ok := s.data[p][key]
	return v, ok
}

func (s *store) put(p int, key string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	s.data[p][key] = v
}

// replace installs a transferred snapshot as the partition's data.
// A snapshot is a complete copy, so the partition becomes resident.
func (s *store) replace(p int, data map[string][]byte) {
	s.data[p] = data
	s.resident[p] = true
}

// drop discards the partition's data (migration victim, suicide). The
// partition stops being resident: until another snapshot arrives, any
// content is someone else's responsibility.
func (s *store) drop(p int) {
	s.data[p] = make(map[string][]byte)
	s.resident[p] = false
}

func (s *store) keys(p int) int { return len(s.data[p]) }

// flushCounters snapshots every partition's non-zero counters and
// resets them, so each query is reported in exactly one epoch: queries
// arriving after the flush count toward the next one.
func (s *store) flushCounters() []partitionCounters {
	var out []partitionCounters
	for p := range s.counters {
		c := s.counters[p]
		if c.origin|c.transit|c.served|c.overflow != 0 {
			out = append(out, c)
		}
		s.counters[p] = partitionCounters{partition: p}
	}
	return out
}
