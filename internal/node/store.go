package node

import "sync"

// store is the node's in-memory partitioned KV data plus the
// per-partition traffic counters for the epoch in flight. Partition
// maps exist for every partition regardless of whether the node
// currently holds a replica — holding is a property of the view, and
// an empty map for a non-held partition costs nothing.
//
// resident tracks whether the partition's local content is
// authoritative: view membership and store content move at different
// speeds (a drop order lands an epoch before the placement claim that
// removes the holder from peer views, and a claim can add a holder an
// epoch before its snapshot arrives), so "the view says I hold it"
// does not imply "my data is complete". The read path serves locally
// only from resident partitions and forwards everything else to the
// primary. A fresh store at node birth is resident everywhere — the
// cluster starts empty, so empty content IS authoritative — while a
// post-restart store (see newBlankStore) is resident nowhere until
// snapshots rebuild it.
//
// Concurrency: every partition carries its own mutex, so data-plane
// requests for different partitions never contend and requests for the
// same partition serialise only around the map touch. Lock hierarchy:
// a partition lock may be taken while holding Node.mu (either mode),
// never the reverse.
type store struct {
	parts []partitionShard
}

type partitionShard struct {
	mu       sync.Mutex
	data     map[string][]byte
	resident bool
	counters partitionCounters
}

func newStore(partitions int) *store {
	s := &store{parts: make([]partitionShard, partitions)}
	for p := range s.parts {
		s.parts[p].data = make(map[string][]byte)
		s.parts[p].resident = true
		s.parts[p].counters.partition = p
	}
	return s
}

// newBlankStore is newStore for a restarted node: all data was lost,
// so no partition is resident until a snapshot restores it.
func newBlankStore(partitions int) *store {
	s := newStore(partitions)
	for p := range s.parts {
		s.parts[p].resident = false
	}
	return s
}

func (s *store) get(p int, key string) ([]byte, bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	v, ok := ps.data[key]
	ps.mu.Unlock()
	// Values are never mutated in place (put installs a fresh copy), so
	// the returned slice stays stable after the lock drops.
	return v, ok
}

func (s *store) put(p int, key string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	ps := &s.parts[p]
	ps.mu.Lock()
	ps.data[key] = v
	ps.mu.Unlock()
}

// arriveAndTryServe is the read path's single visit to partition p:
// it records the arrival (entry vs transit) and, when this node may
// serve the key under the paper's capacity accounting, performs the
// lookup — all under one acquisition of the partition lock so the
// capacity check and the served/overflow bump are atomic. served
// reports whether the query was handled here; when false the caller
// must forward it (not a holder, not resident, or over capacity and
// not the primary).
func (s *store) arriveAndTryServe(p int, key string, entry bool, capacity int, isPrimary, hasReplica bool) (v []byte, ok, served bool) {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	c := &ps.counters
	if entry {
		c.origin++
	} else {
		c.transit++
	}
	if !hasReplica || !(ps.resident || isPrimary) {
		return nil, false, false
	}
	underCap := c.served < capacity
	if !underCap && !isPrimary {
		return nil, false, false
	}
	c.served++
	if !underCap {
		c.overflow++
	}
	v, ok = ps.data[key]
	return v, ok, true
}

// replace installs a transferred snapshot as the partition's data.
// A snapshot is a complete copy, so the partition becomes resident.
func (s *store) replace(p int, data map[string][]byte) {
	ps := &s.parts[p]
	ps.mu.Lock()
	ps.data = data
	ps.resident = true
	ps.mu.Unlock()
}

// drop discards the partition's data (migration victim, suicide). The
// partition stops being resident: until another snapshot arrives, any
// content is someone else's responsibility.
func (s *store) drop(p int) {
	ps := &s.parts[p]
	ps.mu.Lock()
	ps.data = make(map[string][]byte)
	ps.resident = false
	ps.mu.Unlock()
}

func (s *store) keys(p int) int {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.data)
}

// encodeSnapshot serialises the partition's content for a KindStore
// transfer.
func (s *store) encodeSnapshot(p int) []byte {
	ps := &s.parts[p]
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return appendSnapshot(nil, ps.data)
}

// flushCounters snapshots every partition's non-zero counters and
// resets them, so each query is reported in exactly one epoch: queries
// arriving after the flush count toward the next one.
func (s *store) flushCounters() []partitionCounters {
	var out []partitionCounters
	for p := range s.parts {
		ps := &s.parts[p]
		ps.mu.Lock()
		c := ps.counters
		ps.counters = partitionCounters{partition: p}
		ps.mu.Unlock()
		if c.origin|c.transit|c.served|c.overflow != 0 {
			out = append(out, c)
		}
	}
	return out
}
