package node

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentStress hammers a 3-node cluster with concurrent
// put/get traffic while lockstep epochs tick underneath — the
// data-plane/control-plane split under full load, on both transports.
// Transient errors during the storm are tolerated (an epoch action can
// briefly unsettle a route); what must hold is that after the storm
// quiesces, every acknowledged write is readable and carries a value
// its writer actually wrote. On TCP the test then closes every node
// and asserts the transports reap all their goroutines (per-connection
// readers and writers, request workers, accept loops).
func TestConcurrentStress(t *testing.T) {
	for _, flavour := range flavours {
		t.Run(flavour, func(t *testing.T) {
			before := runtime.NumGoroutine()
			base := testConfig()
			h := newHarness(t, flavour, 3, base)

			const workers = 8
			const rounds = 40
			stop := make(chan struct{})
			tickErr := make(chan error, 1)
			var tickWG sync.WaitGroup
			tickWG.Add(1)
			go func() {
				defer tickWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for i, nd := range h.nodes {
						if err := nd.FlushEpoch(); err != nil {
							tickErr <- fmt.Errorf("flush node %d: %w", i, err)
							return
						}
					}
					for i, nd := range h.nodes {
						if err := nd.RunEpoch(); err != nil {
							tickErr <- fmt.Errorf("run node %d: %w", i, err)
							return
						}
					}
					time.Sleep(2 * time.Millisecond)
				}
			}()

			// acked[g] is only touched by worker g until wg.Wait.
			acked := make([]map[string]bool, workers)
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				acked[g] = make(map[string]bool)
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					entry := h.nodes[g%len(h.nodes)]
					for r := 0; r < rounds; r++ {
						key := fmt.Sprintf("stress-g%d-k%d", g, r%10)
						val := fmt.Sprintf("g%d-r%d", g, r)
						if err := entry.Put(key, []byte(val)); err == nil {
							acked[g][key] = true
						}
						// Reads race epoch actions; only hard routing
						// failures after quiesce matter.
						_, _, _ = entry.Get(key)
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			tickWG.Wait()
			select {
			case err := <-tickErr:
				t.Fatal(err)
			default:
			}

			// Quiesced: every acknowledged write must be readable from
			// any entry point and hold a value its writer produced.
			for g := range acked {
				prefix := fmt.Sprintf("g%d-r", g)
				for key := range acked[g] {
					v, ok, err := h.nodes[g%len(h.nodes)].Get(key)
					if err != nil {
						t.Fatalf("get %q after quiesce: %v", key, err)
					}
					if !ok {
						t.Fatalf("acknowledged key %q lost", key)
					}
					if !strings.HasPrefix(string(v), prefix) {
						t.Fatalf("key %q holds %q, want a %q* value", key, v, prefix)
					}
				}
			}

			if flavour != "tcp" {
				return
			}
			for i := range h.nodes {
				h.kill(i)
			}
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before {
				if time.Now().After(deadline) {
					buf := make([]byte, 1<<16)
					t.Fatalf("transport goroutines leaked after Close: before=%d after=%d\n%s",
						before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}
