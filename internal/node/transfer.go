package node

import (
	"fmt"

	"repro/internal/transport"
)

// Chunked replica transfers (the zrepl step model): instead of one
// KindStore frame carrying a whole partition, the source freezes a
// snapshot, slices it into chunks, and drives a session of
// probe → begin → chunk* → done exchanges. The TARGET owns the resume
// cursor — the next chunk index it wants — persists it (durable
// engine) and echoes it on every reply, so the source never guesses:
// after any fault, duplicate or restart it adopts the target's cursor
// and continues from there. Repeated invocation is monotone (the
// cursor only advances) and converges. While a session is in flight
// the source holds the partition's snapshot against compaction; the
// hold is leased — a session making no progress for
// TransferLeaseEpochs epochs is abandoned and the hold released.
//
// Delta planning: the first pump of a session probes the target
// (KindXferCursor) before freezing anything. The unknown-session reply
// carries the target's version watermark plus its transfer info
// (residency + live AE top digest), and the source plans from it:
//
//   - Target resident, digest agrees with the source's tree restricted
//     to entries at-or-below the watermark → only entries strictly
//     above the watermark ship (on a durable store, frozen via the
//     engine's above-watermark iteration).
//   - Target resident, digest disagrees on some top buckets → entries
//     above the watermark ship plus the full content of the divergent
//     buckets (a hole below the watermark always dirties its bucket,
//     so bucket-filtered shipping is exactly as safe as full).
//   - Target not resident (fresh holder, restarted node, stale/absent
//     digest) → full frozen snapshot, as before. A non-resident
//     watermark is never trusted: begins durably adopt the source's
//     maxVer up front, so it does not describe content coverage.
//
// A delta session never marks the target resident on completion — the
// target already was resident, and a session invalidated mid-flight
// (drop, restart) must not bless a partial subset as authoritative.
//
// Lock order: n.mu (either mode) may be held while taking n.xmu, never
// the reverse; no lock is held across a transport send — a pump claims
// a session under xmu (busy flag), sends lock-free, and settles under
// xmu again.

// maxChunkBytes caps one chunk's payload regardless of the entry-count
// bound, so a few giant values cannot push a chunk past frame limits.
const maxChunkBytes = 256 << 10

// Session id layout: [8 bits roster index+1][16 bits boot generation]
// [40 bits per-boot sequence]. Ids must be unique across the source's
// whole lifetime INCLUDING process restarts — targets durably persist
// completed session ids, so a restarted source re-issuing an old id
// for the same (partition, target) would be answered "already
// complete" and ship nothing while reporting a durability ack. The
// generation comes from the durable engine's persisted boot counter
// (memory-mode nodes keep generation 0: they have no disk state to
// collide over, and the harness's Crash/Restart keeps the Node object
// and therefore the sequence). The generation wraps at 2^16 boots and
// the sequence at 2^40 sessions per boot — both far past the bounded
// done-list's 8-entry memory on any target.
const (
	xferGenShift = 40
	xferGenMask  = 1<<16 - 1
	xferSeqMask  = 1<<xferGenShift - 1
)

// TransferStats counts the node's outbound transfer-session activity
// since start. Resumed increments when a session continues from a
// nonzero cursor the target reported after an interruption — the
// signal the crash-mid-transfer scenarios assert on. DeltaSessions
// and FullSessions split planned sessions by outcome; BytesSent counts
// payload bytes actually shipped (chunks + one-frame snapshots) and
// BytesSaved the payload bytes delta planning avoided shipping.
type TransferStats struct {
	Started       int64 `json:"started"`
	Completed     int64 `json:"completed"`
	Expired       int64 `json:"expired"`
	Resumed       int64 `json:"resumed"`
	ChunksSent    int64 `json:"chunks_sent"`
	OneFrame      int64 `json:"one_frame"`
	DeltaSessions int64 `json:"delta_sessions"`
	FullSessions  int64 `json:"full_sessions"`
	BytesSent     int64 `json:"bytes_sent"`
	BytesSaved    int64 `json:"bytes_saved"`
}

// xferSession is one outbound chunked transfer of partition p toward
// target. The snapshot is frozen (and sliced) at planning time — the
// first pump's probe — not at session creation, so the plan can freeze
// only the delta the target actually needs.
type xferSession struct {
	id     uint64
	p      int
	target int
	mark   bool // completion marks the target resident (full plans only)
	st     *store // the store the snapshot (and its hold) came from

	planned bool // the delta-planning probe ran; chunks and maxVer are set
	delta   bool // the plan shipped a watermark/digest-filtered subset
	maxVer  uint64
	chunks  [][]kvEntry
	saved   int64 // payload bytes the delta plan avoided shipping

	begun       bool   // target has acked a begin for this session
	next        uint32 // next chunk to send (the target's cursor)
	busy        bool   // claimed by a running pump
	interrupted bool   // last pump ended early (send failure / no reply)
	idleEpochs  int    // lease age: epochs without cursor progress
	lastNext    uint32
}

// TransferStats returns the node's cumulative outbound transfer
// counters.
func (n *Node) TransferStats() TransferStats {
	n.xmu.Lock()
	defer n.xmu.Unlock()
	return n.xstats
}

// startTransferLocked opens an outbound session for partition p toward
// target and takes the compaction hold; the snapshot itself is frozen
// later, by the first pump's delta-planning probe. Callers hold n.mu;
// an existing live session for the same (partition, target) pair is
// left alone — its frozen state is already on the way, and
// syncs/read-repair heal anything newer.
func (n *Node) startTransferLocked(p, target int, mark bool) {
	n.xmu.Lock()
	defer n.xmu.Unlock()
	for _, s := range n.xfers {
		if s.p == p && s.target == target {
			return
		}
	}
	n.store.holdSnapshot(p)
	n.xseq++
	s := &xferSession{
		id:     uint64(n.self+1)<<56 | (n.xgen&xferGenMask)<<xferGenShift | (n.xseq & xferSeqMask),
		p:      p,
		target: target,
		mark:   mark,
		st:     n.store,
	}
	n.xfers = append(n.xfers, s)
	n.xstats.Started++
}

// planSession freezes the session's chunk set from the target's probe
// reply: the target's pre-session version watermark and its transfer
// info (residency flag + live AE top digest). Returns the frozen
// chunks, the covering maxVer, whether the plan is a delta (a
// filtered subset), and the encoded payload bytes the filter avoided.
// Runs lock-free on the owning pump; the caller writes the plan back
// under xmu.
func (n *Node) planSession(s *xferSession, watermark uint64, info []byte) (chunks [][]kvEntry, maxVer uint64, delta bool, saved int64) {
	resident, leaves, _, err := decodeXferInfo(info)
	if err != nil || !resident || len(leaves) != aeTop {
		// Non-resident target (or a malformed/absent digest): its
		// watermark does not describe content coverage — begins adopt the
		// source's maxVer durably before any entry lands — so nothing
		// below it can be skipped. Ship the full frozen snapshot.
		entries, ver := s.st.snapshotEntries(s.p)
		return sliceChunks(entries, n.cfg.TransferChunkEntries), ver, false, 0
	}
	entries, ver := s.st.snapshotEntries(s.p)
	below := NewAETree()
	for _, e := range entries {
		if e.ver <= watermark {
			below.Apply(e.key, e.ver, e.val)
		}
	}
	var divergent [aeTop]bool
	anyDivergent := false
	for b := 0; b < aeTop; b++ {
		if leaves[b] != below.top[b] {
			divergent[b] = true
			anyDivergent = true
		}
	}
	if !anyDivergent {
		// The target holds exactly the source's at-or-below-watermark
		// content: only entries strictly above the watermark ship. The
		// freeze goes through the store's above-watermark iteration
		// (engine-backed on durable stores) — the repeat-migration fast
		// path. A plan that keeps everything anyway (resident-but-empty
		// target at watermark 0) is a full plan, not a delta: it must
		// keep its residency-marking power and counts nothing as saved.
		kept, kver := s.st.snapshotEntriesAbove(s.p, watermark)
		saved = int64(encodedEntriesLen(entries) - encodedEntriesLen(kept))
		if saved <= 0 {
			return sliceChunks(kept, n.cfg.TransferChunkEntries), kver, false, 0
		}
		return sliceChunks(kept, n.cfg.TransferChunkEntries), kver, true, saved
	}
	// Some buckets disagree below the watermark: ship everything above
	// it plus the full content of the divergent buckets. A hole or stale
	// entry at the target always dirties its covering bucket, so this is
	// exactly as safe as a full snapshot.
	kept := make([]kvEntry, 0, len(entries))
	for _, e := range entries {
		if e.ver > watermark || divergent[aeBucket(e.key)] {
			kept = append(kept, e)
		}
	}
	if len(kept) == len(entries) {
		return sliceChunks(entries, n.cfg.TransferChunkEntries), ver, false, 0
	}
	saved = int64(encodedEntriesLen(entries) - encodedEntriesLen(kept))
	return sliceChunks(kept, n.cfg.TransferChunkEntries), ver, true, saved
}

// sliceChunks splits a frozen entry slice into chunks of at most
// maxEntries entries and maxChunkBytes payload bytes (whichever limit
// bites first; a single oversized entry still travels alone).
func sliceChunks(entries []kvEntry, maxEntries int) [][]kvEntry {
	var chunks [][]kvEntry
	start, bytes := 0, 0
	for i, e := range entries {
		sz := len(e.key) + len(e.val)
		if i > start && (i-start >= maxEntries || bytes+sz > maxChunkBytes) {
			chunks = append(chunks, entries[start:i])
			start, bytes = i, 0
		}
		bytes += sz
	}
	if start < len(entries) {
		chunks = append(chunks, entries[start:])
	}
	return chunks
}

// clearTransfersLocked drops every outbound session without touching
// the store — the Crash path, where the store and engine are being
// discarded wholesale and the "process" forgets its in-flight work.
// Callers hold n.mu.
func (n *Node) clearTransfersLocked() {
	n.xmu.Lock()
	n.xfers = nil
	n.xmu.Unlock()
}

// pumpTransfers drives every outbound session one round, in session
// order (deterministic under Fanout=1 harnesses), and ages the leases:
// a session whose cursor made no progress for TransferLeaseEpochs
// consecutive pumps is abandoned and its snapshot hold released.
// Callers must not hold n.mu.
//
//lint:requires-unlocked n.mu
func (n *Node) pumpTransfers() {
	n.xmu.Lock()
	sessions := append([]*xferSession(nil), n.xfers...)
	n.xmu.Unlock()
	for _, s := range sessions {
		n.pumpSession(s)
	}
	n.xmu.Lock()
	kept := n.xfers[:0]
	for _, s := range n.xfers {
		if s.busy {
			// A concurrent pump (shipPartition / TransferPartition) has
			// claimed this session and only writes its advanced cursor
			// back at settle, so s.next is stale here — aging it could
			// expire a session that is actively progressing, yanking the
			// snapshot hold out from under the pump. Aging resumes on
			// the next round, after the pump settles.
			kept = append(kept, s)
			continue
		}
		if s.next == s.lastNext {
			s.idleEpochs++
		} else {
			s.idleEpochs = 0
		}
		s.lastNext = s.next
		if s.idleEpochs > n.cfg.TransferLeaseEpochs {
			s.st.releaseHold(s.p)
			n.xstats.Expired++
			continue
		}
		kept = append(kept, s)
	}
	n.xfers = kept
	n.xmu.Unlock()
}

// shipPartition heals a holder that answered StatusRetry on a sync —
// it has no resident copy to apply onto. The shipped state must
// contain version ver (the write being acked): a true return is a
// durability ack for that write, not just "a snapshot landed". Under
// the one-frame threshold the partition travels as a single KindStore
// message encoded at call time, which is after the stamp and so always
// covers ver. Above it a chunked session is driven to completion
// synchronously — and if the live session for this (partition, target)
// was frozen before ver was stamped, it is completed and retired first
// and a second, freshly frozen session carries the write. Callers must
// not hold n.mu.
//
//lint:requires-unlocked n.mu
func (n *Node) shipPartition(p, target int, ver uint64) bool {
	if n.store.sizeBytes(p) <= n.cfg.SnapshotOneFrameBytes {
		snap := n.store.encodeSnapshot(p)
		resp, err := n.tr.Send(n.peerAddr(target), &transport.Message{
			Kind: KindStore, Partition: uint32(p), Value: snap,
		})
		if err != nil || resp.Status != transport.StatusOK {
			return false
		}
		n.xmu.Lock()
		n.xstats.OneFrame++
		n.xstats.BytesSent += int64(len(snap))
		n.xmu.Unlock()
		return true
	}
	// Round 2 always covers: a session planned now freezes against the
	// shard's maxVer, which the stamp already advanced past ver. The
	// coverage check reads the session's maxVer AFTER the pump, because
	// the plan (and therefore the freeze) happens inside the first pump.
	for round := 0; round < 2; round++ {
		n.mu.RLock()
		n.startTransferLocked(p, target, true)
		n.mu.RUnlock()
		n.xmu.Lock()
		var sess *xferSession
		for _, s := range n.xfers {
			if s.p == p && s.target == target {
				sess = s
				break
			}
		}
		n.xmu.Unlock()
		if sess == nil {
			return false
		}
		if !n.pumpSession(sess) {
			return false
		}
		n.xmu.Lock()
		covered := sess.maxVer >= ver
		n.xmu.Unlock()
		if covered {
			return true
		}
	}
	return false
}

// TransferPartition synchronously ships partition p to target through
// a chunked session (opening one if none is live) and reports whether
// the session completed. The harness scenarios and the sync-fallback
// path use it; RunEpoch pumps sessions opportunistically instead.
// Callers must not hold n.mu.
//
//lint:requires-unlocked n.mu
func (n *Node) TransferPartition(p, target int) bool {
	n.mu.RLock()
	n.startTransferLocked(p, target, true)
	n.mu.RUnlock()
	n.xmu.Lock()
	var sess *xferSession
	for _, s := range n.xfers {
		if s.p == p && s.target == target {
			sess = s
			break
		}
	}
	n.xmu.Unlock()
	if sess == nil {
		return false
	}
	return n.pumpSession(sess)
}

// pumpSession drives one session as far as it will go in a single
// round: (re)begin or probe for the target's cursor, stream chunks
// from there, and close with done. Any send failure ends the round —
// the session stays, the cursor survives on the target, and the next
// pump resumes. Returns true when the session completed (and was
// removed). Callers must not hold n.mu or n.xmu.
//
//lint:requires-unlocked n.mu
func (n *Node) pumpSession(s *xferSession) bool {
	n.xmu.Lock()
	if s.busy {
		n.xmu.Unlock()
		return false
	}
	alive := false
	for _, live := range n.xfers {
		if live == s {
			alive = true
		}
	}
	if !alive {
		n.xmu.Unlock()
		return false
	}
	s.busy = true
	// Work on local copies of the cursor state: the lease ager reads the
	// session under xmu while a pump is in flight, so the pump must not
	// scribble on the struct lock-free. Written back at settle.
	begun, next, wasInterrupted := s.begun, s.next, s.interrupted
	planned := s.planned
	n.xmu.Unlock()

	addr := n.peerAddr(s.target)
	if !planned {
		// Delta-planning probe: ask the target for its watermark and
		// transfer info before freezing anything, then freeze only what
		// the plan says must ship.
		resp, err := n.tr.Send(addr, &transport.Message{
			Kind: KindXferCursor, Partition: uint32(s.p), Session: s.id,
		})
		if err != nil {
			n.xmu.Lock()
			s.busy, s.interrupted = false, true
			n.xmu.Unlock()
			return false
		}
		var (
			chunks [][]kvEntry
			maxVer uint64
			delta  bool
			saved  int64
		)
		switch resp.Status {
		case transport.StatusNotFound:
			// The expected reply: the target does not know the session,
			// and its answer carries the pre-session watermark plus the
			// residency/digest blob the plan needs.
			chunks, maxVer, delta, saved = n.planSession(s, resp.Version, resp.Value)
		case transport.StatusOK:
			// The target already tracks this id (defensive — ids are
			// unique across boots): plan a full session and adopt the
			// cursor it reports.
			chunks, maxVer, delta, saved = n.planSession(s, 0, nil)
			begun = true
			if resp.Cursor == xferComplete {
				next = uint32(len(chunks))
			} else if c := uint32(resp.Cursor); c <= uint32(len(chunks)) {
				next = c
			}
		default:
			n.xmu.Lock()
			s.busy, s.interrupted = false, true
			n.xmu.Unlock()
			return false
		}
		n.xmu.Lock()
		s.chunks, s.maxVer, s.delta, s.saved = chunks, maxVer, delta, saved
		s.mark = s.mark && !delta
		s.planned = true
		if delta {
			n.xstats.DeltaSessions++
		} else {
			n.xstats.FullSessions++
		}
		n.xstats.BytesSaved += saved
		n.xmu.Unlock()
	}

	completed := false
	interrupted := true
	total := uint32(len(s.chunks))
	sent := int64(0)
	sentBytes := int64(0)
	resumed := false

	// One bounded walk through the session state machine. The loop
	// re-begins at most once per pump (cursor lost at the target), so
	// 2*(total+2) exchanges bound the round even under adversarial
	// replies.
	for step := 0; step < 2*int(total)+4; step++ {
		if !begun {
			resp, err := n.tr.Send(addr, &transport.Message{
				Kind: KindXferBegin, Partition: uint32(s.p), Session: s.id,
				Version: s.maxVer, Value: appendXferBegin(nil, total, s.mark),
			})
			if err != nil || resp.Status != transport.StatusOK {
				break
			}
			begun = true
			if resp.Cursor == xferComplete {
				completed, interrupted = true, false
				break
			}
			if c := uint32(resp.Cursor); c <= total {
				if c > 0 && wasInterrupted {
					resumed = true
				}
				next = c
			}
			continue
		}
		if wasInterrupted && step == 0 {
			// The last round ended mid-session: ask the target where its
			// cursor actually stands before re-sending anything (it may
			// have applied a chunk whose ack we lost, or recovered the
			// cursor from its WAL across a restart).
			resp, err := n.tr.Send(addr, &transport.Message{
				Kind: KindXferCursor, Partition: uint32(s.p), Session: s.id,
			})
			if err != nil {
				break
			}
			if resp.Status == transport.StatusNotFound {
				begun = false // target lost the session: re-begin
				continue
			}
			if resp.Status != transport.StatusOK {
				break
			}
			if resp.Cursor == xferComplete {
				completed, interrupted = true, false
				break
			}
			if c := uint32(resp.Cursor); c <= total {
				if c > 0 {
					resumed = true
				}
				next = c
			}
			continue
		}
		if next < total {
			payload := appendEntries(nil, s.chunks[next])
			resp, err := n.tr.Send(addr, &transport.Message{
				Kind: KindXferChunk, Partition: uint32(s.p), Session: s.id,
				Cursor: uint64(next), Value: payload,
			})
			if err != nil {
				break
			}
			if resp.Status == transport.StatusNotFound {
				begun = false
				continue
			}
			if resp.Status != transport.StatusOK {
				break
			}
			sent++
			sentBytes += int64(len(payload))
			if resp.Cursor == xferComplete {
				completed, interrupted = true, false
				break
			}
			if c := uint32(resp.Cursor); c <= total {
				next = c
			}
			continue
		}
		// Every chunk is at the target: close the session.
		resp, err := n.tr.Send(addr, &transport.Message{
			Kind: KindXferDone, Partition: uint32(s.p), Session: s.id,
		})
		if err != nil {
			break
		}
		switch resp.Status {
		case transport.StatusOK:
			completed, interrupted = true, false
		case transport.StatusRetry:
			if c := uint32(resp.Cursor); c < total {
				next = c
				continue
			}
		case transport.StatusNotFound:
			begun = false
			continue
		default:
			// StatusError: the target could not settle the session this
			// round — end the pump; the session stays for the next one.
		}
		break
	}

	n.xmu.Lock()
	s.busy = false
	s.begun, s.next = begun, next
	s.interrupted = interrupted && !completed
	n.xstats.ChunksSent += sent
	n.xstats.BytesSent += sentBytes
	if resumed {
		n.xstats.Resumed++
	}
	if completed {
		for i, live := range n.xfers {
			if live == s {
				n.xfers = append(n.xfers[:i], n.xfers[i+1:]...)
				s.st.releaseHold(s.p)
				n.xstats.Completed++
				break
			}
		}
	}
	n.xmu.Unlock()
	return completed
}

// --- Target-side handlers -------------------------------------------

func (n *Node) handleXferBegin(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	total, mark, err := decodeXferBegin(req.Value)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	next, prevVer, wasResident, err := n.store.beginInbound(p, req.Session, total, mark, req.Version)
	n.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	// Echo the pre-session watermark and residency so a source that
	// skipped the cursor probe (or raced another session's begin) still
	// learns what the target held before adoption.
	var info []byte
	if wasResident {
		leaves, root, _ := n.store.aeDigest(p)
		info = appendXferInfo(nil, true, leaves, root)
	} else {
		info = appendXferInfo(nil, false, nil, 0)
	}
	return &transport.Message{Kind: KindXferBegin, Partition: req.Partition, Session: req.Session,
		Cursor: next, Version: prevVer, Value: info}, nil
}

func (n *Node) handleXferChunk(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	if req.Cursor > 1<<32-1 {
		return nil, fmt.Errorf("node %d: transfer chunk index %d overflows uint32", n.cfg.ID, req.Cursor)
	}
	entries, err := decodeSnapshot(req.Value)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	next, known, err := n.store.applyChunk(p, req.Session, uint32(req.Cursor), entries)
	n.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if !known {
		return &transport.Message{Kind: KindXferChunk, Partition: req.Partition, Session: req.Session,
			Status: transport.StatusNotFound}, nil
	}
	return &transport.Message{Kind: KindXferChunk, Partition: req.Partition, Session: req.Session, Cursor: next}, nil
}

func (n *Node) handleXferCursor(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	next, known := n.store.inboundCursor(p, req.Session)
	n.mu.RUnlock()
	if !known {
		// Unknown session: the reply doubles as the delta-planning
		// handshake — it carries the partition's version watermark plus
		// the residency/digest blob the source plans from.
		maxVer, resident, leaves, root := n.store.transferInfo(p)
		return &transport.Message{Kind: KindXferCursor, Partition: req.Partition, Session: req.Session,
			Status: transport.StatusNotFound, Version: maxVer,
			Value: appendXferInfo(nil, resident, leaves, root)}, nil
	}
	return &transport.Message{Kind: KindXferCursor, Partition: req.Partition, Session: req.Session, Cursor: next}, nil
}

func (n *Node) handleXferDone(req *transport.Message) (*transport.Message, error) {
	p, err := n.checkPartition(req.Partition)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	next, known, complete, err := n.store.finishInbound(p, req.Session)
	n.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	switch {
	case !known:
		return &transport.Message{Kind: KindXferDone, Partition: req.Partition, Session: req.Session,
			Status: transport.StatusNotFound}, nil
	case !complete:
		return &transport.Message{Kind: KindXferDone, Partition: req.Partition, Session: req.Session,
			Status: transport.StatusRetry, Cursor: next}, nil
	default:
		return &transport.Message{Kind: KindXferDone, Partition: req.Partition, Session: req.Session,
			Cursor: xferComplete}, nil
	}
}

