package node

import (
	"fmt"
	"testing"
)

// transferTestConfig forces every entry into its own chunk so even the
// tiny test partitions exercise multi-chunk sessions.
func transferTestConfig() Config {
	cfg := testConfig()
	cfg.TransferChunkEntries = 1
	cfg.SnapshotOneFrameBytes = 1
	return cfg
}

// seedPartition plants count entries directly into a node's partition
// with ascending versions, bypassing routing — transfer tests care
// about shipping state, not producing it.
func seedPartition(t *testing.T, nd *Node, p, count int) []kvEntry {
	t.Helper()
	var entries []kvEntry
	for i := 0; i < count; i++ {
		entries = append(entries, kvEntry{
			key: fmt.Sprintf("xfer-%d-%d", p, i),
			val: []byte(fmt.Sprintf("value-%d", i)),
			ver: uint64(i + 1),
		})
	}
	if err := nd.store.mergeSnapshot(p, entries); err != nil {
		t.Fatalf("seed partition %d: %v", p, err)
	}
	return entries
}

func TestTransferChunkedRoundTrip(t *testing.T) {
	h := newHarness(t, "loopback", 3, transferTestConfig())
	src, dst := h.nodes[0], h.nodes[1]
	const p = 0
	entries := seedPartition(t, src, p, 5)
	dst.store.drop(p)
	if dst.store.isResident(p) {
		t.Fatal("dropped partition still resident")
	}

	if !src.TransferPartition(p, 1) {
		t.Fatal("TransferPartition did not complete")
	}
	for _, e := range entries {
		v, ver, ok := dst.store.get(p, e.key)
		if !ok || string(v) != string(e.val) || ver != e.ver {
			t.Fatalf("key %q after transfer: val=%q ver=%d ok=%v, want %q/%d", e.key, v, ver, ok, e.val, e.ver)
		}
	}
	if !dst.store.isResident(p) {
		t.Error("target not resident after completed marked transfer")
	}
	if holds := src.store.holdCount(p); holds != 0 {
		t.Errorf("source still holds %d snapshot leases after completion", holds)
	}
	st := src.TransferStats()
	if st.Started != 1 || st.Completed != 1 || st.ChunksSent != 5 || st.Resumed != 0 {
		t.Errorf("stats = %+v, want started=1 completed=1 chunks=5 resumed=0", st)
	}
}

// TestTransferResumesFromTargetCursor pins the resume contract: after
// an interrupted round, the source's next pump probes the target's
// cursor and continues from it instead of restarting the session —
// already-delivered chunks are never re-sent.
func TestTransferResumesFromTargetCursor(t *testing.T) {
	h := newHarness(t, "loopback", 3, transferTestConfig())
	src, dst := h.nodes[0], h.nodes[1]
	const p = 1
	seedPartition(t, src, p, 4)
	dst.store.drop(p)

	src.mu.RLock()
	src.startTransferLocked(p, 1, true)
	src.mu.RUnlock()
	// Freeze the session by hand as a full plan — the scenario models a
	// prior round whose planning probe and begin already happened.
	entries, maxVer := src.store.snapshotEntries(p)
	src.xmu.Lock()
	sess := src.xfers[0]
	sess.chunks = sliceChunks(entries, src.cfg.TransferChunkEntries)
	sess.maxVer = maxVer
	sess.planned = true
	src.xmu.Unlock()

	// Simulate a prior round that died after the begin and one chunk:
	// the target holds the session with its cursor at 1, the source
	// only knows the round was interrupted.
	total := uint32(len(sess.chunks))
	if total != 4 {
		t.Fatalf("expected 4 chunks, got %d", total)
	}
	if _, _, _, err := dst.store.beginInbound(p, sess.id, total, true, sess.maxVer); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dst.store.applyChunk(p, sess.id, 0, sess.chunks[0]); err != nil {
		t.Fatal(err)
	}
	src.xmu.Lock()
	sess.begun = true
	sess.interrupted = true
	src.xmu.Unlock()

	if !src.pumpSession(sess) {
		t.Fatal("pump after interruption did not complete the session")
	}
	st := src.TransferStats()
	if st.Resumed != 1 {
		t.Errorf("Resumed = %d, want 1 (cursor adopted from target)", st.Resumed)
	}
	if st.ChunksSent != int64(total)-1 {
		t.Errorf("ChunksSent = %d, want %d (chunk 0 must not be re-sent)", st.ChunksSent, total-1)
	}
	if !dst.store.isResident(p) {
		t.Error("target not resident after resumed transfer completed")
	}
}

// TestInboundSessionIdempotence pins the target-side replay contract:
// a replayed begin re-finds the live session (and answers "complete"
// once it finished), and a duplicated or reordered chunk is acked
// without moving the cursor or touching the data.
func TestInboundSessionIdempotence(t *testing.T) {
	s := newStore(4)
	const p, sid = 2, uint64(42)
	chunk0 := []kvEntry{{key: "a", val: []byte("1"), ver: 5}}
	chunk1 := []kvEntry{{key: "b", val: []byte("2"), ver: 6}}

	if next, _, _, err := s.beginInbound(p, sid, 2, true, 9); err != nil || next != 0 {
		t.Fatalf("fresh begin: next=%d err=%v", next, err)
	}
	if v := s.parts[p].maxVer; v != 9 {
		t.Fatalf("begin did not adopt source watermark: maxVer=%d", v)
	}
	if next, known, err := s.applyChunk(p, sid, 0, chunk0); err != nil || !known || next != 1 {
		t.Fatalf("chunk 0: next=%d known=%v err=%v", next, known, err)
	}
	// Replayed begin: the session exists, so the reply is its cursor,
	// not a reset to 0.
	if next, _, _, err := s.beginInbound(p, sid, 2, true, 9); err != nil || next != 1 {
		t.Fatalf("replayed begin: next=%d err=%v, want cursor 1", next, err)
	}
	// Duplicate chunk 0: acked with the current cursor, nothing moves.
	if next, known, err := s.applyChunk(p, sid, 0, chunk0); err != nil || !known || next != 1 {
		t.Fatalf("duplicate chunk: next=%d known=%v err=%v", next, known, err)
	}
	// Premature done: retry with the cursor.
	if next, known, complete, err := s.finishInbound(p, sid); err != nil || !known || complete || next != 1 {
		t.Fatalf("premature done: next=%d known=%v complete=%v err=%v", next, known, complete, err)
	}
	if next, known, err := s.applyChunk(p, sid, 1, chunk1); err != nil || !known || next != 2 {
		t.Fatalf("chunk 1: next=%d known=%v err=%v", next, known, err)
	}
	if _, known, complete, err := s.finishInbound(p, sid); err != nil || !known || !complete {
		t.Fatalf("done: known=%v complete=%v err=%v", known, complete, err)
	}
	// Post-completion replays: begin, chunk and done all answer
	// "already complete".
	if next, _, _, err := s.beginInbound(p, sid, 2, true, 9); err != nil || next != xferComplete {
		t.Fatalf("begin after completion: next=%d err=%v", next, err)
	}
	if next, known, err := s.applyChunk(p, sid, 0, chunk0); err != nil || !known || next != xferComplete {
		t.Fatalf("chunk after completion: next=%d known=%v err=%v", next, known, err)
	}
	if next, known, complete, err := s.finishInbound(p, sid); err != nil || !known || !complete || next != xferComplete {
		t.Fatalf("done after completion: next=%d known=%v complete=%v err=%v", next, known, complete, err)
	}
	// An unknown session answers known=false everywhere: the source
	// must re-begin.
	if _, known, _ := s.applyChunk(p, 999, 0, chunk0); known {
		t.Error("chunk for unknown session claimed known")
	}
	if _, known := s.inboundCursor(p, 999); known {
		t.Error("cursor probe for unknown session claimed known")
	}
}

// TestDropInvalidatesInboundSessions pins the drop/transfer
// interaction: a drop discards the entries an inbound session already
// merged, so the session (and the done-list) must die with the data —
// a post-drop chunk or done answers unknown (StatusNotFound on the
// wire) and the source re-begins from chunk 0 over the emptied
// partition. Letting the cursor survive would finish the session with
// only a suffix of the source snapshot and mark the partition
// resident with acked keys silently missing.
func TestDropInvalidatesInboundSessions(t *testing.T) {
	s := newStore(4)
	const p = 1
	chunk := []kvEntry{{key: "a", val: []byte("1"), ver: 1}}

	// A mid-flight session: begun, one of two chunks merged.
	const live = uint64(7)
	if next, _, _, err := s.beginInbound(p, live, 2, true, 0); err != nil || next != 0 {
		t.Fatalf("begin: next=%d err=%v", next, err)
	}
	if _, known, err := s.applyChunk(p, live, 0, chunk); err != nil || !known {
		t.Fatalf("chunk 0: known=%v err=%v", known, err)
	}
	// A session completed and retired to the done-list before the drop.
	const finished = uint64(8)
	if _, _, _, err := s.beginInbound(p, finished, 1, false, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.applyChunk(p, finished, 0, chunk); err != nil {
		t.Fatal(err)
	}
	if _, _, complete, err := s.finishInbound(p, finished); err != nil || !complete {
		t.Fatalf("finish: complete=%v err=%v", complete, err)
	}

	s.drop(p)

	if _, known, _ := s.applyChunk(p, live, 1, chunk); known {
		t.Error("post-drop chunk still found the session")
	}
	if _, known, _, _ := s.finishInbound(p, live); known {
		t.Error("post-drop done still found the session")
	}
	if _, known := s.inboundCursor(p, live); known {
		t.Error("post-drop cursor probe still found the session")
	}
	if next, _, _, err := s.beginInbound(p, live, 2, true, 0); err != nil || next != 0 {
		t.Fatalf("re-begin after drop: next=%d err=%v, want cursor 0", next, err)
	}
	// The done-list cleared too: a replayed begin of the pre-drop
	// completed session re-runs it instead of answering "complete" over
	// an emptied partition.
	if next, _, _, err := s.beginInbound(p, finished, 1, false, 0); err != nil || next != 0 {
		t.Fatalf("replayed begin of pre-drop session: next=%d err=%v, want cursor 0", next, err)
	}

	// resetEmpty (lost-data reseed) invalidates the same way.
	s.resetEmpty(p)
	if _, known, _ := s.applyChunk(p, live, 0, chunk); known {
		t.Error("post-reset chunk still found the session")
	}
}

// TestSessionIDsUniqueAcrossRestart pins the boot-generation scheme:
// ids issued after a crash+restart must not collide with pre-crash
// ids — targets durably remember completed session ids, so a reused
// id would be answered "already complete" without anything shipping.
// The per-boot sequence is reset by hand because the harness keeps
// the Node object across simulated restarts; a real process restart
// starts from zero, and only the persisted generation keeps the ids
// apart.
func TestSessionIDsUniqueAcrossRestart(t *testing.T) {
	cfg := transferTestConfig()
	cfg.DataDir = t.TempDir()
	f, err := NewFleet(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src := f.Node(0)
	const p = 0
	seedPartition(t, src, p, 2)
	src.mu.RLock()
	src.startTransferLocked(p, 1, true)
	src.mu.RUnlock()
	src.xmu.Lock()
	before := src.xfers[0].id
	src.xmu.Unlock()

	f.Crash(0)
	if err := f.Restart(0); err != nil {
		t.Fatal(err)
	}
	src.xmu.Lock()
	src.xseq = 0
	src.xmu.Unlock()
	seedPartition(t, src, p, 2)
	src.mu.RLock()
	src.startTransferLocked(p, 1, true)
	src.mu.RUnlock()
	src.xmu.Lock()
	after := src.xfers[0].id
	src.xmu.Unlock()
	if before == after {
		t.Fatalf("session id %#x reused across restart", before)
	}
}

// TestBusySessionNotLeaseExpired pins the ager/pump interaction: a
// session claimed by a concurrent pump only settles its advanced
// cursor when it finishes, so the ager sees a stale s.next and must
// skip the session instead of expiring an actively progressing
// transfer mid-pump.
func TestBusySessionNotLeaseExpired(t *testing.T) {
	cfg := transferTestConfig()
	cfg.TransferLeaseEpochs = 1
	f, err := NewFleet(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src := f.Node(0)
	const p = 2
	seedPartition(t, src, p, 3)
	f.Crash(1)

	src.mu.RLock()
	src.startTransferLocked(p, 1, true)
	src.mu.RUnlock()
	src.xmu.Lock()
	sess := src.xfers[0]
	sess.busy = true // a concurrent shipPartition pump holds the session
	src.xmu.Unlock()

	for i := 0; i < cfg.TransferLeaseEpochs+3; i++ {
		src.pumpTransfers()
	}
	if st := src.TransferStats(); st.Expired != 0 {
		t.Fatalf("busy session lease-expired: %+v", st)
	}
	if holds := src.store.holdCount(p); holds != 1 {
		t.Fatalf("holds = %d while the session is claimed, want 1", holds)
	}

	// The pump settles: aging resumes, and the genuinely stuck session
	// (target crashed) expires as before.
	src.xmu.Lock()
	sess.busy = false
	src.xmu.Unlock()
	for i := 0; i < cfg.TransferLeaseEpochs+2; i++ {
		src.pumpTransfers()
	}
	if st := src.TransferStats(); st.Expired != 1 {
		t.Fatalf("released session never expired: %+v", st)
	}
	if holds := src.store.holdCount(p); holds != 0 {
		t.Fatalf("holds = %d after expiry, want 0", holds)
	}
}

// TestTransferLeaseExpiryFreesHold pins the lease: a session making no
// cursor progress for TransferLeaseEpochs pumps is abandoned and its
// compaction hold released — a crashed target cannot pin the source's
// snapshot forever.
func TestTransferLeaseExpiryFreesHold(t *testing.T) {
	cfg := transferTestConfig()
	cfg.TransferLeaseEpochs = 2
	f, err := NewFleet(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	src := f.Node(0)
	const p = 3
	seedPartition(t, src, p, 3)
	f.Crash(1) // target unreachable: every pump round fails

	src.mu.RLock()
	src.startTransferLocked(p, 1, true)
	src.mu.RUnlock()
	if holds := src.store.holdCount(p); holds != 1 {
		t.Fatalf("holds after start = %d, want 1", holds)
	}

	for i := 0; i < cfg.TransferLeaseEpochs+2; i++ {
		src.pumpTransfers()
	}
	if holds := src.store.holdCount(p); holds != 0 {
		t.Errorf("holds after lease expiry = %d, want 0", holds)
	}
	st := src.TransferStats()
	if st.Expired != 1 || st.Completed != 0 {
		t.Errorf("stats = %+v, want expired=1 completed=0", st)
	}
	src.xmu.Lock()
	live := len(src.xfers)
	src.xmu.Unlock()
	if live != 0 {
		t.Errorf("%d sessions still tracked after expiry", live)
	}
}
