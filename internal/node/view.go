package node

import (
	"fmt"

	"repro/internal/availability"
	"repro/internal/cluster"
	"repro/internal/network"
	"repro/internal/ring"
	"repro/internal/topology"
)

// view is one node's model of the whole cluster: the synthetic world
// connecting the peers, the routing table over it, the consistent-
// hashing ring, and the replica placement. It is built purely from the
// shared Config fields, so every node of a cluster constructs an
// identical view — which is what lets each node run the global
// policy.Policy locally and arrive at the same decisions as everyone
// else.
//
// The live runtime maps each peer to one datacenter holding exactly
// one server, so ServerID, DCID and roster index are the same number
// throughout the node package.
type view struct {
	world   *topology.World
	router  *network.Router
	ring    *ring.Ring
	cluster *cluster.Cluster

	tokens      int
	minReplicas int
}

// newView derives the deterministic cluster model from a validated
// config. With seeded=true every partition gets its initial ring-owner
// placement (a cluster booting from scratch); with seeded=false the
// placement starts empty — the view of a node rejoining after a crash,
// which must re-learn the real placement from its peers' claims rather
// than assert the long-stale seed placement.
func newView(cfg *Config, seeded bool) (*view, error) {
	n := len(cfg.Peers)
	degree := 3
	if degree >= n {
		degree = n - 1
	}
	world, err := topology.RandomGeometricWorld(n, degree, cfg.Seed^0x11FE)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	router, err := network.NewRouter(world)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	cl, err := cluster.New(world, cluster.Spec{
		RoomsPerDC:         1,
		RacksPerRoom:       1,
		ServersPerRack:     1,
		StorageCapacity:    10 << 30,
		StorageLimit:       0.70,
		ReplicationBW:      cfg.ReplicationBW,
		MigrationBW:        cfg.MigrationBW,
		ReplicaCapacityMin: cfg.ReplicaCapacity,
		ReplicaCapacityMax: cfg.ReplicaCapacity,
		ProcessLimit:       64,
		MeanServiceTime:    0.01,
		Partitions:         cfg.Partitions,
		PartitionSize:      cfg.PartitionSize,
		Seed:               cfg.Seed ^ 0x5EED,
	})
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	minRep, err := availability.MinReplicas(cfg.FailureRate, cfg.MinAvailability)
	if err != nil {
		return nil, fmt.Errorf("node: %w", err)
	}
	v := &view{
		world:       world,
		router:      router,
		ring:        ring.New(),
		cluster:     cl,
		tokens:      cfg.TokensPerServer,
		minReplicas: minRep,
	}
	for i := 0; i < n; i++ {
		if err := v.ring.AddServer(i, cfg.TokensPerServer); err != nil {
			return nil, fmt.Errorf("node: %w", err)
		}
	}
	if seeded {
		for p := 0; p < cfg.Partitions; p++ {
			if err := v.seedPartition(p); err != nil {
				return nil, err
			}
		}
	}
	return v, nil
}

// fullyPlaced reports whether every partition has a primary — the
// condition for a recovering node to trust its reconciled view again.
func (v *view) fullyPlaced(partitions int) bool {
	for p := 0; p < partitions; p++ {
		if v.primary(p) < 0 {
			return false
		}
	}
	return true
}

// seedPartition places the partition's first copy on its ring owner or
// the first hostable successor — the same rule as the simulator, so a
// live cluster and a simulation with the same seed start from the same
// placement.
func (v *view) seedPartition(p int) error {
	pos := ring.HashUint64(uint64(p))
	for _, vn := range v.ring.Successors(pos, v.cluster.NumServers()) {
		s := cluster.ServerID(vn.Server)
		if v.cluster.CanHost(p, s) {
			return v.cluster.AddReplica(p, s)
		}
	}
	return fmt.Errorf("node: no server can host partition %d", p)
}

// primary returns the roster index of the partition's primary holder,
// or -1 if the partition is lost.
func (v *view) primary(p int) int { return int(v.cluster.Primary(p)) }

// hasReplica reports whether peer i holds a copy of partition p.
func (v *view) hasReplica(p, i int) bool {
	return v.cluster.HasReplica(p, cluster.ServerID(i))
}

// failPeer removes a suspected peer from the placement and the ring.
// The cluster promotes the lowest-id surviving holder of each affected
// partition, which is deterministic and therefore identical on every
// node that suspects the peer in the same epoch.
func (v *view) failPeer(i int) {
	if v.cluster.Server(cluster.ServerID(i)).Alive() {
		v.cluster.FailServer(cluster.ServerID(i))
	}
	v.ring.RemoveServer(i)
}

// recoverPeer restores a previously-suspected peer.
func (v *view) recoverPeer(i int) {
	if !v.cluster.Server(cluster.ServerID(i)).Alive() {
		v.cluster.RecoverServer(cluster.ServerID(i))
		// Re-adding can only fail if the server never left the ring,
		// which the suspicion path excludes.
		_ = v.ring.AddServer(i, v.tokens)
	}
}
