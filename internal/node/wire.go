package node

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/transport"
)

// Message kinds of the node protocol, carried in transport.Message.Kind.
// Kinds below 64 are node-to-node traffic; kinds from 64 are control
// RPCs issued by rfhctl (and the fleet harness) against a single node.
const (
	// KindGet is a query for one key. Origin carries the roster index
	// where the query entered the cluster, Hops the forwarding count so
	// far. Replies: StatusOK with the value, StatusNotFound, or
	// StatusError.
	KindGet uint8 = 1
	// KindPut stores one key/value pair; non-primary receivers proxy it
	// to the primary.
	KindPut uint8 = 2
	// KindSync is the primary's propagation of one versioned write to
	// the other replica holders. A StatusOK reply means the holder
	// durably applied (or already had) that version and counts toward
	// the write quorum; StatusRetry means the holder is not resident and
	// needs a full snapshot first. Quorum reads also reuse it to push
	// the winning version to stale holders (read-repair).
	KindSync uint8 = 3
	// KindStore transfers a whole partition snapshot to a new replica
	// holder (replication and migration both ship data this way).
	KindStore uint8 = 4
	// KindDrop tells a holder to discard its copy of a partition
	// (migration victim, suicide).
	KindDrop uint8 = 5
	// KindStats is the end-of-epoch broadcast: Origin is the sender's
	// roster index, Epoch the epoch the stats describe, Value the
	// encoded statsBlob.
	KindStats uint8 = 6
	// KindPing is a liveness probe; the reply is an empty StatusOK.
	KindPing uint8 = 7
	// KindVer is a quorum read's version probe: the coordinator asks a
	// holder what version of one key it physically has. The reply
	// carries the local value and its version (Version 0 + StatusNotFound
	// for a key absent from a resident partition); StatusRetry means the
	// holder is not resident and has no authoritative answer.
	KindVer uint8 = 8

	// KindXferBegin opens (or re-opens) a chunked transfer session.
	// Session carries the session id, Version the source partition's
	// version watermark, Value the begin blob (total chunks + whether
	// completion marks the target resident). The StatusOK reply's Cursor
	// is the next chunk the target wants — 0 for a fresh session, higher
	// when the target recovered a resume cursor, xferComplete when the
	// session already finished (replayed begin); the reply additionally
	// carries the target's pre-session version watermark in Version and
	// its transfer-info blob (residency + AE top digest) in Value, so the
	// source can audit what the delta plan was built against.
	KindXferBegin uint8 = 9
	// KindXferChunk carries one chunk of entries: Cursor is the chunk
	// index, Value the entry block. The reply echoes the next wanted
	// chunk in Cursor; a stale or duplicate chunk is acked without
	// re-applying (the cursor only moves forward). StatusNotFound means
	// the target does not know the session and the source must re-begin.
	KindXferChunk uint8 = 10
	// KindXferCursor is the resume probe: the source asks where the
	// target's cursor stands for a session (after faults or a restart on
	// either side). Reply as for KindXferBegin. A StatusNotFound reply
	// (unknown session) carries the target's current version watermark in
	// Version and its transfer-info blob in Value — the probe doubles as
	// the delta-planning handshake before the first begin.
	KindXferCursor uint8 = 11
	// KindXferDone closes a session: the target checks every chunk
	// arrived, applies the completion side effects (residency, version
	// watermark), and retires the session id. StatusRetry + Cursor=next
	// means chunks are still missing and the source must back-fill.
	KindXferDone uint8 = 12

	// KindAEDigest is the sub-digest round of hierarchical anti-entropy.
	// Top-level digests piggyback on the KindStats broadcast; a holder
	// whose tree disagrees sends the primary the divergent top-bucket
	// indexes plus its own sub-leaf vectors for those buckets, Epoch
	// tagging the round. The StatusOK reply carries the primary's
	// per-key (key,version) lists for the divergent sub-buckets — no
	// values move yet. StatusRetry means the receiver is not a resident
	// holder and has no authoritative tree to compare.
	KindAEDigest uint8 = 13
	// KindAERepair ships a holder's entries the primary turned out to be
	// missing (or to have stale) back to the primary, which folds them in
	// version-gated (a repair can never roll a key back). StatusRetry
	// means the receiver stopped being resident mid-round and the payload
	// was not applied.
	KindAERepair uint8 = 14
	// KindAEFetch is the value-moving step of hierarchical anti-entropy:
	// the holder asks the primary for exactly the keys the keylist round
	// proved stale or missing locally. The StatusOK reply is a standard
	// entry block; StatusRetry means the primary lost residency mid-round.
	KindAEFetch uint8 = 15

	// KindEpochFlush makes the node broadcast its epoch stats (phase A
	// of the two-phase tick).
	KindEpochFlush uint8 = 64
	// KindEpochRun makes the node run its epoch decision step (phase B).
	KindEpochRun uint8 = 65
	// KindDump returns the node's DumpInfo as JSON in Value.
	KindDump uint8 = 66
)

// KindNames maps every message kind to its wire name, for traces,
// fault-plan matching, and the dispatch regression test. The exhaustive
// annotation means a new Kind* constant cannot merge without an entry
// here — the codec is kind-generic, so this registry is where tooling
// discovers the protocol's vocabulary.
//
//lint:exhaustive
var KindNames = map[uint8]string{
	KindGet:        "get",
	KindPut:        "put",
	KindSync:       "sync",
	KindStore:      "store",
	KindDrop:       "drop",
	KindStats:      "stats",
	KindPing:       "ping",
	KindVer:        "ver",
	KindXferBegin:  "xfer-begin",
	KindXferChunk:  "xfer-chunk",
	KindXferCursor: "xfer-cursor",
	KindXferDone:   "xfer-done",
	KindAEDigest:   "ae-digest",
	KindAERepair:   "ae-repair",
	KindAEFetch:    "ae-fetch",
	KindEpochFlush: "epoch-flush",
	KindEpochRun:   "epoch-run",
	KindDump:       "dump",
}

// xferComplete is the Cursor sentinel a transfer-session reply carries
// when the session has already completed: no chunk index is ever this
// large (chunk counts are uint32).
const xferComplete = ^uint64(0)

// partitionCounters is one partition's per-epoch observation at one
// node: queries that entered the cluster here (origin), queries
// forwarded through here (transit), queries served here (served) and
// served queries beyond the replica's per-epoch capacity (overflow).
type partitionCounters struct {
	partition int
	origin    int
	transit   int
	served    int
	overflow  int
}

// placementClaim is a primary's end-of-epoch statement of a partition's
// replica set. Peers fold claims into their views, which re-converges
// any drift (e.g. after asymmetric suspicion).
type placementClaim struct {
	partition int
	primary   int
	replicas  []int // ascending roster indexes
}

// aePartitionDigest is one partition's top-level Merkle digest as
// piggybacked on the KindStats broadcast: the primary's tree root plus
// its aeTop top-bucket leaves. Co-holders compare against their own
// trees and pull a sub-digest round when they disagree — no dedicated
// digest frames ride the wire.
type aePartitionDigest struct {
	partition int
	root      uint64
	leaves    []uint64 // aeTop top-level leaves
}

// statsBlob is the payload of one KindStats broadcast.
type statsBlob struct {
	counters []partitionCounters // ascending partition order
	claims   []placementClaim    // ascending partition order
	digests  []aePartitionDigest // ascending partition order; AE epochs only
}

// appendStats encodes a statsBlob.
func appendStats(dst []byte, b *statsBlob) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b.counters)))
	for _, c := range b.counters {
		dst = binary.AppendUvarint(dst, uint64(c.partition))
		dst = binary.AppendUvarint(dst, uint64(c.origin))
		dst = binary.AppendUvarint(dst, uint64(c.transit))
		dst = binary.AppendUvarint(dst, uint64(c.served))
		dst = binary.AppendUvarint(dst, uint64(c.overflow))
	}
	dst = binary.AppendUvarint(dst, uint64(len(b.claims)))
	for _, cl := range b.claims {
		dst = binary.AppendUvarint(dst, uint64(cl.partition))
		dst = binary.AppendUvarint(dst, uint64(cl.primary))
		dst = binary.AppendUvarint(dst, uint64(len(cl.replicas)))
		for _, s := range cl.replicas {
			dst = binary.AppendUvarint(dst, uint64(s))
		}
	}
	// The digest section is always present (count 0 outside AE epochs)
	// so decodeStats's trailing-byte check stays exact.
	dst = binary.AppendUvarint(dst, uint64(len(b.digests)))
	for _, d := range b.digests {
		dst = binary.AppendUvarint(dst, uint64(d.partition))
		dst = appendAEDigest(dst, d.leaves, d.root)
	}
	return dst
}

// uvarintReader decodes a sequence of uvarints with a sticky error.
type uvarintReader struct {
	buf []byte
	err error
}

func (r *uvarintReader) next() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.err = fmt.Errorf("node: truncated or malformed uvarint")
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

// nextInt decodes a uvarint bounded by max (guarding counts read from
// the wire against allocation bombs). It returns 0 on any error so
// callers can never size an allocation from an unvalidated value.
func (r *uvarintReader) nextInt(max int) int {
	v := r.next()
	if r.err != nil {
		return 0
	}
	if v > uint64(max) {
		r.err = fmt.Errorf("node: wire value %d exceeds bound %d", v, max)
		return 0
	}
	return int(v)
}

// decodeStats parses a KindStats payload. partitions and peers bound
// the indexes a well-formed blob may mention.
func decodeStats(buf []byte, partitions, peers int) (*statsBlob, error) {
	r := &uvarintReader{buf: buf}
	b := &statsBlob{}
	n := r.nextInt(partitions)
	for i := 0; i < n && r.err == nil; i++ {
		c := partitionCounters{
			partition: r.nextInt(partitions - 1),
			origin:    int(r.next()),
			transit:   int(r.next()),
			served:    int(r.next()),
			overflow:  int(r.next()),
		}
		b.counters = append(b.counters, c)
	}
	m := r.nextInt(partitions)
	for i := 0; i < m && r.err == nil; i++ {
		cl := placementClaim{
			partition: r.nextInt(partitions - 1),
			primary:   r.nextInt(peers - 1),
		}
		k := r.nextInt(peers)
		for j := 0; j < k && r.err == nil; j++ {
			cl.replicas = append(cl.replicas, r.nextInt(peers-1))
		}
		b.claims = append(b.claims, cl)
	}
	dn := r.nextInt(partitions)
	for i := 0; i < dn && r.err == nil; i++ {
		d := aePartitionDigest{partition: r.nextInt(partitions - 1)}
		d.leaves, d.root = r.readAEDigest()
		b.digests = append(b.digests, d)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("node: %d trailing bytes after stats blob", len(r.buf))
	}
	return b, nil
}

// readAEDigest consumes one embedded AE digest (as written by
// appendAEDigest) from the reader: leaf count, fixed 8-byte leaves,
// fixed 8-byte root.
func (r *uvarintReader) readAEDigest() (leaves []uint64, root uint64) {
	const maxLeaves = 1 << 12
	n := r.nextInt(maxLeaves)
	if r.err != nil {
		return nil, 0
	}
	if len(r.buf) < 8*(n+1) {
		r.err = fmt.Errorf("node: AE digest truncated (%d bytes for %d leaves + root)", len(r.buf), n)
		return nil, 0
	}
	leaves = make([]uint64, n)
	for i := range leaves {
		leaves[i] = binary.BigEndian.Uint64(r.buf[8*i:])
	}
	root = binary.BigEndian.Uint64(r.buf[8*n:])
	r.buf = r.buf[8*(n+1):]
	return leaves, root
}

// kvEntry is one versioned key/value record of a partition snapshot.
type kvEntry struct {
	key string
	ver uint64
	val []byte
}

// appendSnapshot encodes one partition's versioned key/value data for
// a KindStore transfer. Keys are emitted in ascending order so the
// encoding is deterministic regardless of map iteration order.
func appendSnapshot(dst []byte, data map[string]entry) []byte {
	return appendEntries(dst, sortedEntries(data))
}

// sortedEntries flattens a partition map into ascending key order —
// the canonical form both one-frame snapshots and chunked transfer
// sessions slice from.
func sortedEntries(data map[string]entry) []kvEntry {
	keys := make([]string, 0, len(data))
	for k := range data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]kvEntry, 0, len(keys))
	for _, k := range keys {
		e := data[k]
		entries = append(entries, kvEntry{key: k, ver: e.ver, val: e.val})
	}
	return entries
}

// appendEntries encodes an entry block (a whole snapshot or one
// transfer chunk). decodeSnapshot is the inverse.
func appendEntries(dst []byte, entries []kvEntry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, uint64(len(e.key)))
		dst = append(dst, e.key...)
		dst = binary.AppendUvarint(dst, e.ver)
		dst = binary.AppendUvarint(dst, uint64(len(e.val)))
		dst = append(dst, e.val...)
	}
	return dst
}

// encodedEntriesLen returns len(appendEntries(nil, entries)) without
// materialising the encoding — the delta planner uses it to price what
// a filtered plan avoided shipping.
func encodedEntriesLen(entries []kvEntry) int {
	n := uvarintLen(uint64(len(entries)))
	for _, e := range entries {
		n += uvarintLen(uint64(len(e.key))) + len(e.key)
		n += uvarintLen(e.ver)
		n += uvarintLen(uint64(len(e.val))) + len(e.val)
	}
	return n
}

// uvarintLen is the encoded size of v under binary.AppendUvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendXferBegin encodes a KindXferBegin payload: the session's total
// chunk count and whether completion marks the target resident.
func appendXferBegin(dst []byte, total uint32, markResident bool) []byte {
	dst = binary.AppendUvarint(dst, uint64(total))
	if markResident {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// decodeXferBegin parses a KindXferBegin payload.
func decodeXferBegin(buf []byte) (total uint32, markResident bool, err error) {
	r := &uvarintReader{buf: buf}
	t := r.next()
	if r.err != nil {
		return 0, false, r.err
	}
	if t > 1<<32-1 {
		return 0, false, fmt.Errorf("node: transfer chunk count %d overflows uint32", t)
	}
	if len(r.buf) != 1 {
		return 0, false, fmt.Errorf("node: transfer begin blob has %d bytes after count, want 1", len(r.buf))
	}
	return uint32(t), r.buf[0] == 1, nil
}

// decodeSnapshot parses a KindStore payload into a key-ordered entry
// slice. A slice (not a map) so callers can merge it with a plain
// deterministic loop — map iteration order is banned by the
// determinism lint.
func decodeSnapshot(buf []byte) ([]kvEntry, error) {
	r := &uvarintReader{buf: buf}
	n := r.nextInt(len(buf)) // an entry costs ≥3 bytes, so len(buf) bounds the count
	entries := make([]kvEntry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		// The nextInt bound is the buffer length BEFORE the uvarint is
		// consumed, so the explicit remainder checks below are what stop
		// a truncated payload from slicing out of range.
		kl := r.nextInt(len(r.buf))
		if r.err != nil {
			break
		}
		if kl > len(r.buf) {
			return nil, fmt.Errorf("node: snapshot key truncated (%d bytes declared, %d left)", kl, len(r.buf))
		}
		k := string(r.buf[:kl])
		r.buf = r.buf[kl:]
		ver := r.next()
		vl := r.nextInt(len(r.buf))
		if r.err != nil {
			break
		}
		if vl > len(r.buf) {
			return nil, fmt.Errorf("node: snapshot value truncated (%d bytes declared, %d left)", vl, len(r.buf))
		}
		v := make([]byte, vl)
		copy(v, r.buf[:vl])
		r.buf = r.buf[vl:]
		entries = append(entries, kvEntry{key: k, ver: ver, val: v})
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("node: %d trailing bytes after snapshot", len(r.buf))
	}
	return entries, nil
}

// appendAckSet encodes the roster indexes that durably accepted a
// write, for the KindPut response. Callers pass the set ascending so
// the encoding is deterministic.
func appendAckSet(dst []byte, acked []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(acked)))
	for _, s := range acked {
		dst = binary.AppendUvarint(dst, uint64(s))
	}
	return dst
}

// DecodePutReceipt rebuilds the quorum receipt from a KindPut reply:
// the version the primary stamped and the roster indexes that durably
// acked the write. External clients (rfhctl) do not know the roster
// size, so indexes are bounded only loosely; in-cluster paths use
// decodeAckSet with the exact peer count instead.
func DecodePutReceipt(resp *transport.Message) (PutReceipt, error) {
	const loose = 1 << 20
	acked, err := decodeAckSet(resp.Value, loose)
	if err != nil {
		return PutReceipt{}, err
	}
	return PutReceipt{Version: resp.Version, Acked: acked}, nil
}

// appendAEDigest encodes a top-level digest blob (leaf hash vector
// followed by the tree root) — embedded in the KindStats digest section
// and in transfer-info replies. Leaves ride as fixed 8-byte words — the
// vector is dense and uvarint would only pessimise random hashes.
func appendAEDigest(dst []byte, leaves []uint64, root uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(leaves)))
	for _, l := range leaves {
		dst = binary.BigEndian.AppendUint64(dst, l)
	}
	return binary.BigEndian.AppendUint64(dst, root)
}

// decodeAEDigest parses a standalone digest blob. The leaf count is
// bounded loosely (a digest is a fixed-shape blob, not a data carrier);
// a count disagreeing with the local tree shape simply marks every
// bucket divergent at the comparison site.
func decodeAEDigest(buf []byte) (leaves []uint64, root uint64, err error) {
	r := &uvarintReader{buf: buf}
	leaves, root = r.readAEDigest()
	if r.err != nil {
		return nil, 0, r.err
	}
	if len(r.buf) != 0 {
		return nil, 0, fmt.Errorf("node: %d trailing bytes after AE digest", len(r.buf))
	}
	return leaves, root, nil
}

// appendAEDiff encodes the flat (PR 9) digest-reply shape: the
// divergent bucket indexes, then the replier's entries for those
// buckets as a standard entry block. The live protocol no longer ships
// this frame — it is retained (with its decoder) as the measured
// baseline of the repair bench suite.
func appendAEDiff(dst []byte, buckets []int, entries []kvEntry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(buckets)))
	for _, b := range buckets {
		dst = binary.AppendUvarint(dst, uint64(b))
	}
	return appendEntries(dst, entries)
}

// decodeAEDiff parses a flat diff blob. maxBucket bounds every bucket
// index (the local tree's leaf count).
func decodeAEDiff(buf []byte, maxBucket int) (buckets []int, entries []kvEntry, err error) {
	r := &uvarintReader{buf: buf}
	n := r.nextInt(maxBucket)
	for i := 0; i < n && r.err == nil; i++ {
		buckets = append(buckets, r.nextInt(maxBucket-1))
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	entries, err = decodeSnapshot(r.buf)
	if err != nil {
		return nil, nil, err
	}
	return buckets, entries, nil
}

// appendXferInfo encodes a transfer-info blob, carried in the Value of
// begin replies and unknown-session cursor-probe replies: one flags
// byte (bit 0 = the partition is resident at the target), then — for
// resident targets only — the target's AE top digest. Paired with the
// reply's Version field (the target's pre-session maxVer watermark) it
// is everything the source needs to plan a delta.
func appendXferInfo(dst []byte, resident bool, leaves []uint64, root uint64) []byte {
	if !resident {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return appendAEDigest(dst, leaves, root)
}

// decodeXferInfo parses a transfer-info blob. An empty buffer decodes
// as "no info" (non-resident, no digest) so probe replies from paths
// that never attach one degrade to a full transfer rather than an
// error.
func decodeXferInfo(buf []byte) (resident bool, leaves []uint64, root uint64, err error) {
	if len(buf) == 0 {
		return false, nil, 0, nil
	}
	r := &uvarintReader{buf: buf[1:]}
	if buf[0] == 1 {
		leaves, root = r.readAEDigest()
	} else if buf[0] != 0 {
		return false, nil, 0, fmt.Errorf("node: transfer info has unknown flags byte %#x", buf[0])
	}
	if r.err != nil {
		return false, nil, 0, r.err
	}
	if len(r.buf) != 0 {
		return false, nil, 0, fmt.Errorf("node: %d trailing bytes after transfer info", len(r.buf))
	}
	return buf[0] == 1, leaves, root, nil
}

// appendAESub encodes a KindAEDigest request: for each divergent
// top-level bucket, its index plus the sender's aeFanout sub-leaf
// hashes. Top indexes ascend, so the encoding is deterministic.
func appendAESub(dst []byte, tops []int, subs [][]uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(tops)))
	for i, b := range tops {
		dst = binary.AppendUvarint(dst, uint64(b))
		for _, l := range subs[i] {
			dst = binary.BigEndian.AppendUint64(dst, l)
		}
	}
	return dst
}

// decodeAESub parses a KindAEDigest request. Every top bucket must
// carry exactly aeFanout sub-leaves.
func decodeAESub(buf []byte) (tops []int, subs [][]uint64, err error) {
	r := &uvarintReader{buf: buf}
	n := r.nextInt(aeTop)
	for i := 0; i < n && r.err == nil; i++ {
		b := r.nextInt(aeTop - 1)
		if r.err != nil {
			break
		}
		if len(r.buf) < 8*aeFanout {
			return nil, nil, fmt.Errorf("node: AE sub-digest for bucket %d truncated (%d bytes left)", b, len(r.buf))
		}
		leaves := make([]uint64, aeFanout)
		for j := range leaves {
			leaves[j] = binary.BigEndian.Uint64(r.buf[8*j:])
		}
		r.buf = r.buf[8*aeFanout:]
		tops = append(tops, b)
		subs = append(subs, leaves)
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, nil, fmt.Errorf("node: %d trailing bytes after AE sub-digest", len(r.buf))
	}
	return tops, subs, nil
}

// aeKeyVer is one (key, version) pair of a keylist reply — the
// value-free reconciliation unit of hierarchical anti-entropy.
type aeKeyVer struct {
	key string
	ver uint64
}

// appendAEKeylists encodes a KindAEDigest reply: for each divergent
// sub-bucket, its global index plus the replier's (key, version) pairs
// for that bucket. Sub indexes ascend and keys ascend within a bucket,
// so the encoding is deterministic. An empty list still rides the wire:
// it tells the holder the primary has nothing there, so surplus holder
// keys flow back as repairs.
func appendAEKeylists(dst []byte, subIdx []int, lists [][]aeKeyVer) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(subIdx)))
	for i, s := range subIdx {
		dst = binary.AppendUvarint(dst, uint64(s))
		dst = binary.AppendUvarint(dst, uint64(len(lists[i])))
		for _, kv := range lists[i] {
			dst = binary.AppendUvarint(dst, uint64(len(kv.key)))
			dst = append(dst, kv.key...)
			dst = binary.AppendUvarint(dst, kv.ver)
		}
	}
	return dst
}

// decodeAEKeylists parses a KindAEDigest reply.
func decodeAEKeylists(buf []byte) (subIdx []int, lists [][]aeKeyVer, err error) {
	r := &uvarintReader{buf: buf}
	n := r.nextInt(aeSubCount)
	for i := 0; i < n && r.err == nil; i++ {
		s := r.nextInt(aeSubCount - 1)
		m := r.nextInt(len(r.buf))
		list := make([]aeKeyVer, 0, m)
		for j := 0; j < m && r.err == nil; j++ {
			kl := r.nextInt(len(r.buf))
			if r.err != nil {
				break
			}
			if kl > len(r.buf) {
				return nil, nil, fmt.Errorf("node: AE keylist key truncated (%d bytes declared, %d left)", kl, len(r.buf))
			}
			k := string(r.buf[:kl])
			r.buf = r.buf[kl:]
			list = append(list, aeKeyVer{key: k, ver: r.next()})
		}
		if r.err != nil {
			break
		}
		subIdx = append(subIdx, s)
		lists = append(lists, list)
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, nil, fmt.Errorf("node: %d trailing bytes after AE keylists", len(r.buf))
	}
	return subIdx, lists, nil
}

// appendAEKeys encodes a KindAEFetch request: the keys the holder
// wants values for, in the keylist reply's order.
func appendAEKeys(dst []byte, keys []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
	}
	return dst
}

// decodeAEKeys parses a KindAEFetch request.
func decodeAEKeys(buf []byte) ([]string, error) {
	r := &uvarintReader{buf: buf}
	n := r.nextInt(len(buf))
	keys := make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		kl := r.nextInt(len(r.buf))
		if r.err != nil {
			break
		}
		if kl > len(r.buf) {
			return nil, fmt.Errorf("node: AE fetch key truncated (%d bytes declared, %d left)", kl, len(r.buf))
		}
		keys = append(keys, string(r.buf[:kl]))
		r.buf = r.buf[kl:]
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("node: %d trailing bytes after AE key list", len(r.buf))
	}
	return keys, nil
}

// decodeAckSet parses a KindPut response's ack set. peers bounds both
// the count and every index.
func decodeAckSet(buf []byte, peers int) ([]int, error) {
	r := &uvarintReader{buf: buf}
	n := r.nextInt(peers)
	acked := make([]int, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		acked = append(acked, r.nextInt(peers-1))
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("node: %d trailing bytes after ack set", len(r.buf))
	}
	return acked, nil
}
