package node

import (
	"bytes"
	"reflect"
	"testing"
)

func TestStatsBlobRoundTrip(t *testing.T) {
	in := &statsBlob{
		counters: []partitionCounters{
			{partition: 0, origin: 3, transit: 1, served: 4, overflow: 0},
			{partition: 7, origin: 0, transit: 9, served: 2, overflow: 5},
		},
		claims: []placementClaim{
			{partition: 0, primary: 1, replicas: []int{0, 1, 2}},
			{partition: 7, primary: 2, replicas: []int{2}},
		},
	}
	enc := appendStats(nil, in)
	out, err := decodeStats(enc, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

func TestStatsBlobEmpty(t *testing.T) {
	enc := appendStats(nil, &statsBlob{})
	out, err := decodeStats(enc, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.counters) != 0 || len(out.claims) != 0 {
		t.Fatalf("empty blob decoded non-empty: %+v", out)
	}
}

func TestDecodeStatsRejectsCorrupt(t *testing.T) {
	good := appendStats(nil, &statsBlob{
		counters: []partitionCounters{{partition: 1, origin: 2}},
		claims:   []placementClaim{{partition: 1, primary: 0, replicas: []int{0}}},
	})
	cases := map[string][]byte{
		"empty truncated":     good[:0],
		"truncated counters":  good[:2],
		"trailing bytes":      append(append([]byte{}, good...), 1),
		"partition too large": appendStats(nil, &statsBlob{counters: []partitionCounters{{partition: 99}}}),
		"peer too large":      appendStats(nil, &statsBlob{claims: []placementClaim{{partition: 1, primary: 42}}}),
	}
	for name, buf := range cases {
		if _, err := decodeStats(buf, 8, 3); err == nil {
			t.Errorf("%s: corrupt stats accepted", name)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	in := map[string][]byte{
		"alpha": []byte("1"),
		"beta":  {},
		"gamma": bytes.Repeat([]byte("x"), 300),
	}
	enc := appendSnapshot(nil, in)
	out, err := decodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("size mismatch: %d vs %d", len(out), len(in))
	}
	for k, v := range in {
		if !bytes.Equal(out[k], v) {
			t.Fatalf("key %q: %q vs %q", k, out[k], v)
		}
	}
}

func TestSnapshotEncodingIsCanonical(t *testing.T) {
	a := map[string][]byte{"k1": []byte("v1"), "k2": []byte("v2"), "k3": []byte("v3")}
	b := map[string][]byte{"k3": []byte("v3"), "k1": []byte("v1"), "k2": []byte("v2")}
	if !bytes.Equal(appendSnapshot(nil, a), appendSnapshot(nil, b)) {
		t.Fatal("snapshot encoding depends on construction order")
	}
}

func TestDecodeSnapshotRejectsCorrupt(t *testing.T) {
	good := appendSnapshot(nil, map[string][]byte{"key": []byte("value")})
	cases := map[string][]byte{
		"truncated": good[:len(good)-2],
		"trailing":  append(append([]byte{}, good...), 0),
		"bomb":      {0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
	}
	for name, buf := range cases {
		if _, err := decodeSnapshot(buf); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}
