package node

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func TestStatsBlobRoundTrip(t *testing.T) {
	in := &statsBlob{
		counters: []partitionCounters{
			{partition: 0, origin: 3, transit: 1, served: 4, overflow: 0},
			{partition: 7, origin: 0, transit: 9, served: 2, overflow: 5},
		},
		claims: []placementClaim{
			{partition: 0, primary: 1, replicas: []int{0, 1, 2}},
			{partition: 7, primary: 2, replicas: []int{2}},
		},
	}
	enc := appendStats(nil, in)
	out, err := decodeStats(enc, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

func TestStatsBlobEmpty(t *testing.T) {
	enc := appendStats(nil, &statsBlob{})
	out, err := decodeStats(enc, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.counters) != 0 || len(out.claims) != 0 {
		t.Fatalf("empty blob decoded non-empty: %+v", out)
	}
}

func TestDecodeStatsRejectsCorrupt(t *testing.T) {
	good := appendStats(nil, &statsBlob{
		counters: []partitionCounters{{partition: 1, origin: 2}},
		claims:   []placementClaim{{partition: 1, primary: 0, replicas: []int{0}}},
	})
	cases := map[string][]byte{
		"empty truncated":     good[:0],
		"truncated counters":  good[:2],
		"trailing bytes":      append(append([]byte{}, good...), 1),
		"partition too large": appendStats(nil, &statsBlob{counters: []partitionCounters{{partition: 99}}}),
		"peer too large":      appendStats(nil, &statsBlob{claims: []placementClaim{{partition: 1, primary: 42}}}),
	}
	for name, buf := range cases {
		if _, err := decodeStats(buf, 8, 3); err == nil {
			t.Errorf("%s: corrupt stats accepted", name)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	in := map[string]entry{
		"alpha": {val: []byte("1"), ver: 7},
		"beta":  {val: []byte{}, ver: 0},
		"gamma": {val: bytes.Repeat([]byte("x"), 300), ver: 9<<20 | 3},
	}
	enc := appendSnapshot(nil, in)
	out, err := decodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("size mismatch: %d vs %d", len(out), len(in))
	}
	for _, e := range out {
		want, ok := in[e.key]
		if !ok {
			t.Fatalf("decoded unknown key %q", e.key)
		}
		if !bytes.Equal(e.val, want.val) || e.ver != want.ver {
			t.Fatalf("key %q: got (%q, %d), want (%q, %d)", e.key, e.val, e.ver, want.val, want.ver)
		}
	}
	// Entries come back in the canonical ascending key order.
	for i := 1; i < len(out); i++ {
		if out[i-1].key >= out[i].key {
			t.Fatalf("decoded entries out of order: %q before %q", out[i-1].key, out[i].key)
		}
	}
}

func TestSnapshotEncodingIsCanonical(t *testing.T) {
	a := map[string]entry{"k1": {val: []byte("v1"), ver: 1}, "k2": {val: []byte("v2"), ver: 2}, "k3": {val: []byte("v3"), ver: 3}}
	b := map[string]entry{"k3": {val: []byte("v3"), ver: 3}, "k1": {val: []byte("v1"), ver: 1}, "k2": {val: []byte("v2"), ver: 2}}
	if !bytes.Equal(appendSnapshot(nil, a), appendSnapshot(nil, b)) {
		t.Fatal("snapshot encoding depends on construction order")
	}
}

func TestDecodeSnapshotRejectsCorrupt(t *testing.T) {
	good := appendSnapshot(nil, map[string]entry{"key": {val: []byte("value"), ver: 5}})
	cases := map[string][]byte{
		"truncated": good[:len(good)-2],
		"trailing":  append(append([]byte{}, good...), 0),
		"bomb":      {0xFF, 0xFF, 0xFF, 0xFF, 0x0F},
	}
	for name, buf := range cases {
		if _, err := decodeSnapshot(buf); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}

func TestAckSetRoundTrip(t *testing.T) {
	cases := [][]int{nil, {0}, {0, 2, 4}, {1, 2, 3, 4}}
	for _, in := range cases {
		enc := appendAckSet(nil, in)
		out, err := decodeAckSet(enc, 5)
		if err != nil {
			t.Fatalf("acks %v: %v", in, err)
		}
		if len(out) != len(in) {
			t.Fatalf("acks %v: decoded %v", in, out)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("acks %v: decoded %v", in, out)
			}
		}
	}
}

func TestDecodeAckSetRejectsCorrupt(t *testing.T) {
	good := appendAckSet(nil, []int{0, 2})
	cases := map[string][]byte{
		"truncated":       good[:1],
		"trailing":        append(append([]byte{}, good...), 0),
		"count too large": appendAckSet(nil, []int{0, 1, 2, 3, 4, 5}),
		"index too large": appendAckSet(nil, []int{9}),
	}
	for name, buf := range cases {
		if _, err := decodeAckSet(buf, 5); err == nil {
			t.Errorf("%s: corrupt ack set accepted", name)
		}
	}
}

func TestXferBeginRoundTrip(t *testing.T) {
	cases := []struct {
		total uint32
		mark  bool
	}{
		{0, false}, {0, true}, {1, false}, {17, true}, {1<<32 - 1, true},
	}
	for _, c := range cases {
		enc := appendXferBegin(nil, c.total, c.mark)
		total, mark, err := decodeXferBegin(enc)
		if err != nil {
			t.Fatalf("(%d, %v): %v", c.total, c.mark, err)
		}
		if total != c.total || mark != c.mark {
			t.Fatalf("(%d, %v) round-tripped to (%d, %v)", c.total, c.mark, total, mark)
		}
	}
}

func TestDecodeXferBeginRejectsCorrupt(t *testing.T) {
	good := appendXferBegin(nil, 17, true)
	cases := map[string][]byte{
		"empty":           good[:0],
		"missing flag":    good[:len(good)-1],
		"trailing":        append(append([]byte{}, good...), 0),
		"count overflows": binary.AppendUvarint(nil, 1<<32), // and no flag byte either
	}
	for name, buf := range cases {
		if _, _, err := decodeXferBegin(buf); err == nil {
			t.Errorf("%s: corrupt transfer begin accepted", name)
		}
	}
}

func TestAEDigestRoundTrip(t *testing.T) {
	leaves := make([]uint64, aeTop)
	for i := range leaves {
		leaves[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	enc := appendAEDigest(nil, leaves, 0xDEADBEEF)
	got, root, err := decodeAEDigest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if root != 0xDEADBEEF || len(got) != aeTop {
		t.Fatalf("round-trip gave root %x, %d leaves", root, len(got))
	}
	for i := range leaves {
		if got[i] != leaves[i] {
			t.Fatalf("leaf %d round-tripped to %x, want %x", i, got[i], leaves[i])
		}
	}
	// The empty vector (zero leaves + root) is legal too.
	if _, root, err := decodeAEDigest(appendAEDigest(nil, nil, 7)); err != nil || root != 7 {
		t.Fatalf("empty digest: root %d err %v", root, err)
	}
}

func TestDecodeAEDigestRejectsCorrupt(t *testing.T) {
	good := appendAEDigest(nil, make([]uint64, aeTop), 1)
	cases := map[string][]byte{
		"empty input":    {},
		"truncated leaf": good[:len(good)-9],
		"missing root":   good[:len(good)-8],
		"trailing":       append(append([]byte{}, good...), 0),
		"count bomb":     binary.AppendUvarint(nil, 1<<20),
	}
	for name, buf := range cases {
		if _, _, err := decodeAEDigest(buf); err == nil {
			t.Errorf("%s: corrupt AE digest accepted", name)
		}
	}
}

func TestAEDiffRoundTrip(t *testing.T) {
	buckets := []int{0, 7, 63}
	entries := []kvEntry{
		{key: "a", ver: 3, val: []byte("av")},
		{key: "b", ver: 9, val: nil},
	}
	enc := appendAEDiff(nil, buckets, entries)
	gb, ge, err := decodeAEDiff(enc, aeTop)
	if err != nil {
		t.Fatal(err)
	}
	if len(gb) != len(buckets) || len(ge) != len(entries) {
		t.Fatalf("round-trip gave %d buckets, %d entries", len(gb), len(ge))
	}
	for i, b := range buckets {
		if gb[i] != b {
			t.Fatalf("bucket %d round-tripped to %d, want %d", i, gb[i], b)
		}
	}
	for i, e := range entries {
		if ge[i].key != e.key || ge[i].ver != e.ver || string(ge[i].val) != string(e.val) {
			t.Fatalf("entry %d round-tripped to %+v, want %+v", i, ge[i], e)
		}
	}
	// Empty diff = trees agree: no buckets, no entries.
	if gb, ge, err := decodeAEDiff(appendAEDiff(nil, nil, nil), aeTop); err != nil || len(gb) != 0 || len(ge) != 0 {
		t.Fatalf("empty diff: %v %v %v", gb, ge, err)
	}
}

func TestDecodeAEDiffRejectsCorrupt(t *testing.T) {
	good := appendAEDiff(nil, []int{1, 2}, []kvEntry{{key: "k", ver: 1, val: []byte("v")}})
	cases := map[string][]byte{
		"empty input":         {},
		"bucket out of range": appendAEDiff(nil, []int{aeTop}, nil),
		"truncated entries":   good[:len(good)-1],
		"trailing":            append(append([]byte{}, good...), 0),
	}
	for name, buf := range cases {
		if _, _, err := decodeAEDiff(buf, aeTop); err == nil {
			t.Errorf("%s: corrupt AE diff accepted", name)
		}
	}
}
