package overlay

import (
	"testing"

	"repro/internal/stats"
)

func BenchmarkRoute(b *testing.B) {
	ids := randomIDs(1000, 1)
	n, err := New(ids, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Route(ids[i%len(ids)], rng.Uint64()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild1000(b *testing.B) {
	ids := randomIDs(1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(ids, 4); err != nil {
			b.Fatal(err)
		}
	}
}
