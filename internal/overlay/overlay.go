// Package overlay implements the Pastry/Tapestry-style prefix routing
// of §II-B: "The routing protocol messages are labeled with a
// destination ID. It routes messages directly to the closest node which
// has the desired ID and matches the prefix. ... The cost of routing is
// O(log n)."
//
// Nodes carry 64-bit identifiers read as 16 hexadecimal digits. Each
// node keeps a routing table with one row per shared-prefix length and
// one column per next digit, plus a leaf set of numerically nearest
// neighbours. A lookup greedily extends the shared prefix each hop,
// giving O(log₁₆ n) expected hops — the property the paper asserts and
// this package's tests verify.
//
// The simulation engine models inter-datacenter hops explicitly (that
// is where the paper's traffic hubs live); this overlay is the
// intra-system routing substrate, exercised by its own tests and
// benchmarks to validate the O(log n) claim.
package overlay

import (
	"fmt"
	"sort"
)

// digits is the identifier length in base-16 digits.
const digits = 16

// digitAt extracts the i-th hex digit (0 = most significant).
func digitAt(id uint64, i int) int {
	shift := uint(4 * (digits - 1 - i))
	return int((id >> shift) & 0xF)
}

// sharedPrefix returns the number of leading hex digits a and b share.
func sharedPrefix(a, b uint64) int {
	for i := 0; i < digits; i++ {
		if digitAt(a, i) != digitAt(b, i) {
			return i
		}
	}
	return digits
}

// distance is the absolute numeric distance on the 64-bit id line.
func distance(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Node is one overlay participant.
type Node struct {
	ID uint64
	// table[row][col] = id of a node sharing `row` prefix digits with
	// this node and having digit `col` at position `row`; zero entry
	// with ok=false means empty.
	table [digits][16]uint64
	okTab [digits][16]bool
	// leaves are the numerically nearest node ids (both sides).
	leaves []uint64
}

// Network is a static overlay over a known node set. Build with New;
// route with Route.
type Network struct {
	nodes map[uint64]*Node
	ids   []uint64 // sorted
	// LeafSize is the number of leaf-set entries per side.
	LeafSize int
}

// New builds the overlay for the given node ids (duplicates rejected).
func New(ids []uint64, leafSize int) (*Network, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("overlay: need at least one node")
	}
	if leafSize < 1 {
		return nil, fmt.Errorf("overlay: leaf size must be positive")
	}
	n := &Network{nodes: make(map[uint64]*Node, len(ids)), LeafSize: leafSize}
	for _, id := range ids {
		if _, dup := n.nodes[id]; dup {
			return nil, fmt.Errorf("overlay: duplicate node id %x", id)
		}
		n.nodes[id] = &Node{ID: id}
		n.ids = append(n.ids, id)
	}
	sort.Slice(n.ids, func(i, j int) bool { return n.ids[i] < n.ids[j] })
	for _, id := range n.ids {
		n.fill(n.nodes[id])
	}
	return n, nil
}

// fill populates one node's routing table and leaf set from the global
// membership (static network: no join protocol needed).
func (n *Network) fill(node *Node) {
	for _, other := range n.ids {
		if other == node.ID {
			continue
		}
		row := sharedPrefix(node.ID, other)
		col := digitAt(other, row)
		// Prefer the numerically closest candidate per cell, making the
		// tables deterministic.
		if !node.okTab[row][col] || distance(other, node.ID) < distance(node.table[row][col], node.ID) {
			node.table[row][col] = other
			node.okTab[row][col] = true
		}
	}
	// Leaf set: LeafSize nearest on each side in the sorted ring.
	idx := sort.Search(len(n.ids), func(i int) bool { return n.ids[i] >= node.ID })
	for off := 1; off <= n.LeafSize; off++ {
		lo := (idx - off + len(n.ids)) % len(n.ids)
		hi := (idx + off) % len(n.ids)
		if n.ids[lo] != node.ID {
			node.leaves = append(node.leaves, n.ids[lo])
		}
		if n.ids[hi] != node.ID && n.ids[hi] != n.ids[lo] {
			node.leaves = append(node.leaves, n.ids[hi])
		}
	}
}

// Size returns the number of overlay nodes.
func (n *Network) Size() int { return len(n.ids) }

// Owner returns the node numerically closest to the key (ties toward
// the lower id) — the node "which has the desired ID".
func (n *Network) Owner(key uint64) uint64 {
	idx := sort.Search(len(n.ids), func(i int) bool { return n.ids[i] >= key })
	var cands []uint64
	if idx < len(n.ids) {
		cands = append(cands, n.ids[idx])
	}
	if idx > 0 {
		cands = append(cands, n.ids[idx-1])
	} else {
		cands = append(cands, n.ids[len(n.ids)-1])
	}
	if idx == len(n.ids) {
		cands = append(cands, n.ids[0])
	}
	best := cands[0]
	for _, c := range cands[1:] {
		dc, db := distance(c, key), distance(best, key)
		if dc < db || (dc == db && c < best) {
			best = c
		}
	}
	return best
}

// Route forwards a lookup for key from the given start node and
// returns the node path traversed (start inclusive, owner last). The
// per-hop rule is Pastry's: extend the shared prefix via the routing
// table; if the cell is empty, move to any known node strictly
// numerically closer to the key; stop when no improvement exists.
func (n *Network) Route(from, key uint64) ([]uint64, error) {
	cur, ok := n.nodes[from]
	if !ok {
		return nil, fmt.Errorf("overlay: unknown start node %x", from)
	}
	path := []uint64{cur.ID}
	for hops := 0; hops <= len(n.ids); hops++ {
		if cur.ID == n.Owner(key) {
			return path, nil
		}
		next, ok := n.nextHop(cur, key)
		if !ok {
			// No strictly closer node known: cur is the best reachable
			// approximation; by leaf-set construction this only happens
			// at the owner.
			return path, nil
		}
		cur = n.nodes[next]
		path = append(path, next)
	}
	return nil, fmt.Errorf("overlay: routing loop for key %x", key)
}

// nextHop picks the next node per the prefix rule.
func (n *Network) nextHop(cur *Node, key uint64) (uint64, bool) {
	row := sharedPrefix(cur.ID, key)
	if row < digits {
		col := digitAt(key, row)
		if cur.okTab[row][col] {
			return cur.table[row][col], true
		}
	}
	// Fallback (Pastry's "rare case"): any known node strictly closer
	// to the key — leaf set first, then the whole table. Distance
	// strictly decreases every hop, so routing always terminates.
	best := cur.ID
	bestDist := distance(cur.ID, key)
	consider := func(id uint64) {
		if d := distance(id, key); d < bestDist || (d == bestDist && id < best) {
			best, bestDist = id, d
		}
	}
	for _, l := range cur.leaves {
		consider(l)
	}
	for r := 0; r < digits; r++ {
		for c := 0; c < 16; c++ {
			if cur.okTab[r][c] {
				consider(cur.table[r][c])
			}
		}
	}
	if best == cur.ID {
		return 0, false
	}
	return best, true
}
