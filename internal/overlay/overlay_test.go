package overlay

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func randomIDs(n int, seed uint64) []uint64 {
	rng := stats.NewRNG(seed)
	seen := make(map[uint64]bool, n)
	out := make([]uint64, 0, n)
	for len(out) < n {
		id := rng.Uint64()
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 4); err == nil {
		t.Fatal("empty node set accepted")
	}
	if _, err := New([]uint64{1, 1}, 4); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if _, err := New([]uint64{1}, 0); err == nil {
		t.Fatal("zero leaf size accepted")
	}
}

func TestDigitHelpers(t *testing.T) {
	id := uint64(0xF123456789ABCDE0)
	if digitAt(id, 0) != 0xF || digitAt(id, 1) != 0x1 || digitAt(id, 15) != 0x0 {
		t.Fatal("digitAt wrong")
	}
	if sharedPrefix(0xFF00000000000000, 0xFF10000000000000) != 2 {
		t.Fatalf("sharedPrefix = %d", sharedPrefix(0xFF00000000000000, 0xFF10000000000000))
	}
	if sharedPrefix(5, 5) != digits {
		t.Fatal("identical ids should share all digits")
	}
	if distance(3, 10) != 7 || distance(10, 3) != 7 {
		t.Fatal("distance wrong")
	}
}

func TestOwnerIsNumericallyClosest(t *testing.T) {
	ids := []uint64{100, 200, 300}
	n, err := New(ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[uint64]uint64{
		100: 100, 149: 100, 151: 200, 250: 200, 251: 300, 1000: 300, 0: 100,
	}
	for key, want := range cases {
		if got := n.Owner(key); got != want {
			t.Fatalf("Owner(%d) = %d, want %d", key, got, want)
		}
	}
	// Exact midpoint ties toward the lower id.
	if got := n.Owner(150); got != 100 {
		t.Fatalf("Owner(150) = %d, want 100 (tie to lower)", got)
	}
}

func TestRouteReachesOwner(t *testing.T) {
	ids := randomIDs(200, 7)
	n, err := New(ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(9)
	for trial := 0; trial < 300; trial++ {
		from := ids[rng.Intn(len(ids))]
		key := rng.Uint64()
		path, err := n.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if path[0] != from {
			t.Fatal("path does not start at the source")
		}
		if path[len(path)-1] != n.Owner(key) {
			t.Fatalf("trial %d: route ended at %x, owner %x", trial, path[len(path)-1], n.Owner(key))
		}
		// No node repeats (loop freedom).
		seen := make(map[uint64]bool, len(path))
		for _, h := range path {
			if seen[h] {
				t.Fatal("routing loop")
			}
			seen[h] = true
		}
	}
}

func TestRouteHopsLogarithmic(t *testing.T) {
	// §II-B: "The cost of routing is O(log n)". With base-16 digits the
	// expected hop count is ~log16(n); assert a generous multiple.
	for _, size := range []int{50, 200, 800} {
		ids := randomIDs(size, uint64(size))
		n, err := New(ids, 4)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(uint64(size) + 1)
		maxHops := 0
		total := 0
		const trials = 200
		for trial := 0; trial < trials; trial++ {
			from := ids[rng.Intn(len(ids))]
			path, err := n.Route(from, rng.Uint64())
			if err != nil {
				t.Fatal(err)
			}
			hops := len(path) - 1
			total += hops
			if hops > maxHops {
				maxHops = hops
			}
		}
		bound := 3*math.Log2(float64(size))/4 + 4 // ~3·log16(n) + slack
		if float64(maxHops) > bound {
			t.Fatalf("n=%d: max hops %d exceeds O(log n) bound %.1f", size, maxHops, bound)
		}
		t.Logf("n=%d: mean hops %.2f, max %d (bound %.1f)", size, float64(total)/trials, maxHops, bound)
	}
}

func TestRouteFromOwnerIsZeroHops(t *testing.T) {
	ids := randomIDs(50, 3)
	n, _ := New(ids, 4)
	key := ids[10] // key exactly at a node
	path, err := n.Route(ids[10], key)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 {
		t.Fatalf("self-route path = %v", path)
	}
}

func TestRouteUnknownStart(t *testing.T) {
	n, _ := New([]uint64{1, 2, 3}, 2)
	if _, err := n.Route(99, 1); err == nil {
		t.Fatal("unknown start accepted")
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	n, err := New([]uint64{42}, 2)
	if err != nil {
		t.Fatal(err)
	}
	path, err := n.Route(42, 7)
	if err != nil || len(path) != 1 {
		t.Fatalf("single-node route = %v, %v", path, err)
	}
	if n.Owner(999) != 42 {
		t.Fatal("single node owns everything")
	}
}

func TestRouteDeterministic(t *testing.T) {
	ids := randomIDs(100, 11)
	a, _ := New(ids, 4)
	b, _ := New(ids, 4)
	rng := stats.NewRNG(13)
	for trial := 0; trial < 50; trial++ {
		from := ids[rng.Intn(len(ids))]
		key := rng.Uint64()
		pa, err := a.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if len(pa) != len(pb) {
			t.Fatal("nondeterministic path length")
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatal("nondeterministic path")
			}
		}
	}
}

func TestOwnerPropertyRandomised(t *testing.T) {
	check := func(seed uint64, key uint64) bool {
		ids := randomIDs(20, seed|1)
		n, err := New(ids, 3)
		if err != nil {
			return false
		}
		owner := n.Owner(key)
		// No other node is strictly closer.
		for _, id := range ids {
			if distance(id, key) < distance(owner, key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
