// Package plot renders metric time series as ASCII line charts for the
// terminal, so the paper's figures can be eyeballed straight from
// rfhexp without external tooling.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labelled curve.
type Series struct {
	Name   string
	Points []float64
}

// markers assigns one glyph per curve, in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Options sizes and labels a chart.
type Options struct {
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 16)
	Title  string
	YLabel string
}

// Render draws the series into one string. Curves are downsampled by
// bucket averaging to the plot width; the y-axis is shared and linear.
// NaN and ±Inf points are skipped.
func Render(series []Series, opts Options) string {
	if opts.Width <= 0 {
		opts.Width = 72
	}
	if opts.Height <= 0 {
		opts.Height = 16
	}
	lo, hi := bounds(series)
	if math.IsInf(lo, 0) {
		// No finite data at all.
		return opts.Title + "\n(no data)\n"
	}
	if lo == hi {
		lo, hi = lo-1, hi+1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		cols := resample(s.Points, opts.Width)
		for c, v := range cols {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			frac := (v - lo) / (hi - lo)
			row := opts.Height - 1 - int(frac*float64(opts.Height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= opts.Height {
				row = opts.Height - 1
			}
			grid[row][c] = mark
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		b.WriteString(opts.Title)
		b.WriteByte('\n')
	}
	yTop := fmt.Sprintf("%.4g", hi)
	yBot := fmt.Sprintf("%.4g", lo)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", pad, yTop)
		case opts.Height - 1:
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", pad))
	b.WriteString(" +")
	b.WriteString(strings.Repeat("-", opts.Width))
	b.WriteByte('\n')
	// Legend.
	b.WriteString(strings.Repeat(" ", pad+2))
	for si, s := range series {
		if si > 0 {
			b.WriteString("   ")
		}
		fmt.Fprintf(&b, "%c %s", markers[si%len(markers)], s.Name)
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "   [y: %s]", opts.YLabel)
	}
	b.WriteByte('\n')
	return b.String()
}

// bounds finds the finite min/max across all series.
func bounds(series []Series) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Points {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	return lo, hi
}

// resample reduces (or stretches) a series to exactly width columns by
// averaging each column's bucket. Empty buckets become NaN.
func resample(pts []float64, width int) []float64 {
	out := make([]float64, width)
	if len(pts) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	for c := 0; c < width; c++ {
		start := c * len(pts) / width
		end := (c + 1) * len(pts) / width
		if end <= start {
			end = start + 1
		}
		if end > len(pts) {
			end = len(pts)
		}
		sum, n := 0.0, 0
		for _, v := range pts[start:end] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sum += v
			n++
		}
		if n == 0 {
			out[c] = math.NaN()
		} else {
			out[c] = sum / float64(n)
		}
	}
	return out
}
