package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasicShape(t *testing.T) {
	out := Render([]Series{
		{Name: "up", Points: []float64{0, 1, 2, 3, 4}},
		{Name: "down", Points: []float64{4, 3, 2, 1, 0}},
	}, Options{Width: 20, Height: 8, Title: "test chart", YLabel: "units"})
	if !strings.Contains(out, "test chart") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "[y: units]") {
		t.Fatal("y label missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 8 rows + axis + legend = 11.
	if len(lines) != 11 {
		t.Fatalf("lines = %d\n%s", len(lines), out)
	}
	// Axis labels carry the data range.
	if !strings.Contains(out, "4") || !strings.Contains(out, "0") {
		t.Fatalf("bounds missing:\n%s", out)
	}
}

func TestRenderRisingCurveOrientation(t *testing.T) {
	out := Render([]Series{{Name: "s", Points: []float64{0, 10}}}, Options{Width: 10, Height: 5})
	lines := strings.Split(out, "\n")
	// First plot row (top) must contain the marker toward the right,
	// last plot row toward the left.
	top, bottom := lines[0], lines[4]
	if strings.LastIndex(top, "*") < strings.LastIndex(bottom, "*") {
		t.Fatalf("curve not rising:\n%s", out)
	}
}

func TestRenderEmptyAndDegenerate(t *testing.T) {
	out := Render(nil, Options{Title: "t"})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty render:\n%s", out)
	}
	out = Render([]Series{{Name: "nan", Points: []float64{math.NaN(), math.Inf(1)}}}, Options{})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("non-finite-only render:\n%s", out)
	}
	// A constant series must not divide by zero.
	out = Render([]Series{{Name: "c", Points: []float64{5, 5, 5}}}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "c") {
		t.Fatalf("constant render:\n%s", out)
	}
}

func TestResample(t *testing.T) {
	// 6 points into 3 columns: bucket means.
	got := resample([]float64{1, 3, 5, 7, 9, 11}, 3)
	want := []float64{2, 6, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resample = %v", got)
		}
	}
	// Stretching 2 points into 4 columns repeats values.
	got = resample([]float64{1, 9}, 4)
	if got[0] != 1 || got[3] != 9 {
		t.Fatalf("stretched = %v", got)
	}
	// Empty input yields NaN columns.
	got = resample(nil, 2)
	if !math.IsNaN(got[0]) || !math.IsNaN(got[1]) {
		t.Fatalf("empty resample = %v", got)
	}
	// Infinite values are skipped, leaving the finite mean.
	got = resample([]float64{math.Inf(1), 4}, 1)
	if got[0] != 4 {
		t.Fatalf("inf-skip resample = %v", got)
	}
}

func TestManySeriesMarkersCycle(t *testing.T) {
	var series []Series
	for i := 0; i < 10; i++ {
		series = append(series, Series{Name: string(rune('a' + i)), Points: []float64{float64(i)}})
	}
	out := Render(series, Options{Width: 12, Height: 4})
	if !strings.Contains(out, "* a") || !strings.Contains(out, "* i") {
		t.Fatalf("marker cycling broken:\n%s", out)
	}
}
