package policy

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// EAD approximates the "Efficient and Adaptive Decentralized file
// replication" algorithm of Shen [17], which the paper credits with the
// traffic-hub concept RFH builds on. Differences from RFH, per the
// cited design:
//
//   - replication targets the single most-loaded forwarding node on the
//     query path (no top-K hub set, no blocking-probability server
//     selection — a random server in the chosen datacenter);
//   - replicas carry a *lifetime*: each replica lives for TTL epochs,
//     extended whenever its datacenter stays busy; expired replicas are
//     removed regardless of the availability budget beyond the floor
//     (EAD's adaptive decay, in place of RFH's δ-threshold suicide).
//
// EAD is not part of the paper's comparison set; it is provided as an
// extension baseline for studying how much RFH's top-K hub set and
// eq. (18) server selection add over plain hub replication.
type EAD struct {
	// TTL is the replica lifetime in epochs (default 30).
	TTL int
	// expiry[partition][server] is the epoch at which the copy lapses.
	expiry map[int]map[cluster.ServerID]int
}

var _ Policy = (*EAD)(nil)

// NewEAD returns the EAD extension baseline with the given replica
// lifetime (epochs); ttl <= 0 selects the default of 30.
func NewEAD(ttl int) *EAD {
	if ttl <= 0 {
		ttl = 30
	}
	return &EAD{TTL: ttl, expiry: make(map[int]map[cluster.ServerID]int)}
}

// Name implements Policy.
func (*EAD) Name() string { return "ead" }

// Decide implements Policy.
func (e *EAD) Decide(ctx *Context) Decision {
	var d Decision
	for p := 0; p < ctx.Cluster.NumPartitions(); p++ {
		primary := ctx.Cluster.Primary(p)
		if primary < 0 {
			continue
		}
		e.renewBusyReplicas(ctx, p, primary)

		needAvail := ctx.Cluster.ReplicaCount(p) < ctx.MinReplicas
		if needAvail || HolderIsOverloaded(ctx, p, primary) || CapacityShort(ctx, p) {
			if rep, ok := e.replicateToHottest(ctx, p, primary); ok {
				d.Replications = append(d.Replications, rep)
				continue
			}
		}
		// Lifetime decay: expired replicas die, floor permitting.
		if sui, ok := e.expiredReplica(ctx, p, primary); ok {
			d.Suicides = append(d.Suicides, sui)
		}
	}
	return d
}

// renewBusyReplicas extends the lease of replicas whose datacenter is
// still seeing meaningful traffic; everything else keeps its old
// expiry. New (untracked) replicas get a fresh lease.
func (e *EAD) renewBusyReplicas(ctx *Context, p int, primary cluster.ServerID) {
	leases := e.expiry[p]
	if leases == nil {
		leases = make(map[cluster.ServerID]int)
		e.expiry[p] = leases
	}
	current := make(map[cluster.ServerID]bool)
	for _, s := range ctx.Cluster.ReplicaServers(p) {
		current[s] = true
		dc := ctx.Cluster.DCOf(s)
		_, tracked := leases[s]
		busy := ctx.Tracker.Load(p, dc) > ctx.Tracker.AvgQuery(p)
		if !tracked || busy || s == primary {
			leases[s] = ctx.Epoch + e.TTL
		}
	}
	for s := range leases {
		if !current[s] {
			delete(leases, s)
		}
	}
}

// replicateToHottest places a copy on the datacenter with the highest
// forwarding traffic that lacks one, choosing a random server there.
func (e *EAD) replicateToHottest(ctx *Context, p int, primary cluster.ServerID) (Replication, bool) {
	hosted := ReplicaDCs(ctx, p)
	n := ctx.Router.World().NumDCs()
	type cand struct {
		dc topology.DCID
		tr float64
	}
	cands := make([]cand, 0, n)
	for dc := 0; dc < n; dc++ {
		cands = append(cands, cand{topology.DCID(dc), ctx.Tracker.Traffic(p, topology.DCID(dc))})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].tr != cands[b].tr {
			return cands[a].tr > cands[b].tr
		}
		return cands[a].dc < cands[b].dc
	})
	for _, cd := range cands {
		if hosted[cd.dc] {
			continue
		}
		if s, ok := PickRandomHostable(ctx, p, cd.dc); ok {
			return Replication{Partition: p, Source: primary, Target: s}, true
		}
	}
	// All datacenters covered or full: second servers in the hottest.
	for _, cd := range cands {
		if s, ok := PickRandomHostable(ctx, p, cd.dc); ok {
			return Replication{Partition: p, Source: primary, Target: s}, true
		}
	}
	return Replication{}, false
}

// expiredReplica returns one lapsed, safely removable replica.
func (e *EAD) expiredReplica(ctx *Context, p int, primary cluster.ServerID) (Suicide, bool) {
	if ctx.Cluster.ReplicaCount(p) <= ctx.MinReplicas {
		return Suicide{}, false
	}
	leases := e.expiry[p]
	for _, s := range ctx.Cluster.ReplicaServers(p) {
		if s == primary {
			continue
		}
		if until, ok := leases[s]; ok && ctx.Epoch >= until {
			return Suicide{Partition: p, Server: s}, true
		}
	}
	return Suicide{}, false
}
