package policy

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// placeInOtherDCs adds n extra copies of partition p, each in a
// distinct datacenter that does not already host one, and returns the
// chosen servers in placement order.
func placeInOtherDCs(f *fixture, p, n int) []cluster.ServerID {
	f.t.Helper()
	hosted := make(map[topology.DCID]bool)
	for _, s := range f.cluster.ReplicaServers(p) {
		hosted[f.cluster.DCOf(s)] = true
	}
	var out []cluster.ServerID
	for dc := 0; dc < f.world.NumDCs() && len(out) < n; dc++ {
		if hosted[topology.DCID(dc)] {
			continue
		}
		for _, s := range f.cluster.ServersInDC(topology.DCID(dc)) {
			if f.cluster.CanHost(p, s) {
				if err := f.cluster.AddReplica(p, s); err != nil {
					f.t.Fatal(err)
				}
				out = append(out, s)
				hosted[topology.DCID(dc)] = true
				break
			}
		}
	}
	if len(out) < n {
		f.t.Fatalf("could only place %d of %d extra copies", len(out), n)
	}
	return out
}

// observeServed injects one epoch where the given datacenters serve the
// stated share of the partition's queries, keyed by DCID. With total
// spread over the world's 10 datacenters, AvgQuery becomes total/10, so
// any DC serving more than that reads as busy to EAD's renewal rule.
func observeServed(f *fixture, p int, holder topology.DCID, served map[topology.DCID]int, total int) {
	f.t.Helper()
	n := f.world.NumDCs()
	res := &traffic.ServeResult{
		TrafficByDC:  make([]int, n),
		ServedByDC:   make([]int, n),
		TotalQueries: total,
	}
	for d, v := range served {
		res.ServedByDC[d] = v
	}
	f.tracker.BeginEpoch()
	f.tracker.Observe(p, holder, res)
	f.tracker.EndEpoch()
}

// TestEADRenewalOnBusyDC: a replica whose datacenter serves more than
// the system-average query rate gets its lease extended on every
// decision; an idle replica keeps the lease it was granted on first
// sight, and the primary is always renewed.
func TestEADRenewalOnBusyDC(t *testing.T) {
	f := newFixture(t)
	e := NewEAD(10)
	p := 0
	copies := placeInOtherDCs(f, p, 3) // first placement becomes primary
	primary := f.cluster.Primary(p)
	busyRep, idleRep := copies[1], copies[2]

	// First decision tracks all three copies: lease = 0 + TTL.
	e.Decide(f.ctx(0))
	for _, s := range []cluster.ServerID{primary, busyRep, idleRep} {
		if until, ok := e.expiry[p][s]; !ok || until != 10 {
			t.Fatalf("server %d lease after first decision = %d, %v; want 10, true", s, until, ok)
		}
	}

	// busyRep's DC serves half the partition's traffic (50 > AvgQuery
	// of 100/10 = 10); idleRep's DC serves nothing.
	observeServed(f, p, f.cluster.DCOf(primary),
		map[topology.DCID]int{f.cluster.DCOf(busyRep): 50}, 100)

	d := e.Decide(f.ctx(5))
	if len(d.Suicides) != 0 {
		t.Fatalf("unexpected suicides before any lease lapsed: %+v", d.Suicides)
	}
	if until := e.expiry[p][busyRep]; until != 15 {
		t.Errorf("busy replica lease = %d, want renewed to 15", until)
	}
	if until := e.expiry[p][idleRep]; until != 10 {
		t.Errorf("idle replica lease = %d, want unchanged 10", until)
	}
	if until := e.expiry[p][primary]; until != 15 {
		t.Errorf("primary lease = %d, want renewed to 15", until)
	}

	// At epoch 10 the idle replica's lease lapses while the renewed one
	// survives: renewal really postponed the decay.
	d = e.Decide(f.ctx(10))
	if len(d.Suicides) != 1 || d.Suicides[0].Server != idleRep {
		t.Fatalf("suicides at epoch 10 = %+v, want exactly the idle replica %d", d.Suicides, idleRep)
	}
}

// TestEADExpiryBoundary: a lease granted at epoch 0 with TTL 10 holds
// through epoch 9 and lapses exactly when Epoch reaches the recorded
// expiry, never before.
func TestEADExpiryBoundary(t *testing.T) {
	f := newFixture(t)
	e := NewEAD(10)
	p := 0
	copies := placeInOtherDCs(f, p, 3) // first placement becomes primary
	primary := f.cluster.Primary(p)
	extras := copies[1:]

	e.Decide(f.ctx(0)) // leases granted: expire at epoch 10

	if d := e.Decide(f.ctx(9)); len(d.Suicides) != 0 {
		t.Fatalf("lease lapsed early at epoch 9: %+v", d.Suicides)
	}
	d := e.Decide(f.ctx(10))
	if len(d.Suicides) != 1 {
		t.Fatalf("suicides at expiry epoch = %+v, want exactly one", d.Suicides)
	}
	sui := d.Suicides[0]
	if sui.Partition != p || sui.Server == primary {
		t.Fatalf("suicide %+v targets the wrong copy (primary %d)", sui, primary)
	}
	if sui.Server != extras[0] && sui.Server != extras[1] {
		t.Fatalf("suicide %+v is not one of the placed replicas %v", sui, extras)
	}
}

// TestEADLeaseCleanupOnOutOfBandRemoval: when a replica disappears
// without the policy's involvement (failure handling, another policy's
// migration), the next decision drops its lease instead of letting the
// stale entry linger in the expiry map.
func TestEADLeaseCleanupOnOutOfBandRemoval(t *testing.T) {
	f := newFixture(t)
	e := NewEAD(10)
	p := 0
	copies := placeInOtherDCs(f, p, 3) // first placement becomes primary
	gone := copies[1]

	e.Decide(f.ctx(0))
	if _, ok := e.expiry[p][gone]; !ok {
		t.Fatalf("server %d not tracked after first decision", gone)
	}

	if err := f.cluster.RemoveReplica(p, gone); err != nil {
		t.Fatal(err)
	}

	d := e.Decide(f.ctx(1))
	if _, ok := e.expiry[p][gone]; ok {
		t.Errorf("lease for removed replica %d survived the next decision", gone)
	}
	for _, sui := range d.Suicides {
		if sui.Partition == p && sui.Server == gone {
			t.Errorf("decision suicides the already-removed replica %d", gone)
		}
	}
}
