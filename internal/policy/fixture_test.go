package policy

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/network"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// fixture bundles a small paper-world environment for policy unit
// tests: cluster, tracker, router and ring, with helpers to inject
// traffic observations directly.
type fixture struct {
	t       *testing.T
	cluster *cluster.Cluster
	tracker *traffic.Tracker
	router  *network.Router
	ring    *ring.Ring
	world   *topology.World
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := topology.PaperWorld()
	rt, err := network.NewRouter(w)
	if err != nil {
		t.Fatal(err)
	}
	spec := cluster.DefaultSpec()
	spec.Partitions = 4
	cl, err := cluster.New(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := traffic.NewTracker(spec.Partitions, w.NumDCs(), traffic.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	rg := ring.New()
	for i := 0; i < cl.NumServers(); i++ {
		if err := rg.AddServer(i, 8); err != nil {
			t.Fatal(err)
		}
	}
	return &fixture{t: t, cluster: cl, tracker: tr, router: rt, ring: rg, world: w}
}

// ctx builds a policy Context with the paper's decision parameters.
func (f *fixture) ctx(epoch int) *Context {
	demand := workload.NewMatrix(f.cluster.NumPartitions(), f.world.NumDCs())
	return &Context{
		Epoch:           epoch,
		Cluster:         f.cluster,
		Tracker:         f.tracker,
		Router:          f.router,
		Ring:            f.ring,
		Demand:          demand,
		FailureRate:     0.1,
		MinAvailability: 0.8,
		MinReplicas:     2,
		HubCandidates:   3,
		RNG:             stats.NewRNG(uint64(epoch) + 99),
	}
}

// dc resolves a datacenter name.
func (f *fixture) dc(name string) topology.DCID {
	f.t.Helper()
	d, ok := f.world.DCByName(name)
	if !ok {
		f.t.Fatalf("no DC %s", name)
	}
	return d.ID
}

// serverIn returns the i-th server of a datacenter.
func (f *fixture) serverIn(name string, i int) cluster.ServerID {
	f.t.Helper()
	servers := f.cluster.ServersInDC(f.dc(name))
	if i >= len(servers) {
		f.t.Fatalf("DC %s has only %d servers", name, len(servers))
	}
	return servers[i]
}

// place puts a copy of partition p on the i-th server of the named DC.
func (f *fixture) place(p int, dcName string, i int) cluster.ServerID {
	f.t.Helper()
	s := f.serverIn(dcName, i)
	if err := f.cluster.AddReplica(p, s); err != nil {
		f.t.Fatal(err)
	}
	return s
}

// observe injects one epoch of per-DC traffic/load for a partition.
// traffic and served are maps from DC name to amount; unserved lands at
// the holder.
func (f *fixture) observe(p int, holderDC string, trafficByName, servedByName map[string]int, unserved, total int) {
	f.t.Helper()
	n := f.world.NumDCs()
	res := &traffic.ServeResult{
		TrafficByDC:  make([]int, n),
		ServedByDC:   make([]int, n),
		Unserved:     unserved,
		TotalQueries: total,
	}
	for name, v := range trafficByName {
		res.TrafficByDC[f.dc(name)] = v
	}
	for name, v := range servedByName {
		res.ServedByDC[f.dc(name)] = v
	}
	f.tracker.BeginEpoch()
	f.tracker.Observe(p, f.dc(holderDC), res)
	f.tracker.EndEpoch()
}
