package policy

import (
	"repro/internal/cluster"
	"repro/internal/topology"
)

// OwnerOriented is the baseline of [7][11][12][13]: the coordinator
// maximises availability while minimising replication cost (eq. 1). A
// new copy goes to the nearest server that still raises geographic
// availability — preferring a different datacenter close to the primary
// owner ("it is better to choose a different datacenter close to the
// primary partition owner to replicate on"). Migration only triggers
// when a strictly better availability-versus-cost position appears,
// which in a static topology "actually happens only when physical nodes
// are added into or removed from the system." It has no suicide
// function.
type OwnerOriented struct{}

var _ Policy = (*OwnerOriented)(nil)

// NewOwnerOriented returns the owner-oriented baseline.
func NewOwnerOriented() *OwnerOriented { return &OwnerOriented{} }

// Name implements Policy.
func (*OwnerOriented) Name() string { return "owner" }

// Decide implements Policy.
func (o *OwnerOriented) Decide(ctx *Context) Decision {
	var d Decision
	for p := 0; p < ctx.Cluster.NumPartitions(); p++ {
		primary := ctx.Cluster.Primary(p)
		if primary < 0 {
			continue
		}
		needAvail := ctx.Cluster.ReplicaCount(p) < ctx.MinReplicas
		if !needAvail && !HolderIsOverloaded(ctx, p, primary) && !CapacityShort(ctx, p) {
			continue
		}
		if target, ok := o.bestTarget(ctx, p, primary); ok {
			d.Replications = append(d.Replications, Replication{Partition: p, Source: primary, Target: target})
		}
	}
	return d
}

// bestTarget scores every hostable server by (availability level gained
// over the closest existing copy, then eq. (1) distance from the
// primary) and returns the best: highest level first, smallest distance
// second, lowest id third.
func (o *OwnerOriented) bestTarget(ctx *Context, partition int, primary cluster.ServerID) (cluster.ServerID, bool) {
	replicas := ctx.Cluster.ReplicaServers(partition)
	best := cluster.ServerID(-1)
	bestLevel := topology.Level(0)
	bestDist := 0.0
	for i := 0; i < ctx.Cluster.NumServers(); i++ {
		s := cluster.ServerID(i)
		if !ctx.Cluster.CanHost(partition, s) {
			continue
		}
		// The availability a candidate adds is limited by its closest
		// existing copy: placing next to any replica adds little.
		level := topology.LevelCrossDatacenter
		for _, r := range replicas {
			if lv := topology.AvailabilityLevel(ctx.Cluster.Server(s).Label, ctx.Cluster.Server(r).Label); lv < level {
				level = lv
			}
		}
		dist := ctx.Cluster.ReplicaDistance(primary, s)
		if best < 0 || level > bestLevel || (level == bestLevel && dist < bestDist) {
			best, bestLevel, bestDist = s, level, dist
		}
	}
	return best, best >= 0
}
