// Package policy implements the four replication algorithms compared in
// the paper: the RFH decision tree of Fig. 2 (traffic-oriented), plus
// the three baselines it is evaluated against — the random algorithm
// (Dynamo-style clockwise successors), the owner-oriented algorithm
// (max availability at min cost near the partition owner), and the
// request-oriented algorithm (replicate near the heaviest requesters,
// Gnutella-style).
//
// A policy observes the world through a read-only Context each epoch
// and returns a Decision — the replications, migrations and suicides it
// wants. The simulation engine applies the decision subject to physical
// constraints (bandwidth budgets, storage limits, liveness) and charges
// the eq. (1) costs.
package policy

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/network"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// Context is the per-epoch view a policy decides from. All fields are
// read-only for policies; mutating through them is a bug.
type Context struct {
	Epoch   int
	Cluster *cluster.Cluster
	Tracker *traffic.Tracker
	Router  *network.Router
	Ring    *ring.Ring
	// Demand is the current epoch's query matrix (q_ijt).
	Demand *workload.Matrix
	// FailureRate and MinAvailability parameterise eq. (14).
	FailureRate     float64
	MinAvailability float64
	// MinReplicas is the eq. (14) lower limit precomputed by the engine
	// from FailureRate and MinAvailability.
	MinReplicas int
	// HubCandidates is how many top traffic hubs are considered (the
	// paper fixes 3).
	HubCandidates int
	// RNG is a per-epoch, per-policy random stream.
	RNG *stats.RNG
}

// Replication asks for a new copy of Partition on Target, sourced from
// the copy on Source.
type Replication struct {
	Partition int
	Source    cluster.ServerID
	Target    cluster.ServerID
}

// Migration asks to move the copy of Partition on From to To.
type Migration struct {
	Partition int
	From      cluster.ServerID
	To        cluster.ServerID
}

// Suicide asks to delete the copy of Partition on Server.
type Suicide struct {
	Partition int
	Server    cluster.ServerID
}

// Decision is everything a policy wants done this epoch.
type Decision struct {
	Replications []Replication
	Migrations   []Migration
	Suicides     []Suicide
}

// Empty reports whether the decision contains no actions.
func (d Decision) Empty() bool {
	return len(d.Replications) == 0 && len(d.Migrations) == 0 && len(d.Suicides) == 0
}

// Policy is one replication algorithm. Decide is called once per epoch
// after traffic accounting; implementations may keep internal state
// across epochs but must be deterministic given the Context stream.
type Policy interface {
	Name() string
	Decide(ctx *Context) Decision
}

// PickLowestBlocking returns the alive server in dc that can host the
// partition and has the lowest eq. (18) blocking probability, honouring
// the storage condition (19). Ties break toward the lower server id.
// ok is false when no server in the datacenter qualifies.
func PickLowestBlocking(ctx *Context, partition int, dc topology.DCID) (cluster.ServerID, bool) {
	best := cluster.ServerID(-1)
	bestBP := 0.0
	for _, s := range ctx.Cluster.ServersInDC(dc) {
		if !ctx.Cluster.CanHost(partition, s) {
			continue
		}
		bp := ctx.Cluster.Server(s).Blocking()
		if best < 0 || bp < bestBP {
			best, bestBP = s, bp
		}
	}
	return best, best >= 0
}

// PickRandomHostable returns a uniformly random alive server in dc that
// can host the partition. ok is false when none qualifies.
func PickRandomHostable(ctx *Context, partition int, dc topology.DCID) (cluster.ServerID, bool) {
	var candidates []cluster.ServerID
	for _, s := range ctx.Cluster.ServersInDC(dc) {
		if ctx.Cluster.CanHost(partition, s) {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	return candidates[ctx.RNG.Intn(len(candidates))], true
}

// HolderIsOverloaded evaluates the eq. (12) β condition for the
// partition: its total load shared across its current copies.
func HolderIsOverloaded(ctx *Context, partition int, primary cluster.ServerID) bool {
	_ = primary // the signal is partition-wide; kept for call-site symmetry
	return ctx.Tracker.HolderOverloaded(partition, ctx.Cluster.ReplicaCount(partition))
}

// CapacityShort reports whether the partition's aggregate replica
// capacity genuinely falls short of demand: at least one query per
// epoch overflowed both in the smoothed view (not a one-off spike) and
// in the current epoch (the shortage is not already fixed).
func CapacityShort(ctx *Context, partition int) bool {
	return ctx.Tracker.Unserved(partition) >= 1 && ctx.Tracker.LastUnserved(partition) >= 1
}

// ReplicaDCs returns the set of datacenters currently hosting a copy of
// the partition.
func ReplicaDCs(ctx *Context, partition int) map[topology.DCID]bool {
	out := make(map[topology.DCID]bool)
	for _, s := range ctx.Cluster.ReplicaServers(partition) {
		out[ctx.Cluster.DCOf(s)] = true
	}
	return out
}

// SortedDCList returns the map's keys ascending, for deterministic
// iteration.
func SortedDCList(m map[topology.DCID]bool) []topology.DCID {
	out := make([]topology.DCID, 0, len(m))
	for dc := range m {
		out = append(out, dc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
