package policy

import (
	"testing"

	"repro/internal/topology"
)

func TestDecisionEmpty(t *testing.T) {
	var d Decision
	if !d.Empty() {
		t.Fatal("zero decision not empty")
	}
	d.Suicides = append(d.Suicides, Suicide{})
	if d.Empty() {
		t.Fatal("decision with suicide reported empty")
	}
}

func TestPickLowestBlockingPrefersIdleServer(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx(0)
	dcA := f.dc("A")
	servers := f.cluster.ServersInDC(dcA)
	// Make server 0 of A look busy so its blocking probability rises.
	f.cluster.BeginEpoch()
	f.cluster.Server(servers[0]).RecordArrivals(500, 500)
	f.cluster.EndEpoch()
	picked, ok := PickLowestBlocking(ctx, 0, dcA)
	if !ok {
		t.Fatal("no server picked")
	}
	if picked == servers[0] {
		t.Fatalf("picked the busiest server %d", picked)
	}
}

func TestPickLowestBlockingSkipsHostsAndDead(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx(0)
	dcA := f.dc("A")
	servers := f.cluster.ServersInDC(dcA)
	// Partition 0 already on all but one server; that one must be picked.
	for _, s := range servers[:len(servers)-1] {
		if err := f.cluster.AddReplica(0, s); err != nil {
			t.Fatal(err)
		}
	}
	picked, ok := PickLowestBlocking(ctx, 0, dcA)
	if !ok || picked != servers[len(servers)-1] {
		t.Fatalf("picked %d,%v; want the only free server %d", picked, ok, servers[len(servers)-1])
	}
	// Kill it: now nothing qualifies.
	f.cluster.FailServer(picked)
	if _, ok := PickLowestBlocking(ctx, 0, dcA); ok {
		t.Fatal("picked a server in a fully occupied/dead DC")
	}
}

func TestPickRandomHostableOnlyValid(t *testing.T) {
	f := newFixture(t)
	ctx := f.ctx(0)
	dcB := f.dc("B")
	servers := f.cluster.ServersInDC(dcB)
	for _, s := range servers[:5] {
		_ = f.cluster.AddReplica(0, s)
	}
	for i := 0; i < 50; i++ {
		s, ok := PickRandomHostable(ctx, 0, dcB)
		if !ok {
			t.Fatal("no candidate found")
		}
		if f.cluster.HasReplica(0, s) {
			t.Fatalf("picked occupied server %d", s)
		}
	}
}

func TestHolderIsOverloadedUsesPerCopyShare(t *testing.T) {
	f := newFixture(t)
	s := f.place(0, "A", 0)
	// Total load 300, one copy, avg query 30 → 300 ≥ 60: overloaded.
	f.observe(0, "A", map[string]int{"A": 300}, map[string]int{"A": 300}, 0, 300)
	if !HolderIsOverloaded(f.ctx(0), 0, s) {
		t.Fatal("single saturated copy not overloaded")
	}
	// Six copies sharing the same load: 50 < 60 per copy.
	for i := 1; i < 6; i++ {
		f.place(0, "A", i)
	}
	if HolderIsOverloaded(f.ctx(0), 0, s) {
		t.Fatal("six copies sharing 300 load reported overloaded")
	}
}

func TestCapacityShortRequiresBothSignals(t *testing.T) {
	f := newFixture(t)
	f.place(0, "A", 0)
	// Persistent overflow: both smoothed and raw positive.
	f.observe(0, "A", map[string]int{"A": 300}, nil, 100, 300)
	if !CapacityShort(f.ctx(0), 0) {
		t.Fatal("persistent overflow not detected")
	}
	// Overflow fixed this epoch: raw 0 even though smoothed still high.
	f.observe(0, "A", map[string]int{"A": 300}, map[string]int{"A": 300}, 0, 300)
	if CapacityShort(f.ctx(0), 0) {
		t.Fatal("fixed shortage still reported")
	}
}

func TestReplicaDCsAndSorted(t *testing.T) {
	f := newFixture(t)
	f.place(0, "H", 0)
	f.place(0, "A", 0)
	f.place(0, "A", 1)
	dcs := ReplicaDCs(f.ctx(0), 0)
	if len(dcs) != 2 || !dcs[f.dc("A")] || !dcs[f.dc("H")] {
		t.Fatalf("replica DCs = %v", dcs)
	}
	sorted := SortedDCList(dcs)
	if len(sorted) != 2 || sorted[0] > sorted[1] {
		t.Fatalf("sorted DCs = %v", sorted)
	}
}

func TestRandomPolicyMaintainsStaticTarget(t *testing.T) {
	f := newFixture(t)
	pol := NewRandomN(4)
	f.place(0, "A", 0)
	f.observe(0, "A", map[string]int{"A": 10}, map[string]int{"A": 10}, 0, 10)
	// Below target: must ask for replication regardless of load.
	dec := pol.Decide(f.ctx(0))
	found := false
	for _, r := range dec.Replications {
		if r.Partition == 0 {
			found = true
			if f.cluster.HasReplica(0, r.Target) {
				t.Fatal("random picked an occupied target")
			}
		}
	}
	if !found {
		t.Fatal("random did not replicate below its static target")
	}
}

func TestRandomPolicyStopsAtTarget(t *testing.T) {
	f := newFixture(t)
	pol := NewRandomN(3)
	f.place(0, "A", 0)
	f.place(0, "B", 0)
	f.place(0, "C", 0)
	f.observe(0, "A", map[string]int{"A": 10}, map[string]int{"A": 10}, 0, 10)
	dec := pol.Decide(f.ctx(0))
	for _, r := range dec.Replications {
		if r.Partition == 0 {
			t.Fatal("random replicated beyond its static target")
		}
	}
}

func TestRandomPolicyReactsToShortage(t *testing.T) {
	f := newFixture(t)
	pol := NewRandomN(2)
	f.place(0, "A", 0)
	f.place(0, "B", 0)
	// At target but persistent overflow → still replicates.
	f.observe(0, "A", map[string]int{"A": 300}, map[string]int{"A": 100}, 200, 300)
	dec := pol.Decide(f.ctx(0))
	found := false
	for _, r := range dec.Replications {
		if r.Partition == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("random ignored a capacity shortage")
	}
}

func TestRandomNeverMigratesOrSuicides(t *testing.T) {
	f := newFixture(t)
	pol := NewRandom()
	f.place(0, "A", 0)
	f.observe(0, "A", map[string]int{"A": 300}, nil, 300, 300)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Migrations) != 0 || len(dec.Suicides) != 0 {
		t.Fatal("random produced migrations or suicides")
	}
}

func TestNewRandomNValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRandomN(0) did not panic")
		}
	}()
	NewRandomN(0)
}

func TestRandomFollowsRingSuccessors(t *testing.T) {
	f := newFixture(t)
	pol := NewRandom()
	f.place(0, "A", 0)
	f.observe(0, "A", map[string]int{"A": 10}, map[string]int{"A": 10}, 0, 10)
	dec1 := pol.Decide(f.ctx(0))
	dec2 := pol.Decide(f.ctx(1))
	if len(dec1.Replications) == 0 || len(dec2.Replications) == 0 {
		t.Fatal("no replication proposed")
	}
	// The successor walk is deterministic: same state, same target.
	if dec1.Replications[0].Target != dec2.Replications[0].Target {
		t.Fatal("successor choice not deterministic")
	}
}

func TestOwnerPrefersCrossDCNearPrimary(t *testing.T) {
	f := newFixture(t)
	pol := NewOwnerOriented()
	primary := f.place(0, "A", 0)
	f.observe(0, "A", map[string]int{"A": 300}, map[string]int{"A": 300}, 0, 300)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Replications) == 0 {
		t.Fatal("owner did not replicate for an overloaded holder")
	}
	target := dec.Replications[0].Target
	targetDC := f.cluster.DCOf(target)
	if targetDC == f.dc("A") {
		t.Fatal("owner placed in the same DC though cross-DC candidates exist")
	}
	// Must be the geographically nearest different DC: B (distance ~1.41).
	if got := f.world.DC(targetDC).Name; got != "B" {
		t.Fatalf("owner picked DC %s, want nearest neighbour B", got)
	}
	_ = primary
}

func TestOwnerIdleWhenHealthy(t *testing.T) {
	f := newFixture(t)
	pol := NewOwnerOriented()
	f.place(0, "A", 0)
	f.place(0, "B", 0)
	f.observe(0, "A", map[string]int{"A": 40}, map[string]int{"A": 40}, 0, 300)
	dec := pol.Decide(f.ctx(0))
	for _, r := range dec.Replications {
		if r.Partition == 0 {
			t.Fatal("owner replicated a healthy partition")
		}
	}
	if len(dec.Migrations) != 0 || len(dec.Suicides) != 0 {
		t.Fatal("owner migrated or suicided")
	}
}

func TestOwnerReplicatesForAvailability(t *testing.T) {
	f := newFixture(t)
	pol := NewOwnerOriented()
	f.place(0, "A", 0) // 1 copy < MinReplicas 2
	f.observe(0, "A", map[string]int{"A": 10}, map[string]int{"A": 10}, 0, 10)
	dec := pol.Decide(f.ctx(0))
	found := false
	for _, r := range dec.Replications {
		if r.Partition == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("owner ignored the availability lower limit")
	}
}

func TestOwnerSpreadsAcrossDCs(t *testing.T) {
	// With copies at A and B, the next target must still raise
	// availability: a third DC, not another server next to an existing
	// copy.
	f := newFixture(t)
	pol := NewOwnerOriented()
	f.place(0, "A", 0)
	f.place(0, "B", 0)
	f.observe(0, "A", map[string]int{"A": 300}, map[string]int{"A": 300}, 0, 300)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Replications) == 0 {
		t.Fatal("no replication")
	}
	dc := f.cluster.DCOf(dec.Replications[0].Target)
	if dc == f.dc("A") || dc == f.dc("B") {
		t.Fatalf("owner stacked a copy in already-covered DC %s", f.world.DC(dc).Name)
	}
}

func TestRequestReplicatesTowardTopRequesters(t *testing.T) {
	f := newFixture(t)
	pol := NewRequestOriented(0.2)
	f.place(0, "A", 0)
	ctx := f.ctx(0)
	// Demand concentrated near H, I, J.
	for _, name := range []string{"H", "I", "J"} {
		ctx.Demand.Q[0][f.dc(name)] = 100
	}
	f.observe(0, "A", map[string]int{"A": 300}, map[string]int{"A": 100}, 200, 300)
	dec := pol.Decide(ctx)
	if len(dec.Replications) == 0 {
		t.Fatal("request did not replicate under overload")
	}
	targetDC := f.world.DC(f.cluster.DCOf(dec.Replications[0].Target)).Name
	if targetDC != "H" && targetDC != "I" && targetDC != "J" {
		t.Fatalf("request placed in %s, want a top requester DC", targetDC)
	}
}

func TestRequestMigratesStrandedReplica(t *testing.T) {
	f := newFixture(t)
	pol := NewRequestOriented(0.2)
	f.place(0, "A", 0)        // primary
	low := f.place(0, "G", 0) // stranded in a cold region
	// Feed several epochs so the smoothed demand view stabilises: hot
	// demand at H, nothing at G.
	ctx := f.ctx(0)
	for e := 0; e < 10; e++ {
		ctx = f.ctx(e)
		for p := 0; p < f.cluster.NumPartitions(); p++ {
			ctx.Demand.Q[p][f.dc("H")] = 200
			ctx.Demand.Q[p][f.dc("I")] = 150
			ctx.Demand.Q[p][f.dc("J")] = 120
		}
		f.observe(0, "A", map[string]int{"A": 100}, map[string]int{"A": 100}, 0, 470)
		dec := pol.Decide(ctx)
		for _, m := range dec.Migrations {
			if m.Partition == 0 {
				if m.From != low {
					t.Fatalf("migrated %d, want stranded replica %d", m.From, low)
				}
				gotDC := f.world.DC(f.cluster.DCOf(m.To)).Name
				if gotDC != "H" && gotDC != "I" && gotDC != "J" {
					t.Fatalf("migrated to %s, want a top requester DC", gotDC)
				}
				return
			}
		}
	}
	t.Fatal("request never migrated the stranded replica")
}

func TestRequestNeverMovesPrimary(t *testing.T) {
	f := newFixture(t)
	pol := NewRequestOriented(0.2)
	primary := f.place(0, "G", 0) // primary itself in a cold region
	f.place(0, "H", 0)
	ctx := f.ctx(0)
	for e := 0; e < 10; e++ {
		ctx = f.ctx(e)
		ctx.Demand.Q[0][f.dc("H")] = 200
		ctx.Demand.Q[0][f.dc("I")] = 150
		ctx.Demand.Q[0][f.dc("J")] = 120
		f.observe(0, "G", map[string]int{"G": 100}, map[string]int{"G": 100}, 0, 470)
		dec := pol.Decide(ctx)
		for _, m := range dec.Migrations {
			if m.Partition == 0 && m.From == primary {
				t.Fatal("request migrated the primary copy")
			}
		}
	}
}

func TestRequestAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewRequestOriented(%g) did not panic", a)
				}
			}()
			NewRequestOriented(a)
		}()
	}
}

func TestPolicyNames(t *testing.T) {
	if NewRandom().Name() != "random" {
		t.Fatal("random name")
	}
	if NewOwnerOriented().Name() != "owner" {
		t.Fatal("owner name")
	}
	if NewRequestOriented(0.2).Name() != "request" {
		t.Fatal("request name")
	}
}

func TestPoliciesSkipLostPartitions(t *testing.T) {
	f := newFixture(t)
	// Partition 0 has no copies at all (never seeded): primary is -1.
	f.observe(0, "A", map[string]int{"A": 300}, nil, 300, 300)
	ctx := f.ctx(0)
	for _, pol := range []Policy{NewRandom(), NewOwnerOriented(), NewRequestOriented(0.2)} {
		dec := pol.Decide(ctx)
		for _, r := range dec.Replications {
			if r.Partition == 0 {
				t.Fatalf("%s acted on a lost partition", pol.Name())
			}
		}
	}
}

var _ = topology.DCID(0) // keep the topology import referenced when tests shrink

func TestEADReplicatesToHottestDC(t *testing.T) {
	f := newFixture(t)
	pol := NewEAD(30)
	f.place(0, "A", 0)
	// Overloaded holder, D carries the most forwarding traffic.
	f.observe(0, "A", map[string]int{"A": 300, "D": 200, "F": 100},
		map[string]int{"A": 300}, 0, 300)
	dec := pol.Decide(f.ctx(0))
	if len(dec.Replications) != 1 {
		t.Fatalf("decision = %+v", dec)
	}
	// Hottest DC is A itself (traffic 300) but it already hosts a copy,
	// so D (200) is next.
	got := f.world.DC(f.cluster.DCOf(dec.Replications[0].Target)).Name
	if got != "D" {
		t.Fatalf("EAD placed in %s, want D", got)
	}
}

func TestEADLifetimeExpiry(t *testing.T) {
	f := newFixture(t)
	pol := NewEAD(5)
	f.place(0, "A", 0)
	f.place(0, "B", 0)
	idle := f.place(0, "G", 0) // 3 copies > MinReplicas 2
	// Healthy partition with an idle replica in G: no load there, so
	// its lease never renews and lapses after TTL epochs. A and B stay
	// busy (load above the average query) so their leases renew.
	for e := 0; e <= 6; e++ {
		f.observe(0, "A", map[string]int{"A": 70, "B": 50},
			map[string]int{"A": 70, "B": 50}, 0, 300)
		dec := pol.Decide(f.ctx(e))
		if e < 5 && len(dec.Suicides) != 0 {
			t.Fatalf("epoch %d: premature expiry %+v", e, dec.Suicides)
		}
		if e >= 5 {
			if len(dec.Suicides) != 1 || dec.Suicides[0].Server != idle {
				t.Fatalf("epoch %d: expiry decision = %+v, want suicide of %d", e, dec, idle)
			}
			return
		}
	}
	t.Fatal("idle replica never expired")
}

func TestEADBusyReplicaLeaseRenews(t *testing.T) {
	f := newFixture(t)
	pol := NewEAD(3)
	f.place(0, "A", 0)
	f.place(0, "B", 0)
	busy := f.place(0, "D", 0)
	for e := 0; e < 10; e++ {
		// D serves heavily every epoch: its lease keeps renewing.
		f.observe(0, "A", map[string]int{"A": 30, "B": 20, "D": 100},
			map[string]int{"A": 30, "B": 20, "D": 100}, 0, 300)
		dec := pol.Decide(f.ctx(e))
		for _, s := range dec.Suicides {
			if s.Server == busy {
				t.Fatalf("epoch %d: busy replica expired", e)
			}
		}
	}
}

func TestEADRespectsAvailabilityFloor(t *testing.T) {
	f := newFixture(t)
	pol := NewEAD(1)
	f.place(0, "A", 0)
	f.place(0, "G", 0) // exactly MinReplicas
	for e := 0; e < 4; e++ {
		f.observe(0, "A", map[string]int{"A": 30}, map[string]int{"A": 30}, 0, 300)
		dec := pol.Decide(f.ctx(e))
		if len(dec.Suicides) != 0 {
			t.Fatalf("EAD suicided at the availability floor: %+v", dec.Suicides)
		}
	}
}

func TestEADName(t *testing.T) {
	if NewEAD(0).Name() != "ead" {
		t.Fatal("name")
	}
	if NewEAD(0).TTL != 30 {
		t.Fatal("default TTL")
	}
}
