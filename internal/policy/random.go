package policy

import (
	"repro/internal/cluster"
	"repro/internal/ring"
)

// DefaultRandomN is the default total copy count the random baseline
// maintains per partition, calibrated to the paper's Fig. 4(a)/(b)
// where the random algorithm settles around 8 replicas per partition.
const DefaultRandomN = 8

// Random is the Dynamo-style baseline [4][21][22]: each partition is
// replicated "at a fixed number of physically distinct nodes in a
// static way" — the N−1 clockwise successor virtual nodes of the
// partition's ring position. Successors are adjacent in ID space but
// geographically random. On top of the static target, the baseline
// still reacts to genuine capacity shortage (unserved queries) and the
// eq. (14) availability floor by adding further successors; it has no
// migration and no suicide function (§III-D: "The cost of random
// algorithm is zero, because no migration function is employed").
type Random struct {
	// N is the static total copy target per partition.
	N int
}

var _ Policy = (*Random)(nil)

// NewRandom returns the random baseline with the default copy target.
func NewRandom() *Random { return &Random{N: DefaultRandomN} }

// NewRandomN returns the random baseline with an explicit copy target.
func NewRandomN(n int) *Random {
	if n < 1 {
		panic("policy: random copy target must be at least 1")
	}
	return &Random{N: n}
}

// Name implements Policy.
func (*Random) Name() string { return "random" }

// Decide implements Policy.
func (r *Random) Decide(ctx *Context) Decision {
	var d Decision
	target := r.N
	if ctx.MinReplicas > target {
		target = ctx.MinReplicas
	}
	for p := 0; p < ctx.Cluster.NumPartitions(); p++ {
		primary := ctx.Cluster.Primary(p)
		if primary < 0 {
			continue
		}
		if ctx.Cluster.ReplicaCount(p) >= target && !CapacityShort(ctx, p) {
			continue
		}
		if t, ok := r.nextSuccessor(ctx, p); ok {
			d.Replications = append(d.Replications, Replication{Partition: p, Source: primary, Target: t})
		}
	}
	return d
}

// nextSuccessor walks the partition's Dynamo preference list and
// returns the first server that does not yet hold a copy and can host
// one.
func (r *Random) nextSuccessor(ctx *Context, partition int) (cluster.ServerID, bool) {
	pos := ring.HashUint64(uint64(partition))
	// Ask for the full preference list; the ring deduplicates physical
	// servers, so NumServers is a safe upper bound.
	for _, vn := range ctx.Ring.Successors(pos, ctx.Cluster.NumServers()) {
		s := cluster.ServerID(vn.Server)
		if ctx.Cluster.CanHost(partition, s) {
			return s, true
		}
	}
	return 0, false
}
