package policy

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/topology"
)

// RequestOriented is the Gnutella-style baseline [16][5]: it replicates
// onto datacenters closest to the requesters with the highest query
// rate — "It will randomly choose a node among the top 3 ones to
// replicate on. The migration process is started when another node
// without any replica joins in the list of the top 3." It has no
// suicide function, which is why its replicas strand on stale hot
// regions after a flash crowd moves (§III-B).
type RequestOriented struct {
	alpha  float64
	demand [][]float64 // smoothed q_ijt per (partition, requester DC)
}

var _ Policy = (*RequestOriented)(nil)

// NewRequestOriented returns the request-oriented baseline. alpha is
// the demand-smoothing factor; the paper's Table I value (0.2) is used
// by the engine.
func NewRequestOriented(alpha float64) *RequestOriented {
	if alpha <= 0 || alpha >= 1 {
		panic("policy: request-oriented alpha must be in (0,1)")
	}
	return &RequestOriented{alpha: alpha}
}

// Name implements Policy.
func (*RequestOriented) Name() string { return "request" }

// Decide implements Policy.
func (r *RequestOriented) Decide(ctx *Context) Decision {
	r.observeDemand(ctx)
	var d Decision
	for p := 0; p < ctx.Cluster.NumPartitions(); p++ {
		primary := ctx.Cluster.Primary(p)
		if primary < 0 {
			continue
		}
		top := r.topRequesters(p, ctx.HubCandidates)
		hosted := ReplicaDCs(ctx, p)

		// Migration first (§II-A: "The migration process is started when
		// another node without any replica joins in the list of the top
		// 3"): repositioning a stranded replica is the algorithm's
		// primary response to requester movement.
		if mig, ok := r.migrationFor(ctx, p, primary, top, hosted); ok {
			d.Migrations = append(d.Migrations, mig)
			continue // one structural action per partition per epoch
		}
		needAvail := ctx.Cluster.ReplicaCount(p) < ctx.MinReplicas
		if needAvail || HolderIsOverloaded(ctx, p, primary) || CapacityShort(ctx, p) {
			if target, ok := r.pickAmongTop(ctx, p, top, hosted); ok {
				d.Replications = append(d.Replications, Replication{Partition: p, Source: primary, Target: target})
			}
		}
	}
	return d
}

// observeDemand folds this epoch's query matrix into the smoothed
// per-partition demand (the policy's own view of requester heat).
func (r *RequestOriented) observeDemand(ctx *Context) {
	parts := ctx.Demand.Partitions()
	dcs := ctx.Demand.DCs()
	if r.demand == nil {
		r.demand = make([][]float64, parts)
		for p := range r.demand {
			r.demand[p] = make([]float64, dcs)
		}
		for p := 0; p < parts; p++ {
			for dc := 0; dc < dcs; dc++ {
				r.demand[p][dc] = float64(ctx.Demand.Q[p][dc])
			}
		}
		return
	}
	for p := 0; p < parts; p++ {
		for dc := 0; dc < dcs; dc++ {
			r.demand[p][dc] = stats.Smooth(1-r.alpha, r.demand[p][dc], float64(ctx.Demand.Q[p][dc]))
		}
	}
}

// topRequesters returns the k datacenters with the highest smoothed
// demand for partition p, descending, ties toward lower ids.
func (r *RequestOriented) topRequesters(p, k int) []topology.DCID {
	type hot struct {
		dc topology.DCID
		q  float64
	}
	hots := make([]hot, 0, len(r.demand[p]))
	for dc, q := range r.demand[p] {
		hots = append(hots, hot{topology.DCID(dc), q})
	}
	sort.Slice(hots, func(a, b int) bool {
		if hots[a].q != hots[b].q {
			return hots[a].q > hots[b].q
		}
		return hots[a].dc < hots[b].dc
	})
	if k > len(hots) {
		k = len(hots)
	}
	out := make([]topology.DCID, k)
	for i := 0; i < k; i++ {
		out[i] = hots[i].dc
	}
	return out
}

// pickAmongTop chooses a random hostable server within a random
// top-requester datacenter that does not already hold a copy (paper:
// "randomly choose a node among the top 3 ones"; in a Gnutella-style
// system a second copy in an already-covered requester region serves
// nobody new, so covered top DCs are skipped).
func (r *RequestOriented) pickAmongTop(ctx *Context, partition int, top []topology.DCID, hosted map[topology.DCID]bool) (cluster.ServerID, bool) {
	if len(top) == 0 {
		return 0, false
	}
	// Try the top DCs in a random rotation so full ones do not block.
	start := ctx.RNG.Intn(len(top))
	for off := 0; off < len(top); off++ {
		dc := top[(start+off)%len(top)]
		if hosted[dc] {
			continue
		}
		if s, ok := PickRandomHostable(ctx, partition, dc); ok {
			return s, true
		}
	}
	return 0, false
}

// migrationFor moves a replica stranded outside the top requester set
// into a top DC that lacks one.
func (r *RequestOriented) migrationFor(ctx *Context, partition int, primary cluster.ServerID, top []topology.DCID, hosted map[topology.DCID]bool) (Migration, bool) {
	topSet := make(map[topology.DCID]bool, len(top))
	for _, dc := range top {
		topSet[dc] = true
	}
	var destDC topology.DCID = -1
	for _, dc := range top {
		if !hosted[dc] {
			destDC = dc
			break
		}
	}
	if destDC < 0 {
		return Migration{}, false
	}
	// Find a replica outside the top set to move (never the primary).
	// Hysteresis: only move when the destination's demand clearly
	// dominates the stranded replica's, so Poisson noise in a flat
	// demand profile does not churn replicas back and forth.
	const hysteresis = 1.25
	for _, s := range ctx.Cluster.ReplicaServers(partition) {
		fromDC := ctx.Cluster.DCOf(s)
		if s == primary || topSet[fromDC] {
			continue
		}
		if r.demand[partition][destDC] < hysteresis*r.demand[partition][fromDC] {
			continue
		}
		if target, ok := PickRandomHostable(ctx, partition, destDC); ok {
			return Migration{Partition: partition, From: s, To: target}, true
		}
		return Migration{}, false
	}
	return Migration{}, false
}
