package queueing

import "testing"

func BenchmarkErlangB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ErlangB(48, 64); err != nil {
			b.Fatal(err)
		}
	}
}
