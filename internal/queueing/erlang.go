// Package queueing implements the M/G/c blocking-probability model of
// §II-E, eq. (18): when the RFH algorithm has picked a datacenter to
// replicate or migrate into, it chooses the physical server with the
// lowest Erlang-B blocking probability
//
//	BP = (a^c / c!) / Σ_{k=0}^{c} a^k / k!,   a = λ·τ
//
// where λ is the Poisson arrival rate observed at the server, τ the mean
// service time, and c the server's processing limit. The Erlang-B
// formula is insensitive to the service-time distribution, which is why
// the paper can call the model M/G/c.
package queueing

import "fmt"

// ErlangB returns the blocking probability for offered load a = λ·τ and
// c servers/processing slots, evaluated with the numerically stable
// recurrence B(0)=1, B(k) = a·B(k−1) / (k + a·B(k−1)). Direct evaluation
// of eq. (18) overflows factorials near c ≈ 170; the recurrence is exact
// and works for any c.
func ErlangB(a float64, c int) (float64, error) {
	if a < 0 {
		return 0, fmt.Errorf("queueing: offered load must be non-negative, got %g", a)
	}
	if c < 0 {
		return 0, fmt.Errorf("queueing: processing limit must be non-negative, got %d", c)
	}
	if c == 0 {
		// No servers: every arrival blocks (unless there is no load).
		if a == 0 {
			return 0, nil
		}
		return 1, nil
	}
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b, nil
}

// BlockingProbability computes eq. (18) from its raw inputs: arrival
// rate lambda, mean service time tau, and processing limit c.
func BlockingProbability(lambda, tau float64, c int) (float64, error) {
	if lambda < 0 || tau < 0 {
		return 0, fmt.Errorf("queueing: lambda and tau must be non-negative (%g, %g)", lambda, tau)
	}
	return ErlangB(lambda*tau, c)
}

// Observer accumulates per-epoch arrival and service observations for
// one physical server so the simulator can "calculate the average value
// of λ and τ and then get blocking probability BP periodically" (§II-E).
// The zero value is ready to use.
type Observer struct {
	arrivals     float64 // total arrivals observed
	busyTime     float64 // total service time consumed
	served       float64 // completed services
	epochs       int     // epochs observed
	defaultTau   float64 // fallback service time before any completions
	processLimit int
}

// NewObserver creates an observer for a server with the given processing
// limit c and a fallback mean service time used until real completions
// are recorded.
func NewObserver(processLimit int, defaultTau float64) *Observer {
	if processLimit < 0 {
		panic("queueing: negative processing limit")
	}
	if defaultTau <= 0 {
		panic("queueing: defaultTau must be positive")
	}
	return &Observer{defaultTau: defaultTau, processLimit: processLimit}
}

// RecordEpoch folds one epoch of observations: the number of arrivals
// and the total busy time spent serving completed requests.
func (o *Observer) RecordEpoch(arrivals int, busyTime float64, served int) {
	if arrivals < 0 || served < 0 || busyTime < 0 {
		panic("queueing: negative observation")
	}
	o.arrivals += float64(arrivals)
	o.busyTime += busyTime
	o.served += float64(served)
	o.epochs++
}

// Lambda returns the average arrival rate per epoch observed so far.
func (o *Observer) Lambda() float64 {
	if o.epochs == 0 {
		return 0
	}
	return o.arrivals / float64(o.epochs)
}

// Tau returns the mean service time per completed request, or the
// configured default before any completions.
func (o *Observer) Tau() float64 {
	if o.served == 0 {
		return o.defaultTau
	}
	return o.busyTime / o.served
}

// Blocking returns the server's current eq. (18) blocking probability.
func (o *Observer) Blocking() float64 {
	bp, err := BlockingProbability(o.Lambda(), o.Tau(), o.processLimit)
	if err != nil {
		// Inputs are guarded non-negative above; reaching here is a bug.
		panic("queueing: " + err.Error())
	}
	return bp
}

// Reset clears accumulated observations (e.g. after a server recovers
// from failure, stale load history should not bias placement).
func (o *Observer) Reset() {
	o.arrivals, o.busyTime, o.served = 0, 0, 0
	o.epochs = 0
}
