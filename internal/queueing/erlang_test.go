package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestErlangBKnownValues(t *testing.T) {
	// Classic Erlang-B table values.
	cases := []struct {
		a    float64
		c    int
		want float64
	}{
		{0, 1, 0},
		{1, 1, 0.5},       // a/(1+a)
		{2, 2, 0.4},       // (4/2)/(1+2+2) = 2/5
		{10, 10, 0.21458}, // standard table entry ~0.2146
		{5, 10, 0.018385}, // ~0.0184
	}
	for _, c := range cases {
		got, err := ErlangB(c.a, c.c)
		if err != nil {
			t.Fatalf("ErlangB(%g,%d): %v", c.a, c.c, err)
		}
		if math.Abs(got-c.want) > 1e-3 {
			t.Errorf("ErlangB(%g,%d) = %g, want %g", c.a, c.c, got, c.want)
		}
	}
}

func TestErlangBZeroServers(t *testing.T) {
	got, err := ErlangB(3, 0)
	if err != nil || got != 1 {
		t.Fatalf("ErlangB(3,0) = %g,%v; want 1", got, err)
	}
	got, err = ErlangB(0, 0)
	if err != nil || got != 0 {
		t.Fatalf("ErlangB(0,0) = %g,%v; want 0", got, err)
	}
}

func TestErlangBErrors(t *testing.T) {
	if _, err := ErlangB(-1, 5); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := ErlangB(1, -1); err == nil {
		t.Fatal("negative servers accepted")
	}
}

func TestErlangBInUnitInterval(t *testing.T) {
	check := func(aRaw uint16, c8 uint8) bool {
		a := float64(aRaw) / 100
		c := int(c8) % 200
		bp, err := ErlangB(a, c)
		return err == nil && bp >= 0 && bp <= 1 && !math.IsNaN(bp)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErlangBMonotoneInServers(t *testing.T) {
	// More capacity never increases blocking.
	for c := 1; c < 50; c++ {
		b1, _ := ErlangB(20, c)
		b2, _ := ErlangB(20, c+1)
		if b2 > b1+1e-12 {
			t.Fatalf("blocking increased with capacity: B(20,%d)=%g > B(20,%d)=%g", c+1, b2, c, b1)
		}
	}
}

func TestErlangBMonotoneInLoad(t *testing.T) {
	// More offered load never decreases blocking.
	prev := -1.0
	for a := 0.0; a <= 50; a += 0.5 {
		b, _ := ErlangB(a, 10)
		if b < prev-1e-12 {
			t.Fatalf("blocking decreased with load at a=%g", a)
		}
		prev = b
	}
}

func TestErlangBLargeCNoOverflow(t *testing.T) {
	bp, err := ErlangB(500, 400)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(bp) || bp <= 0 || bp >= 1 {
		t.Fatalf("ErlangB(500,400) = %g, want a proper probability", bp)
	}
}

func TestBlockingProbabilityComposition(t *testing.T) {
	direct, _ := ErlangB(6, 4)
	viaRates, err := BlockingProbability(3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct-viaRates) > 1e-15 {
		t.Fatalf("BlockingProbability(3,2,4)=%g != ErlangB(6,4)=%g", viaRates, direct)
	}
	if _, err := BlockingProbability(-1, 1, 4); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

func TestObserverAverages(t *testing.T) {
	o := NewObserver(10, 1.0)
	o.RecordEpoch(100, 50, 100) // tau 0.5
	o.RecordEpoch(200, 150, 100)
	if got := o.Lambda(); got != 150 {
		t.Fatalf("Lambda = %g, want 150", got)
	}
	if got := o.Tau(); got != 1.0 {
		t.Fatalf("Tau = %g, want 1.0 (200 busy / 200 served)", got)
	}
}

func TestObserverDefaultTau(t *testing.T) {
	o := NewObserver(10, 0.7)
	if got := o.Tau(); got != 0.7 {
		t.Fatalf("pre-observation Tau = %g", got)
	}
	if got := o.Blocking(); got != 0 {
		t.Fatalf("pre-observation Blocking = %g (no load should not block)", got)
	}
}

func TestObserverBlockingRisesWithLoad(t *testing.T) {
	light := NewObserver(5, 1)
	heavy := NewObserver(5, 1)
	light.RecordEpoch(1, 1, 1)
	heavy.RecordEpoch(50, 50, 50)
	if light.Blocking() >= heavy.Blocking() {
		t.Fatalf("light server blocks (%g) as much as heavy (%g)", light.Blocking(), heavy.Blocking())
	}
}

func TestObserverReset(t *testing.T) {
	o := NewObserver(5, 1)
	o.RecordEpoch(100, 100, 100)
	o.Reset()
	if o.Lambda() != 0 || o.Tau() != 1 || o.Blocking() != 0 {
		t.Fatal("Reset did not clear observer")
	}
}

func TestObserverPanicsOnNegative(t *testing.T) {
	o := NewObserver(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative observation accepted")
		}
	}()
	o.RecordEpoch(-1, 0, 0)
}

func TestNewObserverValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewObserver(-1, 1) },
		func() { NewObserver(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid NewObserver accepted")
				}
			}()
			f()
		}()
	}
}
