// Package report renders a complete reproduction report — Table I,
// every figure's steady-state numbers, and the machine-checked claims —
// as Markdown, from live simulation data. It regenerates the
// quantitative core of EXPERIMENTS.md on demand, so the document can
// never drift from the code.
package report

import (
	"fmt"
	"io"
	"math"

	"repro/internal/experiments"
	"repro/internal/stats"
)

// Write renders the full report for the suite into w, running any
// campaigns that have not run yet.
func Write(w io.Writer, s *experiments.Suite) error {
	opts := s.Options()
	fmt.Fprintf(w, "# RFH reproduction report\n\n")
	fmt.Fprintf(w, "Seed %d; %d/%d/%d-epoch runs; lambda=%.0f; %d servers fail at epoch %d.\n\n",
		opts.Seed, opts.EpochsRandom, opts.EpochsFlash, opts.EpochsFailure,
		opts.Lambda, opts.FailServers, opts.FailEpoch)

	fmt.Fprintf(w, "## Table I — parameters in force\n\n")
	fmt.Fprintf(w, "| Parameter | Value |\n|---|---|\n")
	for _, row := range s.TableI() {
		fmt.Fprintf(w, "| %s | %s |\n", row[0], row[1])
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "## Figures — steady-state values (mean of the last quarter)\n\n")
	for _, id := range experiments.FigureIDs() {
		fig, err := s.Figure(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "### %s\n\n", fig.Title)
		fmt.Fprintf(w, "| Series | First | Late mean | Last |\n|---|---|---|---|\n")
		for _, ser := range fig.Series {
			if len(ser.Points) == 0 {
				continue
			}
			fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
				ser.Name,
				fmtNum(ser.Points[0]),
				fmtNum(stats.Mean(ser.Points[len(ser.Points)*3/4:])),
				fmtNum(ser.Points[len(ser.Points)-1]))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "## Machine-checked claims\n\n")
	reports, err := s.CheckAll()
	if err != nil {
		return err
	}
	total, failed := 0, 0
	fmt.Fprintf(w, "| Figure | Claim | Status | Detail |\n|---|---|---|---|\n")
	for _, rep := range reports {
		for _, c := range rep.Claims {
			total++
			status := "PASS"
			if !c.Pass {
				status = "**FAIL**"
				failed++
			}
			fmt.Fprintf(w, "| %s | %s | %s | %s |\n", rep.Figure, c.Description, status, c.Detail)
		}
	}
	fmt.Fprintf(w, "\n**%d/%d claims hold.**\n", total-failed, total)
	return nil
}

// fmtNum renders a value compactly, tolerating infinities from the
// latency percentile series.
func fmtNum(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	if math.IsInf(v, -1) {
		return "-inf"
	}
	return fmt.Sprintf("%.4g", v)
}
