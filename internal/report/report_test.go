package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestWriteReport(t *testing.T) {
	opts := experiments.DefaultOptions()
	opts.EpochsRandom = 60
	opts.EpochsFlash = 80
	opts.EpochsFailure = 80
	opts.FailEpoch = 40
	s, err := experiments.NewSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# RFH reproduction report",
		"## Table I",
		"Fig. 3a",
		"Fig. 10",
		"Ext. E1",
		"Ext. E2",
		"## Machine-checked claims",
		"claims hold",
		"| rfh |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Error("report contains NaN")
	}
	// Every figure section has a table header.
	if got := strings.Count(out, "| Series | First | Late mean | Last |"); got != len(experiments.FigureIDs()) {
		t.Errorf("figure tables = %d, want %d", got, len(experiments.FigureIDs()))
	}
}

func TestFmtNum(t *testing.T) {
	if fmtNum(1.23456) != "1.235" {
		t.Fatalf("fmtNum = %s", fmtNum(1.23456))
	}
	if fmtNum(math.Inf(1)) != "inf" || fmtNum(math.Inf(-1)) != "-inf" {
		t.Fatal("infinity formatting")
	}
}
