package ring

import "testing"

func benchRing(b *testing.B, servers, tokens int) *Ring {
	b.Helper()
	r := New()
	for s := 0; s < servers; s++ {
		if err := r.AddServer(s, tokens); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func BenchmarkLookup(b *testing.B) {
	r := benchRing(b, 100, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Lookup(HashUint64(uint64(i)))
	}
}

func BenchmarkSuccessors3(b *testing.B) {
	r := benchRing(b, 100, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Successors(HashUint64(uint64(i)), 3)
	}
}

func BenchmarkAddRemoveServer(b *testing.B) {
	r := benchRing(b, 100, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := 1000 + i
		if err := r.AddServer(id, 8); err != nil {
			b.Fatal(err)
		}
		r.RemoveServer(id)
	}
}

func BenchmarkHashUint64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HashUint64(uint64(i))
	}
}
