// Package ring implements the consistent-hashing substrate of §II-B:
// data is partitioned over a fixed circular 64-bit hash space populated
// by virtual nodes, each hosted by a physical server. A partition is
// owned by the first virtual node clockwise from the partition's hash
// position (its successor). The Dynamo-style random baseline replicates
// a partition onto the N−1 clockwise successor virtual nodes that live
// on distinct physical servers — "although adjacent in node ID space,
// these replicas are actually randomly chosen considering geographical
// location."
//
// Server join and departure only move the keys between a vanishing or
// appearing virtual node and its immediate neighbours, which is the
// independence property §II-B highlights.
package ring

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// Position is a location on the 64-bit hash ring.
type Position uint64

// VirtualNode is one token on the ring, owned by a physical server.
type VirtualNode struct {
	Pos    Position
	Server int // physical server id (index into the cluster)
	Index  int // which of the server's tokens this is (0..tokens-1)
}

// Ring is a consistent-hashing ring. The zero value is an empty ring
// ready for AddServer. Ring is not safe for concurrent mutation;
// lookups are safe concurrently with each other.
type Ring struct {
	vnodes []VirtualNode // sorted by Pos
	tokens map[int]int   // server -> token count (for bookkeeping)
}

// New returns an empty ring.
func New() *Ring {
	return &Ring{tokens: make(map[int]int)}
}

// HashBytes maps arbitrary bytes onto the ring: 64-bit FNV-1a followed
// by a splitmix64 finalizer. Raw FNV clusters badly on low-entropy
// inputs (sequential integers differ only in their last bytes); the
// finalizer restores avalanche so ring positions scatter uniformly.
func HashBytes(b []byte) Position {
	h := fnv.New64a()
	h.Write(b)
	z := h.Sum64()
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return Position(z ^ (z >> 31))
}

// HashString maps a string key onto the ring.
func HashString(s string) Position { return HashBytes([]byte(s)) }

// HashUint64 maps an integer key (e.g. a partition id) onto the ring.
func HashUint64(v uint64) Position {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return HashBytes(buf[:])
}

// tokenPosition derives the deterministic ring position of a server's
// i-th token.
func tokenPosition(server, index int) Position {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(server))
	binary.BigEndian.PutUint64(buf[8:], uint64(index))
	return HashBytes(buf[:])
}

// AddServer inserts `tokens` virtual nodes for the given physical
// server at deterministic pseudo-random positions. Adding a server that
// is already present is an error.
func (r *Ring) AddServer(server, tokens int) error {
	if tokens <= 0 {
		return fmt.Errorf("ring: server %d needs at least 1 token, got %d", server, tokens)
	}
	if _, exists := r.tokens[server]; exists {
		return fmt.Errorf("ring: server %d already on the ring", server)
	}
	for i := 0; i < tokens; i++ {
		r.vnodes = append(r.vnodes, VirtualNode{Pos: tokenPosition(server, i), Server: server, Index: i})
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].Pos != r.vnodes[b].Pos {
			return r.vnodes[a].Pos < r.vnodes[b].Pos
		}
		// FNV collisions are astronomically unlikely but keep ordering
		// total for determinism.
		if r.vnodes[a].Server != r.vnodes[b].Server {
			return r.vnodes[a].Server < r.vnodes[b].Server
		}
		return r.vnodes[a].Index < r.vnodes[b].Index
	})
	r.tokens[server] = tokens
	return nil
}

// RemoveServer removes all of a server's virtual nodes (departure or
// failure). Removing an absent server is a no-op.
func (r *Ring) RemoveServer(server int) {
	if _, exists := r.tokens[server]; !exists {
		return
	}
	kept := r.vnodes[:0]
	for _, vn := range r.vnodes {
		if vn.Server != server {
			kept = append(kept, vn)
		}
	}
	r.vnodes = kept
	delete(r.tokens, server)
}

// HasServer reports whether the server currently owns tokens on the
// ring.
func (r *Ring) HasServer(server int) bool {
	_, ok := r.tokens[server]
	return ok
}

// Servers returns the ids of all servers on the ring in ascending order.
func (r *Ring) Servers() []int {
	out := make([]int, 0, len(r.tokens))
	for s := range r.tokens {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Len returns the total number of virtual nodes on the ring.
func (r *Ring) Len() int { return len(r.vnodes) }

// successorIndex returns the index of the first virtual node clockwise
// from pos (inclusive), wrapping around.
func (r *Ring) successorIndex(pos Position) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].Pos >= pos })
	if i == len(r.vnodes) {
		return 0
	}
	return i
}

// Lookup returns the virtual node owning pos: its clockwise successor.
// ok is false on an empty ring.
func (r *Ring) Lookup(pos Position) (VirtualNode, bool) {
	if len(r.vnodes) == 0 {
		return VirtualNode{}, false
	}
	return r.vnodes[r.successorIndex(pos)], true
}

// Owner returns the physical server owning the given key position.
func (r *Ring) Owner(pos Position) (int, bool) {
	vn, ok := r.Lookup(pos)
	if !ok {
		return 0, false
	}
	return vn.Server, true
}

// Successors walks clockwise from pos and returns up to n virtual nodes
// on *distinct physical servers*, starting with the owner. This is the
// Dynamo preference list used by the random replication baseline
// ("replicate data at the N−1 clockwise successor nodes").
func (r *Ring) Successors(pos Position, n int) []VirtualNode {
	if n <= 0 || len(r.vnodes) == 0 {
		return nil
	}
	out := make([]VirtualNode, 0, n)
	seen := make(map[int]bool, n)
	start := r.successorIndex(pos)
	for off := 0; off < len(r.vnodes) && len(out) < n; off++ {
		vn := r.vnodes[(start+off)%len(r.vnodes)]
		if seen[vn.Server] {
			continue
		}
		seen[vn.Server] = true
		out = append(out, vn)
	}
	return out
}
