package ring

import (
	"testing"
	"testing/quick"
)

func buildRing(t *testing.T, servers, tokens int) *Ring {
	t.Helper()
	r := New()
	for s := 0; s < servers; s++ {
		if err := r.AddServer(s, tokens); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestEmptyRing(t *testing.T) {
	r := New()
	if _, ok := r.Lookup(123); ok {
		t.Fatal("lookup on empty ring succeeded")
	}
	if _, ok := r.Owner(123); ok {
		t.Fatal("owner on empty ring succeeded")
	}
	if got := r.Successors(123, 3); got != nil {
		t.Fatalf("successors on empty ring = %v", got)
	}
	if r.Len() != 0 {
		t.Fatal("empty ring has vnodes")
	}
}

func TestAddServerValidation(t *testing.T) {
	r := New()
	if err := r.AddServer(0, 0); err == nil {
		t.Fatal("zero tokens accepted")
	}
	if err := r.AddServer(0, 4); err != nil {
		t.Fatal(err)
	}
	if err := r.AddServer(0, 4); err == nil {
		t.Fatal("duplicate server accepted")
	}
	if r.Len() != 4 {
		t.Fatalf("ring has %d vnodes, want 4", r.Len())
	}
}

func TestLookupDeterministic(t *testing.T) {
	r1 := buildRing(t, 10, 8)
	r2 := buildRing(t, 10, 8)
	for k := uint64(0); k < 500; k++ {
		a, _ := r1.Lookup(HashUint64(k))
		b, _ := r2.Lookup(HashUint64(k))
		if a != b {
			t.Fatalf("lookup of key %d differs between identical rings", k)
		}
	}
}

func TestLookupReturnsSuccessor(t *testing.T) {
	r := buildRing(t, 5, 4)
	// For every vnode position, lookup at exactly that position must
	// return that vnode (successor is inclusive).
	for _, vn := range r.vnodes {
		got, ok := r.Lookup(vn.Pos)
		if !ok || got.Pos != vn.Pos {
			t.Fatalf("lookup at vnode position %d returned %+v", vn.Pos, got)
		}
	}
}

func TestLookupWrapsAround(t *testing.T) {
	r := buildRing(t, 3, 2)
	// A position after the last vnode must wrap to the first.
	last := r.vnodes[len(r.vnodes)-1].Pos
	if last == ^Position(0) {
		t.Skip("last vnode at ring max; wrap untestable with this seed")
	}
	got, ok := r.Lookup(last + 1)
	if !ok || got != r.vnodes[0] {
		t.Fatalf("lookup past ring end = %+v, want first vnode %+v", got, r.vnodes[0])
	}
}

func TestSuccessorsDistinctServers(t *testing.T) {
	check := func(key uint64, n8 uint8) bool {
		r := New()
		for s := 0; s < 10; s++ {
			if err := r.AddServer(s, 8); err != nil {
				return false
			}
		}
		n := int(n8)%12 + 1
		succ := r.Successors(HashUint64(key), n)
		want := n
		if want > 10 {
			want = 10 // only 10 distinct servers exist
		}
		if len(succ) != want {
			return false
		}
		seen := make(map[int]bool)
		for _, vn := range succ {
			if seen[vn.Server] {
				return false
			}
			seen[vn.Server] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessorsFirstIsOwner(t *testing.T) {
	r := buildRing(t, 10, 8)
	for k := uint64(0); k < 200; k++ {
		pos := HashUint64(k)
		owner, _ := r.Owner(pos)
		succ := r.Successors(pos, 3)
		if succ[0].Server != owner {
			t.Fatalf("key %d: first successor %d != owner %d", k, succ[0].Server, owner)
		}
	}
}

func TestRemoveServerOnlyMovesItsKeys(t *testing.T) {
	// The §II-B independence property: removing a server must not change
	// ownership of keys it did not own.
	r := buildRing(t, 10, 8)
	ownersBefore := make(map[uint64]int)
	for k := uint64(0); k < 2000; k++ {
		o, _ := r.Owner(HashUint64(k))
		ownersBefore[k] = o
	}
	const victim = 4
	r.RemoveServer(victim)
	for k, before := range ownersBefore {
		after, ok := r.Owner(HashUint64(k))
		if !ok {
			t.Fatal("ring emptied unexpectedly")
		}
		if before != victim && after != before {
			t.Fatalf("key %d moved from %d to %d though %d was removed", k, before, after, victim)
		}
		if before == victim && after == victim {
			t.Fatalf("key %d still owned by removed server", k)
		}
	}
}

func TestRemoveAbsentServerNoop(t *testing.T) {
	r := buildRing(t, 3, 4)
	before := r.Len()
	r.RemoveServer(99)
	if r.Len() != before {
		t.Fatal("removing absent server changed ring")
	}
}

func TestAddThenRemoveRestoresOwnership(t *testing.T) {
	r := buildRing(t, 8, 8)
	owners := make([]int, 500)
	for k := range owners {
		owners[k], _ = r.Owner(HashUint64(uint64(k)))
	}
	if err := r.AddServer(100, 8); err != nil {
		t.Fatal(err)
	}
	r.RemoveServer(100)
	for k := range owners {
		got, _ := r.Owner(HashUint64(uint64(k)))
		if got != owners[k] {
			t.Fatalf("key %d owner changed after add+remove round trip", k)
		}
	}
}

func TestServersListing(t *testing.T) {
	r := buildRing(t, 5, 2)
	got := r.Servers()
	if len(got) != 5 {
		t.Fatalf("Servers() = %v", got)
	}
	for i, s := range got {
		if s != i {
			t.Fatalf("Servers() = %v, want ascending 0..4", got)
		}
	}
	if !r.HasServer(3) || r.HasServer(9) {
		t.Fatal("HasServer wrong")
	}
}

func TestBalanceAcrossServers(t *testing.T) {
	// With enough tokens, key ownership should be roughly balanced:
	// no server should own more than 3x its fair share.
	const servers, tokens, keys = 10, 32, 20000
	r := buildRing(t, servers, tokens)
	counts := make([]int, servers)
	for k := 0; k < keys; k++ {
		o, _ := r.Owner(HashUint64(uint64(k)))
		counts[o]++
	}
	fair := keys / servers
	for s, c := range counts {
		if c > 3*fair || c < fair/3 {
			t.Fatalf("server %d owns %d keys (fair share %d): imbalance too high", s, c, fair)
		}
	}
}

func TestHashFunctionsDiffer(t *testing.T) {
	if HashUint64(1) == HashUint64(2) {
		t.Fatal("hash collision on trivial keys")
	}
	if HashString("a") == HashString("b") {
		t.Fatal("hash collision on trivial strings")
	}
}

func TestSuccessorsZeroOrNegativeN(t *testing.T) {
	r := buildRing(t, 3, 2)
	if got := r.Successors(0, 0); got != nil {
		t.Fatalf("Successors(0) = %v", got)
	}
	if got := r.Successors(0, -1); got != nil {
		t.Fatalf("Successors(-1) = %v", got)
	}
}

// TestJoinMovesProportionalShare verifies consistent hashing's core
// economy: a joining server takes over roughly its fair share of the
// key space (1/(n+1)), not a wholesale reshuffle.
func TestJoinMovesProportionalShare(t *testing.T) {
	const servers, tokens, keys = 20, 32, 30000
	r := buildRing(t, servers, tokens)
	before := make([]int, keys)
	for k := range before {
		before[k], _ = r.Owner(HashUint64(uint64(k)))
	}
	if err := r.AddServer(servers, tokens); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k := range before {
		after, _ := r.Owner(HashUint64(uint64(k)))
		if after != before[k] {
			moved++
			// Every moved key must now belong to the newcomer.
			if after != servers {
				t.Fatalf("key %d moved to incumbent %d on join", k, after)
			}
		}
	}
	frac := float64(moved) / keys
	fair := 1.0 / float64(servers+1)
	if frac > 3*fair || frac < fair/3 {
		t.Fatalf("join moved %.3f of keys, fair share %.3f", frac, fair)
	}
}
