package sim

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/policy"
)

// TestFailedMigrationRemovalCounted is the regression test for the
// half-completed-migration accounting bug: a migration whose removal
// step fails has already placed the new copy and consumed migration
// bandwidth, so it must be charged as a replication-equivalent action
// instead of silently dropping out of the Figs. 5–7 series.
func TestFailedMigrationRemovalCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 1
	eng := buildEngine(t, core.NewRFH(), cfg, false)

	// Force the removal step to fail, as a wedged source node would.
	eng.removeReplica = func(partition int, s cluster.ServerID) error {
		return fmt.Errorf("forced removal failure")
	}

	p := 0
	from := eng.Cluster().Primary(p)
	var to cluster.ServerID = -1
	for s := 0; s < eng.Cluster().NumServers(); s++ {
		if id := cluster.ServerID(s); id != from && eng.Cluster().CanHost(p, id) {
			to = id
			break
		}
	}
	if to < 0 {
		t.Fatal("no migration target available")
	}

	eng.cluster.BeginEpoch()
	eng.applyDecision(policy.Decision{
		Migrations: []policy.Migration{{Partition: p, From: from, To: to}},
	})

	if eng.epochMigr != 0 || eng.cumMigr != 0 {
		t.Fatalf("failed migration counted as migration: epoch=%d cum=%d", eng.epochMigr, eng.cumMigr)
	}
	if eng.epochRepl != 1 || eng.cumRepl != 1 {
		t.Fatalf("failed migration not counted as replication-equivalent: epoch=%d cum=%d",
			eng.epochRepl, eng.cumRepl)
	}
	if eng.cumReplCost <= 0 {
		t.Fatalf("no cost charged for the half-completed migration: %g", eng.cumReplCost)
	}
	// The copy physically landed on the target and the source kept its
	// replica, exactly the state the accounting must describe.
	if !eng.Cluster().HasReplica(p, to) || !eng.Cluster().HasReplica(p, from) {
		t.Fatal("cluster state does not match a half-completed migration")
	}
}

// TestSuccessfulMigrationStillCounted guards the untouched path around
// the fix: a completed migration charges the migration series only.
func TestSuccessfulMigrationStillCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 1
	eng := buildEngine(t, core.NewRFH(), cfg, false)

	p := 0
	from := eng.Cluster().Primary(p)
	var to cluster.ServerID = -1
	for s := 0; s < eng.Cluster().NumServers(); s++ {
		if id := cluster.ServerID(s); id != from && eng.Cluster().CanHost(p, id) {
			to = id
			break
		}
	}
	eng.cluster.BeginEpoch()
	eng.applyDecision(policy.Decision{
		Migrations: []policy.Migration{{Partition: p, From: from, To: to}},
	})
	if eng.epochMigr != 1 || eng.cumMigr != 1 || eng.epochRepl != 0 {
		t.Fatalf("migration accounting wrong: migr=%d/%d repl=%d",
			eng.epochMigr, eng.cumMigr, eng.epochRepl)
	}
	if eng.Cluster().HasReplica(p, from) || !eng.Cluster().HasReplica(p, to) {
		t.Fatal("migration did not move the copy")
	}
}

// TestZeroCapacityReplicaDoesNotPoisonSeries is the regression test for
// the load-imbalance NaN bug: a zero-capacity server must not divide
// the per-replica load normalisation by zero.
func TestZeroCapacityReplicaDoesNotPoisonSeries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 5
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	// Sabotage one replica-hosting server after construction (cluster
	// validation forbids building such a server, so reach in directly).
	victim := eng.Cluster().Primary(0)
	eng.Cluster().Server(victim).ReplicaCapacity = 0
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{metrics.SeriesLoadImbalance, metrics.SeriesUtilization} {
		for i, v := range rec.Series(name).Points {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("series %s poisoned at epoch %d: %g", name, i, v)
			}
		}
	}
}

// TestClusterRejectsZeroCapacitySpec checks the validation half of the
// zero-capacity fix.
func TestClusterRejectsZeroCapacitySpec(t *testing.T) {
	spec := cluster.DefaultSpec()
	spec.ReplicaCapacityMin = 0
	if err := spec.Validate(); err == nil {
		t.Fatal("spec with zero replica capacity validated")
	}
}

// TestChurnBitReproducible is the regression test for the
// nondeterministic churn-recovery iteration: two runs with the same
// seed must produce identical points in every recorded series.
func TestChurnBitReproducible(t *testing.T) {
	run := func() *metrics.Recorder {
		cfg := DefaultConfig()
		cfg.Epochs = 60
		cfg.Seed = 1234
		cfg.ChurnFailProb = 0.05 // heavy churn: many concurrent recoveries
		cfg.ChurnMTTR = 5
		eng := buildEngine(t, core.NewRFH(), cfg, false)
		rec, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	a, b := run(), run()
	for _, name := range a.Names() {
		sa, sb := a.Series(name), b.Series(name)
		if len(sa.Points) != len(sb.Points) {
			t.Fatalf("series %s lengths differ", name)
		}
		for i := range sa.Points {
			if sa.Points[i] != sb.Points[i] {
				t.Fatalf("series %s diverges at epoch %d: %g vs %g", name, i, sa.Points[i], sb.Points[i])
			}
		}
	}
}
