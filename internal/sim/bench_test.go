package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/topology"
	"repro/internal/workload"
)

// benchEngine builds an engine for throughput benchmarks: dcs
// datacenters (10 = the paper world, anything else a synthetic
// random-geometric world) with 10 servers each, over the given
// partition count, driven by the uniform workload and the RFH policy.
func benchEngine(b *testing.B, dcs, partitions int) *Engine {
	b.Helper()
	var w *topology.World
	var err error
	if dcs == 10 {
		w = topology.PaperWorld()
	} else {
		w, err = topology.RandomGeometricWorld(dcs, 3, 0x3013)
		if err != nil {
			b.Fatal(err)
		}
	}
	rt, err := network.NewRouter(w)
	if err != nil {
		b.Fatal(err)
	}
	spec := cluster.DefaultSpec()
	spec.Partitions = partitions
	cl, err := cluster.New(w, spec)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewUniform(workload.Config{
		Partitions: partitions, DCs: w.NumDCs(), Lambda: 300, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 1 << 30 // stepped manually; never hit by Run
	eng, err := New(cl, rt, gen, core.NewRFH(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// stepBench measures steady-state Engine.Step throughput: a warmup
// drives the system past the initial replication burst, then each
// iteration is one full epoch (serve + policy + apply + record).
func stepBench(b *testing.B, dcs, partitions int) {
	b.Helper()
	eng := benchEngine(b, dcs, partitions)
	defer eng.Close()
	for i := 0; i < 30; i++ {
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStepSeedScale is the paper's Table I environment: 10
// datacenters, 100 servers, 64 partitions.
func BenchmarkStepSeedScale(b *testing.B) { stepBench(b, 10, 64) }

// BenchmarkStep10xScale is ten times the seed environment: 100
// datacenters, 1000 servers, 640 partitions.
func BenchmarkStep10xScale(b *testing.B) { stepBench(b, 100, 640) }
