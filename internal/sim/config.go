// Package sim is the epoch-driven simulation engine that binds the
// substrates together and reproduces the paper's §III experiments. One
// epoch is: inject scheduled failures → generate demand → propagate
// queries along routed paths with replica absorption (per partition, in
// parallel) → fold traffic statistics → ask the policy for a decision →
// apply it under bandwidth/storage constraints, charging eq. (1) costs →
// record the metric series behind Figs. 3–10.
package sim

import (
	"fmt"
	"runtime"

	"repro/internal/metrics"
	"repro/internal/traffic"
)

// Config controls one simulation run. Zero values are invalid; start
// from DefaultConfig.
type Config struct {
	// Epochs is the number of simulated epochs.
	Epochs int
	// Thresholds are the α/β/γ/δ/μ decision constants (Table I).
	Thresholds traffic.Thresholds
	// FailureRate is the per-replica failure probability f of eq. (14)
	// (Table I: 0.1). It parameterises the availability bound and the
	// eq. (1) cost; it does not itself kill servers (use failure events).
	FailureRate float64
	// MinAvailability is A_expect of eq. (14) (Table I: 0.8).
	MinAvailability float64
	// HubCandidates is the size of the traffic-hub candidate set
	// (paper: 3).
	HubCandidates int
	// TokensPerServer is the number of virtual nodes each physical
	// server projects onto the consistent-hashing ring.
	TokensPerServer int
	// Workers bounds the per-partition propagation fan-out. Zero means
	// GOMAXPROCS.
	Workers int
	// Seed drives every stochastic choice of the engine and policies.
	Seed uint64
	// WriteLambda, when positive, enables the consistency-maintenance
	// extension (the paper's named future work): each partition receives
	// Poisson(WriteLambda) writes per epoch at its primary, and replicas
	// catch up asynchronously. Zero disables the subsystem.
	WriteLambda float64
	// WriteDeltaSize is the bytes one version transfer costs (default
	// 4 KB when WriteLambda is enabled).
	WriteDeltaSize int64
	// SyncBandwidth is the per-server anti-entropy budget in bytes per
	// epoch (default 1 MB when WriteLambda is enabled).
	SyncBandwidth int64
	// Latency maps lookup hops to response time for the SLA series
	// (zero value selects metrics.DefaultLatencyModel).
	Latency metrics.LatencyModel
	// ChurnFailProb, when positive, makes every alive server fail
	// independently with this probability at each epoch (§III-G: "Node
	// failure is very common in Cloud storage system"). Failed servers
	// recover after ChurnMTTR epochs.
	ChurnFailProb float64
	// ChurnMTTR is the epochs a churn-failed server stays down
	// (default 20 when churn is enabled).
	ChurnMTTR int
	// Serving selects how queries find replicas: ServePath (default)
	// is the literal eq. (2)–(6) overflow chain toward the holder —
	// replicas serve only lookups whose routed path encounters them,
	// which is what makes placement quality matter. ServeNearest
	// models an idealised direct lookup to the closest replica with
	// spare capacity and is kept for the serving-model ablation.
	Serving ServingModel
}

// ServingModel selects the query-serving semantics.
type ServingModel int

// Serving models.
const (
	// ServePath absorbs queries only at replicas on the routed path
	// toward the holder, the literal reading of eqs. (2)–(6).
	ServePath ServingModel = iota
	// ServeNearest routes each query to the nearest datacenter with
	// spare replica capacity (an idealised direct lookup; ablation).
	ServeNearest
)

// String implements fmt.Stringer.
func (m ServingModel) String() string {
	switch m {
	case ServeNearest:
		return "nearest"
	case ServePath:
		return "path"
	default:
		return fmt.Sprintf("ServingModel(%d)", int(m))
	}
}

// DefaultConfig returns the Table I experiment configuration.
func DefaultConfig() Config {
	return Config{
		Epochs:          250,
		Thresholds:      traffic.DefaultThresholds(),
		FailureRate:     0.1,
		MinAvailability: 0.8,
		HubCandidates:   3,
		TokensPerServer: 8,
		Workers:         0,
		Seed:            1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Epochs <= 0:
		return fmt.Errorf("sim: epochs must be positive")
	case c.FailureRate < 0 || c.FailureRate >= 1:
		return fmt.Errorf("sim: failure rate %g outside [0,1)", c.FailureRate)
	case c.MinAvailability < 0 || c.MinAvailability >= 1:
		return fmt.Errorf("sim: min availability %g outside [0,1)", c.MinAvailability)
	case c.HubCandidates <= 0:
		return fmt.Errorf("sim: hub candidates must be positive")
	case c.TokensPerServer <= 0:
		return fmt.Errorf("sim: tokens per server must be positive")
	case c.Workers < 0:
		return fmt.Errorf("sim: workers must be non-negative")
	case c.Serving != ServeNearest && c.Serving != ServePath:
		return fmt.Errorf("sim: unknown serving model %d", c.Serving)
	case c.WriteLambda < 0:
		return fmt.Errorf("sim: write lambda must be non-negative")
	case c.WriteLambda > 0 && c.WriteDeltaSize < 0:
		return fmt.Errorf("sim: write delta size must be non-negative")
	case c.WriteLambda > 0 && c.SyncBandwidth < 0:
		return fmt.Errorf("sim: sync bandwidth must be non-negative")
	case c.ChurnFailProb < 0 || c.ChurnFailProb >= 1:
		return fmt.Errorf("sim: churn probability %g outside [0,1)", c.ChurnFailProb)
	case c.ChurnMTTR < 0:
		return fmt.Errorf("sim: churn MTTR must be non-negative")
	}
	if c.Latency != (metrics.LatencyModel{}) {
		if err := c.Latency.Validate(); err != nil {
			return err
		}
	}
	return c.Thresholds.Validate()
}

// workers resolves the effective worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}
