package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
)

func TestConsistencyDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 5
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Series(metrics.SeriesStalenessMean) != nil {
		t.Fatal("staleness series recorded without writes enabled")
	}
}

func TestConsistencySeriesRecorded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 30
	cfg.WriteLambda = 20
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		metrics.SeriesStalenessMean, metrics.SeriesStalenessMax,
		metrics.SeriesStaleFrac, metrics.SeriesSyncBytes, metrics.SeriesLostWrites,
	} {
		s := rec.Series(name)
		if s == nil || len(s.Points) != 30 {
			t.Fatalf("series %s missing or wrong length", name)
		}
	}
	// With the default 1 MB/epoch sync budget (256 versions) against 20
	// writes/partition/epoch spread over a few replicas per server,
	// replicas keep up: steady staleness should be small.
	if got := rec.Series(metrics.SeriesStalenessMean).Last(); got > 5 {
		t.Fatalf("steady mean staleness = %g", got)
	}
	if rec.Series(metrics.SeriesSyncBytes).Last() == 0 {
		t.Fatal("no sync traffic despite writes")
	}
}

func TestConsistencyStarvedSyncLags(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 30
	cfg.WriteLambda = 50
	cfg.WriteDeltaSize = 4 << 10
	cfg.SyncBandwidth = 8 << 10 // only 2 versions per server per epoch
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Series(metrics.SeriesStalenessMean).Last(); got < 10 {
		t.Fatalf("starved sync shows staleness %g, expected a large lag", got)
	}
	if got := rec.Series(metrics.SeriesStaleFrac).Last(); got < 0.5 {
		t.Fatalf("stale fraction = %g under starved sync", got)
	}
}

func TestConsistencyLostWritesOnPrimaryFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 40
	cfg.WriteLambda = 50
	cfg.SyncBandwidth = 8 << 10 // starved: replicas always lag
	eng := buildEngine(t, core.NewRFH(), cfg, false)
	// Kill a large slab of servers mid-run: some primaries die with
	// unsynced writes.
	var victims []cluster.ServerID
	for i := 0; i < 40; i++ {
		victims = append(victims, cluster.ServerID(i))
	}
	eng.ScheduleFailure(FailureEvent{Epoch: 20, Fail: victims})
	rec, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Series(metrics.SeriesLostWrites).Last(); got == 0 {
		t.Fatal("no writes lost despite stale promotions after mass failure")
	}
}

func TestConsistencyDeterministic(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig()
		cfg.Epochs = 15
		cfg.WriteLambda = 30
		eng := buildEngine(t, core.NewRFH(), cfg, false)
		rec, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return rec.Series(metrics.SeriesSyncBytes).Last()
	}
	if run() != run() {
		t.Fatal("consistency extension not deterministic")
	}
}

func TestConsistencyConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteLambda = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative write lambda accepted")
	}
	cfg = DefaultConfig()
	cfg.WriteLambda = 1
	cfg.WriteDeltaSize = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative delta size accepted")
	}
	cfg = DefaultConfig()
	cfg.WriteLambda = 1
	cfg.SyncBandwidth = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative sync bandwidth accepted")
	}
}
